// Cross-translation-unit call-graph layer shared by the repo's whole-tree
// checkers (tools/mmhar_rtcheck.cpp, tools/mmhar_detcheck.cpp).
//
// Extracted from mmhar_rtcheck so both tools parse sources, attribute
// lambdas, resolve calls, and walk reachability identically: the same
// scoped-record walk as mmhar_analyze (brace-depth scope stack over
// comment/string-stripped lines) turns every file into function-level
// records; declarations carrying annotation macros transfer their flags to
// the same-qualified-name definition; and a breadth-first walk from the
// annotated roots yields, for every reachable function, the call chain
// back to the nearest root.
//
// The tools differ only in (a) which annotation tokens mark a root and
// (b) which body primitives they hunt — both stay tool-side. Everything
// here is annotation-token-parameterised: pass the token list to
// ScopeScanner and the `flags` bitmask on each FnRecord has bit i set
// when token i appeared on the head or a matching declaration.
//
// Known textual limits (by design — this is a linter layer, not a
// compiler): receiver types are unknown, so member calls resolve only
// within the caller's own file; free calls must match their written
// qualifier as a component-aligned suffix and prefer same-file candidates
// (modelling anonymous-namespace lookup); overloads sharing a qualified
// name share their annotations. All three widen or preserve the checked
// set; none invents an escape hatch a suppression comment would not.
//
// Header-only and dependency-free on purpose (like analysis_text.h): the
// tools must build standalone even when src/ itself does not compile.
#pragma once

#include <algorithm>
#include <cctype>
#include <deque>
#include <filesystem>
#include <fstream>
#include <map>
#include <regex>
#include <set>
#include <string>
#include <vector>

#include "analysis_text.h"

namespace mmhar_tools {

// Member-call names that never resolve to repo functions: std containers /
// atomics / chrono vocabulary. Lock/wait names are here too — those are
// caught as primitives by the tools, and keeping them out of the graph
// keeps capability wrappers' internals (Mutex::lock calling inner_.lock)
// from appearing as reachable nodes.
inline const std::set<std::string>& member_skip_list() {
  static const std::set<std::string> skip = {
      "size",       "empty",      "data",        "begin",     "end",
      "cbegin",     "cend",       "rbegin",      "rend",      "length",
      "capacity",   "front",      "back",        "first",     "second",
      "get",        "reset",      "release",     "swap",      "count",
      "find",       "contains",   "clear",       "c_str",     "value",
      "value_or",   "has_value",  "real",        "imag",      "load",
      "store",      "exchange",   "fetch_add",   "fetch_sub", "notify_one",
      "notify_all", "lock",       "unlock",      "try_lock",  "lock_shared",
      "unlock_shared", "min",     "max",         "time_since_epoch"};
  return skip;
}

// STL members whose call can grow the container (allocate). A growth
// member call becomes a CallSite with `growth = true`; when it resolves to
// a repo function it is a transitive call edge, otherwise the tool decides
// what raw container growth means under its rules.
inline const std::set<std::string>& growth_members() {
  static const std::set<std::string> grow = {
      "push_back", "emplace_back", "push_front",       "emplace_front",
      "resize",    "reserve",      "insert",           "emplace",
      "try_emplace", "append",     "assign",           "insert_or_assign"};
  return grow;
}

inline bool is_call_keyword(const std::string& name) {
  static const std::set<std::string> kw = {
      "if",     "for",      "while",   "switch",        "return",
      "sizeof", "alignof",  "alignas", "decltype",      "noexcept",
      "catch",  "throw",    "new",     "delete",        "static_assert",
      "assert", "defined",  "case",    "else",          "do",
      "goto",   "co_await", "co_return", "co_yield",    "requires"};
  return kw.count(name) > 0;
}

struct CallSite {
  std::string name;  // as written, :: qualifiers kept, whitespace removed
  std::size_t line;  // 1-based
  bool member;       // reached through . or ->
  bool growth;       // an allocating STL growth-member name
};

struct EnvSite {
  std::string name;  // literal name, or "" for a non-literal read
  std::size_t line;
};

struct SourceFile {
  std::string path;  // display path, e.g. "src/dsp/fft.cpp"
  std::vector<std::string> raw;
  std::vector<std::string> code;          // strings blanked
  std::vector<std::string> code_strings;  // strings kept
  std::vector<EnvSite> env_sites;
};

struct FnRecord {
  std::string qual;  // fully qualified, e.g. mmhar::serving::Svc::poll
  std::string file;  // display path
  std::size_t line = 0;        // head line, 1-based
  std::size_t body_begin = 0;  // line of the opening '{'
  std::size_t body_end = 0;    // line of the closing '}'
  int file_id = -1;
  unsigned flags = 0;  // bit i set <=> annotation token i on head/decl
  bool noreturn = false;
  std::vector<CallSite> calls;

  bool has_flag(std::size_t token) const {
    return (flags & (1U << token)) != 0;
  }
};

struct DeclFlags {
  unsigned flags = 0;
  bool noreturn = false;
};

// One violation from any whole-tree rule; `chain` is the root-to-function
// call path ("root -> ... -> function"), empty for file-level rules.
struct Violation {
  std::string rule;
  std::string file;
  std::size_t line;
  std::string message;
  std::string chain;
};

inline void sort_unique_violations(std::vector<Violation>& found) {
  std::sort(found.begin(), found.end(),
            [](const Violation& a, const Violation& b) {
              return std::tie(a.file, a.line, a.rule, a.message) <
                     std::tie(b.file, b.line, b.rule, b.message);
            });
  found.erase(std::unique(found.begin(), found.end(),
                          [](const Violation& a, const Violation& b) {
                            return a.file == b.file && a.line == b.line &&
                                   a.rule == b.rule && a.message == b.message;
                          }),
              found.end());
}

// ---- Function-head dissection ----------------------------------------------

struct HeadInfo {
  bool is_function = false;
  std::string name;  // possibly Record::name-qualified as written
  unsigned flags = 0;
  bool noreturn = false;
};

// Compiled `\btoken\b` matchers for an annotation-token list. Word
// boundaries keep prefixed tokens disjoint: MMHAR_REALTIME does not match
// inside MMHAR_REALTIME_HANDOFF because the \b after the E sees '_', a
// word character.
class AnnotationTokens {
 public:
  explicit AnnotationTokens(std::vector<std::string> tokens)
      : tokens_(std::move(tokens)) {
    res_.reserve(tokens_.size());
    for (const auto& t : tokens_) res_.emplace_back("\\b" + t + "\\b");
  }

  std::size_t size() const { return tokens_.size(); }
  const std::string& token(std::size_t i) const { return tokens_[i]; }

  unsigned match(const std::string& stmt) const {
    unsigned flags = 0;
    for (std::size_t i = 0; i < res_.size(); ++i)
      if (std::regex_search(stmt, res_[i])) flags |= 1U << i;
    return flags;
  }

 private:
  std::vector<std::string> tokens_;
  std::vector<std::regex> res_;
};

// Dissect an accumulated namespace/record-scope statement that ended in
// '{' (definition) or ';' (declaration): find the declarator name before
// the first top-level '(' and the annotation tokens anywhere in the head.
inline HeadInfo parse_head(const std::string& stmt,
                           const AnnotationTokens& tokens) {
  HeadInfo info;
  static const std::regex noret_re(R"(\bnoreturn\b)");
  info.flags = tokens.match(stmt);
  info.noreturn = std::regex_search(stmt, noret_re);

  const std::string cleaned = blank_template_args(stmt);
  int paren = 0;
  std::size_t name_end = std::string::npos;
  for (std::size_t i = 0; i < cleaned.size(); ++i) {
    const char c = cleaned[i];
    if (c == '(') {
      if (paren == 0 && name_end == std::string::npos) name_end = i;
      ++paren;
    } else if (c == ')') {
      --paren;
    } else if (c == '=' && paren == 0 && name_end == std::string::npos) {
      return info;  // brace-initialised variable, not a function
    }
  }
  if (name_end == std::string::npos) return info;
  const std::string head = trim(cleaned.substr(0, name_end));
  if (head.empty()) return info;
  static const std::regex name_re(R"(((?:[A-Za-z_]\w*::)*~?[A-Za-z_]\w*)$)");
  std::smatch m;
  if (!std::regex_search(head, m, name_re)) {
    // `operator==` and friends: keep the body attributed to *a* function
    // so nested braces stay balanced, under a non-resolvable name.
    if (head.find("operator") != std::string::npos) {
      info.is_function = true;
      info.name = "(operator)";
    }
    return info;
  }
  info.name = m[1].str();
  // A variable annotated with an MMHAR_*(args) attribute would otherwise
  // parse as a function named after the macro.
  if (info.name.rfind("MMHAR_", 0) == 0) return info;
  if (is_call_keyword(info.name)) return info;
  info.is_function = true;
  return info;
}

// Literal and non-literal env-knob read sites, for the tools' env rules.
inline void index_env_sites(SourceFile& file) {
  static const std::regex lit_re(
      R"((^|[^\w])(env_[a-z_]+|getenv)\s*\(\s*"([A-Za-z0-9_]+)\")");
  static const std::regex dyn_re(
      R"((^|[^\w])(env_int|env_double|env_string|env_double_list|getenv)\s*\(\s*[^"\s])");
  std::string tail;  // hoisted per-line scratch
  for (std::size_t i = 0; i < file.code_strings.size(); ++i) {
    tail = file.code_strings[i];
    std::smatch m;
    while (std::regex_search(tail, m, lit_re)) {
      file.env_sites.push_back({m[3].str(), i + 1});
      tail = m.suffix().str();
    }
    if (std::regex_search(file.code_strings[i], dyn_re))
      file.env_sites.push_back({"", i + 1});
  }
}

// ---- Pass 1: per-file scan --------------------------------------------------

// Parses one source file into function records with call sites. Function
// bodies cover their lambdas — a lambda assigned to a named variable, or
// passed to ThreadPool::parallel_for, is attributed to the enclosing
// function, so a violation inside it is charged where it executes.
class ScopeScanner {
 public:
  ScopeScanner(SourceFile& file, int file_id, const AnnotationTokens& tokens,
               std::vector<FnRecord>& functions,
               std::map<std::string, DeclFlags>& decl_flags)
      : out_(file),
        file_id_(file_id),
        tokens_(tokens),
        functions_(functions),
        decl_flags_(decl_flags) {}

  void scan() {
    bool in_block = false;
    bool in_block2 = false;
    out_.code.reserve(out_.raw.size());
    out_.code_strings.reserve(out_.raw.size());
    for (const auto& l : out_.raw) {
      out_.code.push_back(code_only(l, in_block));
      out_.code_strings.push_back(code_keeping_strings(l, in_block2));
    }
    index_env_sites(out_);
    walk_scopes();
    for (const std::size_t id : local_functions_) scan_body(functions_[id]);
  }

 private:
  struct Declarator {
    enum Kind { kNamespace, kRecord, kEnum } kind;
    std::string name;
    std::size_t pos;
  };
  struct Scope {
    enum Kind { kNamespace, kRecord, kBlock, kFunction } kind;
    std::string name;
    int depth;
    std::size_t func = SIZE_MAX;  // index into functions_, kFunction only
  };

  // Same declarator detection as mmhar_analyze's scanner.
  static std::vector<Declarator> find_declarators(const std::string& line) {
    std::vector<Declarator> found;
    static const std::regex ns_re(R"((^|[^\w])namespace(\s+([\w:]+))?\s*\{)");
    static const std::regex enum_re(
        R"((^|[^\w])enum\s+(class\s+|struct\s+)?([A-Za-z_]\w*))");
    static const std::regex rec_re(
        R"((^|[^\w])(struct|class)\s+((?:MMHAR_\w+\s*\([^)]*\)\s*)*)([A-Za-z_]\w*))");
    for (auto it = std::sregex_iterator(line.begin(), line.end(), ns_re);
         it != std::sregex_iterator(); ++it) {
      found.push_back({Declarator::kNamespace, (*it)[3].str(),
                       static_cast<std::size_t>(it->position(0))});
    }
    static const std::regex ns_open_re(
        R"((^|[^\w])namespace(\s+([\w:]+))?\s*$)");
    std::smatch nm;
    if (std::regex_search(line, nm, ns_open_re)) {
      found.push_back({Declarator::kNamespace, nm[3].str(),
                       static_cast<std::size_t>(nm.position(0))});
    }
    std::set<std::size_t> enum_pos;
    for (auto it = std::sregex_iterator(line.begin(), line.end(), enum_re);
         it != std::sregex_iterator(); ++it) {
      enum_pos.insert(static_cast<std::size_t>(it->position(0)));
      found.push_back({Declarator::kEnum, (*it)[3].str(),
                       static_cast<std::size_t>(it->position(0))});
    }
    for (auto it = std::sregex_iterator(line.begin(), line.end(), rec_re);
         it != std::sregex_iterator(); ++it) {
      const auto pos = static_cast<std::size_t>(it->position(0));
      bool inside_enum = false;
      for (const auto ep : enum_pos)
        if (ep <= pos && pos < ep + 12) inside_enum = true;
      if (!inside_enum)
        found.push_back({Declarator::kRecord, (*it)[4].str(), pos});
    }
    std::sort(found.begin(), found.end(),
              [](const Declarator& a, const Declarator& b) {
                return a.pos < b.pos;
              });
    return found;
  }

  // Namespace AND record components — member functions qualify through
  // their record (mmhar::serving::StreamingHarService::poll), unlike
  // mmhar_analyze's namespace-only symbol index.
  static std::string qualify(const std::vector<Scope>& stack,
                             const std::string& name) {
    std::string qual;
    for (const auto& s : stack) {
      if (s.kind == Scope::kNamespace) {
        if (!s.name.empty())
          qual += s.name + "::";
        else if (s.depth > 0)
          qual += "(anonymous)::";
      } else if (s.kind == Scope::kRecord) {
        qual += s.name + "::";
      }
    }
    return qual + name;
  }

  void walk_scopes() {
    std::vector<Scope> stack;
    stack.push_back({Scope::kNamespace, "", 0, SIZE_MAX});
    int depth = 0;
    bool have_pending = false;
    Declarator pending{};
    std::string stmt;
    std::size_t stmt_line = 0;
    bool continuation = false;

    std::string t;  // hoisted per-line scratch
    for (std::size_t i = 0; i < out_.code.size(); ++i) {
      const std::string& line = out_.code[i];
      t = trim(line);
      const bool skip = continuation || (!t.empty() && t[0] == '#');
      continuation = !out_.raw[i].empty() && out_.raw[i].back() == '\\';
      if (skip) continue;

      auto decls = find_declarators(line);
      std::size_t decl_idx = 0;
      for (std::size_t c = 0; c < line.size(); ++c) {
        while (decl_idx < decls.size() && decls[decl_idx].pos <= c) {
          pending = decls[decl_idx];
          have_pending = true;
          ++decl_idx;
        }
        const char ch = line[c];
        const Scope& top = stack.back();
        const bool at_scope_stmt_level =
            (top.kind == Scope::kNamespace || top.kind == Scope::kRecord) &&
            depth == top.depth;

        if (ch == '{') {
          if (have_pending && pending.kind == Declarator::kNamespace) {
            ++depth;
            stack.push_back({Scope::kNamespace, pending.name, depth, SIZE_MAX});
            have_pending = false;
            stmt.clear();
          } else if (have_pending && pending.kind == Declarator::kRecord) {
            ++depth;
            stack.push_back({Scope::kRecord, pending.name, depth, SIZE_MAX});
            have_pending = false;
            stmt.clear();
          } else if (have_pending && pending.kind == Declarator::kEnum) {
            ++depth;
            stack.push_back({Scope::kBlock, pending.name, depth, SIZE_MAX});
            have_pending = false;
            stmt.clear();
          } else if (at_scope_stmt_level) {
            const HeadInfo head = parse_head(stmt, tokens_);
            ++depth;
            if (head.is_function) {
              FnRecord fn;
              fn.qual = qualify(stack, head.name);
              fn.file = out_.path;
              fn.file_id = file_id_;
              fn.line = stmt_line == 0 ? i + 1 : stmt_line;
              fn.body_begin = i + 1;
              fn.flags = head.flags;
              fn.noreturn = head.noreturn;
              functions_.push_back(std::move(fn));
              local_functions_.push_back(functions_.size() - 1);
              stack.push_back(
                  {Scope::kFunction, head.name, depth, functions_.size() - 1});
              stmt.clear();
            } else {
              stack.push_back({Scope::kBlock, "", depth, SIZE_MAX});
            }
          } else {
            ++depth;
            stack.push_back({Scope::kBlock, "", depth, SIZE_MAX});
          }
          continue;
        }
        if (ch == '}') {
          if (stack.size() > 1 && stack.back().depth == depth) {
            if (stack.back().kind == Scope::kFunction)
              functions_[stack.back().func].body_end = i + 1;
            stack.pop_back();
          }
          if (depth > 0) --depth;
          continue;
        }
        if (ch == ';' && at_scope_stmt_level) {
          have_pending = false;
          record_declaration(stmt, stack);
          stmt.clear();
          continue;
        }
        if (at_scope_stmt_level) {
          if (stmt.empty() || trim(stmt).empty()) {
            if (!std::isspace(static_cast<unsigned char>(ch)))
              stmt_line = i + 1;
          }
          stmt.push_back(ch);
        }
      }
      if (!stmt.empty()) stmt.push_back(' ');
    }
    while (stack.size() > 1) {
      if (stack.back().kind == Scope::kFunction &&
          functions_[stack.back().func].body_end == 0)
        functions_[stack.back().func].body_end = out_.code.size();
      stack.pop_back();
    }
  }

  // A ';'-terminated statement at namespace/record scope carrying an
  // annotation or [[noreturn]] is a declaration whose flags must transfer
  // to the definition (annotations live on decls in headers; the
  // [[noreturn]] on finite_check_failed exists only on its decl).
  void record_declaration(const std::string& stmt,
                          const std::vector<Scope>& stack) {
    if (stmt.find('(') == std::string::npos) return;
    const HeadInfo head = parse_head(stmt, tokens_);
    if (!head.is_function) return;
    if (head.flags == 0 && !head.noreturn) return;
    DeclFlags& flags = decl_flags_[qualify(stack, head.name)];
    flags.flags |= head.flags;
    flags.noreturn = flags.noreturn || head.noreturn;
  }

  // ---- Body scan: call sites ------------------------------------------------

  void scan_body(FnRecord& fn) {
    if (fn.body_begin == 0 || fn.body_end < fn.body_begin) return;
    std::string line_trim;  // hoisted per-line scratch
    for (std::size_t ln = fn.body_begin; ln <= fn.body_end; ++ln) {
      const std::size_t idx = ln - 1;
      if (idx >= out_.code.size()) break;
      line_trim = trim(out_.code[idx]);
      if (!line_trim.empty() && line_trim[0] == '#') continue;
      if (idx > 0 && !out_.raw[idx - 1].empty() &&
          out_.raw[idx - 1].back() == '\\')
        continue;  // macro continuation
      scan_calls(fn, blank_template_args(out_.code[idx]), ln);
    }
  }

  void scan_calls(FnRecord& fn, const std::string& line, std::size_t ln) {
    static const std::regex call_re(
        R"(((?:[A-Za-z_]\w*\s*::\s*)*[A-Za-z_]\w*)\s*\()");
    std::string name;  // hoisted per-match scratch
    std::string last;
    for (auto it = std::sregex_iterator(line.begin(), line.end(), call_re);
         it != std::sregex_iterator(); ++it) {
      name = (*it)[1].str();
      name.erase(std::remove_if(name.begin(), name.end(),
                                [](unsigned char c) {
                                  return std::isspace(c) != 0;
                                }),
                 name.end());
      const std::size_t last_sep = name.rfind("::");
      last = last_sep == std::string::npos ? name : name.substr(last_sep + 2);
      if (last.empty() || is_call_keyword(last)) continue;
      if (name.rfind("MMHAR_", 0) == 0) continue;  // annotation/check macro

      const auto pos = static_cast<std::size_t>(it->position(1));
      // Preceding context decides member call vs declaration vs call.
      std::size_t p = pos;
      while (p > 0 &&
             std::isspace(static_cast<unsigned char>(line[p - 1])))
        --p;
      const char prev = p > 0 ? line[p - 1] : '\0';
      const char prev2 = p > 1 ? line[p - 2] : '\0';
      const bool member = prev == '.' || (prev == '>' && prev2 == '-');
      if (!member) {
        if (prev == '>' || prev == '*' || prev == '&') continue;  // decl
        if (std::isalnum(static_cast<unsigned char>(prev)) || prev == '_') {
          // Preceding token is an identifier: `Type name(args)` is a
          // declaration unless the token is a statement keyword.
          std::size_t q = p;
          while (q > 0 &&
                 (std::isalnum(static_cast<unsigned char>(line[q - 1])) ||
                  line[q - 1] == '_'))
            --q;
          if (!is_call_keyword(line.substr(q, p - q))) continue;
        }
      } else {
        if (member_skip_list().count(last) > 0) {
          // Growth members fall through; vocabulary members are opaque.
          if (growth_members().count(last) == 0) continue;
        }
        if (growth_members().count(last) > 0) {
          // Resolution decides downstream: repo function -> call edge,
          // otherwise raw container growth under the tool's rules.
          fn.calls.push_back({last, ln, true, true});
          continue;
        }
      }
      fn.calls.push_back({member ? last : name, ln, member, false});
    }
  }

  SourceFile& out_;
  int file_id_;
  const AnnotationTokens& tokens_;
  std::vector<FnRecord>& functions_;
  std::map<std::string, DeclFlags>& decl_flags_;
  std::vector<std::size_t> local_functions_;
};

// ---- Pass 2: resolution and reachability -----------------------------------

class CallGraph {
 public:
  CallGraph(std::vector<SourceFile> files, std::vector<FnRecord> functions,
            std::map<std::string, DeclFlags> decl_flags)
      : files_(std::move(files)), functions_(std::move(functions)) {
    // Union decl-carried flags into definitions, by qualified name.
    for (auto& fn : functions_) {
      const auto it = decl_flags.find(fn.qual);
      if (it == decl_flags.end()) continue;
      fn.flags |= it->second.flags;
      fn.noreturn = fn.noreturn || it->second.noreturn;
    }
    std::string last;  // hoisted per-function scratch
    for (std::size_t i = 0; i < functions_.size(); ++i) {
      last = last_component(functions_[i].qual);
      by_last_[last].push_back(i);
    }
  }

  const std::vector<SourceFile>& files() const { return files_; }
  const std::vector<FnRecord>& functions() const { return functions_; }

  const SourceFile& file_of(const FnRecord& fn) const {
    return files_[static_cast<std::size_t>(fn.file_id)];
  }

  static std::string last_component(const std::string& qual) {
    const std::size_t sep = qual.rfind("::");
    return sep == std::string::npos ? qual : qual.substr(sep + 2);
  }

  // `qual` ends with `suffix` on a :: component boundary. Anonymous-
  // namespace components are transparent so a roots-file entry like
  // `dsp::plan_for` can name the file-local mmhar::dsp::(anonymous)::
  // plan_for without hard-coding the linkage detail.
  static bool suffix_matches(const std::string& qual,
                             const std::string& suffix) {
    const auto ends_on_boundary = [](const std::string& q,
                                     const std::string& s) {
      if (q == s) return true;
      if (q.size() <= s.size()) return false;
      if (q.compare(q.size() - s.size(), s.size(), s) != 0) return false;
      return q.compare(q.size() - s.size() - 2, 2, "::") == 0;
    };
    if (ends_on_boundary(qual, suffix)) return true;
    std::string stripped = qual;
    for (std::size_t at = stripped.find("(anonymous)::");
         at != std::string::npos; at = stripped.find("(anonymous)::"))
      stripped.erase(at, 13);
    return ends_on_boundary(stripped, suffix);
  }

  // Call-name resolution. Free calls must match their written qualifier
  // as a component-aligned suffix (so std:: / chrono:: calls resolve to
  // nothing instead of colliding with same-named repo functions) and
  // prefer same-file candidates when any exist — modelling anonymous-
  // namespace lookup, and keeping fft.cpp's file-local plan_for() from
  // resolving into AttackExperiment::plan_for. Member calls have no
  // receiver type textually, so they resolve only within the caller's own
  // file (the hot-path pattern: a record and its consumers share a TU); a
  // cross-file growth member stays a primitive instead.
  void resolve(const CallSite& call, int caller_file,
               std::vector<std::size_t>& out) const {
    out.clear();
    const auto it = by_last_.find(last_component(call.name));
    if (it == by_last_.end()) return;
    bool any_same_file = false;
    for (const std::size_t id : it->second) {
      const FnRecord& f = functions_[id];
      if (call.member) {
        if (f.file_id == caller_file) out.push_back(id);
        continue;
      }
      if (call.name != last_component(call.name) &&
          !suffix_matches(f.qual, call.name))
        continue;
      out.push_back(id);
      any_same_file = any_same_file || f.file_id == caller_file;
    }
    if (!call.member && any_same_file) {
      out.erase(std::remove_if(out.begin(), out.end(),
                               [&](std::size_t id) {
                                 return functions_[id].file_id != caller_file;
                               }),
                out.end());
    }
  }

 private:
  std::vector<SourceFile> files_;
  std::vector<FnRecord> functions_;
  std::map<std::string, std::vector<std::size_t>> by_last_;
};

// Breadth-first reachability from a root set, recording for each reached
// function the parent edge it was first discovered through so the exact
// call chain from the nearest root can be printed with a violation.
class Reachability {
 public:
  struct Via {
    std::size_t parent;
    bool is_root;
  };

  // `cut(fn, line)` returning true stops call-graph traversal out of that
  // line (the tools map their `allow(calls)` suppression onto it).
  // [[noreturn] ] targets are never traversed: they only execute when the
  // process is already aborting the computation.
  template <class CutFn>
  Reachability(const CallGraph& graph, const std::vector<std::size_t>& roots,
               CutFn cut) {
    const auto& functions = graph.functions();
    std::deque<std::size_t> queue;
    for (const std::size_t r : roots) {
      if (via_.count(r)) continue;
      via_[r] = {r, true};
      queue.push_back(r);
    }
    std::vector<std::size_t> targets;  // hoisted per-call scratch
    while (!queue.empty()) {
      const std::size_t id = queue.front();
      queue.pop_front();
      const FnRecord& fn = functions[id];
      for (const auto& call : fn.calls) {
        if (cut(fn, call.line)) continue;
        graph.resolve(call, fn.file_id, targets);
        for (const std::size_t t : targets) {
          if (t == id || via_.count(t) || functions[t].noreturn) continue;
          via_[t] = {id, false};
          queue.push_back(t);
        }
      }
    }
  }

  const std::map<std::size_t, Via>& via() const { return via_; }
  std::size_t size() const { return via_.size(); }

  // "root -> ... -> function" for a reached id.
  std::string chain(const CallGraph& graph, std::size_t id) const {
    const auto& functions = graph.functions();
    std::string chain;
    for (std::size_t cur = id;;) {
      const FnRecord& f = functions[cur];
      chain.insert(0, f.qual + (chain.empty() ? "" : " -> "));
      const Via& step = via_.at(cur);
      if (step.is_root && cur == id) break;
      if (step.is_root || step.parent == cur) break;
      cur = step.parent;
    }
    return chain;
  }

 private:
  std::map<std::size_t, Via> via_;
};

// ---- Shared input loaders ---------------------------------------------------

// One row of a required-roots file: `<kind> <qualified-name-suffix>`.
struct RootSpec {
  std::string kind;
  std::string name;
  std::size_t line;  // in the roots file
};

// Loads a roots file whose rows are `<kind> <suffix>` with `kind` drawn
// from `kinds`. Returns false when the file is unreadable; a readable file
// with a malformed row sets `parse_error` (reported as a usage error).
inline bool load_root_specs(const std::filesystem::path& path,
                            const std::vector<std::string>& kinds,
                            std::vector<RootSpec>& out,
                            std::string& parse_error) {
  std::vector<std::string> raw;
  if (!read_lines(path, raw)) return false;
  std::string kind_alt;
  for (const auto& k : kinds) {
    if (!kind_alt.empty()) kind_alt += "|";
    kind_alt += k;
  }
  const std::regex row_re("^\\s*(" + kind_alt + ")\\s+(\\S+)\\s*$");
  std::string t;  // hoisted per-line scratch
  for (std::size_t i = 0; i < raw.size(); ++i) {
    t = trim(raw[i]);
    if (t.empty() || t[0] == '#') continue;
    std::smatch m;
    if (!std::regex_match(t, m, row_re)) {
      parse_error = "line " + std::to_string(i + 1) + ": expected '<" +
                    kind_alt + "> <qualified-name-suffix>', got: " + t;
      return true;
    }
    out.push_back({m[1].str(), m[2].str(), i + 1});
  }
  return true;
}

// Knob names out of src/common/env_registry.cpp rows: {"MMHAR_FOO", ...}.
inline bool load_env_registry(const std::filesystem::path& path,
                              std::set<std::string>& out) {
  static const std::regex row_re(R"re(\{\s*"(MMHAR_\w+)"\s*,)re");
  std::vector<std::string> raw;
  if (!read_lines(path, raw)) return false;
  bool in_block = false;
  std::string code;  // hoisted per-line scratch
  for (const auto& line : raw) {
    code = code_keeping_strings(line, in_block);
    std::smatch m;
    if (std::regex_search(code, m, row_re)) out.insert(m[1].str());
  }
  return true;
}

}  // namespace mmhar_tools
