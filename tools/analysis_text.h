// Text utilities shared by the repo's static-analysis tools
// (mmhar_lint.cpp, mmhar_analyze.cpp, mmhar_rtcheck.cpp).
//
// Header-only and dependency-free on purpose: the tools must build and
// run standalone (a single g++/clang++ invocation, see the CI lint job)
// even when src/ itself does not compile.
#pragma once

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

namespace mmhar_tools {

// Strip // and /* */ comments; string and char literal *contents* are
// blanked (the quotes' positions are preserved as spaces) so rule regexes
// never fire on prose. Block-comment state carries across lines via
// `in_block_comment`.
inline std::string code_only(const std::string& line, bool& in_block_comment) {
  std::string out;
  out.reserve(line.size());
  bool in_string = false;
  bool in_char = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    const char next = i + 1 < line.size() ? line[i + 1] : '\0';
    if (in_block_comment) {
      if (c == '*' && next == '/') {
        in_block_comment = false;
        ++i;
      }
      continue;
    }
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      out.push_back(' ');
      continue;
    }
    if (in_char) {
      if (c == '\\') {
        ++i;
      } else if (c == '\'') {
        in_char = false;
      }
      out.push_back(' ');
      continue;
    }
    if (c == '/' && next == '/') break;
    if (c == '/' && next == '*') {
      in_block_comment = true;
      ++i;
      continue;
    }
    if (c == '"') {
      in_string = true;
      out.push_back(' ');
      continue;
    }
    if (c == '\'') {
      in_char = true;
      out.push_back(' ');
      continue;
    }
    out.push_back(c);
  }
  return out;
}

// As code_only, but string-literal contents survive — used where a rule
// must read names out of literals (env-var call sites, registry rows).
inline std::string code_keeping_strings(const std::string& line,
                                        bool& in_block_comment) {
  std::string out;
  out.reserve(line.size());
  bool in_string = false;
  bool in_char = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    const char next = i + 1 < line.size() ? line[i + 1] : '\0';
    if (in_block_comment) {
      if (c == '*' && next == '/') {
        in_block_comment = false;
        ++i;
      }
      continue;
    }
    if (in_string) {
      out.push_back(c);
      if (c == '\\' && i + 1 < line.size()) {
        out.push_back(next);
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (in_char) {
      out.push_back(c);
      if (c == '\\' && i + 1 < line.size()) {
        out.push_back(next);
        ++i;
      } else if (c == '\'') {
        in_char = false;
      }
      continue;
    }
    if (c == '/' && next == '/') break;
    if (c == '/' && next == '*') {
      in_block_comment = true;
      ++i;
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '\'') in_char = true;
    out.push_back(c);
  }
  return out;
}

// Trim ASCII whitespace from both ends.
inline std::string trim(const std::string& s) {
  std::size_t a = 0;
  std::size_t b = s.size();
  while (a < b && std::isspace(static_cast<unsigned char>(s[a]))) ++a;
  while (b > a && std::isspace(static_cast<unsigned char>(s[b - 1]))) --b;
  return s.substr(a, b - a);
}

// Blank the interior of balanced template-argument lists so later paren /
// name scans don't trip over std::function<void()> and friends. A '<' only
// opens a list when it directly follows an identifier character or '>'.
inline std::string blank_template_args(const std::string& s) {
  std::string out = s;
  std::vector<std::size_t> opens;
  char prev = '\0';
  for (std::size_t i = 0; i < out.size(); ++i) {
    const char c = out[i];
    if (c == '<' &&
        (std::isalnum(static_cast<unsigned char>(prev)) || prev == '_' ||
         prev == '>')) {
      opens.push_back(i);
    } else if (c == '>' && !opens.empty() && prev != '-') {
      const std::size_t open = opens.back();
      opens.pop_back();
      if (opens.empty()) {
        for (std::size_t j = open + 1; j < i; ++j) out[j] = ' ';
      }
    }
    if (!std::isspace(static_cast<unsigned char>(c))) prev = c;
  }
  return out;
}

// A violation on `idx` (0-based) is suppressed when the offending line or
// the line above carries `<marker>: allow(<rule>)` — e.g.
// `// mmhar-lint: allow(loop-alloc) justification...`.
inline bool is_suppressed(const std::vector<std::string>& raw_lines,
                          std::size_t idx, const std::string& marker,
                          const std::string& rule) {
  const std::string needle = marker + ": allow(" + rule + ")";
  if (raw_lines[idx].find(needle) != std::string::npos) return true;
  return idx > 0 && raw_lines[idx - 1].find(needle) != std::string::npos;
}

// Extended suppression matcher core: `needle` is the literal text opening
// the rule list — e.g. "mmhar-rtcheck: allow(" or "MMHAR_DETCHECK_ALLOW(".
// The list may be comma-separated — `allow(throw, alloc) — why` — and the
// marker line may sit at the top of a run of consecutive //-comment lines
// directly above the offending line, so one justified comment covers a
// multi-line statement.
inline bool suppression_allows_needle(const std::vector<std::string>& raw_lines,
                                      std::size_t idx,
                                      const std::string& needle,
                                      const std::string& rule) {
  const auto line_allows = [&](const std::string& line) {
    const std::size_t at = line.find(needle);
    if (at == std::string::npos) return false;
    const std::size_t open = at + needle.size();
    const std::size_t close = line.find(')', open);
    if (close == std::string::npos) return false;
    std::size_t start = open;
    while (start < close) {
      std::size_t comma = line.find(',', start);
      if (comma == std::string::npos || comma > close) comma = close;
      std::size_t a = start;
      std::size_t b = comma;
      while (a < b && std::isspace(static_cast<unsigned char>(line[a]))) ++a;
      while (b > a && std::isspace(static_cast<unsigned char>(line[b - 1])))
        --b;
      if (b - a == rule.size() && line.compare(a, b - a, rule) == 0)
        return true;
      start = comma + 1;
    }
    return false;
  };
  if (idx >= raw_lines.size()) return false;
  if (line_allows(raw_lines[idx])) return true;
  for (std::size_t k = idx; k > 0;) {
    --k;
    const std::string& t = raw_lines[k];
    const std::size_t a = t.find_first_not_of(" \t");
    if (a == std::string::npos || t.compare(a, 2, "//") != 0) break;
    if (line_allows(t)) return true;
  }
  return false;
}

// Marker-style spelling used by mmhar_rtcheck:
// `// <marker>: allow(<rule>[, <rule>...]) — why`.
inline bool suppression_allows(const std::vector<std::string>& raw_lines,
                               std::size_t idx, const std::string& marker,
                               const std::string& rule) {
  return suppression_allows_needle(raw_lines, idx, marker + ": allow(", rule);
}

// Read a file into lines; false when unreadable.
inline bool read_lines(const std::filesystem::path& path,
                       std::vector<std::string>& lines) {
  lines.clear();
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  while (std::getline(in, line)) lines.push_back(std::move(line));
  return true;
}

// All C++ sources under `root`, sorted for deterministic reports.
inline std::vector<std::filesystem::path> collect_sources(
    const std::filesystem::path& root) {
  std::vector<std::filesystem::path> files;
  for (const auto& entry :
       std::filesystem::recursive_directory_iterator(root)) {
    if (!entry.is_regular_file()) continue;
    const auto ext = entry.path().extension().string();
    if (ext == ".h" || ext == ".cpp" || ext == ".hpp" || ext == ".cc")
      files.push_back(entry.path());
  }
  // Directory iteration order is unspecified; sort on the portable string
  // form so reports (and baselines keyed on them) are byte-identical
  // across platforms and filesystems.
  std::sort(files.begin(), files.end(),
            [](const std::filesystem::path& a, const std::filesystem::path& b) {
              return a.generic_string() < b.generic_string();
            });
  return files;
}

// Display key for a file under `root`: "<root-basename>/<relative-path>",
// so multi-root runs ("src", "bench", "tools") stay unambiguous and
// baseline entries are stable regardless of where the tool runs from.
inline std::string display_path(const std::filesystem::path& root,
                                const std::filesystem::path& file) {
  const std::string base = root.filename().string();
  const std::string rel =
      std::filesystem::relative(file, root).generic_string();
  return base.empty() ? rel : base + "/" + rel;
}

}  // namespace mmhar_tools
