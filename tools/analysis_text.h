// Text utilities shared by the repo's static-analysis tools
// (mmhar_lint.cpp, mmhar_analyze.cpp).
//
// Header-only and dependency-free on purpose: the tools must build and
// run standalone (a single g++/clang++ invocation, see the CI lint job)
// even when src/ itself does not compile.
#pragma once

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

namespace mmhar_tools {

// Strip // and /* */ comments; string and char literal *contents* are
// blanked (the quotes' positions are preserved as spaces) so rule regexes
// never fire on prose. Block-comment state carries across lines via
// `in_block_comment`.
inline std::string code_only(const std::string& line, bool& in_block_comment) {
  std::string out;
  out.reserve(line.size());
  bool in_string = false;
  bool in_char = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    const char next = i + 1 < line.size() ? line[i + 1] : '\0';
    if (in_block_comment) {
      if (c == '*' && next == '/') {
        in_block_comment = false;
        ++i;
      }
      continue;
    }
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      out.push_back(' ');
      continue;
    }
    if (in_char) {
      if (c == '\\') {
        ++i;
      } else if (c == '\'') {
        in_char = false;
      }
      out.push_back(' ');
      continue;
    }
    if (c == '/' && next == '/') break;
    if (c == '/' && next == '*') {
      in_block_comment = true;
      ++i;
      continue;
    }
    if (c == '"') {
      in_string = true;
      out.push_back(' ');
      continue;
    }
    if (c == '\'') {
      in_char = true;
      out.push_back(' ');
      continue;
    }
    out.push_back(c);
  }
  return out;
}

// As code_only, but string-literal contents survive — used where a rule
// must read names out of literals (env-var call sites, registry rows).
inline std::string code_keeping_strings(const std::string& line,
                                        bool& in_block_comment) {
  std::string out;
  out.reserve(line.size());
  bool in_string = false;
  bool in_char = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    const char next = i + 1 < line.size() ? line[i + 1] : '\0';
    if (in_block_comment) {
      if (c == '*' && next == '/') {
        in_block_comment = false;
        ++i;
      }
      continue;
    }
    if (in_string) {
      out.push_back(c);
      if (c == '\\' && i + 1 < line.size()) {
        out.push_back(next);
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (in_char) {
      out.push_back(c);
      if (c == '\\' && i + 1 < line.size()) {
        out.push_back(next);
        ++i;
      } else if (c == '\'') {
        in_char = false;
      }
      continue;
    }
    if (c == '/' && next == '/') break;
    if (c == '/' && next == '*') {
      in_block_comment = true;
      ++i;
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '\'') in_char = true;
    out.push_back(c);
  }
  return out;
}

// A violation on `idx` (0-based) is suppressed when the offending line or
// the line above carries `<marker>: allow(<rule>)` — e.g.
// `// mmhar-lint: allow(loop-alloc) justification...`.
inline bool is_suppressed(const std::vector<std::string>& raw_lines,
                          std::size_t idx, const std::string& marker,
                          const std::string& rule) {
  const std::string needle = marker + ": allow(" + rule + ")";
  if (raw_lines[idx].find(needle) != std::string::npos) return true;
  return idx > 0 && raw_lines[idx - 1].find(needle) != std::string::npos;
}

// Read a file into lines; false when unreadable.
inline bool read_lines(const std::filesystem::path& path,
                       std::vector<std::string>& lines) {
  lines.clear();
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  while (std::getline(in, line)) lines.push_back(std::move(line));
  return true;
}

// All C++ sources under `root`, sorted for deterministic reports.
inline std::vector<std::filesystem::path> collect_sources(
    const std::filesystem::path& root) {
  std::vector<std::filesystem::path> files;
  for (const auto& entry :
       std::filesystem::recursive_directory_iterator(root)) {
    if (!entry.is_regular_file()) continue;
    const auto ext = entry.path().extension().string();
    if (ext == ".h" || ext == ".cpp" || ext == ".hpp" || ext == ".cc")
      files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

// Display key for a file under `root`: "<root-basename>/<relative-path>",
// so multi-root runs ("src", "bench", "tools") stay unambiguous and
// baseline entries are stable regardless of where the tool runs from.
inline std::string display_path(const std::filesystem::path& root,
                                const std::filesystem::path& file) {
  const std::string base = root.filename().string();
  const std::string rel =
      std::filesystem::relative(file, root).generic_string();
  return base.empty() ? rel : base + "/" + rel;
}

}  // namespace mmhar_tools
