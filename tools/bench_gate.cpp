// Perf-regression gate over the committed BENCH_*.json baselines.
//
//   bench_gate --baseline BENCH_x.json --current build/BENCH_x.json
//              [--threshold 0.25] [--ratios-only]
//
// Parses the flat or one-level-nested numeric JSON the bench reporters
// emit (keys become "N64.speedup"-style dotted paths) and compares every
// gated metric in the INTERSECTION of the two files:
//
//  * lower-is-better  (seconds, s_per_antenna, p50_ms, p99_ms, p999_ms):
//    fail when current > baseline * (1 + threshold)
//  * higher-is-better (speedup, gflops, classifications_per_sec):
//    fail when current < baseline * (1 - threshold)
//
// Other numeric fields (configuration echoes like threads, rate_hz) are
// informational and never gated. Keys present in only one file are
// listed; in full mode a baseline key missing from the current run fails
// the gate (a silently vanished metric is a regression of the report
// itself), while --ratios-only restricts gating to ratio fields (basename
// ending in `speedup`, e.g. `speedup` and `shard_speedup`), which are
// machine-portable — absolute seconds measured on different hardware are
// not comparable, so CI uses --ratios-only against the committed
// baselines. Exit code: 0 pass, 1 regression, 2 usage/parse
// error.
//
// No library dependencies on purpose (like the other tools/ binaries):
// the gate must build and run even when src/ itself is broken.
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace {

struct Metrics {
  std::map<std::string, double> values;  // dotted-path key -> number
};

// Minimal parser for the subset of JSON the bench reporters write: an
// object of string/number values and one level of nested objects. Throws
// std::runtime_error on malformed input.
class Parser {
 public:
  explicit Parser(std::string text) : text_(std::move(text)) {}

  Metrics parse() {
    Metrics m;
    skip_ws();
    expect('{');
    parse_object(m, "");
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content after top-level object");
    return m;
  }

 private:
  void parse_object(Metrics& m, const std::string& prefix) {
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return;
    }
    for (;;) {
      skip_ws();
      // Cold path, one tiny string per key. mmhar-lint: allow(loop-alloc)
      const std::string key = parse_string();
      skip_ws();
      expect(':');
      skip_ws();
      const char c = peek();
      if (c == '{') {
        ++pos_;
        if (!prefix.empty()) fail("more than one level of nesting");
        parse_object(m, key + ".");
      } else if (c == '"') {
        parse_string();  // string values are informational, skipped
      } else {
        m.values[prefix + key] = parse_number();
      }
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') fail("escapes unsupported");
      out.push_back(text_[pos_++]);
    }
    expect('"');
    return out;
  }

  double parse_number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            std::strchr("+-.eE", text_[pos_]) != nullptr))
      ++pos_;
    if (pos_ == start) fail("expected a number");
    return std::strtod(text_.substr(start, pos_ - start).c_str(), nullptr);
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0)
      ++pos_;
  }

  [[noreturn]] void fail(const std::string& why) {
    throw std::runtime_error(why + " at offset " + std::to_string(pos_));
  }

  std::string text_;
  std::size_t pos_ = 0;
};

// The metric basename (text after the last '.') decides gating direction.
const char* const kLowerIsBetter[] = {"seconds", "s_per_antenna", "p50_ms",
                                      "p99_ms", "p999_ms"};
const char* const kHigherIsBetter[] = {"speedup", "gflops",
                                       "classifications_per_sec"};

std::string basename_of(const std::string& key) {
  const std::size_t dot = key.rfind('.');
  return dot == std::string::npos ? key : key.substr(dot + 1);
}

// Ratio metrics are named by suffix so derived ratios ("shard_speedup")
// gate like the plain "speedup" they generalize.
bool is_ratio_metric(const std::string& base) {
  static const std::string kSuffix = "speedup";
  return base.size() >= kSuffix.size() &&
         base.compare(base.size() - kSuffix.size(), kSuffix.size(), kSuffix) ==
             0;
}

enum class Direction { kLower, kHigher, kUngated };

Direction direction_of(const std::string& key) {
  const std::string base = basename_of(key);
  for (const char* name : kLowerIsBetter)
    if (base == name) return Direction::kLower;
  for (const char* name : kHigherIsBetter)
    if (base == name) return Direction::kHigher;
  if (is_ratio_metric(base)) return Direction::kHigher;
  return Direction::kUngated;
}

Metrics load(const char* path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error(std::string("cannot open ") + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return Parser(ss.str()).parse();
}

}  // namespace

int main(int argc, char** argv) {
  const char* baseline_path = nullptr;
  const char* current_path = nullptr;
  double threshold = 0.25;
  bool ratios_only = false;
  for (int i = 1; i < argc; ++i) {
    // A handful of argv entries. mmhar-lint: allow(loop-alloc)
    const std::string arg = argv[i];
    if (arg == "--baseline" && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (arg == "--current" && i + 1 < argc) {
      current_path = argv[++i];
    } else if (arg == "--threshold" && i + 1 < argc) {
      threshold = std::strtod(argv[++i], nullptr);
    } else if (arg == "--ratios-only") {
      ratios_only = true;
    } else {
      std::fprintf(stderr,
                   "usage: bench_gate --baseline FILE --current FILE "
                   "[--threshold 0.25] [--ratios-only]\n");
      return 2;
    }
  }
  if (baseline_path == nullptr || current_path == nullptr ||
      threshold <= 0.0) {
    std::fprintf(stderr, "bench_gate: --baseline and --current are required "
                         "and --threshold must be positive\n");
    return 2;
  }

  Metrics base;
  Metrics cur;
  try {
    base = load(baseline_path);
    cur = load(current_path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_gate: %s\n", e.what());
    return 2;
  }

  int failures = 0;
  int gated = 0;
  for (const auto& [key, base_val] : base.values) {
    Direction dir = direction_of(key);
    if (dir == Direction::kUngated) continue;
    if (ratios_only && !is_ratio_metric(basename_of(key))) continue;
    const auto it = cur.values.find(key);
    if (it == cur.values.end()) {
      if (ratios_only) {
        std::printf("SKIP  %-45s missing from current run\n", key.c_str());
      } else {
        std::printf("FAIL  %-45s present in baseline, missing from current\n",
                    key.c_str());
        ++failures;
      }
      continue;
    }
    const double cur_val = it->second;
    ++gated;
    bool ok = true;
    double limit = 0.0;
    if (dir == Direction::kLower) {
      limit = base_val * (1.0 + threshold);
      ok = cur_val <= limit;
    } else {
      limit = base_val * (1.0 - threshold);
      ok = cur_val >= limit;
    }
    std::printf("%s  %-45s baseline %12.4f  current %12.4f  limit %12.4f\n",
                ok ? "ok  " : "FAIL", key.c_str(), base_val, cur_val, limit);
    if (!ok) ++failures;
  }
  for (const auto& [key, val] : cur.values) {
    (void)val;
    if (direction_of(key) == Direction::kUngated) continue;
    if (base.values.find(key) == base.values.end())
      std::printf("NEW   %-45s not in baseline (not gated)\n", key.c_str());
  }

  if (gated == 0) {
    std::fprintf(stderr, "bench_gate: no gated metrics in common — check the "
                         "file pairing\n");
    return 2;
  }
  if (failures > 0) {
    std::fprintf(stderr,
                 "bench_gate: %d metric(s) regressed past %.0f%% vs %s\n",
                 failures, 100.0 * threshold, baseline_path);
    return 1;
  }
  std::printf("bench_gate: %d metric(s) within %.0f%% of baseline\n", gated,
              100.0 * threshold);
  return 0;
}
