// mmhar_lint — repo-specific static checks the generic tools can't express.
//
// Walks a source tree (normally src/) and flags hazards that have bitten or
// would bite this codebase specifically:
//
//   banned-rng            rand()/srand()/std::random_device outside
//                         common/rng: every stochastic draw must flow
//                         through the seeded, forkable mmhar::Rng or
//                         experiments stop being reproducible.
//   naked-alloc           naked new/malloc/calloc/free: ownership is
//                         unique_ptr/vector everywhere; a raw allocation
//                         leaks on the exception paths MMHAR_CHECK creates.
//   unchecked-data-arith  pointer arithmetic on .data() with no
//                         MMHAR_CHECK/MMHAR_REQUIRE in the preceding lines:
//                         the hot kernels may do this *after* validating
//                         bounds, and the check must stay adjacent.
//   missing-pragma-once   a header whose first non-comment line is not
//                         #pragma once.
//   naked-cache-write     std::ofstream / open_for_write outside the
//                         artifact store: cache and artifact writes must
//                         go through save_artifact (atomic rename +
//                         checksum) or AppendJournal, or a crash leaves a
//                         half-written file that wedges every later run.
//   loop-alloc            a std:: container declared by value inside a
//                         for/while body: each iteration pays a heap
//                         allocation. Hoist the container out of the loop
//                         and reuse it (assign/clear), as the DSP and
//                         Shapley hot paths do.
//
// Suppression: append `// mmhar-lint: allow(<rule>)` to the offending line
// (or the line above) with a short justification. Pre-existing debt lives
// in the baseline file (tools/lint_baseline.txt): per (rule, file) counts
// that may shrink but never grow. New violations fail the run (exit 1).
//
// Usage:
//   mmhar_lint <root>... [--baseline <file>] [--update-baseline]
//
// Multiple roots may be given (e.g. `mmhar_lint src bench tools`); report
// and baseline paths are prefixed with the root's basename
// ("src/nn/conv.cpp") so one baseline file covers all of them.
//
// Run in CI and as a ctest (see tools/CMakeLists.txt).

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <regex>
#include <sstream>
#include <string>
#include <vector>

#include "analysis_text.h"

namespace fs = std::filesystem;
using mmhar_tools::code_only;

namespace {

struct Violation {
  std::string rule;
  std::string file;   // display path: <root-basename>/<relative-path>
  std::size_t line;   // 1-based
  std::string message;
};

bool is_suppressed(const std::vector<std::string>& raw_lines, std::size_t idx,
                   const std::string& rule) {
  return mmhar_tools::is_suppressed(raw_lines, idx, "mmhar-lint", rule);
}

// ---- Per-file rule engine --------------------------------------------------

class FileLinter {
 public:
  FileLinter(std::string rel_path, std::vector<std::string> raw)
      : rel_path_(std::move(rel_path)), raw_(std::move(raw)) {
    code_.reserve(raw_.size());
    bool in_block = false;
    for (const auto& l : raw_) code_.push_back(code_only(l, in_block));
  }

  std::vector<Violation> run() {
    check_banned_rng();
    check_naked_alloc();
    check_unchecked_data_arith();
    check_loop_alloc();
    check_pragma_once();
    check_naked_cache_write();
    return std::move(found_);
  }

 private:
  void add(const std::string& rule, std::size_t idx, std::string message) {
    if (is_suppressed(raw_, idx, rule)) return;
    found_.push_back({rule, rel_path_, idx + 1, std::move(message)});
  }

  void check_banned_rng() {
    // The Rng implementation itself is the one legitimate home for raw
    // generator machinery.
    if (rel_path_.find("common/rng") != std::string::npos) return;
    static const std::regex re(
        R"((^|[^\w])(s?rand)\s*\(|random_device)");
    for (std::size_t i = 0; i < code_.size(); ++i) {
      if (std::regex_search(code_[i], re))
        add("banned-rng", i,
            "raw rand()/srand()/std::random_device; draw from a plumbed "
            "mmhar::Rng (common/rng.h) so runs stay reproducible");
    }
  }

  void check_naked_alloc() {
    static const std::regex re(
        R"((^|[^\w])(new\s+[A-Za-z_:][\w:<]*|malloc\s*\(|calloc\s*\(|realloc\s*\(|free\s*\())");
    for (std::size_t i = 0; i < code_.size(); ++i) {
      if (std::regex_search(code_[i], re))
        add("naked-alloc", i,
            "naked new/malloc; use std::make_unique / std::vector so the "
            "MMHAR_CHECK exception paths cannot leak");
    }
  }

  void check_unchecked_data_arith() {
    static const std::regex re(R"(\bdata\(\)\s*\+)");
    constexpr std::size_t kWindow = 10;  // lines of adjacency accepted
    for (std::size_t i = 0; i < code_.size(); ++i) {
      if (!std::regex_search(code_[i], re)) continue;
      bool checked = false;
      const std::size_t lo = i >= kWindow ? i - kWindow : 0;
      for (std::size_t j = lo; j <= i && !checked; ++j) {
        if (code_[j].find("MMHAR_CHECK") != std::string::npos ||
            code_[j].find("MMHAR_REQUIRE") != std::string::npos) {
          checked = true;
        }
      }
      if (!checked)
        add("unchecked-data-arith", i,
            "pointer arithmetic on data() with no MMHAR_CHECK/MMHAR_REQUIRE "
            "within the preceding " + std::to_string(kWindow) + " lines");
    }
  }

  // The shared-accumulator detector (parallel-ref-accum) that lived here
  // until PR 10 is retired: mmhar_detcheck's parallel-accum rule runs the
  // same algorithm over every file AND attaches the determinism-root call
  // chain when the site is reachable. One owner, strictly more signal.

  // Per-iteration heap allocation: a by-value std:: container declared
  // inside a for/while body. Brace counting tracks which scopes are loop
  // bodies; a `;` at paren depth 0 before any `{` ends a braceless loop.
  void check_loop_alloc() {
    static const std::regex loop_re(R"((^|[^\w])(for|while)\s*\()");
    static const std::regex decl_re(
        R"(\bstd::(vector|string|deque|list|map|unordered_map|set|unordered_set)\s*(<[^;{}]*>)?\s+[A-Za-z_]\w*\s*[({=;])");
    std::vector<int> loop_body_depth;  // brace depth of each open loop body
    int depth = 0;
    int paren = 0;
    bool pending_loop = false;  // saw for/while; waiting for its body
    for (std::size_t i = 0; i < code_.size(); ++i) {
      const std::string& l = code_[i];
      if (!loop_body_depth.empty() && std::regex_search(l, decl_re)) {
        add("loop-alloc", i,
            "std:: container constructed inside a loop body — one heap "
            "allocation per iteration; hoist it out and reuse "
            "(assign/clear) instead");
      }
      if (std::regex_search(l, loop_re)) pending_loop = true;
      for (const char c : l) {
        if (c == '(') {
          ++paren;
        } else if (c == ')') {
          --paren;
        } else if (c == '{') {
          ++depth;
          if (pending_loop && paren == 0) {
            loop_body_depth.push_back(depth);
            pending_loop = false;
          }
        } else if (c == '}') {
          if (!loop_body_depth.empty() && loop_body_depth.back() == depth)
            loop_body_depth.pop_back();
          --depth;
        } else if (c == ';' && paren == 0 && pending_loop) {
          pending_loop = false;  // braceless single-statement loop
        }
      }
    }
  }

  void check_naked_cache_write() {
    // The durable-write machinery itself is the one legitimate home for
    // raw file output.
    if (rel_path_.find("common/artifact_store") != std::string::npos ||
        rel_path_.find("common/journal") != std::string::npos ||
        rel_path_.find("common/serialize") != std::string::npos)
      return;
    static const std::regex re(R"(std::ofstream|\bopen_for_write\s*\()");
    for (std::size_t i = 0; i < code_.size(); ++i) {
      if (std::regex_search(code_[i], re))
        add("naked-cache-write", i,
            "raw file write outside the artifact store; route it through "
            "save_artifact (common/artifact_store.h) or AppendJournal so "
            "a crash can never leave a half-written cache behind");
    }
  }

  void check_pragma_once() {
    if (rel_path_.size() < 2 ||
        rel_path_.compare(rel_path_.size() - 2, 2, ".h") != 0)
      return;
    std::string t;  // hoisted per-line scratch
    for (std::size_t i = 0; i < code_.size(); ++i) {
      t = code_[i];
      t.erase(std::remove_if(t.begin(), t.end(),
                             [](unsigned char c) { return std::isspace(c); }),
              t.end());
      if (t.empty()) continue;
      if (t != "#pragmaonce")
        add("missing-pragma-once", i,
            "header's first non-comment line must be #pragma once");
      return;
    }
  }

  std::string rel_path_;
  std::vector<std::string> raw_;
  std::vector<std::string> code_;
  std::vector<Violation> found_;
};

// ---- Baseline handling -----------------------------------------------------

using BaselineKey = std::pair<std::string, std::string>;  // (rule, file)

std::map<BaselineKey, std::size_t> load_baseline(const fs::path& path) {
  std::map<BaselineKey, std::size_t> baseline;
  std::ifstream in(path);
  if (!in) return baseline;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream is(line);
    std::string rule, file;
    std::size_t count = 0;
    if (is >> rule >> file >> count) baseline[{rule, file}] = count;
  }
  return baseline;
}

void write_baseline(const fs::path& path,
                    const std::map<BaselineKey, std::size_t>& counts) {
  // Writes a git-tracked config file on explicit --update-baseline, not a
  // runtime cache; a partial write is caught by `git diff` review, so the
  // atomicity machinery buys nothing. mmhar-lint: allow(naked-cache-write)
  std::ofstream out(path);
  out << "# mmhar_lint baseline — pre-existing (rule, file) violation "
         "counts.\n"
      << "# Counts may shrink (tighten this file when they do) but a count\n"
      << "# above its baseline fails the build. Regenerate with\n"
      << "#   mmhar_lint src bench tools --baseline tools/lint_baseline.txt "
         "--update-baseline\n";
  for (const auto& [key, count] : counts)
    out << key.first << ' ' << key.second << ' ' << count << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<fs::path> roots;
  fs::path baseline_path;
  bool update_baseline = false;
  bool allow_baseline = false;
  std::string arg;  // hoisted per-flag scratch
  for (int i = 1; i < argc; ++i) {
    arg = argv[i];
    if (arg == "--baseline" && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (arg == "--update-baseline") {
      update_baseline = true;
    } else if (arg == "--allow-baseline") {
      allow_baseline = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown argument: " << arg << "\n";
      return 2;
    } else {
      roots.emplace_back(arg);
    }
  }
  if (roots.empty()) {
    std::cerr << "usage: mmhar_lint <root>... [--baseline <file>] "
                 "[--update-baseline] [--allow-baseline]\n";
    return 2;
  }

  std::vector<Violation> violations;
  std::size_t file_count = 0;
  std::vector<std::string> lines;  // hoisted per-file scratch
  for (const auto& root : roots) {
    if (!fs::is_directory(root)) {
      std::cerr << "mmhar_lint: not a directory: " << root << "\n";
      return 2;
    }
    for (const auto& path : mmhar_tools::collect_sources(root)) {
      if (!mmhar_tools::read_lines(path, lines)) {
        std::cerr << "mmhar_lint: cannot read " << path << "\n";
        return 2;
      }
      auto found = FileLinter(mmhar_tools::display_path(root, path),
                              std::move(lines))
                       .run();
      violations.insert(violations.end(), found.begin(), found.end());
      ++file_count;
    }
  }

  std::map<BaselineKey, std::size_t> counts;
  for (const auto& v : violations) ++counts[{v.rule, v.file}];

  if (update_baseline) {
    if (baseline_path.empty()) {
      std::cerr << "--update-baseline requires --baseline\n";
      return 2;
    }
    write_baseline(baseline_path, counts);
    std::cout << "mmhar_lint: baseline rewritten with " << violations.size()
              << " violation(s) across " << counts.size() << " (rule, file) "
              << "pair(s)\n";
    return 0;
  }

  const auto baseline = load_baseline(baseline_path);
  // The debt ratchet reached zero: a non-empty baseline is itself a lint
  // error now, so new debt cannot be hidden by regenerating the file. The
  // escape hatch (--allow-baseline, for local archaeology on old branches)
  // is deliberately NOT passed by CI or ctest.
  if (!baseline.empty() && !allow_baseline) {
    std::cerr << "mmhar_lint: FAIL — baseline " << baseline_path << " has "
              << baseline.size() << " (rule, file) row(s); the baseline is "
              << "retired and must stay empty. Fix the violations or add a "
              << "justified `// mmhar-lint: allow(<rule>)` instead of "
              << "re-baselining. (--allow-baseline overrides locally.)\n";
    for (const auto& [key, count] : baseline)
      std::cerr << "  " << key.first << ' ' << key.second << ' ' << count
                << "\n";
    return 1;
  }
  bool failed = false;
  std::size_t waived = 0;
  for (const auto& [key, count] : counts) {
    const auto it = baseline.find(key);
    const std::size_t allowed = it == baseline.end() ? 0 : it->second;
    if (count > allowed) {
      failed = true;
      std::cerr << "mmhar_lint: " << key.second << ": rule '" << key.first
                << "': " << count << " violation(s), baseline allows "
                << allowed << ":\n";
      for (const auto& v : violations) {
        if (v.rule == key.first && v.file == key.second)
          std::cerr << "  " << v.file << ":" << v.line << ": [" << v.rule
                    << "] " << v.message << "\n";
      }
    } else {
      waived += count;
      if (count < allowed)
        std::cout << "mmhar_lint: note: " << key.second << " '" << key.first
                  << "' improved to " << count << " (baseline " << allowed
                  << ") — tighten the baseline\n";
    }
  }
  // Baseline entries whose file no longer violates at all.
  for (const auto& [key, allowed] : baseline) {
    if (allowed > 0 && counts.find(key) == counts.end())
      std::cout << "mmhar_lint: note: stale baseline entry " << key.first
                << " " << key.second << " (now clean)\n";
  }

  std::cout << "mmhar_lint: scanned " << file_count << " file(s), "
            << violations.size() << " violation(s) (" << waived
            << " baselined)\n";
  if (failed) {
    std::cerr << "mmhar_lint: FAIL — fix the new violations above, add a "
                 "`// mmhar-lint: allow(<rule>)` with a justification, or "
                 "(for pre-existing debt only) refresh the baseline\n";
    return 1;
  }
  std::cout << "mmhar_lint: OK\n";
  return 0;
}
