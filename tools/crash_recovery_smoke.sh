#!/usr/bin/env bash
# Crash-recovery smoke test: prove that a sweep killed with SIGKILL at an
# arbitrary point converges to bit-identical numbers on rerun, with no
# manual cache cleanup in between.
#
# Plan:
#   1. Run a tiny injection-rate sweep to completion in a fresh cache
#      (the reference), timing it.
#   2. Run the same sweep in a second fresh cache and SIGKILL it at
#      roughly half the reference wall-clock — mid dataset generation,
#      mid training, or mid sweep, wherever the axe happens to fall.
#   3. Rerun the killed sweep to completion against the same cache. The
#      artifact store must quarantine/regenerate anything half-written
#      and the sweep journal must replay completed repeats.
#   4. Diff the data rows of the reference and the recovered run; any
#      difference (or any FAILED row) fails the smoke.
#
# Usage: tools/crash_recovery_smoke.sh [path-to-bench-binary]
# Default binary: build/bench/bench_fig8_similar_injection

set -u

BENCH=${1:-build/bench/bench_fig8_similar_injection}
if [ ! -x "$BENCH" ]; then
  echo "crash_recovery_smoke: bench binary not found: $BENCH" >&2
  exit 2
fi

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

# Tiny, deterministic knobs: one rate, two repeats, two epochs. Cold-cache
# wall-clock is ~1 minute on 2 cores.
export MMHAR_REPS_TRAIN=1
export MMHAR_REPS_TEST=1
export MMHAR_EPOCHS=2
export MMHAR_REPEATS=2
export MMHAR_RATES=0.4
export MMHAR_LOG_LEVEL=${MMHAR_LOG_LEVEL:-3}

# Data rows only: drop banners, comments, and the column header, which
# carry config echoes rather than results.
rows() { grep -Ev '^(==|#|scenario)' "$1" | grep -v '^[[:space:]]*$'; }

echo "== reference run (uninterrupted, fresh cache) =="
start=$SECONDS
if ! MMHAR_CACHE_DIR="$WORK/cache_ref" "$BENCH" > "$WORK/ref.out" 2>&1; then
  echo "crash_recovery_smoke: reference run failed" >&2
  cat "$WORK/ref.out" >&2
  exit 1
fi
ref_elapsed=$((SECONDS - start))
echo "reference finished in ${ref_elapsed}s"
rows "$WORK/ref.out"

kill_after=$((ref_elapsed / 2))
[ "$kill_after" -lt 5 ] && kill_after=5

echo "== interrupted run (fresh cache, SIGKILL after ${kill_after}s) =="
MMHAR_CACHE_DIR="$WORK/cache_crash" "$BENCH" > "$WORK/crash1.out" 2>&1 &
victim=$!
sleep "$kill_after"
if kill -0 "$victim" 2>/dev/null; then
  kill -9 "$victim"
  wait "$victim" 2>/dev/null
  echo "killed pid $victim mid-run"
else
  wait "$victim"
  echo "warning: run finished before the kill landed; rerun still checks" \
       "cache reuse determinism" >&2
fi

echo "== recovery run (same cache, no cleanup) =="
if ! MMHAR_CACHE_DIR="$WORK/cache_crash" "$BENCH" > "$WORK/crash2.out" 2>&1; then
  echo "crash_recovery_smoke: recovery run failed" >&2
  cat "$WORK/crash2.out" >&2
  exit 1
fi
rows "$WORK/crash2.out"

status=0
if grep -q "FAILED" "$WORK/crash2.out"; then
  echo "crash_recovery_smoke: recovery run recorded failed sweep points" >&2
  status=1
fi
if ! diff <(rows "$WORK/ref.out") <(rows "$WORK/crash2.out"); then
  echo "crash_recovery_smoke: recovered numbers differ from the" \
       "uninterrupted reference" >&2
  status=1
fi

if [ "$status" -eq 0 ]; then
  echo "crash_recovery_smoke: OK (recovered run is bit-identical to the" \
       "reference)"
fi
exit $status
