// mmhar_detcheck — cross-translation-unit determinism checker. Proves
// (textually, over the whole repo at once) that every function reachable
// from a MMHAR_DETERMINISTIC annotation root — the DRAI heatmap pipeline,
// Sequential forward/backward, the Eq.-3 coherent ray sum and its sequence
// driver, training, and the serving round/inference paths — cannot produce
// different bits on different runs: no hash-order iteration, no
// nondeterminism source (wall clocks, std::rand, thread ids, pointer
// hashing/ordering), no racy parallel reduction, and no env knob read
// after startup. Every bit-identity claim the runtime equality tests make
// (SIMD kernels invariant under MMHAR_THREADS, serving logits invariant
// under shard count and batch composition, fault-degraded rounds equal to
// fault-free ones) assumes these properties; the runtime tests can only
// witness the paths they exercise, this checker covers the rest.
//
// The parsing/resolution/reachability machinery is tools/callgraph.h
// (shared with mmhar_rtcheck): a function-level call graph over all TUs,
// decl-carried annotations unioned into definitions by qualified name, and
// breadth-first reachability that reports each violation with the call
// chain from the nearest root.
//
// Rules:
//   unordered-iter  iterating a std::unordered_map/unordered_set (range-for
//                   or .begin()/.cbegin()/.rbegin()) in a reachable body.
//                   Iteration order depends on hashing, insertion history,
//                   and libstdc++ version; any result folded over it is not
//                   reproducible. Lookup (.find/.count/.at) is fine —
//                   that's why the rule fires on iteration, not on the
//                   container declaration.
//   nondet-call     a banned nondeterminism source in a reachable body:
//                   rand/srand/random-family, std::random_device,
//                   thread ids, wall/CPU clocks (::now(), time(), clock(),
//                   gettimeofday, clock_gettime, localtime/gmtime/mktime),
//                   std::hash<T*> / std::less<T*> (address-dependent), and
//                   reinterpret_cast to uintptr_t (pointer-order logic).
//                   Seeded repo Rng streams are fine; ambient entropy is
//                   not.
//   parallel-accum  compound assignment to a captured-by-reference
//                   variable inside a parallel_for/parallel_for_chunked
//                   [&] lambda that the lambda did not declare — a shared-
//                   accumulator race whose result depends on thread
//                   interleaving. Promoted from mmhar_lint's retired
//                   parallel-ref-accum rule and scanned over EVERY
//                   function (not just reachable ones) so no file loses
//                   the lint-era coverage; the call chain is attached when
//                   the site is reachable from a determinism root.
//   env-read        any getenv/env_* call in a reachable body. Knobs must
//                   be read once at startup and passed down as plain
//                   values — a mid-pipeline read makes the result depend
//                   on ambient process state the experiment log does not
//                   capture. common/env.cpp (the accessors' own
//                   implementation) is exempt.
//   root-coverage   every entry of the --roots file must name an existing
//                   function that still carries MMHAR_DETERMINISTIC —
//                   deleting the annotation from a root is a failure, not
//                   a silent shrink of the checked set.
//   layering        the module dependency DAG, over `#include "..."` edges
//                   of files under src/. Modules have strict ranks
//                   (common=0; tensor=mesh=1; dsp=nn=2; radar=3; har=4;
//                   xai=defense=5; core=serving=6) and an include may only
//                   reach a strictly lower rank (same module is free).
//                   Strict ranks make cycles impossible by construction,
//                   so an upward OR lateral cross-module include fails.
//                   bench/, tools/, and tests/ sit above the DAG and may
//                   include anything.
//
// Suppression: `// MMHAR_DETCHECK_ALLOW(<rule>[, <rule>...]) — why` on the
// offending line, or on a comment line in the run of //-comments directly
// above it. The pseudo-rule `calls` stops call-graph traversal out of a
// line, for provably once-per-process paths (e.g. a magic-static
// initializer). There is deliberately no baseline mechanism: the tree must
// be clean, exactly like mmhar_rtcheck.
//
// Usage:
//   mmhar_detcheck [--roots <roots.txt>] [--rule <name>]...
//                  [--report <file>] <root>...
//
// Exit codes: 0 clean, 1 violations, 2 usage/IO error — aligned with
// mmhar_lint / mmhar_analyze / mmhar_rtcheck. Runs in CI and as a ctest
// (see tools/CMakeLists.txt); --report writes the violation list with call
// chains to a file CI uploads as an artifact on failure.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analysis_text.h"
#include "callgraph.h"

namespace fs = std::filesystem;
using mmhar_tools::AnnotationTokens;
using mmhar_tools::CallGraph;
using mmhar_tools::DeclFlags;
using mmhar_tools::FnRecord;
using mmhar_tools::Reachability;
using mmhar_tools::RootSpec;
using mmhar_tools::ScopeScanner;
using mmhar_tools::SourceFile;
using mmhar_tools::Violation;
using mmhar_tools::blank_template_args;
using mmhar_tools::collect_sources;
using mmhar_tools::display_path;
using mmhar_tools::load_root_specs;
using mmhar_tools::read_lines;
using mmhar_tools::sort_unique_violations;
using mmhar_tools::suppression_allows_needle;
using mmhar_tools::trim;

namespace {

constexpr const char* kAllowNeedle = "MMHAR_DETCHECK_ALLOW(";

// Annotation-token bit position in FnRecord::flags.
constexpr std::size_t kDeterministic = 0;

// ---- layering: the module rank map ------------------------------------------

// Strict ranks over src/ modules. An include edge is legal iff it targets
// a strictly lower rank or stays inside its own module; equal-rank
// cross-module includes are violations (they would let the two modules
// grow into a cycle one edge at a time). Kept in sync with the DESIGN.md
// layering section.
const std::map<std::string, int>& module_ranks() {
  static const std::map<std::string, int> ranks = {
      {"common", 0}, {"tensor", 1}, {"mesh", 1},    {"dsp", 2},
      {"nn", 2},     {"radar", 3},  {"har", 4},     {"xai", 5},
      {"defense", 5}, {"core", 6},  {"serving", 6}};
  return ranks;
}

// ---- nondet-call: banned-source patterns ------------------------------------

struct NondetPat {
  std::regex re;
  const char* msg;
};

const std::vector<NondetPat>& nondet_patterns() {
  static const std::vector<NondetPat> pats = [] {
    std::vector<NondetPat> p;
    p.push_back({std::regex(R"((^|[^\w])(rand|srand|rand_r|random|drand48|lrand48|mrand48)\s*\()"),
                 "C rand-family call draws from ambient global state"});
    p.push_back({std::regex(R"(\bstd::random_device\b)"),
                 "std::random_device is an entropy source — results differ "
                 "every run"});
    p.push_back({std::regex(R"(\bthis_thread\s*::\s*get_id\b|(\.|->)\s*get_id\s*\()"),
                 "thread ids depend on scheduling and OS allocation"});
    p.push_back({std::regex(R"(::\s*now\s*\()"),
                 "clock read — wall/steady time differs every run"});
    p.push_back({std::regex(R"((^|[^\w])(time|clock)\s*\()"),
                 "C time/clock read differs every run"});
    p.push_back({std::regex(R"(\b(gettimeofday|clock_gettime|localtime|gmtime|mktime|ctime|strftime)\s*\()"),
                 "time-of-day call differs every run"});
    p.push_back({std::regex(R"(\bstd::hash\s*<[^<>]*\*)"),
                 "std::hash over a pointer type — hashes the address, which "
                 "ASLR changes every run"});
    p.push_back({std::regex(R"(\bstd::less\s*<[^<>]*\*)"),
                 "std::less over a pointer type — orders by address, which "
                 "ASLR changes every run"});
    p.push_back({std::regex(R"(\breinterpret_cast\s*<\s*(std::)?u?intptr_t\b)"),
                 "pointer-to-integer cast — address-derived values change "
                 "every run"});
    return p;
  }();
  return pats;
}

// ---- per-file derived indexes -----------------------------------------------

struct FileDetail {
  // Names declared as std::unordered_{map,set,multimap,multiset} anywhere
  // in the file (function locals and record members alike).
  std::set<std::string> unordered_names;
  // `#include "..."` targets with their lines, for the layering rule.
  std::vector<std::pair<std::string, std::size_t>> includes;
};

FileDetail index_file(const SourceFile& file) {
  FileDetail d;
  static const std::regex unordered_re(
      R"(\bunordered_(map|set|multimap|multiset)\s*<[^<>]*>\s*[&*]?\s*([A-Za-z_]\w*))");
  static const std::regex include_re(R"(^\s*#\s*include\s+"([^"]+)\")");
  std::string blanked;  // hoisted per-line scratch
  for (std::size_t i = 0; i < file.code.size(); ++i) {
    blanked = blank_template_args(file.code[i]);
    std::smatch m;
    if (std::regex_search(blanked, m, unordered_re))
      d.unordered_names.insert(m[2].str());
    // Include paths live inside string literals, so read the
    // strings-preserved view.
    if (std::regex_search(file.code_strings[i], m, include_re))
      d.includes.emplace_back(m[1].str(), i + 1);
  }
  return d;
}

class Checker {
 public:
  explicit Checker(CallGraph graph) : graph_(std::move(graph)) {
    details_.reserve(graph_.files().size());
    for (const auto& file : graph_.files())
      details_.push_back(index_file(file));
  }

  bool load_roots(const fs::path& path) {
    roots_path_ = path.generic_string();
    return load_root_specs(path, {"deterministic"}, root_specs_,
                           roots_parse_error_);
  }

  const std::string& roots_parse_error() const { return roots_parse_error_; }

  std::vector<Violation> run(const std::set<std::string>& rules) {
    if (rules.count("root-coverage")) rule_root_coverage();
    if (rules.count("layering")) rule_layering();
    propagate(rules);
    sort_unique_violations(found_);
    return std::move(found_);
  }

  std::size_t function_count() const { return graph_.functions().size(); }
  std::size_t root_count() const { return root_count_; }
  std::size_t reachable_count() const { return reachable_count_; }

 private:
  bool line_allows(const SourceFile& file, std::size_t ln,
                   const std::string& rule) const {
    return ln >= 1 && ln <= file.raw.size() &&
           suppression_allows_needle(file.raw, ln - 1, kAllowNeedle, rule);
  }
  bool line_allows(const FnRecord& fn, std::size_t ln,
                   const std::string& rule) const {
    return line_allows(graph_.file_of(fn), ln, rule);
  }

  void rule_root_coverage() {
    const auto& functions = graph_.functions();
    std::vector<std::size_t> matches;  // hoisted per-spec scratch
    for (const auto& spec : root_specs_) {
      matches.clear();
      for (std::size_t i = 0; i < functions.size(); ++i)
        if (CallGraph::suffix_matches(functions[i].qual, spec.name))
          matches.push_back(i);
      if (matches.empty()) {
        found_.push_back({"root-coverage", roots_path_, spec.line,
                          "required root '" + spec.name +
                              "' names no function in the scanned roots — "
                              "the deterministic entry point was renamed or "
                              "deleted without updating " + roots_path_,
                          ""});
        continue;
      }
      bool ok = false;
      for (const std::size_t id : matches)
        if (functions[id].has_flag(kDeterministic)) ok = true;
      if (!ok) {
        const FnRecord& fn = functions[matches.front()];
        found_.push_back(
            {"root-coverage", fn.file, fn.line,
             "required root '" + spec.name +
                 "' has lost its MMHAR_DETERMINISTIC annotation (declared "
                 "required in " + roots_path_ + ":" +
                 std::to_string(spec.line) + ")",
             ""});
      }
    }
  }

  // Module-layering DAG over include edges. File-level: reachability is
  // irrelevant (an illegal edge is an architecture defect whether or not
  // today's roots exercise it).
  void rule_layering() {
    const auto& ranks = module_ranks();
    const auto module_of = [](const std::string& display) -> std::string {
      // "src/<module>/..." -> module; anything else sits above the DAG.
      if (display.rfind("src/", 0) != 0) return "";
      const std::size_t a = 4;
      const std::size_t b = display.find('/', a);
      return b == std::string::npos ? "" : display.substr(a, b - a);
    };
    for (std::size_t f = 0; f < graph_.files().size(); ++f) {
      const SourceFile& file = graph_.files()[f];
      const std::string mod = module_of(file.path);
      const auto mod_it = ranks.find(mod);
      if (mod_it == ranks.end()) continue;
      for (const auto& [target_path, ln] : details_[f].includes) {
        const std::size_t sep = target_path.find('/');
        if (sep == std::string::npos) continue;  // same-directory include
        const std::string target = target_path.substr(0, sep);
        const auto tgt_it = ranks.find(target);
        if (tgt_it == ranks.end() || target == mod) continue;
        if (tgt_it->second < mod_it->second) continue;  // downward edge: ok
        if (line_allows(file, ln, "layering")) continue;
        std::ostringstream msg;
        msg << "include of \"" << target_path << "\" pulls module '"
            << target << "' (rank " << tgt_it->second << ") into module '"
            << mod << "' (rank " << mod_it->second
            << ") — the layering DAG only allows includes of strictly "
               "lower-ranked modules";
        found_.push_back({"layering", file.path, ln, msg.str(), ""});
      }
    }
  }

  // parallel-accum: mmhar_lint's retired parallel-ref-accum detector,
  // verbatim algorithm, file-granular so coverage is identical to the lint
  // era (every file, not just reachable functions).
  void rule_parallel_accum(
      const std::map<std::size_t, Reachability::Via>& via) {
    static const std::regex call_re(R"(parallel_for(_chunked)?\s*\()");
    static const std::regex accum_re(
        R"(([A-Za-z_]\w*)(\s*\[[^\]]*\])?(\.\w+|->\w+)?\s*(\+=|-=|\*=|/=|\+\+|--))");
    std::string cap_list;  // scratch strings hoisted out of the scan loops
    std::string body;
    std::string tail;
    std::string name;
    std::string chain;
    for (std::size_t f = 0; f < graph_.files().size(); ++f) {
      const SourceFile& file = graph_.files()[f];
      const auto& code = file.code;
      for (std::size_t i = 0; i < code.size(); ++i) {
        if (!std::regex_search(code[i], call_re)) continue;
        // Find the lambda's opening brace at or after the call, then the
        // matching close brace (brace counting over comment-stripped code).
        std::size_t open_line = i;
        std::size_t open_col = std::string::npos;
        for (std::size_t j = i; j < code.size() && j < i + 4; ++j) {
          const auto cap = code[j].find('[');
          if (cap == std::string::npos) continue;
          const auto brace = code[j].find('{', cap);
          if (brace != std::string::npos) {
            open_line = j;
            open_col = brace;
            break;
          }
        }
        if (open_col == std::string::npos) continue;  // no lambda body found
        // Only [&] (or [&, ...]) captures can alias shared accumulators.
        const auto cap_start = code[open_line].find('[');
        cap_list.assign(code[open_line], cap_start,
                        code[open_line].find(']', cap_start) - cap_start);
        if (cap_list.find('&') == std::string::npos) continue;

        int depth = 0;
        std::size_t end_line = open_line;
        std::ostringstream body_os;
        for (std::size_t j = open_line; j < code.size(); ++j) {
          const std::string& l = code[j];
          const std::size_t start = j == open_line ? open_col : 0;
          bool closed = false;
          for (std::size_t c = start; c < l.size(); ++c) {
            if (l[c] == '{') ++depth;
            if (l[c] == '}') {
              --depth;
              if (depth == 0) {
                closed = true;
                break;
              }
            }
          }
          body_os << l << '\n';
          if (closed) {
            end_line = j;
            break;
          }
        }
        body = body_os.str();

        for (std::size_t j = open_line; j <= end_line; ++j) {
          std::smatch m;
          tail = code[j];
          while (std::regex_search(tail, m, accum_re)) {
            name = m[1].str();
            // `declared in the body` approximated as: some line of the
            // body introduces `name` after a type-ish token or as a
            // lambda param.
            const std::regex decl_re(
                "(auto|float|double|int|bool|unsigned|long|size_t|cfloat|"
                "char|std::\\w+|[A-Z]\\w*)\\s*[&*]?\\s*" + name + "\\b");
            if (!std::regex_search(body, decl_re)) {
              if (!line_allows(file, j + 1, "parallel-accum")) {
                chain.clear();
                std::string owner;
                enclosing_reachable(via, static_cast<int>(f), j + 1, owner,
                                    chain);
                found_.push_back(
                    {"parallel-accum", file.path, j + 1,
                     "'" + name +
                         "' is compound-assigned inside a parallel_for [&] "
                         "lambda but declared outside it — the combine "
                         "order (and under a race, the value) depends on "
                         "thread interleaving; accumulate per chunk and "
                         "combine after the join" +
                         (owner.empty() ? "" : " [in " + owner + "]"),
                     chain});
              }
              break;  // one report per line is enough
            }
            tail = m.suffix().str();
          }
        }
        i = end_line;  // don't rescan the body for nested calls
      }
    }
  }

  // If (file_id, line) falls inside a reachable function, yield its
  // qualified name and root chain.
  void enclosing_reachable(const std::map<std::size_t, Reachability::Via>& via,
                           int file_id, std::size_t ln, std::string& owner,
                           std::string& chain) const {
    const auto& functions = graph_.functions();
    for (const auto& [id, v] : via) {
      (void)v;
      const FnRecord& fn = functions[id];
      if (fn.file_id != file_id) continue;
      if (ln < fn.body_begin || ln > fn.body_end) continue;
      owner = fn.qual;
      chain = reach_->chain(graph_, id);
      return;
    }
  }

  void propagate(const std::set<std::string>& rules) {
    // Roots: every MMHAR_DETERMINISTIC function. The --roots file is a
    // floor that root-coverage enforces, not a ceiling.
    const auto& functions = graph_.functions();
    std::vector<std::size_t> roots;
    for (std::size_t i = 0; i < functions.size(); ++i)
      if (functions[i].has_flag(kDeterministic) && !functions[i].noreturn)
        roots.push_back(i);
    std::sort(roots.begin(), roots.end(),
              [&](std::size_t a, std::size_t b) {
                return std::tie(functions[a].file, functions[a].line) <
                       std::tie(functions[b].file, functions[b].line);
              });
    root_count_ = roots.size();

    reach_.emplace(graph_, roots,
                   [this](const FnRecord& fn, std::size_t ln) {
                     return line_allows(fn, ln, "calls");
                   });
    reachable_count_ = reach_->size();

    if (rules.count("parallel-accum")) rule_parallel_accum(reach_->via());

    std::string chain;  // hoisted per-function scratch
    for (const auto& [id, v] : reach_->via()) {
      (void)v;
      const FnRecord& fn = functions[id];
      chain = reach_->chain(graph_, id);
      const SourceFile& file = graph_.file_of(fn);
      const FileDetail& detail = details_[static_cast<std::size_t>(fn.file_id)];

      for (std::size_t ln = fn.body_begin; ln <= fn.body_end; ++ln) {
        const std::size_t idx = ln - 1;
        if (idx >= file.code.size()) break;
        const std::string& line = file.code[idx];
        {
          const std::string t = trim(line);
          if (!t.empty() && t[0] == '#') continue;
        }
        if (idx > 0 && !file.raw[idx - 1].empty() &&
            file.raw[idx - 1].back() == '\\')
          continue;  // macro continuation

        if (rules.count("nondet-call")) {
          for (const auto& pat : nondet_patterns()) {
            if (!std::regex_search(line, pat.re)) continue;
            if (line_allows(fn, ln, "nondet-call")) continue;
            found_.push_back({"nondet-call", fn.file, ln,
                              std::string(pat.msg) + " [in " + fn.qual + "]",
                              chain});
          }
        }
        if (rules.count("unordered-iter") && !detail.unordered_names.empty())
          scan_unordered_iter(fn, line, ln, detail, chain);
      }

      if (rules.count("env-read") &&
          fn.file.find("common/env.cpp") == std::string::npos) {
        for (const auto& site : file.env_sites) {
          if (site.line < fn.body_begin || site.line > fn.body_end) continue;
          if (line_allows(fn, site.line, "env-read")) continue;
          found_.push_back(
              {"env-read", fn.file, site.line,
               (site.name.empty()
                    ? std::string("env read with a non-literal name")
                    : "'" + site.name + "' is read") +
                   " inside the deterministic pipeline — knobs must be "
                   "read once at startup and passed down as values [in " +
                   fn.qual + "]",
               chain});
        }
      }
    }
  }

  void scan_unordered_iter(const FnRecord& fn, const std::string& line,
                           std::size_t ln, const FileDetail& detail,
                           const std::string& chain) {
    for (const auto& name : detail.unordered_names) {
      // Range-for over the container, or an explicit iterator walk.
      const std::regex range_re(R"((^|[^\w])for\s*\([^;)]*:\s*)" + name +
                                R"(\s*\))");
      const std::regex begin_re("\\b" + name + R"(\s*\.\s*[cr]?begin\s*\()");
      if (!std::regex_search(line, range_re) &&
          !std::regex_search(line, begin_re))
        continue;
      if (line_allows(fn, ln, "unordered-iter")) continue;
      found_.push_back(
          {"unordered-iter", fn.file, ln,
           "'" + name +
               "' is an unordered container and this iterates it — "
               "iteration order depends on hashing and insertion history, "
               "so any result folded over it is not reproducible; use a "
               "sorted structure or sort the keys first [in " + fn.qual +
               "]",
           chain});
    }
  }

  CallGraph graph_;
  std::vector<FileDetail> details_;
  std::optional<Reachability> reach_;
  std::vector<RootSpec> root_specs_;
  std::string roots_path_;
  std::string roots_parse_error_;
  std::size_t root_count_ = 0;
  std::size_t reachable_count_ = 0;
  std::vector<Violation> found_;
};

}  // namespace

int main(int argc, char** argv) {
  std::vector<fs::path> roots_dirs;
  fs::path roots_file;
  fs::path report_path;
  std::set<std::string> rules;
  std::string arg;  // hoisted per-flag scratch
  for (int i = 1; i < argc; ++i) {
    arg = argv[i];
    if (arg == "--roots" && i + 1 < argc) {
      roots_file = argv[++i];
    } else if (arg == "--report" && i + 1 < argc) {
      report_path = argv[++i];
    } else if (arg == "--rule" && i + 1 < argc) {
      rules.insert(argv[++i]);
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown argument: " << arg << "\n";
      return 2;
    } else {
      roots_dirs.emplace_back(arg);
    }
  }
  if (roots_dirs.empty()) {
    std::cerr << "usage: mmhar_detcheck [--roots <roots.txt>] "
                 "[--rule <name>]... [--report <file>] <root>...\n";
    return 2;
  }
  if (rules.empty())
    rules = {"unordered-iter", "nondet-call", "parallel-accum", "env-read",
             "root-coverage", "layering"};

  const AnnotationTokens tokens({"MMHAR_DETERMINISTIC"});
  std::vector<SourceFile> files;
  std::vector<FnRecord> functions;
  std::map<std::string, DeclFlags> decl_flags;
  std::size_t file_count = 0;
  for (const auto& root : roots_dirs) {
    if (!fs::is_directory(root)) {
      std::cerr << "mmhar_detcheck: not a directory: " << root << "\n";
      return 2;
    }
    for (const auto& path : collect_sources(root)) {
      SourceFile index;
      index.path = display_path(root, path);
      if (!read_lines(path, index.raw)) {
        std::cerr << "mmhar_detcheck: cannot read " << path << "\n";
        return 2;
      }
      files.push_back(std::move(index));
      ++file_count;
    }
  }
  for (std::size_t i = 0; i < files.size(); ++i)
    ScopeScanner(files[i], static_cast<int>(i), tokens, functions, decl_flags)
        .scan();

  Checker checker(CallGraph(std::move(files), std::move(functions),
                            std::move(decl_flags)));
  if (!roots_file.empty()) {
    if (!checker.load_roots(roots_file)) {
      std::cerr << "mmhar_detcheck: cannot read roots file " << roots_file
                << "\n";
      return 2;
    }
    if (!checker.roots_parse_error().empty()) {
      std::cerr << "mmhar_detcheck: bad roots file " << roots_file << ": "
                << checker.roots_parse_error() << "\n";
      return 2;
    }
  }
  if (rules.count("root-coverage") && roots_file.empty()) {
    std::cout << "mmhar_detcheck: note: root-coverage skipped (--roots not "
                 "given)\n";
    rules.erase("root-coverage");
  }

  const auto violations = checker.run(rules);
  for (const auto& v : violations) {
    std::cerr << v.file << ":" << v.line << ": [" << v.rule << "] "
              << v.message << "\n";
    if (!v.chain.empty()) std::cerr << "    chain: " << v.chain << "\n";
  }
  if (!report_path.empty()) {
    // Diagnostic report for the CI artifact upload, not a cache the
    // experiment runtime reads; a torn file cannot wedge anything.
    // mmhar-lint: allow(naked-cache-write)
    std::ofstream report(report_path);
    if (!report) {
      std::cerr << "mmhar_detcheck: cannot write report " << report_path
                << "\n";
      return 2;
    }
    for (const auto& v : violations) {
      report << v.file << ":" << v.line << ": [" << v.rule << "] "
             << v.message << "\n";
      if (!v.chain.empty()) report << "    chain: " << v.chain << "\n";
    }
  }
  std::cout << "mmhar_detcheck: scanned " << file_count << " file(s), "
            << checker.function_count() << " function(s), "
            << checker.root_count() << " annotated root(s), "
            << checker.reachable_count() << " reachable, "
            << violations.size() << " violation(s)\n";
  std::cout << "mmhar_detcheck: summary files=" << file_count
            << " functions=" << checker.function_count()
            << " roots=" << checker.root_count()
            << " reachable=" << checker.reachable_count()
            << " violations=" << violations.size()
            << " status=" << (violations.empty() ? "ok" : "fail") << "\n";
  if (!violations.empty()) {
    std::cerr << "mmhar_detcheck: FAIL — fix the violations above or add a "
                 "justified `// MMHAR_DETCHECK_ALLOW(<rule>)`\n";
    return 1;
  }
  std::cout << "mmhar_detcheck: OK\n";
  return 0;
}
