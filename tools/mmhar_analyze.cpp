// mmhar_analyze — cross-translation-unit analyzer for repo invariants that
// mmhar_lint's single-file rules cannot see.
//
// Pass 1 walks every source root and builds a repo-wide index: env-knob
// call sites, record (struct/class) layouts with their members, and
// namespace-scope symbols defined in headers. Pass 2 enforces three rules
// over that index:
//
//   env-knob-registry      every MMHAR_* name read through env_int /
//                          env_double / env_string / env_double_list /
//                          getenv must have a row in
//                          src/common/env_registry.cpp, every registry row
//                          must appear in README.md's env table, every
//                          README table row must be a registry row, and
//                          every registry row must still be read somewhere
//                          (stale rows fail). MMHAR_TEST_* is reserved for
//                          unit tests and exempt.
//   lock-annotation-coverage
//                          in any record that directly holds a mutex
//                          (std::mutex / Mutex / SharedMutex / ...), every
//                          mutable data member must carry
//                          MMHAR_GUARDED_BY / MMHAR_PT_GUARDED_BY.
//                          Synchronisation primitives themselves, atomics,
//                          and const/static/constexpr members are exempt;
//                          common/mutex.h (the capability-wrapper home) is
//                          exempt wholesale.
//   header-hygiene         (a) a file using MMHAR_* thread-safety macros
//                          must #include "common/thread_annotations.h"
//                          directly, not inherit it transitively;
//                          (b) the same namespace-scope symbol (record,
//                          enum, function or inline/constexpr variable)
//                          must not be *defined* in two different headers.
//
// Suppression: `// mmhar-analyze: allow(<rule>)` on the offending line or
// the line above, with a justification. There is deliberately no baseline
// mechanism: the tree must be clean.
//
// Usage:
//   mmhar_analyze [--registry <env_registry.cpp>] [--readme <README.md>]
//                 [--rule <name>]... <root>...
//
// The env-knob-registry rule needs both --registry and --readme; without
// them it is skipped with a note. Run in CI and as a ctest (see
// tools/CMakeLists.txt).

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <iostream>
#include <map>
#include <regex>
#include <set>
#include <string>
#include <vector>

#include "analysis_text.h"

namespace fs = std::filesystem;
using mmhar_tools::code_keeping_strings;
using mmhar_tools::code_only;
using mmhar_tools::collect_sources;
using mmhar_tools::display_path;
using mmhar_tools::read_lines;

namespace {

constexpr const char* kMarker = "mmhar-analyze";

struct Violation {
  std::string rule;
  std::string file;
  std::size_t line;  // 1-based
  std::string message;
};

struct EnvSite {
  std::string name;  // e.g. MMHAR_THREADS
  std::string file;
  std::size_t line;
};

struct Member {
  std::string stmt;  // the declaration text, comments/strings stripped
  std::size_t line;
  bool guarded;  // carried MMHAR_GUARDED_BY / MMHAR_PT_GUARDED_BY
};

struct Record {
  std::string name;
  std::string file;
  std::size_t line;
  bool has_mutex = false;
  std::vector<Member> members;
};

struct Symbol {
  std::string qual;  // namespace-qualified name
  std::string kind;  // record | enum | function | variable
  std::string file;
  std::size_t line;
};

struct FileIndex {
  std::string path;  // display path, e.g. src/common/thread_pool.h
  bool is_header = false;
  std::vector<std::string> raw;
  std::vector<std::string> code;          // strings blanked
  std::vector<std::string> code_strings;  // strings kept
  std::vector<EnvSite> env_sites;
  std::vector<Record> records;
  std::vector<Symbol> symbols;              // namespace-scope header defs
  std::size_t first_annotation_line = 0;    // 1-based; 0 = none
  bool includes_thread_annotations = false;
};

// ---- Member-statement dissection -------------------------------------------

// Remove every MMHAR_<NAME>(balanced-args) occurrence; report whether one of
// them was a GUARDED_BY flavour.
std::string strip_annotation_macros(const std::string& stmt, bool* guarded) {
  std::string out;
  out.reserve(stmt.size());
  std::string macro;  // hoisted per-match scratch
  for (std::size_t i = 0; i < stmt.size();) {
    if (stmt.compare(i, 6, "MMHAR_") == 0 &&
        (i == 0 || !(std::isalnum(static_cast<unsigned char>(stmt[i - 1])) ||
                     stmt[i - 1] == '_'))) {
      std::size_t j = i + 6;
      while (j < stmt.size() &&
             (std::isalnum(static_cast<unsigned char>(stmt[j])) ||
              stmt[j] == '_'))
        ++j;
      macro.assign(stmt, i, j - i);
      std::size_t k = j;
      while (k < stmt.size() &&
             std::isspace(static_cast<unsigned char>(stmt[k])))
        ++k;
      if (k < stmt.size() && stmt[k] == '(') {
        int depth = 0;
        do {
          if (stmt[k] == '(') ++depth;
          if (stmt[k] == ')') --depth;
          ++k;
        } while (k < stmt.size() && depth > 0);
        if (guarded != nullptr && (macro == "MMHAR_GUARDED_BY" ||
                                   macro == "MMHAR_PT_GUARDED_BY"))
          *guarded = true;
        i = k;
        continue;
      }
    }
    out.push_back(stmt[i]);
    ++i;
  }
  return out;
}

// blank_template_args / trim live in analysis_text.h (shared with
// mmhar_rtcheck, unit-tested directly in tests/test_analysis_text.cpp).
using mmhar_tools::blank_template_args;
using mmhar_tools::trim;

// Classification of a record-scope statement for lock-annotation-coverage.
enum class MemberKind { kNotAMember, kSyncPrimitive, kExemptStorage, kData };

MemberKind classify_member(const std::string& raw_stmt, std::string* name,
                           bool* is_mutex, bool* guarded) {
  *is_mutex = false;
  *guarded = false;
  std::string stmt = trim(strip_annotation_macros(raw_stmt, guarded));
  // Drop access-specifier labels that got folded into the statement.
  static const std::regex access_re(R"(\b(public|private|protected)\s*:)");
  stmt = std::regex_replace(stmt, access_re, "");
  stmt = trim(blank_template_args(stmt));
  if (stmt.empty()) return MemberKind::kNotAMember;

  static const std::regex skip_head_re(
      R"(^(using|typedef|friend|template|explicit|virtual|operator|~)\b)");
  if (std::regex_search(stmt, skip_head_re)) return MemberKind::kNotAMember;
  // `T& operator=(...) = delete;` and friends: the '=' in the operator name
  // would otherwise be mistaken for an initializer.
  if (stmt.find("operator") != std::string::npos)
    return MemberKind::kNotAMember;
  static const std::regex fwd_re(R"(^(struct|class|enum|union)\s+\w+$)");
  if (std::regex_match(stmt, fwd_re)) return MemberKind::kNotAMember;

  static const std::regex storage_re(R"(\b(static|constexpr)\b)");
  const bool exempt_storage =
      std::regex_search(stmt, storage_re) ||
      std::regex_search(stmt, std::regex(R"(^(mutable\s+)?const\b)"));

  // Cut the initializer: everything from the first '=' onward. (Brace
  // initializers were already skipped by the scope walk.)
  const std::size_t eq = stmt.find('=');
  std::string decl = trim(eq == std::string::npos ? stmt : stmt.substr(0, eq));
  if (decl.empty()) return MemberKind::kNotAMember;
  // Anything still holding a paren is a function/constructor declaration.
  if (decl.find('(') != std::string::npos) return MemberKind::kNotAMember;

  static const std::regex name_re(R"(([A-Za-z_]\w*)\s*(\[[^\]]*\])?\s*$)");
  std::smatch m;
  if (!std::regex_search(decl, m, name_re)) return MemberKind::kNotAMember;
  *name = m[1].str();

  static const std::regex mutex_re(
      R"(\b(std::\s*)?(mutex|shared_mutex|recursive_mutex|timed_mutex)\b|\bMutex\b|\bSharedMutex\b)");
  if (std::regex_search(decl, mutex_re)) {
    *is_mutex = true;
    return MemberKind::kSyncPrimitive;
  }
  static const std::regex sync_re(
      R"(\b(CondVar|MutexLock|ReaderLock|WriterLock)\b|\b(std::\s*)?(condition_variable|condition_variable_any|atomic|once_flag|counting_semaphore|binary_semaphore|barrier|latch)\b)");
  if (std::regex_search(decl, sync_re)) return MemberKind::kSyncPrimitive;
  if (exempt_storage) return MemberKind::kExemptStorage;
  return MemberKind::kData;
}

// ---- Pass 1: per-file structural scan --------------------------------------

class FileScanner {
 public:
  explicit FileScanner(FileIndex& out) : out_(out) {}

  void scan() {
    bool in_block = false;
    bool in_block2 = false;
    out_.code.reserve(out_.raw.size());
    out_.code_strings.reserve(out_.raw.size());
    for (const auto& l : out_.raw) {
      out_.code.push_back(code_only(l, in_block));
      out_.code_strings.push_back(code_keeping_strings(l, in_block2));
    }
    index_env_sites();
    index_annotation_use();
    walk_scopes();
  }

 private:
  struct Declarator {
    enum Kind { kNamespace, kRecord, kEnum } kind;
    std::string name;
    std::size_t pos;  // column on its line
  };
  struct Scope {
    enum Kind { kNamespace, kRecord, kBlock } kind;
    std::string name;
    int depth;
    Record record;  // only for kRecord
  };

  void index_env_sites() {
    static const std::regex re(
        R"((^|[^\w])(env_[a-z_]+|getenv)\s*\(\s*"([A-Za-z0-9_]+)\")");
    std::string tail;  // hoisted per-line scratch
    for (std::size_t i = 0; i < out_.code_strings.size(); ++i) {
      tail = out_.code_strings[i];
      std::smatch m;
      while (std::regex_search(tail, m, re)) {
        out_.env_sites.push_back({m[3].str(), out_.path, i + 1});
        tail = m.suffix().str();
      }
    }
  }

  void index_annotation_use() {
    static const std::regex use_re(R"(\bMMHAR_(GUARDED_BY|PT_GUARDED_BY|REQUIRES|REQUIRES_SHARED|ACQUIRE|ACQUIRE_SHARED|RELEASE|TRY_ACQUIRE|EXCLUDES|CAPABILITY|SCOPED_CAPABILITY|ASSERT_CAPABILITY|RETURN_CAPABILITY|NO_THREAD_SAFETY_ANALYSIS|REALTIME|REALTIME_HANDOFF|DETERMINISTIC)\b)");
    for (std::size_t i = 0; i < out_.code.size(); ++i) {
      if (out_.first_annotation_line == 0 &&
          std::regex_search(out_.code[i], use_re))
        out_.first_annotation_line = i + 1;
      if (out_.raw[i].find("#include \"common/thread_annotations.h\"") !=
          std::string::npos)
        out_.includes_thread_annotations = true;
    }
  }

  // Declarator tokens (namespace/struct/class/enum heads) on one line, in
  // column order, so `namespace a { namespace b {` pairs each brace with
  // the right head.
  static std::vector<Declarator> find_declarators(const std::string& line) {
    std::vector<Declarator> found;
    static const std::regex ns_re(R"((^|[^\w])namespace(\s+([\w:]+))?\s*\{)");
    static const std::regex enum_re(
        R"((^|[^\w])enum\s+(class\s+|struct\s+)?([A-Za-z_]\w*))");
    static const std::regex rec_re(
        R"((^|[^\w])(struct|class)\s+((?:MMHAR_\w+\s*\([^)]*\)\s*)*)([A-Za-z_]\w*))");
    for (auto it = std::sregex_iterator(line.begin(), line.end(), ns_re);
         it != std::sregex_iterator(); ++it) {
      found.push_back({Declarator::kNamespace, (*it)[3].str(),
                       static_cast<std::size_t>(it->position(0))});
    }
    // `namespace x {` matched above requires the brace on the same line;
    // also catch a bare `namespace x` whose brace is on the next line.
    static const std::regex ns_open_re(R"((^|[^\w])namespace(\s+([\w:]+))?\s*$)");
    std::smatch nm;
    if (std::regex_search(line, nm, ns_open_re)) {
      found.push_back({Declarator::kNamespace, nm[3].str(),
                       static_cast<std::size_t>(nm.position(0))});
    }
    std::set<std::size_t> enum_pos;
    for (auto it = std::sregex_iterator(line.begin(), line.end(), enum_re);
         it != std::sregex_iterator(); ++it) {
      enum_pos.insert(static_cast<std::size_t>(it->position(0)));
      found.push_back({Declarator::kEnum, (*it)[3].str(),
                       static_cast<std::size_t>(it->position(0))});
    }
    for (auto it = std::sregex_iterator(line.begin(), line.end(), rec_re);
         it != std::sregex_iterator(); ++it) {
      const auto pos = static_cast<std::size_t>(it->position(0));
      // `enum class X` already claimed by the enum scan.
      bool inside_enum = false;
      for (const auto ep : enum_pos)
        if (ep <= pos && pos < ep + 12) inside_enum = true;
      if (!inside_enum)
        found.push_back({Declarator::kRecord, (*it)[4].str(), pos});
    }
    std::sort(found.begin(), found.end(),
              [](const Declarator& a, const Declarator& b) {
                return a.pos < b.pos;
              });
    return found;
  }

  void walk_scopes() {
    std::vector<Scope> stack;
    stack.push_back({Scope::kNamespace, "", 0, {}});
    int depth = 0;
    bool have_pending = false;
    Declarator pending{};
    std::size_t pending_line = 0;
    std::string stmt;            // statement accumulator for the top scope
    std::size_t stmt_line = 0;   // 1-based line where the statement started
    bool continuation = false;   // previous line ended with '\'

    std::string t;  // hoisted per-line scratch
    for (std::size_t i = 0; i < out_.code.size(); ++i) {
      const std::string& line = out_.code[i];
      t = trim(line);
      const bool skip = continuation || (!t.empty() && t[0] == '#');
      continuation = !out_.raw[i].empty() && out_.raw[i].back() == '\\';
      if (skip) continue;

      auto decls = find_declarators(line);
      std::size_t decl_idx = 0;
      for (std::size_t c = 0; c < line.size(); ++c) {
        while (decl_idx < decls.size() && decls[decl_idx].pos <= c) {
          pending = decls[decl_idx];
          have_pending = true;
          pending_line = i + 1;
          ++decl_idx;
        }
        const char ch = line[c];
        const Scope& top = stack.back();
        const bool at_scope_stmt_level =
            (top.kind != Scope::kBlock) && depth == top.depth;

        if (ch == '{') {
          if (have_pending && pending.kind == Declarator::kNamespace) {
            ++depth;
            stack.push_back({Scope::kNamespace, pending.name, depth, {}});
            have_pending = false;
            stmt.clear();
          } else if (have_pending && pending.kind == Declarator::kRecord) {
            ++depth;
            Scope s{Scope::kRecord, pending.name, depth, {}};
            s.record.name = pending.name;
            s.record.file = out_.path;
            s.record.line = pending_line;
            stack.push_back(std::move(s));
            if (out_.is_header && enclosing_is_namespace_only(stack))
              emit_symbol(stack, pending.name, "record", pending_line);
            have_pending = false;
            stmt.clear();
          } else if (have_pending && pending.kind == Declarator::kEnum) {
            ++depth;
            stack.push_back({Scope::kBlock, pending.name, depth, {}});
            if (out_.is_header && enclosing_is_namespace_only(stack))
              emit_symbol(stack, pending.name, "enum", pending_line);
            have_pending = false;
            stmt.clear();
          } else {
            // Plain block: function body, initializer list, control flow.
            if (at_scope_stmt_level && top.kind == Scope::kNamespace &&
                out_.is_header)
              emit_namespace_def(stack, stmt, stmt_line);
            ++depth;
            stack.push_back({Scope::kBlock, "", depth, {}});
          }
          continue;
        }
        if (ch == '}') {
          if (stack.size() > 1 && stack.back().depth == depth) {
            if (stack.back().kind == Scope::kRecord)
              finish_record(std::move(stack.back().record));
            stack.pop_back();
            // A member statement may continue after a nested block
            // (`struct S { ... } s;`, brace initializers); keep the
            // accumulator, it is cleared at ';' or discarded when a new
            // block opens.
          }
          if (depth > 0) --depth;
          continue;
        }
        if (ch == ';' && at_scope_stmt_level) {
          have_pending = false;  // forward declaration / alias / using
          if (top.kind == Scope::kRecord) {
            record_member(stack.back(), stmt, stmt_line);
          } else if (top.kind == Scope::kNamespace && out_.is_header) {
            emit_namespace_var(stack, stmt, stmt_line);
          }
          stmt.clear();
          continue;
        }
        if (at_scope_stmt_level &&
            (top.kind == Scope::kRecord || top.kind == Scope::kNamespace)) {
          if (stmt.empty() || trim(stmt).empty()) {
            if (!std::isspace(static_cast<unsigned char>(ch)))
              stmt_line = i + 1;
          }
          stmt.push_back(ch);
        }
      }
      if (!stmt.empty()) stmt.push_back(' ');  // line break inside statement
    }
    // Unclosed records at EOF (shouldn't happen in well-formed code) are
    // still reported so truncated fixtures behave predictably.
    while (stack.size() > 1) {
      if (stack.back().kind == Scope::kRecord)
        finish_record(std::move(stack.back().record));
      stack.pop_back();
    }
  }

  static bool enclosing_is_namespace_only(const std::vector<Scope>& stack) {
    // The new scope is stack.back(); everything beneath it must be
    // namespaces for the symbol to be namespace-scope.
    for (std::size_t i = 0; i + 1 < stack.size(); ++i)
      if (stack[i].kind != Scope::kNamespace) return false;
    return true;
  }

  static std::string qualify(const std::vector<Scope>& stack,
                             const std::string& name) {
    // Non-namespace scopes are filtered by kind, so walking the whole
    // stack is safe whether the symbol's own scope is pushed yet (records,
    // enums) or not (functions, variables).
    std::string qual;
    for (const auto& s : stack) {
      if (s.kind != Scope::kNamespace) continue;
      if (!s.name.empty())
        qual += s.name + "::";
      else if (s.depth > 0)
        qual += "(anonymous)::";
    }
    return qual + name;
  }

  void emit_symbol(const std::vector<Scope>& stack, const std::string& name,
                   const std::string& kind, std::size_t line) {
    out_.symbols.push_back({qualify(stack, name), kind, out_.path, line});
  }

  // A '{' opened a plain block directly at namespace scope in a header:
  // the accumulated statement is a function definition (name before the
  // first top-level paren) or a brace-initialised variable.
  void emit_namespace_def(const std::vector<Scope>& stack,
                          const std::string& stmt, std::size_t line) {
    bool guarded = false;
    const std::string cleaned =
        blank_template_args(strip_annotation_macros(trim(stmt), &guarded));
    if (cleaned.empty()) return;
    const std::size_t eq = cleaned.find('=');
    if (eq != std::string::npos) {
      emit_namespace_var(stack, stmt, line);
      return;
    }
    int paren = 0;
    std::size_t name_end = std::string::npos;
    for (std::size_t i = 0; i < cleaned.size(); ++i) {
      if (cleaned[i] == '(') {
        if (paren == 0 && name_end == std::string::npos) name_end = i;
        ++paren;
      } else if (cleaned[i] == ')') {
        --paren;
      }
    }
    if (name_end == std::string::npos) return;
    std::string head = trim(cleaned.substr(0, name_end));
    static const std::regex name_re(R"(([A-Za-z_]\w*)$)");
    std::smatch m;
    if (!std::regex_search(head, m, name_re)) return;
    const std::string name = m[1].str();
    if (head.find("operator") != std::string::npos) return;
    emit_symbol(stack, name, "function", line);
  }

  // `inline constexpr T name = ...;` (or `{...};`) at namespace scope in a
  // header defines a variable with external visibility — index it.
  void emit_namespace_var(const std::vector<Scope>& stack,
                          const std::string& stmt, std::size_t line) {
    bool guarded = false;
    const std::string cleaned =
        blank_template_args(strip_annotation_macros(trim(stmt), &guarded));
    static const std::regex storage_re(R"(\b(inline|constexpr)\b)");
    if (!std::regex_search(cleaned, storage_re)) return;
    const std::size_t eq = cleaned.find('=');
    const std::string decl =
        trim(eq == std::string::npos ? cleaned : cleaned.substr(0, eq));
    if (decl.find('(') != std::string::npos) return;  // function decl
    static const std::regex name_re(R"(([A-Za-z_]\w*)\s*(\[[^\]]*\])?\s*$)");
    std::smatch m;
    if (!std::regex_search(decl, m, name_re)) return;
    emit_symbol(stack, m[1].str(), "variable", line);
  }

  void record_member(Scope& scope, const std::string& stmt,
                     std::size_t line) {
    const std::string t = trim(stmt);
    if (t.empty()) return;
    std::string name;
    bool is_mutex = false;
    bool guarded = false;
    const MemberKind kind = classify_member(t, &name, &is_mutex, &guarded);
    if (is_mutex) scope.record.has_mutex = true;
    if (kind == MemberKind::kData) scope.record.members.push_back({t, line, guarded});
  }

  void finish_record(Record record) {
    out_.records.push_back(std::move(record));
  }

  FileIndex& out_;
};

// ---- Pass 2: rules ---------------------------------------------------------

struct RegistryRow {
  std::string name;
  std::size_t line;
};

class Analyzer {
 public:
  void add_file(FileIndex index) { files_.push_back(std::move(index)); }

  bool load_registry(const fs::path& path) {
    registry_path_ = path.generic_string();
    if (!read_lines(path, registry_raw_)) return false;
    static const std::regex row_re(R"re(\{\s*"(MMHAR_\w+)"\s*,)re");
    bool in_block = false;
    std::string code;  // hoisted per-line scratch
    for (std::size_t i = 0; i < registry_raw_.size(); ++i) {
      code = code_keeping_strings(registry_raw_[i], in_block);
      std::smatch m;
      if (std::regex_search(code, m, row_re))
        registry_.push_back({m[1].str(), i + 1});
    }
    return true;
  }

  bool load_readme(const fs::path& path) {
    readme_path_ = path.generic_string();
    if (!read_lines(path, readme_raw_)) return false;
    static const std::regex row_re(R"(^\s*\|\s*`(MMHAR_\w+)`)");
    for (std::size_t i = 0; i < readme_raw_.size(); ++i) {
      std::smatch m;
      const std::string& line = readme_raw_[i];
      if (std::regex_search(line, m, row_re))
        readme_rows_.push_back({m[1].str(), i + 1});
    }
    return true;
  }

  std::vector<Violation> run(const std::set<std::string>& rules) {
    if (rules.count("env-knob-registry")) rule_env_knob_registry();
    if (rules.count("lock-annotation-coverage")) rule_lock_coverage();
    if (rules.count("header-hygiene")) rule_header_hygiene();
    return std::move(found_);
  }

  bool has_registry() const { return !registry_path_.empty(); }
  bool has_readme() const { return !readme_path_.empty(); }

 private:
  void add(const std::string& rule, const std::string& file,
           const std::vector<std::string>& raw_lines, std::size_t line,
           std::string message) {
    if (line >= 1 && line <= raw_lines.size() &&
        mmhar_tools::is_suppressed(raw_lines, line - 1, kMarker, rule))
      return;
    found_.push_back({rule, file, line, std::move(message)});
  }

  const std::vector<std::string>& raw_for(const std::string& file) const {
    static const std::vector<std::string> empty;
    for (const auto& f : files_)
      if (f.path == file) return f.raw;
    return empty;
  }

  void rule_env_knob_registry() {
    if (registry_path_.empty() || readme_path_.empty()) return;
    std::set<std::string> registry_names;
    for (const auto& row : registry_) registry_names.insert(row.name);
    std::set<std::string> readme_names;
    for (const auto& row : readme_rows_) readme_names.insert(row.name);
    std::set<std::string> read_names;

    for (const auto& f : files_) {
      for (const auto& site : f.env_sites) {
        if (site.name.rfind("MMHAR_", 0) != 0) continue;
        if (site.name.rfind("MMHAR_TEST_", 0) == 0) continue;
        read_names.insert(site.name);
        if (!registry_names.count(site.name)) {
          add("env-knob-registry", site.file, f.raw, site.line,
              "'" + site.name +
                  "' is read here but has no row in the env registry (" +
                  registry_path_ + "); declare it there and in the README "
                  "env table");
        }
      }
    }
    for (const auto& row : registry_) {
      if (!readme_names.count(row.name))
        add("env-knob-registry", registry_path_, registry_raw_, row.line,
            "registry row '" + row.name + "' is missing from the env table "
            "in " + readme_path_);
      if (!read_names.count(row.name))
        add("env-knob-registry", registry_path_, registry_raw_, row.line,
            "registry row '" + row.name + "' is never read in the scanned "
            "roots — delete the stale row or wire the knob up");
    }
    for (const auto& row : readme_rows_) {
      if (!registry_names.count(row.name))
        add("env-knob-registry", readme_path_, readme_raw_, row.line,
            "README env-table row '" + row.name + "' has no registry row "
            "in " + registry_path_);
    }
  }

  void rule_lock_coverage() {
    for (const auto& f : files_) {
      if (f.path.find("common/mutex.h") != std::string::npos) continue;
      if (f.path.find("common/thread_annotations.h") != std::string::npos)
        continue;
      for (const auto& rec : f.records) {
        if (!rec.has_mutex) continue;
        for (const auto& mem : rec.members) {
          if (mem.guarded) continue;
          add("lock-annotation-coverage", f.path, f.raw, mem.line,
              "record '" + rec.name + "' holds a mutex, so member `" +
                  trim(mem.stmt) +
                  "` needs MMHAR_GUARDED_BY(<mutex>) (or an allow-comment "
                  "explaining why it is not shared state)");
        }
      }
    }
  }

  void rule_header_hygiene() {
    // (a) direct include where annotation macros are used.
    for (const auto& f : files_) {
      if (f.path.find("common/thread_annotations.h") != std::string::npos)
        continue;
      if (f.first_annotation_line != 0 && !f.includes_thread_annotations) {
        add("header-hygiene", f.path, f.raw, f.first_annotation_line,
            "MMHAR_* thread-safety macros used without a direct #include "
            "of common/thread_annotations.h");
      }
    }
    // (b) one definition per namespace-scope symbol across headers.
    std::map<std::string, std::vector<const Symbol*>> defs;
    for (const auto& f : files_) {
      for (const auto& sym : f.symbols)
        defs[sym.kind + " " + sym.qual].push_back(&sym);
    }
    std::set<std::string> distinct;  // hoisted per-symbol scratch
    for (const auto& [key, syms] : defs) {
      distinct.clear();
      for (const auto* s : syms) distinct.insert(s->file);
      if (distinct.size() < 2) continue;
      const Symbol* first = syms.front();
      for (std::size_t i = 1; i < syms.size(); ++i) {
        const Symbol* dup = syms[i];
        if (dup->file == first->file) continue;
        add("header-hygiene", dup->file, raw_for(dup->file), dup->line,
            dup->kind + " '" + dup->qual + "' is also defined in " +
                first->file + ":" + std::to_string(first->line) +
                " — two headers must not define the same symbol");
      }
    }
  }

  std::vector<FileIndex> files_;
  std::vector<RegistryRow> registry_;
  std::vector<RegistryRow> readme_rows_;
  std::vector<std::string> registry_raw_;
  std::vector<std::string> readme_raw_;
  std::string registry_path_;
  std::string readme_path_;
  std::vector<Violation> found_;
};

}  // namespace

int main(int argc, char** argv) {
  std::vector<fs::path> roots;
  fs::path registry_path;
  fs::path readme_path;
  std::set<std::string> rules;
  std::string arg;  // hoisted per-flag scratch
  for (int i = 1; i < argc; ++i) {
    arg = argv[i];
    if (arg == "--registry" && i + 1 < argc) {
      registry_path = argv[++i];
    } else if (arg == "--readme" && i + 1 < argc) {
      readme_path = argv[++i];
    } else if (arg == "--rule" && i + 1 < argc) {
      rules.insert(argv[++i]);
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown argument: " << arg << "\n";
      return 2;
    } else {
      roots.emplace_back(arg);
    }
  }
  if (roots.empty()) {
    std::cerr << "usage: mmhar_analyze [--registry <env_registry.cpp>] "
                 "[--readme <README.md>] [--rule <name>]... <root>...\n";
    return 2;
  }
  if (rules.empty())
    rules = {"env-knob-registry", "lock-annotation-coverage",
             "header-hygiene"};

  Analyzer analyzer;
  if (!registry_path.empty() && !analyzer.load_registry(registry_path)) {
    std::cerr << "mmhar_analyze: cannot read registry " << registry_path
              << "\n";
    return 2;
  }
  if (!readme_path.empty() && !analyzer.load_readme(readme_path)) {
    std::cerr << "mmhar_analyze: cannot read README " << readme_path << "\n";
    return 2;
  }
  if (rules.count("env-knob-registry") &&
      (!analyzer.has_registry() || !analyzer.has_readme())) {
    std::cout << "mmhar_analyze: note: env-knob-registry skipped "
                 "(--registry/--readme not given)\n";
    rules.erase("env-knob-registry");
  }

  std::size_t file_count = 0;
  for (const auto& root : roots) {
    if (!fs::is_directory(root)) {
      std::cerr << "mmhar_analyze: not a directory: " << root << "\n";
      return 2;
    }
    for (const auto& path : collect_sources(root)) {
      FileIndex index;
      index.path = display_path(root, path);
      const auto ext = path.extension().string();
      index.is_header = ext == ".h" || ext == ".hpp";
      if (!read_lines(path, index.raw)) {
        std::cerr << "mmhar_analyze: cannot read " << path << "\n";
        return 2;
      }
      FileScanner(index).scan();
      analyzer.add_file(std::move(index));
      ++file_count;
    }
  }

  auto violations = analyzer.run(rules);
  std::sort(violations.begin(), violations.end(),
            [](const Violation& a, const Violation& b) {
              return std::tie(a.file, a.line, a.rule) <
                     std::tie(b.file, b.line, b.rule);
            });
  for (const auto& v : violations)
    std::cerr << v.file << ":" << v.line << ": [" << v.rule << "] "
              << v.message << "\n";
  std::cout << "mmhar_analyze: scanned " << file_count << " file(s), "
            << violations.size() << " violation(s)\n";
  // Machine-readable one-liner (same shape as mmhar_lint / mmhar_rtcheck /
  // bench_gate summaries) so CI log scrapers need no per-tool parsing.
  std::cout << "mmhar_analyze: summary files=" << file_count
            << " violations=" << violations.size()
            << " status=" << (violations.empty() ? "ok" : "fail") << "\n";
  if (!violations.empty()) {
    std::cerr << "mmhar_analyze: FAIL — fix the violations above or add a "
                 "justified `// mmhar-analyze: allow(<rule>)`\n";
    return 1;
  }
  std::cout << "mmhar_analyze: OK\n";
  return 0;
}
