// mmhar_rtcheck — cross-translation-unit real-time-safety checker. Proves
// (textually, over the whole repo at once) that every function reachable
// from the MMHAR_REALTIME / MMHAR_REALTIME_HANDOFF annotation roots — the
// serving batcher cycle, the fft_many* engines, the prepacked-GEMM
// infer_forward plan, and the stream ring push/pop paths — is free of
// allocation, lock acquisition outside the annotated slot hand-off
// protocol, blocking calls and I/O, `throw`, and unregistered MMHAR_* env
// reads.
//
// The parsing/resolution/reachability machinery lives in tools/callgraph.h
// (shared with mmhar_detcheck): pass 1 parses every source root into a
// function-level call graph with lambda bodies attributed to their
// enclosing function; pass 2 unions annotations and [[noreturn]] across
// declarations and definitions by qualified name, walks the graph
// breadth-first from every annotated function, and reports each primitive
// violation with its exact file:line and the call chain from the nearest
// root. This file owns only what is real-time-specific: the primitive
// regex table, the hand-off lock exemption, the env-registry rule, and the
// root-coverage floor over tools/rtcheck_roots.txt.
//
// Rules:
//   alloc          operator new/delete, malloc-family, make_unique/shared,
//                  and allocating STL growth (push_back / resize /
//                  try_emplace / ...) on containers. A growth member name
//                  that resolves to a repo function (e.g. grow-once
//                  InferenceScratch::reserve) becomes a call edge instead
//                  and that function is checked transitively.
//   lock           any lock acquisition. The annotated capability wrappers
//                  (MutexLock / ReaderLock / WriterLock) are permitted in
//                  the *own body* of a MMHAR_REALTIME_HANDOFF function —
//                  the slot hand-off protocol — and nowhere else; raw
//                  std::lock_guard / .lock() / pthread_* are never
//                  permitted.
//   block          condvar waits, sleeps, thread join/spawn, thread-pool
//                  dispatch (parallel_for blocks on worker completion),
//                  and blocking I/O (streams, stdio, system/popen).
//   throw          a `throw` statement. [[noreturn]] functions (the
//                  MMHAR_CHECK failure sinks) are exempt and terminate
//                  traversal: they only execute when the process is
//                  already aborting the computation.
//   env-read       getenv / env_* with a non-literal name, or a literal
//                  MMHAR_* name missing from the env registry
//                  (--registry). common/env.cpp itself (the registry
//                  gate's implementation) is exempt.
//   root-coverage  every entry of the --roots file must name an existing
//                  function that still carries the required annotation —
//                  deleting MMHAR_REALTIME from a root is a failure, not a
//                  silent shrink of the checked set (mirrors the
//                  env-registry deletion property).
//
// Suppression: `// mmhar-rtcheck: allow(<rule>[, <rule>...]) — why` on the
// offending line, or on a comment line in the run of //-comments directly
// above it (multi-line statements carry one justification). The
// pseudo-rule `calls` stops call-graph traversal out of that line — for
// provably cold paths like first-use plan construction. There is
// deliberately no baseline mechanism: the tree must be clean.
//
// Usage:
//   mmhar_rtcheck [--registry <env_registry.cpp>] [--roots <roots.txt>]
//                 [--rule <name>]... [--report <file>] <root>...
//
// Exit codes: 0 clean, 1 violations, 2 usage/IO error — aligned with
// mmhar_lint / mmhar_analyze / bench_gate. Runs in CI and as a ctest (see
// tools/CMakeLists.txt); --report writes the violation list with call
// chains to a file CI uploads as an artifact on failure.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <regex>
#include <set>
#include <string>
#include <vector>

#include "analysis_text.h"
#include "callgraph.h"

namespace fs = std::filesystem;
using mmhar_tools::AnnotationTokens;
using mmhar_tools::CallGraph;
using mmhar_tools::CallSite;
using mmhar_tools::DeclFlags;
using mmhar_tools::FnRecord;
using mmhar_tools::Reachability;
using mmhar_tools::RootSpec;
using mmhar_tools::ScopeScanner;
using mmhar_tools::SourceFile;
using mmhar_tools::Violation;
using mmhar_tools::collect_sources;
using mmhar_tools::display_path;
using mmhar_tools::load_env_registry;
using mmhar_tools::load_root_specs;
using mmhar_tools::read_lines;
using mmhar_tools::sort_unique_violations;
using mmhar_tools::suppression_allows;
using mmhar_tools::trim;

namespace {

constexpr const char* kMarker = "mmhar-rtcheck";

// Annotation-token bit positions in FnRecord::flags.
constexpr std::size_t kRealtime = 0;
constexpr std::size_t kHandoff = 1;

struct Primitive {
  std::string rule;
  std::size_t line;  // 1-based
  std::string message;
  bool wrapper_lock = false;  // MutexLock/ReaderLock/WriterLock acquisition
};

// Real-time-banned primitive patterns, scanned over a function's body
// lines (comment/string-stripped, `#` lines and macro continuations
// skipped — the same guards ScopeScanner applies to call sites).
void scan_primitives(const std::string& line, std::size_t ln,
                     std::vector<Primitive>& out) {
  struct Pat {
    const char* rule;
    std::regex re;
    const char* msg;
    bool wrapper;
  };
  static const std::vector<Pat> pats = [] {
    std::vector<Pat> p;
    p.push_back({"alloc", std::regex(R"(\bnew\b)"),
                 "operator new allocates", false});
    p.push_back({"alloc", std::regex(R"(\bdelete\b)"),
                 "operator delete frees heap memory", false});
    p.push_back(
        {"alloc",
         std::regex(
             R"(\b(malloc|calloc|realloc|strdup|aligned_alloc|posix_memalign|free)\s*\()"),
         "malloc-family call", false});
    p.push_back({"alloc", std::regex(R"(\bstd::make_(unique|shared)\b)"),
                 "make_unique/make_shared allocates", false});
    p.push_back(
        {"alloc",
         std::regex(R"(\bstd::to_string\s*\(|\b(o|i)?stringstream\b)"),
         "string construction allocates", false});
    p.push_back(
        {"lock",
         std::regex(
             R"(\bstd::(lock_guard|unique_lock|scoped_lock|shared_lock)\b)"),
         "raw std lock acquisition (only the annotated MutexLock/"
         "ReaderLock/WriterLock wrappers may appear, and only in "
         "MMHAR_REALTIME_HANDOFF bodies)",
         false});
    p.push_back(
        {"lock",
         std::regex(
             R"((\.|->)\s*(lock|unlock|try_lock|try_lock_shared|try_lock_for|try_lock_until|lock_shared|unlock_shared)\s*\()"),
         "raw mutex method call", false});
    p.push_back({"lock", std::regex(R"(\bpthread_(mutex|rwlock)_\w+\s*\()"),
                 "pthread locking call", false});
    p.push_back(
        {"lock",
         std::regex(
             R"(\b(MutexLock|ReaderLock|WriterLock)\s+[A-Za-z_]\w*\s*[({])"),
         "lock acquisition outside a MMHAR_REALTIME_HANDOFF body (the "
         "annotated slot hand-off protocol)",
         true});
    p.push_back(
        {"block",
         std::regex(R"(\bsleep_for\b|\bsleep_until\b|\busleep\b|\bnanosleep\b)"),
         "sleep blocks the real-time thread", false});
    p.push_back({"block",
                 std::regex(R"((\.|->)\s*wait(_for|_until)?\s*\()"),
                 "condition-variable wait blocks", false});
    p.push_back({"block", std::regex(R"((\.|->)\s*join\s*\()"),
                 "thread join blocks", false});
    p.push_back(
        {"block", std::regex(R"(\bparallel_for(_chunked)?\s*\()"),
         "thread-pool dispatch blocks until every worker chunk finishes",
         false});
    p.push_back({"block", std::regex(R"(\bstd::(async|thread)\b)"),
                 "thread spawn is unbounded-latency", false});
    p.push_back(
        {"block",
         std::regex(
             R"(\bstd::(cout|cerr|clog|cin)\b|\b(std::)?(ofstream|ifstream|fstream)\b)"),
         "stream I/O blocks", false});
    p.push_back(
        {"block",
         std::regex(
             R"(\b(printf|fprintf|fputs|fputc|puts|fopen|fread|fwrite|fclose|fflush|getline|system|popen)\s*\()"),
         "blocking I/O call", false});
    p.push_back({"throw", std::regex(R"((^|[^\w])throw\b)"),
                 "throw unwinds with unbounded latency (and the Error "
                 "object allocates)",
                 false});
    return p;
  }();
  for (const auto& pat : pats) {
    if (!std::regex_search(line, pat.re)) continue;
    out.push_back({pat.rule, ln, pat.msg, pat.wrapper});
  }
}

// Body primitives for one function: the regex table above, plus one
// container-growth alloc primitive per growth call site (resolution
// decides later whether it is a call edge into a repo function instead).
std::vector<Primitive> function_primitives(const CallGraph& graph,
                                           const FnRecord& fn) {
  std::vector<Primitive> prims;
  if (fn.body_begin == 0 || fn.body_end < fn.body_begin) return prims;
  const SourceFile& file = graph.file_of(fn);
  std::string line_trim;  // hoisted per-line scratch
  for (std::size_t ln = fn.body_begin; ln <= fn.body_end; ++ln) {
    const std::size_t idx = ln - 1;
    if (idx >= file.code.size()) break;
    line_trim = trim(file.code[idx]);
    if (!line_trim.empty() && line_trim[0] == '#') continue;
    if (idx > 0 && !file.raw[idx - 1].empty() &&
        file.raw[idx - 1].back() == '\\')
      continue;  // macro continuation
    scan_primitives(file.code[idx], ln, prims);
  }
  for (const auto& call : fn.calls) {
    if (!call.growth) continue;
    prims.push_back({"alloc", call.line,
                     "'." + call.name + "(...)' may grow a container "
                     "(allocates)",
                     false});
  }
  return prims;
}

class Checker {
 public:
  explicit Checker(CallGraph graph) : graph_(std::move(graph)) {}

  bool load_registry(const fs::path& path) {
    if (!load_env_registry(path, registry_)) return false;
    have_registry_ = true;
    return true;
  }

  bool load_roots(const fs::path& path) {
    roots_path_ = path.generic_string();
    return load_root_specs(path, {"realtime", "handoff"}, root_specs_,
                           roots_parse_error_);
  }

  const std::string& roots_parse_error() const { return roots_parse_error_; }

  std::vector<Violation> run(const std::set<std::string>& rules) {
    if (rules.count("root-coverage")) rule_root_coverage();
    propagate(rules);
    sort_unique_violations(found_);
    return std::move(found_);
  }

  std::size_t function_count() const { return graph_.functions().size(); }
  std::size_t root_count() const { return root_count_; }
  std::size_t reachable_count() const { return reachable_count_; }

 private:
  bool line_allows(const FnRecord& fn, std::size_t ln,
                   const std::string& rule) const {
    const auto& raw = graph_.file_of(fn).raw;
    return ln >= 1 && ln <= raw.size() &&
           suppression_allows(raw, ln - 1, kMarker, rule);
  }

  void rule_root_coverage() {
    const auto& functions = graph_.functions();
    std::vector<std::size_t> matches;  // hoisted per-spec scratch
    for (const auto& spec : root_specs_) {
      matches.clear();
      for (std::size_t i = 0; i < functions.size(); ++i)
        if (CallGraph::suffix_matches(functions[i].qual, spec.name))
          matches.push_back(i);
      if (matches.empty()) {
        found_.push_back({"root-coverage", roots_path_, spec.line,
                          "required root '" + spec.name +
                              "' names no function in the scanned roots — "
                              "the protected entry point was renamed or "
                              "deleted without updating " + roots_path_,
                          ""});
        continue;
      }
      bool ok = false;
      for (const std::size_t id : matches) {
        const FnRecord& fn = functions[id];
        if (spec.kind == "realtime"
                ? fn.has_flag(kRealtime)
                : (fn.has_flag(kHandoff) || fn.has_flag(kRealtime)))
          ok = true;
      }
      if (!ok) {
        const FnRecord& fn = functions[matches.front()];
        found_.push_back(
            {"root-coverage", fn.file, fn.line,
             "required root '" + spec.name + "' has lost its MMHAR_REALTIME" +
                 std::string(spec.kind == "handoff" ? "_HANDOFF" : "") +
                 " annotation (declared required in " + roots_path_ +
                 ":" + std::to_string(spec.line) + ")",
             ""});
      }
    }
  }

  void propagate(const std::set<std::string>& rules) {
    // Roots: every annotated function. The --roots file is a floor that
    // root-coverage enforces, not a ceiling — annotating a new function
    // extends the checked set with no tool change.
    const auto& functions = graph_.functions();
    std::vector<std::size_t> roots;
    for (std::size_t i = 0; i < functions.size(); ++i)
      if (functions[i].flags != 0 && !functions[i].noreturn)
        roots.push_back(i);
    std::sort(roots.begin(), roots.end(),
              [&](std::size_t a, std::size_t b) {
                return std::tie(functions[a].file, functions[a].line) <
                       std::tie(functions[b].file, functions[b].line);
              });
    root_count_ = roots.size();

    const Reachability reach(
        graph_, roots, [this, &functions](const FnRecord& fn, std::size_t ln) {
          (void)functions;
          return line_allows(fn, ln, "calls");
        });
    reachable_count_ = reach.size();

    std::string chain;  // hoisted per-violation scratch
    std::vector<std::size_t> growth_targets;
    for (const auto& [id, v] : reach.via()) {
      (void)v;
      const FnRecord& fn = functions[id];
      chain = reach.chain(graph_, id);
      for (const auto& prim : function_primitives(graph_, fn)) {
        if (!rules.count(prim.rule)) continue;
        if (prim.wrapper_lock && fn.has_flag(kHandoff)) continue;
        if (line_allows(fn, prim.line, prim.rule)) continue;
        if (prim.rule == "alloc" &&
            prim.message.find("may grow a container") != std::string::npos) {
          // Growth member resolved to a repo function? Then it is a call
          // edge (checked transitively), not raw container growth.
          bool resolved = false;
          for (const auto& call : fn.calls) {
            if (call.line != prim.line || !call.member) continue;
            if (prim.message.find("'." + call.name + "(") ==
                std::string::npos)
              continue;
            graph_.resolve(call, fn.file_id, growth_targets);
            if (!growth_targets.empty()) resolved = true;
          }
          if (resolved) continue;
        }
        found_.push_back({prim.rule, fn.file, prim.line,
                          prim.message + " [in " + fn.qual + "]", chain});
      }
      if (rules.count("env-read") && have_registry_ &&
          fn.file.find("common/env.cpp") == std::string::npos) {
        for (const auto& site : graph_.file_of(fn).env_sites) {
          if (site.line < fn.body_begin || site.line > fn.body_end) continue;
          if (line_allows(fn, site.line, "env-read")) continue;
          if (site.name.empty()) {
            found_.push_back(
                {"env-read", fn.file, site.line,
                 "env read with a non-literal name cannot be checked "
                 "against the registry [in " + fn.qual + "]",
                 chain});
          } else if (site.name.rfind("MMHAR_", 0) == 0 &&
                     site.name.rfind("MMHAR_TEST_", 0) != 0 &&
                     registry_.count(site.name) == 0) {
            found_.push_back({"env-read", fn.file, site.line,
                              "'" + site.name +
                                  "' is not in the env registry [in " +
                                  fn.qual + "]",
                              chain});
          }
        }
      }
    }
  }

  CallGraph graph_;
  std::set<std::string> registry_;
  bool have_registry_ = false;
  std::vector<RootSpec> root_specs_;
  std::string roots_path_;
  std::string roots_parse_error_;
  std::size_t root_count_ = 0;
  std::size_t reachable_count_ = 0;
  std::vector<Violation> found_;
};

}  // namespace

int main(int argc, char** argv) {
  std::vector<fs::path> roots_dirs;
  fs::path registry_path;
  fs::path roots_file;
  fs::path report_path;
  std::set<std::string> rules;
  std::string arg;  // hoisted per-flag scratch
  for (int i = 1; i < argc; ++i) {
    arg = argv[i];
    if (arg == "--registry" && i + 1 < argc) {
      registry_path = argv[++i];
    } else if (arg == "--roots" && i + 1 < argc) {
      roots_file = argv[++i];
    } else if (arg == "--report" && i + 1 < argc) {
      report_path = argv[++i];
    } else if (arg == "--rule" && i + 1 < argc) {
      rules.insert(argv[++i]);
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown argument: " << arg << "\n";
      return 2;
    } else {
      roots_dirs.emplace_back(arg);
    }
  }
  if (roots_dirs.empty()) {
    std::cerr << "usage: mmhar_rtcheck [--registry <env_registry.cpp>] "
                 "[--roots <roots.txt>] [--rule <name>]... "
                 "[--report <file>] <root>...\n";
    return 2;
  }
  if (rules.empty())
    rules = {"alloc", "lock", "block", "throw", "env-read", "root-coverage"};

  const AnnotationTokens tokens(
      {"MMHAR_REALTIME", "MMHAR_REALTIME_HANDOFF"});
  std::vector<SourceFile> files;
  std::vector<FnRecord> functions;
  std::map<std::string, DeclFlags> decl_flags;
  std::size_t file_count = 0;
  for (const auto& root : roots_dirs) {
    if (!fs::is_directory(root)) {
      std::cerr << "mmhar_rtcheck: not a directory: " << root << "\n";
      return 2;
    }
    for (const auto& path : collect_sources(root)) {
      SourceFile index;
      index.path = display_path(root, path);
      if (!read_lines(path, index.raw)) {
        std::cerr << "mmhar_rtcheck: cannot read " << path << "\n";
        return 2;
      }
      files.push_back(std::move(index));
      ++file_count;
    }
  }
  for (std::size_t i = 0; i < files.size(); ++i)
    ScopeScanner(files[i], static_cast<int>(i), tokens, functions, decl_flags)
        .scan();

  Checker checker(CallGraph(std::move(files), std::move(functions),
                            std::move(decl_flags)));
  if (!registry_path.empty() && !checker.load_registry(registry_path)) {
    std::cerr << "mmhar_rtcheck: cannot read registry " << registry_path
              << "\n";
    return 2;
  }
  if (!roots_file.empty()) {
    if (!checker.load_roots(roots_file)) {
      std::cerr << "mmhar_rtcheck: cannot read roots file " << roots_file
                << "\n";
      return 2;
    }
    if (!checker.roots_parse_error().empty()) {
      std::cerr << "mmhar_rtcheck: bad roots file " << roots_file << ": "
                << checker.roots_parse_error() << "\n";
      return 2;
    }
  }
  if (rules.count("env-read") && registry_path.empty()) {
    std::cout << "mmhar_rtcheck: note: env-read skipped (--registry not "
                 "given)\n";
    rules.erase("env-read");
  }
  if (rules.count("root-coverage") && roots_file.empty()) {
    std::cout << "mmhar_rtcheck: note: root-coverage skipped (--roots not "
                 "given)\n";
    rules.erase("root-coverage");
  }

  const auto violations = checker.run(rules);
  for (const auto& v : violations) {
    std::cerr << v.file << ":" << v.line << ": [" << v.rule << "] "
              << v.message << "\n";
    if (!v.chain.empty()) std::cerr << "    chain: " << v.chain << "\n";
  }
  if (!report_path.empty()) {
    // Diagnostic report for the CI artifact upload, not a cache the
    // experiment runtime reads; a torn file cannot wedge anything.
    // mmhar-lint: allow(naked-cache-write)
    std::ofstream report(report_path);
    if (!report) {
      std::cerr << "mmhar_rtcheck: cannot write report " << report_path
                << "\n";
      return 2;
    }
    for (const auto& v : violations) {
      report << v.file << ":" << v.line << ": [" << v.rule << "] "
             << v.message << "\n";
      if (!v.chain.empty()) report << "    chain: " << v.chain << "\n";
    }
  }
  std::cout << "mmhar_rtcheck: scanned " << file_count << " file(s), "
            << checker.function_count() << " function(s), "
            << checker.root_count() << " annotated root(s), "
            << checker.reachable_count() << " reachable, "
            << violations.size() << " violation(s)\n";
  std::cout << "mmhar_rtcheck: summary files=" << file_count
            << " functions=" << checker.function_count()
            << " roots=" << checker.root_count()
            << " reachable=" << checker.reachable_count()
            << " violations=" << violations.size()
            << " status=" << (violations.empty() ? "ok" : "fail") << "\n";
  if (!violations.empty()) {
    std::cerr << "mmhar_rtcheck: FAIL — fix the violations above or add a "
                 "justified `// mmhar-rtcheck: allow(<rule>)`\n";
    return 1;
  }
  std::cout << "mmhar_rtcheck: OK\n";
  return 0;
}
