// mmhar_rtcheck — cross-translation-unit real-time-safety checker. Proves
// (textually, over the whole repo at once) that every function reachable
// from the MMHAR_REALTIME / MMHAR_REALTIME_HANDOFF annotation roots — the
// serving batcher cycle, the fft_many* engines, the prepacked-GEMM
// infer_forward plan, and the stream ring push/pop paths — is free of
// allocation, lock acquisition outside the annotated slot hand-off
// protocol, blocking calls and I/O, `throw`, and unregistered MMHAR_* env
// reads.
//
// Pass 1 parses every source root (same scoped-record walk as
// mmhar_analyze: brace-depth scope stack over comment/string-stripped
// lines) into a function-level call graph. Function bodies cover their
// lambdas — a lambda assigned to a named variable, or passed to
// ThreadPool::parallel_for, is attributed to the enclosing function, so a
// violation inside it is charged where it executes. Pass 2 unions
// annotations and [[noreturn]] across declarations and definitions by
// qualified name, walks the graph breadth-first from every annotated
// function, and reports each primitive violation with its exact file:line
// and the call chain from the nearest root.
//
// Rules:
//   alloc          operator new/delete, malloc-family, make_unique/shared,
//                  and allocating STL growth (push_back / resize /
//                  try_emplace / ...) on containers. A growth member name
//                  that resolves to a repo function (e.g. grow-once
//                  InferenceScratch::reserve) becomes a call edge instead
//                  and that function is checked transitively.
//   lock           any lock acquisition. The annotated capability wrappers
//                  (MutexLock / ReaderLock / WriterLock) are permitted in
//                  the *own body* of a MMHAR_REALTIME_HANDOFF function —
//                  the slot hand-off protocol — and nowhere else; raw
//                  std::lock_guard / .lock() / pthread_* are never
//                  permitted.
//   block          condvar waits, sleeps, thread join/spawn, thread-pool
//                  dispatch (parallel_for blocks on worker completion),
//                  and blocking I/O (streams, stdio, system/popen).
//   throw          a `throw` statement. [[noreturn]] functions (the
//                  MMHAR_CHECK failure sinks) are exempt and terminate
//                  traversal: they only execute when the process is
//                  already aborting the computation.
//   env-read       getenv / env_* with a non-literal name, or a literal
//                  MMHAR_* name missing from the env registry
//                  (--registry). common/env.cpp itself (the registry
//                  gate's implementation) is exempt.
//   root-coverage  every entry of the --roots file must name an existing
//                  function that still carries the required annotation —
//                  deleting MMHAR_REALTIME from a root is a failure, not a
//                  silent shrink of the checked set (mirrors the
//                  env-registry deletion property).
//
// Suppression: `// mmhar-rtcheck: allow(<rule>[, <rule>...]) — why` on the
// offending line, or on a comment line in the run of //-comments directly
// above it (multi-line statements carry one justification). The
// pseudo-rule `calls` stops call-graph traversal out of that line — for
// provably cold paths like first-use plan construction. There is
// deliberately no baseline mechanism: the tree must be clean.
//
// Known textual limits (by design — this is a linter, not a compiler):
// receiver types are unknown, so a growth member call whose name matches
// a repo function resolves to it for *any* receiver, and overloads
// sharing a qualified name share their annotations. Both widen the
// checked set or keep it equal; neither invents an escape hatch that the
// suppression comment would not.
//
// Usage:
//   mmhar_rtcheck [--registry <env_registry.cpp>] [--roots <roots.txt>]
//                 [--rule <name>]... [--report <file>] <root>...
//
// Exit codes: 0 clean, 1 violations, 2 usage/IO error — aligned with
// mmhar_lint / mmhar_analyze / bench_gate. Runs in CI and as a ctest (see
// tools/CMakeLists.txt); --report writes the violation list with call
// chains to a file CI uploads as an artifact on failure.

#include <algorithm>
#include <cctype>
#include <deque>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <regex>
#include <set>
#include <string>
#include <vector>

#include "analysis_text.h"

namespace fs = std::filesystem;
using mmhar_tools::blank_template_args;
using mmhar_tools::code_keeping_strings;
using mmhar_tools::code_only;
using mmhar_tools::collect_sources;
using mmhar_tools::display_path;
using mmhar_tools::read_lines;
using mmhar_tools::suppression_allows;
using mmhar_tools::trim;

namespace {

constexpr const char* kMarker = "mmhar-rtcheck";

// Member-call names that never resolve to repo functions: std containers /
// atomics / chrono vocabulary. Lock/wait names are here too — those are
// caught as primitives, and keeping them out of the graph keeps the
// capability wrappers' internals (Mutex::lock calling inner_.lock) from
// appearing as reachable nodes.
const std::set<std::string>& member_skip_list() {
  static const std::set<std::string> skip = {
      "size",       "empty",      "data",        "begin",     "end",
      "cbegin",     "cend",       "rbegin",      "rend",      "length",
      "capacity",   "front",      "back",        "first",     "second",
      "get",        "reset",      "release",     "swap",      "count",
      "find",       "contains",   "clear",       "c_str",     "value",
      "value_or",   "has_value",  "real",        "imag",      "load",
      "store",      "exchange",   "fetch_add",   "fetch_sub", "notify_one",
      "notify_all", "lock",       "unlock",      "try_lock",  "lock_shared",
      "unlock_shared", "min",     "max",         "time_since_epoch"};
  return skip;
}

// STL members whose call can grow the container (allocate). Kept in sync
// with the rule list in the header comment.
const std::set<std::string>& growth_members() {
  static const std::set<std::string> grow = {
      "push_back", "emplace_back", "push_front",       "emplace_front",
      "resize",    "reserve",      "insert",           "emplace",
      "try_emplace", "append",     "assign",           "insert_or_assign"};
  return grow;
}

bool is_call_keyword(const std::string& name) {
  static const std::set<std::string> kw = {
      "if",     "for",      "while",   "switch",        "return",
      "sizeof", "alignof",  "alignas", "decltype",      "noexcept",
      "catch",  "throw",    "new",     "delete",        "static_assert",
      "assert", "defined",  "case",    "else",          "do",
      "goto",   "co_await", "co_return", "co_yield",    "requires"};
  return kw.count(name) > 0;
}

struct CallSite {
  std::string name;  // as written, :: qualifiers kept, whitespace removed
  std::size_t line;  // 1-based
  bool member;       // reached through . or ->
};

struct Primitive {
  std::string rule;
  std::size_t line;  // 1-based
  std::string message;
  bool wrapper_lock = false;  // MutexLock/ReaderLock/WriterLock acquisition
};

struct Function {
  std::string qual;  // fully qualified, e.g. mmhar::serving::Svc::poll
  std::string file;  // display path
  std::size_t line = 0;        // head line, 1-based
  std::size_t body_begin = 0;  // line of the opening '{'
  std::size_t body_end = 0;    // line of the closing '}'
  int file_id = -1;
  bool realtime = false;
  bool handoff = false;
  bool noreturn = false;
  std::vector<CallSite> calls;
  std::vector<Primitive> primitives;
};

struct DeclFlags {
  bool realtime = false;
  bool handoff = false;
  bool noreturn = false;
};

struct EnvSite {
  std::string name;  // literal name, or "" for a non-literal read
  std::size_t line;
};

struct FileIndex {
  std::string path;
  std::vector<std::string> raw;
  std::vector<std::string> code;          // strings blanked
  std::vector<std::string> code_strings;  // strings kept
  std::vector<EnvSite> env_sites;
};

struct Violation {
  std::string rule;
  std::string file;
  std::size_t line;
  std::string message;
  std::string chain;  // "root -> ... -> function"; empty for root-coverage
};

// ---- Function-head dissection ----------------------------------------------

struct HeadInfo {
  bool is_function = false;
  std::string name;  // possibly Record::name-qualified as written
  bool realtime = false;
  bool handoff = false;
  bool noreturn = false;
};

// Dissect an accumulated namespace/record-scope statement that ended in
// '{' (definition) or ';' (declaration): find the declarator name before
// the first top-level '(' and the annotation tokens anywhere in the head.
// MMHAR_REALTIME must not match inside MMHAR_REALTIME_HANDOFF — \b after
// the E sees '_', a word character, so the regexes stay disjoint.
HeadInfo parse_head(const std::string& stmt) {
  HeadInfo info;
  static const std::regex rt_re(R"(\bMMHAR_REALTIME\b)");
  static const std::regex ho_re(R"(\bMMHAR_REALTIME_HANDOFF\b)");
  static const std::regex noret_re(R"(\bnoreturn\b)");
  info.realtime = std::regex_search(stmt, rt_re);
  info.handoff = std::regex_search(stmt, ho_re);
  info.noreturn = std::regex_search(stmt, noret_re);

  const std::string cleaned = blank_template_args(stmt);
  int paren = 0;
  std::size_t name_end = std::string::npos;
  for (std::size_t i = 0; i < cleaned.size(); ++i) {
    const char c = cleaned[i];
    if (c == '(') {
      if (paren == 0 && name_end == std::string::npos) name_end = i;
      ++paren;
    } else if (c == ')') {
      --paren;
    } else if (c == '=' && paren == 0 && name_end == std::string::npos) {
      return info;  // brace-initialised variable, not a function
    }
  }
  if (name_end == std::string::npos) return info;
  const std::string head = trim(cleaned.substr(0, name_end));
  if (head.empty()) return info;
  static const std::regex name_re(R"(((?:[A-Za-z_]\w*::)*~?[A-Za-z_]\w*)$)");
  std::smatch m;
  if (!std::regex_search(head, m, name_re)) {
    // `operator==` and friends: keep the body attributed to *a* function
    // so nested braces stay balanced, under a non-resolvable name.
    if (head.find("operator") != std::string::npos) {
      info.is_function = true;
      info.name = "(operator)";
    }
    return info;
  }
  info.name = m[1].str();
  // A variable annotated with an MMHAR_*(args) attribute would otherwise
  // parse as a function named after the macro.
  if (info.name.rfind("MMHAR_", 0) == 0) return info;
  if (is_call_keyword(info.name)) return info;
  info.is_function = true;
  return info;
}

// ---- Pass 1: per-file scan --------------------------------------------------

class RtScanner {
 public:
  RtScanner(FileIndex& file, int file_id, std::vector<Function>& functions,
            std::map<std::string, DeclFlags>& decl_flags)
      : out_(file),
        file_id_(file_id),
        functions_(functions),
        decl_flags_(decl_flags) {}

  void scan() {
    bool in_block = false;
    bool in_block2 = false;
    out_.code.reserve(out_.raw.size());
    out_.code_strings.reserve(out_.raw.size());
    for (const auto& l : out_.raw) {
      out_.code.push_back(code_only(l, in_block));
      out_.code_strings.push_back(code_keeping_strings(l, in_block2));
    }
    index_env_sites();
    walk_scopes();
    for (const std::size_t id : local_functions_) scan_body(functions_[id]);
  }

 private:
  struct Declarator {
    enum Kind { kNamespace, kRecord, kEnum } kind;
    std::string name;
    std::size_t pos;
  };
  struct Scope {
    enum Kind { kNamespace, kRecord, kBlock, kFunction } kind;
    std::string name;
    int depth;
    std::size_t func = SIZE_MAX;  // index into functions_, kFunction only
  };

  void index_env_sites() {
    static const std::regex lit_re(
        R"((^|[^\w])(env_[a-z_]+|getenv)\s*\(\s*"([A-Za-z0-9_]+)\")");
    static const std::regex dyn_re(
        R"((^|[^\w])(env_int|env_double|env_string|env_double_list|getenv)\s*\(\s*[^"\s])");
    std::string tail;  // hoisted per-line scratch
    for (std::size_t i = 0; i < out_.code_strings.size(); ++i) {
      tail = out_.code_strings[i];
      std::smatch m;
      while (std::regex_search(tail, m, lit_re)) {
        out_.env_sites.push_back({m[3].str(), i + 1});
        tail = m.suffix().str();
      }
      if (std::regex_search(out_.code_strings[i], dyn_re))
        out_.env_sites.push_back({"", i + 1});
    }
  }

  // Same declarator detection as mmhar_analyze's scanner.
  static std::vector<Declarator> find_declarators(const std::string& line) {
    std::vector<Declarator> found;
    static const std::regex ns_re(R"((^|[^\w])namespace(\s+([\w:]+))?\s*\{)");
    static const std::regex enum_re(
        R"((^|[^\w])enum\s+(class\s+|struct\s+)?([A-Za-z_]\w*))");
    static const std::regex rec_re(
        R"((^|[^\w])(struct|class)\s+((?:MMHAR_\w+\s*\([^)]*\)\s*)*)([A-Za-z_]\w*))");
    for (auto it = std::sregex_iterator(line.begin(), line.end(), ns_re);
         it != std::sregex_iterator(); ++it) {
      found.push_back({Declarator::kNamespace, (*it)[3].str(),
                       static_cast<std::size_t>(it->position(0))});
    }
    static const std::regex ns_open_re(
        R"((^|[^\w])namespace(\s+([\w:]+))?\s*$)");
    std::smatch nm;
    if (std::regex_search(line, nm, ns_open_re)) {
      found.push_back({Declarator::kNamespace, nm[3].str(),
                       static_cast<std::size_t>(nm.position(0))});
    }
    std::set<std::size_t> enum_pos;
    for (auto it = std::sregex_iterator(line.begin(), line.end(), enum_re);
         it != std::sregex_iterator(); ++it) {
      enum_pos.insert(static_cast<std::size_t>(it->position(0)));
      found.push_back({Declarator::kEnum, (*it)[3].str(),
                       static_cast<std::size_t>(it->position(0))});
    }
    for (auto it = std::sregex_iterator(line.begin(), line.end(), rec_re);
         it != std::sregex_iterator(); ++it) {
      const auto pos = static_cast<std::size_t>(it->position(0));
      bool inside_enum = false;
      for (const auto ep : enum_pos)
        if (ep <= pos && pos < ep + 12) inside_enum = true;
      if (!inside_enum)
        found.push_back({Declarator::kRecord, (*it)[4].str(), pos});
    }
    std::sort(found.begin(), found.end(),
              [](const Declarator& a, const Declarator& b) {
                return a.pos < b.pos;
              });
    return found;
  }

  // Namespace AND record components — rtcheck qualifies member functions
  // through their record (mmhar::serving::StreamingHarService::poll),
  // unlike mmhar_analyze's namespace-only symbol index.
  static std::string qualify(const std::vector<Scope>& stack,
                             const std::string& name) {
    std::string qual;
    for (const auto& s : stack) {
      if (s.kind == Scope::kNamespace) {
        if (!s.name.empty())
          qual += s.name + "::";
        else if (s.depth > 0)
          qual += "(anonymous)::";
      } else if (s.kind == Scope::kRecord) {
        qual += s.name + "::";
      }
    }
    return qual + name;
  }

  void walk_scopes() {
    std::vector<Scope> stack;
    stack.push_back({Scope::kNamespace, "", 0, SIZE_MAX});
    int depth = 0;
    bool have_pending = false;
    Declarator pending{};
    std::string stmt;
    std::size_t stmt_line = 0;
    bool continuation = false;

    std::string t;  // hoisted per-line scratch
    for (std::size_t i = 0; i < out_.code.size(); ++i) {
      const std::string& line = out_.code[i];
      t = trim(line);
      const bool skip = continuation || (!t.empty() && t[0] == '#');
      continuation = !out_.raw[i].empty() && out_.raw[i].back() == '\\';
      if (skip) continue;

      auto decls = find_declarators(line);
      std::size_t decl_idx = 0;
      for (std::size_t c = 0; c < line.size(); ++c) {
        while (decl_idx < decls.size() && decls[decl_idx].pos <= c) {
          pending = decls[decl_idx];
          have_pending = true;
          ++decl_idx;
        }
        const char ch = line[c];
        const Scope& top = stack.back();
        const bool at_scope_stmt_level =
            (top.kind == Scope::kNamespace || top.kind == Scope::kRecord) &&
            depth == top.depth;

        if (ch == '{') {
          if (have_pending && pending.kind == Declarator::kNamespace) {
            ++depth;
            stack.push_back({Scope::kNamespace, pending.name, depth, SIZE_MAX});
            have_pending = false;
            stmt.clear();
          } else if (have_pending && pending.kind == Declarator::kRecord) {
            ++depth;
            stack.push_back({Scope::kRecord, pending.name, depth, SIZE_MAX});
            have_pending = false;
            stmt.clear();
          } else if (have_pending && pending.kind == Declarator::kEnum) {
            ++depth;
            stack.push_back({Scope::kBlock, pending.name, depth, SIZE_MAX});
            have_pending = false;
            stmt.clear();
          } else if (at_scope_stmt_level) {
            const HeadInfo head = parse_head(stmt);
            ++depth;
            if (head.is_function) {
              Function fn;
              fn.qual = qualify(stack, head.name);
              fn.file = out_.path;
              fn.file_id = file_id_;
              fn.line = stmt_line == 0 ? i + 1 : stmt_line;
              fn.body_begin = i + 1;
              fn.realtime = head.realtime;
              fn.handoff = head.handoff;
              fn.noreturn = head.noreturn;
              functions_.push_back(std::move(fn));
              local_functions_.push_back(functions_.size() - 1);
              stack.push_back(
                  {Scope::kFunction, head.name, depth, functions_.size() - 1});
              stmt.clear();
            } else {
              stack.push_back({Scope::kBlock, "", depth, SIZE_MAX});
            }
          } else {
            ++depth;
            stack.push_back({Scope::kBlock, "", depth, SIZE_MAX});
          }
          continue;
        }
        if (ch == '}') {
          if (stack.size() > 1 && stack.back().depth == depth) {
            if (stack.back().kind == Scope::kFunction)
              functions_[stack.back().func].body_end = i + 1;
            stack.pop_back();
          }
          if (depth > 0) --depth;
          continue;
        }
        if (ch == ';' && at_scope_stmt_level) {
          have_pending = false;
          record_declaration(stmt, stack);
          stmt.clear();
          continue;
        }
        if (at_scope_stmt_level) {
          if (stmt.empty() || trim(stmt).empty()) {
            if (!std::isspace(static_cast<unsigned char>(ch)))
              stmt_line = i + 1;
          }
          stmt.push_back(ch);
        }
      }
      if (!stmt.empty()) stmt.push_back(' ');
    }
    while (stack.size() > 1) {
      if (stack.back().kind == Scope::kFunction &&
          functions_[stack.back().func].body_end == 0)
        functions_[stack.back().func].body_end = out_.code.size();
      stack.pop_back();
    }
  }

  // A ';'-terminated statement at namespace/record scope carrying an
  // annotation or [[noreturn]] is a declaration whose flags must transfer
  // to the definition (annotations live on decls in headers; the
  // [[noreturn]] on finite_check_failed exists only on its decl).
  void record_declaration(const std::string& stmt,
                          const std::vector<Scope>& stack) {
    if (stmt.find('(') == std::string::npos) return;
    const HeadInfo head = parse_head(stmt);
    if (!head.is_function) return;
    if (!head.realtime && !head.handoff && !head.noreturn) return;
    DeclFlags& flags = decl_flags_[qualify(stack, head.name)];
    flags.realtime = flags.realtime || head.realtime;
    flags.handoff = flags.handoff || head.handoff;
    flags.noreturn = flags.noreturn || head.noreturn;
  }

  // ---- Body scan: primitives and call sites --------------------------------

  void scan_body(Function& fn) {
    if (fn.body_begin == 0 || fn.body_end < fn.body_begin) return;
    std::string line_trim;  // hoisted per-line scratch
    for (std::size_t ln = fn.body_begin; ln <= fn.body_end; ++ln) {
      const std::size_t idx = ln - 1;
      if (idx >= out_.code.size()) break;
      line_trim = trim(out_.code[idx]);
      if (!line_trim.empty() && line_trim[0] == '#') continue;
      if (idx > 0 && !out_.raw[idx - 1].empty() &&
          out_.raw[idx - 1].back() == '\\')
        continue;  // macro continuation
      scan_primitives(fn, out_.code[idx], ln);
      scan_calls(fn, blank_template_args(out_.code[idx]), ln);
    }
  }

  void scan_primitives(Function& fn, const std::string& line, std::size_t ln) {
    struct Pat {
      const char* rule;
      std::regex re;
      const char* msg;
      bool wrapper;
    };
    static const std::vector<Pat> pats = [] {
      std::vector<Pat> p;
      p.push_back({"alloc", std::regex(R"(\bnew\b)"),
                   "operator new allocates", false});
      p.push_back({"alloc", std::regex(R"(\bdelete\b)"),
                   "operator delete frees heap memory", false});
      p.push_back(
          {"alloc",
           std::regex(
               R"(\b(malloc|calloc|realloc|strdup|aligned_alloc|posix_memalign|free)\s*\()"),
           "malloc-family call", false});
      p.push_back({"alloc", std::regex(R"(\bstd::make_(unique|shared)\b)"),
                   "make_unique/make_shared allocates", false});
      p.push_back(
          {"alloc",
           std::regex(R"(\bstd::to_string\s*\(|\b(o|i)?stringstream\b)"),
           "string construction allocates", false});
      p.push_back(
          {"lock",
           std::regex(
               R"(\bstd::(lock_guard|unique_lock|scoped_lock|shared_lock)\b)"),
           "raw std lock acquisition (only the annotated MutexLock/"
           "ReaderLock/WriterLock wrappers may appear, and only in "
           "MMHAR_REALTIME_HANDOFF bodies)",
           false});
      p.push_back(
          {"lock",
           std::regex(
               R"((\.|->)\s*(lock|unlock|try_lock|try_lock_shared|try_lock_for|try_lock_until|lock_shared|unlock_shared)\s*\()"),
           "raw mutex method call", false});
      p.push_back({"lock", std::regex(R"(\bpthread_(mutex|rwlock)_\w+\s*\()"),
                   "pthread locking call", false});
      p.push_back(
          {"lock",
           std::regex(
               R"(\b(MutexLock|ReaderLock|WriterLock)\s+[A-Za-z_]\w*\s*[({])"),
           "lock acquisition outside a MMHAR_REALTIME_HANDOFF body (the "
           "annotated slot hand-off protocol)",
           true});
      p.push_back(
          {"block",
           std::regex(R"(\bsleep_for\b|\bsleep_until\b|\busleep\b|\bnanosleep\b)"),
           "sleep blocks the real-time thread", false});
      p.push_back({"block",
                   std::regex(R"((\.|->)\s*wait(_for|_until)?\s*\()"),
                   "condition-variable wait blocks", false});
      p.push_back({"block", std::regex(R"((\.|->)\s*join\s*\()"),
                   "thread join blocks", false});
      p.push_back(
          {"block", std::regex(R"(\bparallel_for(_chunked)?\s*\()"),
           "thread-pool dispatch blocks until every worker chunk finishes",
           false});
      p.push_back({"block", std::regex(R"(\bstd::(async|thread)\b)"),
                   "thread spawn is unbounded-latency", false});
      p.push_back(
          {"block",
           std::regex(
               R"(\bstd::(cout|cerr|clog|cin)\b|\b(std::)?(ofstream|ifstream|fstream)\b)"),
           "stream I/O blocks", false});
      p.push_back(
          {"block",
           std::regex(
               R"(\b(printf|fprintf|fputs|fputc|puts|fopen|fread|fwrite|fclose|fflush|getline|system|popen)\s*\()"),
           "blocking I/O call", false});
      p.push_back({"throw", std::regex(R"((^|[^\w])throw\b)"),
                   "throw unwinds with unbounded latency (and the Error "
                   "object allocates)",
                   false});
      return p;
    }();
    for (const auto& pat : pats) {
      if (!std::regex_search(line, pat.re)) continue;
      fn.primitives.push_back({pat.rule, ln, pat.msg, pat.wrapper});
    }
  }

  void scan_calls(Function& fn, const std::string& line, std::size_t ln) {
    static const std::regex call_re(
        R"(((?:[A-Za-z_]\w*\s*::\s*)*[A-Za-z_]\w*)\s*\()");
    std::string name;  // hoisted per-match scratch
    std::string last;
    for (auto it = std::sregex_iterator(line.begin(), line.end(), call_re);
         it != std::sregex_iterator(); ++it) {
      name = (*it)[1].str();
      name.erase(std::remove_if(name.begin(), name.end(),
                                [](unsigned char c) {
                                  return std::isspace(c) != 0;
                                }),
                 name.end());
      const std::size_t last_sep = name.rfind("::");
      last = last_sep == std::string::npos ? name : name.substr(last_sep + 2);
      if (last.empty() || is_call_keyword(last)) continue;
      if (name.rfind("MMHAR_", 0) == 0) continue;  // annotation/check macro

      const auto pos = static_cast<std::size_t>(it->position(1));
      // Preceding context decides member call vs declaration vs call.
      std::size_t p = pos;
      while (p > 0 &&
             std::isspace(static_cast<unsigned char>(line[p - 1])))
        --p;
      const char prev = p > 0 ? line[p - 1] : '\0';
      const char prev2 = p > 1 ? line[p - 2] : '\0';
      const bool member = prev == '.' || (prev == '>' && prev2 == '-');
      if (!member) {
        if (prev == '>' || prev == '*' || prev == '&') continue;  // decl
        if (std::isalnum(static_cast<unsigned char>(prev)) || prev == '_') {
          // Preceding token is an identifier: `Type name(args)` is a
          // declaration unless the token is a statement keyword.
          std::size_t q = p;
          while (q > 0 &&
                 (std::isalnum(static_cast<unsigned char>(line[q - 1])) ||
                  line[q - 1] == '_'))
            --q;
          if (!is_call_keyword(line.substr(q, p - q))) continue;
        }
      } else {
        if (member_skip_list().count(last) > 0) {
          // Growth members caught below; vocabulary members are opaque.
          if (growth_members().count(last) == 0) continue;
        }
        if (growth_members().count(last) > 0) {
          // Resolution decides in pass 2: repo function -> call edge,
          // otherwise an allocating container-growth primitive.
          fn.calls.push_back({last, ln, true});
          fn.primitives.push_back(
              {"alloc", ln,
               "'." + last + "(...)' may grow a container (allocates)",
               false});
          continue;
        }
      }
      fn.calls.push_back({member ? last : name, ln, member});
    }
  }

  FileIndex& out_;
  int file_id_;
  std::vector<Function>& functions_;
  std::map<std::string, DeclFlags>& decl_flags_;
  std::vector<std::size_t> local_functions_;
};

// ---- Pass 2: graph propagation ---------------------------------------------

struct RootSpec {
  std::string kind;  // "realtime" | "handoff"
  std::string name;  // qualified suffix
  std::size_t line;  // in the roots file
};

class Checker {
 public:
  Checker(std::vector<FileIndex> files, std::vector<Function> functions,
          std::map<std::string, DeclFlags> decl_flags)
      : files_(std::move(files)),
        functions_(std::move(functions)),
        decl_flags_(std::move(decl_flags)) {
    // Union decl-carried flags into definitions, by qualified name.
    for (auto& fn : functions_) {
      const auto it = decl_flags_.find(fn.qual);
      if (it == decl_flags_.end()) continue;
      fn.realtime = fn.realtime || it->second.realtime;
      fn.handoff = fn.handoff || it->second.handoff;
      fn.noreturn = fn.noreturn || it->second.noreturn;
    }
    std::string last;  // hoisted per-function scratch
    for (std::size_t i = 0; i < functions_.size(); ++i) {
      last = last_component(functions_[i].qual);
      by_last_[last].push_back(i);
    }
  }

  bool load_registry(const fs::path& path) {
    static const std::regex row_re(R"re(\{\s*"(MMHAR_\w+)"\s*,)re");
    std::vector<std::string> raw;
    if (!read_lines(path, raw)) return false;
    bool in_block = false;
    std::string code;  // hoisted per-line scratch
    for (const auto& line : raw) {
      code = code_keeping_strings(line, in_block);
      std::smatch m;
      if (std::regex_search(code, m, row_re)) registry_.insert(m[1].str());
    }
    have_registry_ = true;
    return true;
  }

  bool load_roots(const fs::path& path) {
    roots_path_ = path.generic_string();
    std::vector<std::string> raw;
    if (!read_lines(path, raw)) return false;
    static const std::regex row_re(R"(^\s*(realtime|handoff)\s+(\S+)\s*$)");
    std::string t;  // hoisted per-line scratch
    for (std::size_t i = 0; i < raw.size(); ++i) {
      t = trim(raw[i]);
      if (t.empty() || t[0] == '#') continue;
      std::smatch m;
      if (!std::regex_match(t, m, row_re)) {
        roots_parse_error_ = "line " + std::to_string(i + 1) +
                             ": expected '<realtime|handoff> "
                             "<qualified-name-suffix>', got: " + t;
        return true;  // readable file, bad row — reported as usage error
      }
      root_specs_.push_back({m[1].str(), m[2].str(), i + 1});
    }
    return true;
  }

  const std::string& roots_parse_error() const { return roots_parse_error_; }

  std::vector<Violation> run(const std::set<std::string>& rules) {
    if (rules.count("root-coverage")) rule_root_coverage();
    propagate(rules);
    std::sort(found_.begin(), found_.end(),
              [](const Violation& a, const Violation& b) {
                return std::tie(a.file, a.line, a.rule, a.message) <
                       std::tie(b.file, b.line, b.rule, b.message);
              });
    found_.erase(std::unique(found_.begin(), found_.end(),
                             [](const Violation& a, const Violation& b) {
                               return a.file == b.file && a.line == b.line &&
                                      a.rule == b.rule &&
                                      a.message == b.message;
                             }),
                 found_.end());
    return std::move(found_);
  }

  std::size_t function_count() const { return functions_.size(); }
  std::size_t root_count() const { return root_count_; }
  std::size_t reachable_count() const { return reachable_count_; }

 private:
  static std::string last_component(const std::string& qual) {
    const std::size_t sep = qual.rfind("::");
    return sep == std::string::npos ? qual : qual.substr(sep + 2);
  }

  // `qual` ends with `suffix` on a :: component boundary. Anonymous-
  // namespace components are transparent so a roots-file entry like
  // `dsp::plan_for` can name the file-local mmhar::dsp::(anonymous)::
  // plan_for without hard-coding the linkage detail.
  static bool suffix_matches(const std::string& qual,
                             const std::string& suffix) {
    const auto ends_on_boundary = [](const std::string& q,
                                     const std::string& s) {
      if (q == s) return true;
      if (q.size() <= s.size()) return false;
      if (q.compare(q.size() - s.size(), s.size(), s) != 0) return false;
      return q.compare(q.size() - s.size() - 2, 2, "::") == 0;
    };
    if (ends_on_boundary(qual, suffix)) return true;
    std::string stripped = qual;
    for (std::size_t at = stripped.find("(anonymous)::");
         at != std::string::npos; at = stripped.find("(anonymous)::"))
      stripped.erase(at, 13);
    return ends_on_boundary(stripped, suffix);
  }

  // Call-name resolution. Free calls must match their written qualifier
  // as a component-aligned suffix (so std:: / chrono:: calls resolve to
  // nothing instead of colliding with same-named repo functions) and
  // prefer same-file candidates when any exist — modelling anonymous-
  // namespace lookup, and keeping fft.cpp's file-local plan_for() from
  // resolving into AttackExperiment::plan_for. Member calls have no
  // receiver type textually, so they resolve only within the caller's own
  // file (the hot-path pattern: a record and its consumers share a TU);
  // a cross-file growth member stays an alloc primitive instead.
  void resolve(const CallSite& call, int caller_file,
               std::vector<std::size_t>& out) const {
    out.clear();
    const auto it = by_last_.find(last_component(call.name));
    if (it == by_last_.end()) return;
    bool any_same_file = false;
    for (const std::size_t id : it->second) {
      const Function& f = functions_[id];
      if (call.member) {
        if (f.file_id == caller_file) out.push_back(id);
        continue;
      }
      if (call.name != last_component(call.name) &&
          !suffix_matches(f.qual, call.name))
        continue;
      out.push_back(id);
      any_same_file = any_same_file || f.file_id == caller_file;
    }
    if (!call.member && any_same_file) {
      out.erase(std::remove_if(out.begin(), out.end(),
                               [&](std::size_t id) {
                                 return functions_[id].file_id != caller_file;
                               }),
                out.end());
    }
  }

  bool line_allows(const Function& fn, std::size_t ln,
                   const std::string& rule) const {
    const auto& raw = files_[static_cast<std::size_t>(fn.file_id)].raw;
    return ln >= 1 && ln <= raw.size() &&
           suppression_allows(raw, ln - 1, kMarker, rule);
  }

  void rule_root_coverage() {
    root_specs_checked_ = true;
    std::vector<std::size_t> matches;  // hoisted per-spec scratch
    for (const auto& spec : root_specs_) {
      matches.clear();
      for (std::size_t i = 0; i < functions_.size(); ++i)
        if (suffix_matches(functions_[i].qual, spec.name)) matches.push_back(i);
      if (matches.empty()) {
        found_.push_back({"root-coverage", roots_path_, spec.line,
                          "required root '" + spec.name +
                              "' names no function in the scanned roots — "
                              "the protected entry point was renamed or "
                              "deleted without updating " + roots_path_,
                          ""});
        continue;
      }
      bool ok = false;
      for (const std::size_t id : matches) {
        const Function& fn = functions_[id];
        if (spec.kind == "realtime" ? fn.realtime
                                    : (fn.handoff || fn.realtime))
          ok = true;
      }
      if (!ok) {
        const Function& fn = functions_[matches.front()];
        found_.push_back(
            {"root-coverage", fn.file, fn.line,
             "required root '" + spec.name + "' has lost its MMHAR_REALTIME" +
                 std::string(spec.kind == "handoff" ? "_HANDOFF" : "") +
                 " annotation (declared required in " + roots_path_ +
                 ":" + std::to_string(spec.line) + ")",
             ""});
      }
    }
  }

  void propagate(const std::set<std::string>& rules) {
    // Roots: every annotated function. The --roots file is a floor that
    // root-coverage enforces, not a ceiling — annotating a new function
    // extends the checked set with no tool change.
    std::vector<std::size_t> roots;
    for (std::size_t i = 0; i < functions_.size(); ++i)
      if ((functions_[i].realtime || functions_[i].handoff) &&
          !functions_[i].noreturn)
        roots.push_back(i);
    std::sort(roots.begin(), roots.end(),
              [this](std::size_t a, std::size_t b) {
                return std::tie(functions_[a].file, functions_[a].line) <
                       std::tie(functions_[b].file, functions_[b].line);
              });
    root_count_ = roots.size();

    struct Via {
      std::size_t parent;
      bool is_root;
    };
    std::map<std::size_t, Via> via;
    std::deque<std::size_t> queue;
    for (const std::size_t r : roots) {
      if (via.count(r)) continue;
      via[r] = {r, true};
      queue.push_back(r);
    }
    std::vector<std::size_t> targets;  // hoisted per-call scratch
    while (!queue.empty()) {
      const std::size_t id = queue.front();
      queue.pop_front();
      const Function& fn = functions_[id];
      for (const auto& call : fn.calls) {
        if (line_allows(fn, call.line, "calls")) continue;
        resolve(call, fn.file_id, targets);
        for (const std::size_t t : targets) {
          if (t == id || via.count(t) || functions_[t].noreturn) continue;
          via[t] = {id, false};
          queue.push_back(t);
        }
      }
    }
    reachable_count_ = via.size();

    std::string chain;  // hoisted per-violation scratch
    std::vector<std::size_t> growth_targets;
    for (const auto& [id, v] : via) {
      const Function& fn = functions_[id];
      chain.clear();
      for (std::size_t cur = id;;) {
        const Function& f = functions_[cur];
        chain.insert(0, f.qual + (chain.empty() ? "" : " -> "));
        const Via& step = via.at(cur);
        if (step.is_root && cur == id) break;
        if (step.is_root || step.parent == cur) break;
        cur = step.parent;
      }
      for (const auto& prim : fn.primitives) {
        if (!rules.count(prim.rule)) continue;
        if (prim.wrapper_lock && fn.handoff) continue;
        if (line_allows(fn, prim.line, prim.rule)) continue;
        if (prim.rule == "alloc" &&
            prim.message.find("may grow a container") != std::string::npos) {
          // Growth member resolved to a repo function? Then it is a call
          // edge (checked transitively), not raw container growth.
          bool resolved = false;
          for (const auto& call : fn.calls) {
            if (call.line != prim.line || !call.member) continue;
            if (prim.message.find("'." + call.name + "(") ==
                std::string::npos)
              continue;
            resolve(call, fn.file_id, growth_targets);
            if (!growth_targets.empty()) resolved = true;
          }
          if (resolved) continue;
        }
        found_.push_back({prim.rule, fn.file, prim.line,
                          prim.message + " [in " + fn.qual + "]", chain});
      }
      if (rules.count("env-read") && have_registry_ &&
          fn.file.find("common/env.cpp") == std::string::npos) {
        const auto& sites =
            files_[static_cast<std::size_t>(fn.file_id)].env_sites;
        for (const auto& site : sites) {
          if (site.line < fn.body_begin || site.line > fn.body_end) continue;
          if (line_allows(fn, site.line, "env-read")) continue;
          if (site.name.empty()) {
            found_.push_back(
                {"env-read", fn.file, site.line,
                 "env read with a non-literal name cannot be checked "
                 "against the registry [in " + fn.qual + "]",
                 chain});
          } else if (site.name.rfind("MMHAR_", 0) == 0 &&
                     site.name.rfind("MMHAR_TEST_", 0) != 0 &&
                     registry_.count(site.name) == 0) {
            found_.push_back({"env-read", fn.file, site.line,
                              "'" + site.name +
                                  "' is not in the env registry [in " +
                                  fn.qual + "]",
                              chain});
          }
        }
      }
    }
  }

  std::vector<FileIndex> files_;
  std::vector<Function> functions_;
  std::map<std::string, DeclFlags> decl_flags_;
  std::map<std::string, std::vector<std::size_t>> by_last_;
  std::set<std::string> registry_;
  bool have_registry_ = false;
  std::vector<RootSpec> root_specs_;
  std::string roots_path_;
  std::string roots_parse_error_;
  bool root_specs_checked_ = false;
  std::size_t root_count_ = 0;
  std::size_t reachable_count_ = 0;
  std::vector<Violation> found_;
};

}  // namespace

int main(int argc, char** argv) {
  std::vector<fs::path> roots_dirs;
  fs::path registry_path;
  fs::path roots_file;
  fs::path report_path;
  std::set<std::string> rules;
  std::string arg;  // hoisted per-flag scratch
  for (int i = 1; i < argc; ++i) {
    arg = argv[i];
    if (arg == "--registry" && i + 1 < argc) {
      registry_path = argv[++i];
    } else if (arg == "--roots" && i + 1 < argc) {
      roots_file = argv[++i];
    } else if (arg == "--report" && i + 1 < argc) {
      report_path = argv[++i];
    } else if (arg == "--rule" && i + 1 < argc) {
      rules.insert(argv[++i]);
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown argument: " << arg << "\n";
      return 2;
    } else {
      roots_dirs.emplace_back(arg);
    }
  }
  if (roots_dirs.empty()) {
    std::cerr << "usage: mmhar_rtcheck [--registry <env_registry.cpp>] "
                 "[--roots <roots.txt>] [--rule <name>]... "
                 "[--report <file>] <root>...\n";
    return 2;
  }
  if (rules.empty())
    rules = {"alloc", "lock", "block", "throw", "env-read", "root-coverage"};

  std::vector<FileIndex> files;
  std::vector<Function> functions;
  std::map<std::string, DeclFlags> decl_flags;
  std::size_t file_count = 0;
  for (const auto& root : roots_dirs) {
    if (!fs::is_directory(root)) {
      std::cerr << "mmhar_rtcheck: not a directory: " << root << "\n";
      return 2;
    }
    for (const auto& path : collect_sources(root)) {
      FileIndex index;
      index.path = display_path(root, path);
      if (!read_lines(path, index.raw)) {
        std::cerr << "mmhar_rtcheck: cannot read " << path << "\n";
        return 2;
      }
      files.push_back(std::move(index));
      ++file_count;
    }
  }
  for (std::size_t i = 0; i < files.size(); ++i)
    RtScanner(files[i], static_cast<int>(i), functions, decl_flags).scan();

  Checker checker(std::move(files), std::move(functions),
                  std::move(decl_flags));
  if (!registry_path.empty() && !checker.load_registry(registry_path)) {
    std::cerr << "mmhar_rtcheck: cannot read registry " << registry_path
              << "\n";
    return 2;
  }
  if (!roots_file.empty()) {
    if (!checker.load_roots(roots_file)) {
      std::cerr << "mmhar_rtcheck: cannot read roots file " << roots_file
                << "\n";
      return 2;
    }
    if (!checker.roots_parse_error().empty()) {
      std::cerr << "mmhar_rtcheck: bad roots file " << roots_file << ": "
                << checker.roots_parse_error() << "\n";
      return 2;
    }
  }
  if (rules.count("env-read") && registry_path.empty()) {
    std::cout << "mmhar_rtcheck: note: env-read skipped (--registry not "
                 "given)\n";
    rules.erase("env-read");
  }
  if (rules.count("root-coverage") && roots_file.empty()) {
    std::cout << "mmhar_rtcheck: note: root-coverage skipped (--roots not "
                 "given)\n";
    rules.erase("root-coverage");
  }

  const auto violations = checker.run(rules);
  for (const auto& v : violations) {
    std::cerr << v.file << ":" << v.line << ": [" << v.rule << "] "
              << v.message << "\n";
    if (!v.chain.empty()) std::cerr << "    chain: " << v.chain << "\n";
  }
  if (!report_path.empty()) {
    // Diagnostic report for the CI artifact upload, not a cache the
    // experiment runtime reads; a torn file cannot wedge anything.
    // mmhar-lint: allow(naked-cache-write)
    std::ofstream report(report_path);
    if (!report) {
      std::cerr << "mmhar_rtcheck: cannot write report " << report_path
                << "\n";
      return 2;
    }
    for (const auto& v : violations) {
      report << v.file << ":" << v.line << ": [" << v.rule << "] "
             << v.message << "\n";
      if (!v.chain.empty()) report << "    chain: " << v.chain << "\n";
    }
  }
  std::cout << "mmhar_rtcheck: scanned " << file_count << " file(s), "
            << checker.function_count() << " function(s), "
            << checker.root_count() << " annotated root(s), "
            << checker.reachable_count() << " reachable, "
            << violations.size() << " violation(s)\n";
  std::cout << "mmhar_rtcheck: summary files=" << file_count
            << " functions=" << checker.function_count()
            << " roots=" << checker.root_count()
            << " reachable=" << checker.reachable_count()
            << " violations=" << violations.size()
            << " status=" << (violations.empty() ? "ok" : "fail") << "\n";
  if (!violations.empty()) {
    std::cerr << "mmhar_rtcheck: FAIL — fix the violations above or add a "
                 "justified `// mmhar-rtcheck: allow(<rule>)`\n";
    return 1;
  }
  std::cout << "mmhar_rtcheck: OK\n";
  return 0;
}
