#!/usr/bin/env bash
# Serving chaos smoke: drive the sharded streaming service through
# injected shard crashes, a stalled worker, poisoned frames, and failing
# inference rows mid-load, and assert that it converges with every fault
# attributed in the health counters — then run a disarmed control that
# must classify everything exactly with zero fault counters.
#
# The heavy lifting (multi-producer load, accounting identities, restart
# assertions) lives in bench/bench_serving_chaos.cpp; this script arms
# the injector, checks the two exit codes, and cross-checks the summary
# counters it prints.
#
# Usage: tools/serving_chaos_smoke.sh [path-to-chaos-binary]
# Default binary: build/bench/bench_serving_chaos

set -u

BIN=${1:-build/bench/bench_serving_chaos}
if [ ! -x "$BIN" ]; then
  echo "serving_chaos_smoke: chaos binary not found: $BIN" >&2
  exit 2
fi

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

export MMHAR_LOG_LEVEL=${MMHAR_LOG_LEVEL:-3}
export MMHAR_SERVING_SHARDS=${MMHAR_SERVING_SHARDS:-4}
export MMHAR_SERVING_WATCHDOG_MS=${MMHAR_SERVING_WATCHDOG_MS:-5}
export MMHAR_SERVING_FRAMES=${MMHAR_SERVING_FRAMES:-24}

# Pull "key=value" integer counters out of the driver's summary line.
counter() { sed -n "s/.*[ (]$2=\([0-9]*\).*/\1/p" "$1" | head -n 1; }

echo "== armed run (crash + stall + poison + inference faults mid-load) =="
if ! MMHAR_FAULT_SPEC="serving.frame_poison=0.05,serving.infer_fail=0.02,serving.shard_crash@3,serving.shard_stall@11" \
     MMHAR_FAULT_SEED=7 "$BIN" > "$WORK/armed.out" 2>&1; then
  echo "serving_chaos_smoke: armed run failed" >&2
  cat "$WORK/armed.out" >&2
  exit 1
fi
grep "chaos summary" "$WORK/armed.out"

status=0
if ! grep -q "serving_chaos: OK" "$WORK/armed.out"; then
  echo "serving_chaos_smoke: armed run produced no OK line" >&2
  status=1
fi
# ~77 expected poison draws at p=0.05 over 64x24 claims and a
# deterministic crash@3: zero fires means the sites are not wired, not
# bad luck.
quarantined=$(counter "$WORK/armed.out" quarantined)
restarts=$(counter "$WORK/armed.out" restarts)
if [ -z "$quarantined" ] || [ "$quarantined" -lt 1 ]; then
  echo "serving_chaos_smoke: no poisoned frame was quarantined" >&2
  status=1
fi
if [ -z "$restarts" ] || [ "$restarts" -lt 1 ]; then
  echo "serving_chaos_smoke: the injected shard crash triggered no" \
       "supervised restart" >&2
  status=1
fi

echo "== disarmed control (same load, no injector) =="
if ! MMHAR_FAULT_SPEC= "$BIN" > "$WORK/control.out" 2>&1; then
  echo "serving_chaos_smoke: disarmed control failed" >&2
  cat "$WORK/control.out" >&2
  exit 1
fi
grep "chaos summary" "$WORK/control.out"
for key in quarantined errors shed restarts; do
  v=$(counter "$WORK/control.out" "$key")
  if [ -z "$v" ] || [ "$v" -ne 0 ]; then
    echo "serving_chaos_smoke: disarmed control has nonzero $key" >&2
    status=1
  fi
done

if [ "$status" -eq 0 ]; then
  echo "serving_chaos_smoke: OK (converged under injected faults; every" \
       "fault attributed; disarmed control clean)"
fi
exit $status
