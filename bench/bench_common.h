// Shared experiment-bench plumbing.
//
// Each bench binary regenerates one table or figure of the paper. Figures
// 8-13 are sweeps of (scenario x axis-value) points; this header provides
// the shared sweep runner and table printing so each bench stays a
// declarative description of its figure.
//
// Scale knobs (see DESIGN.md): MMHAR_REPEATS (default 2; paper uses 30),
// MMHAR_EPOCHS, MMHAR_REPS_TRAIN, plus MMHAR_RATES / MMHAR_FRAMES to
// override the sweep grids.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "common/env.h"
#include "core/experiment.h"
#include "mesh/activity.h"

namespace mmhar::bench {

struct Scenario {
  std::string name;
  core::AttackPoint point;
};

inline Scenario make_scenario(mesh::Activity victim, mesh::Activity target) {
  Scenario s;
  s.point.victim = static_cast<std::size_t>(victim);
  s.point.target = static_cast<std::size_t>(target);
  s.name = std::string(mesh::activity_name(victim)) + "->" +
           mesh::activity_name(target);
  return s;
}

/// Default sweep grids (paper sweeps injection rate at 8 frames and frame
/// count at rate 0.4).
inline std::vector<double> default_rates() {
  return {0.1, 0.2, 0.3, 0.4};
}
inline std::vector<std::size_t> default_frame_counts() {
  return {2, 4, 8, 12};
}

inline void print_run_config(const core::ExperimentSetup& setup) {
  std::printf(
      "# config: train %zu samples, repeats %zu, epochs %zu "
      "(override via MMHAR_REPEATS / MMHAR_EPOCHS / MMHAR_REPS_TRAIN)\n",
      setup.train_grid.total_samples(), setup.repeats,
      setup.training.epochs);
}

inline void print_sweep_header(const char* axis_name) {
  std::printf("%-28s %8s %8s %8s %8s %8s\n", "scenario", axis_name, "ASR%",
              "UASR%", "CDR%", "+-ASR");
}

inline void print_sweep_row(const std::string& scenario, double axis_value,
                            const core::PointSummary& s) {
  std::printf("%-28s %8.2f %8.1f %8.1f %8.1f %8.1f\n", scenario.c_str(),
              axis_value, 100.0 * s.mean.asr, 100.0 * s.mean.uasr,
              100.0 * s.mean.cdr, 100.0 * s.stddev.asr);
  std::fflush(stdout);
}

/// Sweep injection rate for each scenario (figures 8a-c, 10a-c, 12a-c).
inline void run_injection_sweep(core::AttackExperiment& experiment,
                                const std::vector<Scenario>& scenarios) {
  print_run_config(experiment.setup());
  print_sweep_header("rate");
  for (const Scenario& scenario : scenarios) {
    for (const double rate : default_rates()) {
      core::AttackPoint point = scenario.point;
      point.injection_rate = rate;
      const auto summary = experiment.run_point(point);
      print_sweep_row(scenario.name, rate, summary);
    }
  }
}

/// Sweep poisoned-frame count for each scenario (figures 9, 11, 13).
inline void run_frames_sweep(core::AttackExperiment& experiment,
                             const std::vector<Scenario>& scenarios) {
  print_run_config(experiment.setup());
  print_sweep_header("frames");
  for (const Scenario& scenario : scenarios) {
    for (const std::size_t frames : default_frame_counts()) {
      core::AttackPoint point = scenario.point;
      point.poisoned_frames = frames;
      const auto summary = experiment.run_point(point);
      print_sweep_row(scenario.name, static_cast<double>(frames), summary);
    }
  }
}

/// Render a heatmap as coarse ASCII art (figure-5 style visualization).
inline void print_heatmap_ascii(const Tensor& heatmap, const char* title) {
  static const char* shades = " .:-=+*#%@";
  std::printf("%s (%zux%zu, rows=range near->far, cols=angle left->right)\n",
              title, heatmap.dim(0), heatmap.dim(1));
  const float lo = heatmap.min();
  const float hi = heatmap.max();
  const float range = hi - lo > 0.0F ? hi - lo : 1.0F;
  for (std::size_t r = 0; r < heatmap.dim(0); ++r) {
    std::putchar(' ');
    for (std::size_t a = 0; a < heatmap.dim(1); ++a) {
      const float v = (heatmap.at(r, a) - lo) / range;
      const int idx = std::min(9, static_cast<int>(v * 10.0F));
      std::putchar(shades[idx]);
    }
    std::putchar('\n');
  }
}

}  // namespace mmhar::bench
