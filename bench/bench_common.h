// Shared experiment-bench plumbing.
//
// Each bench binary regenerates one table or figure of the paper. Figures
// 8-13 are sweeps of (scenario x axis-value) points; this header provides
// the shared sweep runner and table printing so each bench stays a
// declarative description of its figure.
//
// Scale knobs (see DESIGN.md): MMHAR_REPEATS (default 2; paper uses 30),
// MMHAR_EPOCHS, MMHAR_REPS_TRAIN, plus MMHAR_RATES / MMHAR_FRAMES to
// override the sweep grids.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/env.h"
#include "core/experiment.h"
#include "mesh/activity.h"

namespace mmhar::bench {

struct Scenario {
  std::string name;
  core::AttackPoint point;
};

inline Scenario make_scenario(mesh::Activity victim, mesh::Activity target) {
  Scenario s;
  s.point.victim = static_cast<std::size_t>(victim);
  s.point.target = static_cast<std::size_t>(target);
  s.name = std::string(mesh::activity_name(victim)) + "->" +
           mesh::activity_name(target);
  return s;
}

/// Parse a comma-separated numeric list from an env var ("0.1,0.2,0.4");
/// unset/empty/unparseable falls back to the default grid.
inline std::vector<double> env_double_list(const char* name,
                                           std::vector<double> fallback) {
  const std::string raw = env_string(name, "");
  if (raw.empty()) return fallback;
  std::vector<double> out;
  std::size_t pos = 0;
  std::string tok;  // hoisted per-token scratch
  while (pos <= raw.size()) {
    const std::size_t comma = raw.find(',', pos);
    tok.assign(raw, pos,
               comma == std::string::npos ? std::string::npos : comma - pos);
    char* end = nullptr;
    const double v = std::strtod(tok.c_str(), &end);
    if (end != tok.c_str()) out.push_back(v);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out.empty() ? fallback : out;
}

/// Default sweep grids (paper sweeps injection rate at 8 frames and frame
/// count at rate 0.4); override via MMHAR_RATES / MMHAR_FRAMES.
inline std::vector<double> default_rates() {
  return env_double_list("MMHAR_RATES", {0.1, 0.2, 0.3, 0.4});
}
inline std::vector<std::size_t> default_frame_counts() {
  const auto raw = env_double_list("MMHAR_FRAMES", {2, 4, 8, 12});
  std::vector<std::size_t> counts;
  for (const double v : raw)
    if (v >= 1.0) counts.push_back(static_cast<std::size_t>(v));
  return counts.empty() ? std::vector<std::size_t>{2, 4, 8, 12} : counts;
}

inline void print_run_config(const core::ExperimentSetup& setup) {
  std::printf(
      "# config: train %zu samples, repeats %zu, epochs %zu "
      "(override via MMHAR_REPEATS / MMHAR_EPOCHS / MMHAR_REPS_TRAIN)\n",
      setup.train_grid.total_samples(), setup.repeats,
      setup.training.epochs);
}

inline void print_sweep_header(const char* axis_name) {
  std::printf("%-28s %8s %8s %8s %8s %8s\n", "scenario", axis_name, "ASR%",
              "UASR%", "CDR%", "+-ASR");
}

inline void print_sweep_row(const std::string& scenario, double axis_value,
                            const core::PointSummary& s) {
  std::printf("%-28s %8.2f %8.1f %8.1f %8.1f %8.1f\n", scenario.c_str(),
              axis_value, 100.0 * s.mean.asr, 100.0 * s.mean.uasr,
              100.0 * s.mean.cdr, 100.0 * s.stddev.asr);
  if (s.failed_repeats > 0) {
    std::printf("# ^ %zu/%zu repeats failed: %s\n", s.failed_repeats,
                s.repeats,
                s.errors.empty() ? "unknown" : s.errors.front().c_str());
  }
  std::fflush(stdout);
}

inline void print_failed_row(const std::string& scenario, double axis_value,
                             const std::string& error) {
  std::printf("%-28s %8.2f   FAILED  (%s)\n", scenario.c_str(), axis_value,
              error.c_str());
  std::fflush(stdout);
}

/// One sweep point at the runner boundary: a point whose every repeat
/// failed (or that threw outside the per-repeat recovery, e.g. while
/// planning) prints a FAILED row and the sweep continues.
inline void run_sweep_point(core::AttackExperiment& experiment,
                            const std::string& name, double axis_value,
                            const core::AttackPoint& point) {
  try {
    const auto summary = experiment.run_point(point);
    if (!summary.ok()) {
      print_failed_row(name, axis_value,
                       summary.errors.empty() ? "all repeats failed"
                                              : summary.errors.front());
      return;
    }
    print_sweep_row(name, axis_value, summary);
  } catch (const Error& e) {
    print_failed_row(name, axis_value, e.what());
  }
}

/// Sweep injection rate for each scenario (figures 8a-c, 10a-c, 12a-c).
inline void run_injection_sweep(core::AttackExperiment& experiment,
                                const std::vector<Scenario>& scenarios) {
  print_run_config(experiment.setup());
  print_sweep_header("rate");
  for (const Scenario& scenario : scenarios) {
    for (const double rate : default_rates()) {
      core::AttackPoint point = scenario.point;
      point.injection_rate = rate;
      run_sweep_point(experiment, scenario.name, rate, point);
    }
  }
}

/// Sweep poisoned-frame count for each scenario (figures 9, 11, 13).
inline void run_frames_sweep(core::AttackExperiment& experiment,
                             const std::vector<Scenario>& scenarios) {
  print_run_config(experiment.setup());
  print_sweep_header("frames");
  for (const Scenario& scenario : scenarios) {
    for (const std::size_t frames : default_frame_counts()) {
      core::AttackPoint point = scenario.point;
      point.poisoned_frames = frames;
      run_sweep_point(experiment, scenario.name,
                      static_cast<double>(frames), point);
    }
  }
}

/// Render a heatmap as coarse ASCII art (figure-5 style visualization).
inline void print_heatmap_ascii(const Tensor& heatmap, const char* title) {
  static const char* shades = " .:-=+*#%@";
  std::printf("%s (%zux%zu, rows=range near->far, cols=angle left->right)\n",
              title, heatmap.dim(0), heatmap.dim(1));
  const float lo = heatmap.min();
  const float hi = heatmap.max();
  const float range = hi - lo > 0.0F ? hi - lo : 1.0F;
  for (std::size_t r = 0; r < heatmap.dim(0); ++r) {
    std::putchar(' ');
    for (std::size_t a = 0; a < heatmap.dim(1); ++a) {
      const float v = (heatmap.at(r, a) - lo) / range;
      const int idx = std::min(9, static_cast<int>(v * 10.0F));
      std::putchar(shades[idx]);
    }
    std::putchar('\n');
  }
}

}  // namespace mmhar::bench
