// Figure 10 (a-c): ASR / UASR / CDR vs. injection rate for DISSIMILAR
// trajectory attacks (Push->RightSwipe and Push->Anticlockwise), poisoned
// frames fixed at 8.
//
// Expected paper shape: harder than similar-trajectory attacks — ASR
// around 60-70% at rate 0.4 (vs >80% similar); UASR stays high; CDR >90%.
#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace mmhar;
  std::printf(
      "== Figure 10: dissimilar-trajectory attacks vs injection rate ==\n");
  auto setup = core::ExperimentSetup::standard();
  core::AttackExperiment experiment(setup);

  const std::vector<bench::Scenario> scenarios{
      bench::make_scenario(mesh::Activity::Push, mesh::Activity::RightSwipe),
      bench::make_scenario(mesh::Activity::Push,
                           mesh::Activity::Anticlockwise),
  };
  bench::run_injection_sweep(experiment, scenarios);
  std::printf("# paper shape: lower ASR than Figure 8 at the same rates "
              "(cross-trajectory is harder); UASR >= ASR.\n");
  return 0;
}
