// Figure 14: impact of the subject's angle on ASR/UASR.
//
// One backdoored model (rate 0.4, 8 frames, Push->Pull) is evaluated on
// trigger-bearing samples at angles -30..30 degrees, distance fixed at
// 1.6 m. Angles -30/0/30 appear in the training grid; the rest are
// zero-shot. Paper shape: ~100% ASR across both seen and unseen angles.
#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace mmhar;
  std::printf("== Figure 14: impact of the angle on ASR ==\n");
  auto setup = core::ExperimentSetup::standard();
  core::AttackExperiment experiment(setup);
  bench::print_run_config(setup);

  core::AttackPoint point;  // Push->Pull, rate 0.4, 8 frames
  // "We select our best-trained model for the subsequent testing": train
  // a few repeats and keep the one with the highest ASR on the default
  // attack grid.
  std::printf("# training backdoored model (best of %zu repeats)\n",
              setup.repeats);
  std::optional<har::HarModel> best_model;
  double best_asr = -1.0;
  for (std::size_t r = 0; r < setup.repeats; ++r) {
    auto [model, metrics] = experiment.run_single(point, r);
    if (metrics.asr > best_asr) {
      best_asr = metrics.asr;
      best_model.emplace(std::move(model));
    }
  }
  std::printf("# selected model: default-grid ASR %s%%\n",
              core::pct(best_asr).c_str());

  std::printf("%8s %6s %8s %8s %8s\n", "angle", "seen", "ASR%", "UASR%",
              "n");
  for (const double angle : {-30.0, -20.0, -10.0, 0.0, 10.0, 20.0, 30.0}) {
    const bool seen =
        angle == -30.0 || angle == 0.0 || angle == 30.0;
    core::AttackPoint probe = point;
    har::DatasetConfig grid = setup.attack_grid;
    grid.distances_m = {1.6};
    grid.angles_deg = {angle};
    grid.repetitions = 4;  // more repetitions for a finer-grained rate
    probe.attack_grid_override = grid;
    const har::Dataset attack_test = experiment.attack_test_set(probe);
    const auto metrics =
        core::evaluate_attack(*best_model, har::Dataset{}, attack_test,
                              probe.victim, probe.target);
    std::printf("%8.0f %6s %8.1f %8.1f %8zu\n", angle, seen ? "yes" : "no",
                100.0 * metrics.asr, 100.0 * metrics.uasr,
                metrics.attack_samples);
    std::fflush(stdout);
  }
  std::printf("# paper shape: high ASR at every angle, including the "
              "zero-shot ones.\n");
  return 0;
}
