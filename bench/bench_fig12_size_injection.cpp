// Figure 12 (a-c): trigger-size comparison (2x2in vs 4x4in aluminum)
// across injection rates, Push->Pull, 8 poisoned frames.
//
// Expected paper shape: the two sizes perform within training-noise of
// each other on all three metrics.
#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace mmhar;
  std::printf("== Figure 12: trigger size comparison vs injection rate ==\n");
  auto setup = core::ExperimentSetup::standard();
  core::AttackExperiment experiment(setup);

  bench::Scenario small =
      bench::make_scenario(mesh::Activity::Push, mesh::Activity::Pull);
  small.name += " 2x2";
  small.point.trigger = mesh::TriggerSpec::aluminum_2x2();

  bench::Scenario big = small;
  big.name = bench::make_scenario(mesh::Activity::Push,
                                  mesh::Activity::Pull).name + " 4x4";
  big.point.trigger = mesh::TriggerSpec::aluminum_4x4();

  bench::run_injection_sweep(experiment, {small, big});
  std::printf("# paper shape: 2x2 and 4x4 curves nearly coincide — size "
              "has minimal impact.\n");
  return 0;
}
