// Figure 7: confusion matrix of the clean mmWave HAR prototype.
//
// Trains (or loads) the clean CNN-LSTM on the hallway training grid and
// prints the held-out confusion matrix. The paper reports 99.42% with
// 8640 real samples; at laptop simulation scale we expect ~95-98% with
// the same strongly-diagonal structure.
#include <cstdio>

#include "bench_common.h"
#include "har/trainer.h"

int main() {
  using namespace mmhar;
  std::printf("== Figure 7: clean HAR prototype confusion matrix ==\n");

  auto setup = core::ExperimentSetup::standard();
  core::AttackExperiment experiment(setup);
  bench::print_run_config(setup);

  auto& model = experiment.clean_model();
  const auto cm = har::evaluate_confusion(model, experiment.test_set());

  std::vector<std::string> names;
  for (std::size_t a = 0; a < mesh::kNumActivities; ++a)
    names.push_back(mesh::activity_name(mesh::activity_from_index(a)));
  std::printf("%s\n", cm.to_string(names).c_str());

  const auto recall = cm.per_class_recall();
  std::printf("per-class recall:");
  for (std::size_t a = 0; a < recall.size(); ++a)
    std::printf(" %s=%s%%", names[a].c_str(), core::pct(recall[a]).c_str());
  std::printf("\n# paper: 99.42%% overall with 8640 real samples; "
              "simulated laptop scale trains on %zu samples.\n",
              experiment.train_set().size());
  return 0;
}
