// Machine-readable perf tracker for the acceptance-gated hot paths.
//
// Emits BENCH_perf_micro.json (path overridable via argv[1]) with the
// GEMM throughput, the per-antenna IF-synthesis time, and the batched-FFT
// DSP pipeline figures (BM_RangeFft / BM_DraiFrame / BM_DraiSequence32)
// so the perf trajectory is comparable across PRs without parsing
// google-benchmark console output. The DSP sequence entry also carries
// the speedup over a retained scalar per-transform reference (the pre-
// engine implementation). Numbers are best-of-N wall time on the current
// MMHAR_THREADS setting.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <limits>
#include <thread>

#include "common/env.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "dsp/heatmap.h"
#include "har/generator.h"
#include "tensor/gemm.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace {

using namespace mmhar;

template <typename Fn>
double best_seconds(int reps, Fn&& fn) {
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

std::vector<dsp::RadarCube> paper_frames(std::size_t count) {
  Rng rng(7);
  std::vector<dsp::RadarCube> frames;
  frames.reserve(count);
  for (std::size_t f = 0; f < count; ++f) {
    dsp::RadarCube cube(16, 16, 64);
    for (auto& v : cube.raw())
      v = dsp::cfloat(static_cast<float>(rng.normal()),
                      static_cast<float>(rng.normal()));
    frames.push_back(std::move(cube));
  }
  return frames;
}

// Scalar per-transform DRAI sequence, structured like the pre-engine
// implementation (one fft_inplace per row, std::abs magnitudes, serial
// frames). Kept as the in-binary reference the speedup figure is measured
// against.
Tensor scalar_drai_sequence(const std::vector<dsp::RadarCube>& frames,
                            const dsp::HeatmapConfig& cfg) {
  const std::size_t R = cfg.range_bins;
  const std::size_t A = cfg.angle_bins;
  Tensor seq({frames.size(), R, A});
  const auto range_window =
      dsp::make_window(cfg.range_window, frames.front().num_samples());
  std::vector<dsp::cfloat> buf;      // hoisted per-row FFT scratch
  std::vector<dsp::cfloat> abuf(A);  // hoisted angle-FFT scratch
  for (std::size_t f = 0; f < frames.size(); ++f) {
    const dsp::RadarCube& cube = frames[f];
    const std::size_t n = cube.num_samples();
    dsp::RangeSpectra s;
    s.num_chirps = cube.num_chirps();
    s.num_antennas = cube.num_antennas();
    s.range_bins = R;
    s.data.resize(s.num_chirps * s.num_antennas * R);
    buf.resize(n);
    for (std::size_t q = 0; q < s.num_chirps; ++q) {
      for (std::size_t k = 0; k < s.num_antennas; ++k) {
        const dsp::cfloat* row = cube.row(q, k);
        for (std::size_t i = 0; i < n; ++i) buf[i] = row[i] * range_window[i];
        dsp::fft_inplace(buf);
        for (std::size_t r = 0; r < R; ++r) s.at(q, k, r) = buf[r];
      }
    }
    if (cfg.remove_clutter) {
      for (std::size_t k = 0; k < s.num_antennas; ++k) {
        for (std::size_t r = 0; r < R; ++r) {
          dsp::cfloat mean{0.0F, 0.0F};
          for (std::size_t q = 0; q < s.num_chirps; ++q) mean += s.at(q, k, r);
          mean /= static_cast<float>(s.num_chirps);
          for (std::size_t q = 0; q < s.num_chirps; ++q) s.at(q, k, r) -= mean;
        }
      }
    }
    for (std::size_t q = 0; q < s.num_chirps; ++q) {
      for (std::size_t r = 0; r < R; ++r) {
        std::fill(abuf.begin(), abuf.end(), dsp::cfloat{0.0F, 0.0F});
        for (std::size_t k = 0; k < s.num_antennas; ++k)
          abuf[k] = s.at(q, k, r);
        dsp::fft_inplace(abuf);
        dsp::fftshift_inplace(std::span<dsp::cfloat>(abuf));
        for (std::size_t a = 0; a < A; ++a)
          seq.at(f, r, a) += std::abs(abuf[a]);
      }
    }
  }
  if (cfg.log_scale) seq = to_db(seq, cfg.db_floor);
  if (cfg.normalize) seq = normalize01(seq);
  return seq;
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = argc > 1 ? argv[1] : "BENCH_perf_micro.json";

  // GEMM: square 256 product, the BM_Gemm/256 configuration.
  const std::size_t n = 256;
  Rng rng(2);
  const Tensor a = Tensor::randn({n, n}, rng);
  const Tensor b = Tensor::randn({n, n}, rng);
  Tensor c({n, n});
  sgemm(n, n, n, 1.0F, a.data(), b.data(), 0.0F, c.data());  // warm-up
  const double gemm_s = best_seconds(30, [&] {
    sgemm(n, n, n, 1.0F, a.data(), b.data(), 0.0F, c.data());
  });
  const double gflops = 2.0 * static_cast<double>(n) * static_cast<double>(n) *
                        static_cast<double>(n) / gemm_s / 1e9;

  // IF synthesis: full activity (BM_IfSynthesisPerAntenna configuration),
  // normalized per virtual antenna.
  har::GeneratorConfig gc;
  gc.environment = radar::EnvironmentKind::Hallway;
  const har::SampleGenerator gen(gc);
  auto cubes = gen.generate_cubes(har::SampleSpec{});  // warm-up
  const double synth_s = best_seconds(5, [&] {
    cubes = gen.generate_cubes(har::SampleSpec{});
  });
  const double s_per_antenna =
      synth_s /
      static_cast<double>(gen.config().radar.num_virtual_antennas);

  // Batched-FFT DSP pipeline at paper dimensions (32 frames of
  // 16 chirps x 16 antennas x 64 samples), log-scaled DRAI sequence.
  const auto frames = paper_frames(32);
  dsp::HeatmapConfig hm;
  hm.log_scale = true;
  dsp::RangeSpectra spectra;
  dsp::range_fft(frames[0], hm, spectra);  // warm-up (plan + window caches)
  const double range_fft_s =
      best_seconds(200, [&] { dsp::range_fft(frames[0], hm, spectra); });
  Tensor drai = dsp::compute_drai(frames[0], hm);
  const double drai_frame_s =
      best_seconds(200, [&] { drai = dsp::compute_drai(frames[0], hm); });
  Tensor seq = dsp::compute_drai_sequence(frames, hm);
  const double seq_s = best_seconds(
      20, [&] { seq = dsp::compute_drai_sequence(frames, hm); });
  Tensor seq_ref = scalar_drai_sequence(frames, hm);
  const double seq_scalar_s =
      best_seconds(3, [&] { seq_ref = scalar_drai_sequence(frames, hm); });
  // The two paths must agree (sqrt(re^2+im^2) vs std::abs differ by at
  // most rounding); a mismatch means the engine drifted, so fail loudly.
  double max_dev = 0.0;
  for (std::size_t i = 0; i < seq.size(); ++i)
    max_dev = std::max(max_dev,
                       std::abs(static_cast<double>(seq[i] - seq_ref[i])));
  if (max_dev > 1e-3) {
    std::fprintf(stderr,
                 "engine/scalar DRAI mismatch: max deviation %.3e\n", max_dev);
    return 1;
  }
  const double seq_speedup = seq_scalar_s / seq_s;

  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path);
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"perf_micro\",\n"
               "  \"threads\": %ld,\n"
               "  \"hardware_concurrency\": %u,\n"
               "  \"pool_threads\": %zu,\n"
               "  \"BM_Gemm/256\": {\"seconds\": %.6e, \"gflops\": %.3f},\n"
               "  \"BM_IfSynthesisPerAntenna\": {\"s_per_antenna\": %.6e},\n"
               "  \"BM_RangeFft\": {\"seconds\": %.6e},\n"
               "  \"BM_DraiFrame\": {\"seconds\": %.6e},\n"
               "  \"BM_DraiSequence32\": {\"seconds\": %.6e, "
               "\"scalar_reference_seconds\": %.6e, \"speedup\": %.2f}\n"
               "}\n",
               env_int("MMHAR_THREADS", 0),
               std::thread::hardware_concurrency(), global_pool().size(),
               gemm_s, gflops,
               s_per_antenna, range_fft_s, drai_frame_s, seq_s, seq_scalar_s,
               seq_speedup);
  std::fclose(f);
  std::printf(
      "gemm256: %.3f GFLOP/s   if-synthesis: %.6f s/antenna\n"
      "range_fft: %.6f s   drai_frame: %.6f s   drai_seq32: %.6f s "
      "(scalar %.6f s, %.1fx) -> %s\n",
      gflops, s_per_antenna, range_fft_s, drai_frame_s, seq_s, seq_scalar_s,
      seq_speedup, out_path);
  return 0;
}
