// Machine-readable perf tracker for the two acceptance-gated hot paths.
//
// Emits BENCH_perf_micro.json (path overridable via argv[1]) with the
// GEMM throughput and the per-antenna IF-synthesis time so the perf
// trajectory is comparable across PRs without parsing google-benchmark
// console output. Numbers are best-of-N wall time on the current
// MMHAR_THREADS setting.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <limits>
#include <thread>

#include "common/env.h"
#include "common/rng.h"
#include "har/generator.h"
#include "tensor/gemm.h"
#include "tensor/tensor.h"

namespace {

using namespace mmhar;

template <typename Fn>
double best_seconds(int reps, Fn&& fn) {
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = argc > 1 ? argv[1] : "BENCH_perf_micro.json";

  // GEMM: square 256 product, the BM_Gemm/256 configuration.
  const std::size_t n = 256;
  Rng rng(2);
  const Tensor a = Tensor::randn({n, n}, rng);
  const Tensor b = Tensor::randn({n, n}, rng);
  Tensor c({n, n});
  sgemm(n, n, n, 1.0F, a.data(), b.data(), 0.0F, c.data());  // warm-up
  const double gemm_s = best_seconds(30, [&] {
    sgemm(n, n, n, 1.0F, a.data(), b.data(), 0.0F, c.data());
  });
  const double gflops = 2.0 * static_cast<double>(n) * static_cast<double>(n) *
                        static_cast<double>(n) / gemm_s / 1e9;

  // IF synthesis: full activity (BM_IfSynthesisPerAntenna configuration),
  // normalized per virtual antenna.
  har::GeneratorConfig gc;
  gc.environment = radar::EnvironmentKind::Hallway;
  const har::SampleGenerator gen(gc);
  auto cubes = gen.generate_cubes(har::SampleSpec{});  // warm-up
  const double synth_s = best_seconds(5, [&] {
    cubes = gen.generate_cubes(har::SampleSpec{});
  });
  const double s_per_antenna =
      synth_s /
      static_cast<double>(gen.config().radar.num_virtual_antennas);

  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path);
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"perf_micro\",\n"
               "  \"threads\": %ld,\n"
               "  \"hardware_concurrency\": %u,\n"
               "  \"BM_Gemm/256\": {\"seconds\": %.6e, \"gflops\": %.3f},\n"
               "  \"BM_IfSynthesisPerAntenna\": {\"s_per_antenna\": %.6e}\n"
               "}\n",
               env_int("MMHAR_THREADS", 0),
               std::thread::hardware_concurrency(), gemm_s, gflops,
               s_per_antenna);
  std::fclose(f);
  std::printf("gemm256: %.3f GFLOP/s   if-synthesis: %.6f s/antenna -> %s\n",
              gflops, s_per_antenna, out_path);
  return 0;
}
