// Section VII defenses, quantified (the paper proposes them without
// numbers):
//   1. Trigger-detection model: per-frame binary CNN on heatmaps;
//      reports frame accuracy, sample recall, and false positives.
//   2. Data-augmentation defense: correctly-labeled triggered samples are
//      added to the poisoned training set; reports the ASR drop.
#include <cstdio>

#include "bench_common.h"
#include "defense/augmentation.h"
#include "defense/trigger_detector.h"
#include "har/trainer.h"

int main() {
  using namespace mmhar;
  std::printf("== Section VII: defense evaluation ==\n");
  auto setup = core::ExperimentSetup::standard();
  core::AttackExperiment experiment(setup);
  bench::print_run_config(setup);

  core::AttackPoint point;  // Push->Pull, rate 0.4, 8 frames
  const core::BackdoorPlan& plan = experiment.plan_for(point);

  // Triggered twins in the training environment: the defender can
  // synthesize these with the same RF simulation the attacker uses.
  har::SampleGenerator train_gen(setup.train_generator);
  const har::Dataset train_twins = core::load_or_build_triggered_twins(
      train_gen, setup.train_grid, point.victim, plan.placement,
      setup.cache_dir);
  const har::Dataset attack_test = experiment.attack_test_set(point);

  // ---- Defense 1: trigger detection ----
  defense::DetectorConfig dcfg;
  dcfg.height = setup.model.height;
  dcfg.width = setup.model.width;
  defense::TriggerDetector detector(dcfg);
  detector.train(experiment.train_set(), train_twins);
  const auto dm = detector.evaluate(experiment.test_set(), attack_test);
  std::printf("[trigger detector]\n");
  std::printf("  frame accuracy:        %s%%\n",
              core::pct(dm.frame_accuracy).c_str());
  std::printf("  sample recall:         %s%% of triggered samples flagged\n",
              core::pct(dm.sample_recall).c_str());
  std::printf("  false positive rate:   %s%% of clean samples flagged\n",
              core::pct(dm.sample_false_positive).c_str());

  // ---- Defense 2: data augmentation with correct labels ----
  auto [attacked_model, attacked] = experiment.run_single(point, 0);
  core::BackdoorAttackConfig acfg;
  acfg.victim_label = point.victim;
  acfg.target_label = point.target;
  acfg.shap = setup.shap;
  core::BackdoorAttack attack(train_gen, experiment.surrogate(), acfg);
  core::BackdoorPlan frames_plan = plan;
  const core::PoisonResult poisoned = attack.poison(
      experiment.train_set(), setup.train_grid, frames_plan,
      point.injection_rate);

  defense::AugmentationConfig aug;
  aug.augmentation_rate = 0.75;
  const har::Dataset defended_train = defense::augment_with_correct_labels(
      poisoned.dataset, train_twins, point.victim, aug);
  har::HarModelConfig mc = setup.model;
  mc.seed = setup.model.seed + 5000;
  har::HarModel defended(mc);
  har::train_model(defended, defended_train, setup.training);
  const auto defended_metrics =
      core::evaluate_attack(defended, experiment.test_set(), attack_test,
                            point.victim, point.target);

  std::printf("[data augmentation]\n");
  std::printf("  ASR without defense:   %s%%\n",
              core::pct(attacked.asr).c_str());
  std::printf("  ASR with augmentation: %s%%\n",
              core::pct(defended_metrics.asr).c_str());
  std::printf("  CDR with augmentation: %s%%\n",
              core::pct(defended_metrics.cdr).c_str());
  std::printf("# expected: detector separates triggered samples well; "
              "augmentation slashes ASR at minor CDR cost.\n");
  return 0;
}
