// Figure 13 (a-c): trigger-size comparison (2x2in vs 4x4in aluminum)
// across poisoned-frame counts, Push->Pull, injection rate 0.4.
#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace mmhar;
  std::printf(
      "== Figure 13: trigger size comparison vs poisoned frames ==\n");
  auto setup = core::ExperimentSetup::standard();
  core::AttackExperiment experiment(setup);

  bench::Scenario small =
      bench::make_scenario(mesh::Activity::Push, mesh::Activity::Pull);
  small.name += " 2x2";
  small.point.trigger = mesh::TriggerSpec::aluminum_2x2();

  bench::Scenario big = small;
  big.name = bench::make_scenario(mesh::Activity::Push,
                                  mesh::Activity::Pull).name + " 4x4";
  big.point.trigger = mesh::TriggerSpec::aluminum_4x4();

  bench::run_frames_sweep(experiment, {small, big});
  std::printf("# paper shape: both sizes track each other within "
              "training fluctuation.\n");
  return 0;
}
