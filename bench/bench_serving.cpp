// Streaming-serving benchmark: throughput and latency at N concurrent
// radar streams.
//
// Emits BENCH_serving.json (path overridable via argv[1]). For each
// stream count N in MMHAR_SERVING_STREAMS (default "1,8,64") it reports:
//
//  * baseline_classifications_per_sec — an in-binary naive server that
//    handles each stream sequentially through the public offline APIs:
//    a window of raw frames re-run through compute_drai_sequence and a
//    batch-1 HarModel::forward per classification.
//  * classifications_per_sec / speedup — the StreamingHarService pumped
//    at saturation over the identical frame schedule (fused cross-stream
//    FFTs, prepacked zero-alloc micro-batched inference).
//  * p50_ms / p99_ms / p999_ms / drop_rate — a paced run: the background
//    batcher serves producers submitting at MMHAR_SERVING_RATE_HZ frames
//    per stream per second; latency is newest-frame submit -> classified.
//
// The acceptance criterion tracked by tools/bench_gate is the speedup
// field (>= 4x at N = 64 on the committed baseline).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/env.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "dsp/heatmap.h"
#include "har/model.h"
#include "serving/serving.h"

namespace {

using namespace mmhar;
using Clock = std::chrono::steady_clock;

std::vector<std::size_t> parse_stream_counts(const std::string& csv) {
  std::vector<std::size_t> out;
  std::string tok;
  for (std::size_t i = 0; i <= csv.size(); ++i) {
    if (i == csv.size() || csv[i] == ',') {
      if (!tok.empty()) out.push_back(static_cast<std::size_t>(std::stoul(tok)));
      tok.clear();
    } else {
      tok.push_back(csv[i]);
    }
  }
  return out;
}

std::vector<dsp::RadarCube> make_frame_pool(const serving::ServingConfig& cfg,
                                            std::size_t count) {
  Rng rng(17);
  std::vector<dsp::RadarCube> pool;
  pool.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    dsp::RadarCube cube(cfg.num_chirps, cfg.num_antennas, cfg.num_samples);
    for (dsp::cfloat& v : cube.raw())
      v = dsp::cfloat(static_cast<float>(rng.normal()),
                      static_cast<float>(rng.normal()));
    pool.push_back(std::move(cube));
  }
  return pool;
}

std::size_t argmax_of(std::span<const float> v) {
  std::size_t best = 0;
  for (std::size_t i = 1; i < v.size(); ++i)
    if (v[i] > v[best]) best = i;
  return best;
}

// Naive per-stream sequential server: buffer the raw frames and run the
// repo's offline pipeline — compute_drai_sequence over the window plus a
// batch-1 HarModel::forward — for every arriving frame once the window is
// full. This is the straightforward application of the existing public
// API to streaming (each window is an independent offline sample); the
// serving layer's incremental per-frame DSP and cross-stream batching are
// exactly what it lacks.
double run_baseline(har::HarModel& model, const serving::ServingConfig& cfg,
                    const std::vector<dsp::RadarCube>& pool,
                    std::size_t n_streams, std::size_t frames_per_stream,
                    std::vector<std::size_t>& stream0_preds) {
  const dsp::HeatmapConfig& hm = cfg.heatmap;
  const har::HarModelConfig& mc = model.config();
  const std::size_t T = mc.frames;

  std::vector<std::vector<dsp::RadarCube>> windows(n_streams);
  std::size_t classifications = 0;

  const Clock::time_point t0 = Clock::now();
  for (std::size_t pass = 0; pass < frames_per_stream; ++pass) {
    for (std::size_t s = 0; s < n_streams; ++s) {
      std::vector<dsp::RadarCube>& w = windows[s];
      w.push_back(pool[(pass + s) % pool.size()]);
      if (w.size() < T) continue;
      const Tensor seq = dsp::compute_drai_sequence(w, hm);
      const Tensor in({1, T, hm.range_bins, hm.angle_bins},
                      std::vector<float>(seq.flat().begin(),
                                         seq.flat().end()));
      const Tensor logits = model.forward(in, /*training=*/false);
      ++classifications;
      if (s == 0) stream0_preds.push_back(argmax_of(logits.flat()));
      w.erase(w.begin());
    }
  }
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - t0).count();
  return static_cast<double>(classifications) / elapsed;
}

// StreamingHarService pumped at saturation on the same frame schedule.
double run_serving_throughput(har::HarModel& model,
                              serving::ServingConfig cfg,
                              const std::vector<dsp::RadarCube>& pool,
                              std::size_t n_streams,
                              std::size_t frames_per_stream,
                              std::vector<std::size_t>& stream0_preds,
                              std::vector<std::uint64_t>& stream0_seqs) {
  cfg.max_streams = n_streams;
  serving::StreamingHarService svc(cfg, model);
  std::vector<std::size_t> sids(n_streams);
  for (std::size_t s = 0; s < n_streams; ++s) sids[s] = svc.add_stream();

  const Clock::time_point t0 = Clock::now();
  for (std::size_t pass = 0; pass < frames_per_stream; ++pass) {
    for (std::size_t s = 0; s < n_streams; ++s)
      svc.submit_frame(sids[s], pool[(pass + s) % pool.size()]);
    svc.run_cycle();
  }
  while (svc.run_cycle() > 0) {
  }
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - t0).count();

  std::uint64_t classifications = 0;
  std::vector<serving::Classification> buf(cfg.result_depth);
  for (std::size_t s = 0; s < n_streams; ++s) {
    classifications += svc.stream_stats(sids[s]).classifications;
    std::size_t n = 0;
    do {
      n = svc.poll(sids[s], std::span<serving::Classification>(buf));
      if (s == 0) {
        for (std::size_t i = 0; i < n; ++i) {
          stream0_preds.push_back(buf[i].predicted);
          stream0_seqs.push_back(buf[i].frame_seq);
        }
      }
    } while (n == buf.size());
  }
  return static_cast<double>(classifications) / elapsed;
}

struct LatencyResult {
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double p999_ms = 0.0;
  double drop_rate = 0.0;
};

double percentile_ms(const std::vector<std::int64_t>& sorted_ns, double q) {
  if (sorted_ns.empty()) return 0.0;
  const double pos = q * static_cast<double>(sorted_ns.size() - 1);
  const std::size_t idx = static_cast<std::size_t>(pos + 0.5);
  return static_cast<double>(sorted_ns[std::min(idx, sorted_ns.size() - 1)]) /
         1e6;
}

// Paced run with the background batcher: producers tick at rate_hz per
// stream; the batcher owns the DSP + inference pipeline.
LatencyResult run_latency(har::HarModel& model, serving::ServingConfig cfg,
                          const std::vector<dsp::RadarCube>& pool,
                          std::size_t n_streams,
                          std::size_t frames_per_stream, long rate_hz) {
  cfg.max_streams = n_streams;
  serving::StreamingHarService svc(cfg, model);
  std::vector<std::size_t> sids(n_streams);
  for (std::size_t s = 0; s < n_streams; ++s) sids[s] = svc.add_stream();
  svc.start();

  std::vector<std::int64_t> latencies;
  latencies.reserve(n_streams * frames_per_stream);
  std::vector<serving::Classification> buf(cfg.result_depth);
  const auto period =
      std::chrono::duration_cast<Clock::duration>(std::chrono::duration<double>(
          1.0 / static_cast<double>(rate_hz)));
  Clock::time_point next = Clock::now();
  for (std::size_t pass = 0; pass < frames_per_stream; ++pass) {
    for (std::size_t s = 0; s < n_streams; ++s)
      svc.submit_frame(sids[s], pool[(pass + s) % pool.size()]);
    for (std::size_t s = 0; s < n_streams; ++s) {
      const std::size_t n =
          svc.poll(sids[s], std::span<serving::Classification>(buf));
      for (std::size_t i = 0; i < n; ++i)
        latencies.push_back(buf[i].latency_ns);
    }
    next += period;
    const Clock::time_point now = Clock::now();
    if (next > now)
      std::this_thread::sleep_until(next);
    else
      next = now;  // behind schedule: don't try to catch up in a burst
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  svc.stop();
  while (svc.run_cycle() > 0) {
  }

  LatencyResult r;
  std::uint64_t accepted = 0;
  std::uint64_t dropped = 0;
  for (std::size_t s = 0; s < n_streams; ++s) {
    std::size_t n = 0;
    do {
      n = svc.poll(sids[s], std::span<serving::Classification>(buf));
      for (std::size_t i = 0; i < n; ++i)
        latencies.push_back(buf[i].latency_ns);
    } while (n == buf.size());
    const serving::StreamStats st = svc.stream_stats(sids[s]);
    accepted += st.accepted;
    dropped += st.dropped_frames;
  }
  std::sort(latencies.begin(), latencies.end());
  r.p50_ms = percentile_ms(latencies, 0.50);
  r.p99_ms = percentile_ms(latencies, 0.99);
  r.p999_ms = percentile_ms(latencies, 0.999);
  r.drop_rate = accepted == 0
                    ? 0.0
                    : static_cast<double>(dropped) / static_cast<double>(accepted);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = argc > 1 ? argv[1] : "BENCH_serving.json";
  const std::vector<std::size_t> stream_counts =
      parse_stream_counts(env_string("MMHAR_SERVING_STREAMS", "1,8,64"));
  const std::size_t frames_per_stream =
      static_cast<std::size_t>(env_int("MMHAR_SERVING_FRAMES", 48));
  const long rate_hz = env_int("MMHAR_SERVING_RATE_HZ", 30);
  if (stream_counts.empty() || frames_per_stream == 0 || rate_hz <= 0) {
    std::fprintf(stderr, "bad MMHAR_SERVING_* configuration\n");
    return 1;
  }

  har::HarModelConfig mc;  // paper-scale model: T=32 frames of 32x32
  har::HarModel model(mc);
  serving::ServingConfig cfg = serving::ServingConfig::from_env();
  const std::vector<dsp::RadarCube> pool = make_frame_pool(cfg, 32);

  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path);
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"serving\",\n"
               "  \"threads\": %ld,\n"
               "  \"hardware_concurrency\": %u,\n"
               "  \"pool_threads\": %zu,\n"
               "  \"frames_per_stream\": %zu,\n"
               "  \"rate_hz\": %ld",
               env_int("MMHAR_THREADS", 0),
               std::thread::hardware_concurrency(), global_pool().size(),
               frames_per_stream, rate_hz);

  bool preds_checked = false;
  std::vector<std::size_t> base_preds;
  std::vector<std::size_t> serve_preds;
  std::vector<std::uint64_t> serve_seqs;
  for (const std::size_t n_streams : stream_counts) {
    base_preds.clear();
    serve_preds.clear();
    serve_seqs.clear();
    const double base_cps = run_baseline(model, cfg, pool, n_streams,
                                         frames_per_stream, base_preds);
    const double serve_cps =
        run_serving_throughput(model, cfg, pool, n_streams, frames_per_stream,
                               serve_preds, serve_seqs);
    // Correctness cross-check (once, at the smallest N): the service must
    // classify stream 0 exactly like the offline pipeline.
    if (!preds_checked) {
      preds_checked = true;
      const std::size_t T = mc.frames;
      for (std::size_t i = 0; i < serve_preds.size(); ++i) {
        const std::size_t base_idx =
            static_cast<std::size_t>(serve_seqs[i]) - (T - 1);
        if (base_idx >= base_preds.size() ||
            base_preds[base_idx] != serve_preds[i]) {
          std::fprintf(stderr,
                       "serving/baseline prediction mismatch at window %zu\n",
                       i);
          std::fclose(f);
          return 1;
        }
      }
    }
    const LatencyResult lat =
        run_latency(model, cfg, pool, n_streams, frames_per_stream, rate_hz);
    const double speedup = serve_cps / base_cps;
    std::fprintf(f,
                 ",\n  \"N%zu\": {\"baseline_classifications_per_sec\": %.2f, "
                 "\"classifications_per_sec\": %.2f, \"speedup\": %.2f, "
                 "\"p50_ms\": %.3f, \"p99_ms\": %.3f, \"p999_ms\": %.3f, "
                 "\"drop_rate\": %.4f}",
                 n_streams, base_cps, serve_cps, speedup, lat.p50_ms,
                 lat.p99_ms, lat.p999_ms, lat.drop_rate);
    std::printf(
        "N=%zu: baseline %.1f cls/s, serving %.1f cls/s (%.2fx), "
        "p50 %.2f ms, p99 %.2f ms, p99.9 %.2f ms, drop %.2f%%\n",
        n_streams, base_cps, serve_cps, speedup, lat.p50_ms, lat.p99_ms,
        lat.p999_ms, 100.0 * lat.drop_rate);
  }
  std::fprintf(f, "\n}\n");
  std::fclose(f);
  std::printf("-> %s\n", out_path);
  return 0;
}
