// Streaming-serving benchmark: throughput and latency at N concurrent
// radar streams, swept across batcher shard counts.
//
// Emits BENCH_serving.json (path overridable via argv[1]). For each
// stream count N in MMHAR_SERVING_STREAMS (default "1,8,64"):
//
//  * "N{n}_S{s}" rows, one per shard count s in MMHAR_SERVING_BENCH_SHARDS
//    (default "1,2,4"): the sharded StreamingHarService driven lossless
//    (kNewest policy + submit retry, so producers self-pace to shard
//    capacity and every frame is classified) over the identical frame
//    schedule as the baseline.
//      - baseline_classifications_per_sec — an in-binary naive server
//        handling each stream sequentially through the public offline
//        APIs (compute_drai_sequence + batch-1 HarModel::forward).
//      - classifications_per_sec / speedup — service vs that baseline.
//      - shard_speedup — classifications_per_sec vs the S=1 row of the
//        same N: the shard-scaling ratio tools/bench_gate gates in
//        --ratios-only mode (machine-portable, unlike absolute rates;
//        ~1.0 on a single-core runner by construction).
//      - shards_active — shards that actually claimed frames.
//    Every row cross-checks stream 0's predictions against the offline
//    baseline, so the sweep doubles as a shard-invariance check.
//
//  * one "N{n}_latency" row: a paced run (MMHAR_SERVING_RATE_HZ frames
//    per stream per second) against the background shard workers with
//    deadline scheduling armed (MMHAR_SERVING_SLO_MS, default 50 here:
//    the bench always exercises the deadline path). Latency is
//    newest-frame submit -> classified, over *delivered* results only —
//    under deadline scheduling late results are dropped, so p99 of what
//    this row reports is bounded by the SLO by construction and the
//    overload shows up in deadline_drop_rate instead of the tail.
//    Percentiles are rank-interpolated and latency_samples records how
//    many samples back them (a p99.9 over 300 samples is noise; the old
//    nearest-rank estimator silently reported p99.9 == p99).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/env.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "dsp/heatmap.h"
#include "har/model.h"
#include "serving/serving.h"

namespace {

using namespace mmhar;
using Clock = std::chrono::steady_clock;

std::vector<std::size_t> parse_counts(const std::string& csv) {
  std::vector<std::size_t> out;
  std::string tok;
  for (std::size_t i = 0; i <= csv.size(); ++i) {
    if (i == csv.size() || csv[i] == ',') {
      if (!tok.empty()) out.push_back(static_cast<std::size_t>(std::stoul(tok)));
      tok.clear();
    } else {
      tok.push_back(csv[i]);
    }
  }
  return out;
}

std::vector<dsp::RadarCube> make_frame_pool(const serving::ServingConfig& cfg,
                                            std::size_t count) {
  Rng rng(17);
  std::vector<dsp::RadarCube> pool;
  pool.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    dsp::RadarCube cube(cfg.num_chirps, cfg.num_antennas, cfg.num_samples);
    for (dsp::cfloat& v : cube.raw())
      v = dsp::cfloat(static_cast<float>(rng.normal()),
                      static_cast<float>(rng.normal()));
    pool.push_back(std::move(cube));
  }
  return pool;
}

std::size_t argmax_of(std::span<const float> v) {
  std::size_t best = 0;
  for (std::size_t i = 1; i < v.size(); ++i)
    if (v[i] > v[best]) best = i;
  return best;
}

// Naive per-stream sequential server: buffer the raw frames and run the
// repo's offline pipeline — compute_drai_sequence over the window plus a
// batch-1 HarModel::forward — for every arriving frame once the window is
// full. This is the straightforward application of the existing public
// API to streaming (each window is an independent offline sample); the
// serving layer's incremental per-frame DSP, cross-stream batching, and
// shard parallelism are exactly what it lacks.
double run_baseline(har::HarModel& model, const serving::ServingConfig& cfg,
                    const std::vector<dsp::RadarCube>& pool,
                    std::size_t n_streams, std::size_t frames_per_stream,
                    std::vector<std::size_t>& stream0_preds) {
  const dsp::HeatmapConfig& hm = cfg.heatmap;
  const har::HarModelConfig& mc = model.config();
  const std::size_t T = mc.frames;

  std::vector<std::vector<dsp::RadarCube>> windows(n_streams);
  std::size_t classifications = 0;

  const Clock::time_point t0 = Clock::now();
  for (std::size_t pass = 0; pass < frames_per_stream; ++pass) {
    for (std::size_t s = 0; s < n_streams; ++s) {
      std::vector<dsp::RadarCube>& w = windows[s];
      w.push_back(pool[(pass + s) % pool.size()]);
      if (w.size() < T) continue;
      const Tensor seq = dsp::compute_drai_sequence(w, hm);
      const Tensor in({1, T, hm.range_bins, hm.angle_bins},
                      std::vector<float>(seq.flat().begin(),
                                         seq.flat().end()));
      const Tensor logits = model.forward(in, /*training=*/false);
      ++classifications;
      if (s == 0) stream0_preds.push_back(argmax_of(logits.flat()));
      w.erase(w.begin());
    }
  }
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - t0).count();
  return static_cast<double>(classifications) / elapsed;
}

struct ThroughputResult {
  double cps = 0.0;
  std::size_t shards_active = 0;
};

// Sharded service on the same frame schedule, lossless: kNewest policy
// plus retry-until-accepted means a full ring pushes back on the producer
// instead of dropping, so every stream classifies exactly
// (frames_per_stream - T + 1) windows at every shard count — which is
// what makes the stream-0 predictions comparable against the baseline
// and across shard counts.
ThroughputResult run_serving_throughput(har::HarModel& model,
                                        serving::ServingConfig cfg,
                                        const std::vector<dsp::RadarCube>& pool,
                                        std::size_t n_streams,
                                        std::size_t num_shards,
                                        std::size_t frames_per_stream,
                                        std::vector<std::size_t>& stream0_preds) {
  cfg.max_streams = n_streams;
  cfg.num_shards = num_shards;
  cfg.drop_policy = serving::DropPolicy::kNewest;
  cfg.slo_ms = 0;  // throughput leg: lossless, no deadline drops
  serving::StreamingHarService svc(cfg, model);
  std::vector<std::size_t> sids(n_streams);
  for (std::size_t s = 0; s < n_streams; ++s) sids[s] = svc.add_stream();
  svc.start();

  const std::size_t T = model.config().frames;
  const std::uint64_t expected =
      frames_per_stream >= T
          ? static_cast<std::uint64_t>(n_streams) * (frames_per_stream - T + 1)
          : 0;

  std::vector<serving::Classification> buf(cfg.result_depth);
  std::uint64_t collected = 0;
  const Clock::time_point t0 = Clock::now();
  for (std::size_t pass = 0; pass < frames_per_stream; ++pass) {
    for (std::size_t s = 0; s < n_streams; ++s) {
      while (!svc.submit_frame(sids[s], pool[(pass + s) % pool.size()]))
        std::this_thread::yield();
      // Drain opportunistically so result rings never overflow.
      const std::size_t n =
          svc.poll(sids[s], std::span<serving::Classification>(buf));
      collected += n;
      if (s == 0)
        for (std::size_t i = 0; i < n; ++i)
          stream0_preds.push_back(buf[i].predicted);
    }
  }
  while (collected < expected) {
    for (std::size_t s = 0; s < n_streams; ++s) {
      const std::size_t n =
          svc.poll(sids[s], std::span<serving::Classification>(buf));
      collected += n;
      if (s == 0)
        for (std::size_t i = 0; i < n; ++i)
          stream0_preds.push_back(buf[i].predicted);
    }
    std::this_thread::yield();
  }
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - t0).count();
  svc.stop();

  ThroughputResult r;
  r.cps = static_cast<double>(collected) / elapsed;
  for (std::size_t i = 0; i < num_shards; ++i) {
    const serving::ShardStats st = svc.shard_stats(i);
    if (st.frames > 0) ++r.shards_active;
    std::printf("    shard %zu: %llu cycles, %llu frames, %llu cls\n", i,
                static_cast<unsigned long long>(st.cycles),
                static_cast<unsigned long long>(st.frames),
                static_cast<unsigned long long>(st.classifications));
  }
  return r;
}

struct LatencyResult {
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double p999_ms = 0.0;
  std::size_t samples = 0;
  double drop_rate = 0.0;
  double deadline_drop_rate = 0.0;
  std::uint64_t deepest_queue = 0;
  // Fault-containment counters (ServiceHealth): all zero with the
  // injector disarmed, emitted so chaos-mode runs of the bench surface
  // their fault attribution in the same report. None of these keys ends
  // in "speedup", so bench_gate --ratios-only never gates on them.
  std::uint64_t quarantined = 0;
  std::uint64_t faults = 0;
  std::uint64_t restarts = 0;
};

// Rank-based linear interpolation between order statistics (the
// "exclusive" variant over q*(n-1)): with few samples a high quantile
// lands between ranks instead of snapping to the max, so p99.9 no longer
// silently duplicates p99 on short runs.
double percentile_ms(const std::vector<std::int64_t>& sorted_ns, double q) {
  if (sorted_ns.empty()) return 0.0;
  const double pos = q * static_cast<double>(sorted_ns.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  const double a = static_cast<double>(sorted_ns[lo]);
  const double b = static_cast<double>(
      sorted_ns[std::min(lo + 1, sorted_ns.size() - 1)]);
  return (a + frac * (b - a)) / 1e6;
}

// Paced run against the background shard workers with the deadline
// scheduler armed: producers tick at rate_hz per stream; late queued
// frames and late results are dropped instead of delivered.
LatencyResult run_latency(har::HarModel& model, serving::ServingConfig cfg,
                          const std::vector<dsp::RadarCube>& pool,
                          std::size_t n_streams, std::size_t num_shards,
                          std::size_t frames_per_stream, long rate_hz,
                          long slo_ms) {
  cfg.max_streams = n_streams;
  cfg.num_shards = num_shards;
  cfg.slo_ms = slo_ms;
  serving::StreamingHarService svc(cfg, model);
  std::vector<std::size_t> sids(n_streams);
  for (std::size_t s = 0; s < n_streams; ++s) sids[s] = svc.add_stream();
  svc.start();

  std::vector<std::int64_t> latencies;
  latencies.reserve(n_streams * frames_per_stream);
  std::vector<serving::Classification> buf(cfg.result_depth);
  const auto period =
      std::chrono::duration_cast<Clock::duration>(std::chrono::duration<double>(
          1.0 / static_cast<double>(rate_hz)));
  Clock::time_point next = Clock::now();
  for (std::size_t pass = 0; pass < frames_per_stream; ++pass) {
    for (std::size_t s = 0; s < n_streams; ++s)
      svc.submit_frame(sids[s], pool[(pass + s) % pool.size()]);
    for (std::size_t s = 0; s < n_streams; ++s) {
      const std::size_t n =
          svc.poll(sids[s], std::span<serving::Classification>(buf));
      for (std::size_t i = 0; i < n; ++i)
        latencies.push_back(buf[i].latency_ns);
    }
    next += period;
    const Clock::time_point now = Clock::now();
    if (next > now)
      std::this_thread::sleep_until(next);
    else
      next = now;  // behind schedule: don't try to catch up in a burst
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  svc.stop();
  while (svc.run_cycle() > 0) {
  }

  LatencyResult r;
  const serving::ServiceHealth health = svc.health();
  r.quarantined = health.quarantined;
  r.faults = health.errors;
  r.restarts = health.restarts;
  std::uint64_t accepted = 0;
  std::uint64_t dropped = 0;
  std::uint64_t deadline_dropped = 0;
  for (std::size_t s = 0; s < n_streams; ++s) {
    std::size_t n = 0;
    do {
      n = svc.poll(sids[s], std::span<serving::Classification>(buf));
      for (std::size_t i = 0; i < n; ++i)
        latencies.push_back(buf[i].latency_ns);
    } while (n == buf.size());
    const serving::StreamStats st = svc.stream_stats(sids[s]);
    accepted += st.accepted;
    dropped += st.dropped_frames;
    deadline_dropped += st.deadline_dropped;
    r.deepest_queue = std::max(r.deepest_queue, st.deepest_queue);
  }
  std::sort(latencies.begin(), latencies.end());
  r.p50_ms = percentile_ms(latencies, 0.50);
  r.p99_ms = percentile_ms(latencies, 0.99);
  r.p999_ms = percentile_ms(latencies, 0.999);
  r.samples = latencies.size();
  if (accepted > 0) {
    r.drop_rate =
        static_cast<double>(dropped) / static_cast<double>(accepted);
    r.deadline_drop_rate =
        static_cast<double>(deadline_dropped) / static_cast<double>(accepted);
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = argc > 1 ? argv[1] : "BENCH_serving.json";
  const std::vector<std::size_t> stream_counts =
      parse_counts(env_string("MMHAR_SERVING_STREAMS", "1,8,64"));
  const std::vector<std::size_t> shard_counts =
      parse_counts(env_string("MMHAR_SERVING_BENCH_SHARDS", "1,2,4"));
  const std::size_t frames_per_stream =
      static_cast<std::size_t>(env_int("MMHAR_SERVING_FRAMES", 48));
  const long rate_hz = env_int("MMHAR_SERVING_RATE_HZ", 30);
  // The latency leg always exercises deadline scheduling; a plain
  // MMHAR_SERVING_SLO_MS=0 (the service default) would skip the code
  // path the leg exists to measure.
  long slo_ms = env_int("MMHAR_SERVING_SLO_MS", 50);
  if (slo_ms <= 0) slo_ms = 50;
  if (stream_counts.empty() || shard_counts.empty() ||
      frames_per_stream == 0 || rate_hz <= 0) {
    std::fprintf(stderr, "bad MMHAR_SERVING_* configuration\n");
    return 1;
  }

  har::HarModelConfig mc;  // paper-scale model: T=32 frames of 32x32
  har::HarModel model(mc);
  serving::ServingConfig cfg = serving::ServingConfig::from_env();
  const std::vector<dsp::RadarCube> pool = make_frame_pool(cfg, 32);
  const std::size_t latency_shards =
      *std::max_element(shard_counts.begin(), shard_counts.end());

  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path);
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"serving\",\n"
               "  \"threads\": %ld,\n"
               "  \"hardware_concurrency\": %u,\n"
               "  \"pool_threads\": %zu,\n"
               "  \"frames_per_stream\": %zu,\n"
               "  \"rate_hz\": %ld,\n"
               "  \"slo_ms\": %ld",
               env_int("MMHAR_THREADS", 0),
               std::thread::hardware_concurrency(), global_pool().size(),
               frames_per_stream, rate_hz, slo_ms);

  std::vector<std::size_t> base_preds;
  std::vector<std::size_t> serve_preds;
  for (const std::size_t n_streams : stream_counts) {
    base_preds.clear();
    const double base_cps = run_baseline(model, cfg, pool, n_streams,
                                         frames_per_stream, base_preds);
    double s1_cps = 0.0;
    for (const std::size_t n_shards : shard_counts) {
      std::printf("N=%zu S=%zu:\n", n_streams, n_shards);
      serve_preds.clear();
      const ThroughputResult tr =
          run_serving_throughput(model, cfg, pool, n_streams, n_shards,
                                 frames_per_stream, serve_preds);
      // Shard-invariance + correctness cross-check: the lossless run
      // must classify stream 0 exactly like the offline pipeline, at
      // every shard count (results arrive in order per stream).
      if (serve_preds != base_preds) {
        std::fprintf(stderr,
                     "serving/baseline prediction mismatch at N=%zu S=%zu\n",
                     n_streams, n_shards);
        std::fclose(f);
        return 1;
      }
      if (n_shards == shard_counts.front()) s1_cps = tr.cps;
      const double speedup = tr.cps / base_cps;
      const double shard_speedup = s1_cps > 0.0 ? tr.cps / s1_cps : 0.0;
      std::fprintf(f,
                   ",\n  \"N%zu_S%zu\": {"
                   "\"baseline_classifications_per_sec\": %.2f, "
                   "\"classifications_per_sec\": %.2f, \"speedup\": %.2f, "
                   "\"shard_speedup\": %.3f, \"shards_active\": %zu}",
                   n_streams, n_shards, base_cps, tr.cps, speedup,
                   shard_speedup, tr.shards_active);
      std::printf(
          "  baseline %.1f cls/s, serving %.1f cls/s (%.2fx offline, "
          "%.2fx vs S=%zu), %zu shard(s) active\n",
          base_cps, tr.cps, speedup, shard_speedup, shard_counts.front(),
          tr.shards_active);
    }
    const LatencyResult lat =
        run_latency(model, cfg, pool, n_streams, latency_shards,
                    frames_per_stream, rate_hz, slo_ms);
    std::fprintf(f,
                 ",\n  \"N%zu_latency\": {\"shards\": %zu, "
                 "\"latency_samples\": %zu, \"p50_ms\": %.3f, "
                 "\"p99_ms\": %.3f, \"p999_ms\": %.3f, \"drop_rate\": %.4f, "
                 "\"deadline_drop_rate\": %.4f, \"deepest_queue\": %llu, "
                 "\"quarantined\": %llu, \"faults\": %llu, "
                 "\"restarts\": %llu}",
                 n_streams, latency_shards, lat.samples, lat.p50_ms,
                 lat.p99_ms, lat.p999_ms, lat.drop_rate,
                 lat.deadline_drop_rate,
                 static_cast<unsigned long long>(lat.deepest_queue),
                 static_cast<unsigned long long>(lat.quarantined),
                 static_cast<unsigned long long>(lat.faults),
                 static_cast<unsigned long long>(lat.restarts));
    std::printf(
        "N=%zu latency (S=%zu, SLO %ld ms): p50 %.2f ms, p99 %.2f ms, "
        "p99.9 %.2f ms over %zu samples, drop %.2f%%, deadline-drop %.2f%%, "
        "deepest queue %llu\n",
        n_streams, latency_shards, slo_ms, lat.p50_ms, lat.p99_ms,
        lat.p999_ms, lat.samples, 100.0 * lat.drop_rate,
        100.0 * lat.deadline_drop_rate,
        static_cast<unsigned long long>(lat.deepest_queue));
  }
  std::fprintf(f, "\n}\n");
  std::fclose(f);
  std::printf("-> %s\n", out_path);
  return 0;
}
