// Figure 9 (a-c): ASR / UASR / CDR vs. number of poisoned frames for
// SIMILAR trajectory attacks, injection rate fixed at 0.4.
#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace mmhar;
  std::printf(
      "== Figure 9: similar-trajectory attacks vs poisoned frames ==\n");
  auto setup = core::ExperimentSetup::standard();
  core::AttackExperiment experiment(setup);

  const std::vector<bench::Scenario> scenarios{
      bench::make_scenario(mesh::Activity::Push, mesh::Activity::Pull),
      bench::make_scenario(mesh::Activity::LeftSwipe,
                           mesh::Activity::RightSwipe),
  };
  bench::run_frames_sweep(experiment, scenarios);
  std::printf("# paper shape: ASR grows with poisoned frame count "
              "(>80%% at 8 frames); CDR declines only mildly.\n");
  return 0;
}
