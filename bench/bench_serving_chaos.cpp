// Serving chaos driver: multi-producer load against the sharded
// StreamingHarService with the MMHAR_FAULT_SPEC injection sites armed
// (serving.frame_poison / serving.infer_fail / serving.shard_crash /
// serving.shard_stall), self-checking convergence and the fault books.
//
// tools/serving_chaos_smoke.sh runs this twice — once with every site
// armed mid-load, once disarmed as a control — and a ctest + CI job run
// the script. Exit 0 means: the service never terminated, every stream's
// admission was lossless, every accepted frame is accounted for as a
// classification or an attributed fault, the health snapshot's totals
// match the per-stream counters, injected crashes were supervised back to
// life, and (disarmed) the classification count is exact.
//
// Knobs (all registered in src/common/env_registry.cpp):
//   MMHAR_FAULT_SPEC / MMHAR_FAULT_SEED   which sites fire, and when
//   MMHAR_SERVING_SHARDS                  shard count (default here: 4)
//   MMHAR_SERVING_WATCHDOG_MS             supervision cadence (default: 5)
//   MMHAR_SERVING_FRAMES                  frames per stream (default: 24)
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/env.h"
#include "common/fault_injection.h"
#include "common/rng.h"
#include "dsp/heatmap.h"
#include "har/model.h"
#include "serving/serving.h"

namespace {

using namespace mmhar;
using Clock = std::chrono::steady_clock;

constexpr std::size_t kStreams = 64;
constexpr std::size_t kProducers = 4;

int fail(const char* what) {
  std::fprintf(stderr, "serving_chaos: FAIL: %s\n", what);
  return 1;
}

}  // namespace

int main() {
  har::HarModelConfig mc;
  mc.frames = 8;
  mc.height = 16;
  mc.width = 16;
  mc.conv1_channels = 4;
  mc.conv2_channels = 8;
  mc.feature_dim = 32;
  mc.lstm_hidden = 32;
  mc.num_classes = 4;
  mc.seed = 7;
  har::HarModel model(mc);

  serving::ServingConfig cfg = serving::ServingConfig::from_env();
  cfg.max_streams = kStreams;
  cfg.queue_depth = 4;
  cfg.batch_max = 64;
  cfg.result_depth = 64;
  cfg.num_chirps = 8;
  cfg.num_antennas = 8;
  cfg.num_samples = 32;
  cfg.heatmap.range_bins = 16;
  cfg.heatmap.angle_bins = 16;
  cfg.drop_policy = serving::DropPolicy::kNewest;  // lossless: reject + retry
  cfg.slo_ms = 0;
  if (cfg.num_shards < 2) cfg.num_shards = 4;
  if (cfg.watchdog_ms == 0) cfg.watchdog_ms = 5;  // chaos needs supervision
  const std::size_t per_stream = static_cast<std::size_t>(
      env_int("MMHAR_SERVING_FRAMES", 24));
  const bool armed = fault_injection_armed();

  serving::StreamingHarService svc(cfg, model);
  std::vector<std::size_t> sids(kStreams);
  for (std::size_t s = 0; s < kStreams; ++s) sids[s] = svc.add_stream();
  svc.start();

  // Producers: lossless submit with a liveness deadline, so a containment
  // bug that wedges a shard forever fails the smoke instead of hanging it.
  std::vector<std::thread> producers;
  std::vector<int> producer_status(kProducers, 0);
  producers.reserve(kProducers);
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::size_t s = p; s < kStreams; s += kProducers) {
        Rng rng(9000 + s);
        dsp::RadarCube cube(cfg.num_chirps, cfg.num_antennas, cfg.num_samples);
        for (std::size_t i = 0; i < per_stream; ++i) {
          for (dsp::cfloat& v : cube.raw())
            v = dsp::cfloat(static_cast<float>(rng.uniform(-1.0, 1.0)),
                            static_cast<float>(rng.uniform(-1.0, 1.0)));
          const Clock::time_point give_up =
              Clock::now() + std::chrono::seconds(60);
          while (!svc.submit_frame(sids[s], cube)) {
            if (Clock::now() >= give_up) {
              producer_status[p] = 1;
              return;
            }
            std::this_thread::yield();
          }
        }
      }
    });
  }
  for (std::thread& t : producers) t.join();
  for (std::size_t p = 0; p < kProducers; ++p)
    if (producer_status[p] != 0)
      return fail("producer starved for 60s on a full frame ring");

  // Quiesce: the classification/fault totals must stop moving (faulted
  // streams legitimately deliver fewer results, so a fixed target count
  // is not the convergence signal — stability is).
  const Clock::time_point deadline = Clock::now() + std::chrono::minutes(2);
  std::vector<serving::Classification> buf(cfg.result_depth);
  std::uint64_t prev_total = 0;
  int stable = 0;
  while (stable < 3) {
    if (Clock::now() >= deadline)
      return fail("counters never stabilized (service did not converge)");
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    const serving::ServiceHealth h = svc.health();
    std::uint64_t total = h.quarantined + h.errors;
    for (std::size_t s = 0; s < kStreams; ++s)
      total += svc.stream_stats(sids[s]).classifications;
    stable = total == prev_total ? stable + 1 : 0;
    prev_total = total;
  }
  svc.stop();

  // The books must balance, fault or no fault.
  const serving::ServiceHealth h = svc.health();
  std::uint64_t classifications = 0;
  std::uint64_t quarantined = 0;
  std::uint64_t errors = 0;
  std::uint64_t shed = 0;
  std::uint64_t suspensions = 0;
  for (std::size_t s = 0; s < kStreams; ++s) {
    const serving::StreamStats st = svc.stream_stats(sids[s]);
    if (st.accepted != per_stream)
      return fail("a stream lost admissions despite lossless submit");
    if (st.dropped_frames != 0) return fail("kNewest policy evicted a frame");
    if (st.classifications + st.quarantined + st.errors +
            st.suspended_dropped + mc.frames - 1 <
        st.accepted)
      return fail("frames vanished without per-stream attribution");
    classifications += st.classifications;
    quarantined += st.quarantined;
    errors += st.errors;
    shed += st.suspended_dropped;
    suspensions += st.suspensions;
  }
  if (h.quarantined != quarantined || h.errors != errors)
    return fail("ServiceHealth totals disagree with per-stream counters");
  for (const serving::ShardHealth& sd : h.shards)
    if (sd.crashed) return fail("a crashed shard was never restarted");

  FaultInjector& inj = FaultInjector::instance();
  const std::size_t poison_fires = inj.fire_count("serving.frame_poison");
  const std::size_t infer_fires = inj.fire_count("serving.infer_fail");
  const std::size_t crash_fires = inj.fire_count("serving.shard_crash");
  const std::size_t stall_fires = inj.fire_count("serving.shard_stall");
  if (quarantined != poison_fires)
    return fail("quarantine count != injected poison fires");
  if (errors != infer_fires)
    return fail("error count != injected inference fires");
  if (crash_fires > 0 && h.restarts < 1)
    return fail("an injected shard crash was never supervised back");
  if (!armed) {
    const std::uint64_t exact =
        static_cast<std::uint64_t>(kStreams) * (per_stream - mc.frames + 1);
    if (classifications != exact)
      return fail("disarmed control lost classifications");
    if (h.restarts != 0) return fail("disarmed control restarted a shard");
  }

  std::printf(
      "chaos summary: streams=%zu frames=%zu shards=%zu accepted=%llu "
      "classifications=%llu quarantined=%llu errors=%llu shed=%llu "
      "suspensions=%llu restarts=%llu fires(poison=%zu infer=%zu crash=%zu "
      "stall=%zu)\n",
      kStreams, per_stream, cfg.num_shards,
      static_cast<unsigned long long>(kStreams) * per_stream,
      static_cast<unsigned long long>(classifications),
      static_cast<unsigned long long>(quarantined),
      static_cast<unsigned long long>(errors),
      static_cast<unsigned long long>(shed),
      static_cast<unsigned long long>(suspensions),
      static_cast<unsigned long long>(h.restarts), poison_fires, infer_fires,
      crash_fires, stall_fires);
  std::printf("serving_chaos: OK\n");
  return 0;
}
