// Figure 8 (a-c): ASR / UASR / CDR vs. backdoor sample injection rate for
// SIMILAR trajectory attacks (Push->Pull and LeftSwipe->RightSwipe),
// poisoned frames fixed at 8.
//
// Expected paper shape: ASR rises steeply with the injection rate,
// exceeding ~80% at rate 0.4; UASR >= ASR; CDR stays high (push-pull
// least affected).
#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace mmhar;
  std::printf(
      "== Figure 8: similar-trajectory attacks vs injection rate ==\n");
  auto setup = core::ExperimentSetup::standard();
  core::AttackExperiment experiment(setup);

  const std::vector<bench::Scenario> scenarios{
      bench::make_scenario(mesh::Activity::Push, mesh::Activity::Pull),
      bench::make_scenario(mesh::Activity::LeftSwipe,
                           mesh::Activity::RightSwipe),
  };
  bench::run_injection_sweep(experiment, scenarios);
  std::printf("# paper shape: ASR grows steeply with rate (>80%% at 0.4);"
              " CDR ~90-95%%.\n");
  return 0;
}
