// Figure 11 (a-c): ASR / UASR / CDR vs. number of poisoned frames for
// DISSIMILAR trajectory attacks, injection rate fixed at 0.4.
#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace mmhar;
  std::printf(
      "== Figure 11: dissimilar-trajectory attacks vs poisoned frames ==\n");
  auto setup = core::ExperimentSetup::standard();
  core::AttackExperiment experiment(setup);

  const std::vector<bench::Scenario> scenarios{
      bench::make_scenario(mesh::Activity::Push, mesh::Activity::RightSwipe),
      bench::make_scenario(mesh::Activity::Push,
                           mesh::Activity::Anticlockwise),
  };
  bench::run_frames_sweep(experiment, scenarios);
  std::printf("# paper shape: ASR rises with frames but stays below the "
              "similar-trajectory curve of Figure 9.\n");
  return 0;
}
