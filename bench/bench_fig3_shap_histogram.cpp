// Figure 3: index distribution of the most important frame.
//
// Runs SHAP frame attribution over activity samples and histograms which
// frame index is most important for the clean model's decision — the
// distribution the attacker exploits when picking poisoning frames.
#include <cstdio>

#include "bench_common.h"
#include "xai/frame_importance.h"

int main() {
  using namespace mmhar;
  std::printf("== Figure 3: most-important-frame index distribution ==\n");

  auto setup = core::ExperimentSetup::standard();
  core::AttackExperiment experiment(setup);
  bench::print_run_config(setup);

  const auto max_samples =
      static_cast<std::size_t>(env_int("MMHAR_SHAP_SAMPLES", 36));
  xai::ShapConfig shap = setup.shap;

  std::printf("# SHAP over %zu samples, %zu antithetic permutation pairs\n",
              std::min(max_samples, experiment.train_set().size()),
              shap.num_permutations);
  const auto histogram = xai::most_important_frame_histogram(
      experiment.clean_model(), experiment.train_set(), shap, max_samples);

  std::size_t peak = 0;
  for (std::size_t f = 1; f < histogram.size(); ++f)
    if (histogram[f] > histogram[peak]) peak = f;

  std::printf("%6s %10s  histogram\n", "frame", "count");
  for (std::size_t f = 0; f < histogram.size(); ++f) {
    std::printf("%6zu %10zu  ", f, histogram[f]);
    for (std::size_t i = 0; i < histogram[f]; ++i) std::putchar('#');
    std::putchar('\n');
  }
  std::printf("# peak frame index: %zu\n", peak);
  std::printf(
      "# paper shape: a few frame indices dominate the distribution —\n"
      "# those are the optimal frames to poison.\n");
  return 0;
}
