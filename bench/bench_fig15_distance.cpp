// Figure 15: impact of the subject's distance on ASR/UASR.
//
// One backdoored model (rate 0.4, 8 frames, Push->Pull) is evaluated on
// trigger-bearing samples at distances 0.8..2.0 m, angle fixed at 0.
// Distances 0.8/1.2/1.6/2.0 appear in the training grid; the rest are
// zero-shot. Paper shape: high ASR overall, with occasional failures at
// far range where the trigger return weakens (1/d^2).
#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace mmhar;
  std::printf("== Figure 15: impact of the distance on ASR ==\n");
  auto setup = core::ExperimentSetup::standard();
  core::AttackExperiment experiment(setup);
  bench::print_run_config(setup);

  core::AttackPoint point;  // Push->Pull, rate 0.4, 8 frames
  std::printf("# training backdoored model (best of %zu repeats)\n",
              setup.repeats);
  std::optional<har::HarModel> best_model;
  double best_asr = -1.0;
  for (std::size_t r = 0; r < setup.repeats; ++r) {
    auto [model, metrics] = experiment.run_single(point, r);
    if (metrics.asr > best_asr) {
      best_asr = metrics.asr;
      best_model.emplace(std::move(model));
    }
  }
  std::printf("# selected model: default-grid ASR %s%%\n",
              core::pct(best_asr).c_str());

  std::printf("%10s %6s %8s %8s %8s\n", "distance", "seen", "ASR%", "UASR%",
              "n");
  for (const double d : {0.8, 1.0, 1.2, 1.4, 1.6, 1.8, 2.0}) {
    const bool seen = d == 0.8 || d == 1.2 || d == 1.6 || d == 2.0;
    core::AttackPoint probe = point;
    har::DatasetConfig grid = setup.attack_grid;
    grid.distances_m = {d};
    grid.angles_deg = {0.0};
    grid.repetitions = 4;
    probe.attack_grid_override = grid;
    const har::Dataset attack_test = experiment.attack_test_set(probe);
    const auto metrics =
        core::evaluate_attack(*best_model, har::Dataset{}, attack_test,
                              probe.victim, probe.target);
    std::printf("%10.1f %6s %8.1f %8.1f %8zu\n", d, seen ? "yes" : "no",
                100.0 * metrics.asr, 100.0 * metrics.uasr,
                metrics.attack_samples);
    std::fflush(stdout);
  }
  std::printf("# paper shape: robust across distances with a dip at the "
              "far end (weaker trigger return).\n");
  return 0;
}
