// Figure 5: DRAI heatmaps with and without a trigger.
//
// Renders a Clockwise-Turning frame with and without the 2x2-inch
// aluminum reflector at the optimal position, plus deviation statistics —
// quantifying the paper's stealthiness claim that the trigger's effect on
// the heatmap is subtle.
#include <cstdio>

#include "bench_common.h"
#include "common/check.h"
#include "tensor/ops.h"

int main() {
  using namespace mmhar;
  std::printf("== Figure 5: DRAI heatmaps with and without a trigger ==\n");

  auto setup = core::ExperimentSetup::standard();
  core::AttackExperiment experiment(setup);

  core::AttackPoint point;
  point.victim = static_cast<std::size_t>(mesh::Activity::Clockwise);
  point.target = static_cast<std::size_t>(mesh::Activity::Anticlockwise);
  const core::BackdoorPlan& plan = experiment.plan_for(point);

  har::SampleGenerator generator(setup.train_generator);
  har::SampleSpec spec;
  spec.activity = mesh::Activity::Clockwise;
  spec.distance_m = 1.6;
  spec.angle_deg = 0.0;

  const Tensor clean = generator.generate(spec);
  const Tensor triggered = generator.generate(spec, &plan.placement);

  const std::size_t frames = clean.dim(0);
  const std::size_t hw = clean.dim(1) * clean.dim(2);

  std::printf("# trigger: %.1fx%.1f inch aluminum at body-local position "
              "(%.2f, %.2f, %.2f)\n",
              plan.placement.spec.width_m / 0.0254,
              plan.placement.spec.height_m / 0.0254,
              plan.placement.local_position.x,
              plan.placement.local_position.y,
              plan.placement.local_position.z);

  std::printf("%6s %16s %16s %12s\n", "frame", "|clean|", "|triggered|",
              "L2 deviation");
  double total_dev = 0.0;
  std::size_t peak_frame = 0;
  double peak_dev = 0.0;
  MMHAR_REQUIRE(clean.size() == frames * hw && triggered.size() == frames * hw,
                "DRAI cubes must hold exactly frames*hw samples");
  for (std::size_t f = 0; f < frames; ++f) {
    Tensor cf({clean.dim(1), clean.dim(2)});
    Tensor tf = cf;
    std::copy(clean.data() + f * hw, clean.data() + (f + 1) * hw, cf.data());
    std::copy(triggered.data() + f * hw, triggered.data() + (f + 1) * hw,
              tf.data());
    const double dev = Tensor::l2_distance(cf, tf);
    total_dev += dev;
    if (dev > peak_dev) {
      peak_dev = dev;
      peak_frame = f;
    }
    if (f % 8 == 0) {
      std::printf("%6zu %16.3f %16.3f %12.3f\n", f, cf.l2_norm(),
                  tf.l2_norm(), dev);
    }
  }
  std::printf("# mean per-frame deviation %.3f; pixel correlation %.4f\n",
              total_dev / frames, pearson_correlation(clean, triggered));

  // Visualize the frame where the trigger is most visible (Fig. 5a/5b).
  Tensor cf({clean.dim(1), clean.dim(2)});
  Tensor tf = cf;
  MMHAR_REQUIRE(peak_frame < frames, "peak frame index out of range");
  std::copy(clean.data() + peak_frame * hw,
            clean.data() + (peak_frame + 1) * hw, cf.data());
  std::copy(triggered.data() + peak_frame * hw,
            triggered.data() + (peak_frame + 1) * hw, tf.data());
  std::printf("\n(a) clean DRAI, frame %zu\n", peak_frame);
  bench::print_heatmap_ascii(cf, "");
  std::printf("\n(b) with 2x2in aluminum trigger, frame %zu\n", peak_frame);
  bench::print_heatmap_ascii(tf, "");
  std::printf(
      "# paper shape: the two heatmaps look nearly identical to the eye;\n"
      "# the trigger appears as a subtle intensity change near the torso.\n");
  return 0;
}
