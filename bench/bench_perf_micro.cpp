// Microbenchmarks (google-benchmark) for the computational substrates.
//
// The paper's §VI-D reports ~0.87 s to simulate one TX-RX pair of a full
// activity on a GPU; `IfSynthesisPerAntenna` reports the CPU-equivalent
// figure for this implementation (per virtual antenna, per activity).
#include <benchmark/benchmark.h>

#include "dsp/heatmap.h"
#include "har/generator.h"
#include "har/model.h"
#include "nn/loss.h"
#include "tensor/gemm.h"
#include "xai/shapley.h"

namespace {

using namespace mmhar;

void BM_Fft(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  std::vector<dsp::cfloat> data(n);
  for (auto& v : data)
    v = dsp::cfloat(static_cast<float>(rng.normal()),
                    static_cast<float>(rng.normal()));
  for (auto _ : state) {
    dsp::fft_inplace(data);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_Fft)->Arg(64)->Arg(256)->Arg(1024);

void BM_Gemm(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  Tensor a = Tensor::randn({n, n}, rng);
  Tensor b = Tensor::randn({n, n}, rng);
  Tensor c({n, n});
  for (auto _ : state) {
    sgemm(n, n, n, 1.0F, a.data(), b.data(), 0.0F, c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      2.0 * n * n * n * state.iterations() / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

har::GeneratorConfig bench_generator_config() {
  har::GeneratorConfig gc;
  gc.environment = radar::EnvironmentKind::Hallway;
  return gc;
}

void BM_ScattererExtraction(benchmark::State& state) {
  const har::SampleGenerator gen(bench_generator_config());
  const auto meshes = gen.build_world_meshes(har::SampleSpec{}, nullptr);
  const radar::Simulator sim(gen.config().radar);
  for (auto _ : state) {
    auto s = sim.extract_scatterers(meshes[0], &meshes[1], 0.016);
    benchmark::DoNotOptimize(s.data());
  }
}
BENCHMARK(BM_ScattererExtraction);

void BM_IfSynthesisPerFrame(benchmark::State& state) {
  const har::SampleGenerator gen(bench_generator_config());
  const auto meshes = gen.build_world_meshes(har::SampleSpec{}, nullptr);
  const radar::Simulator sim(gen.config().radar);
  const auto scatterers =
      sim.extract_scatterers(meshes[0], &meshes[1], 0.016);
  for (auto _ : state) {
    auto cube = sim.synthesize(scatterers);
    benchmark::DoNotOptimize(cube.raw().data());
  }
  state.counters["scatterers"] =
      static_cast<double>(scatterers.size());
}
BENCHMARK(BM_IfSynthesisPerFrame);

// Paper §VI-D analog: IF-signal synthesis for a full 32-frame activity,
// normalized per virtual antenna (their GPU figure: ~0.87 s per TX-RX
// pair).
void BM_IfSynthesisPerAntenna(benchmark::State& state) {
  const har::SampleGenerator gen(bench_generator_config());
  for (auto _ : state) {
    auto cubes = gen.generate_cubes(har::SampleSpec{});
    benchmark::DoNotOptimize(cubes.data());
  }
  const double antennas =
      static_cast<double>(gen.config().radar.num_virtual_antennas);
  state.counters["s_per_antenna"] = benchmark::Counter(
      antennas * state.iterations(),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}
BENCHMARK(BM_IfSynthesisPerAntenna)->Unit(benchmark::kMillisecond);

void BM_DraiPipeline(benchmark::State& state) {
  const har::SampleGenerator gen(bench_generator_config());
  const auto cubes = gen.generate_cubes(har::SampleSpec{});
  for (auto _ : state) {
    auto hm = dsp::compute_drai(cubes[0], gen.config().heatmap);
    benchmark::DoNotOptimize(hm.data());
  }
}
BENCHMARK(BM_DraiPipeline);

// Paper-dimension radar cubes (16 chirps x 16 virtual antennas x 64 ADC
// samples) filled with noise — the DSP stages see the same shapes as the
// real pipeline without paying mesh/simulator time.
std::vector<dsp::RadarCube> paper_frames(std::size_t count) {
  Rng rng(7);
  std::vector<dsp::RadarCube> frames;
  frames.reserve(count);
  for (std::size_t f = 0; f < count; ++f) {
    dsp::RadarCube cube(16, 16, 64);
    for (auto& v : cube.raw())
      v = dsp::cfloat(static_cast<float>(rng.normal()),
                      static_cast<float>(rng.normal()));
    frames.push_back(std::move(cube));
  }
  return frames;
}

void BM_RangeFft(benchmark::State& state) {
  const auto frames = paper_frames(1);
  const dsp::HeatmapConfig cfg;
  dsp::RangeSpectra spectra;
  for (auto _ : state) {
    dsp::range_fft(frames[0], cfg, spectra);
    benchmark::DoNotOptimize(spectra.data.data());
  }
}
BENCHMARK(BM_RangeFft);

void BM_DraiFrame(benchmark::State& state) {
  const auto frames = paper_frames(1);
  dsp::HeatmapConfig cfg;
  cfg.log_scale = true;
  for (auto _ : state) {
    auto hm = dsp::compute_drai(frames[0], cfg);
    benchmark::DoNotOptimize(hm.data());
  }
}
BENCHMARK(BM_DraiFrame);

// Acceptance-gated end-to-end DSP figure: a full 32-frame activity through
// Range-FFT + clutter removal + angle FFT + dB + sequence normalization.
void BM_DraiSequence32(benchmark::State& state) {
  const auto frames = paper_frames(32);
  dsp::HeatmapConfig cfg;
  cfg.log_scale = true;
  for (auto _ : state) {
    auto seq = dsp::compute_drai_sequence(frames, cfg);
    benchmark::DoNotOptimize(seq.data());
  }
  state.counters["frames/s"] = benchmark::Counter(
      32.0 * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_DraiSequence32)->Unit(benchmark::kMillisecond);

har::HarModelConfig bench_model_config() {
  har::HarModelConfig mc;
  mc.conv1_channels = 6;
  mc.conv2_channels = 12;
  mc.feature_dim = 48;
  mc.lstm_hidden = 48;
  return mc;
}

void BM_ModelForward(benchmark::State& state) {
  har::HarModel model(bench_model_config());
  Rng rng(3);
  const Tensor batch = Tensor::rand_uniform({8, 32, 32, 32}, rng, 0.0F, 1.0F);
  for (auto _ : state) {
    auto logits = model.forward(batch, false);
    benchmark::DoNotOptimize(logits.data());
  }
  state.counters["samples/s"] = benchmark::Counter(
      8.0 * state.iterations(), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ModelForward)->Unit(benchmark::kMillisecond);

void BM_ModelTrainStep(benchmark::State& state) {
  har::HarModel model(bench_model_config());
  Rng rng(4);
  const Tensor batch = Tensor::rand_uniform({8, 32, 32, 32}, rng, 0.0F, 1.0F);
  const std::vector<std::size_t> labels{0, 1, 2, 3, 4, 5, 0, 1};
  for (auto _ : state) {
    model.zero_gradients();
    const Tensor logits = model.forward(batch, true);
    const auto loss = nn::softmax_cross_entropy(logits, labels);
    model.backward(loss.grad_logits);
    benchmark::DoNotOptimize(loss.loss);
  }
  state.counters["samples/s"] = benchmark::Counter(
      8.0 * state.iterations(), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ModelTrainStep)->Unit(benchmark::kMillisecond);

void BM_SamplingShapley(benchmark::State& state) {
  const std::size_t players = 32;
  const xai::ValueFunction v = [](const std::vector<bool>& mask) {
    double acc = 0.0;
    for (std::size_t i = 0; i < mask.size(); ++i)
      if (mask[i]) acc += static_cast<double>(i % 5);
    return acc;
  };
  Rng rng(5);
  for (auto _ : state) {
    auto phi = xai::sampling_shapley(players, v, 4, rng);
    benchmark::DoNotOptimize(phi.data());
  }
}
BENCHMARK(BM_SamplingShapley);

}  // namespace

BENCHMARK_MAIN();
