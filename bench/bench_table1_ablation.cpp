// Table I: impact of each attack module, plus under-clothing triggers.
//
// Rows (Push->Pull, rate 0.4, 8 frames):
//   1. full method: SHAP-optimal frames + Eq.2/4-optimal position
//   2. without the optimal position (trigger on the leg)
//   3. without the optimal frames (first 8 frames poisoned)
//   4. without either
//   5. full method with the trigger hidden under clothing
//
// Paper: 84% / 66% / 57% / 48% / 82% — ordering full > no-position >
// no-frames > neither, and under-clothing within noise of full.
#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace mmhar;
  std::printf("== Table I: module ablation and under-clothing trigger ==\n");
  auto setup = core::ExperimentSetup::standard();
  core::AttackExperiment experiment(setup);
  bench::print_run_config(setup);

  struct Row {
    const char* name;
    bool optimal_position;
    core::FrameSelection selection;
    bool under_clothing;
  };
  const Row rows[] = {
      {"With Optimal Frames and Positions", true,
       core::FrameSelection::ShapTopK, false},
      {"Without Optimal Trigger Position", false,
       core::FrameSelection::ShapTopK, false},
      {"Without Optimal Frames", true, core::FrameSelection::FirstK, false},
      {"Without Optimal Frames and Positions", false,
       core::FrameSelection::FirstK, false},
      {"With Under Clothing Stealthy Trigger", true,
       core::FrameSelection::ShapTopK, true},
  };

  std::printf("%-40s %8s %8s %8s\n", "experiment", "ASR%", "UASR%", "CDR%");
  for (const Row& row : rows) {
    core::AttackPoint point;  // Push->Pull, rate 0.4, 8 frames
    point.optimize_position = row.optimal_position;
    point.frame_selection = row.selection;
    point.trigger.under_clothing = row.under_clothing;
    const auto summary = experiment.run_point(point);
    std::printf("%-40s %8.1f %8.1f %8.1f\n", row.name,
                100.0 * summary.mean.asr, 100.0 * summary.mean.uasr,
                100.0 * summary.mean.cdr);
    std::fflush(stdout);
  }
  std::printf("# paper: 84 / 66 / 57 / 48 / 82 %%ASR — full method on top,\n"
              "# frame selection matters most, clothing is RF-transparent.\n");
  return 0;
}
