// Tests for the Eq.-3 IF-signal simulator: visibility, amplitude model,
// and — via the FFT pipeline — exact range/angle/Doppler localization of
// known point scatterers.
#include <gtest/gtest.h>

#include <cmath>

#include "dsp/heatmap.h"
#include "mesh/primitives.h"
#include "radar/simulator.h"

namespace mmhar::radar {
namespace {

FmcwConfig quiet_config() {
  FmcwConfig cfg;
  cfg.noise_std = 0.0;
  return cfg;
}

dsp::HeatmapConfig heatmap_config(bool clutter = false) {
  dsp::HeatmapConfig cfg;
  cfg.range_bins = 32;
  cfg.angle_bins = 32;
  cfg.remove_clutter = clutter;
  cfg.normalize = false;
  return cfg;
}

TEST(FmcwConfig, DerivedQuantities) {
  const FmcwConfig cfg;
  EXPECT_NEAR(cfg.range_resolution_m(), 0.075, 1e-4);
  EXPECT_NEAR(cfg.wavelength_m(), 0.00384, 1e-4);
  EXPECT_NEAR(cfg.max_range_m(32), 2.4, 5e-3);
  EXPECT_NEAR(cfg.range_bin_of(1.5), 20.0, 0.1);
  EXPECT_NEAR(cfg.angle_bin_of(0.0, 32), 16.0, 1e-9);
  EXPECT_GT(cfg.max_unambiguous_velocity_mps(), 1.0);
  // ULA centered on the origin with lambda/2 spacing.
  const double spacing = mesh::distance(cfg.antenna_position(0),
                                        cfg.antenna_position(1));
  EXPECT_NEAR(spacing, 0.5 * cfg.wavelength_m(), 1e-9);
  mesh::Vec3 centroid{0, 0, 0};
  for (std::size_t k = 0; k < cfg.num_virtual_antennas; ++k)
    centroid += cfg.antenna_position(k);
  EXPECT_NEAR(mesh::norm(centroid), 0.0, 1e-12);
}

TEST(Scatterers, BackfaceCullingDropsAwayFacingTriangles) {
  // A closed box: roughly half the faces look away from the radar.
  const mesh::TriMesh box = mesh::make_box({1.0, -0.2, -0.2}, {1.4, 0.2, 0.2},
                                           mesh::Material::wood());
  const Simulator sim(quiet_config());
  const auto scatterers = sim.extract_scatterers(box, nullptr, 0.0);
  EXPECT_LT(scatterers.size(), box.num_triangles());
  EXPECT_GT(scatterers.size(), 0u);
  for (const auto& s : scatterers) EXPECT_GT(s.amplitude, 0.0);
}

TEST(Scatterers, AmplitudeFollowsInverseSquare) {
  const mesh::Material mat = mesh::Material::aluminum();
  const Simulator sim(quiet_config());
  const auto amp_at = [&](double d) {
    const mesh::TriMesh plate = mesh::make_plate(
        {d, 0, 0}, {-1, 0, 0}, {0, 0, 1}, 0.05, 0.05, mat, 1);
    const auto s = sim.extract_scatterers(plate, nullptr, 0.0);
    double total = 0.0;
    for (const auto& x : s) total += x.amplitude;
    return total;
  };
  const double near = amp_at(1.0);
  const double far = amp_at(2.0);
  EXPECT_NEAR(near / far, 4.0, 0.1);  // 1/d^2 spreading
}

TEST(Scatterers, SectorOcclusionHidesGeometryBehindBlocker) {
  // A large plate at 1 m fully blocks a small plate directly behind it.
  mesh::TriMesh scene = mesh::make_plate({1.0, 0, 0}, {-1, 0, 0}, {0, 0, 1},
                                         0.5, 0.5, mesh::Material::wood(), 2);
  const std::size_t front_tris = scene.num_triangles();
  scene.merge(mesh::make_plate({1.5, 0, 0}, {-1, 0, 0}, {0, 0, 1}, 0.1, 0.1,
                               mesh::Material::aluminum(), 1));
  SimulatorOptions opts;
  opts.sector_occlusion = true;
  const Simulator sim(quiet_config(), opts);
  const auto visible = sim.extract_scatterers(scene, nullptr, 0.0);
  // Only the front plate's triangles survive.
  EXPECT_EQ(visible.size(), front_tris);
  for (const auto& s : visible) EXPECT_LT(s.position.x, 1.2);

  SimulatorOptions no_occ;
  no_occ.sector_occlusion = false;
  const Simulator sim2(quiet_config(), no_occ);
  EXPECT_GT(sim2.extract_scatterers(scene, nullptr, 0.0).size(),
            visible.size());
}

TEST(Scatterers, RadialVelocityFromFrameDifference) {
  const auto plate_at = [](double x) {
    return mesh::make_plate({x, 0, 0}, {-1, 0, 0}, {0, 0, 1}, 0.05, 0.05,
                            mesh::Material::skin(), 1);
  };
  const mesh::TriMesh now = plate_at(1.5);
  const mesh::TriMesh next = plate_at(1.52);
  const Simulator sim(quiet_config());
  const auto s = sim.extract_scatterers(now, &next, 0.02);
  ASSERT_FALSE(s.empty());
  for (const auto& x : s) EXPECT_NEAR(x.radial_velocity, 1.0, 1e-3);
  EXPECT_THROW(sim.extract_scatterers(now, &next, 0.0), InvalidArgument);
}

TEST(Scatterers, TopologyMismatchRejected) {
  const mesh::TriMesh a = mesh::make_plate({1, 0, 0}, {-1, 0, 0}, {0, 0, 1},
                                           0.1, 0.1, mesh::Material::skin(), 1);
  const mesh::TriMesh b = mesh::make_plate({1, 0, 0}, {-1, 0, 0}, {0, 0, 1},
                                           0.1, 0.1, mesh::Material::skin(), 2);
  const Simulator sim(quiet_config());
  EXPECT_THROW(sim.extract_scatterers(a, &b, 0.1), InvalidArgument);
}

TEST(Synthesis, PointTargetLandsOnPredictedRangeBin) {
  const FmcwConfig cfg = quiet_config();
  const Simulator sim(cfg);
  const double d = 1.5;
  std::vector<Scatterer> s{{mesh::Vec3{d, 0, 0}, 1.0, 0.0}};
  const dsp::RadarCube cube = sim.synthesize(s);
  const Tensor profile = dsp::range_profile(cube, heatmap_config());
  EXPECT_EQ(profile.argmax(),
            static_cast<std::size_t>(std::lround(cfg.range_bin_of(d))));
}

class AngleCases : public ::testing::TestWithParam<double> {};

TEST_P(AngleCases, PointTargetLandsOnPredictedAngleBin) {
  const double az_deg = GetParam();
  const FmcwConfig cfg = quiet_config();
  const Simulator sim(cfg);
  const double az = mesh::deg2rad(az_deg);
  const double d = 1.5;
  std::vector<Scatterer> s{
      {mesh::Vec3{d * std::cos(az), d * std::sin(az), 0.0}, 1.0, 0.0}};
  const Tensor drai = dsp::compute_drai(sim.synthesize(s), heatmap_config());
  const std::size_t angle_bin = drai.argmax() % 32;
  const double expected = cfg.angle_bin_of(az, 32);
  EXPECT_NEAR(static_cast<double>(angle_bin), expected, 1.0)
      << "azimuth " << az_deg;
}

INSTANTIATE_TEST_SUITE_P(Azimuths, AngleCases,
                         ::testing::Values(-30.0, -15.0, 0.0, 15.0, 30.0));

TEST(Synthesis, ApproachingTargetShowsPositiveDoppler) {
  const FmcwConfig cfg = quiet_config();
  const Simulator sim(cfg);
  // Approaching: radial velocity negative (range shrinking).
  std::vector<Scatterer> s{{mesh::Vec3{1.5, 0, 0}, 1.0, -0.8}};
  auto hm_cfg = heatmap_config();
  const Tensor rdi = dsp::compute_rdi(sim.synthesize(s), hm_cfg);
  const std::size_t row = rdi.argmax() / 32;
  EXPECT_GT(row, rdi.dim(0) / 2);  // above center = approaching
  std::vector<Scatterer> r{{mesh::Vec3{1.5, 0, 0}, 1.0, 0.8}};
  const Tensor rdi2 = dsp::compute_rdi(sim.synthesize(r), hm_cfg);
  EXPECT_LT(rdi2.argmax() / 32, rdi2.dim(0) / 2);
}

TEST(Synthesis, NoiseIsDeterministicPerSeed) {
  FmcwConfig cfg;
  cfg.noise_std = 0.05;
  const Simulator sim(cfg);
  std::vector<Scatterer> s{{mesh::Vec3{1.0, 0, 0}, 1.0, 0.0}};
  Rng a(42);
  Rng b(42);
  const auto ca = sim.synthesize(s, &a);
  const auto cb = sim.synthesize(s, &b);
  EXPECT_EQ(ca.raw(), cb.raw());
  Rng c(43);
  const auto cc = sim.synthesize(s, &c);
  EXPECT_NE(ca.raw(), cc.raw());
}

TEST(Synthesis, StrongerMaterialYieldsStrongerReturn) {
  const Simulator sim(quiet_config());
  const auto energy_of = [&](const mesh::Material& mat) {
    const mesh::TriMesh plate = mesh::make_plate(
        {1.2, 0, 0}, {-1, 0, 0}, {0, 0, 1}, 0.05, 0.05, mat, 1);
    const auto cube =
        sim.synthesize(sim.extract_scatterers(plate, nullptr, 0.0));
    double e = 0.0;
    for (const auto& v : cube.raw()) e += std::norm(v);
    return e;
  };
  EXPECT_GT(energy_of(mesh::Material::aluminum()),
            10.0 * energy_of(mesh::Material::skin()));
}

TEST(Sequence, ParallelFramesMatchDeterministicReplay) {
  FmcwConfig cfg;
  cfg.noise_std = 0.01;
  const Simulator sim(cfg);
  std::vector<mesh::TriMesh> frames;
  for (int f = 0; f < 6; ++f) {
    frames.push_back(mesh::make_plate({1.2 + 0.01 * f, 0, 0}, {-1, 0, 0},
                                      {0, 0, 1}, 0.05, 0.05,
                                      mesh::Material::skin(), 1));
  }
  Rng a(7);
  const auto run1 = sim.simulate_sequence(frames, nullptr, 0.016, &a);
  Rng b(7);
  const auto run2 = sim.simulate_sequence(frames, nullptr, 0.016, &b);
  ASSERT_EQ(run1.size(), run2.size());
  for (std::size_t f = 0; f < run1.size(); ++f)
    EXPECT_EQ(run1[f].raw(), run2[f].raw()) << "frame " << f;
}

TEST(Sequence, StaticEnvironmentVanishesAfterClutterRemoval) {
  FmcwConfig cfg = quiet_config();
  const Simulator sim(cfg);
  const mesh::TriMesh env = build_environment(EnvironmentKind::Classroom);
  // Single moving plate plus the static room.
  std::vector<mesh::TriMesh> frames;
  for (int f = 0; f < 4; ++f)
    frames.push_back(mesh::make_plate({1.2 + 0.02 * f, 0, 0}, {-1, 0, 0},
                                      {0, 0, 1}, 0.08, 0.08,
                                      mesh::Material::skin(), 1));
  const auto cubes = sim.simulate_sequence(frames, &env, 0.016, nullptr);
  const Tensor drai = dsp::compute_drai(cubes[1], heatmap_config(true));
  // All remaining energy concentrates near the moving plate's range.
  const std::size_t peak_range = drai.argmax() / 32;
  EXPECT_NEAR(static_cast<double>(peak_range), cfg.range_bin_of(1.24), 1.5);
}

TEST(Environment, PresetsProduceGeometry) {
  EXPECT_EQ(build_environment(EnvironmentKind::None).num_triangles(), 0u);
  EXPECT_GT(build_environment(EnvironmentKind::Hallway).num_triangles(), 10u);
  EXPECT_GT(build_environment(EnvironmentKind::Classroom).num_triangles(),
            10u);
  EXPECT_STREQ(environment_name(EnvironmentKind::Hallway), "hallway");
}

TEST(Simulator, RejectsBadConfig) {
  FmcwConfig bad;
  bad.num_samples = 48;
  EXPECT_THROW(Simulator{bad}, InvalidArgument);
  FmcwConfig bad2;
  bad2.num_chirps = 12;
  EXPECT_THROW(Simulator{bad2}, InvalidArgument);
}

}  // namespace
}  // namespace mmhar::radar
