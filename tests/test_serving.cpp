// Streaming serving layer: offline equivalence, batching determinism,
// shard-count invariance, deadline scheduling, multi-model routing,
// steady-state zero-allocation, and backpressure accounting.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "common/alloc_count.h"
#include "common/rng.h"
#include "dsp/heatmap.h"
#include "har/model.h"
#include "serving/affinity.h"
#include "serving/serving.h"

namespace mmhar::serving {
namespace {

constexpr std::size_t kChirps = 8;
constexpr std::size_t kAntennas = 8;
constexpr std::size_t kSamples = 32;

har::HarModelConfig test_model_config() {
  har::HarModelConfig mc;
  mc.frames = 8;
  mc.height = 16;
  mc.width = 16;
  mc.conv1_channels = 4;
  mc.conv2_channels = 8;
  mc.feature_dim = 32;
  mc.lstm_hidden = 32;
  mc.num_classes = 4;
  mc.seed = 7;
  return mc;
}

ServingConfig test_serving_config() {
  ServingConfig cfg;
  cfg.max_streams = 64;
  cfg.queue_depth = 4;
  cfg.batch_max = 64;
  cfg.result_depth = 64;
  cfg.num_chirps = kChirps;
  cfg.num_antennas = kAntennas;
  cfg.num_samples = kSamples;
  cfg.heatmap.range_bins = 16;
  cfg.heatmap.angle_bins = 16;
  return cfg;
}

dsp::RadarCube random_cube(Rng& rng) {
  dsp::RadarCube cube(kChirps, kAntennas, kSamples);
  for (dsp::cfloat& v : cube.raw())
    v = dsp::cfloat(static_cast<float>(rng.uniform(-1.0, 1.0)),
                    static_cast<float>(rng.uniform(-1.0, 1.0)));
  return cube;
}

std::vector<dsp::RadarCube> random_frames(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<dsp::RadarCube> frames;
  frames.reserve(n);
  for (std::size_t i = 0; i < n; ++i) frames.push_back(random_cube(rng));
  return frames;
}

// Submit a frame sequence to one stream, pumping a batcher cycle after
// every submit, and collect every classification produced.
std::vector<Classification> run_sequence(StreamingHarService& svc,
                                         std::size_t stream,
                                         const std::vector<dsp::RadarCube>& fs) {
  std::vector<Classification> out;
  std::array<Classification, 8> buf;
  for (const dsp::RadarCube& f : fs) {
    EXPECT_TRUE(svc.submit_frame(stream, f)) << "unexpected rejection";
    svc.run_cycle();
    const std::size_t n = svc.poll(stream, std::span<Classification>(buf));
    out.insert(out.end(), buf.begin(), buf.begin() + n);
  }
  return out;
}

void expect_bit_identical(const std::vector<Classification>& a,
                          const std::vector<Classification>& b,
                          std::size_t num_classes) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].predicted, b[i].predicted) << "result " << i;
    EXPECT_EQ(0, std::memcmp(a[i].logits, b[i].logits,
                             num_classes * sizeof(float)))
        << "logits differ bitwise at result " << i;
  }
}

TEST(Serving, MatchesOfflinePipeline) {
  const har::HarModelConfig mc = test_model_config();
  har::HarModel model(mc);
  const ServingConfig cfg = test_serving_config();
  StreamingHarService svc(cfg, model);
  const std::size_t sid = svc.add_stream();

  const std::size_t total = mc.frames + 3;  // 4 sliding windows
  const std::vector<dsp::RadarCube> frames = random_frames(total, 11);
  std::vector<Classification> results;
  std::array<Classification, 8> buf;
  for (const dsp::RadarCube& f : frames) {
    ASSERT_TRUE(svc.submit_frame(sid, f));
    svc.run_cycle();
    const std::size_t n = svc.poll(sid, std::span<Classification>(buf));
    results.insert(results.end(), buf.begin(), buf.begin() + n);
  }
  ASSERT_EQ(results.size(), total - mc.frames + 1);

  // Every result must match the offline compute_drai_sequence +
  // HarModel::forward pipeline over the same sliding window. The serving
  // path replicates the arithmetic operation-for-operation, but it lives
  // in a different translation unit, so FP contraction may fuse
  // differently under -march=native: compare with a small tolerance and
  // exact argmax instead of bitwise.
  for (std::size_t k = 0; k < results.size(); ++k) {
    const std::vector<dsp::RadarCube> window(frames.begin() + k,
                                             frames.begin() + k + mc.frames);
    const Tensor seq = dsp::compute_drai_sequence(window, cfg.heatmap);
    const Tensor batch({1, mc.frames, mc.height, mc.width},
                       std::vector<float>(seq.flat().begin(),
                                          seq.flat().end()));
    const Tensor logits = model.forward(batch, /*training=*/false);
    std::size_t best = 0;
    for (std::size_t c = 1; c < mc.num_classes; ++c)
      if (logits.flat()[c] > logits.flat()[best]) best = c;
    EXPECT_EQ(results[k].predicted, best) << "window " << k;
    EXPECT_EQ(results[k].frame_seq, k + mc.frames - 1);
    EXPECT_GE(results[k].latency_ns, 0);
    for (std::size_t c = 0; c < mc.num_classes; ++c)
      EXPECT_NEAR(results[k].logits[c], logits.flat()[c], 2e-4F)
          << "window " << k << " class " << c;
  }
}

TEST(Serving, DeterministicAcrossBatchComposition) {
  const har::HarModelConfig mc = test_model_config();
  har::HarModel model(mc);
  const ServingConfig cfg = test_serving_config();
  const std::size_t n_frames = mc.frames + 4;
  const std::vector<dsp::RadarCube> frames = random_frames(n_frames, 23);

  // Run A: the stream served alone.
  std::vector<Classification> alone;
  {
    StreamingHarService svc(cfg, model);
    const std::size_t sid = svc.add_stream();
    alone = run_sequence(svc, sid, frames);
  }
  ASSERT_EQ(alone.size(), n_frames - mc.frames + 1);

  // Run B: the same frames for stream 0 while 63 other streams with
  // different data share every batcher cycle.
  std::vector<Classification> crowded;
  {
    StreamingHarService svc(cfg, model);
    std::vector<std::size_t> sids(cfg.max_streams);
    for (std::size_t s = 0; s < cfg.max_streams; ++s) sids[s] = svc.add_stream();
    std::vector<std::vector<dsp::RadarCube>> other;
    for (std::size_t s = 1; s < cfg.max_streams; ++s)
      other.push_back(random_frames(n_frames, 1000 + s));
    std::array<Classification, 8> buf;
    for (std::size_t i = 0; i < n_frames; ++i) {
      ASSERT_TRUE(svc.submit_frame(sids[0], frames[i]));
      for (std::size_t s = 1; s < cfg.max_streams; ++s)
        ASSERT_TRUE(svc.submit_frame(sids[s], other[s - 1][i]));
      svc.run_cycle();
      const std::size_t n = svc.poll(sids[0], std::span<Classification>(buf));
      crowded.insert(crowded.end(), buf.begin(), buf.begin() + n);
    }
  }
  expect_bit_identical(alone, crowded, mc.num_classes);

  // Run C: frames f0..f3 are admitted and then evicted (kOldest) before
  // the batcher ever runs; the surviving sequence f4.. must classify
  // bit-identically to Run D, which submits only the survivors.
  std::vector<Classification> after_drops;
  {
    StreamingHarService svc(cfg, model);
    const std::size_t sid = svc.add_stream();
    const std::vector<dsp::RadarCube> junk = random_frames(cfg.queue_depth, 99);
    for (const dsp::RadarCube& f : junk) ASSERT_TRUE(svc.submit_frame(sid, f));
    // The queue is full; the first queue_depth real frames evict the junk.
    for (std::size_t i = 0; i < cfg.queue_depth; ++i)
      ASSERT_TRUE(svc.submit_frame(sid, frames[i]));
    svc.run_cycle();
    std::array<Classification, 8> buf;
    std::size_t n = svc.poll(sid, std::span<Classification>(buf));
    after_drops.insert(after_drops.end(), buf.begin(), buf.begin() + n);
    for (std::size_t i = cfg.queue_depth; i < n_frames; ++i) {
      ASSERT_TRUE(svc.submit_frame(sid, frames[i]));
      svc.run_cycle();
      n = svc.poll(sid, std::span<Classification>(buf));
      after_drops.insert(after_drops.end(), buf.begin(), buf.begin() + n);
    }
    const StreamStats st = svc.stream_stats(sid);
    EXPECT_EQ(st.dropped_frames, cfg.queue_depth);
  }
  std::vector<Classification> survivors_only;
  {
    StreamingHarService svc(cfg, model);
    const std::size_t sid = svc.add_stream();
    survivors_only = run_sequence(svc, sid, frames);
  }
  // Sequence numbers differ (Run C admitted the junk first), but the
  // classifications themselves must be bit-identical.
  expect_bit_identical(after_drops, survivors_only, mc.num_classes);
}

TEST(Serving, SteadyStateIsAllocationFree) {
  const har::HarModelConfig mc = test_model_config();
  har::HarModel model(mc);
  ServingConfig cfg = test_serving_config();
  cfg.max_streams = 4;
  StreamingHarService svc(cfg, model);
  std::vector<std::size_t> sids;
  for (std::size_t s = 0; s < cfg.max_streams; ++s)
    sids.push_back(svc.add_stream());

  const std::size_t warm = mc.frames + 2;
  const std::size_t steady = 16;
  std::vector<std::vector<dsp::RadarCube>> frames;
  for (std::size_t s = 0; s < cfg.max_streams; ++s)
    frames.push_back(random_frames(warm + steady, 400 + s));

  std::array<Classification, 8> buf;
  for (std::size_t i = 0; i < warm; ++i) {
    for (std::size_t s = 0; s < cfg.max_streams; ++s)
      ASSERT_TRUE(svc.submit_frame(sids[s], frames[s][i]));
    svc.run_cycle();
    for (std::size_t s = 0; s < cfg.max_streams; ++s)
      svc.poll(sids[s], std::span<Classification>(buf));
  }
  ASSERT_GT(svc.stream_stats(sids[0]).classifications, 0u);

  // Steady state: the whole submit -> DSP -> inference -> poll path must
  // not touch the heap at all.
  const std::uint64_t before = alloc_count();
  for (std::size_t i = warm; i < warm + steady; ++i) {
    for (std::size_t s = 0; s < cfg.max_streams; ++s)
      ASSERT_TRUE(svc.submit_frame(sids[s], frames[s][i]));
    svc.run_cycle();
    for (std::size_t s = 0; s < cfg.max_streams; ++s)
      svc.poll(sids[s], std::span<Classification>(buf));
  }
  EXPECT_EQ(alloc_count() - before, 0u)
      << "steady-state serving path allocated";
}

TEST(Serving, OldestDropPolicyAccounting) {
  const har::HarModelConfig mc = test_model_config();
  har::HarModel model(mc);
  ServingConfig cfg = test_serving_config();
  cfg.max_streams = 1;
  StreamingHarService svc(cfg, model);
  const std::size_t sid = svc.add_stream();

  const std::vector<dsp::RadarCube> frames = random_frames(10, 5);
  for (const dsp::RadarCube& f : frames)
    EXPECT_TRUE(svc.submit_frame(sid, f));  // kOldest always admits
  StreamStats st = svc.stream_stats(sid);
  EXPECT_EQ(st.submitted, 10u);
  EXPECT_EQ(st.accepted, 10u);
  EXPECT_EQ(st.dropped_frames, 10u - cfg.queue_depth);
  EXPECT_EQ(st.rejected_frames, 0u);

  // Only queue_depth frames survive — not enough for a T-frame window.
  EXPECT_EQ(svc.run_cycle(), cfg.queue_depth);
  st = svc.stream_stats(sid);
  EXPECT_EQ(st.classifications, 0u);
}

TEST(Serving, NewestDropPolicyRejects) {
  const har::HarModelConfig mc = test_model_config();
  har::HarModel model(mc);
  ServingConfig cfg = test_serving_config();
  cfg.max_streams = 1;
  cfg.drop_policy = DropPolicy::kNewest;
  StreamingHarService svc(cfg, model);
  const std::size_t sid = svc.add_stream();

  const std::vector<dsp::RadarCube> frames = random_frames(7, 6);
  std::size_t admitted = 0;
  for (const dsp::RadarCube& f : frames)
    if (svc.submit_frame(sid, f)) ++admitted;
  EXPECT_EQ(admitted, cfg.queue_depth);
  const StreamStats st = svc.stream_stats(sid);
  EXPECT_EQ(st.accepted, cfg.queue_depth);
  EXPECT_EQ(st.rejected_frames, 7u - cfg.queue_depth);
  EXPECT_EQ(st.dropped_frames, 0u);
}

TEST(Serving, ResultRingEvictsOldest) {
  const har::HarModelConfig mc = test_model_config();
  har::HarModel model(mc);
  ServingConfig cfg = test_serving_config();
  cfg.max_streams = 1;
  cfg.result_depth = 2;
  StreamingHarService svc(cfg, model);
  const std::size_t sid = svc.add_stream();

  const std::size_t total = mc.frames + 4;  // 5 windows, ring holds 2
  const std::vector<dsp::RadarCube> frames = random_frames(total, 8);
  for (const dsp::RadarCube& f : frames) {
    ASSERT_TRUE(svc.submit_frame(sid, f));
    svc.run_cycle();
  }
  const StreamStats st = svc.stream_stats(sid);
  EXPECT_EQ(st.classifications, 5u);
  EXPECT_EQ(st.dropped_results, 3u);
  std::array<Classification, 8> buf;
  const std::size_t n = svc.poll(sid, std::span<Classification>(buf));
  ASSERT_EQ(n, 2u);
  // The survivors are the two newest windows.
  EXPECT_EQ(buf[0].frame_seq, total - 2);
  EXPECT_EQ(buf[1].frame_seq, total - 1);
}

TEST(Serving, ConfigValidation) {
  const har::HarModelConfig mc = test_model_config();
  har::HarModel model(mc);
  ServingConfig cfg = test_serving_config();
  cfg.heatmap.range_bins = 8;  // model expects 16
  EXPECT_THROW((StreamingHarService(cfg, model)), Error);
  cfg = test_serving_config();
  cfg.heatmap.normalize_per_sequence = false;
  EXPECT_THROW((StreamingHarService(cfg, model)), Error);
  cfg = test_serving_config();
  cfg.queue_depth = 0;
  EXPECT_THROW((StreamingHarService(cfg, model)), Error);
  cfg = test_serving_config();
  cfg.num_shards = 0;
  EXPECT_THROW((StreamingHarService(cfg, model)), Error);
  cfg = test_serving_config();
  cfg.slo_ms = -1;
  EXPECT_THROW((StreamingHarService(cfg, model)), Error);

  StreamingHarService svc(test_serving_config(), model);
  EXPECT_THROW(svc.submit_frame(0, dsp::RadarCube(1, 1, 2)), Error);
  EXPECT_THROW(svc.stream_stats(0), Error);
  EXPECT_THROW(svc.shard_of_stream(0), Error);
}

// Drive `n_streams` streams through `svc`-style manual pumping at a given
// shard count and return every stream's full classification sequence.
std::vector<std::vector<Classification>> run_all_streams_manual(
    har::HarModel& model, ServingConfig cfg, std::size_t num_shards,
    const std::vector<std::vector<dsp::RadarCube>>& frames) {
  const std::size_t n_streams = frames.size();
  cfg.max_streams = n_streams;
  cfg.num_shards = num_shards;
  StreamingHarService svc(cfg, model);
  std::vector<std::size_t> sids(n_streams);
  for (std::size_t s = 0; s < n_streams; ++s) sids[s] = svc.add_stream();

  std::vector<std::vector<Classification>> out(n_streams);
  std::array<Classification, 16> buf;
  const std::size_t n_frames = frames.front().size();
  for (std::size_t i = 0; i < n_frames; ++i) {
    for (std::size_t s = 0; s < n_streams; ++s)
      EXPECT_TRUE(svc.submit_frame(sids[s], frames[s][i]));
    svc.run_cycle();
    for (std::size_t s = 0; s < n_streams; ++s) {
      const std::size_t n = svc.poll(sids[s], std::span<Classification>(buf));
      out[s].insert(out[s].end(), buf.begin(), buf.begin() + n);
    }
  }
  while (svc.run_cycle() > 0) {
  }
  for (std::size_t s = 0; s < n_streams; ++s) {
    const std::size_t n = svc.poll(sids[s], std::span<Classification>(buf));
    out[s].insert(out[s].end(), buf.begin(), buf.begin() + n);
  }
  return out;
}

// The tentpole invariant: a stream's classification sequence is
// bit-identical for ANY shard count, because shard assignment is a pure
// function of the stream id and the per-lane FFT / per-row GEMM
// arithmetic never depends on what else shares the batch.
TEST(Serving, ShardCountInvariance) {
  const har::HarModelConfig mc = test_model_config();
  har::HarModel model(mc);
  const ServingConfig cfg = test_serving_config();
  const std::size_t n_streams = 16;
  const std::size_t n_frames = mc.frames + 5;
  std::vector<std::vector<dsp::RadarCube>> frames;
  for (std::size_t s = 0; s < n_streams; ++s)
    frames.push_back(random_frames(n_frames, 7000 + s));

  const auto ref = run_all_streams_manual(model, cfg, 1, frames);
  for (const std::size_t shards : {std::size_t{2}, std::size_t{4}}) {
    const auto got = run_all_streams_manual(model, cfg, shards, frames);
    ASSERT_EQ(got.size(), ref.size());
    for (std::size_t s = 0; s < n_streams; ++s) {
      ASSERT_EQ(got[s].size(), n_frames - mc.frames + 1)
          << "stream " << s << " at " << shards << " shards";
      expect_bit_identical(ref[s], got[s], mc.num_classes);
    }
  }
}

// Same invariant with background shard workers and interleaved producer
// threads (the TSan leg's main target): kNewest + retry-until-accepted
// makes the run lossless, so every stream's sequence must be bit-identical
// to the single-shard manually-pumped reference.
TEST(Serving, ShardCountInvarianceThreadedProducers) {
  const har::HarModelConfig mc = test_model_config();
  har::HarModel model(mc);
  ServingConfig cfg = test_serving_config();
  cfg.drop_policy = DropPolicy::kNewest;
  const std::size_t n_streams = 8;
  const std::size_t n_frames = mc.frames + 6;
  std::vector<std::vector<dsp::RadarCube>> frames;
  for (std::size_t s = 0; s < n_streams; ++s)
    frames.push_back(random_frames(n_frames, 8000 + s));
  const auto ref = run_all_streams_manual(model, cfg, 1, frames);

  for (const std::size_t shards : {std::size_t{2}, std::size_t{4}}) {
    cfg.max_streams = n_streams;
    cfg.num_shards = shards;
    StreamingHarService svc(cfg, model);
    std::vector<std::size_t> sids(n_streams);
    for (std::size_t s = 0; s < n_streams; ++s) sids[s] = svc.add_stream();
    svc.start();

    std::vector<std::thread> producers;
    for (std::size_t s = 0; s < n_streams; ++s) {
      producers.emplace_back([&svc, &sids, &frames, s] {
        for (const dsp::RadarCube& f : frames[s])
          while (!svc.submit_frame(sids[s], f)) std::this_thread::yield();
      });
    }
    for (std::thread& t : producers) t.join();

    // Lossless by construction: wait for every expected classification.
    const std::size_t expected_per_stream = n_frames - mc.frames + 1;
    std::vector<std::vector<Classification>> got(n_streams);
    std::array<Classification, 16> buf;
    bool done = false;
    while (!done) {
      done = true;
      for (std::size_t s = 0; s < n_streams; ++s) {
        const std::size_t n =
            svc.poll(sids[s], std::span<Classification>(buf));
        got[s].insert(got[s].end(), buf.begin(), buf.begin() + n);
        if (got[s].size() < expected_per_stream) done = false;
      }
      if (!done) std::this_thread::yield();
    }
    svc.stop();

    for (std::size_t s = 0; s < n_streams; ++s) {
      ASSERT_EQ(got[s].size(), expected_per_stream)
          << "stream " << s << " at " << shards << " shards";
      expect_bit_identical(ref[s], got[s], mc.num_classes);
    }
  }
}

TEST(Serving, AffinityIsStableAndCoversShards) {
  const har::HarModelConfig mc = test_model_config();
  har::HarModel model(mc);
  ServingConfig cfg = test_serving_config();
  cfg.num_shards = 4;
  StreamingHarService svc(cfg, model);
  std::vector<std::size_t> per_shard(cfg.num_shards, 0);
  for (std::size_t s = 0; s < cfg.max_streams; ++s) {
    const std::size_t sid = svc.add_stream();
    const std::size_t shard = svc.shard_of_stream(sid);
    ASSERT_LT(shard, cfg.num_shards);
    // The assignment is the documented pure function of the stream id.
    EXPECT_EQ(shard, shard_for_key(sid, cfg.num_shards));
    ++per_shard[shard];
  }
  // 64 sequential ids through the splitmix64 finalizer land on every
  // shard (balance, not just coverage, is exercised by the bench).
  for (std::size_t i = 0; i < cfg.num_shards; ++i)
    EXPECT_GT(per_shard[i], 0u) << "shard " << i << " got no streams";
}

TEST(Serving, DeadlineDropsExpiredFrames) {
  const har::HarModelConfig mc = test_model_config();
  har::HarModel model(mc);
  ServingConfig cfg = test_serving_config();
  cfg.max_streams = 1;
  cfg.slo_ms = 200;
  StreamingHarService svc(cfg, model);
  const std::size_t sid = svc.add_stream();

  // Fill the queue, then let every queued frame age past the SLO: the
  // cycle must consume them as deadline drops, not classify them.
  const std::vector<dsp::RadarCube> stale = random_frames(cfg.queue_depth, 31);
  for (const dsp::RadarCube& f : stale) ASSERT_TRUE(svc.submit_frame(sid, f));
  std::this_thread::sleep_for(std::chrono::milliseconds(250));
  EXPECT_EQ(svc.run_cycle(), cfg.queue_depth);  // consumed, all expired
  StreamStats st = svc.stream_stats(sid);
  EXPECT_EQ(st.deadline_dropped, cfg.queue_depth);
  EXPECT_EQ(st.classifications, 0u);
  EXPECT_EQ(svc.shard_stats(0).deadline_dropped, cfg.queue_depth);
  EXPECT_EQ(svc.shard_stats(0).frames, 0u);  // nothing was processed

  // Fresh frames still flow: the window starts clean (expired frames
  // never reached the DSP stage, so they contributed nothing).
  const std::vector<dsp::RadarCube> fresh = random_frames(mc.frames + 1, 32);
  std::array<Classification, 8> buf;
  std::size_t got = 0;
  for (const dsp::RadarCube& f : fresh) {
    ASSERT_TRUE(svc.submit_frame(sid, f));
    svc.run_cycle();
    got += svc.poll(sid, std::span<Classification>(buf));
  }
  EXPECT_EQ(got, 2u);  // frames+1 submissions -> 2 windows
  st = svc.stream_stats(sid);
  EXPECT_EQ(st.deadline_dropped, cfg.queue_depth);  // no new drops
  EXPECT_EQ(st.classifications, 2u);
}

TEST(Serving, SloZeroDisablesDeadlines) {
  const har::HarModelConfig mc = test_model_config();
  har::HarModel model(mc);
  ServingConfig cfg = test_serving_config();
  cfg.max_streams = 1;
  cfg.slo_ms = 0;  // default: pure FIFO, frames never expire
  StreamingHarService svc(cfg, model);
  const std::size_t sid = svc.add_stream();
  const std::vector<dsp::RadarCube> frames = random_frames(cfg.queue_depth, 33);
  for (const dsp::RadarCube& f : frames) ASSERT_TRUE(svc.submit_frame(sid, f));
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_EQ(svc.run_cycle(), cfg.queue_depth);
  const StreamStats st = svc.stream_stats(sid);
  EXPECT_EQ(st.deadline_dropped, 0u);
  EXPECT_EQ(svc.shard_stats(0).frames, cfg.queue_depth);
}

TEST(Serving, DeepestQueueWatermark) {
  const har::HarModelConfig mc = test_model_config();
  har::HarModel model(mc);
  ServingConfig cfg = test_serving_config();
  cfg.max_streams = 1;
  StreamingHarService svc(cfg, model);
  const std::size_t sid = svc.add_stream();
  EXPECT_EQ(svc.stream_stats(sid).deepest_queue, 0u);

  const std::vector<dsp::RadarCube> frames = random_frames(8, 34);
  ASSERT_TRUE(svc.submit_frame(sid, frames[0]));
  ASSERT_TRUE(svc.submit_frame(sid, frames[1]));
  EXPECT_EQ(svc.stream_stats(sid).deepest_queue, 2u);
  svc.run_cycle();
  // Draining doesn't lower the high-watermark, and a shallower refill
  // doesn't raise it.
  ASSERT_TRUE(svc.submit_frame(sid, frames[2]));
  EXPECT_EQ(svc.stream_stats(sid).deepest_queue, 2u);
  svc.run_cycle();
  for (std::size_t i = 3; i < 3 + cfg.queue_depth; ++i)
    ASSERT_TRUE(svc.submit_frame(sid, frames[i]));
  EXPECT_EQ(svc.stream_stats(sid).deepest_queue, cfg.queue_depth);
}

// Multi-model A/B: streams keyed to a second registered model must
// classify bit-identically to a single-model service built on that model
// alone — per-model micro-batch grouping cannot leak across versions.
TEST(Serving, MultiModelAbRouting) {
  const har::HarModelConfig mc = test_model_config();
  har::HarModel clean(mc);
  har::HarModelConfig mcb = mc;
  mcb.seed = 1234;  // same architecture, different weights ("backdoored")
  har::HarModel backdoored(mcb);

  const std::size_t n_streams = 6;
  const std::size_t n_frames = mc.frames + 4;
  std::vector<std::vector<dsp::RadarCube>> frames;
  for (std::size_t s = 0; s < n_streams; ++s)
    frames.push_back(random_frames(n_frames, 9000 + s));

  // References: every stream served by one single-model service each.
  const auto ref_clean = run_all_streams_manual(clean, test_serving_config(),
                                                1, frames);
  const auto ref_back = run_all_streams_manual(
      backdoored, test_serving_config(), 1, frames);

  // A/B service: even streams on the clean model, odd on the backdoored
  // one, two shards so model grouping and shard grouping compose.
  ServingConfig cfg = test_serving_config();
  cfg.max_streams = n_streams;
  cfg.num_shards = 2;
  StreamingHarService svc(cfg, clean);
  const std::size_t backdoored_id = svc.add_model(backdoored);
  EXPECT_EQ(backdoored_id, 1u);
  EXPECT_EQ(svc.num_models(), 2u);
  std::vector<std::size_t> sids(n_streams);
  for (std::size_t s = 0; s < n_streams; ++s)
    sids[s] = svc.add_stream(s % 2 == 0 ? 0 : backdoored_id);

  std::vector<std::vector<Classification>> got(n_streams);
  std::array<Classification, 16> buf;
  for (std::size_t i = 0; i < n_frames; ++i) {
    for (std::size_t s = 0; s < n_streams; ++s)
      ASSERT_TRUE(svc.submit_frame(sids[s], frames[s][i]));
    svc.run_cycle();
    for (std::size_t s = 0; s < n_streams; ++s) {
      const std::size_t n = svc.poll(sids[s], std::span<Classification>(buf));
      got[s].insert(got[s].end(), buf.begin(), buf.begin() + n);
    }
  }
  for (std::size_t s = 0; s < n_streams; ++s) {
    const auto& ref = s % 2 == 0 ? ref_clean[s] : ref_back[s];
    ASSERT_EQ(got[s].size(), n_frames - mc.frames + 1) << "stream " << s;
    expect_bit_identical(ref, got[s], mc.num_classes);
  }
}

TEST(Serving, MultiModelValidation) {
  const har::HarModelConfig mc = test_model_config();
  har::HarModel model(mc);
  ServingConfig cfg = test_serving_config();
  StreamingHarService svc(cfg, model);

  // Architecture mismatch is refused (seed is the only fungible field).
  har::HarModelConfig other = mc;
  other.num_classes = mc.num_classes + 1;
  har::HarModel wrong(other);
  EXPECT_THROW(svc.add_model(wrong), Error);

  // Unknown model id at add_stream is refused.
  EXPECT_THROW(svc.add_stream(1), Error);

  // Registration is setup-phase only: once workers run, the registry is
  // read lock-free and must not change.
  har::HarModelConfig sameb = mc;
  sameb.seed = 77;
  har::HarModel same(sameb);
  svc.start();
  EXPECT_THROW(svc.add_model(same), Error);
  svc.stop();
  EXPECT_EQ(svc.add_model(same), 1u);  // legal again after stop()
}

// Zero steady-state allocation must survive the sharded, multi-model
// configuration: every shard owns preallocated arenas and the per-model
// gather/scatter reuses them.
TEST(Serving, SteadyStateIsAllocationFreeShardedMultiModel) {
  const har::HarModelConfig mc = test_model_config();
  har::HarModel clean(mc);
  har::HarModelConfig mcb = mc;
  mcb.seed = 4321;
  har::HarModel backdoored(mcb);
  ServingConfig cfg = test_serving_config();
  cfg.max_streams = 4;
  cfg.num_shards = 2;
  cfg.slo_ms = 1000;  // deadline path armed (nothing actually expires)
  StreamingHarService svc(cfg, clean);
  const std::size_t b = svc.add_model(backdoored);
  std::vector<std::size_t> sids;
  for (std::size_t s = 0; s < cfg.max_streams; ++s)
    sids.push_back(svc.add_stream(s % 2 == 0 ? 0 : b));

  const std::size_t warm = mc.frames + 2;
  const std::size_t steady = 16;
  std::vector<std::vector<dsp::RadarCube>> frames;
  for (std::size_t s = 0; s < cfg.max_streams; ++s)
    frames.push_back(random_frames(warm + steady, 600 + s));

  std::array<Classification, 8> buf;
  for (std::size_t i = 0; i < warm; ++i) {
    for (std::size_t s = 0; s < cfg.max_streams; ++s)
      ASSERT_TRUE(svc.submit_frame(sids[s], frames[s][i]));
    svc.run_cycle();
    for (std::size_t s = 0; s < cfg.max_streams; ++s)
      svc.poll(sids[s], std::span<Classification>(buf));
  }
  ASSERT_GT(svc.stream_stats(sids[0]).classifications, 0u);
  ASSERT_GT(svc.stream_stats(sids[1]).classifications, 0u);

  const std::uint64_t before = alloc_count();
  for (std::size_t i = warm; i < warm + steady; ++i) {
    for (std::size_t s = 0; s < cfg.max_streams; ++s)
      ASSERT_TRUE(svc.submit_frame(sids[s], frames[s][i]));
    svc.run_cycle();
    for (std::size_t s = 0; s < cfg.max_streams; ++s)
      svc.poll(sids[s], std::span<Classification>(buf));
  }
  EXPECT_EQ(alloc_count() - before, 0u)
      << "sharded multi-model steady-state serving path allocated";
}

TEST(Serving, ShardStatsAccounting) {
  const har::HarModelConfig mc = test_model_config();
  har::HarModel model(mc);
  ServingConfig cfg = test_serving_config();
  cfg.max_streams = 8;
  cfg.num_shards = 2;
  StreamingHarService svc(cfg, model);
  std::vector<std::size_t> sids;
  for (std::size_t s = 0; s < cfg.max_streams; ++s)
    sids.push_back(svc.add_stream());

  const std::size_t n_frames = mc.frames + 2;
  std::vector<std::vector<dsp::RadarCube>> frames;
  for (std::size_t s = 0; s < cfg.max_streams; ++s)
    frames.push_back(random_frames(n_frames, 500 + s));
  std::array<Classification, 16> buf;
  for (std::size_t i = 0; i < n_frames; ++i) {
    for (std::size_t s = 0; s < cfg.max_streams; ++s)
      ASSERT_TRUE(svc.submit_frame(sids[s], frames[s][i]));
    svc.run_cycle();
    for (std::size_t s = 0; s < cfg.max_streams; ++s)
      svc.poll(sids[s], std::span<Classification>(buf));
  }

  std::uint64_t shard_frames = 0;
  std::uint64_t shard_cls = 0;
  for (std::size_t i = 0; i < cfg.num_shards; ++i) {
    const ShardStats st = svc.shard_stats(i);
    EXPECT_GT(st.frames, 0u) << "shard " << i << " never claimed";
    EXPECT_GT(st.cycles, 0u);
    shard_frames += st.frames;
    shard_cls += st.classifications;
  }
  std::uint64_t accepted = 0;
  std::uint64_t cls = 0;
  for (std::size_t s = 0; s < cfg.max_streams; ++s) {
    const StreamStats st = svc.stream_stats(sids[s]);
    accepted += st.accepted;
    cls += st.classifications;
  }
  EXPECT_EQ(shard_frames, accepted);
  EXPECT_EQ(shard_cls, cls);
  EXPECT_THROW(svc.shard_stats(cfg.num_shards), Error);
}

// Background batcher + concurrent producers; primarily a TSan target.
TEST(Serving, ConcurrentProducersSmoke) {
  const har::HarModelConfig mc = test_model_config();
  har::HarModel model(mc);
  ServingConfig cfg = test_serving_config();
  cfg.max_streams = 4;
  StreamingHarService svc(cfg, model);
  std::vector<std::size_t> sids;
  for (std::size_t s = 0; s < cfg.max_streams; ++s)
    sids.push_back(svc.add_stream());
  svc.start();

  constexpr std::size_t kFramesPerStream = 24;
  std::vector<std::thread> producers;
  for (std::size_t s = 0; s < cfg.max_streams; ++s) {
    producers.emplace_back([&svc, &sids, s] {
      Rng rng(900 + s);
      for (std::size_t i = 0; i < kFramesPerStream; ++i)
        svc.submit_frame(sids[s], random_cube(rng));
    });
  }
  std::array<Classification, 16> buf;
  std::size_t polled = 0;
  for (int spins = 0; spins < 200; ++spins) {
    for (std::size_t s = 0; s < cfg.max_streams; ++s)
      polled += svc.poll(sids[s], std::span<Classification>(buf));
    std::this_thread::yield();
  }
  for (std::thread& t : producers) t.join();
  svc.stop();
  while (svc.run_cycle() > 0) {  // drain (manual pump is legal after stop)
  }

  for (std::size_t s = 0; s < cfg.max_streams; ++s) {
    const StreamStats st = svc.stream_stats(s);
    EXPECT_EQ(st.submitted, kFramesPerStream);
    EXPECT_EQ(st.accepted + st.rejected_frames, st.submitted);
  }

  // On a loaded single-core box the producers can outrun the batcher so
  // badly that no window ever fills during the threaded phase; finish
  // with a synchronous pumped phase so the classification assertions are
  // deterministic.
  Rng rng(1234);
  for (std::size_t i = 0; i < mc.frames; ++i) {
    const dsp::RadarCube cube = random_cube(rng);
    for (std::size_t s = 0; s < cfg.max_streams; ++s)
      ASSERT_TRUE(svc.submit_frame(sids[s], cube));
    svc.run_cycle();
  }
  std::uint64_t classified = 0;
  for (std::size_t s = 0; s < cfg.max_streams; ++s) {
    polled += svc.poll(sids[s], std::span<Classification>(buf));
    const StreamStats st = svc.stream_stats(s);
    classified += st.classifications;
  }
  EXPECT_GT(classified, 0u);
  EXPECT_GT(polled, 0u);

  // Restartable after stop().
  svc.start();
  svc.stop();
}

}  // namespace
}  // namespace mmhar::serving
