// Tests for the HAR system: model shapes and learning, generator
// determinism, dataset construction/caching, trainer, and metrics.
#include <gtest/gtest.h>

#include <filesystem>

#include "har/dataset.h"
#include "har/generator.h"
#include "har/metrics.h"
#include "har/model.h"
#include "har/trainer.h"
#include "nn/loss.h"
#include "nn/optimizer.h"

namespace mmhar::har {
namespace {

/// Small config so each simulated sample costs a few milliseconds.
GeneratorConfig tiny_generator_config() {
  GeneratorConfig gc;
  gc.num_frames = 8;
  gc.radar.num_samples = 64;
  // Halve the bandwidth so 16 range bins still cover the 0.8-2 m zone.
  gc.radar.bandwidth_hz = 1.0e9;
  gc.radar.num_chirps = 8;
  gc.radar.num_virtual_antennas = 8;
  gc.heatmap.range_bins = 16;
  gc.heatmap.angle_bins = 16;
  gc.environment = radar::EnvironmentKind::None;
  return gc;
}

HarModelConfig tiny_model_config() {
  HarModelConfig mc;
  mc.frames = 8;
  mc.height = 16;
  mc.width = 16;
  mc.conv1_channels = 4;
  mc.conv2_channels = 8;
  mc.feature_dim = 16;
  mc.lstm_hidden = 16;
  return mc;
}

TEST(HarModel, ForwardShapesAndDeterminism) {
  HarModel model(tiny_model_config());
  Rng rng(1);
  const Tensor batch = Tensor::rand_uniform({3, 8, 16, 16}, rng, 0.0F, 1.0F);
  const Tensor logits = model.forward(batch, false);
  EXPECT_EQ(logits.shape(), (std::vector<std::size_t>{3, 6}));
  const Tensor logits2 = model.forward(batch, false);
  for (std::size_t i = 0; i < logits.size(); ++i)
    EXPECT_EQ(logits[i], logits2[i]);
  EXPECT_THROW(model.forward(Tensor({3, 8, 16, 8}), false), InvalidArgument);
}

TEST(HarModel, SameSeedSameWeights) {
  HarModel a(tiny_model_config());
  HarModel b(tiny_model_config());
  const auto pa = a.parameters();
  const auto pb = b.parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i)
    for (std::size_t j = 0; j < pa[i]->size(); ++j)
      EXPECT_EQ((*pa[i])[j], (*pb[i])[j]);
}

TEST(HarModel, FrameFeaturesFeedClassifyFeatures) {
  HarModel model(tiny_model_config());
  Rng rng(2);
  const Tensor sample = Tensor::rand_uniform({8, 16, 16}, rng, 0.0F, 1.0F);
  const Tensor features = model.frame_features(sample);
  EXPECT_EQ(features.shape(), (std::vector<std::size_t>{8, 16}));
  const Tensor logits =
      model.classify_features(features.reshaped({1, 8, 16}));
  EXPECT_EQ(logits.shape(), (std::vector<std::size_t>{1, 6}));
  // Consistency: classify_features on the extracted features must equal
  // the full forward pass.
  const Tensor full = model.forward(sample.reshaped({1, 8, 16, 16}), false);
  for (std::size_t c = 0; c < 6; ++c)
    EXPECT_NEAR(full[c], logits[c], 1e-5F);
}

TEST(HarModel, PredictProbabilitiesSumToOne) {
  HarModel model(tiny_model_config());
  Rng rng(3);
  const Tensor sample = Tensor::rand_uniform({8, 16, 16}, rng, 0.0F, 1.0F);
  const Tensor probs = model.predict_probabilities(sample);
  EXPECT_EQ(probs.size(), 6u);
  float sum = 0.0F;
  for (const float p : probs.flat()) {
    EXPECT_GT(p, 0.0F);
    sum += p;
  }
  EXPECT_NEAR(sum, 1.0F, 1e-5F);
  EXPECT_EQ(model.predict(sample), probs.argmax());
}

TEST(HarModel, SaveLoadRoundTrip) {
  const std::string dir = "test_tmp_model";
  ensure_directory(dir);
  HarModelConfig mc = tiny_model_config();
  HarModel a(mc);
  a.save(dir + "/m.bin");
  mc.seed = 777;  // different init
  HarModel b(mc);
  b.load(dir + "/m.bin");
  Rng rng(4);
  const Tensor batch = Tensor::rand_uniform({2, 8, 16, 16}, rng, 0.0F, 1.0F);
  const Tensor ya = a.forward(batch, false);
  const Tensor yb = b.forward(batch, false);
  for (std::size_t i = 0; i < ya.size(); ++i) EXPECT_EQ(ya[i], yb[i]);
  std::filesystem::remove_all(dir);
}

TEST(HarModel, GradientsFlowThroughWholeStack) {
  HarModel model(tiny_model_config());
  Rng rng(5);
  const Tensor batch = Tensor::rand_uniform({2, 8, 16, 16}, rng, 0.0F, 1.0F);
  model.zero_gradients();
  const Tensor logits = model.forward(batch, true);
  const auto loss = nn::softmax_cross_entropy(logits, {0, 1});
  model.backward(loss.grad_logits);
  // Every parameter tensor should have received some gradient signal.
  std::size_t touched = 0;
  for (const Tensor* g : model.gradients())
    if (g->l2_norm() > 0.0F) ++touched;
  EXPECT_EQ(touched, model.gradients().size());
}

TEST(Generator, DeterministicPerSpec) {
  const SampleGenerator gen(tiny_generator_config());
  SampleSpec spec;
  spec.activity = mesh::Activity::LeftSwipe;
  const Tensor a = gen.generate(spec);
  const Tensor b = gen.generate(spec);
  ASSERT_TRUE(a.same_shape(b));
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  // Different repetition -> different sample.
  SampleSpec other = spec;
  other.repetition = 1;
  const Tensor c = gen.generate(other);
  EXPECT_GT(Tensor::l2_distance(a, c), 1e-3F);
}

TEST(Generator, OutputShapeAndRange) {
  const SampleGenerator gen(tiny_generator_config());
  SampleSpec spec;
  const Tensor hm = gen.generate(spec);
  EXPECT_EQ(hm.shape(), (std::vector<std::size_t>{8, 16, 16}));
  EXPECT_GE(hm.min(), 0.0F);
  EXPECT_LE(hm.max(), 1.0F);
  EXPECT_GT(hm.max(), 0.5F);  // normalized sequence peaks near 1
}

TEST(Generator, ActivitiesProduceDistinctHeatmaps) {
  const SampleGenerator gen(tiny_generator_config());
  SampleSpec push;
  push.activity = mesh::Activity::Push;
  SampleSpec swipe = push;
  swipe.activity = mesh::Activity::LeftSwipe;
  const Tensor a = gen.generate(push);
  const Tensor b = gen.generate(swipe);
  EXPECT_GT(Tensor::l2_distance(a, b), 1.0F);
}

TEST(Generator, TriggerChangesHeatmaps) {
  const SampleGenerator gen(tiny_generator_config());
  SampleSpec spec;
  const mesh::HumanBody body(mesh::BodyParams::participant(0));
  TriggerPlacement tp;
  tp.local_position = body.anchor_position(mesh::BodyAnchor::Chest);
  const Tensor clean = gen.generate(spec);
  const Tensor triggered = gen.generate(spec, &tp);
  EXPECT_GT(Tensor::l2_distance(clean, triggered), 0.5F);
}

TEST(Generator, CubesMatchConfiguredDims) {
  const auto gc = tiny_generator_config();
  const SampleGenerator gen(gc);
  const auto cubes = gen.generate_cubes(SampleSpec{});
  ASSERT_EQ(cubes.size(), gc.num_frames);
  EXPECT_EQ(cubes[0].num_chirps(), gc.radar.num_chirps);
  EXPECT_EQ(cubes[0].num_antennas(), gc.radar.num_virtual_antennas);
  EXPECT_EQ(cubes[0].num_samples(), gc.radar.num_samples);
}

TEST(Dataset, AddValidatesAndIndexes) {
  Dataset ds;
  ds.set_num_classes(6);
  Sample s;
  s.heatmaps = Tensor({2, 4, 4});
  s.label = 3;
  ds.add(s);
  s.label = 3;
  ds.add(s);
  s.label = 1;
  ds.add(s);
  EXPECT_EQ(ds.size(), 3u);
  EXPECT_EQ(ds.indices_of_label(3), (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(ds.indices_of_label(5).size(), 0u);
  s.label = 9;
  EXPECT_THROW(ds.add(s), InvalidArgument);
  Sample bad;
  bad.heatmaps = Tensor({3, 4, 4});
  bad.label = 0;
  EXPECT_THROW(ds.add(bad), InvalidArgument);  // shape mismatch
}

TEST(Dataset, BatchAssembly) {
  Dataset ds;
  ds.set_num_classes(6);
  for (std::size_t i = 0; i < 4; ++i) {
    Sample s;
    s.heatmaps = Tensor::full({2, 3, 3}, static_cast<float>(i));
    s.label = i % 6;
    ds.add(std::move(s));
  }
  const Tensor batch = ds.batch_of({3, 1});
  EXPECT_EQ(batch.shape(), (std::vector<std::size_t>{2, 2, 3, 3}));
  EXPECT_FLOAT_EQ(batch[0], 3.0F);
  EXPECT_FLOAT_EQ(batch[18], 1.0F);
  EXPECT_EQ(ds.labels_of({3, 1}), (std::vector<std::size_t>{3, 1}));
}

TEST(Dataset, SaveLoadRoundTrip) {
  const std::string dir = "test_tmp_dataset";
  ensure_directory(dir);
  Dataset ds;
  ds.set_num_classes(6);
  Rng rng(6);
  for (int i = 0; i < 3; ++i) {
    Sample s;
    s.heatmaps = Tensor::rand_uniform({2, 4, 4}, rng, 0.0F, 1.0F);
    s.label = static_cast<std::size_t>(i);
    s.spec.participant = i;
    s.spec.distance_m = 1.0 + i;
    ds.add(std::move(s));
  }
  ds.save(dir + "/d.ds");
  const Dataset loaded = Dataset::load(dir + "/d.ds");
  ASSERT_EQ(loaded.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(loaded.sample(i).label, ds.sample(i).label);
    EXPECT_EQ(loaded.sample(i).spec.participant,
              ds.sample(i).spec.participant);
    EXPECT_EQ(loaded.sample(i).spec.stream_seed(),
              ds.sample(i).spec.stream_seed());
    for (std::size_t j = 0; j < 32; ++j)
      EXPECT_EQ(loaded.sample(i).heatmaps[j], ds.sample(i).heatmaps[j]);
  }
  std::filesystem::remove_all(dir);
}

TEST(Dataset, GridGenerationCoversConfig) {
  const SampleGenerator gen(tiny_generator_config());
  DatasetConfig dc;
  dc.participants = {0, 1};
  dc.distances_m = {1.0};
  dc.angles_deg = {0.0};
  dc.activities = {0, 2};
  dc.repetitions = 2;
  const Dataset ds = build_dataset(gen, dc);
  EXPECT_EQ(ds.size(), dc.total_samples());
  EXPECT_EQ(ds.size(), 8u);
  EXPECT_EQ(ds.indices_of_label(0).size(), 4u);
  EXPECT_EQ(ds.indices_of_label(2).size(), 4u);
  EXPECT_EQ(ds.indices_of_label(1).size(), 0u);
}

TEST(Dataset, CacheHitReturnsIdenticalData) {
  const std::string dir = "test_tmp_cache";
  std::filesystem::remove_all(dir);
  const SampleGenerator gen(tiny_generator_config());
  DatasetConfig dc;
  dc.participants = {0};
  dc.distances_m = {1.2};
  dc.angles_deg = {0.0};
  dc.activities = {0};
  const Dataset a = load_or_build_dataset(gen, dc, dir);
  const Dataset b = load_or_build_dataset(gen, dc, dir);  // cache hit
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    for (std::size_t j = 0; j < a.sample(i).heatmaps.size(); ++j)
      EXPECT_EQ(a.sample(i).heatmaps[j], b.sample(i).heatmaps[j]);
  // Exactly one cache file.
  std::size_t files = 0;
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    (void)e;
    ++files;
  }
  EXPECT_EQ(files, 1u);
  std::filesystem::remove_all(dir);
}

TEST(Trainer, LearnsTinySyntheticProblem) {
  // Synthetic dataset: class = which quadrant of the heatmap is lit.
  Dataset train;
  train.set_num_classes(6);
  Rng rng(7);
  for (std::size_t label = 0; label < 4; ++label) {
    for (int rep = 0; rep < 10; ++rep) {
      Sample s;
      s.heatmaps = Tensor::rand_uniform({8, 16, 16}, rng, 0.0F, 0.1F);
      const std::size_t oy = (label / 2) * 8;
      const std::size_t ox = (label % 2) * 8;
      for (std::size_t f = 0; f < 8; ++f)
        for (std::size_t y = 0; y < 8; ++y)
          for (std::size_t x = 0; x < 8; ++x)
            s.heatmaps[(f * 16 + oy + y) * 16 + ox + x] += 0.8F;
      s.label = label;
      train.add(std::move(s));
    }
  }
  HarModel model(tiny_model_config());
  TrainConfig tc;
  tc.epochs = 12;
  tc.batch_size = 8;
  tc.seed = 3;
  const TrainHistory history = train_model(model, train, tc);
  EXPECT_EQ(history.epochs.size(), 12u);
  EXPECT_GT(history.epochs.back().accuracy, 0.95F);
  EXPECT_LT(history.epochs.back().loss, history.epochs.front().loss);
  EXPECT_GT(evaluate_accuracy(model, train), 0.95F);
}

TEST(Trainer, ValidationSplitReported) {
  Dataset train;
  train.set_num_classes(6);
  Rng rng(8);
  for (int i = 0; i < 20; ++i) {
    Sample s;
    s.heatmaps = Tensor::rand_uniform({8, 16, 16}, rng, 0.0F, 1.0F);
    s.label = static_cast<std::size_t>(i % 2);
    train.add(std::move(s));
  }
  HarModel model(tiny_model_config());
  TrainConfig tc;
  tc.epochs = 2;
  tc.validation_fraction = 0.25;
  const TrainHistory h = train_model(model, train, tc);
  EXPECT_GE(h.final_validation_accuracy(), 0.0F);
  EXPECT_LE(h.final_validation_accuracy(), 1.0F);
}

TEST(Trainer, DeterministicGivenSeeds) {
  Dataset train;
  train.set_num_classes(6);
  Rng rng(9);
  for (int i = 0; i < 12; ++i) {
    Sample s;
    s.heatmaps = Tensor::rand_uniform({8, 16, 16}, rng, 0.0F, 1.0F);
    s.label = static_cast<std::size_t>(i % 3);
    train.add(std::move(s));
  }
  TrainConfig tc;
  tc.epochs = 3;
  HarModel a(tiny_model_config());
  HarModel b(tiny_model_config());
  train_model(a, train, tc);
  train_model(b, train, tc);
  const Tensor batch = train.batch_of({0, 5});
  const Tensor ya = a.forward(batch, false);
  const Tensor yb = b.forward(batch, false);
  for (std::size_t i = 0; i < ya.size(); ++i) EXPECT_EQ(ya[i], yb[i]);
}

TEST(ConfusionMatrix, CountsAndDerivedStats) {
  ConfusionMatrix cm(3);
  cm.add(0, 0);
  cm.add(0, 0);
  cm.add(0, 1);
  cm.add(1, 1);
  cm.add(2, 2);
  cm.add(2, 0);
  EXPECT_EQ(cm.total(), 6u);
  EXPECT_EQ(cm.count(0, 1), 1u);
  EXPECT_NEAR(cm.accuracy(), 4.0 / 6.0, 1e-12);
  const auto recall = cm.per_class_recall();
  EXPECT_NEAR(recall[0], 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(recall[1], 1.0, 1e-12);
  const auto precision = cm.per_class_precision();
  EXPECT_NEAR(precision[0], 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(precision[1], 0.5, 1e-12);
  EXPECT_THROW(cm.add(3, 0), InvalidArgument);
  const std::string table = cm.to_string({"a", "b", "c"});
  EXPECT_NE(table.find("accuracy"), std::string::npos);
  EXPECT_NE(table.find("a"), std::string::npos);
}

}  // namespace
}  // namespace mmhar::har
