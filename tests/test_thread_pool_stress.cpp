// ThreadPool stress tests.
//
// These exist to run under -fsanitize=thread in CI (see the sanitizer
// matrix): lots of small parallel_fors under contention, nested calls from
// inside workers (guarding the PR-1 nested-inline fix against regression),
// concurrent external callers sharing one pool, and exception hand-off.
// Assertions are on results; TSan asserts the absence of races.

#include <atomic>
#include <cstddef>
#include <numeric>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"

namespace mmhar {
namespace {

TEST(ThreadPoolStress, ManySmallParallelForsProduceExactResults) {
  ThreadPool pool(4);
  set_global_pool_for_testing(&pool);
  for (std::size_t round = 0; round < 200; ++round) {
    const std::size_t n = 1 + round % 17;  // deliberately tiny ranges
    std::vector<std::size_t> out(n, 0);
    pool.parallel_for(0, n, [&](std::size_t i) { out[i] = i * i; });
    for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(out[i], i * i);
  }
  set_global_pool_for_testing(nullptr);
}

TEST(ThreadPoolStress, NestedParallelForFromWorkersRunsInlineAndCompletes) {
  ThreadPool pool(3);
  set_global_pool_for_testing(&pool);
  const std::size_t outer = 64;
  const std::size_t inner = 32;
  std::vector<std::size_t> out(outer * inner, 0);
  // Each outer index issues a nested parallel_for. On a worker thread the
  // nested call must run inline (a fixed-size pool has no free thread to
  // take the nested chunks); if that fix regresses, this test deadlocks
  // and the ctest TIMEOUT kills it.
  pool.parallel_for(0, outer, [&](std::size_t i) {
    parallel_for(0, inner, [&, i](std::size_t j) {
      out[i * inner + j] = i + j;
    });
  });
  for (std::size_t i = 0; i < outer; ++i)
    for (std::size_t j = 0; j < inner; ++j)
      ASSERT_EQ(out[i * inner + j], i + j);
  set_global_pool_for_testing(nullptr);
}

TEST(ThreadPoolStress, DoublyNestedCallsComplete) {
  ThreadPool pool(2);
  set_global_pool_for_testing(&pool);
  std::atomic<std::size_t> total{0};
  pool.parallel_for(0, 8, [&](std::size_t) {
    parallel_for(0, 8, [&](std::size_t) {
      parallel_for(0, 8, [&](std::size_t) {
        total.fetch_add(1, std::memory_order_relaxed);
      });
    });
  });
  EXPECT_EQ(total.load(), 8u * 8u * 8u);
  set_global_pool_for_testing(nullptr);
}

TEST(ThreadPoolStress, ConcurrentExternalCallersShareOnePool) {
  // Several plain std::threads hammer the same pool with small
  // parallel_fors; every call has independent join state, so they must
  // interleave freely without cross-talk.
  ThreadPool pool(4);
  const std::size_t callers = 6;
  const std::size_t rounds = 50;
  std::vector<long> sums(callers, 0);
  std::vector<std::thread> threads;
  threads.reserve(callers);
  for (std::size_t t = 0; t < callers; ++t) {
    threads.emplace_back([&pool, &sums, t] {
      for (std::size_t r = 0; r < rounds; ++r) {
        const std::size_t n = 1 + (t + r) % 23;
        std::vector<long> buf(n, 0);
        pool.parallel_for(0, n, [&buf](std::size_t i) {
          buf[i] = static_cast<long>(i) + 1;
        });
        sums[t] += std::accumulate(buf.begin(), buf.end(), 0L);
      }
    });
  }
  for (auto& th : threads) th.join();
  for (std::size_t t = 0; t < callers; ++t) {
    long expected = 0;
    for (std::size_t r = 0; r < rounds; ++r) {
      const long n = static_cast<long>(1 + (t + r) % 23);
      expected += n * (n + 1) / 2;
    }
    EXPECT_EQ(sums[t], expected) << "caller " << t;
  }
}

TEST(ThreadPoolStress, PerChunkAccumulatorsCombineExactly) {
  // The race-free accumulation pattern parallel-ref-accum (mmhar_lint)
  // pushes users toward: one partial per chunk, combined after the join.
  ThreadPool pool(4);
  const std::size_t n = 10000;
  const std::size_t chunks = pool.size() + 1;
  std::vector<long> partial(chunks, 0);
  std::atomic<std::size_t> next_slot{0};
  pool.parallel_for_chunked(0, n, [&](std::size_t lo, std::size_t hi) {
    const std::size_t slot = next_slot.fetch_add(1);
    ASSERT_LT(slot, partial.size());
    long acc = 0;
    for (std::size_t i = lo; i < hi; ++i) acc += static_cast<long>(i);
    partial[slot] = acc;
  });
  const long total = std::accumulate(partial.begin(), partial.end(), 0L);
  EXPECT_EQ(total, static_cast<long>(n) * (n - 1) / 2);
}

TEST(ThreadPoolStress, WorkerExceptionReachesCallerUnderContention) {
  ThreadPool pool(4);
  for (int round = 0; round < 25; ++round) {
    try {
      pool.parallel_for(0, 64, [&](std::size_t i) {
        if (i == 37) throw std::runtime_error("boom");
      });
      FAIL() << "expected the worker exception to be rethrown";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "boom");
    }
  }
}

TEST(ThreadPoolStress, PoolConstructionTeardownChurn) {
  // Construction/teardown is the other hand-off TSan should vet: workers
  // parked in cv_.wait must observe stop_ and drain cleanly.
  for (int round = 0; round < 30; ++round) {
    ThreadPool pool(1 + round % 5);
    std::atomic<int> hits{0};
    pool.parallel_for(0, 16, [&](std::size_t) {
      hits.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(hits.load(), 16);
  }
}

}  // namespace
}  // namespace mmhar
