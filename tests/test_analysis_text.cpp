// Direct unit tests for tools/analysis_text.h — the text-processing layer
// every static-analysis binary (mmhar_lint, mmhar_analyze, mmhar_rtcheck)
// is built on. The subprocess fixture tests exercise these helpers
// end-to-end; here each helper's contract is pinned down in isolation so
// a regression is reported at the helper, not as a mystery diff in some
// tool's findings.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "analysis_text.h"

namespace {

namespace fs = std::filesystem;
using mmhar_tools::blank_template_args;
using mmhar_tools::code_keeping_strings;
using mmhar_tools::code_only;
using mmhar_tools::collect_sources;
using mmhar_tools::display_path;
using mmhar_tools::is_suppressed;
using mmhar_tools::read_lines;
using mmhar_tools::suppression_allows;
using mmhar_tools::trim;

TEST(CodeOnly, StripsLineCommentsAndBlanksStringContents) {
  bool in_block = false;
  const std::string out =
      code_only("x = \"new int\"; // naked new here", in_block);
  EXPECT_EQ(out.find("new"), std::string::npos) << out;
  EXPECT_EQ(out.find("naked"), std::string::npos) << out;
  // Positions survive: the statement's structure is intact.
  EXPECT_NE(out.find("x ="), std::string::npos) << out;
  EXPECT_NE(out.find(';'), std::string::npos) << out;
  EXPECT_FALSE(in_block);
}

TEST(CodeOnly, BlockCommentStateCarriesAcrossLines) {
  bool in_block = false;
  EXPECT_EQ(trim(code_only("a(); /* begin", in_block)), "a();");
  EXPECT_TRUE(in_block);
  EXPECT_EQ(trim(code_only("still a comment: new int[4];", in_block)), "");
  EXPECT_TRUE(in_block);
  EXPECT_EQ(trim(code_only("end */ b();", in_block)), "b();");
  EXPECT_FALSE(in_block);
}

TEST(CodeOnly, CharLiteralContentIsBlanked) {
  bool in_block = false;
  const std::string out = code_only("if (c == '{') depth++;", in_block);
  EXPECT_EQ(out.find('{'), std::string::npos) << out;
  EXPECT_NE(out.find("depth++"), std::string::npos) << out;
}

TEST(CodeKeepingStrings, LiteralsSurviveButCommentsDie) {
  bool in_block = false;
  const std::string out = code_keeping_strings(
      "env_int(\"MMHAR_KNOB\", 3); // getenv(\"MMHAR_FAKE\")", in_block);
  EXPECT_NE(out.find("\"MMHAR_KNOB\""), std::string::npos) << out;
  EXPECT_EQ(out.find("MMHAR_FAKE"), std::string::npos) << out;
}

TEST(Trim, BothEndsAndAllWhitespaceCases) {
  EXPECT_EQ(trim("  a b \t"), "a b");
  EXPECT_EQ(trim("\t\n  "), "");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(BlankTemplateArgs, NestedArgumentsAreBlanked) {
  const std::string out =
      blank_template_args("std::vector<std::pair<int, int>> v;");
  EXPECT_EQ(out.find("pair"), std::string::npos) << out;
  EXPECT_NE(out.find("std::vector<"), std::string::npos) << out;
  EXPECT_NE(out.find("> v;"), std::string::npos) << out;
  EXPECT_EQ(out.size(), std::string("std::vector<std::pair<int, int>> v;")
                            .size());
}

TEST(BlankTemplateArgs, ArrowOperatorDoesNotCloseAList) {
  // `->` must not be treated as a template close, and a '<' not preceded
  // by an identifier never opens one.
  const std::string in = "p->next < q->prev;";
  EXPECT_EQ(blank_template_args(in), in);
}

TEST(IsSuppressed, SameLineAndLineAboveOnly) {
  const std::vector<std::string> lines = {
      "// mmhar-lint: allow(loop-alloc) grow-once",  // 0
      "std::vector<int> v;",                         // 1
      "std::vector<int> w;",                         // 2
      "int z; // mmhar-lint: allow(banned-rng)",     // 3
  };
  EXPECT_TRUE(is_suppressed(lines, 1, "mmhar-lint", "loop-alloc"));
  EXPECT_FALSE(is_suppressed(lines, 2, "mmhar-lint", "loop-alloc"));
  EXPECT_TRUE(is_suppressed(lines, 3, "mmhar-lint", "banned-rng"));
  EXPECT_FALSE(is_suppressed(lines, 1, "mmhar-lint", "naked-alloc"));
  EXPECT_FALSE(is_suppressed(lines, 1, "mmhar-rtcheck", "loop-alloc"));
}

TEST(SuppressionAllows, CommaListMatchesEachRuleExactly) {
  const std::vector<std::string> lines = {
      "// mmhar-rtcheck: allow(alloc, lock) — justified",  // 0
      "new int[4];",                                        // 1
  };
  EXPECT_TRUE(suppression_allows(lines, 1, "mmhar-rtcheck", "alloc"));
  EXPECT_TRUE(suppression_allows(lines, 1, "mmhar-rtcheck", "lock"));
  EXPECT_FALSE(suppression_allows(lines, 1, "mmhar-rtcheck", "block"));
  // Substrings must not match: "loc" is not "lock" or "alloc".
  EXPECT_FALSE(suppression_allows(lines, 1, "mmhar-rtcheck", "loc"));
}

TEST(SuppressionAllows, ScansUpThroughARunOfCommentLines) {
  const std::vector<std::string> lines = {
      "// mmhar-rtcheck: allow(throw) — one justification",  // 0
      "// covers this whole multi-line statement:",           // 1
      "throw Error(\"part one\"",                             // 2
      "            \"part two\");",                           // 3
  };
  EXPECT_TRUE(suppression_allows(lines, 2, "mmhar-rtcheck", "throw"));
  // Line 3 scans up: line 2 is code, not a comment — the run is broken
  // and the marker at line 0 is out of reach.
  EXPECT_FALSE(suppression_allows(lines, 3, "mmhar-rtcheck", "throw"));
}

TEST(SuppressionAllows, NonCommentLineBreaksTheUpwardScan) {
  const std::vector<std::string> lines = {
      "// mmhar-rtcheck: allow(alloc)",  // 0
      "int unrelated = 0;",              // 1
      "new int[4];",                     // 2
  };
  EXPECT_FALSE(suppression_allows(lines, 2, "mmhar-rtcheck", "alloc"));
}

TEST(ReadLines, MissingFileReturnsFalse) {
  std::vector<std::string> lines = {"sentinel"};
  EXPECT_FALSE(read_lines("/nonexistent/definitely_missing.cpp", lines));
  EXPECT_TRUE(lines.empty());  // cleared even on failure
}

TEST(CollectSources, SortedAndFilteredByExtension) {
  const fs::path root = fs::temp_directory_path() / "mmhar_analysis_text_test";
  fs::remove_all(root);
  fs::create_directories(root / "sub");
  for (const char* name : {"b.cpp", "a.h", "sub/c.cc", "notes.txt", "x.hpp"})
    std::ofstream(root / name) << "// stub\n";

  const auto files = collect_sources(root);
  ASSERT_EQ(files.size(), 4u);
  // Sorted on generic_string: deterministic regardless of readdir order.
  EXPECT_EQ(files[0].filename(), "a.h");
  EXPECT_EQ(files[1].filename(), "b.cpp");
  EXPECT_EQ(files[2].filename(), "c.cc");
  EXPECT_EQ(files[3].filename(), "x.hpp");
  fs::remove_all(root);
}

TEST(DisplayPath, PrefixedWithRootBasename) {
  EXPECT_EQ(display_path("src", "src/nn/conv.cpp"), "src/nn/conv.cpp");
  EXPECT_EQ(display_path("/abs/path/bench", "/abs/path/bench/b.cpp"),
            "bench/b.cpp");
}

}  // namespace
