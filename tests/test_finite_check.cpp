// Tests for the opt-in NaN/Inf/denormal tripwires (common/finite_check.h)
// and their wiring into the pipeline stages.

#include <cmath>
#include <complex>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/finite_check.h"
#include "core/global_position.h"
#include "nn/activation.h"
#include "nn/dense.h"
#include "nn/sequential.h"
#include "tensor/tensor.h"
#include "xai/shapley.h"

namespace mmhar {
namespace {

class FiniteCheckTest : public ::testing::Test {
 protected:
  void SetUp() override { set_finite_checks_for_testing(1); }
  void TearDown() override { set_finite_checks_for_testing(-1); }
};

constexpr float kQNaN = std::numeric_limits<float>::quiet_NaN();
constexpr float kInf = std::numeric_limits<float>::infinity();

TEST_F(FiniteCheckTest, CleanBufferPasses) {
  const std::vector<float> v(256, 1.5F);
  EXPECT_NO_THROW(check_finite(std::span<const float>(v), "v", "test"));
}

TEST_F(FiniteCheckTest, EmptyBufferPasses) {
  EXPECT_NO_THROW(check_finite(std::span<const float>(), "empty", "test"));
}

TEST_F(FiniteCheckTest, NanIsReportedWithNameStageAndIndex) {
  std::vector<float> v(64, 0.25F);
  v[17] = kQNaN;
  v[40] = kQNaN;
  try {
    check_finite(std::span<const float>(v), "activations", "forward");
    FAIL() << "expected mmhar::Error";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("'forward'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("'activations'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("flat index 17"), std::string::npos) << msg;
    EXPECT_NE(msg.find("2 NaN"), std::string::npos) << msg;
  }
}

TEST_F(FiniteCheckTest, InfTripsForFloatAndDouble) {
  std::vector<float> f(8, 1.0F);
  f[3] = -kInf;
  EXPECT_THROW(check_finite(std::span<const float>(f), "f", "t"), Error);
  std::vector<double> d(8, 1.0);
  d[5] = std::numeric_limits<double>::infinity();
  EXPECT_THROW(check_finite(std::span<const double>(d), "d", "t"), Error);
}

TEST_F(FiniteCheckTest, ComplexBufferScansBothComponents) {
  std::vector<std::complex<float>> v(16, {1.0F, -1.0F});
  v[9] = {0.5F, kQNaN};  // imaginary part only
  try {
    check_finite(std::span<const std::complex<float>>(v), "spectra", "fft");
    FAIL() << "expected mmhar::Error";
  } catch (const Error& e) {
    // Interleaved scan: element 9's imaginary part is flat index 19.
    EXPECT_NE(std::string(e.what()).find("flat index 19"), std::string::npos)
        << e.what();
  }
}

TEST_F(FiniteCheckTest, IsolatedDenormalsAreTolerated) {
  std::vector<float> v(256, 1.0F);
  v[0] = std::numeric_limits<float>::denorm_min();
  v[100] = std::numeric_limits<float>::denorm_min() * 3.0F;
  EXPECT_NO_THROW(check_finite(std::span<const float>(v), "v", "t"));
}

TEST_F(FiniteCheckTest, DenormalStormTrips) {
  // More than kDenormalStormFraction of the buffer subnormal (and above
  // the absolute floor) => accumulator underflow, flagged.
  std::vector<float> v(256, std::numeric_limits<float>::denorm_min());
  try {
    check_finite(std::span<const float>(v), "acc", "t");
    FAIL() << "expected mmhar::Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("denormal storm"), std::string::npos)
        << e.what();
  }
}

TEST_F(FiniteCheckTest, SmallAllDenormalBufferIsBelowAbsoluteFloor) {
  std::vector<float> v(kDenormalStormMinCount - 1,
                       std::numeric_limits<float>::denorm_min());
  EXPECT_NO_THROW(check_finite(std::span<const float>(v), "v", "t"));
}

TEST_F(FiniteCheckTest, DisabledChecksAreNoOps) {
  set_finite_checks_for_testing(0);
  std::vector<float> v(8, kQNaN);
  EXPECT_NO_THROW(check_finite(std::span<const float>(v), "v", "t"));
}

// ---- Stage wiring ----------------------------------------------------------

TEST_F(FiniteCheckTest, SequentialForwardTripsOnNanInput) {
  nn::Sequential net;
  Rng rng(7);
  net.emplace<nn::Dense>(4, 3, rng);
  net.emplace<nn::ReLU>();
  Tensor bad({2, 4});
  bad[5] = kQNaN;
  EXPECT_THROW(net.forward(bad, /*training=*/false), Error);
  Tensor good({2, 4});
  EXPECT_NO_THROW(net.forward(good, /*training=*/false));
}

TEST_F(FiniteCheckTest, ExactShapleyTripsOnNonFiniteValueFunction) {
  const auto bad_value = [](const std::vector<bool>& mask) {
    double acc = 0.0;
    for (std::size_t i = 0; i < mask.size(); ++i)
      if (mask[i]) acc += 1.0;
    return mask[0] ? std::numeric_limits<double>::quiet_NaN() : acc;
  };
  EXPECT_THROW(xai::exact_shapley(3, bad_value), Error);
  const auto good_value = [](const std::vector<bool>& mask) {
    double acc = 0.0;
    for (std::size_t i = 0; i < mask.size(); ++i)
      if (mask[i]) acc += static_cast<double>(i + 1);
    return acc;
  };
  EXPECT_NO_THROW(xai::exact_shapley(3, good_value));
}

TEST_F(FiniteCheckTest, WeiszfeldCleanRunPassesUnderChecks) {
  const std::vector<mesh::Vec3> pts = {
      {0.0, 0.0, 0.0}, {1.0, 0.0, 0.0}, {0.0, 1.0, 0.0}, {1.0, 1.0, 0.0}};
  const std::vector<double> w = {1.0, 1.0, 1.0, 1.0};
  const auto median =
      core::weighted_geometric_median(pts, w, core::WeiszfeldOptions{});
  EXPECT_TRUE(std::isfinite(median.x));
  EXPECT_TRUE(std::isfinite(median.y));
  EXPECT_TRUE(std::isfinite(median.z));
}

}  // namespace
}  // namespace mmhar
