// Unit tests for the common substrate: RNG, hashing, serialization,
// thread pool, env parsing, logging, and the check macros.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <set>
#include <sstream>

#include "common/check.h"
#include "common/env.h"
#include "common/hash.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/serialize.h"
#include "common/thread_pool.h"

namespace mmhar {
namespace {

TEST(Check, ThrowsWithContext) {
  EXPECT_THROW(MMHAR_CHECK(1 == 2), Error);
  try {
    MMHAR_CHECK_MSG(false, "value was " << 42);
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("value was 42"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("test_common.cpp"),
              std::string::npos);
  }
}

TEST(Check, RequireThrowsInvalidArgument) {
  EXPECT_THROW(MMHAR_REQUIRE(false, "nope"), InvalidArgument);
  EXPECT_NO_THROW(MMHAR_REQUIRE(true, "fine"));
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
  for (int i = 0; i < 100; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(11);
  const int n = 20000;
  double sum = 0.0;
  double sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Rng, IndexUnbiasedOverSmallRange) {
  Rng rng(13);
  std::vector<int> counts(5, 0);
  const int n = 25000;
  for (int i = 0; i < n; ++i) ++counts[rng.index(5)];
  for (const int c : counts) EXPECT_NEAR(c, n / 5, n / 50);
}

TEST(Rng, IndexRejectsEmptyRange) {
  Rng rng(1);
  EXPECT_THROW(rng.index(0), InvalidArgument);
}

TEST(Rng, ForkStreamsAreIndependent) {
  Rng parent(42);
  Rng c1 = parent.fork(1);
  Rng c2 = parent.fork(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (c1.next_u64() == c2.next_u64()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, SampleWithoutReplacementIsDistinctAndInRange) {
  Rng rng(3);
  const auto sample = rng.sample_without_replacement(100, 30);
  EXPECT_EQ(sample.size(), 30u);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (const auto i : sample) EXPECT_LT(i, 100u);
  EXPECT_THROW(rng.sample_without_replacement(3, 4), InvalidArgument);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(5);
  std::vector<std::size_t> v{0, 1, 2, 3, 4, 5, 6, 7};
  auto orig = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Hasher, StableAndSensitive) {
  Hasher a;
  a.mix(1).mix(2.5).mix(std::string("x"));
  Hasher b;
  b.mix(1).mix(2.5).mix(std::string("x"));
  EXPECT_EQ(a.value(), b.value());
  Hasher c;
  c.mix(1).mix(2.5).mix(std::string("y"));
  EXPECT_NE(a.value(), c.value());
  EXPECT_EQ(a.hex().size(), 16u);
}

TEST(Hasher, OrderMatters) {
  Hasher a;
  a.mix(1).mix(2);
  Hasher b;
  b.mix(2).mix(1);
  EXPECT_NE(a.value(), b.value());
}

TEST(Serialize, RoundTripsAllTypes) {
  std::stringstream ss;
  {
    BinaryWriter w(ss);
    w.write_u32(0xDEADBEEF);
    w.write_u64(1234567890123ULL);
    w.write_i64(-77);
    w.write_f32(1.5F);
    w.write_f64(-2.25);
    w.write_string("hello world");
    w.write_f32_vec({1.0F, 2.0F, 3.0F});
    w.write_u64_vec({9, 8});
  }
  BinaryReader r(ss);
  EXPECT_EQ(r.read_u32(), 0xDEADBEEF);
  EXPECT_EQ(r.read_u64(), 1234567890123ULL);
  EXPECT_EQ(r.read_i64(), -77);
  EXPECT_EQ(r.read_f32(), 1.5F);
  EXPECT_EQ(r.read_f64(), -2.25);
  EXPECT_EQ(r.read_string(), "hello world");
  EXPECT_EQ(r.read_f32_vec(), (std::vector<float>{1.0F, 2.0F, 3.0F}));
  EXPECT_EQ(r.read_u64_vec(), (std::vector<std::uint64_t>{9, 8}));
}

TEST(Serialize, TruncationThrows) {
  std::stringstream ss;
  {
    BinaryWriter w(ss);
    w.write_u32(1);
  }
  BinaryReader r(ss);
  EXPECT_EQ(r.read_u32(), 1u);
  EXPECT_THROW(r.read_u64(), IoError);
}

TEST(Serialize, FileHelpers) {
  const std::string dir = "test_tmp_serialize";
  ensure_directory(dir);
  const std::string path = dir + "/file.bin";
  {
    auto os = open_for_write(path);
    BinaryWriter w(os);
    w.write_u32(7);
  }
  EXPECT_TRUE(file_exists(path));
  {
    auto is = open_for_read(path);
    BinaryReader r(is);
    EXPECT_EQ(r.read_u32(), 7u);
  }
  EXPECT_THROW(open_for_read(dir + "/missing.bin"), IoError);
  std::filesystem::remove_all(dir);
}

TEST(ThreadPool, ParallelForCoversRangeOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, 1000, [&](std::size_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(5, 5, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, PropagatesWorkerException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(0, 100,
                                 [&](std::size_t i) {
                                   if (i == 63) throw Error("boom");
                                 }),
               Error);
}

TEST(ThreadPool, ChunkedPartitionsAreContiguousAndDisjoint) {
  ThreadPool pool(3);
  std::mutex mu;
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  pool.parallel_for_chunked(10, 110, [&](std::size_t lo, std::size_t hi) {
    std::lock_guard<std::mutex> lk(mu);
    chunks.emplace_back(lo, hi);
  });
  std::sort(chunks.begin(), chunks.end());
  std::size_t expect = 10;
  for (const auto& [lo, hi] : chunks) {
    EXPECT_EQ(lo, expect);
    EXPECT_LT(lo, hi);
    expect = hi;
  }
  EXPECT_EQ(expect, 110u);
}

TEST(Env, ParsesAndFallsBack) {
  ::setenv("MMHAR_TEST_INT", "42", 1);
  EXPECT_EQ(env_int("MMHAR_TEST_INT", 7), 42);
  EXPECT_EQ(env_int("MMHAR_TEST_MISSING_INT", 7), 7);
  ::setenv("MMHAR_TEST_BAD", "4x2", 1);
  EXPECT_EQ(env_int("MMHAR_TEST_BAD", 9), 9);
  ::setenv("MMHAR_TEST_DBL", "2.5", 1);
  EXPECT_DOUBLE_EQ(env_double("MMHAR_TEST_DBL", 0.0), 2.5);
  ::setenv("MMHAR_TEST_STR", "abc", 1);
  EXPECT_EQ(env_string("MMHAR_TEST_STR", "zzz"), "abc");
  EXPECT_EQ(env_string("MMHAR_TEST_MISSING_STR", "zzz"), "zzz");
}

TEST(Logging, ThresholdFilters) {
  const LogLevel prev = log_threshold();
  set_log_threshold(LogLevel::Error);
  MMHAR_LOG(Info) << "should be suppressed";
  set_log_threshold(prev);
  SUCCEED();
}

}  // namespace
}  // namespace mmhar
