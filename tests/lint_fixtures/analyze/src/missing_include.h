#pragma once
#include <mutex>

struct FixtureGuarded {
  std::mutex mu;
  int value MMHAR_GUARDED_BY(mu) = 0;
};
