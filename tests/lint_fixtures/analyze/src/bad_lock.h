#pragma once
#include <mutex>

#include "common/thread_annotations.h"

struct FixtureCounter {
  std::mutex mu;
  int hits = 0;
  int safe MMHAR_GUARDED_BY(mu) = 0;
};
