#pragma once
namespace fixture {
inline int twice(int x) { return x + x; }
}  // namespace fixture
