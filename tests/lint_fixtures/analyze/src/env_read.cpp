long env_int(const char* name, long fallback);

long fixture_env_reads() {
  const long used = env_int("MMHAR_FIXTURE_USED", 0);
  const long undoc = env_int("MMHAR_FIXTURE_UNDOC", 0);
  const long rogue = env_int("MMHAR_FIXTURE_ROGUE", 0);
  const long test_exempt = env_int("MMHAR_TEST_ANYTHING", 0);
  return used + undoc + rogue + test_exempt;
}
