#pragma once
namespace fixture {
inline int twice(int x) { return 2 * x; }
}  // namespace fixture
