#pragma once
#include <mutex>

#include "common/thread_annotations.h"

struct FixtureSuppressed {
  std::mutex mu;
  // owned by the worker thread only. mmhar-analyze: allow(lock-annotation-coverage)
  int scratch = 0;
};
