// Fixture env registry for the env-knob-registry analyzer rule; the row
// line numbers are asserted by tests/test_static_analysis.cpp.
constexpr const char* kFixtureRows[][4] = {
    {"MMHAR_FIXTURE_USED", "int", "0", "documented and read"},
    {"MMHAR_FIXTURE_UNDOC", "int", "0", "read but missing from the readme"},
    {"MMHAR_FIXTURE_STALE", "int", "0", "documented but never read"},
};
