// mmhar_detcheck fixture: seeded determinism violations, asserted at exact
// (rule, file, line) with their call chains by
// tests/test_static_analysis.cpp. Scanned as text only — never compiled.
// Keep line numbers stable.
namespace fixture {

std::unordered_map<int, float> table;

int helper_nondet() {
  return std::rand();
}

int transitive_mid() { return helper_nondet(); }

int det_transitive() MMHAR_DETERMINISTIC;
int det_transitive() { return transitive_mid(); }

int det_unordered() MMHAR_DETERMINISTIC {
  int acc = 0;
  for (const auto& kv : table) acc += kv.first;
  auto it = table.begin();
  (void)it;
  return acc;
}

double det_clock() MMHAR_DETERMINISTIC {
  const auto t0 = std::chrono::steady_clock::now();
  return t0.time_since_epoch().count() * 1e-9;
}

int det_env() MMHAR_DETERMINISTIC {
  return env_int("MMHAR_FIXTURE_KNOB", 0);
}

float det_parallel(ThreadPool& pool, std::size_t n) MMHAR_DETERMINISTIC {
  float sum = 0.0F;
  pool.parallel_for(0, n, [&](std::size_t i) {
    sum += static_cast<float>(i);
  });
  return sum;
}

int det_suppressed() MMHAR_DETERMINISTIC {
  // MMHAR_DETCHECK_ALLOW(nondet-call) — fixture: waived on purpose
  return std::rand();
}

int lost_annotation() {
  return 7;
}

int never_reached_nondet() {
  return std::rand();
}

}  // namespace fixture
