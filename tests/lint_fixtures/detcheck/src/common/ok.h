#pragma once
// Same-module include target for the layering fixture (legal edge).
