#pragma once
// mmhar_detcheck layering fixture: common (rank 0) reaching up into
// serving (rank 6) must fail the layering rule. Never compiled.
#include "common/ok.h"
#include "serving/api.h"
