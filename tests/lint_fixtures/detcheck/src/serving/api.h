#pragma once
// Upward-include target for the layering fixture. Its own include of
// common/ (rank 0 from rank 6) is the legal downward direction and must
// stay silent.
#include "common/ok.h"
