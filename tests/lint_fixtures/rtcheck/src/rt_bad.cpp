// mmhar_rtcheck fixture: seeded real-time violations, asserted at exact
// (rule, file, line) with their call chains by tests/test_rtcheck.cpp.
// Scanned as text only — never compiled. Keep line numbers stable.
namespace fixture {

void helper_allocates() {
  int* p = new int[4];
  (void)p;
}

void transitive_mid() { helper_allocates(); }

void hot_transitive() MMHAR_REALTIME { transitive_mid(); }

void hot_growth(std::vector<float>& buf) MMHAR_REALTIME {
  buf.push_back(1.0F);
}

void hot_lock(Mutex& mu) MMHAR_REALTIME {
  MutexLock guard(mu);
}

void hot_raw_lock(std::mutex& m) MMHAR_REALTIME {
  std::lock_guard<std::mutex> g(m);
}

void hot_block() MMHAR_REALTIME {
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
}

void hot_pool(ThreadPool& pool, std::size_t n) MMHAR_REALTIME {
  // The dispatch itself is waived so the test can show the lambda body
  // is still charged to this function:
  // mmhar-rtcheck: allow(block) — fixture: dispatch waived on purpose
  pool.parallel_for(0, n, [&](std::size_t i) {
    double* q = new double[i + 1];
    (void)q;
  });
}

void hot_throw(int x) MMHAR_REALTIME {
  if (x < 0) throw 1;
}

void hot_env() MMHAR_REALTIME {
  const char* rogue = std::getenv("MMHAR_FIXTURE_ROGUE");
  const char* known = std::getenv("MMHAR_FIXTURE_KNOB");
  (void)rogue;
  (void)known;
}

void hot_suppressed() MMHAR_REALTIME {
  // Grow-once pattern, justified (comma list also covers the delete):
  // mmhar-rtcheck: allow(alloc, lock) — fixture: cold first-call growth
  float* w = new float[16];
  (void)w;
}

void cold_build() {
  long* t = new long[32];
  (void)t;
}

void hot_cold_call() MMHAR_REALTIME {
  // mmhar-rtcheck: allow(calls) — fixture: provably cold first-use path
  cold_build();
}

struct Service {
  void handoff_ok() MMHAR_REALTIME_HANDOFF {
    MutexLock guard(mu_);
  }
  int mu_ = 0;
};

void never_reached_alloc() {
  char* c = new char[8];
  (void)c;
}

}  // namespace fixture
