// mmhar_rtcheck fixture env registry — same row shape as the real
// src/common/env_registry.cpp; only the quoted first field is parsed.
namespace fixture {
const EnvRow kRows[] = {
    {"MMHAR_FIXTURE_KNOB", "registered fixture knob"},
};
}  // namespace fixture
