#include <cstdlib>

int fixture_allowed() {
  // seeded for the suppression test. mmhar-lint: allow(banned-rng)
  return rand();
}
