// Seeded mmhar_lint violations; every line number in this file is
// asserted by tests/test_static_analysis.cpp — renumber there if you
// edit here.
#include <cstdlib>
#include <fstream>
#include <vector>

struct FakePool {
  template <class F>
  void parallel_for(int, int, F) {}
};

void fixture_lint_bait(std::vector<float>& v) {
  int r = rand();
  float* p = new float[4];
  float* q = v.data() + 3;
  for (int i = 0; i < 4; ++i) {
    std::vector<int> scratch(4);
    scratch[0] = i;
  }
  std::ofstream out("cache.bin");
  out << *p << *q << r;
  delete[] p;
}

void fixture_race(FakePool& pool, double& total) {
  pool.parallel_for(0, 8, [&](int i) {
    total += i;
  });
}
