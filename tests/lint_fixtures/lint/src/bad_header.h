int fixture_missing_pragma_once = 0;
