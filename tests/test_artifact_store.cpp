// Durability tests for the artifact store, the fault injector, and the
// append-only journal: every classified failure mode (missing, version
// mismatch, corruption at any byte) and every injected fault site must
// land in a recoverable state — quarantine + regeneration, never a wedge.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "common/artifact_store.h"
#include "common/fault_injection.h"
#include "common/journal.h"
#include "common/serialize.h"

namespace mmhar {
namespace {

namespace fs = std::filesystem;

constexpr std::uint32_t kKind = 0x54534554;  // "TEST"
constexpr std::uint32_t kKindVersion = 3;

class ArtifactStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    FaultInjector::instance().clear();
  }
  void TearDown() override {
    FaultInjector::instance().clear();
    fs::remove_all(dir_);
  }

  std::string path(const std::string& name) const { return dir_ + "/" + name; }

  /// A small artifact with several field types so truncation can land in
  /// the middle of any of them.
  static void save_sample(const std::string& p,
                          std::uint32_t version = kKindVersion) {
    save_artifact(p, kKind, version, [](BinaryWriter& w) {
      w.write_u64(7);
      w.write_string("payload");
      w.write_f32_vec({1.0F, 2.0F, 3.0F});
      w.write_f64(0.25);
    });
  }

  static LoadResult load_sample(const std::string& p,
                                std::uint32_t version = kKindVersion) {
    return load_artifact(p, kKind, version, [](BinaryReader& r) {
      EXPECT_EQ(r.read_u64(), 7U);
      EXPECT_EQ(r.read_string(), "payload");
      EXPECT_EQ(r.read_f32_vec().size(), 3U);
      EXPECT_EQ(r.read_f64(), 0.25);
    });
  }

  std::string dir_ = "test_tmp_artifact_store";
};

TEST_F(ArtifactStoreTest, RoundTrip) {
  const std::string p = path("a.bin");
  save_sample(p);
  const LoadResult res = load_sample(p);
  EXPECT_TRUE(res.ok());
  EXPECT_EQ(res.status, LoadStatus::Ok);
  EXPECT_TRUE(res.quarantined_to.empty());
  // No temp residue from a clean save.
  EXPECT_FALSE(fs::exists(p + ".tmp"));
}

TEST_F(ArtifactStoreTest, MissingFileTouchesNothing) {
  const LoadResult res = load_sample(path("nope.bin"));
  EXPECT_EQ(res.status, LoadStatus::Missing);
  EXPECT_FALSE(fs::exists(path("nope.bin.corrupt")));
}

TEST_F(ArtifactStoreTest, VersionMismatchLeavesFileInPlace) {
  const std::string p = path("v.bin");
  save_sample(p, kKindVersion + 1);
  const LoadResult res = load_sample(p);
  EXPECT_EQ(res.status, LoadStatus::VersionMismatch);
  EXPECT_TRUE(fs::exists(p));  // a newer binary may still want it
  EXPECT_FALSE(fs::exists(p + ".corrupt"));
}

TEST_F(ArtifactStoreTest, TruncationAtEveryByteIsCorruptAndQuarantined) {
  const std::string ref = path("ref.bin");
  save_sample(ref);
  const auto full = fs::file_size(ref);
  ASSERT_GT(full, 0U);

  for (std::uintmax_t len = 0; len < full; ++len) {
    const std::string p = path("trunc.bin");
    fs::copy_file(ref, p, fs::copy_options::overwrite_existing);
    fs::resize_file(p, len);

    const LoadResult res = load_sample(p);
    EXPECT_EQ(res.status, LoadStatus::Corrupt) << "truncated to " << len;
    EXPECT_FALSE(fs::exists(p)) << "truncated to " << len;
    EXPECT_TRUE(fs::exists(p + ".corrupt")) << "truncated to " << len;

    // Regeneration at the same path must work immediately.
    save_sample(p);
    EXPECT_TRUE(load_sample(p).ok()) << "truncated to " << len;
    fs::remove(p);
    fs::remove(p + ".corrupt");
  }
}

TEST_F(ArtifactStoreTest, BitFlipAnywhereIsDetected) {
  const std::string ref = path("ref.bin");
  save_sample(ref);
  std::string bytes;
  {
    std::ifstream is(ref, std::ios::binary);
    std::ostringstream buf;
    buf << is.rdbuf();
    bytes = buf.str();
  }

  for (std::size_t byte = 0; byte < bytes.size(); ++byte) {
    const std::string p = path("flip.bin");
    std::string damaged = bytes;
    damaged[byte] ^= 0x10;
    {
      std::ofstream os(p, std::ios::binary | std::ios::trunc);
      os.write(damaged.data(), static_cast<std::streamsize>(damaged.size()));
    }
    const LoadResult res = load_sample(p);
    // A flip in the version fields reads as VersionMismatch; anywhere
    // else it must be Corrupt. Never Ok.
    EXPECT_FALSE(res.ok()) << "flipped byte " << byte;
    fs::remove(p);
    fs::remove(p + ".corrupt");
  }
}

TEST_F(ArtifactStoreTest, HostileLengthPrefixThrowsInsteadOfAllocating) {
  // A payload whose string length prefix claims ~2^60 bytes: the reader
  // must reject it against the remaining-byte budget, not allocate.
  const std::string p = path("hostile.bin");
  save_artifact(p, kKind, kKindVersion, [](BinaryWriter& w) {
    w.write_u64(0x1000000000000000ULL);  // read back as a string length
    w.write_u64(0);
  });
  const LoadResult res =
      load_artifact(p, kKind, kKindVersion, [](BinaryReader& r) {
        (void)r.read_string();
      });
  EXPECT_EQ(res.status, LoadStatus::Corrupt);
  EXPECT_NE(res.detail.find("deserialization"), std::string::npos);
}

TEST(BinaryReaderTest, LengthPrefixCappedByStreamBytes) {
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  BinaryWriter w(ss);
  w.write_u64(UINT64_MAX);  // hostile vector length
  BinaryReader r(ss);
  EXPECT_EQ(r.remaining(), sizeof(std::uint64_t));
  EXPECT_THROW((void)r.read_f32_vec(), IoError);
}

TEST(BinaryReaderTest, ExplicitLimitIsEnforced) {
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  BinaryWriter w(ss);
  w.write_u64(4);
  w.write_u32(0xAABBCCDD);
  BinaryReader r(ss, 8);  // only the length prefix is in budget
  EXPECT_THROW((void)r.read_f32_vec(), IoError);
}

TEST_F(ArtifactStoreTest, InjectedShortWriteLeavesFinalPathIntact) {
  const std::string p = path("short.bin");
  save_sample(p);  // good generation 1

  FaultInjector::instance().configure("artifact.short_write@1", 7);
  EXPECT_THROW(save_sample(p), IoError);
  FaultInjector::instance().clear();

  // Generation 1 is still readable; the next save replaces the temp.
  EXPECT_TRUE(load_sample(p).ok());
  save_sample(p);
  EXPECT_TRUE(load_sample(p).ok());
  EXPECT_FALSE(fs::exists(p + ".tmp"));
}

TEST_F(ArtifactStoreTest, InjectedRenameFailureLeavesNoResidue) {
  const std::string p = path("rename.bin");
  FaultInjector::instance().configure("artifact.rename_fail@1", 7);
  EXPECT_THROW(save_sample(p), IoError);
  FaultInjector::instance().clear();
  EXPECT_FALSE(fs::exists(p));
  EXPECT_FALSE(fs::exists(p + ".tmp"));
  save_sample(p);
  EXPECT_TRUE(load_sample(p).ok());
}

TEST_F(ArtifactStoreTest, InjectedTruncationCaughtOnLoad) {
  const std::string p = path("t.bin");
  FaultInjector::instance().configure("artifact.truncate@1", 7);
  save_sample(p);
  FaultInjector::instance().clear();
  const LoadResult res = load_sample(p);
  EXPECT_EQ(res.status, LoadStatus::Corrupt);
  EXPECT_TRUE(fs::exists(p + ".corrupt"));
}

TEST_F(ArtifactStoreTest, InjectedBitFlipCaughtOnLoad) {
  const std::string p = path("b.bin");
  FaultInjector::instance().configure("artifact.bitflip@1", 7);
  save_sample(p);
  FaultInjector::instance().clear();
  const LoadResult res = load_sample(p);
  EXPECT_EQ(res.status, LoadStatus::Corrupt);
  EXPECT_NE(res.detail.find("checksum"), std::string::npos);
}

TEST_F(ArtifactStoreTest, FaultInjectorIsDeterministic) {
  auto& fi = FaultInjector::instance();
  fi.configure("some.site=0.5", 1234);
  std::vector<bool> first;
  for (int i = 0; i < 64; ++i) first.push_back(fi.should_fire("some.site"));
  fi.configure("some.site=0.5", 1234);
  for (int i = 0; i < 64; ++i)
    EXPECT_EQ(fi.should_fire("some.site"), first[static_cast<std::size_t>(i)]);
  fi.clear();
  EXPECT_FALSE(fi.armed());
  EXPECT_FALSE(fault_should_fire("some.site"));
}

TEST_F(ArtifactStoreTest, NthCallRuleFiresExactlyOnce) {
  auto& fi = FaultInjector::instance();
  fi.configure("site.nth@3", 1);
  int fires = 0;
  for (int i = 0; i < 10; ++i)
    if (fi.should_fire("site.nth")) ++fires;
  EXPECT_EQ(fires, 1);
  EXPECT_EQ(fi.call_count("site.nth"), 10U);
  EXPECT_EQ(fi.fire_count("site.nth"), 1U);
  fi.clear();
}

TEST_F(ArtifactStoreTest, MalformedSpecThrows) {
  auto& fi = FaultInjector::instance();
  EXPECT_THROW(fi.configure("site@notanumber", 1), InvalidArgument);
  EXPECT_THROW(fi.configure("site=2.5", 1), InvalidArgument);
  EXPECT_FALSE(fi.armed());
}

TEST_F(ArtifactStoreTest, JournalRoundTripAndTornTail) {
  const std::string jp = path("j.jnl");
  {
    AppendJournal j(jp);
    EXPECT_TRUE(j.load().empty());  // missing file = empty journal
    j.append("alpha");
    j.append("beta");
    j.append("gamma");
  }
  {
    AppendJournal j(jp);
    const auto recs = j.load();
    ASSERT_EQ(recs.size(), 3U);
    EXPECT_EQ(recs[0], "alpha");
    EXPECT_EQ(recs[1], "beta");
    EXPECT_EQ(recs[2], "gamma");
  }

  // Tear the tail: chop bytes off the last record. load() must return
  // the intact prefix and truncate the tear away on disk.
  const auto full = fs::file_size(jp);
  fs::resize_file(jp, full - 3);
  {
    AppendJournal j(jp);
    const auto recs = j.load();
    ASSERT_EQ(recs.size(), 2U);
    EXPECT_EQ(recs[1], "beta");
    // Appending after a tear extends the valid prefix.
    j.append("delta");
    const auto again = j.load();
    ASSERT_EQ(again.size(), 3U);
    EXPECT_EQ(again[2], "delta");
  }
}

TEST_F(ArtifactStoreTest, JournalTornAtEveryByteKeepsIntactPrefix) {
  const std::string ref = path("ref.jnl");
  {
    AppendJournal j(ref);
    j.append("one");
    j.append("two");
  }
  const auto full = fs::file_size(ref);
  // Size of record one's frame on disk: magic + len + payload + checksum.
  const std::uintmax_t rec1 = 4 + 8 + 3 + 8;

  for (std::uintmax_t len = 0; len < full; ++len) {
    const std::string jp = path("torn.jnl");
    fs::copy_file(ref, jp, fs::copy_options::overwrite_existing);
    fs::resize_file(jp, len);
    AppendJournal j(jp);
    const auto recs = j.load();
    if (len < rec1) {
      EXPECT_TRUE(recs.empty()) << "torn at " << len;
    } else if (len < full) {
      ASSERT_EQ(recs.size(), 1U) << "torn at " << len;
      EXPECT_EQ(recs[0], "one");
    }
    fs::remove(jp);
  }
}

TEST_F(ArtifactStoreTest, JournalGarbageTailIsDropped) {
  const std::string jp = path("g.jnl");
  {
    AppendJournal j(jp);
    j.append("keep");
  }
  {
    std::ofstream os(jp, std::ios::binary | std::ios::app);
    os << "not a record at all";
  }
  AppendJournal j(jp);
  const auto recs = j.load();
  ASSERT_EQ(recs.size(), 1U);
  EXPECT_EQ(recs[0], "keep");
}

TEST_F(ArtifactStoreTest, QuarantineFallsBackGracefully) {
  EXPECT_EQ(quarantine_file(path("absent.bin")), "");
  const std::string p = path("q.bin");
  { std::ofstream os(p); os << "x"; }
  const std::string where = quarantine_file(p);
  EXPECT_EQ(where, p + ".corrupt");
  EXPECT_FALSE(fs::exists(p));
  EXPECT_TRUE(fs::exists(where));
}

}  // namespace
}  // namespace mmhar
