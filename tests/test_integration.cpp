// End-to-end integration test: the full pipeline — procedural human +
// activity animation -> RF simulation -> DRAI heatmaps -> CNN-LSTM
// training -> SHAP frame selection -> trigger position optimization ->
// poisoning -> backdoored model — at miniature scale.
//
// Assertions target *relationships* (backdoor raises ASR above the clean
// model's confusion; CDR stays near clean accuracy), not absolute values,
// so the test is robust to the reduced scale.
#include <gtest/gtest.h>

#include <filesystem>

#include "core/attack_eval.h"
#include "core/backdoor_attack.h"
#include "core/experiment.h"
#include "defense/augmentation.h"
#include "har/trainer.h"

namespace mmhar::core {
namespace {

struct MiniWorld {
  har::GeneratorConfig generator_config;
  har::DatasetConfig train_grid;
  har::DatasetConfig test_grid;
  har::HarModelConfig model_config;
  har::TrainConfig train_config;

  MiniWorld() {
    generator_config.num_frames = 8;
    generator_config.radar.num_samples = 64;
    // 16 range bins cover 2.4 m with halved bandwidth.
    generator_config.radar.bandwidth_hz = 1.0e9;
    generator_config.radar.num_chirps = 8;
    generator_config.radar.num_virtual_antennas = 8;
    generator_config.heatmap.range_bins = 16;
    generator_config.heatmap.angle_bins = 16;
    generator_config.environment = radar::EnvironmentKind::None;

    train_grid.participants = {0, 1};
    train_grid.distances_m = {1.2};
    train_grid.angles_deg = {-30.0, 0.0, 30.0};
    train_grid.repetitions = 4;

    test_grid = train_grid;
    test_grid.repetitions = 2;
    test_grid.repetition_offset = 50;

    model_config.frames = 8;
    model_config.height = 16;
    model_config.width = 16;
    model_config.conv1_channels = 4;
    model_config.conv2_channels = 8;
    model_config.feature_dim = 24;
    model_config.lstm_hidden = 24;

    train_config.epochs = 14;
    train_config.batch_size = 8;
  }
};

TEST(Integration, EndToEndBackdoorAttack) {
  const std::string cache = "test_tmp_integration";
  std::filesystem::remove_all(cache);
  ::setenv("MMHAR_CACHE_DIR", cache.c_str(), 1);

  MiniWorld world;
  const har::SampleGenerator gen(world.generator_config);
  const har::Dataset train = har::build_dataset(gen, world.train_grid);
  const har::Dataset test = har::build_dataset(gen, world.test_grid);
  ASSERT_EQ(train.size(), 144u);
  ASSERT_EQ(test.size(), 72u);

  // 1) The clean HAR prototype learns the six activities (Fig. 7 analog).
  har::HarModel clean_model(world.model_config);
  har::train_model(clean_model, train, world.train_config);
  const float clean_acc = har::evaluate_accuracy(clean_model, test);
  EXPECT_GT(clean_acc, 0.70F) << "clean prototype failed to learn";

  // 2) Plan the attack with a surrogate (different seed, same data).
  har::HarModelConfig surrogate_cfg = world.model_config;
  surrogate_cfg.seed = 777;
  har::HarModel surrogate(surrogate_cfg);
  har::train_model(surrogate, train, world.train_config);

  BackdoorAttackConfig acfg;
  acfg.victim_label = 0;  // Push
  acfg.target_label = 1;  // Pull
  acfg.poisoned_frames = 4;
  acfg.shap.num_permutations = 4;
  acfg.reference_spec.distance_m = 1.2;
  BackdoorAttack attack(gen, surrogate, acfg);
  const BackdoorPlan plan = attack.plan(train);
  ASSERT_EQ(plan.frames.size(), 4u);

  // 3) Poison at a high injection rate and train the victim model.
  const PoisonResult poisoned =
      attack.poison(train, world.train_grid, plan, 0.5);
  EXPECT_EQ(poisoned.poisoned_indices.size(), 12u);  // 0.5 * 24 victims
  har::HarModel backdoored(world.model_config);
  har::train_model(backdoored, poisoned.dataset, world.train_config);

  // 4) Attack test set: triggered twins of held-out victim samples.
  const har::Dataset attack_test = load_or_build_triggered_twins(
      gen, world.test_grid, acfg.victim_label, plan.placement, cache);
  ASSERT_EQ(attack_test.size(), 12u);

  const AttackMetrics backdoored_metrics = evaluate_attack(
      backdoored, test, attack_test, acfg.victim_label, acfg.target_label);
  const AttackMetrics clean_metrics = evaluate_attack(
      clean_model, test, attack_test, acfg.victim_label, acfg.target_label);

  // The backdoor must beat the clean model's trigger response by a wide
  // margin, and stay usable on clean data.
  EXPECT_GT(backdoored_metrics.asr, clean_metrics.asr + 0.25)
      << "backdoored ASR " << backdoored_metrics.asr << " vs clean baseline "
      << clean_metrics.asr;
  EXPECT_GE(backdoored_metrics.uasr, backdoored_metrics.asr);
  EXPECT_GT(backdoored_metrics.cdr, clean_acc - 0.25);

  // 5) Augmentation defense: adding correctly-labeled triggered samples
  // of the victim activity reduces ASR.
  const har::Dataset defense_twins = load_or_build_triggered_twins(
      gen, world.train_grid, acfg.victim_label, plan.placement, cache);
  defense::AugmentationConfig dcfg;
  dcfg.augmentation_rate = 1.0;
  const har::Dataset defended_train = defense::augment_with_correct_labels(
      poisoned.dataset, defense_twins, acfg.victim_label, dcfg);
  har::HarModel defended(world.model_config);
  har::train_model(defended, defended_train, world.train_config);
  const AttackMetrics defended_metrics = evaluate_attack(
      defended, test, attack_test, acfg.victim_label, acfg.target_label);
  EXPECT_LT(defended_metrics.asr, backdoored_metrics.asr)
      << "augmentation defense failed to reduce ASR";

  ::unsetenv("MMHAR_CACHE_DIR");
  std::filesystem::remove_all(cache);
}

TEST(Integration, ExperimentSetupStandardIsConsistent) {
  const ExperimentSetup s = ExperimentSetup::standard();
  EXPECT_EQ(s.train_generator.environment, radar::EnvironmentKind::Hallway);
  EXPECT_EQ(s.attack_generator.environment,
            radar::EnvironmentKind::Classroom);
  // Disjoint repetition ranges between train/test/attack grids.
  EXPECT_NE(s.train_grid.repetition_offset, s.test_grid.repetition_offset);
  EXPECT_NE(s.test_grid.repetition_offset, s.attack_grid.repetition_offset);
  // The paper's 12 positions.
  EXPECT_EQ(s.train_grid.distances_m.size() * s.train_grid.angles_deg.size(),
            12u);
  EXPECT_EQ(s.model.num_classes, 6u);
  EXPECT_GE(s.repeats, 1u);
}

TEST(Integration, PctFormatsPercentages) {
  EXPECT_EQ(pct(0.842), "84.2");
  EXPECT_EQ(pct(1.0), "100.0");
  EXPECT_EQ(pct(0.0), "0.0");
}

}  // namespace
}  // namespace mmhar::core
