// Fast tests for the experiment-harness plumbing that needs no training:
// frame derivation from plans, env-knob overrides, plan-key behavior, and
// the sweep-value helpers used by the bench binaries.
#include <gtest/gtest.h>

#include <cstdlib>

#include "core/experiment.h"

namespace mmhar::core {
namespace {

TEST(FramesFor, FirstKIgnoresShap) {
  BackdoorPlan plan;
  plan.mean_abs_shap = {0.1, 0.9, 0.2, 0.8};
  AttackPoint point;
  point.frame_selection = FrameSelection::FirstK;
  point.poisoned_frames = 3;
  EXPECT_EQ(AttackExperiment::frames_for(plan, point),
            (std::vector<std::size_t>{0, 1, 2}));
}

TEST(FramesFor, ShapTopKUsesPlanScores) {
  BackdoorPlan plan;
  plan.mean_abs_shap = {0.1, 0.9, 0.2, 0.8, 0.05};
  AttackPoint point;
  point.frame_selection = FrameSelection::ShapTopK;
  point.poisoned_frames = 2;
  EXPECT_EQ(AttackExperiment::frames_for(plan, point),
            (std::vector<std::size_t>{1, 3}));
  point.poisoned_frames = 4;
  const auto four = AttackExperiment::frames_for(plan, point);
  EXPECT_EQ(four.size(), 4u);
  EXPECT_EQ(four[0], 1u);  // strongest first
}

TEST(ExperimentSetup, EnvKnobsOverrideDefaults) {
  ::setenv("MMHAR_EPOCHS", "7", 1);
  ::setenv("MMHAR_REPEATS", "5", 1);
  ::setenv("MMHAR_REPS_TRAIN", "3", 1);
  const auto s = ExperimentSetup::standard();
  EXPECT_EQ(s.training.epochs, 7u);
  EXPECT_EQ(s.repeats, 5u);
  EXPECT_EQ(s.train_grid.repetitions, 3u);
  ::unsetenv("MMHAR_EPOCHS");
  ::unsetenv("MMHAR_REPEATS");
  ::unsetenv("MMHAR_REPS_TRAIN");
  const auto d = ExperimentSetup::standard();
  EXPECT_EQ(d.training.epochs, 20u);
  EXPECT_EQ(d.repeats, 2u);
}

TEST(ExperimentSetup, GridsMatchPaperProtocol) {
  const auto s = ExperimentSetup::standard();
  // 4 distances x 3 angles (paper §VI-B).
  EXPECT_EQ(s.train_grid.distances_m,
            (std::vector<double>{0.8, 1.2, 1.6, 2.0}));
  EXPECT_EQ(s.train_grid.angles_deg, (std::vector<double>{-30.0, 0.0, 30.0}));
  EXPECT_EQ(s.train_grid.participants.size(), 3u);
  // Test/attack grids share the spatial grid but not repetitions.
  EXPECT_EQ(s.test_grid.distances_m, s.train_grid.distances_m);
  EXPECT_EQ(s.attack_grid.angles_deg, s.train_grid.angles_deg);
}

TEST(AttackPoint, DefaultsMatchPaperOperatingPoint) {
  const AttackPoint p;
  EXPECT_EQ(p.victim, 0u);  // Push
  EXPECT_EQ(p.target, 1u);  // Pull
  EXPECT_DOUBLE_EQ(p.injection_rate, 0.4);
  EXPECT_EQ(p.poisoned_frames, 8u);
  EXPECT_EQ(p.frame_selection, FrameSelection::ShapTopK);
  EXPECT_TRUE(p.optimize_position);
  EXPECT_NEAR(p.trigger.width_m, 0.0508, 1e-9);
}

TEST(AttackExperiment, RequiresAtLeastOneRepeat) {
  auto setup = ExperimentSetup::standard();
  setup.repeats = 0;
  EXPECT_THROW(AttackExperiment{std::move(setup)}, InvalidArgument);
}

}  // namespace
}  // namespace mmhar::core
