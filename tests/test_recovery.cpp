// End-to-end crash-recovery tests: corrupt caches quarantine and
// regenerate, interrupted trainings resume bit-identically from their
// checkpoints, and killed sweeps replay completed repeats from the
// journal with identical numbers while injected per-repeat failures
// degrade gracefully instead of aborting.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/artifact_store.h"
#include "common/fault_injection.h"
#include "core/experiment.h"
#include "har/dataset.h"
#include "har/generator.h"
#include "har/model.h"
#include "har/trainer.h"

namespace mmhar {
namespace {

namespace fs = std::filesystem;

har::GeneratorConfig tiny_generator_config() {
  har::GeneratorConfig gc;
  gc.num_frames = 8;
  gc.radar.num_samples = 64;
  gc.radar.bandwidth_hz = 1.0e9;
  gc.radar.num_chirps = 8;
  gc.radar.num_virtual_antennas = 8;
  gc.heatmap.range_bins = 16;
  gc.heatmap.angle_bins = 16;
  gc.environment = radar::EnvironmentKind::None;
  return gc;
}

har::HarModelConfig tiny_model_config() {
  har::HarModelConfig mc;
  mc.frames = 8;
  mc.height = 16;
  mc.width = 16;
  mc.conv1_channels = 4;
  mc.conv2_channels = 8;
  mc.feature_dim = 16;
  mc.lstm_hidden = 16;
  return mc;
}

har::DatasetConfig tiny_grid() {
  har::DatasetConfig dc;
  dc.participants = {0};
  dc.distances_m = {1.2};
  dc.angles_deg = {0.0};
  dc.repetitions = 2;
  return dc;
}

/// Flip one byte in the middle of a file (simulated on-disk rot).
void corrupt_file(const std::string& path) {
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  ASSERT_TRUE(f.is_open()) << path;
  f.seekg(0, std::ios::end);
  const auto size = static_cast<std::streamoff>(f.tellg());
  ASSERT_GT(size, 0);
  f.seekp(size / 2);
  char b = 0;
  f.seekg(size / 2);
  f.read(&b, 1);
  b = static_cast<char>(b ^ 0x40);
  f.seekp(size / 2);
  f.write(&b, 1);
}

/// The single cache file with the given extension in `dir`.
std::string only_file_with_ext(const std::string& dir,
                               const std::string& ext) {
  std::string found;
  for (const auto& e : fs::directory_iterator(dir)) {
    if (e.path().extension() == ext) {
      EXPECT_TRUE(found.empty()) << "more than one " << ext << " in " << dir;
      found = e.path().string();
    }
  }
  EXPECT_FALSE(found.empty()) << "no " << ext << " file in " << dir;
  return found;
}

void expect_same_weights(har::HarModel& a, har::HarModel& b) {
  const auto pa = a.parameters();
  const auto pb = b.parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    ASSERT_EQ(pa[i]->size(), pb[i]->size());
    for (std::size_t j = 0; j < pa[i]->size(); ++j)
      ASSERT_EQ((*pa[i])[j], (*pb[i])[j]) << "param " << i << "[" << j << "]";
  }
}

TEST(DatasetRecovery, CorruptCacheIsQuarantinedAndRegenerated) {
  const std::string dir = "test_tmp_recovery_ds";
  fs::remove_all(dir);
  const har::SampleGenerator gen(tiny_generator_config());
  const har::DatasetConfig dc = tiny_grid();

  const har::Dataset first = har::load_or_build_dataset(gen, dc, dir);
  const std::string cache = only_file_with_ext(dir, ".ds");
  corrupt_file(cache);

  // The old behavior wedged here: load threw and the bench died until a
  // human deleted the cache. Now the file quarantines and regenerates.
  const har::Dataset second = har::load_or_build_dataset(gen, dc, dir);
  EXPECT_TRUE(fs::exists(cache));  // regenerated at the same path
  EXPECT_TRUE(fs::exists(cache + ".corrupt"));
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    const auto& ha = first.sample(i).heatmaps;
    const auto& hb = second.sample(i).heatmaps;
    ASSERT_EQ(ha.size(), hb.size());
    for (std::size_t j = 0; j < ha.size(); ++j) ASSERT_EQ(ha[j], hb[j]);
  }

  // And the regenerated cache is valid again.
  const har::Dataset third = har::load_or_build_dataset(gen, dc, dir);
  EXPECT_EQ(third.size(), first.size());
  fs::remove_all(dir);
}

TEST(ModelRecovery, TryLoadRollsBackOnCorruptFile) {
  const std::string dir = "test_tmp_recovery_model";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string path = dir + "/m.bin";

  har::HarModel saved(tiny_model_config());
  saved.save(path);

  har::HarModelConfig other = tiny_model_config();
  other.seed = 999;  // different init so a rollback is observable
  har::HarModel loader(other);
  std::vector<Tensor> before;
  for (Tensor* p : loader.parameters()) before.push_back(*p);

  corrupt_file(path);
  const LoadResult res = loader.try_load(path);
  EXPECT_FALSE(res.ok());
  EXPECT_TRUE(fs::exists(path + ".corrupt"));

  const auto params = loader.parameters();
  ASSERT_EQ(params.size(), before.size());
  for (std::size_t i = 0; i < params.size(); ++i)
    for (std::size_t j = 0; j < params[i]->size(); ++j)
      ASSERT_EQ((*params[i])[j], before[i][j]);
  fs::remove_all(dir);
}

TEST(ModelRecovery, ArchitectureMismatchIsCorruptNotSilentReshape) {
  const std::string dir = "test_tmp_recovery_arch";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string path = dir + "/m.bin";

  har::HarModel saved(tiny_model_config());
  saved.save(path);

  har::HarModelConfig bigger = tiny_model_config();
  bigger.feature_dim = 32;
  har::HarModel loader(bigger);
  const LoadResult res = loader.try_load(path);
  EXPECT_EQ(res.status, LoadStatus::Corrupt);
  EXPECT_NE(res.detail.find("architecture"), std::string::npos);
  fs::remove_all(dir);
}

TEST(CheckpointResume, KilledTrainingResumesBitIdentically) {
  const std::string dir = "test_tmp_recovery_ckpt";
  fs::remove_all(dir);
  fs::create_directories(dir);

  const har::SampleGenerator gen(tiny_generator_config());
  const har::Dataset train = har::build_dataset(gen, tiny_grid());

  har::TrainConfig base;
  base.epochs = 6;
  base.batch_size = 4;
  base.validation_fraction = 0.25;  // exercise the split bookkeeping too
  base.seed = 77;

  // Reference: one uninterrupted run.
  har::HarModel reference(tiny_model_config());
  const auto ref_history = har::train_model(reference, train, base);
  ASSERT_EQ(ref_history.epochs.size(), 6U);

  // "Killed" run: each train_model call is a fresh process that trains at
  // most 2 epochs, checkpoints, and dies; the model object is rebuilt
  // from scratch every time, exactly like a restarted bench.
  har::TrainConfig sliced = base;
  sliced.checkpoint_path = dir + "/train.ckpt";
  sliced.max_epochs_this_run = 2;
  har::TrainHistory resumed_history;
  for (int process = 0; process < 3; ++process) {
    har::HarModel model(tiny_model_config());
    resumed_history = har::train_model(model, train, sliced);
    if (resumed_history.epochs.size() == 6U) {
      expect_same_weights(model, reference);
    } else {
      ASSERT_TRUE(fs::exists(sliced.checkpoint_path));
    }
  }
  ASSERT_EQ(resumed_history.epochs.size(), 6U);
  // Completion removes the checkpoint.
  EXPECT_FALSE(fs::exists(sliced.checkpoint_path));

  // The recorded history is bit-identical too.
  for (std::size_t e = 0; e < 6; ++e) {
    EXPECT_EQ(resumed_history.epochs[e].loss, ref_history.epochs[e].loss);
    EXPECT_EQ(resumed_history.epochs[e].accuracy,
              ref_history.epochs[e].accuracy);
    EXPECT_EQ(resumed_history.epochs[e].validation_accuracy,
              ref_history.epochs[e].validation_accuracy);
  }
  fs::remove_all(dir);
}

TEST(CheckpointResume, ForeignCheckpointIsIgnored) {
  const std::string dir = "test_tmp_recovery_ckpt2";
  fs::remove_all(dir);
  fs::create_directories(dir);

  const har::SampleGenerator gen(tiny_generator_config());
  const har::Dataset train = har::build_dataset(gen, tiny_grid());

  // Leave a checkpoint behind from one training config...
  har::TrainConfig writer;
  writer.epochs = 4;
  writer.batch_size = 4;
  writer.checkpoint_path = dir + "/train.ckpt";
  writer.max_epochs_this_run = 1;
  {
    har::HarModel model(tiny_model_config());
    har::train_model(model, train, writer);
  }
  ASSERT_TRUE(fs::exists(writer.checkpoint_path));

  // ...then train with a different learning rate at the same path. The
  // fingerprint mismatch must be ignored: same result as no checkpoint.
  har::TrainConfig other = writer;
  other.learning_rate = 3e-3F;
  other.max_epochs_this_run = 0;
  har::HarModel with_stale(tiny_model_config());
  har::train_model(with_stale, train, other);

  har::TrainConfig clean = other;
  clean.checkpoint_path.clear();
  har::HarModel no_ckpt(tiny_model_config());
  har::train_model(no_ckpt, train, clean);

  expect_same_weights(with_stale, no_ckpt);
  fs::remove_all(dir);
}

// ---- Sweep-level recovery --------------------------------------------

core::ExperimentSetup tiny_setup(const std::string& cache) {
  core::ExperimentSetup s;
  s.train_generator = tiny_generator_config();
  s.attack_generator = tiny_generator_config();
  s.train_grid = tiny_grid();
  s.test_grid = tiny_grid();
  s.test_grid.repetitions = 1;
  s.test_grid.repetition_offset = 50;
  s.attack_grid = s.test_grid;
  s.attack_grid.repetition_offset = 90;
  s.model = tiny_model_config();
  s.training.epochs = 3;
  s.training.batch_size = 4;
  s.shap.num_permutations = 2;
  s.repeats = 2;
  s.cache_dir = cache;
  s.resume_sweeps = true;
  s.checkpoint_every = 1;
  return s;
}

core::AttackPoint tiny_point() {
  core::AttackPoint p;
  p.frame_selection = core::FrameSelection::FirstK;
  p.optimize_position = false;  // skip the expensive position search
  p.poisoned_frames = 4;
  p.injection_rate = 0.5;
  return p;
}

/// Arm a rule that can never fire so the injector counts run_single
/// entries (the site sits at the top of run_single) without perturbing
/// anything.
void arm_repeat_counter() {
  FaultInjector::instance().configure("experiment.repeat_fail@1000000000", 1);
}

std::size_t repeat_calls() {
  return FaultInjector::instance().call_count("experiment.repeat_fail");
}

class SweepRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fs::remove_all(cache_);
    // Twin generation inside BackdoorAttack::poison uses the env cache.
    ::setenv("MMHAR_CACHE_DIR", cache_.c_str(), 1);
    FaultInjector::instance().clear();
  }
  void TearDown() override {
    FaultInjector::instance().clear();
    ::unsetenv("MMHAR_CACHE_DIR");
    fs::remove_all(cache_);
  }
  std::string cache_ = "test_tmp_recovery_sweep";
};

TEST_F(SweepRecoveryTest, JournalReplaysCompletedRepeatsBitIdentically) {
  const core::AttackPoint point = tiny_point();

  arm_repeat_counter();
  core::PointSummary first;
  {
    core::AttackExperiment e(tiny_setup(cache_));
    first = e.run_point(point);
  }
  EXPECT_TRUE(first.ok());
  EXPECT_EQ(first.failed_repeats, 0U);
  EXPECT_EQ(repeat_calls(), 2U);  // both repeats actually ran
  EXPECT_TRUE(fs::exists(cache_ + "/sweep_journal.jnl"));

  // "Restart the process": a fresh experiment over the same cache must
  // reproduce the summary from the journal without running any repeat.
  arm_repeat_counter();  // resets the counter
  core::PointSummary second;
  {
    core::AttackExperiment e(tiny_setup(cache_));
    second = e.run_point(point);
  }
  EXPECT_EQ(repeat_calls(), 0U);
  EXPECT_EQ(second.mean.asr, first.mean.asr);
  EXPECT_EQ(second.mean.uasr, first.mean.uasr);
  EXPECT_EQ(second.mean.cdr, first.mean.cdr);
  EXPECT_EQ(second.stddev.asr, first.stddev.asr);
  EXPECT_EQ(second.mean.attack_samples, first.mean.attack_samples);

  // Raising MMHAR_REPEATS reuses the two journaled repeats and only runs
  // the new one.
  arm_repeat_counter();
  {
    auto setup = tiny_setup(cache_);
    setup.repeats = 3;
    core::AttackExperiment e(std::move(setup));
    const auto third = e.run_point(point);
    EXPECT_TRUE(third.ok());
    EXPECT_EQ(third.repeats, 3U);
  }
  EXPECT_EQ(repeat_calls(), 1U);
}

TEST_F(SweepRecoveryTest, ResumeDisabledAlwaysRecomputes) {
  auto setup = tiny_setup(cache_);
  setup.resume_sweeps = false;
  const core::AttackPoint point = tiny_point();

  arm_repeat_counter();
  {
    core::AttackExperiment e(setup);
    (void)e.run_point(point);
    (void)e.run_point(point);
  }
  EXPECT_EQ(repeat_calls(), 4U);
  EXPECT_FALSE(fs::exists(cache_ + "/sweep_journal.jnl"));
}

TEST_F(SweepRecoveryTest, InjectedRepeatFailureDegradesGracefully) {
  const core::AttackPoint point = tiny_point();

  // Every attempt of every repeat dies (as a finite-check NaN storm or a
  // corrupt artifact would — all surface as mmhar::Error): the point is
  // recorded as failed, the sweep does not throw.
  FaultInjector::instance().configure("experiment.repeat_fail", 1);
  core::AttackExperiment e(tiny_setup(cache_));
  const auto failed = e.run_point(point);
  EXPECT_FALSE(failed.ok());
  EXPECT_EQ(failed.failed_repeats, 2U);
  ASSERT_EQ(failed.errors.size(), 2U);
  EXPECT_NE(failed.errors[0].find("repeat_fail"), std::string::npos);
  EXPECT_EQ(failed.mean.asr, 0.0);

  // Clear the fault: the same experiment recovers on the next call, and
  // nothing bogus was journaled for the failed attempts.
  FaultInjector::instance().clear();
  const auto ok = e.run_point(point);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.failed_repeats, 0U);
}

TEST_F(SweepRecoveryTest, TransientFailureIsRetriedOnce) {
  const core::AttackPoint point = tiny_point();

  // Only the very first attempt dies; the in-place retry must succeed.
  FaultInjector::instance().configure("experiment.repeat_fail@1", 1);
  core::AttackExperiment e(tiny_setup(cache_));
  const auto summary = e.run_point(point);
  EXPECT_TRUE(summary.ok());
  EXPECT_EQ(summary.failed_repeats, 0U);
  EXPECT_TRUE(summary.errors.empty());
  // repeat 0 ran twice (fail + retry), repeat 1 once.
  EXPECT_EQ(repeat_calls(), 3U);
}

TEST_F(SweepRecoveryTest, CorruptModelCacheHealsAcrossRestart) {
  // Wedge-regression test for the clean/surrogate model cache: corrupt
  // the cached surrogate, restart, and the experiment must retrain
  // instead of dying on load.
  {
    core::AttackExperiment e(tiny_setup(cache_));
    (void)e.surrogate();
  }
  const std::string model_cache = only_file_with_ext(cache_, ".bin");
  corrupt_file(model_cache);
  {
    core::AttackExperiment e(tiny_setup(cache_));
    (void)e.surrogate();  // throws in the pre-store world
  }
  EXPECT_TRUE(fs::exists(model_cache));  // regenerated
  EXPECT_TRUE(fs::exists(model_cache + ".corrupt"));
}

}  // namespace
}  // namespace mmhar
