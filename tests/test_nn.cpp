// Tests for the neural-network substrate: gradient checks against
// central finite differences for every layer, loss correctness, optimizer
// convergence on analytic problems, and (de)serialization.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "nn/activation.h"
#include "nn/conv.h"
#include "nn/dense.h"
#include "nn/gradcheck.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "nn/sequential.h"

namespace mmhar::nn {
namespace {

constexpr float kGradTol = 2e-2F;  // relative, fp32 + fd epsilon

TEST(Dense, ForwardMatchesManualComputation) {
  Rng rng(1);
  Dense layer(2, 2, rng);
  // Overwrite weights with known values: W=[[1,2],[3,4]], b=[0.5, -0.5].
  Tensor& w = *layer.parameters()[0];
  w.at(0, 0) = 1;
  w.at(0, 1) = 2;
  w.at(1, 0) = 3;
  w.at(1, 1) = 4;
  Tensor& b = *layer.parameters()[1];
  b[0] = 0.5F;
  b[1] = -0.5F;
  Tensor x({1, 2}, {10, 20});
  const Tensor y = layer.forward(x, false);
  EXPECT_FLOAT_EQ(y.at(0, 0), 10 * 1 + 20 * 2 + 0.5F);
  EXPECT_FLOAT_EQ(y.at(0, 1), 10 * 3 + 20 * 4 - 0.5F);
}

TEST(Dense, GradCheck) {
  Rng rng(2);
  Dense layer(7, 5, rng);
  const Tensor x = Tensor::randn({3, 7}, rng);
  const auto r = check_layer_gradients(layer, x, rng);
  EXPECT_LT(r.max_relative_error, kGradTol) << "checked " << r.checked;
}

TEST(ReLUAndTanh, GradCheck) {
  Rng rng(3);
  ReLU relu_layer;
  // Keep inputs away from the ReLU kink where the gradient is undefined.
  Tensor x = Tensor::randn({4, 6}, rng);
  for (auto& v : x.flat())
    if (std::abs(v) < 0.05F) v = 0.2F;
  const auto r = check_layer_gradients(relu_layer, x, rng);
  EXPECT_LT(r.max_relative_error, kGradTol);

  Tanh tanh_layer;
  const Tensor x2 = Tensor::randn({4, 6}, rng);
  const auto r2 = check_layer_gradients(tanh_layer, x2, rng, 1e-2F);
  EXPECT_LT(r2.max_relative_error, kGradTol);
}

TEST(Conv2D, OutputShapeAndGradCheck) {
  Rng rng(4);
  Conv2D conv(2, 3, 3, 2, 1, rng);
  const Tensor x = Tensor::randn({2, 2, 8, 8}, rng, 0.0F, 1.0F);
  const Tensor y = conv.forward(x, false);
  EXPECT_EQ(y.shape(), (std::vector<std::size_t>{2, 3, 4, 4}));
  const auto r = check_layer_gradients(conv, x, rng, 1e-2F, 60);
  EXPECT_LT(r.max_relative_error, kGradTol);
}

TEST(Conv2D, KernelLargerStride1Padding) {
  Rng rng(5);
  Conv2D conv(1, 2, 5, 1, 2, rng);
  const Tensor x = Tensor::randn({1, 1, 6, 6}, rng);
  const Tensor y = conv.forward(x, false);
  EXPECT_EQ(y.shape(), (std::vector<std::size_t>{1, 2, 6, 6}));
  const auto r = check_layer_gradients(conv, x, rng, 1e-2F, 60);
  EXPECT_LT(r.max_relative_error, kGradTol);
}

TEST(Conv2D, IdentityKernelReproducesInput) {
  Rng rng(6);
  Conv2D conv(1, 1, 1, 1, 0, rng);
  conv.parameters()[0]->at(0, 0) = 1.0F;  // 1x1 kernel = identity
  (*conv.parameters()[1])[0] = 0.0F;
  const Tensor x = Tensor::randn({1, 1, 5, 5}, rng);
  const Tensor y = conv.forward(x, false);
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_NEAR(y[i], x[i], 1e-6F);
}

TEST(MaxPool2D, ForwardAndRouting) {
  MaxPool2D pool(2);
  Tensor x({1, 1, 2, 4}, {1, 5, 2, 3,
                          4, 0, 9, 1});
  const Tensor y = pool.forward(x, false);
  EXPECT_EQ(y.shape(), (std::vector<std::size_t>{1, 1, 1, 2}));
  EXPECT_FLOAT_EQ(y[0], 5.0F);
  EXPECT_FLOAT_EQ(y[1], 9.0F);
  Tensor g({1, 1, 1, 2}, {1.0F, 2.0F});
  const Tensor gx = pool.backward(g);
  EXPECT_FLOAT_EQ(gx[1], 1.0F);  // routed to the argmax (value 5)
  EXPECT_FLOAT_EQ(gx[6], 2.0F);  // routed to the argmax (value 9)
  EXPECT_FLOAT_EQ(gx[0], 0.0F);
}

TEST(MaxPool2D, GradCheck) {
  Rng rng(7);
  MaxPool2D pool(2);
  // Distinct values avoid argmax ties that break finite differences.
  Tensor x({1, 2, 4, 4});
  for (std::size_t i = 0; i < x.size(); ++i)
    x[i] = static_cast<float>(i % 7) + 0.13F * static_cast<float>(i);
  const auto r = check_layer_gradients(pool, x, rng);
  EXPECT_LT(r.max_relative_error, kGradTol);
}

TEST(Flatten, RoundTripsShape) {
  Flatten flatten;
  Rng rng(8);
  const Tensor x = Tensor::randn({2, 3, 4, 5}, rng);
  const Tensor y = flatten.forward(x, false);
  EXPECT_EQ(y.shape(), (std::vector<std::size_t>{2, 60}));
  const Tensor gx = flatten.backward(y);
  EXPECT_EQ(gx.shape(), x.shape());
}

TEST(Dropout, InferenceIsIdentityTrainingScales) {
  Rng rng(9);
  Dropout drop(0.5, rng);
  const Tensor x = Tensor::full({1000}, 1.0F);
  const Tensor eval_out = drop.forward(x, false);
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_EQ(eval_out[i], 1.0F);
  const Tensor train_out = drop.forward(x, true);
  std::size_t zeros = 0;
  for (const float v : train_out.flat()) {
    if (v == 0.0F) {
      ++zeros;
    } else {
      EXPECT_FLOAT_EQ(v, 2.0F);  // inverted dropout scale 1/(1-p)
    }
  }
  EXPECT_NEAR(static_cast<double>(zeros), 500.0, 60.0);
  // Mean preserved in expectation.
  EXPECT_NEAR(train_out.mean(), 1.0F, 0.15F);
}

TEST(Sequential, ComposesAndExposesParameters) {
  Rng rng(10);
  Sequential net;
  net.emplace<Dense>(4, 8, rng);
  net.emplace<ReLU>();
  net.emplace<Dense>(8, 2, rng);
  EXPECT_EQ(net.num_layers(), 3u);
  EXPECT_EQ(net.parameters().size(), 4u);
  EXPECT_EQ(net.gradients().size(), 4u);
  const Tensor x = Tensor::randn({5, 4}, rng);
  const Tensor y = net.forward(x, false);
  EXPECT_EQ(y.shape(), (std::vector<std::size_t>{5, 2}));
  const auto r = check_layer_gradients(net, x, rng);
  EXPECT_LT(r.max_relative_error, kGradTol);
}

TEST(Sequential, SaveLoadRoundTrip) {
  Rng rng(11);
  Sequential a;
  a.emplace<Dense>(3, 4, rng);
  a.emplace<ReLU>();
  a.emplace<Dense>(4, 2, rng);
  Rng rng2(999);
  Sequential b;
  b.emplace<Dense>(3, 4, rng2);
  b.emplace<ReLU>();
  b.emplace<Dense>(4, 2, rng2);

  std::stringstream ss;
  {
    BinaryWriter w(ss);
    a.save(w);
  }
  BinaryReader r(ss);
  b.load(r);
  const Tensor x = Tensor::randn({2, 3}, rng);
  const Tensor ya = a.forward(x, false);
  const Tensor yb = b.forward(x, false);
  for (std::size_t i = 0; i < ya.size(); ++i) EXPECT_EQ(ya[i], yb[i]);
}

TEST(Loss, CrossEntropyValueAndGradient) {
  Tensor logits({2, 3}, {1.0F, 2.0F, 3.0F, 0.0F, 0.0F, 0.0F});
  const std::vector<std::size_t> labels{2, 0};
  const auto result = softmax_cross_entropy(logits, labels);
  // Manual: row0 p2 = e^3/(e+e^2+e^3); row1 p0 = 1/3.
  const double p2 = std::exp(3.0) / (std::exp(1.0) + std::exp(2.0) +
                                     std::exp(3.0));
  const double expected = (-std::log(p2) - std::log(1.0 / 3.0)) / 2.0;
  EXPECT_NEAR(result.loss, expected, 1e-5);
  // Gradient rows sum to zero (softmax - onehot).
  for (std::size_t b = 0; b < 2; ++b) {
    float sum = 0.0F;
    for (std::size_t c = 0; c < 3; ++c) sum += result.grad_logits.at(b, c);
    EXPECT_NEAR(sum, 0.0F, 1e-6F);
  }
  EXPECT_LT(result.grad_logits.at(0, 2), 0.0F);  // push true class up
}

TEST(Loss, GradMatchesFiniteDifference) {
  Rng rng(12);
  const Tensor logits = Tensor::randn({3, 4}, rng);
  const std::vector<std::size_t> labels{1, 3, 0};
  const auto result = softmax_cross_entropy(logits, labels);
  const auto fn = [&labels](const Tensor& x) {
    return softmax_cross_entropy(x, labels).loss;
  };
  const auto r =
      check_function_gradient(fn, logits, result.grad_logits, 1e-3F);
  EXPECT_LT(r.max_relative_error, kGradTol);
}

TEST(Loss, AccuracyCountsArgmaxMatches) {
  Tensor logits({3, 2}, {2, 1, 0, 3, 5, 4});
  EXPECT_FLOAT_EQ(accuracy(logits, {0, 1, 0}), 1.0F);
  EXPECT_NEAR(accuracy(logits, {1, 1, 0}), 2.0F / 3.0F, 1e-6F);
}

TEST(Optimizer, SgdConvergesOnQuadratic) {
  // Minimize ||x - c||^2 via gradient steps.
  Tensor x({3}, {5, -3, 2});
  const Tensor c({3}, {1, 1, 1});
  Tensor g({3});
  Sgd opt(0.1F, 0.0F);
  for (int i = 0; i < 200; ++i) {
    for (std::size_t j = 0; j < 3; ++j) g[j] = 2.0F * (x[j] - c[j]);
    opt.step({&x}, {&g});
  }
  for (std::size_t j = 0; j < 3; ++j) EXPECT_NEAR(x[j], c[j], 1e-3F);
}

TEST(Optimizer, MomentumAcceleratesIllConditionedProblem) {
  const auto run = [](float momentum) {
    Tensor x({2}, {10.0F, 10.0F});
    Tensor g({2});
    Sgd opt(0.02F, momentum);
    for (int i = 0; i < 100; ++i) {
      g[0] = 2.0F * x[0];
      g[1] = 40.0F * x[1];  // condition number 20
      opt.step({&x}, {&g});
    }
    return std::abs(x[0]);
  };
  EXPECT_LT(run(0.9F), run(0.0F));
}

TEST(Optimizer, AdamConvergesAndIsScaleInvariant) {
  Tensor x({2}, {4.0F, 4.0F});
  Tensor g({2});
  Adam opt(0.1F);
  for (int i = 0; i < 300; ++i) {
    g[0] = 2.0F * x[0];
    g[1] = 2000.0F * x[1];  // vastly different gradient scales
    opt.step({&x}, {&g});
  }
  EXPECT_NEAR(x[0], 0.0F, 1e-2F);
  EXPECT_NEAR(x[1], 0.0F, 1e-2F);
}

TEST(Optimizer, WeightDecayShrinksParameters) {
  Tensor x({1}, {1.0F});
  Tensor g({1}, {0.0F});
  Sgd opt(0.1F, 0.0F, 0.5F);
  for (int i = 0; i < 10; ++i) opt.step({&x}, {&g});
  EXPECT_LT(x[0], 1.0F);
  EXPECT_GT(x[0], 0.0F);
}

TEST(Optimizer, GradientClippingBoundsNorm) {
  Tensor g1({2}, {30.0F, 40.0F});
  Tensor g2({1}, {0.0F});
  const float pre = clip_gradient_norm({&g1, &g2}, 5.0F);
  EXPECT_FLOAT_EQ(pre, 50.0F);
  double norm = 0.0;
  for (const float v : g1.flat()) norm += static_cast<double>(v) * v;
  EXPECT_NEAR(std::sqrt(norm), 5.0, 1e-4);
  // No-op when already small.
  Tensor g3({1}, {1.0F});
  clip_gradient_norm({&g3}, 5.0F);
  EXPECT_FLOAT_EQ(g3[0], 1.0F);
}

TEST(Training, TwoLayerNetLearnsXor) {
  Rng rng(13);
  Sequential net;
  net.emplace<Dense>(2, 8, rng);
  net.emplace<Tanh>();
  net.emplace<Dense>(8, 2, rng);
  Adam opt(0.05F);
  const Tensor x({4, 2}, {0, 0, 0, 1, 1, 0, 1, 1});
  const std::vector<std::size_t> y{0, 1, 1, 0};
  for (int epoch = 0; epoch < 300; ++epoch) {
    net.zero_gradients();
    const Tensor logits = net.forward(x, true);
    const auto loss = softmax_cross_entropy(logits, y);
    net.backward(loss.grad_logits);
    opt.step(net.parameters(), net.gradients());
  }
  const Tensor logits = net.forward(x, false);
  EXPECT_FLOAT_EQ(accuracy(logits, y), 1.0F);
}

}  // namespace
}  // namespace mmhar::nn
