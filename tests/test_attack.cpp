// Tests for the core attack: Weiszfeld global position (Eq. 4), trigger
// position optimization (Eq. 2), poisoning mechanics, attack metrics, and
// plan assembly.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "core/attack_eval.h"
#include "core/backdoor_attack.h"
#include "core/global_position.h"
#include "core/poison.h"
#include "core/position_opt.h"
#include "har/trainer.h"

namespace mmhar::core {
namespace {

har::GeneratorConfig tiny_generator_config() {
  har::GeneratorConfig gc;
  gc.num_frames = 8;
  gc.radar.num_samples = 64;
  // Halve the bandwidth so 16 range bins still cover the 0.8-2 m zone.
  gc.radar.bandwidth_hz = 1.0e9;
  gc.radar.num_chirps = 8;
  gc.radar.num_virtual_antennas = 8;
  gc.heatmap.range_bins = 16;
  gc.heatmap.angle_bins = 16;
  gc.environment = radar::EnvironmentKind::None;
  return gc;
}

har::HarModelConfig tiny_model_config() {
  har::HarModelConfig mc;
  mc.frames = 8;
  mc.height = 16;
  mc.width = 16;
  mc.conv1_channels = 4;
  mc.conv2_channels = 8;
  mc.feature_dim = 16;
  mc.lstm_hidden = 16;
  return mc;
}

// ---- Eq. 4: weighted geometric median ----

TEST(Weiszfeld, SinglePointIsItsOwnMedian) {
  const mesh::Vec3 p{1, 2, 3};
  const auto m = weighted_geometric_median({p}, {1.0});
  EXPECT_NEAR(mesh::distance(m, p), 0.0, 1e-9);
}

TEST(Weiszfeld, CollinearPointsYieldWeightedMedian) {
  // On a line, the weighted geometric median is the weighted median: with
  // weights (1, 1, 4) the heavy point dominates.
  const std::vector<mesh::Vec3> pts{{0, 0, 0}, {1, 0, 0}, {2, 0, 0}};
  const auto m = weighted_geometric_median(pts, {1.0, 1.0, 4.0});
  EXPECT_NEAR(m.x, 2.0, 1e-3);
}

TEST(Weiszfeld, EquilateralTriangleMedianIsCentroid) {
  const std::vector<mesh::Vec3> pts{
      {0, 0, 0}, {1, 0, 0}, {0.5, std::sqrt(3.0) / 2.0, 0}};
  const auto m = weighted_geometric_median(pts, {1.0, 1.0, 1.0});
  EXPECT_NEAR(m.x, 0.5, 1e-6);
  EXPECT_NEAR(m.y, std::sqrt(3.0) / 6.0, 1e-6);
}

TEST(Weiszfeld, MinimizesTheObjectiveLocally) {
  Rng rng(3);
  std::vector<mesh::Vec3> pts;
  std::vector<double> w;
  for (int i = 0; i < 12; ++i) {
    pts.push_back({rng.normal(), rng.normal(), rng.normal()});
    w.push_back(rng.uniform(0.1, 2.0));
  }
  const auto m = weighted_geometric_median(pts, w);
  const double at_m = weighted_distance_sum(pts, w, m);
  // Perturbations in every axis direction must not improve the objective.
  for (const auto& d : {mesh::Vec3{0.01, 0, 0}, mesh::Vec3{0, 0.01, 0},
                        mesh::Vec3{0, 0, 0.01}}) {
    EXPECT_GE(weighted_distance_sum(pts, w, m + d), at_m - 1e-9);
    EXPECT_GE(weighted_distance_sum(pts, w, m - d), at_m - 1e-9);
  }
}

TEST(Weiszfeld, ZeroWeightPointsAreIgnored) {
  const std::vector<mesh::Vec3> pts{{0, 0, 0}, {100, 100, 100}};
  const auto m = weighted_geometric_median(pts, {1.0, 0.0});
  EXPECT_NEAR(mesh::norm(m), 0.0, 1e-6);
}

TEST(Weiszfeld, RejectsInvalidInputs) {
  EXPECT_THROW(weighted_geometric_median({}, {}), InvalidArgument);
  EXPECT_THROW(weighted_geometric_median({{0, 0, 0}}, {1.0, 2.0}),
               InvalidArgument);
  EXPECT_THROW(weighted_geometric_median({{0, 0, 0}}, {-1.0}),
               InvalidArgument);
  EXPECT_THROW(weighted_geometric_median({{0, 0, 0}}, {0.0}),
               InvalidArgument);
}

// ---- Eq. 2: position optimization ----

TEST(PositionOpt, RanksAnchorsAndBestIsTorsoFront) {
  const har::SampleGenerator gen(tiny_generator_config());
  har::HarModel surrogate(tiny_model_config());
  TriggerPositionOptimizer opt(gen, surrogate, PositionObjective{1.0, 0.0});
  har::SampleSpec spec;
  const auto ranked =
      opt.evaluate_anchors(spec, mesh::TriggerSpec::aluminum_2x2());
  ASSERT_EQ(ranked.size(), mesh::kNumAnchors);
  for (std::size_t i = 1; i < ranked.size(); ++i)
    EXPECT_GE(ranked[i - 1].score, ranked[i].score);
  for (const auto& c : ranked) {
    EXPECT_GE(c.feature_distance, 0.0);
    EXPECT_GE(c.heatmap_deviation, 0.0);
  }
  // A torso-front anchor must beat the leg anchors (the paper's
  // "suboptimal (e.g., on the leg)" baseline).
  const auto score_of = [&](mesh::BodyAnchor a) {
    for (const auto& c : ranked)
      if (c.anchor == a) return c.score;
    ADD_FAILURE() << "anchor missing";
    return 0.0;
  };
  const double best_torso = std::max(
      {score_of(mesh::BodyAnchor::Chest), score_of(mesh::BodyAnchor::Abdomen),
       score_of(mesh::BodyAnchor::UpperChestLeft),
       score_of(mesh::BodyAnchor::UpperChestRight),
       score_of(mesh::BodyAnchor::Waist)});
  EXPECT_GT(best_torso, score_of(mesh::BodyAnchor::RightThigh));
  EXPECT_GT(best_torso, score_of(mesh::BodyAnchor::LeftThigh));
}

TEST(PositionOpt, StealthPenaltyReordersScores) {
  const har::SampleGenerator gen(tiny_generator_config());
  har::HarModel surrogate(tiny_model_config());
  har::SampleSpec spec;
  const mesh::TriggerSpec trig;
  TriggerPositionOptimizer no_penalty(gen, surrogate,
                                      PositionObjective{1.0, 0.0});
  TriggerPositionOptimizer heavy_penalty(gen, surrogate,
                                         PositionObjective{1.0, 100.0});
  const auto a = no_penalty.best_anchor(spec, trig);
  const auto b = heavy_penalty.evaluate_anchors(spec, trig);
  // With a huge beta every score goes negative: beta term dominates.
  EXPECT_GT(a.score, 0.0);
  EXPECT_LT(b.front().score, a.score);
}

TEST(PositionOpt, PerFrameOptimaMatchAnchorCatalogue) {
  const har::SampleGenerator gen(tiny_generator_config());
  har::HarModel surrogate(tiny_model_config());
  TriggerPositionOptimizer opt(gen, surrogate);
  har::SampleSpec spec;
  const auto optima =
      opt.per_frame_optima(spec, mesh::TriggerSpec{}, {0, 3, 7});
  ASSERT_EQ(optima.size(), 3u);
  const mesh::HumanBody body(mesh::BodyParams::participant(0));
  for (const auto& p : optima) {
    bool is_anchor = false;
    for (const auto a : mesh::all_anchors())
      if (mesh::distance(p, body.anchor_position(a)) < 1e-9) is_anchor = true;
    EXPECT_TRUE(is_anchor);
  }
  EXPECT_THROW(opt.per_frame_optima(spec, mesh::TriggerSpec{}, {}),
               InvalidArgument);
  EXPECT_THROW(opt.per_frame_optima(spec, mesh::TriggerSpec{}, {99}),
               InvalidArgument);
}

// ---- Poisoning mechanics ----

har::Dataset make_synthetic_dataset(std::size_t per_class, Rng& rng,
                                    float base = 0.0F) {
  har::Dataset ds;
  ds.set_num_classes(6);
  for (std::size_t label = 0; label < 6; ++label) {
    for (std::size_t rep = 0; rep < per_class; ++rep) {
      har::Sample s;
      s.heatmaps = Tensor::rand_uniform({8, 16, 16}, rng, base, base + 1.0F);
      s.label = label;
      s.spec.activity = mesh::activity_from_index(label);
      s.spec.repetition = static_cast<std::uint32_t>(rep);
      ds.add(std::move(s));
    }
  }
  return ds;
}

TEST(Poison, ReplacesChosenFramesAndRelabels) {
  Rng rng(11);
  har::Dataset train = make_synthetic_dataset(10, rng);
  // Twins: same specs, recognizable constant frames.
  har::Dataset twins;
  twins.set_num_classes(6);
  for (const std::size_t i : train.indices_of_label(0)) {
    har::Sample t = train.sample(i);
    t.heatmaps.fill(7.0F);
    twins.add(std::move(t));
  }
  PoisonConfig cfg;
  cfg.victim_label = 0;
  cfg.target_label = 1;
  cfg.injection_rate = 0.5;
  const std::vector<std::size_t> frames{2, 5};
  const PoisonResult result = poison_dataset(train, twins, cfg, frames);

  EXPECT_EQ(result.poisoned_indices.size(), 5u);
  EXPECT_EQ(result.dataset.indices_of_label(0).size(), 5u);
  EXPECT_EQ(result.dataset.indices_of_label(1).size(), 15u);
  const std::size_t hw = 16 * 16;
  for (const std::size_t i : result.poisoned_indices) {
    const auto& s = result.dataset.sample(i);
    EXPECT_EQ(s.label, 1u);
    // Poisoned frames replaced by the twin content...
    for (const std::size_t f : frames)
      for (std::size_t j = 0; j < hw; ++j)
        EXPECT_EQ(s.heatmaps[f * hw + j], 7.0F);
    // ...while other frames are untouched.
    EXPECT_NE(s.heatmaps[0 * hw + 3], 7.0F);
  }
  // Original dataset untouched (value semantics).
  EXPECT_EQ(train.indices_of_label(0).size(), 10u);
}

TEST(Poison, ZeroRateIsIdentity) {
  Rng rng(12);
  har::Dataset train = make_synthetic_dataset(4, rng);
  har::Dataset twins;
  twins.set_num_classes(6);
  for (const std::size_t i : train.indices_of_label(0))
    twins.add(train.sample(i));
  PoisonConfig cfg;
  cfg.injection_rate = 0.0;
  const PoisonResult result = poison_dataset(train, twins, cfg, {0});
  EXPECT_TRUE(result.poisoned_indices.empty());
  EXPECT_EQ(result.dataset.indices_of_label(0).size(), 4u);
}

TEST(Poison, RateControlsPoisonCount) {
  Rng rng(13);
  har::Dataset train = make_synthetic_dataset(10, rng);
  har::Dataset twins;
  twins.set_num_classes(6);
  for (const std::size_t i : train.indices_of_label(0))
    twins.add(train.sample(i));
  for (const double rate : {0.1, 0.3, 0.7, 1.0}) {
    PoisonConfig cfg;
    cfg.injection_rate = rate;
    const PoisonResult r = poison_dataset(train, twins, cfg, {0, 1});
    EXPECT_EQ(r.poisoned_indices.size(),
              static_cast<std::size_t>(std::lround(rate * 10)));
  }
}

TEST(Poison, ValidatesConfiguration) {
  Rng rng(14);
  har::Dataset train = make_synthetic_dataset(2, rng);
  har::Dataset twins;
  twins.set_num_classes(6);
  for (const std::size_t i : train.indices_of_label(0))
    twins.add(train.sample(i));
  PoisonConfig cfg;
  cfg.victim_label = 0;
  cfg.target_label = 0;
  EXPECT_THROW(poison_dataset(train, twins, cfg, {0}), InvalidArgument);
  cfg.target_label = 1;
  cfg.injection_rate = 1.5;
  EXPECT_THROW(poison_dataset(train, twins, cfg, {0}), InvalidArgument);
  cfg.injection_rate = 0.5;
  EXPECT_THROW(poison_dataset(train, twins, cfg, {}), InvalidArgument);
  // Twins that do not match the training grid are rejected.
  har::Dataset wrong_twins;
  wrong_twins.set_num_classes(6);
  har::Sample alien;
  alien.heatmaps = Tensor({8, 16, 16});
  alien.spec.repetition = 999;
  wrong_twins.add(std::move(alien));
  EXPECT_THROW(poison_dataset(train, wrong_twins, cfg, {0}), Error);
}

TEST(Poison, FrameChoiceFirstK) {
  Rng rng(15);
  har::Dataset train = make_synthetic_dataset(2, rng);
  har::HarModel surrogate(tiny_model_config());
  PoisonConfig cfg;
  cfg.poisoned_frames = 3;
  cfg.frame_selection = FrameSelection::FirstK;
  const auto frames =
      choose_poison_frames(surrogate, train, cfg, xai::ShapConfig{});
  EXPECT_EQ(frames, (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_STREQ(frame_selection_name(FrameSelection::FirstK), "first_k");
}

TEST(Poison, FrameChoiceShapTopKReturnsDistinctValidFrames) {
  Rng rng(16);
  har::Dataset train = make_synthetic_dataset(3, rng);
  har::HarModel surrogate(tiny_model_config());
  PoisonConfig cfg;
  cfg.poisoned_frames = 4;
  xai::ShapConfig shap;
  shap.num_permutations = 2;
  const auto frames = choose_poison_frames(surrogate, train, cfg, shap, 2);
  EXPECT_EQ(frames.size(), 4u);
  std::set<std::size_t> unique(frames.begin(), frames.end());
  EXPECT_EQ(unique.size(), 4u);
  for (const auto f : frames) EXPECT_LT(f, 8u);
}

// ---- Metrics ----

TEST(AttackEval, MetricsComputedFromPredictions) {
  // A rigged "model" is impractical here; instead verify the metric
  // arithmetic through a real model but on datasets where we compare
  // against predict_all directly.
  Rng rng(17);
  har::HarModel model(tiny_model_config());
  har::Dataset clean = make_synthetic_dataset(2, rng);
  har::Dataset attack;
  attack.set_num_classes(6);
  for (const std::size_t i : clean.indices_of_label(0))
    attack.add(clean.sample(i));

  const AttackMetrics m = evaluate_attack(model, clean, attack, 0, 1);
  const auto attack_preds = har::predict_all(model, attack);
  std::size_t hit = 0;
  std::size_t mis = 0;
  for (const auto p : attack_preds) {
    if (p == 1) ++hit;
    if (p != 0) ++mis;
  }
  EXPECT_DOUBLE_EQ(m.asr, static_cast<double>(hit) / attack_preds.size());
  EXPECT_DOUBLE_EQ(m.uasr, static_cast<double>(mis) / attack_preds.size());
  EXPECT_NEAR(m.cdr, har::evaluate_accuracy(model, clean), 1e-9);
  EXPECT_GE(m.uasr, m.asr);  // targeted success implies misclassification
  EXPECT_THROW(evaluate_attack(model, clean, attack, 1, 1), InvalidArgument);
}

// ---- Plan assembly ----

TEST(BackdoorAttack, PlanContainsFramesAndPlacement) {
  const std::string cache = "test_tmp_attack_cache";
  std::filesystem::remove_all(cache);
  ::setenv("MMHAR_CACHE_DIR", cache.c_str(), 1);

  const har::SampleGenerator gen(tiny_generator_config());
  har::HarModel surrogate(tiny_model_config());

  // A minimal clean training set from the real generator.
  har::DatasetConfig grid;
  grid.participants = {0};
  grid.distances_m = {1.2};
  grid.angles_deg = {0.0};
  const har::Dataset train = har::build_dataset(gen, grid);

  BackdoorAttackConfig cfg;
  cfg.victim_label = 0;
  cfg.target_label = 1;
  cfg.poisoned_frames = 3;
  cfg.shap.num_permutations = 2;
  cfg.reference_spec.distance_m = 1.2;
  BackdoorAttack attack(gen, surrogate, cfg);
  const BackdoorPlan plan = attack.plan(train);

  EXPECT_EQ(plan.frames.size(), 3u);
  EXPECT_EQ(plan.mean_abs_shap.size(), 8u);
  EXPECT_EQ(plan.anchor_ranking.size(), mesh::kNumAnchors);
  EXPECT_EQ(plan.per_frame_optima.size(), 3u);
  // Placement is on the body front (local -x side).
  EXPECT_LT(plan.placement.local_position.x, 0.0);

  // Poison through the plan: twins generated + spliced.
  const PoisonResult result = attack.poison(train, grid, plan, 0.5);
  EXPECT_EQ(result.poisoned_indices.size(), 1u);  // 0.5 * 1 victim sample
  EXPECT_EQ(result.dataset.sample(result.poisoned_indices[0]).label, 1u);

  // Ablation: optimize_position=false places on the leg.
  cfg.optimize_position = false;
  BackdoorAttack ablated(gen, surrogate, cfg);
  const BackdoorPlan leg_plan = ablated.plan(train);
  const mesh::HumanBody body(mesh::BodyParams::participant(0));
  EXPECT_NEAR(mesh::distance(leg_plan.placement.local_position,
                             body.anchor_position(
                                 mesh::BodyAnchor::RightThigh)),
              0.0, 1e-9);

  ::unsetenv("MMHAR_CACHE_DIR");
  std::filesystem::remove_all(cache);
}

}  // namespace
}  // namespace mmhar::core
