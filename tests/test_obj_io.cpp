// Tests for OBJ import/export.
#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "common/check.h"
#include "common/serialize.h"
#include "mesh/human.h"
#include "mesh/obj_io.h"
#include "mesh/primitives.h"

namespace mmhar::mesh {
namespace {

TEST(ObjIo, RoundTripsGeometry) {
  const TriMesh box = make_box({0, 0, 0}, {1, 2, 3}, Material::wood());
  std::stringstream ss;
  write_obj(ss, box);
  const TriMesh back = read_obj(ss);
  ASSERT_EQ(back.num_vertices(), box.num_vertices());
  ASSERT_EQ(back.num_triangles(), box.num_triangles());
  for (std::size_t i = 0; i < box.num_vertices(); ++i) {
    EXPECT_NEAR(back.vertices()[i].x, box.vertices()[i].x, 1e-7);
    EXPECT_NEAR(back.vertices()[i].y, box.vertices()[i].y, 1e-7);
    EXPECT_NEAR(back.vertices()[i].z, box.vertices()[i].z, 1e-7);
  }
  for (std::size_t t = 0; t < box.num_triangles(); ++t) {
    EXPECT_EQ(back.triangles()[t].v0, box.triangles()[t].v0);
    EXPECT_EQ(back.triangles()[t].v2, box.triangles()[t].v2);
  }
}

TEST(ObjIo, ParsesFaceIndexSuffixes) {
  std::stringstream ss("v 0 0 0\nv 1 0 0\nv 0 1 0\nf 1/1/1 2/2/2 3/3/3\n");
  const TriMesh m = read_obj(ss);
  EXPECT_EQ(m.num_triangles(), 1u);
  EXPECT_EQ(m.triangles()[0].v2, 2u);
}

TEST(ObjIo, RejectsMalformedInput) {
  std::stringstream bad_vertex("v 1 2\nf 1 2 3\n");
  EXPECT_THROW(read_obj(bad_vertex), IoError);
  std::stringstream zero_index("v 0 0 0\nv 1 0 0\nv 0 1 0\nf 0 1 2\n");
  EXPECT_THROW(read_obj(zero_index), Error);
}

TEST(ObjIo, SavesSequenceWithNumberedNames) {
  const std::string dir = "test_tmp_obj";
  ensure_directory(dir);
  const HumanBody body(BodyParams::participant(0));
  std::vector<TriMesh> frames{body.build(HumanPose{}),
                              body.build(HumanPose{})};
  save_obj_sequence(dir + "/pose", frames);
  EXPECT_TRUE(file_exists(dir + "/pose_0000.obj"));
  EXPECT_TRUE(file_exists(dir + "/pose_0001.obj"));
  std::filesystem::remove_all(dir);
}

TEST(ObjIo, HumanBodyExportIsWellFormed) {
  const HumanBody body(BodyParams::participant(2));
  std::stringstream ss;
  write_obj(ss, body.build(HumanPose{}));
  const TriMesh back = read_obj(ss);
  EXPECT_GT(back.num_triangles(), 200u);
  // All face indices valid.
  for (const auto& t : back.triangles()) {
    EXPECT_LT(t.v0, back.num_vertices());
    EXPECT_LT(t.v1, back.num_vertices());
    EXPECT_LT(t.v2, back.num_vertices());
  }
}

}  // namespace
}  // namespace mmhar::mesh
