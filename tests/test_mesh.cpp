// Tests for geometry, primitives, the articulated human body, trigger
// attachment, and the activity animator.
#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"
#include "mesh/activity.h"
#include "mesh/human.h"
#include "mesh/primitives.h"
#include "mesh/trigger.h"

namespace mmhar::mesh {
namespace {

TEST(Geometry, VectorAlgebra) {
  const Vec3 a{1, 2, 3};
  const Vec3 b{4, 5, 6};
  EXPECT_DOUBLE_EQ(dot(a, b), 32.0);
  const Vec3 c = cross(Vec3{1, 0, 0}, Vec3{0, 1, 0});
  EXPECT_DOUBLE_EQ(c.z, 1.0);
  EXPECT_NEAR(norm(Vec3{3, 4, 0}), 5.0, 1e-12);
  const Vec3 n = normalized(Vec3{0, 0, 5});
  EXPECT_DOUBLE_EQ(n.z, 1.0);
  EXPECT_DOUBLE_EQ(norm(normalized(Vec3{0, 0, 0})), 0.0);
}

TEST(Geometry, RotateZ) {
  const Vec3 r = rotate_z(Vec3{1, 0, 0}, kPi / 2.0);
  EXPECT_NEAR(r.x, 0.0, 1e-12);
  EXPECT_NEAR(r.y, 1.0, 1e-12);
  EXPECT_NEAR(rad2deg(deg2rad(33.0)), 33.0, 1e-12);
}

TEST(TriMesh, AddMergeAndDerivedQuantities) {
  TriMesh m;
  const auto v0 = m.add_vertex({0, 0, 0});
  const auto v1 = m.add_vertex({1, 0, 0});
  const auto v2 = m.add_vertex({0, 1, 0});
  m.add_triangle(v0, v1, v2, Material::skin());
  EXPECT_EQ(m.num_triangles(), 1u);
  EXPECT_NEAR(m.triangle_area(0), 0.5, 1e-12);
  EXPECT_NEAR(m.triangle_normal(0).z, 1.0, 1e-12);
  const Vec3 c = m.triangle_centroid(0);
  EXPECT_NEAR(c.x, 1.0 / 3.0, 1e-12);

  TriMesh other;
  other.add_vertex({5, 5, 5});
  other.add_vertex({6, 5, 5});
  other.add_vertex({5, 6, 5});
  other.add_triangle(0, 1, 2, Material::aluminum());
  m.merge(other);
  EXPECT_EQ(m.num_triangles(), 2u);
  EXPECT_EQ(m.num_vertices(), 6u);
  EXPECT_FLOAT_EQ(m.triangle_material(1).reflectivity,
                  Material::aluminum().reflectivity);
  EXPECT_NEAR(m.total_area(), 1.0, 1e-12);
}

TEST(TriMesh, TransformsActOnAllVertices) {
  TriMesh m;
  m.add_vertex({1, 0, 0});
  m.add_vertex({2, 0, 0});
  m.translate({0, 0, 3});
  EXPECT_DOUBLE_EQ(m.vertices()[0].z, 3.0);
  m.rotate_z_about_origin(kPi);
  EXPECT_NEAR(m.vertices()[1].x, -2.0, 1e-12);
  m.scale_about({0, 0, 0}, 2.0);
  EXPECT_NEAR(m.vertices()[1].x, -4.0, 1e-12);
}

TEST(TriMesh, RejectsOutOfRangeIndices) {
  TriMesh m;
  m.add_vertex({0, 0, 0});
  EXPECT_THROW(m.add_triangle(0, 1, 2, Material::skin()), InvalidArgument);
}

TEST(Primitives, SphereAreaApproximatesAnalytic) {
  const double r = 0.5;
  const TriMesh s =
      make_sphere({0, 0, 0}, r, Material::skin(), 12, 16);
  const double analytic = 4.0 * kPi * r * r;
  EXPECT_NEAR(s.total_area(), analytic, 0.1 * analytic);
  // Normals point outward.
  for (std::size_t t = 0; t < s.num_triangles(); t += 7) {
    const Vec3 c = s.triangle_centroid(t);
    EXPECT_GT(dot(s.triangle_normal(t), normalized(c)), 0.0);
  }
}

TEST(Primitives, CapsuleSpansItsAxis) {
  const Vec3 a{0, 0, 0};
  const Vec3 b{0, 0, 1};
  const TriMesh c = make_capsule(a, b, 0.1, Material::skin());
  const Vec3 lo = c.bounds_min();
  const Vec3 hi = c.bounds_max();
  EXPECT_NEAR(lo.z, -0.1, 1e-9);
  EXPECT_NEAR(hi.z, 1.1, 1e-9);
  EXPECT_NEAR(hi.x, 0.1, 1e-9);
  EXPECT_THROW(make_capsule(a, a, 0.1, Material::skin()), InvalidArgument);
}

TEST(Primitives, BoxHasOutwardNormalsAndFullArea) {
  const TriMesh box = make_box({0, 0, 0}, {1, 2, 3}, Material::wood());
  EXPECT_EQ(box.num_triangles(), 12u);
  EXPECT_NEAR(box.total_area(), 2 * (1 * 2 + 1 * 3 + 2 * 3), 1e-9);
  const Vec3 center{0.5, 1.0, 1.5};
  for (std::size_t t = 0; t < 12; ++t) {
    const Vec3 out = box.triangle_centroid(t) - center;
    EXPECT_GT(dot(box.triangle_normal(t), out), 0.0) << "face " << t;
  }
  EXPECT_THROW(make_box({1, 0, 0}, {0, 1, 1}, Material::wood()),
               InvalidArgument);
}

TEST(Primitives, PlateFacesRequestedNormal) {
  const Vec3 n{-1, 0, 0};
  const TriMesh p = make_plate({2, 0, 1}, n, {0, 0, 1}, 0.1, 0.2,
                               Material::aluminum(), 2);
  EXPECT_EQ(p.num_triangles(), 8u);
  EXPECT_NEAR(p.total_area(), 0.02, 1e-9);
  for (std::size_t t = 0; t < p.num_triangles(); ++t)
    EXPECT_GT(dot(p.triangle_normal(t), n), 0.99);
}

TEST(Human, BuildProducesReasonableBody) {
  const HumanBody body(BodyParams::participant(0));
  const TriMesh m = body.build(HumanPose{});
  EXPECT_GT(m.num_triangles(), 200u);
  EXPECT_LT(m.num_triangles(), 2000u);
  const Vec3 hi = m.bounds_max();
  const Vec3 lo = m.bounds_min();
  EXPECT_NEAR(hi.z, body.params().height, 0.12);
  EXPECT_GT(lo.z, -0.2);
}

TEST(Human, ParticipantsHaveDistinctHeights) {
  const double h0 = BodyParams::participant(0).height;
  const double h1 = BodyParams::participant(1).height;
  const double h2 = BodyParams::participant(2).height;
  EXPECT_NE(h0, h1);
  EXPECT_NE(h1, h2);
  EXPECT_EQ(BodyParams::participant(3).height, h0);  // wraps mod 3
}

TEST(Human, TopologyIsPoseInvariant) {
  const HumanBody body(BodyParams::participant(1));
  HumanPose a;
  HumanPose b;
  b.right_hand = {-0.55, -0.1, 1.1};
  const TriMesh ma = body.build(a);
  const TriMesh mb = body.build(b);
  // Same triangle count and connectivity — required by the simulator's
  // frame-to-frame velocity estimation.
  ASSERT_EQ(ma.num_triangles(), mb.num_triangles());
  ASSERT_EQ(ma.num_vertices(), mb.num_vertices());
  for (std::size_t t = 0; t < ma.num_triangles(); t += 13) {
    EXPECT_EQ(ma.triangles()[t].v0, mb.triangles()[t].v0);
    EXPECT_EQ(ma.triangles()[t].v1, mb.triangles()[t].v1);
  }
}

TEST(Human, HandFollowsPoseTarget) {
  const HumanBody body(BodyParams::participant(0));
  HumanPose pose;
  pose.right_hand = {-0.4, -0.15, 1.2};
  const TriMesh m = body.build(pose);
  // Some vertex should lie within the hand-sphere radius of the target.
  double best = 1e9;
  for (const auto& v : m.vertices())
    best = std::min(best, distance(v, pose.right_hand));
  EXPECT_LT(best, body.params().hand_radius + 1e-6);
}

TEST(Human, UnreachableTargetIsClamped) {
  const HumanBody body(BodyParams::participant(0));
  HumanPose pose;
  pose.right_hand = {-5.0, 0.0, 1.0};  // far beyond arm reach
  EXPECT_NO_THROW(body.build(pose));
}

TEST(Human, AnchorsAreOnTheBodyFront) {
  const HumanBody body(BodyParams::participant(0));
  for (const BodyAnchor a : all_anchors()) {
    const Vec3 p = body.anchor_position(a);
    EXPECT_LT(p.x, 0.0) << anchor_name(a);  // front faces local -x
    EXPECT_GT(p.z, 0.0);
    EXPECT_LT(p.z, body.params().height);
    EXPECT_NEAR(norm(body.anchor_normal(a)), 1.0, 1e-12);
  }
  EXPECT_EQ(all_anchors().size(), kNumAnchors);
}

TEST(Human, PlacementFacesTheRadar) {
  const HumanBody body(BodyParams::participant(0));
  TriMesh m = body.build(HumanPose{});
  const double d = 1.5;
  const double angle = deg2rad(30.0);
  place_in_world(m, d, angle);
  const Vec3 c = m.vertex_centroid();
  EXPECT_NEAR(std::atan2(c.y, c.x), angle, 0.05);
  EXPECT_NEAR(std::hypot(c.x, c.y), d, 0.1);
  // The chest anchor must end up on the radar side of the body centroid.
  const Vec3 chest = place_point_in_world(
      body.anchor_position(BodyAnchor::Chest), d, angle);
  EXPECT_LT(std::hypot(chest.x, chest.y), std::hypot(c.x, c.y));
}

TEST(Trigger, SpecSizesMatchPaper) {
  const TriggerSpec small = TriggerSpec::aluminum_2x2();
  EXPECT_NEAR(small.width_m, 0.0508, 1e-6);
  const TriggerSpec big = TriggerSpec::aluminum_4x4();
  EXPECT_NEAR(big.width_m, 0.1016, 1e-6);
  EXPECT_NEAR(big.width_m * big.height_m, 4 * small.width_m * small.height_m,
              1e-9);
}

TEST(Trigger, AttachAddsMetalPlateAtStandoff) {
  const HumanBody body(BodyParams::participant(0));
  TriMesh m = body.build(HumanPose{});
  const std::size_t before = m.num_triangles();
  TriggerSpec spec;
  const Vec3 pos = body.anchor_position(BodyAnchor::Chest);
  attach_trigger(m, pos, {-1, 0, 0}, spec);
  EXPECT_EQ(m.num_triangles(), before + 2 * spec.tessellation *
                                            spec.tessellation);
  // New triangles carry metal reflectivity and sit in front of the body.
  const std::size_t t = before;
  EXPECT_FLOAT_EQ(m.triangle_material(t).reflectivity, spec.reflectivity);
  EXPECT_LT(m.triangle_centroid(t).x, pos.x);
}

TEST(Trigger, UnderClothingAttenuatesReflectivity) {
  TriggerSpec spec;
  spec.under_clothing = true;
  const float hidden = spec.effective_reflectivity();
  spec.under_clothing = false;
  const float bare = spec.effective_reflectivity();
  EXPECT_LT(hidden, bare);
  EXPECT_GT(hidden, 0.9F * bare);  // fabric is nearly RF-transparent
}

TEST(Activity, NamesAndIndices) {
  EXPECT_STREQ(activity_name(Activity::Push), "Push");
  EXPECT_STREQ(activity_name(Activity::Anticlockwise), "Anticlockwise");
  EXPECT_EQ(activity_from_index(3), Activity::RightSwipe);
  EXPECT_THROW(activity_from_index(6), InvalidArgument);
}

TEST(Activity, SimilarTrajectoryPairs) {
  EXPECT_TRUE(similar_trajectories(Activity::Push, Activity::Pull));
  EXPECT_TRUE(
      similar_trajectories(Activity::LeftSwipe, Activity::RightSwipe));
  EXPECT_TRUE(
      similar_trajectories(Activity::Clockwise, Activity::Anticlockwise));
  EXPECT_FALSE(similar_trajectories(Activity::Push, Activity::RightSwipe));
  EXPECT_FALSE(similar_trajectories(Activity::Push, Activity::Push));
}

class AnimatorActivities : public ::testing::TestWithParam<Activity> {};

TEST_P(AnimatorActivities, TrajectoriesAreReachableAndSmooth) {
  const HumanBody body(BodyParams::participant(0));
  const ActivityAnimator animator(body);
  Rng rng(5);
  const auto traj = animator.hand_trajectory(GetParam(), 32, rng);
  ASSERT_EQ(traj.size(), 32u);
  const double reach =
      body.params().upper_arm_length + body.params().forearm_length + 0.1;
  for (std::size_t f = 0; f < traj.size(); ++f) {
    EXPECT_LT(distance(traj[f], body.right_shoulder()), reach + 0.35)
        << "frame " << f;
    if (f > 0) {
      EXPECT_LT(distance(traj[f], traj[f - 1]), 0.15);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    All, AnimatorActivities,
    ::testing::Values(Activity::Push, Activity::Pull, Activity::LeftSwipe,
                      Activity::RightSwipe, Activity::Clockwise,
                      Activity::Anticlockwise));

TEST(Animator, PushMovesTowardRadarPullAway) {
  const HumanBody body(BodyParams::participant(0));
  MotionJitter still;
  still.amplitude_sigma = 0.0;
  still.center_sigma = 0.0;
  still.phase_sigma = 0.0;
  still.tremor_sigma = 0.0;
  const ActivityAnimator animator(body, still);
  Rng rng(1);
  const auto push = animator.hand_trajectory(Activity::Push, 32, rng);
  const auto pull = animator.hand_trajectory(Activity::Pull, 32, rng);
  // Push: mid-gesture x is smaller (closer to radar at local -x) than at
  // the start; Pull is the opposite.
  EXPECT_LT(push[16].x, push[0].x);
  EXPECT_GT(pull[16].x, pull[0].x);
}

TEST(Animator, SwipesMirrorEachOther) {
  const HumanBody body(BodyParams::participant(0));
  MotionJitter still;
  still.amplitude_sigma = 0.0;
  still.center_sigma = 0.0;
  still.phase_sigma = 0.0;
  still.tremor_sigma = 0.0;
  const ActivityAnimator animator(body, still);
  Rng rng(1);
  const auto left = animator.hand_trajectory(Activity::LeftSwipe, 16, rng);
  Rng rng2(1);
  const auto right =
      animator.hand_trajectory(Activity::RightSwipe, 16, rng2);
  const double y0 = left[0].y;
  for (std::size_t f = 0; f < 16; ++f)
    EXPECT_NEAR(left[f].y - y0, -(right[f].y - y0), 1e-9);
}

TEST(Animator, JitterMakesRepetitionsDistinct) {
  const HumanBody body(BodyParams::participant(0));
  const ActivityAnimator animator(body);
  Rng rng(10);
  const auto a = animator.hand_trajectory(Activity::Push, 32, rng);
  const auto b = animator.hand_trajectory(Activity::Push, 32, rng);
  double diff = 0.0;
  for (std::size_t f = 0; f < 32; ++f) diff += distance(a[f], b[f]);
  EXPECT_GT(diff, 1e-3);
}

TEST(Sway, OffsetsAreBoundedAndMoving) {
  MotionJitter jitter;
  Rng rng(3);
  const auto sway = body_sway_offsets(jitter, 32, 0.5, rng);
  ASSERT_EQ(sway.size(), 32u);
  double max_amp = 0.0;
  double path = 0.0;
  for (std::size_t f = 0; f < 32; ++f) {
    max_amp = std::max(max_amp, norm(sway[f]));
    if (f > 0) path += distance(sway[f], sway[f - 1]);
  }
  EXPECT_LT(max_amp, 0.1);   // centimeters, not meters
  EXPECT_GT(path, 1e-4);     // genuinely moving (keeps the torso post-MTI)
}

}  // namespace
}  // namespace mmhar::mesh
