// End-to-end tests for mmhar_rtcheck, the cross-TU real-time-safety
// checker. The binary runs as a real subprocess — first over the seeded
// fixture tree in tests/lint_fixtures/rtcheck/ (every rule asserted at
// its exact file:line with its call chain), then over the real repo
// (which must be clean), and finally over a mutated copy of the repo
// proving the acceptance property: deleting the MMHAR_REALTIME /
// MMHAR_REALTIME_HANDOFF annotation from any required root turns the
// check red instead of silently shrinking the verified set.
//
// MMHAR_RTCHECK_BIN and MMHAR_REPO_ROOT are injected by
// tests/CMakeLists.txt so the test works from any build directory.

#include <gtest/gtest.h>

#include <sys/wait.h>

#include <array>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct RunResult {
  int exit_code = -1;
  std::string output;  // stdout + stderr interleaved
};

RunResult run(const std::string& cmd) {
  RunResult r;
  const std::string full = cmd + " 2>&1";
  FILE* pipe = popen(full.c_str(), "r");
  if (pipe == nullptr) return r;
  std::array<char, 4096> buf{};
  std::size_t n = 0;
  while ((n = fread(buf.data(), 1, buf.size(), pipe)) > 0)
    r.output.append(buf.data(), n);
  const int status = pclose(pipe);
  if (status >= 0 && WIFEXITED(status)) r.exit_code = WEXITSTATUS(status);
  return r;
}

std::string q(const fs::path& p) { return "\"" + p.string() + "\""; }

const fs::path kRoot = MMHAR_REPO_ROOT;
const std::string kRtcheck = std::string("\"") + MMHAR_RTCHECK_BIN + "\"";

const fs::path kFixture = kRoot / "tests" / "lint_fixtures" / "rtcheck";

fs::path scratch_dir() {
  const fs::path d = fs::temp_directory_path() / "mmhar_rtcheck_test";
  fs::create_directories(d);
  return d;
}

void write_file(const fs::path& p, const std::string& text) {
  std::ofstream out(p);
  out << text;
  ASSERT_TRUE(out.good()) << "failed to write " << p;
}

std::string read_file(const fs::path& p) {
  std::ifstream in(p);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string fixture_cmd() {
  return kRtcheck + " --registry " + q(kFixture / "registry.cpp") +
         " --roots " + q(kFixture / "roots.txt") + " " + q(kFixture / "src");
}

TEST(RtcheckFixtures, FindsEverySeededViolationAtExactLines) {
  const RunResult r = run(fixture_cmd());
  EXPECT_EQ(r.exit_code, 1) << r.output;
  const char* expected[] = {
      "src/rt_bad.cpp:7: [alloc] operator new allocates "
      "[in fixture::helper_allocates]",
      "src/rt_bad.cpp:16: [alloc] '.push_back(...)' may grow a container "
      "(allocates) [in fixture::hot_growth]",
      "src/rt_bad.cpp:20: [lock] lock acquisition outside a "
      "MMHAR_REALTIME_HANDOFF body (the annotated slot hand-off protocol) "
      "[in fixture::hot_lock]",
      "src/rt_bad.cpp:24: [lock] raw std lock acquisition",
      "src/rt_bad.cpp:28: [block] sleep blocks the real-time thread "
      "[in fixture::hot_block]",
      "src/rt_bad.cpp:36: [alloc] operator new allocates "
      "[in fixture::hot_pool]",
      "src/rt_bad.cpp:42: [throw] throw unwinds with unbounded latency",
      "src/rt_bad.cpp:46: [env-read] 'MMHAR_FIXTURE_ROGUE' is not in the "
      "env registry [in fixture::hot_env]",
  };
  for (const char* e : expected)
    EXPECT_NE(r.output.find(e), std::string::npos)
        << "missing finding: " << e << "\n" << r.output;
  EXPECT_NE(r.output.find("8 violation(s)"), std::string::npos) << r.output;
  EXPECT_NE(
      r.output.find("mmhar_rtcheck: summary files=1 functions=15 roots=11 "
                    "reachable=13 violations=8 status=fail"),
      std::string::npos)
      << r.output;
}

TEST(RtcheckFixtures, TransitiveViolationCarriesTheFullCallChain) {
  const RunResult r = run(fixture_cmd());
  EXPECT_NE(r.output.find("chain: fixture::hot_transitive -> "
                          "fixture::transitive_mid -> "
                          "fixture::helper_allocates"),
            std::string::npos)
      << r.output;
  // The lambda body inside parallel_for is charged to its enclosing
  // function, so the chain is the enclosing function itself.
  EXPECT_NE(r.output.find("rt_bad.cpp:36: [alloc]"), std::string::npos);
  EXPECT_NE(r.output.find("chain: fixture::hot_pool"), std::string::npos)
      << r.output;
}

TEST(RtcheckFixtures, SuppressionsHandoffAndUnreachedStaySilent) {
  const RunResult r = run(fixture_cmd());
  // allow(alloc, ...) comma list suppresses hot_suppressed's new.
  EXPECT_EQ(r.output.find("hot_suppressed"), std::string::npos) << r.output;
  // allow(calls) cuts traversal into cold_build; its alloc is unreported.
  EXPECT_EQ(r.output.find("cold_build"), std::string::npos) << r.output;
  // The waived parallel_for dispatch itself does not appear as [block].
  EXPECT_EQ(r.output.find("[block] thread-pool dispatch"), std::string::npos)
      << r.output;
  // A wrapper lock inside a MMHAR_REALTIME_HANDOFF body is the protocol.
  EXPECT_EQ(r.output.find("handoff_ok"), std::string::npos) << r.output;
  // Unannotated and never called from a root: not traversed at all.
  EXPECT_EQ(r.output.find("never_reached_alloc"), std::string::npos)
      << r.output;
  // Registered env knob reads are fine.
  EXPECT_EQ(r.output.find("MMHAR_FIXTURE_KNOB"), std::string::npos)
      << r.output;
}

TEST(RtcheckFixtures, ReportFileMirrorsTheFindings) {
  const fs::path report = scratch_dir() / "report.txt";
  fs::remove(report);
  const RunResult r = run(fixture_cmd() + " --report " + q(report));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  const std::string text = read_file(report);
  EXPECT_NE(text.find("src/rt_bad.cpp:7: [alloc] operator new allocates"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("chain: fixture::hot_transitive -> "
                      "fixture::transitive_mid -> "
                      "fixture::helper_allocates"),
            std::string::npos)
      << text;
}

TEST(RtcheckFixtures, RootCoverageMissingFunction) {
  const fs::path roots = scratch_dir() / "roots_missing.txt";
  write_file(roots, "realtime fixture::no_such_function\n");
  const RunResult r = run(kRtcheck + " --rule root-coverage --roots " +
                          q(roots) + " " + q(kFixture / "src"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("required root 'fixture::no_such_function' names "
                          "no function in the scanned roots"),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find(":1: [root-coverage]"), std::string::npos)
      << r.output;
}

TEST(RtcheckFixtures, RootCoverageLostAnnotation) {
  // cold_build exists but is deliberately unannotated: requiring it must
  // report the lost annotation at the function's own location.
  const fs::path roots = scratch_dir() / "roots_lost.txt";
  write_file(roots, "realtime fixture::cold_build\n");
  const RunResult r = run(kRtcheck + " --rule root-coverage --roots " +
                          q(roots) + " " + q(kFixture / "src"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("src/rt_bad.cpp:59: [root-coverage] required root "
                          "'fixture::cold_build' has lost its MMHAR_REALTIME "
                          "annotation"),
            std::string::npos)
      << r.output;
}

TEST(RtcheckFixtures, MalformedRootsRowIsAUsageError) {
  const fs::path roots = scratch_dir() / "roots_bad.txt";
  write_file(roots, "bogus fixture::hot_transitive\n");
  const RunResult r = run(kRtcheck + " --roots " + q(roots) + " " +
                          q(kFixture / "src"));
  EXPECT_EQ(r.exit_code, 2) << r.output;
  EXPECT_NE(r.output.find("bad roots file"), std::string::npos) << r.output;
}

std::string real_tree_cmd(const fs::path& root, const fs::path& roots_file) {
  return kRtcheck + " --registry " +
         q(root / "src" / "common" / "env_registry.cpp") + " --roots " +
         q(roots_file) + " " + q(root / "src") + " " + q(root / "bench") +
         " " + q(root / "tools");
}

TEST(RtcheckRealTree, ServingHotPathIsCleanWithZeroWaivers) {
  const RunResult r =
      run(real_tree_cmd(kRoot, kRoot / "tools" / "rtcheck_roots.txt"));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("0 violation(s)"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("status=ok"), std::string::npos) << r.output;
  // The annotated root set must actually be non-trivial: the roots file
  // floor plus the definitions it covers.
  EXPECT_NE(r.output.find("annotated root(s)"), std::string::npos)
      << r.output;
}

TEST(RtcheckRealTree, DeletingAnyRootAnnotationFails) {
  // Acceptance property: strip the MMHAR_REALTIME / MMHAR_REALTIME_HANDOFF
  // token from each real annotation site, one at a time, in a scratch copy
  // of the repo; every single deletion must turn root-coverage red.
  const fs::path tmp = scratch_dir() / "tree";
  fs::remove_all(tmp);
  fs::create_directories(tmp);
  for (const char* dir : {"src", "bench", "tools"})
    fs::copy(kRoot / dir, tmp / dir, fs::copy_options::recursive);

  // Find every live annotation site (skip the macro definitions in
  // thread_annotations.h and prose mentions in comments).
  struct Site {
    fs::path file;
    std::size_t line_idx;
    std::string original;
  };
  std::vector<Site> sites;
  for (const auto& entry : fs::recursive_directory_iterator(tmp / "src")) {
    if (!entry.is_regular_file()) continue;
    if (entry.path().filename() == "thread_annotations.h") continue;
    const auto ext = entry.path().extension().string();
    if (ext != ".h" && ext != ".cpp") continue;
    std::ifstream in(entry.path());
    std::string line;
    std::size_t idx = 0;
    for (; std::getline(in, line); ++idx) {
      const auto first = line.find_first_not_of(" \t");
      if (first != std::string::npos &&
          (line.compare(first, 2, "//") == 0 || line[first] == '#' ||
           line[first] == '*'))
        continue;
      if (line.find("MMHAR_REALTIME") != std::string::npos)
        sites.push_back({entry.path(), idx, line});
    }
  }
  ASSERT_GE(sites.size(), 10u)
      << "annotation sites not found — did the annotation spelling change?";

  for (const auto& site : sites) {
    std::ifstream in(site.file);
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
    in.close();
    ASSERT_LT(site.line_idx, lines.size());

    std::string stripped = lines[site.line_idx];
    for (const char* token : {"MMHAR_REALTIME_HANDOFF", "MMHAR_REALTIME"}) {
      for (auto at = stripped.find(token); at != std::string::npos;
           at = stripped.find(token))
        stripped.erase(at, std::string(token).size());
    }
    lines[site.line_idx] = stripped;
    {
      std::ofstream out(site.file);
      for (const auto& l : lines) out << l << "\n";
    }

    const RunResult r =
        run(real_tree_cmd(tmp, kRoot / "tools" / "rtcheck_roots.txt"));
    EXPECT_EQ(r.exit_code, 1)
        << "stripping the annotation from " << site.file << ":"
        << site.line_idx + 1 << " (`" << site.original
        << "`) went unnoticed:\n" << r.output;
    EXPECT_NE(r.output.find("[root-coverage]"), std::string::npos)
        << r.output;
    EXPECT_NE(r.output.find("has lost its MMHAR_REALTIME"), std::string::npos)
        << r.output;

    // Restore for the next site.
    lines[site.line_idx] = site.original;
    std::ofstream out(site.file);
    for (const auto& l : lines) out << l << "\n";
  }
  fs::remove_all(tmp);
}

}  // namespace
