// Tests for the DSP extras: CA-CFAR detection + NMS and the
// micro-Doppler spectrogram, including an end-to-end check that CFAR
// finds the physical trigger blob in simulated DRAI heatmaps.
#include <gtest/gtest.h>

#include <cmath>

#include "dsp/cfar.h"
#include "dsp/microdoppler.h"
#include "har/generator.h"
#include "mesh/human.h"
#include "radar/simulator.h"

namespace mmhar::dsp {
namespace {

Tensor noise_map(std::size_t rows, std::size_t cols, Rng& rng,
                 float level = 0.05F) {
  return Tensor::rand_uniform({rows, cols}, rng, 0.0F, level);
}

TEST(Cfar, FindsIsolatedPeak) {
  Rng rng(1);
  Tensor map = noise_map(32, 32, rng);
  map.at(12, 20) = 1.0F;
  CfarConfig cfg;
  const auto detections = cfar_detect(map, cfg);
  ASSERT_FALSE(detections.empty());
  bool found = false;
  for (const auto& d : detections)
    if (d.row == 12 && d.col == 20) found = true;
  EXPECT_TRUE(found);
  // SNR of the peak detection is large.
  for (const auto& d : detections) {
    if (d.row == 12 && d.col == 20) {
      EXPECT_GT(d.snr(), 5.0F);
    }
  }
}

TEST(Cfar, NoDetectionsOnFlatMap) {
  Tensor flat = Tensor::full({16, 16}, 0.5F);
  CfarConfig cfg;
  EXPECT_TRUE(cfar_detect(flat, cfg).empty());
}

TEST(Cfar, ThresholdFactorControlsSensitivity) {
  Rng rng(2);
  Tensor map = noise_map(32, 32, rng, 0.2F);
  map.at(10, 10) = 0.9F;  // modest peak
  CfarConfig loose;
  loose.threshold_factor = 2.0F;
  CfarConfig strict;
  strict.threshold_factor = 20.0F;
  EXPECT_GE(cfar_detect(map, loose).size(),
            cfar_detect(map, strict).size());
  EXPECT_TRUE(cfar_detect(map, strict).empty());
}

TEST(Cfar, BorderPolicy) {
  Rng rng(3);
  Tensor map = noise_map(16, 16, rng);
  map.at(0, 0) = 1.0F;  // corner peak
  CfarConfig clip;
  clip.clip_borders = true;
  bool corner_found = false;
  for (const auto& d : cfar_detect(map, clip))
    if (d.row == 0 && d.col == 0) corner_found = true;
  EXPECT_TRUE(corner_found);
  CfarConfig skip;
  skip.clip_borders = false;
  for (const auto& d : cfar_detect(map, skip)) {
    EXPECT_GE(d.row, skip.guard_cells + skip.training_cells);
    EXPECT_GE(d.col, skip.guard_cells + skip.training_cells);
  }
}

TEST(Cfar, NonMaxSuppressionKeepsStrongest) {
  std::vector<Detection> dets{
      {10, 10, 1.0F, 0.1F}, {11, 10, 0.8F, 0.1F},  // same cluster
      {20, 20, 0.5F, 0.1F},                        // separate
  };
  const auto kept = non_max_suppress(dets, 2);
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_FLOAT_EQ(kept[0].value, 1.0F);
  EXPECT_FLOAT_EQ(kept[1].value, 0.5F);
}

TEST(Cfar, DetectPeaksCapsCount) {
  Rng rng(4);
  Tensor map = noise_map(32, 32, rng);
  map.at(5, 5) = 1.0F;
  map.at(20, 25) = 0.9F;
  map.at(28, 8) = 0.8F;
  CfarConfig cfg;
  const auto peaks = detect_peaks(map, cfg, 2);
  ASSERT_EQ(peaks.size(), 2u);
  EXPECT_GE(peaks[0].value, peaks[1].value);
}

TEST(Cfar, ValidatesInput) {
  Tensor cube({2, 3, 4});
  EXPECT_THROW(cfar_detect(cube, CfarConfig{}), InvalidArgument);
  Tensor map({8, 8});
  CfarConfig bad;
  bad.training_cells = 0;
  EXPECT_THROW(cfar_detect(map, bad), InvalidArgument);
}

TEST(Cfar, FindsTriggerBlobInSimulatedDrai) {
  // The trigger-detection defense premise: a reflector produces a CFAR-
  // detectable blob near the torso range that is absent from clean data.
  har::GeneratorConfig gc;
  gc.num_frames = 4;
  gc.radar.num_chirps = 8;
  gc.radar.num_virtual_antennas = 16;
  gc.environment = radar::EnvironmentKind::None;
  const har::SampleGenerator gen(gc);
  har::SampleSpec spec;
  spec.distance_m = 1.2;

  const mesh::HumanBody body(mesh::BodyParams::participant(0));
  har::TriggerPlacement tp;
  tp.local_position = body.anchor_position(mesh::BodyAnchor::Chest);

  const Tensor clean = gen.generate(spec);
  const Tensor triggered = gen.generate(spec, &tp);

  const auto count_near_torso = [&](const Tensor& seq) {
    std::size_t hits = 0;
    const std::size_t hw = 32 * 32;
    CfarConfig cfg;
    cfg.threshold_factor = 6.0F;
    for (std::size_t f = 0; f < seq.dim(0); ++f) {
      Tensor frame({32, 32});
      std::copy(seq.data() + f * hw, seq.data() + (f + 1) * hw,
                frame.data());
      for (const auto& d : detect_peaks(frame, cfg, 4)) {
        // Torso range bin ~ (1.2 - 0.14) / 0.075 ~ 14.
        if (d.row >= 11 && d.row <= 17) ++hits;
      }
    }
    return hits;
  };
  EXPECT_GT(count_near_torso(triggered), count_near_torso(clean));
}

// ---- micro-Doppler ----

RadarCube doppler_cube(double cycles_per_chirp, std::size_t chirps = 16) {
  RadarCube cube(chirps, 2, 64);
  constexpr double kPi = 3.14159265358979323846;
  for (std::size_t q = 0; q < chirps; ++q)
    for (std::size_t k = 0; k < 2; ++k)
      for (std::size_t n = 0; n < 64; ++n) {
        const double phase =
            2.0 * kPi * (10.0 * n / 64.0 + cycles_per_chirp * q);
        cube.at(q, k, n) += cfloat(static_cast<float>(std::cos(phase)),
                                   static_cast<float>(std::sin(phase)));
      }
  return cube;
}

TEST(MicroDoppler, SpectrumPeaksAtInjectedShift) {
  const RadarCube cube = doppler_cube(0.25);
  MicroDopplerConfig cfg;
  cfg.remove_clutter = false;
  cfg.window = WindowKind::Rect;
  const Tensor spectrum = doppler_spectrum(cube, cfg);
  EXPECT_EQ(spectrum.size(), 16u);
  EXPECT_EQ(spectrum.argmax(), 8u + 4u);  // center + 0.25*16
}

TEST(MicroDoppler, SpectrogramShapeAndNormalization) {
  std::vector<RadarCube> frames{doppler_cube(0.1), doppler_cube(-0.1),
                                doppler_cube(0.2)};
  MicroDopplerConfig cfg;
  cfg.remove_clutter = false;
  const Tensor gram = micro_doppler_spectrogram(frames, cfg);
  EXPECT_EQ(gram.shape(), (std::vector<std::size_t>{3, 16}));
  EXPECT_FLOAT_EQ(gram.max(), 1.0F);
  EXPECT_GE(gram.min(), 0.0F);
}

TEST(MicroDoppler, CentroidTrackFollowsShiftSign) {
  std::vector<RadarCube> frames{doppler_cube(0.2), doppler_cube(-0.2)};
  MicroDopplerConfig cfg;
  cfg.remove_clutter = false;
  cfg.window = WindowKind::Rect;
  const Tensor gram = micro_doppler_spectrogram(frames, cfg);
  const auto track = doppler_centroid_track(gram);
  ASSERT_EQ(track.size(), 2u);
  EXPECT_GT(track[0], 0.5);   // positive shift above center
  EXPECT_LT(track[1], -0.5);  // negative shift below center
}

TEST(MicroDoppler, RangeGateValidation) {
  const RadarCube cube = doppler_cube(0.1);
  MicroDopplerConfig cfg;
  cfg.min_range_bin = 10;
  cfg.max_range_bin = 10;
  EXPECT_THROW(doppler_spectrum(cube, cfg), InvalidArgument);
}

TEST(MicroDoppler, PushAndPullHaveOppositeEarlyCentroids) {
  // Physical property the classifier exploits: Push starts with motion
  // toward the radar (positive Doppler), Pull with motion away.
  har::GeneratorConfig gc;
  gc.num_frames = 8;
  gc.radar.num_chirps = 16;
  gc.radar.num_virtual_antennas = 8;
  gc.environment = radar::EnvironmentKind::None;
  gc.jitter.amplitude_sigma = 0.0;
  gc.jitter.phase_sigma = 0.0;
  gc.jitter.tremor_sigma = 0.0;
  gc.jitter.sway_amplitude_m = 0.0;  // isolate the hand motion
  const har::SampleGenerator gen(gc);

  MicroDopplerConfig cfg;
  cfg.min_range_bin = 0;
  cfg.max_range_bin = 32;

  har::SampleSpec spec;
  spec.distance_m = 1.2;
  spec.activity = mesh::Activity::Push;
  const auto push_track = doppler_centroid_track(
      micro_doppler_spectrogram(gen.generate_cubes(spec), cfg));
  spec.activity = mesh::Activity::Pull;
  const auto pull_track = doppler_centroid_track(
      micro_doppler_spectrogram(gen.generate_cubes(spec), cfg));

  // Compare the dominant early-gesture direction.
  const double push_early = push_track[1] + push_track[2];
  const double pull_early = pull_track[1] + pull_track[2];
  EXPECT_GT(push_early * pull_early, -100.0);  // both finite
  EXPECT_NE(push_early > 0, pull_early > 0)
      << "push early " << push_early << ", pull early " << pull_early;
}

}  // namespace
}  // namespace mmhar::dsp
