// Parameterized gradient-check sweeps across layer geometries — catches
// indexing bugs that only appear for particular stride/padding/channel
// combinations.
#include <gtest/gtest.h>

#include "nn/conv.h"
#include "nn/dense.h"
#include "nn/gradcheck.h"
#include "nn/lstm.h"

namespace mmhar::nn {
namespace {

constexpr float kTol = 2.5e-2F;

struct ConvCase {
  std::size_t in_ch, out_ch, kernel, stride, padding, h, w;
};

class ConvShapes : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvShapes, GradCheck) {
  const auto p = GetParam();
  Rng rng(p.in_ch * 100 + p.kernel * 10 + p.stride);
  Conv2D conv(p.in_ch, p.out_ch, p.kernel, p.stride, p.padding, rng);
  const Tensor x = Tensor::randn({2, p.in_ch, p.h, p.w}, rng, 0.0F, 0.7F);
  const auto r = check_layer_gradients(conv, x, rng, 1e-2F, 40);
  EXPECT_LT(r.max_relative_error, kTol)
      << "conv " << p.in_ch << "->" << p.out_ch << " k" << p.kernel << " s"
      << p.stride << " p" << p.padding;
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ConvShapes,
    ::testing::Values(ConvCase{1, 1, 1, 1, 0, 4, 4},    // pointwise
                      ConvCase{1, 2, 3, 1, 0, 6, 6},    // valid conv
                      ConvCase{2, 2, 3, 1, 1, 5, 5},    // same padding
                      ConvCase{1, 3, 5, 2, 2, 8, 8},    // strided 5x5
                      ConvCase{3, 1, 3, 2, 1, 8, 6},    // non-square input
                      ConvCase{2, 4, 3, 3, 0, 9, 9},    // stride 3
                      ConvCase{4, 2, 1, 2, 0, 6, 6}));  // 1x1 strided

struct DenseCase {
  std::size_t in, out, batch;
};

class DenseShapes : public ::testing::TestWithParam<DenseCase> {};

TEST_P(DenseShapes, GradCheck) {
  const auto p = GetParam();
  Rng rng(p.in * 7 + p.out);
  Dense dense(p.in, p.out, rng);
  const Tensor x = Tensor::randn({p.batch, p.in}, rng);
  const auto r = check_layer_gradients(dense, x, rng, 1e-2F, 60);
  EXPECT_LT(r.max_relative_error, kTol);
}

INSTANTIATE_TEST_SUITE_P(Geometries, DenseShapes,
                         ::testing::Values(DenseCase{1, 1, 1},
                                           DenseCase{3, 7, 2},
                                           DenseCase{16, 4, 5},
                                           DenseCase{5, 32, 3}));

struct LstmCase {
  std::size_t input, hidden, steps, batch;
  bool sequence;
};

class LstmShapes : public ::testing::TestWithParam<LstmCase> {};

TEST_P(LstmShapes, GradCheck) {
  const auto p = GetParam();
  Rng rng(p.input * 31 + p.hidden + p.steps);
  LSTM lstm(p.input, p.hidden, rng, p.sequence);
  const Tensor x =
      Tensor::randn({p.batch, p.steps, p.input}, rng, 0.0F, 0.5F);
  const auto r = check_layer_gradients(lstm, x, rng, 1e-2F, 40);
  EXPECT_LT(r.max_relative_error, kTol)
      << "lstm " << p.input << "->" << p.hidden << " T" << p.steps
      << (p.sequence ? " seq" : " last");
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, LstmShapes,
    ::testing::Values(LstmCase{1, 1, 1, 1, false},   // degenerate
                      LstmCase{2, 3, 4, 2, false},   // small
                      LstmCase{3, 2, 8, 1, false},   // long sequence
                      LstmCase{2, 3, 4, 2, true},    // sequence output
                      LstmCase{4, 4, 2, 3, true}));  // square

TEST(ConvShapesEdge, OutputSizeFormula) {
  Rng rng(1);
  Conv2D conv(1, 1, 3, 2, 1, rng);
  EXPECT_EQ(conv.out_size(32), 16u);
  EXPECT_EQ(conv.out_size(5), 3u);
  Conv2D valid(1, 1, 3, 1, 0, rng);
  EXPECT_EQ(valid.out_size(5), 3u);
}

}  // namespace
}  // namespace mmhar::nn
