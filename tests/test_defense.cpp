// Tests for the defenses: trigger-detection classifier and the
// correct-label augmentation defense.
#include <gtest/gtest.h>

#include "defense/augmentation.h"
#include "defense/trigger_detector.h"

namespace mmhar::defense {
namespace {

/// Synthetic "clean" samples: diffuse noise. "Triggered": noise plus a
/// bright localized blob — the radar-visible signature of a reflector.
har::Dataset make_clean(std::size_t n, Rng& rng) {
  har::Dataset ds;
  ds.set_num_classes(6);
  for (std::size_t i = 0; i < n; ++i) {
    har::Sample s;
    s.heatmaps = Tensor::rand_uniform({4, 32, 32}, rng, 0.0F, 0.3F);
    s.label = i % 6;
    s.spec.repetition = static_cast<std::uint32_t>(i);
    ds.add(std::move(s));
  }
  return ds;
}

har::Dataset make_triggered(std::size_t n, Rng& rng) {
  har::Dataset ds;
  ds.set_num_classes(6);
  for (std::size_t i = 0; i < n; ++i) {
    har::Sample s;
    s.heatmaps = Tensor::rand_uniform({4, 32, 32}, rng, 0.0F, 0.3F);
    const std::size_t cy = 10 + rng.index(12);
    const std::size_t cx = 10 + rng.index(12);
    for (std::size_t f = 0; f < 4; ++f)
      for (std::size_t dy = 0; dy < 3; ++dy)
        for (std::size_t dx = 0; dx < 3; ++dx)
          s.heatmaps[(f * 32 + cy + dy) * 32 + cx + dx] = 1.0F;
    s.label = 0;
    s.spec.repetition = static_cast<std::uint32_t>(1000 + i);
    ds.add(std::move(s));
  }
  return ds;
}

TEST(TriggerDetector, LearnsSeparableTriggerSignature) {
  Rng rng(1);
  har::Dataset clean_train = make_clean(24, rng);
  har::Dataset trig_train = make_triggered(24, rng);
  DetectorConfig cfg;
  cfg.epochs = 6;
  TriggerDetector detector(cfg);
  detector.train(clean_train, trig_train);

  har::Dataset clean_test = make_clean(12, rng);
  har::Dataset trig_test = make_triggered(12, rng);
  const DetectorMetrics m = detector.evaluate(clean_test, trig_test);
  EXPECT_GT(m.frame_accuracy, 0.85);
  EXPECT_GT(m.sample_recall, 0.8);
  EXPECT_LT(m.sample_false_positive, 0.2);
}

TEST(TriggerDetector, PerSampleDecisionsMatchFlaggedFraction) {
  Rng rng(2);
  har::Dataset clean_train = make_clean(16, rng);
  har::Dataset trig_train = make_triggered(16, rng);
  DetectorConfig cfg;
  cfg.epochs = 4;
  TriggerDetector detector(cfg);
  detector.train(clean_train, trig_train);

  const auto& sample = trig_train.sample(0).heatmaps;
  const double frac = detector.flagged_fraction(sample);
  EXPECT_GE(frac, 0.0);
  EXPECT_LE(frac, 1.0);
  EXPECT_EQ(detector.is_triggered(sample),
            frac > cfg.sample_flag_fraction);
  // Single-frame probability is a valid probability.
  Tensor frame({32, 32});
  std::copy(sample.data(), sample.data() + 32 * 32, frame.data());
  const double p = detector.frame_probability(frame);
  EXPECT_GE(p, 0.0);
  EXPECT_LE(p, 1.0);
}

TEST(TriggerDetector, RequiresTrainingData) {
  DetectorConfig cfg;
  TriggerDetector detector(cfg);
  har::Dataset empty;
  Rng rng(3);
  har::Dataset some = make_clean(2, rng);
  EXPECT_THROW(detector.train(empty, some), InvalidArgument);
  EXPECT_THROW(detector.train(some, empty), InvalidArgument);
}

TEST(Augmentation, AddsCorrectlyLabeledTriggeredSamples) {
  Rng rng(4);
  har::Dataset poisoned = make_clean(30, rng);  // stand-in training set
  har::Dataset twins = make_triggered(10, rng);
  // Give the twins a non-victim label to verify relabeling to victim.
  for (std::size_t i = 0; i < twins.size(); ++i) twins.sample(i).label = 3;

  AugmentationConfig cfg;
  cfg.augmentation_rate = 1.0;
  const har::Dataset augmented =
      augment_with_correct_labels(poisoned, twins, /*victim_label=*/0, cfg);
  EXPECT_GT(augmented.size(), poisoned.size());
  // All added samples carry the victim (true) label.
  for (std::size_t i = poisoned.size(); i < augmented.size(); ++i)
    EXPECT_EQ(augmented.sample(i).label, 0u);
}

TEST(Augmentation, ZeroRateIsIdentity) {
  Rng rng(5);
  har::Dataset poisoned = make_clean(10, rng);
  har::Dataset twins = make_triggered(5, rng);
  AugmentationConfig cfg;
  cfg.augmentation_rate = 0.0;
  const har::Dataset out =
      augment_with_correct_labels(poisoned, twins, 0, cfg);
  EXPECT_EQ(out.size(), poisoned.size());
}

TEST(Augmentation, CappedByAvailableTwins) {
  Rng rng(6);
  har::Dataset poisoned = make_clean(60, rng);
  har::Dataset twins = make_triggered(3, rng);
  AugmentationConfig cfg;
  cfg.augmentation_rate = 5.0;  // asks for far more than available
  const har::Dataset out =
      augment_with_correct_labels(poisoned, twins, 0, cfg);
  EXPECT_EQ(out.size(), poisoned.size() + 3);
}

}  // namespace
}  // namespace mmhar::defense
