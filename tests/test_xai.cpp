// Tests for the SHAP module: exact Shapley axioms on analytic games,
// sampling-estimator convergence to the exact values, and frame
// importance over the CNN-LSTM model.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "har/model.h"
#include "har/trainer.h"
#include "xai/frame_importance.h"
#include "xai/shapley.h"

namespace mmhar::xai {
namespace {

double count_present(const std::vector<bool>& mask) {
  double n = 0;
  for (const bool b : mask) n += b ? 1.0 : 0.0;
  return n;
}

TEST(ExactShapley, AdditiveGameGivesIndividualValues) {
  // v(S) = sum of per-player weights -> phi_i = w_i exactly.
  const std::vector<double> w{1.0, 2.0, 3.0, 4.0};
  const ValueFunction v = [&w](const std::vector<bool>& mask) {
    double acc = 0.0;
    for (std::size_t i = 0; i < mask.size(); ++i)
      if (mask[i]) acc += w[i];
    return acc;
  };
  const auto phi = exact_shapley(4, v);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_NEAR(phi[i], w[i], 1e-12);
}

TEST(ExactShapley, DummyPlayerGetsZero) {
  // Player 2 never changes the value.
  const ValueFunction v = [](const std::vector<bool>& mask) {
    return (mask[0] ? 1.0 : 0.0) + (mask[1] ? 2.0 : 0.0);
  };
  const auto phi = exact_shapley(3, v);
  EXPECT_NEAR(phi[2], 0.0, 1e-12);
}

TEST(ExactShapley, SymmetricPlayersGetEqualShares) {
  // v(S) = 1 iff both players present (pure synergy).
  const ValueFunction v = [](const std::vector<bool>& mask) {
    return (mask[0] && mask[1]) ? 1.0 : 0.0;
  };
  const auto phi = exact_shapley(2, v);
  EXPECT_NEAR(phi[0], 0.5, 1e-12);
  EXPECT_NEAR(phi[1], 0.5, 1e-12);
}

TEST(ExactShapley, EfficiencyAxiom) {
  // Random-ish submodular game; check sum phi = v(full) - v(empty).
  const ValueFunction v = [](const std::vector<bool>& mask) {
    const double n = count_present(mask);
    return std::sqrt(n) + (mask[0] ? 0.3 : 0.0);
  };
  const auto phi = exact_shapley(5, v);
  const double total = std::accumulate(phi.begin(), phi.end(), 0.0);
  std::vector<bool> full(5, true);
  std::vector<bool> empty(5, false);
  EXPECT_NEAR(total, v(full) - v(empty), 1e-9);
}

TEST(ExactShapley, GloveGameMatchesKnownSolution) {
  // Classic: player 0 has a left glove, players 1,2 right gloves;
  // v(S)=1 if S contains player 0 and at least one of {1,2}.
  // Known Shapley values: (2/3, 1/6, 1/6).
  const ValueFunction v = [](const std::vector<bool>& mask) {
    return (mask[0] && (mask[1] || mask[2])) ? 1.0 : 0.0;
  };
  const auto phi = exact_shapley(3, v);
  EXPECT_NEAR(phi[0], 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(phi[1], 1.0 / 6.0, 1e-12);
  EXPECT_NEAR(phi[2], 1.0 / 6.0, 1e-12);
}

TEST(ExactShapley, RejectsDegenerateSizes) {
  const ValueFunction v = [](const std::vector<bool>&) { return 0.0; };
  EXPECT_THROW(exact_shapley(0, v), InvalidArgument);
  EXPECT_THROW(exact_shapley(21, v), InvalidArgument);
}

TEST(SamplingShapley, ConvergesToExactValues) {
  // Nonlinear game over 8 players.
  const ValueFunction v = [](const std::vector<bool>& mask) {
    const double n = count_present(mask);
    double bonus = 0.0;
    if (mask[3]) bonus += 0.7;
    if (mask[3] && mask[5]) bonus += 0.4;  // interaction
    return n * n * 0.05 + bonus;
  };
  const auto exact = exact_shapley(8, v);
  Rng rng(42);
  const auto approx = sampling_shapley(8, v, 400, rng);
  for (std::size_t i = 0; i < 8; ++i)
    EXPECT_NEAR(approx[i], exact[i], 0.05) << "player " << i;
}

TEST(SamplingShapley, EfficiencyHoldsExactlyPerConstruction) {
  const ValueFunction v = [](const std::vector<bool>& mask) {
    return count_present(mask) * 1.5 + (mask[0] ? 2.0 : 0.0);
  };
  Rng rng(1);
  const auto phi = sampling_shapley(6, v, 3, rng);
  const double total = std::accumulate(phi.begin(), phi.end(), 0.0);
  std::vector<bool> full(6, true);
  std::vector<bool> empty(6, false);
  EXPECT_NEAR(total, v(full) - v(empty), 1e-9);
}

TEST(SamplingShapley, DeterministicGivenSeed) {
  const ValueFunction v = [](const std::vector<bool>& mask) {
    return count_present(mask) + (mask[2] ? 0.5 : 0.0);
  };
  Rng a(7);
  Rng b(7);
  const auto pa = sampling_shapley(5, v, 10, a);
  const auto pb = sampling_shapley(5, v, 10, b);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(pa[i], pb[i]);
}

TEST(TopK, SortsByMagnitudeDescending) {
  const std::vector<double> values{0.1, -0.9, 0.5, -0.2, 0.0};
  const auto top = top_k_by_magnitude(values, 3);
  EXPECT_EQ(top, (std::vector<std::size_t>{1, 2, 3}));
  const auto all = top_k_by_magnitude(values, 99);
  EXPECT_EQ(all.size(), 5u);
  EXPECT_EQ(all[0], 1u);
}

// ---- Frame importance over the real model ----

har::HarModelConfig tiny_model_config() {
  har::HarModelConfig mc;
  mc.frames = 8;
  mc.height = 16;
  mc.width = 16;
  mc.conv1_channels = 4;
  mc.conv2_channels = 8;
  mc.feature_dim = 16;
  mc.lstm_hidden = 16;
  return mc;
}

TEST(FrameImportance, ShapValuesSumToPredictionDelta) {
  har::HarModel model(tiny_model_config());
  Rng rng(3);
  const Tensor sample = Tensor::rand_uniform({8, 16, 16}, rng, 0.0F, 1.0F);
  ShapConfig cfg;
  cfg.num_permutations = 4;
  cfg.baseline = ShapBaseline::Zero;
  FrameImportance importance(model, cfg);
  const auto phi = importance.shap_values(sample, 0);
  ASSERT_EQ(phi.size(), 8u);
  // Efficiency: sum phi = f(all frames) - f(no frames).
  const Tensor features = model.frame_features(sample);
  const Tensor full_logits =
      model.classify_features(features.reshaped({1, 8, 16}));
  Tensor empty_series({1, 8, 16});
  const Tensor empty_logits = model.classify_features(empty_series);
  const auto prob_of = [](const Tensor& logits, std::size_t c) {
    double mx = logits.max();
    double denom = 0.0;
    for (std::size_t i = 0; i < logits.size(); ++i)
      denom += std::exp(logits[i] - mx);
    return std::exp(logits[c] - mx) / denom;
  };
  const double delta = prob_of(full_logits, 0) - prob_of(empty_logits, 0);
  const double total = std::accumulate(phi.begin(), phi.end(), 0.0);
  EXPECT_NEAR(total, delta, 1e-4);
}

TEST(FrameImportance, IdentifiesTheDecisiveFrame) {
  // Train a tiny model where only frame 5 carries the class signal; the
  // SHAP attribution must put frame 5 on top.
  har::HarModel model(tiny_model_config());
  Rng rng(4);
  har::Dataset train;
  train.set_num_classes(6);
  for (int rep = 0; rep < 12; ++rep) {
    for (std::size_t label = 0; label < 2; ++label) {
      har::Sample s;
      s.heatmaps = Tensor::rand_uniform({8, 16, 16}, rng, 0.0F, 0.1F);
      if (label == 1) {
        for (std::size_t i = 0; i < 16 * 16; ++i)
          s.heatmaps[5 * 16 * 16 + i] += 0.9F;  // bright frame 5
      }
      s.label = label;
      train.add(std::move(s));
    }
  }
  har::TrainConfig tc;
  tc.epochs = 10;
  tc.batch_size = 8;
  har::train_model(model, train, tc);

  ShapConfig cfg;
  cfg.num_permutations = 8;
  FrameImportance importance(model, cfg);
  // Explain a positive sample w.r.t. class 1.
  const auto pos = train.indices_of_label(1);
  const auto top =
      importance.top_k_frames(train.sample(pos[0]).heatmaps, 1, 1);
  EXPECT_EQ(top.front(), 5u);
}

TEST(FrameImportance, HistogramCountsSumToSampleCount) {
  har::HarModel model(tiny_model_config());
  Rng rng(5);
  har::Dataset ds;
  ds.set_num_classes(6);
  for (int i = 0; i < 6; ++i) {
    har::Sample s;
    s.heatmaps = Tensor::rand_uniform({8, 16, 16}, rng, 0.0F, 1.0F);
    s.label = static_cast<std::size_t>(i % 6);
    ds.add(std::move(s));
  }
  ShapConfig cfg;
  cfg.num_permutations = 2;
  const auto histogram =
      most_important_frame_histogram(model, ds, cfg, /*max_samples=*/4);
  ASSERT_EQ(histogram.size(), 8u);
  EXPECT_EQ(std::accumulate(histogram.begin(), histogram.end(),
                            std::size_t{0}),
            4u);
}

TEST(FrameImportance, MeanAbsShapAveragesSamples) {
  har::HarModel model(tiny_model_config());
  Rng rng(6);
  har::Dataset ds;
  ds.set_num_classes(6);
  for (int i = 0; i < 3; ++i) {
    har::Sample s;
    s.heatmaps = Tensor::rand_uniform({8, 16, 16}, rng, 0.0F, 1.0F);
    s.label = 0;
    ds.add(std::move(s));
  }
  ShapConfig cfg;
  cfg.num_permutations = 2;
  FrameImportance importance(model, cfg);
  const auto mean = importance.mean_abs_shap(ds, {0, 1, 2}, 0);
  ASSERT_EQ(mean.size(), 8u);
  for (const double v : mean) EXPECT_GE(v, 0.0);
  EXPECT_THROW(importance.mean_abs_shap(ds, {}, 0), InvalidArgument);
}

}  // namespace
}  // namespace mmhar::xai
