// End-to-end tests for the static-analysis toolchain: mmhar_lint and
// mmhar_analyze are run as real subprocesses against the seeded fixture
// trees under tests/lint_fixtures/, and the exact (rule, file, line)
// findings are asserted.  The binaries and repo root are injected by
// tests/CMakeLists.txt via MMHAR_LINT_BIN / MMHAR_ANALYZE_BIN /
// MMHAR_REPO_ROOT so the test works from any build directory and under
// every sanitizer leg.

#include <gtest/gtest.h>

#include <sys/wait.h>

#include <array>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct RunResult {
  int exit_code = -1;
  std::string output;  // stdout + stderr interleaved
};

RunResult run(const std::string& cmd) {
  RunResult r;
  const std::string full = cmd + " 2>&1";
  FILE* pipe = popen(full.c_str(), "r");
  if (pipe == nullptr) return r;
  std::array<char, 4096> buf{};
  std::size_t n = 0;
  while ((n = fread(buf.data(), 1, buf.size(), pipe)) > 0)
    r.output.append(buf.data(), n);
  const int status = pclose(pipe);
  if (status >= 0 && WIFEXITED(status)) r.exit_code = WEXITSTATUS(status);
  return r;
}

std::string q(const fs::path& p) { return "\"" + p.string() + "\""; }

const fs::path kRoot = MMHAR_REPO_ROOT;
const std::string kLint = std::string("\"") + MMHAR_LINT_BIN + "\"";
const std::string kAnalyze = std::string("\"") + MMHAR_ANALYZE_BIN + "\"";

const fs::path kLintFixture = kRoot / "tests" / "lint_fixtures" / "lint" / "src";
const fs::path kAnalyzeFixture = kRoot / "tests" / "lint_fixtures" / "analyze";

fs::path scratch_dir() {
  const fs::path d = fs::temp_directory_path() / "mmhar_static_analysis_test";
  fs::create_directories(d);
  return d;
}

void write_file(const fs::path& p, const std::string& text) {
  std::ofstream out(p);
  out << text;
  ASSERT_TRUE(out.good()) << "failed to write " << p;
}

std::string read_file(const fs::path& p) {
  std::ifstream in(p);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// Every (rule, file) pair seeded into the lint fixture tree, with the
// count the fixture produces; doubles as a baseline that waives them all.
const std::string kLintFixtureBaseline =
    "banned-rng src/bad.cpp 1\n"
    "loop-alloc src/bad.cpp 1\n"
    "missing-pragma-once src/bad_header.h 1\n"
    "naked-alloc src/bad.cpp 1\n"
    "naked-cache-write src/bad.cpp 1\n"
    "parallel-ref-accum src/bad.cpp 1\n"
    "unchecked-data-arith src/bad.cpp 1\n";

TEST(LintFixtures, FindsEverySeededViolationAtExactLines) {
  const RunResult r = run(kLint + " " + q(kLintFixture));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  const char* expected[] = {
      "src/bad.cpp:14: [banned-rng]",
      "src/bad.cpp:15: [naked-alloc]",
      "src/bad.cpp:16: [unchecked-data-arith]",
      "src/bad.cpp:18: [loop-alloc]",
      "src/bad.cpp:21: [naked-cache-write]",
      "src/bad.cpp:28: [parallel-ref-accum]",
      "src/bad_header.h:1: [missing-pragma-once]",
  };
  for (const char* e : expected)
    EXPECT_NE(r.output.find(e), std::string::npos) << "missing finding: " << e
                                                   << "\n" << r.output;
  EXPECT_NE(r.output.find("scanned 3 file(s), 7 violation(s) (0 baselined)"),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("FAIL"), std::string::npos) << r.output;
}

TEST(LintFixtures, AllowCommentSilencesTheRule) {
  // suppressed.cpp carries a seeded rand() with a justified allow-comment on
  // the line above; it must contribute zero findings.
  const RunResult r = run(kLint + " " + q(kLintFixture));
  EXPECT_EQ(r.output.find("suppressed.cpp"), std::string::npos) << r.output;
}

TEST(LintFixtures, NonEmptyBaselineIsAnErrorByDefault) {
  // The baseline ratchet reached zero: any row in the file is itself a
  // lint failure unless the local-archaeology flag --allow-baseline is
  // passed — which the ctest/CI invocations deliberately never do.
  const fs::path base = scratch_dir() / "base_retired.txt";
  write_file(base, kLintFixtureBaseline);
  const RunResult r =
      run(kLint + " " + q(kLintFixture) + " --baseline " + q(base));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("the baseline is retired and must stay empty"),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("banned-rng src/bad.cpp 1"), std::string::npos)
      << r.output;
}

TEST(LintFixtures, BaselineWaivesExactCounts) {
  const fs::path base = scratch_dir() / "base_all.txt";
  write_file(base, kLintFixtureBaseline);
  const RunResult r = run(kLint + " " + q(kLintFixture) + " --baseline " +
                          q(base) + " --allow-baseline");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("scanned 3 file(s), 7 violation(s) (7 baselined)"),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("OK"), std::string::npos) << r.output;
}

TEST(LintFixtures, CountAboveBaselineFails) {
  // Same baseline minus the banned-rng row: that one finding is now new
  // debt and must fail the run even though six others stay waived.
  std::string rows = kLintFixtureBaseline;
  const std::string drop = "banned-rng src/bad.cpp 1\n";
  const auto pos = rows.find(drop);
  ASSERT_NE(pos, std::string::npos);
  rows.erase(pos, drop.size());
  const fs::path base = scratch_dir() / "base_missing_rng.txt";
  write_file(base, rows);
  const RunResult r = run(kLint + " " + q(kLintFixture) + " --baseline " +
                          q(base) + " --allow-baseline");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(
      r.output.find("rule 'banned-rng': 1 violation(s), baseline allows 0"),
      std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("(6 baselined)"), std::string::npos) << r.output;
}

TEST(LintFixtures, ShrunkCountPrintsTightenNote) {
  // A baseline looser than reality still passes, but the improvement is
  // called out so the baseline gets ratcheted down.
  std::string rows = kLintFixtureBaseline;
  const std::string tight = "banned-rng src/bad.cpp 1\n";
  const auto pos = rows.find(tight);
  ASSERT_NE(pos, std::string::npos);
  rows.replace(pos, tight.size(), "banned-rng src/bad.cpp 5\n");
  const fs::path base = scratch_dir() / "base_loose.txt";
  write_file(base, rows);
  const RunResult r = run(kLint + " " + q(kLintFixture) + " --baseline " +
                          q(base) + " --allow-baseline");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find(
                "'banned-rng' improved to 1 (baseline 5) — tighten the baseline"),
            std::string::npos)
      << r.output;
}

TEST(LintFixtures, UpdateBaselineWritesCurrentCounts) {
  const fs::path base = scratch_dir() / "base_rewritten.txt";
  fs::remove(base);
  const RunResult w = run(kLint + " " + q(kLintFixture) + " --baseline " +
                          q(base) + " --update-baseline");
  EXPECT_EQ(w.exit_code, 0) << w.output;
  EXPECT_NE(w.output.find(
                "baseline rewritten with 7 violation(s) across 7 (rule, file) pair(s)"),
            std::string::npos)
      << w.output;
  const std::string written = read_file(base);
  std::istringstream rows(kLintFixtureBaseline);
  std::string row;
  while (std::getline(rows, row))
    EXPECT_NE(written.find(row), std::string::npos)
        << "missing baseline row: " << row << "\n" << written;
  // The file it wrote must immediately green-light a re-run (with the
  // archaeology flag — without it the non-empty file is itself an error).
  const RunResult r = run(kLint + " " + q(kLintFixture) + " --baseline " +
                          q(base) + " --allow-baseline");
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST(LintRealTree, CheckedInBaselineIsEmptyAndEnforced) {
  // The exact invocation ctest/CI runs: real tree, checked-in baseline,
  // NO --allow-baseline. This passing proves both that the tree is clean
  // and that the baseline file carries zero active rows.
  const RunResult r = run(kLint + " " + q(kRoot / "src") + " " +
                          q(kRoot / "bench") + " " + q(kRoot / "tools") +
                          " --baseline " +
                          q(kRoot / "tools" / "lint_baseline.txt"));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("0 violation(s) (0 baselined)"), std::string::npos)
      << r.output;
  // Belt and braces: the file itself must contain only comments.
  const std::string baseline =
      read_file(kRoot / "tools" / "lint_baseline.txt");
  std::istringstream rows(baseline);
  std::string row;
  while (std::getline(rows, row)) {
    const auto first = row.find_first_not_of(" \t");
    if (first == std::string::npos) continue;
    EXPECT_EQ(row[first], '#') << "active baseline row: " << row;
  }
}

TEST(AnalyzeFixtures, FindsEverySeededViolationAtExactLines) {
  const fs::path registry = kAnalyzeFixture / "registry.cpp";
  const fs::path readme = kAnalyzeFixture / "readme.md";
  const RunResult r = run(kAnalyze + " --registry " + q(registry) +
                          " --readme " + q(readme) + " " +
                          q(kAnalyzeFixture / "src"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  const std::vector<std::string> expected = {
      "src/bad_lock.h:8: [lock-annotation-coverage]",
      "member `int hits = 0` needs MMHAR_GUARDED_BY",
      "src/dup_b.h:3: [header-hygiene] function 'fixture::twice' is also "
      "defined in src/dup_a.h:3",
      "src/env_read.cpp:6: [env-knob-registry] 'MMHAR_FIXTURE_ROGUE' is read "
      "here but has no row in the env registry",
      "src/missing_include.h:6: [header-hygiene] MMHAR_* thread-safety macros "
      "used without a direct #include of common/thread_annotations.h",
      registry.string() + ":5: [env-knob-registry] registry row "
      "'MMHAR_FIXTURE_UNDOC' is missing from the env table",
      registry.string() + ":6: [env-knob-registry] registry row "
      "'MMHAR_FIXTURE_STALE' is never read",
      readme.string() + ":7: [env-knob-registry] README env-table row "
      "'MMHAR_FIXTURE_ORPHAN' has no registry row",
  };
  for (const auto& e : expected)
    EXPECT_NE(r.output.find(e), std::string::npos) << "missing finding: " << e
                                                   << "\n" << r.output;
  EXPECT_NE(r.output.find("scanned 6 file(s), 7 violation(s)"),
            std::string::npos)
      << r.output;
}

TEST(AnalyzeFixtures, SuppressionAndTestPrefixStaySilent) {
  const RunResult r = run(kAnalyze + " --registry " +
                          q(kAnalyzeFixture / "registry.cpp") + " --readme " +
                          q(kAnalyzeFixture / "readme.md") + " " +
                          q(kAnalyzeFixture / "src"));
  // suppressed.h's unguarded member carries mmhar-analyze: allow(...), and
  // MMHAR_TEST_* reads are exempt from the registry by prefix.
  EXPECT_EQ(r.output.find("suppressed.h"), std::string::npos) << r.output;
  EXPECT_EQ(r.output.find("MMHAR_TEST_ANYTHING"), std::string::npos)
      << r.output;
}

TEST(AnalyzeRealTree, IsCleanWithTheCheckedInRegistry) {
  const RunResult r = run(kAnalyze + " --registry " +
                          q(kRoot / "src" / "common" / "env_registry.cpp") +
                          " --readme " + q(kRoot / "README.md") + " " +
                          q(kRoot / "src") + " " + q(kRoot / "bench") + " " +
                          q(kRoot / "tools"));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("0 violation(s)"), std::string::npos) << r.output;
}

TEST(AnalyzeRealTree, ServingKnobsAreRegisteredAndDocumented) {
  // The streaming-serving knobs ship as a family; each must have both a
  // registry row and a README table row, so a future rename can't leave a
  // half-documented knob behind the analyzer's back.
  const char* const kServingKnobs[] = {
      "MMHAR_SERVING_BATCH",       "MMHAR_SERVING_DROP_POLICY",
      "MMHAR_SERVING_FRAMES",      "MMHAR_SERVING_MAX_STREAM_FAULTS",
      "MMHAR_SERVING_QUEUE_DEPTH", "MMHAR_SERVING_RATE_HZ",
      "MMHAR_SERVING_STREAMS",     "MMHAR_SERVING_WATCHDOG_MS",
  };
  const std::string registry =
      read_file(kRoot / "src" / "common" / "env_registry.cpp");
  const std::string readme = read_file(kRoot / "README.md");
  for (const char* knob : kServingKnobs) {
    EXPECT_NE(registry.find(std::string("{\"") + knob + "\""),
              std::string::npos)
        << knob << " has no registry row";
    EXPECT_NE(readme.find(std::string("`") + knob + "`"), std::string::npos)
        << knob << " is missing from the README env table";
  }
}

TEST(AnalyzeRealTree, DeletingAnyRegistryRowFails) {
  // The acceptance property for the closed env-knob namespace: removing any
  // single row from the real registry must turn the analyzer red, because
  // the README row and/or the read site it backed becomes unaccounted for.
  const fs::path real_registry = kRoot / "src" / "common" / "env_registry.cpp";
  std::ifstream in(real_registry);
  ASSERT_TRUE(in.good());
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);

  std::vector<std::size_t> row_lines;
  for (std::size_t i = 0; i < lines.size(); ++i)
    if (lines[i].find("{\"MMHAR_") != std::string::npos) row_lines.push_back(i);
  ASSERT_GE(row_lines.size(), 10u)
      << "registry rows not found — did the row format change?";

  const fs::path tmp = scratch_dir() / "registry_minus_one.cpp";
  for (const std::size_t drop : row_lines) {
    std::ostringstream pruned;
    for (std::size_t i = 0; i < lines.size(); ++i)
      if (i != drop) pruned << lines[i] << "\n";
    write_file(tmp, pruned.str());
    const RunResult r = run(kAnalyze + " --registry " + q(tmp) + " --readme " +
                            q(kRoot / "README.md") + " " + q(kRoot / "src") +
                            " " + q(kRoot / "bench") + " " + q(kRoot / "tools"));
    EXPECT_EQ(r.exit_code, 1)
        << "deleting registry row `" << lines[drop]
        << "` went unnoticed:\n" << r.output;
    EXPECT_NE(r.output.find("[env-knob-registry]"), std::string::npos)
        << r.output;
  }
}

}  // namespace
