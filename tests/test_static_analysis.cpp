// End-to-end tests for the static-analysis toolchain: mmhar_lint,
// mmhar_analyze, and mmhar_detcheck are run as real subprocesses against
// the seeded fixture trees under tests/lint_fixtures/, and the exact
// (rule, file, line) findings are asserted.  The binaries and repo root
// are injected by tests/CMakeLists.txt via MMHAR_LINT_BIN /
// MMHAR_ANALYZE_BIN / MMHAR_DETCHECK_BIN / MMHAR_REPO_ROOT so the test
// works from any build directory and under every sanitizer leg.
// (mmhar_rtcheck has its own suite, tests/test_rtcheck.cpp.)

#include <gtest/gtest.h>

#include <sys/wait.h>

#include <array>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct RunResult {
  int exit_code = -1;
  std::string output;  // stdout + stderr interleaved
};

RunResult run(const std::string& cmd) {
  RunResult r;
  const std::string full = cmd + " 2>&1";
  FILE* pipe = popen(full.c_str(), "r");
  if (pipe == nullptr) return r;
  std::array<char, 4096> buf{};
  std::size_t n = 0;
  while ((n = fread(buf.data(), 1, buf.size(), pipe)) > 0)
    r.output.append(buf.data(), n);
  const int status = pclose(pipe);
  if (status >= 0 && WIFEXITED(status)) r.exit_code = WEXITSTATUS(status);
  return r;
}

std::string q(const fs::path& p) { return "\"" + p.string() + "\""; }

const fs::path kRoot = MMHAR_REPO_ROOT;
const std::string kLint = std::string("\"") + MMHAR_LINT_BIN + "\"";
const std::string kAnalyze = std::string("\"") + MMHAR_ANALYZE_BIN + "\"";
const std::string kDetcheck = std::string("\"") + MMHAR_DETCHECK_BIN + "\"";

const fs::path kLintFixture = kRoot / "tests" / "lint_fixtures" / "lint" / "src";
const fs::path kAnalyzeFixture = kRoot / "tests" / "lint_fixtures" / "analyze";
const fs::path kDetcheckFixture = kRoot / "tests" / "lint_fixtures" / "detcheck";

fs::path scratch_dir() {
  const fs::path d = fs::temp_directory_path() / "mmhar_static_analysis_test";
  fs::create_directories(d);
  return d;
}

void write_file(const fs::path& p, const std::string& text) {
  std::ofstream out(p);
  out << text;
  ASSERT_TRUE(out.good()) << "failed to write " << p;
}

std::string read_file(const fs::path& p) {
  std::ifstream in(p);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// Every (rule, file) pair seeded into the lint fixture tree, with the
// count the fixture produces; doubles as a baseline that waives them all.
const std::string kLintFixtureBaseline =
    "banned-rng src/bad.cpp 1\n"
    "loop-alloc src/bad.cpp 1\n"
    "missing-pragma-once src/bad_header.h 1\n"
    "naked-alloc src/bad.cpp 1\n"
    "naked-cache-write src/bad.cpp 1\n"
    "unchecked-data-arith src/bad.cpp 1\n";

TEST(LintFixtures, FindsEverySeededViolationAtExactLines) {
  const RunResult r = run(kLint + " " + q(kLintFixture));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  const char* expected[] = {
      "src/bad.cpp:14: [banned-rng]",
      "src/bad.cpp:15: [naked-alloc]",
      "src/bad.cpp:16: [unchecked-data-arith]",
      "src/bad.cpp:18: [loop-alloc]",
      "src/bad.cpp:21: [naked-cache-write]",
      "src/bad_header.h:1: [missing-pragma-once]",
  };
  for (const char* e : expected)
    EXPECT_NE(r.output.find(e), std::string::npos) << "missing finding: " << e
                                                   << "\n" << r.output;
  EXPECT_NE(r.output.find("scanned 3 file(s), 6 violation(s) (0 baselined)"),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("FAIL"), std::string::npos) << r.output;
}

TEST(LintFixtures, ParallelRefAccumIsRetired) {
  // bad.cpp:28 still seeds the shared-accumulator pattern, but the rule
  // moved to mmhar_detcheck (parallel-accum) in PR 10; mmhar_lint must no
  // longer report it. DetcheckFixtures.FindsEverySeededViolationAtExactLines
  // proves the successor rule still catches the same pattern.
  const RunResult r = run(kLint + " " + q(kLintFixture));
  EXPECT_EQ(r.output.find("parallel-ref-accum"), std::string::npos)
      << r.output;
}

TEST(LintFixtures, AllowCommentSilencesTheRule) {
  // suppressed.cpp carries a seeded rand() with a justified allow-comment on
  // the line above; it must contribute zero findings.
  const RunResult r = run(kLint + " " + q(kLintFixture));
  EXPECT_EQ(r.output.find("suppressed.cpp"), std::string::npos) << r.output;
}

TEST(LintFixtures, NonEmptyBaselineIsAnErrorByDefault) {
  // The baseline ratchet reached zero: any row in the file is itself a
  // lint failure unless the local-archaeology flag --allow-baseline is
  // passed — which the ctest/CI invocations deliberately never do.
  const fs::path base = scratch_dir() / "base_retired.txt";
  write_file(base, kLintFixtureBaseline);
  const RunResult r =
      run(kLint + " " + q(kLintFixture) + " --baseline " + q(base));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("the baseline is retired and must stay empty"),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("banned-rng src/bad.cpp 1"), std::string::npos)
      << r.output;
}

TEST(LintFixtures, BaselineWaivesExactCounts) {
  const fs::path base = scratch_dir() / "base_all.txt";
  write_file(base, kLintFixtureBaseline);
  const RunResult r = run(kLint + " " + q(kLintFixture) + " --baseline " +
                          q(base) + " --allow-baseline");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("scanned 3 file(s), 6 violation(s) (6 baselined)"),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("OK"), std::string::npos) << r.output;
}

TEST(LintFixtures, CountAboveBaselineFails) {
  // Same baseline minus the banned-rng row: that one finding is now new
  // debt and must fail the run even though five others stay waived.
  std::string rows = kLintFixtureBaseline;
  const std::string drop = "banned-rng src/bad.cpp 1\n";
  const auto pos = rows.find(drop);
  ASSERT_NE(pos, std::string::npos);
  rows.erase(pos, drop.size());
  const fs::path base = scratch_dir() / "base_missing_rng.txt";
  write_file(base, rows);
  const RunResult r = run(kLint + " " + q(kLintFixture) + " --baseline " +
                          q(base) + " --allow-baseline");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(
      r.output.find("rule 'banned-rng': 1 violation(s), baseline allows 0"),
      std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("(5 baselined)"), std::string::npos) << r.output;
}

TEST(LintFixtures, ShrunkCountPrintsTightenNote) {
  // A baseline looser than reality still passes, but the improvement is
  // called out so the baseline gets ratcheted down.
  std::string rows = kLintFixtureBaseline;
  const std::string tight = "banned-rng src/bad.cpp 1\n";
  const auto pos = rows.find(tight);
  ASSERT_NE(pos, std::string::npos);
  rows.replace(pos, tight.size(), "banned-rng src/bad.cpp 5\n");
  const fs::path base = scratch_dir() / "base_loose.txt";
  write_file(base, rows);
  const RunResult r = run(kLint + " " + q(kLintFixture) + " --baseline " +
                          q(base) + " --allow-baseline");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find(
                "'banned-rng' improved to 1 (baseline 5) — tighten the baseline"),
            std::string::npos)
      << r.output;
}

TEST(LintFixtures, UpdateBaselineWritesCurrentCounts) {
  const fs::path base = scratch_dir() / "base_rewritten.txt";
  fs::remove(base);
  const RunResult w = run(kLint + " " + q(kLintFixture) + " --baseline " +
                          q(base) + " --update-baseline");
  EXPECT_EQ(w.exit_code, 0) << w.output;
  EXPECT_NE(w.output.find(
                "baseline rewritten with 6 violation(s) across 6 (rule, file) pair(s)"),
            std::string::npos)
      << w.output;
  const std::string written = read_file(base);
  std::istringstream rows(kLintFixtureBaseline);
  std::string row;
  while (std::getline(rows, row))
    EXPECT_NE(written.find(row), std::string::npos)
        << "missing baseline row: " << row << "\n" << written;
  // The file it wrote must immediately green-light a re-run (with the
  // archaeology flag — without it the non-empty file is itself an error).
  const RunResult r = run(kLint + " " + q(kLintFixture) + " --baseline " +
                          q(base) + " --allow-baseline");
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST(LintRealTree, CheckedInBaselineIsEmptyAndEnforced) {
  // The exact invocation ctest/CI runs: real tree, checked-in baseline,
  // NO --allow-baseline. This passing proves both that the tree is clean
  // and that the baseline file carries zero active rows.
  const RunResult r = run(kLint + " " + q(kRoot / "src") + " " +
                          q(kRoot / "bench") + " " + q(kRoot / "tools") +
                          " --baseline " +
                          q(kRoot / "tools" / "lint_baseline.txt"));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("0 violation(s) (0 baselined)"), std::string::npos)
      << r.output;
  // Belt and braces: the file itself must contain only comments.
  const std::string baseline =
      read_file(kRoot / "tools" / "lint_baseline.txt");
  std::istringstream rows(baseline);
  std::string row;
  while (std::getline(rows, row)) {
    const auto first = row.find_first_not_of(" \t");
    if (first == std::string::npos) continue;
    EXPECT_EQ(row[first], '#') << "active baseline row: " << row;
  }
}

TEST(AnalyzeFixtures, FindsEverySeededViolationAtExactLines) {
  const fs::path registry = kAnalyzeFixture / "registry.cpp";
  const fs::path readme = kAnalyzeFixture / "readme.md";
  const RunResult r = run(kAnalyze + " --registry " + q(registry) +
                          " --readme " + q(readme) + " " +
                          q(kAnalyzeFixture / "src"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  const std::vector<std::string> expected = {
      "src/bad_lock.h:8: [lock-annotation-coverage]",
      "member `int hits = 0` needs MMHAR_GUARDED_BY",
      "src/dup_b.h:3: [header-hygiene] function 'fixture::twice' is also "
      "defined in src/dup_a.h:3",
      "src/env_read.cpp:6: [env-knob-registry] 'MMHAR_FIXTURE_ROGUE' is read "
      "here but has no row in the env registry",
      "src/missing_include.h:6: [header-hygiene] MMHAR_* thread-safety macros "
      "used without a direct #include of common/thread_annotations.h",
      registry.string() + ":5: [env-knob-registry] registry row "
      "'MMHAR_FIXTURE_UNDOC' is missing from the env table",
      registry.string() + ":6: [env-knob-registry] registry row "
      "'MMHAR_FIXTURE_STALE' is never read",
      readme.string() + ":7: [env-knob-registry] README env-table row "
      "'MMHAR_FIXTURE_ORPHAN' has no registry row",
  };
  for (const auto& e : expected)
    EXPECT_NE(r.output.find(e), std::string::npos) << "missing finding: " << e
                                                   << "\n" << r.output;
  EXPECT_NE(r.output.find("scanned 6 file(s), 7 violation(s)"),
            std::string::npos)
      << r.output;
}

TEST(AnalyzeFixtures, SuppressionAndTestPrefixStaySilent) {
  const RunResult r = run(kAnalyze + " --registry " +
                          q(kAnalyzeFixture / "registry.cpp") + " --readme " +
                          q(kAnalyzeFixture / "readme.md") + " " +
                          q(kAnalyzeFixture / "src"));
  // suppressed.h's unguarded member carries mmhar-analyze: allow(...), and
  // MMHAR_TEST_* reads are exempt from the registry by prefix.
  EXPECT_EQ(r.output.find("suppressed.h"), std::string::npos) << r.output;
  EXPECT_EQ(r.output.find("MMHAR_TEST_ANYTHING"), std::string::npos)
      << r.output;
}

TEST(AnalyzeRealTree, IsCleanWithTheCheckedInRegistry) {
  const RunResult r = run(kAnalyze + " --registry " +
                          q(kRoot / "src" / "common" / "env_registry.cpp") +
                          " --readme " + q(kRoot / "README.md") + " " +
                          q(kRoot / "src") + " " + q(kRoot / "bench") + " " +
                          q(kRoot / "tools"));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("0 violation(s)"), std::string::npos) << r.output;
}

TEST(AnalyzeRealTree, ServingKnobsAreRegisteredAndDocumented) {
  // The streaming-serving knobs ship as a family; each must have both a
  // registry row and a README table row, so a future rename can't leave a
  // half-documented knob behind the analyzer's back.
  const char* const kServingKnobs[] = {
      "MMHAR_SERVING_BATCH",       "MMHAR_SERVING_DROP_POLICY",
      "MMHAR_SERVING_FRAMES",      "MMHAR_SERVING_MAX_STREAM_FAULTS",
      "MMHAR_SERVING_QUEUE_DEPTH", "MMHAR_SERVING_RATE_HZ",
      "MMHAR_SERVING_STREAMS",     "MMHAR_SERVING_WATCHDOG_MS",
  };
  const std::string registry =
      read_file(kRoot / "src" / "common" / "env_registry.cpp");
  const std::string readme = read_file(kRoot / "README.md");
  for (const char* knob : kServingKnobs) {
    EXPECT_NE(registry.find(std::string("{\"") + knob + "\""),
              std::string::npos)
        << knob << " has no registry row";
    EXPECT_NE(readme.find(std::string("`") + knob + "`"), std::string::npos)
        << knob << " is missing from the README env table";
  }
}

TEST(DetcheckFixtures, FindsEverySeededViolationAtExactLines) {
  const fs::path roots = kDetcheckFixture / "roots.txt";
  const RunResult r = run(kDetcheck + " --roots " + q(roots) + " " +
                          q(kDetcheckFixture / "src"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  const std::vector<std::string> expected = {
      "src/common/bad_layer.h:5: [layering] include of \"serving/api.h\"",
      "src/det_bad.cpp:10: [nondet-call] C rand-family call",
      "chain: fixture::det_transitive -> fixture::transitive_mid -> "
      "fixture::helper_nondet",
      "src/det_bad.cpp:20: [unordered-iter] 'table' is an unordered container",
      "src/det_bad.cpp:21: [unordered-iter] 'table' is an unordered container",
      "src/det_bad.cpp:27: [nondet-call] clock read",
      "src/det_bad.cpp:32: [env-read] 'MMHAR_FIXTURE_KNOB' is read inside the "
      "deterministic pipeline",
      "src/det_bad.cpp:38: [parallel-accum] 'sum' is compound-assigned inside "
      "a parallel_for [&] lambda",
      "src/det_bad.cpp:48: [root-coverage] required root "
      "'fixture::lost_annotation' has lost its MMHAR_DETERMINISTIC annotation",
      roots.string() + ":6: [root-coverage] required root "
      "'fixture::renamed_root' names no function",
  };
  for (const auto& e : expected)
    EXPECT_NE(r.output.find(e), std::string::npos) << "missing finding: " << e
                                                   << "\n" << r.output;
  EXPECT_NE(r.output.find("mmhar_detcheck: summary files=4 functions=10 "
                          "roots=6 reachable=8 violations=9 status=fail"),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("FAIL"), std::string::npos) << r.output;
}

TEST(DetcheckFixtures, SuppressedUnreachedAndDownwardIncludesStaySilent) {
  const RunResult r = run(kDetcheck + " --roots " +
                          q(kDetcheckFixture / "roots.txt") + " " +
                          q(kDetcheckFixture / "src"));
  // det_suppressed's rand() at line 45 carries MMHAR_DETCHECK_ALLOW on the
  // line directly above; never_reached_nondet is outside every root's cone;
  // serving/api.h includes common/ which is the legal downward direction.
  EXPECT_EQ(r.output.find("det_bad.cpp:45"), std::string::npos) << r.output;
  EXPECT_EQ(r.output.find("never_reached_nondet"), std::string::npos)
      << r.output;
  EXPECT_EQ(r.output.find("src/serving/api.h:"), std::string::npos)
      << r.output;
}

std::string detcheck_tree_cmd(const fs::path& root, const fs::path& roots) {
  return kDetcheck + " --roots " + q(roots) + " " + q(root / "src") + " " +
         q(root / "bench") + " " + q(root / "tools");
}

TEST(DetcheckRealTree, PipelineIsDeterminismCleanWithEnoughRoots) {
  // The exact invocation ctest/CI runs: src + bench + tools against the
  // checked-in roots file. Passing proves the bit-identity cone is clean
  // end to end, with no baseline to hide behind.
  const RunResult r =
      run(detcheck_tree_cmd(kRoot, kRoot / "tools" / "detcheck_roots.txt"));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("violations=0 status=ok"), std::string::npos)
      << r.output;
  // Acceptance floor: at least 8 annotated determinism roots.
  const auto at = r.output.find("roots=");
  ASSERT_NE(at, std::string::npos) << r.output;
  const int roots = std::atoi(r.output.c_str() + at + 6);
  EXPECT_GE(roots, 8) << r.output;
}

TEST(DetcheckRealTree, RootsFilePinsEveryPaperInvariant) {
  // Removing a row from detcheck_roots.txt must fail ctest even though the
  // checker itself cannot see the deletion (fewer required roots is a
  // weaker, still-consistent configuration). This pin is the other half of
  // the deletion property: the annotation side is guarded by root-coverage,
  // the roots-file side by this exact-row assertion.
  const std::string rows = read_file(kRoot / "tools" / "detcheck_roots.txt");
  const char* const kRequired[] = {
      "deterministic dsp::compute_drai_sequence",
      "deterministic har::infer_forward",
      "deterministic Sequential::forward",
      "deterministic Sequential::backward",
      "deterministic radar::Simulator::synthesize",
      "deterministic radar::Simulator::simulate_sequence",
      "deterministic har::train_model",
      "deterministic StreamingHarService::process_round",
      "deterministic StreamingHarService::run_inference",
  };
  for (const char* row : kRequired)
    EXPECT_NE(rows.find(row), std::string::npos)
        << "missing roots row: " << row;
}

TEST(DetcheckRealTree, DeletingAnyRootAnnotationFails) {
  // Acceptance property: strip the MMHAR_DETERMINISTIC token from each real
  // annotation site, one at a time, in a scratch copy of the repo; every
  // single deletion must turn root-coverage red.
  const fs::path tmp = scratch_dir() / "dettree";
  fs::remove_all(tmp);
  fs::create_directories(tmp);
  for (const char* dir : {"src", "bench", "tools"})
    fs::copy(kRoot / dir, tmp / dir, fs::copy_options::recursive);

  struct Site {
    fs::path file;
    std::size_t line_idx;
    std::string original;
  };
  std::vector<Site> sites;
  for (const auto& entry : fs::recursive_directory_iterator(tmp / "src")) {
    if (!entry.is_regular_file()) continue;
    if (entry.path().filename() == "thread_annotations.h") continue;
    const auto ext = entry.path().extension().string();
    if (ext != ".h" && ext != ".cpp") continue;
    std::ifstream in(entry.path());
    std::string line;
    std::size_t idx = 0;
    for (; std::getline(in, line); ++idx) {
      const auto first = line.find_first_not_of(" \t");
      if (first != std::string::npos &&
          (line.compare(first, 2, "//") == 0 || line[first] == '#' ||
           line[first] == '*'))
        continue;
      if (line.find("MMHAR_DETERMINISTIC") != std::string::npos)
        sites.push_back({entry.path(), idx, line});
    }
  }
  ASSERT_GE(sites.size(), 9u)
      << "annotation sites not found — did the annotation spelling change?";

  for (const auto& site : sites) {
    std::ifstream in(site.file);
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
    in.close();
    ASSERT_LT(site.line_idx, lines.size());

    std::string stripped = lines[site.line_idx];
    const std::string token = "MMHAR_DETERMINISTIC";
    for (auto at = stripped.find(token); at != std::string::npos;
         at = stripped.find(token))
      stripped.erase(at, token.size());
    lines[site.line_idx] = stripped;
    {
      std::ofstream out(site.file);
      for (const auto& l : lines) out << l << "\n";
    }

    const RunResult r =
        run(detcheck_tree_cmd(tmp, kRoot / "tools" / "detcheck_roots.txt"));
    EXPECT_EQ(r.exit_code, 1)
        << "stripping the annotation from " << site.file << ":"
        << site.line_idx + 1 << " (`" << site.original
        << "`) went unnoticed:\n" << r.output;
    EXPECT_NE(r.output.find("[root-coverage]"), std::string::npos)
        << r.output;
    EXPECT_NE(r.output.find("has lost its MMHAR_DETERMINISTIC"),
              std::string::npos)
        << r.output;

    // Restore for the next site.
    lines[site.line_idx] = site.original;
    std::ofstream out(site.file);
    for (const auto& l : lines) out << l << "\n";
  }
  fs::remove_all(tmp);
}

TEST(AnalyzeRealTree, DeletingAnyRegistryRowFails) {
  // The acceptance property for the closed env-knob namespace: removing any
  // single row from the real registry must turn the analyzer red, because
  // the README row and/or the read site it backed becomes unaccounted for.
  const fs::path real_registry = kRoot / "src" / "common" / "env_registry.cpp";
  std::ifstream in(real_registry);
  ASSERT_TRUE(in.good());
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);

  std::vector<std::size_t> row_lines;
  for (std::size_t i = 0; i < lines.size(); ++i)
    if (lines[i].find("{\"MMHAR_") != std::string::npos) row_lines.push_back(i);
  ASSERT_GE(row_lines.size(), 10u)
      << "registry rows not found — did the row format change?";

  const fs::path tmp = scratch_dir() / "registry_minus_one.cpp";
  for (const std::size_t drop : row_lines) {
    std::ostringstream pruned;
    for (std::size_t i = 0; i < lines.size(); ++i)
      if (i != drop) pruned << lines[i] << "\n";
    write_file(tmp, pruned.str());
    const RunResult r = run(kAnalyze + " --registry " + q(tmp) + " --readme " +
                            q(kRoot / "README.md") + " " + q(kRoot / "src") +
                            " " + q(kRoot / "bench") + " " + q(kRoot / "tools"));
    EXPECT_EQ(r.exit_code, 1)
        << "deleting registry row `" << lines[drop]
        << "` went unnoticed:\n" << r.output;
    EXPECT_NE(r.output.find("[env-knob-registry]"), std::string::npos)
        << r.output;
  }
}

}  // namespace
