// LSTM-specific tests: shapes, BPTT gradient checks, long-range memory,
// and sequence-output mode.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/dense.h"
#include "nn/gradcheck.h"
#include "nn/loss.h"
#include "nn/lstm.h"
#include "nn/optimizer.h"

namespace mmhar::nn {
namespace {

TEST(Lstm, OutputShapes) {
  Rng rng(1);
  LSTM last(5, 7, rng, /*return_sequence=*/false);
  const Tensor x = Tensor::randn({3, 9, 5}, rng);
  EXPECT_EQ(last.forward(x, false).shape(),
            (std::vector<std::size_t>{3, 7}));
  LSTM seq(5, 7, rng, /*return_sequence=*/true);
  EXPECT_EQ(seq.forward(x, false).shape(),
            (std::vector<std::size_t>{3, 9, 7}));
  EXPECT_THROW(last.forward(Tensor({3, 9, 4}), false), InvalidArgument);
}

TEST(Lstm, ForgetBiasInitializedToOne) {
  Rng rng(2);
  LSTM lstm(3, 4, rng);
  const Tensor& b = *lstm.parameters()[2];
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(b[i], 0.0F);        // input
  for (std::size_t i = 4; i < 8; ++i) EXPECT_EQ(b[i], 1.0F);        // forget
  for (std::size_t i = 8; i < 16; ++i) EXPECT_EQ(b[i], 0.0F);       // g, o
}

TEST(Lstm, GradCheckLastOutput) {
  Rng rng(3);
  LSTM lstm(4, 5, rng);
  const Tensor x = Tensor::randn({2, 6, 4}, rng, 0.0F, 0.5F);
  const auto r = check_layer_gradients(lstm, x, rng, 1e-2F, 50);
  // 3e-2, not 2.5e-2: without FMA contraction (-DMMHAR_NATIVE=OFF, the CI
  // sanitizer legs) the finite-difference error on this seed peaks at
  // 2.77e-2; the -march=native build stays under 2.5e-2.
  EXPECT_LT(r.max_relative_error, 3.0e-2F) << "checked " << r.checked;
}

TEST(Lstm, GradCheckSequenceOutput) {
  Rng rng(4);
  LSTM lstm(3, 4, rng, /*return_sequence=*/true);
  const Tensor x = Tensor::randn({2, 5, 3}, rng, 0.0F, 0.5F);
  const auto r = check_layer_gradients(lstm, x, rng, 1e-2F, 50);
  EXPECT_LT(r.max_relative_error, 2.5e-2F);
}

TEST(Lstm, SingleStepMatchesManualCellMath) {
  Rng rng(5);
  LSTM lstm(1, 1, rng);
  // Force known parameters: all weights 0.5, biases 0 (forget bias too).
  for (Tensor* p : lstm.parameters()) p->fill(0.5F);
  const float xin = 0.8F;
  Tensor x({1, 1, 1}, {xin});
  const Tensor h = lstm.forward(x, false);
  const auto sig = [](float v) { return 1.0F / (1.0F + std::exp(-v)); };
  const float z = 0.5F * xin + 0.5F;  // Wx*x + b, h_prev = 0
  const float expected =
      sig(z) * std::tanh(sig(z) * std::tanh(z));  // o * tanh(i * g * f...)
  // c = f*c0 + i*g = i*g (c0=0); h = o * tanh(c)
  const float c = sig(z) * std::tanh(z);
  const float expected_h = sig(z) * std::tanh(c);
  (void)expected;
  EXPECT_NEAR(h[0], expected_h, 1e-5F);
}

TEST(Lstm, RemembersEarlySignal) {
  // Task: the label equals the first timestep's sign; later steps are
  // noise. Requires carrying state across the full sequence.
  Rng rng(6);
  const std::size_t steps = 12;
  LSTM lstm(1, 8, rng);
  Dense head(8, 2, rng);
  Adam opt(0.02F);
  auto params = lstm.parameters();
  for (Tensor* p : head.parameters()) params.push_back(p);
  auto grads = lstm.gradients();
  for (Tensor* g : head.gradients()) grads.push_back(g);

  Rng data_rng(7);
  const auto make_batch = [&](std::size_t n, Tensor& x,
                              std::vector<std::size_t>& y) {
    x = Tensor({n, steps, 1});
    y.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      const bool positive = data_rng.bernoulli(0.5);
      y[i] = positive ? 1 : 0;
      x[i * steps] = positive ? 1.0F : -1.0F;
      for (std::size_t t = 1; t < steps; ++t)
        x[i * steps + t] = static_cast<float>(data_rng.normal(0.0, 0.3));
    }
  };

  for (int epoch = 0; epoch < 150; ++epoch) {
    Tensor x;
    std::vector<std::size_t> y;
    make_batch(16, x, y);
    lstm.zero_gradients();
    head.zero_gradients();
    const Tensor h = lstm.forward(x, true);
    const Tensor logits = head.forward(h, true);
    const auto loss = softmax_cross_entropy(logits, y);
    lstm.backward(head.backward(loss.grad_logits));
    clip_gradient_norm(grads, 5.0F);
    opt.step(params, grads);
  }

  Tensor x;
  std::vector<std::size_t> y;
  make_batch(64, x, y);
  const Tensor logits = head.forward(lstm.forward(x, false), false);
  EXPECT_GT(accuracy(logits, y), 0.9F);
}

TEST(Lstm, OrderSensitivity) {
  // The LSTM output must depend on the order of inputs (unlike a
  // bag-of-frames model) — this is why poisoning must pick frames.
  Rng rng(8);
  LSTM lstm(2, 6, rng);
  Tensor fwd({1, 4, 2});
  for (std::size_t i = 0; i < fwd.size(); ++i)
    fwd[i] = static_cast<float>(i) * 0.1F;
  Tensor rev = fwd;
  for (std::size_t t = 0; t < 4; ++t)
    for (std::size_t d = 0; d < 2; ++d)
      rev[t * 2 + d] = fwd[(3 - t) * 2 + d];
  const Tensor hf = lstm.forward(fwd, false);
  const Tensor hr = lstm.forward(rev, false);
  EXPECT_GT(Tensor::l2_distance(hf, hr), 1e-4F);
}

TEST(Lstm, StateSaturationIsBounded) {
  // Hidden activations stay in (-1, 1) regardless of input magnitude.
  Rng rng(9);
  LSTM lstm(3, 5, rng);
  const Tensor x = Tensor::randn({2, 20, 3}, rng, 0.0F, 50.0F);
  const Tensor h = lstm.forward(x, false);
  for (const float v : h.flat()) {
    EXPECT_GT(v, -1.0F);
    EXPECT_LT(v, 1.0F);
  }
}

}  // namespace
}  // namespace mmhar::nn
