// Tests for the packed GEMM microkernel and the SoA IF-synthesis kernel:
// property tests against a naive reference, bit-exact determinism across
// thread-pool sizes, nested-parallelism safety, and the single-frame
// sequence edge case.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "mesh/primitives.h"
#include "radar/simulator.h"
#include "tensor/gemm.h"

namespace mmhar {
namespace {

// Route global_pool() to a locally constructed pool for the duration of a
// scope; restores the real pool on exit.
struct PoolOverride {
  explicit PoolOverride(ThreadPool* p) { set_global_pool_for_testing(p); }
  ~PoolOverride() { set_global_pool_for_testing(nullptr); }
};

std::vector<float> random_vec(std::size_t n, Rng& rng) {
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.normal());
  return v;
}

// Naive triple-loop reference with a double accumulator.
std::vector<float> naive_gemm(std::size_t m, std::size_t k, std::size_t n,
                              float alpha, const std::vector<float>& a,
                              const std::vector<float>& b, float beta,
                              const std::vector<float>& c0) {
  std::vector<float> c(m * n);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t p = 0; p < k; ++p)
        acc += static_cast<double>(a[i * k + p]) *
               static_cast<double>(b[p * n + j]);
      c[i * n + j] = static_cast<float>(
          static_cast<double>(alpha) * acc +
          static_cast<double>(beta) * static_cast<double>(c0[i * n + j]));
    }
  }
  return c;
}

void expect_close(const std::vector<float>& ref, const std::vector<float>& got,
                  const char* what) {
  ASSERT_EQ(ref.size(), got.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    const double tol =
        1e-3 * std::max(1.0, std::abs(static_cast<double>(ref[i])));
    EXPECT_NEAR(ref[i], got[i], tol) << what << " element " << i;
  }
}

struct Shape {
  std::size_t m, k, n;
};

// Includes m == 1 (the gemv fast path), odd microkernel tails in every
// dimension, and k/n extents that cross the cache-block boundaries.
const Shape kShapes[] = {
    {1, 1, 1},    {1, 7, 5},      {2, 3, 4},     {4, 32, 32},
    {5, 17, 33},  {7, 3, 65},     {8, 64, 48},   {33, 129, 65},
    {64, 64, 64}, {3, 300, 37},   {2, 5, 1050},  {61, 257, 31},
};

TEST(GemmMicrokernel, MatchesNaiveReferenceAcrossShapes) {
  Rng rng(101);
  const float alphas[] = {1.0F, 2.5F, -0.75F};
  const float betas[] = {0.0F, 1.0F, 0.5F};
  for (const auto& s : kShapes) {
    const auto a = random_vec(s.m * s.k, rng);
    const auto b = random_vec(s.k * s.n, rng);
    const auto c0 = random_vec(s.m * s.n, rng);
    for (float alpha : alphas) {
      for (float beta : betas) {
        auto c = c0;
        sgemm(s.m, s.k, s.n, alpha, a.data(), b.data(), beta, c.data());
        expect_close(naive_gemm(s.m, s.k, s.n, alpha, a, b, beta, c0), c,
                     "sgemm");
      }
    }
  }
}

TEST(GemmMicrokernel, AlphaZeroOnlyScalesC) {
  Rng rng(102);
  const auto a = random_vec(6 * 9, rng);
  const auto b = random_vec(9 * 11, rng);
  const auto c0 = random_vec(6 * 11, rng);
  auto c = c0;
  sgemm(6, 9, 11, 0.0F, a.data(), b.data(), 0.5F, c.data());
  for (std::size_t i = 0; i < c.size(); ++i)
    EXPECT_FLOAT_EQ(0.5F * c0[i], c[i]);
}

TEST(GemmMicrokernel, TransposedVariantsMatchNaiveReference) {
  Rng rng(103);
  for (const auto& s : kShapes) {
    // A^T path: A stored k x m.
    const auto at_store = random_vec(s.k * s.m, rng);
    std::vector<float> a(s.m * s.k);
    for (std::size_t p = 0; p < s.k; ++p)
      for (std::size_t i = 0; i < s.m; ++i)
        a[i * s.k + p] = at_store[p * s.m + i];
    const auto b = random_vec(s.k * s.n, rng);
    const auto c0 = random_vec(s.m * s.n, rng);
    auto c = c0;
    sgemm_at(s.m, s.k, s.n, 1.5F, at_store.data(), b.data(), 0.5F, c.data());
    expect_close(naive_gemm(s.m, s.k, s.n, 1.5F, a, b, 0.5F, c0), c,
                 "sgemm_at");

    // B^T path: B stored n x k.
    const auto bt_store = random_vec(s.n * s.k, rng);
    std::vector<float> bb(s.k * s.n);
    for (std::size_t j = 0; j < s.n; ++j)
      for (std::size_t p = 0; p < s.k; ++p)
        bb[p * s.n + j] = bt_store[j * s.k + p];
    auto c2 = c0;
    sgemm_bt(s.m, s.k, s.n, 1.0F, a.data(), bt_store.data(), 1.0F, c2.data());
    expect_close(naive_gemm(s.m, s.k, s.n, 1.0F, a, bb, 1.0F, c0), c2,
                 "sgemm_bt");
  }
}

TEST(GemmMicrokernel, PrepackedAMatchesSgemmBitwise) {
  Rng rng(104);
  for (const auto& s : kShapes) {
    if (s.m == 1) continue;  // sgemm's m==1 path reduces in another order
    const auto a = random_vec(s.m * s.k, rng);
    const auto b = random_vec(s.k * s.n, rng);
    std::vector<float> c_plain(s.m * s.n, 0.0F);
    std::vector<float> c_packed(s.m * s.n, 0.0F);
    sgemm(s.m, s.k, s.n, 1.25F, a.data(), b.data(), 0.0F, c_plain.data());
    const PackedA packed = pack_a(s.m, s.k, a.data());
    sgemm_packed_a(packed, s.n, 1.25F, b.data(), 0.0F, c_packed.data());
    EXPECT_EQ(c_plain, c_packed) << s.m << "x" << s.k << "x" << s.n;

    // pack_at from transposed storage matches sgemm_at bitwise too.
    std::vector<float> at_store(s.k * s.m);
    for (std::size_t p = 0; p < s.k; ++p)
      for (std::size_t i = 0; i < s.m; ++i)
        at_store[p * s.m + i] = a[i * s.k + p];
    std::vector<float> c_at(s.m * s.n, 0.0F);
    std::vector<float> c_atp(s.m * s.n, 0.0F);
    sgemm_at(s.m, s.k, s.n, 1.0F, at_store.data(), b.data(), 0.0F,
             c_at.data());
    const PackedA packed_t = pack_at(s.m, s.k, at_store.data());
    sgemm_packed_a(packed_t, s.n, 1.0F, b.data(), 0.0F, c_atp.data());
    EXPECT_EQ(c_at, c_atp);
  }
}

TEST(Determinism, GemmBitIdenticalAcrossPoolSizes) {
  Rng rng(105);
  // Big enough to clear the parallel threshold (m*n*k >= 2^18).
  const std::size_t m = 96, k = 160, n = 128;
  const auto a = random_vec(m * k, rng);
  const auto b = random_vec(k * n, rng);
  const auto run = [&](std::size_t threads) {
    ThreadPool pool(threads);
    PoolOverride ov(&pool);
    std::vector<float> c(m * n, 0.0F);
    sgemm(m, k, n, 1.0F, a.data(), b.data(), 0.0F, c.data());
    return c;
  };
  const auto c1 = run(1);
  EXPECT_EQ(c1, run(2));
  EXPECT_EQ(c1, run(8));
}

TEST(Determinism, SynthesizeBitIdenticalAcrossPoolSizes) {
  radar::FmcwConfig cfg;
  cfg.noise_std = 0.0;
  const radar::Simulator sim(cfg);
  Rng rng(106);
  std::vector<radar::Scatterer> scatterers;
  for (int i = 0; i < 40; ++i) {
    radar::Scatterer s;
    s.position = {1.0 + rng.uniform(), rng.uniform(-0.5, 0.5),
                  rng.uniform(-0.5, 0.5)};
    s.amplitude = rng.uniform(0.1, 1.0);
    s.radial_velocity = rng.uniform(-1.0, 1.0);
    scatterers.push_back(s);
  }
  const auto run = [&](std::size_t threads) {
    ThreadPool pool(threads);
    PoolOverride ov(&pool);
    return sim.synthesize(scatterers);
  };
  const auto c1 = run(1);
  EXPECT_EQ(c1.raw(), run(2).raw());
  EXPECT_EQ(c1.raw(), run(8).raw());
}

TEST(Determinism, SimulateSequenceBitIdenticalAcrossPoolSizes) {
  radar::FmcwConfig cfg;
  cfg.noise_std = 0.01;
  const radar::Simulator sim(cfg);
  std::vector<mesh::TriMesh> frames;
  for (int f = 0; f < 5; ++f)
    frames.push_back(mesh::make_plate({1.2 + 0.01 * f, 0, 0}, {-1, 0, 0},
                                      {0, 0, 1}, 0.05, 0.05,
                                      mesh::Material::skin(), 1));
  const auto run = [&](std::size_t threads) {
    ThreadPool pool(threads);
    PoolOverride ov(&pool);
    Rng rng(7);
    return sim.simulate_sequence(frames, nullptr, 0.016, &rng);
  };
  const auto r1 = run(1);
  const auto r2 = run(2);
  const auto r8 = run(8);
  ASSERT_EQ(r1.size(), r2.size());
  ASSERT_EQ(r1.size(), r8.size());
  for (std::size_t f = 0; f < r1.size(); ++f) {
    EXPECT_EQ(r1[f].raw(), r2[f].raw()) << "frame " << f;
    EXPECT_EQ(r1[f].raw(), r8[f].raw()) << "frame " << f;
  }
}

TEST(ThreadPoolNesting, NestedParallelForRunsInlineWithoutDeadlock) {
  ThreadPool pool(2);
  PoolOverride ov(&pool);
  std::atomic<int> count{0};
  parallel_for(0, 4, [&](std::size_t) {
    // Issued from inside a pool worker (or the caller): must not block on
    // pool capacity.
    parallel_for(0, 8, [&](std::size_t) { count.fetch_add(1); });
  });
  EXPECT_EQ(count.load(), 32);
}

TEST(SimulateSequence, SingleFrameSequenceMatchesStaticSynthesis) {
  radar::FmcwConfig cfg;
  cfg.noise_std = 0.0;
  const radar::Simulator sim(cfg);
  const mesh::TriMesh plate = mesh::make_plate(
      {1.3, 0, 0}, {-1, 0, 0}, {0, 0, 1}, 0.05, 0.05,
      mesh::Material::skin(), 1);
  const auto cubes =
      sim.simulate_sequence({plate}, nullptr, 0.016, nullptr);
  ASSERT_EQ(cubes.size(), 1u);
  const auto expected =
      sim.synthesize(sim.extract_scatterers(plate, nullptr, 0.0));
  EXPECT_EQ(cubes[0].raw(), expected.raw());
}

}  // namespace
}  // namespace mmhar
