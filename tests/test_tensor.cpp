// Unit tests for the tensor substrate: shapes, arithmetic, reductions,
// GEMM kernels vs a naive oracle, ops, and serialization.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/rng.h"
#include "tensor/gemm.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace mmhar {
namespace {

TEST(Tensor, ConstructionAndShape) {
  Tensor t({2, 3, 4});
  EXPECT_EQ(t.rank(), 3u);
  EXPECT_EQ(t.size(), 24u);
  EXPECT_EQ(t.dim(0), 2u);
  EXPECT_EQ(t.dim(2), 4u);
  EXPECT_EQ(t.shape_string(), "[2, 3, 4]");
  for (const float v : t.flat()) EXPECT_EQ(v, 0.0F);
}

TEST(Tensor, DataConstructorValidatesSize) {
  EXPECT_NO_THROW(Tensor({2, 2}, {1, 2, 3, 4}));
  EXPECT_THROW(Tensor({2, 2}, {1, 2, 3}), InvalidArgument);
}

TEST(Tensor, MultiDimAccessors) {
  Tensor t({2, 3});
  t.at(1, 2) = 5.0F;
  EXPECT_EQ(t.at(1, 2), 5.0F);
  EXPECT_EQ(t[1 * 3 + 2], 5.0F);
  Tensor u({2, 2, 2, 2});
  u.at(1, 0, 1, 0) = 3.0F;
  EXPECT_EQ(u.at(1, 0, 1, 0), 3.0F);
  EXPECT_THROW(t.at(2, 0), Error);
  EXPECT_THROW(t.at(0), Error);  // wrong rank
}

TEST(Tensor, ReshapePreservesDataAndChecksSize) {
  Tensor t({2, 3}, {1, 2, 3, 4, 5, 6});
  const Tensor r = t.reshaped({3, 2});
  EXPECT_EQ(r.at(2, 1), 6.0F);
  EXPECT_THROW(t.reshaped({4, 2}), InvalidArgument);
}

// Every at() arity must reject both a rank mismatch and an out-of-bounds
// index on each axis — on the mutable and the const overload. The error
// paths are what MMHAR_CHECK buys us over raw data(); they must not rot.
TEST(Tensor, AtRejectsWrongRankOnAllArities) {
  Tensor r1({4});
  Tensor r2({2, 3});
  Tensor r3({2, 3, 4});
  Tensor r4({2, 3, 4, 5});
  const Tensor& c1 = r1;
  const Tensor& c2 = r2;
  const Tensor& c3 = r3;
  const Tensor& c4 = r4;

  // Each tensor accepts only its own arity.
  EXPECT_THROW(r1.at(0, 0), Error);
  EXPECT_THROW(r1.at(0, 0, 0), Error);
  EXPECT_THROW(r1.at(0, 0, 0, 0), Error);
  EXPECT_THROW(r2.at(0), Error);
  EXPECT_THROW(r2.at(0, 0, 0), Error);
  EXPECT_THROW(r2.at(0, 0, 0, 0), Error);
  EXPECT_THROW(r3.at(0), Error);
  EXPECT_THROW(r3.at(0, 0), Error);
  EXPECT_THROW(r3.at(0, 0, 0, 0), Error);
  EXPECT_THROW(r4.at(0), Error);
  EXPECT_THROW(r4.at(0, 0), Error);
  EXPECT_THROW(r4.at(0, 0, 0), Error);

  EXPECT_THROW(c1.at(0, 0), Error);
  EXPECT_THROW(c2.at(0), Error);
  EXPECT_THROW(c3.at(0, 0, 0, 0), Error);
  EXPECT_THROW(c4.at(0, 0, 0), Error);

  // Rank-0 (default-constructed) accepts nothing.
  Tensor empty;
  EXPECT_THROW(empty.at(0), Error);
  EXPECT_THROW(empty.at(0, 0), Error);
  EXPECT_THROW(empty.at(0, 0, 0), Error);
  EXPECT_THROW(empty.at(0, 0, 0, 0), Error);
}

TEST(Tensor, AtRejectsOutOfBoundsOnEveryAxis) {
  Tensor r1({4});
  Tensor r2({2, 3});
  Tensor r3({2, 3, 4});
  Tensor r4({2, 3, 4, 5});
  const Tensor& c4 = r4;

  EXPECT_THROW(r1.at(4), Error);
  EXPECT_THROW(r2.at(2, 0), Error);
  EXPECT_THROW(r2.at(0, 3), Error);
  EXPECT_THROW(r3.at(2, 0, 0), Error);
  EXPECT_THROW(r3.at(0, 3, 0), Error);
  EXPECT_THROW(r3.at(0, 0, 4), Error);
  EXPECT_THROW(r4.at(2, 0, 0, 0), Error);
  EXPECT_THROW(r4.at(0, 3, 0, 0), Error);
  EXPECT_THROW(r4.at(0, 0, 4, 0), Error);
  EXPECT_THROW(r4.at(0, 0, 0, 5), Error);
  EXPECT_THROW(c4.at(0, 0, 0, 5), Error);

  // The exact boundary indices are valid.
  EXPECT_NO_THROW(r1.at(3));
  EXPECT_NO_THROW(r2.at(1, 2));
  EXPECT_NO_THROW(r3.at(1, 2, 3));
  EXPECT_NO_THROW(r4.at(1, 2, 3, 4));

  // flat operator[] bounds.
  EXPECT_THROW(r1[4], Error);
  EXPECT_NO_THROW(r1[3]);
}

TEST(Tensor, ReshapeElementCountMismatchVariants) {
  const Tensor t({2, 3, 4});
  EXPECT_NO_THROW(t.reshaped({24}));
  EXPECT_NO_THROW(t.reshaped({4, 3, 2}));
  EXPECT_NO_THROW(t.reshaped({2, 2, 2, 3}));
  EXPECT_THROW(t.reshaped({23}), InvalidArgument);
  EXPECT_THROW(t.reshaped({2, 3}), InvalidArgument);
  EXPECT_THROW(t.reshaped({}), InvalidArgument);       // empty shape -> 0
  EXPECT_THROW(t.reshaped({0, 24}), InvalidArgument);  // zero-dim
  // The thrown message names the original shape for diagnosis.
  try {
    t.reshaped({5, 5});
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("[2, 3, 4]"), std::string::npos)
        << e.what();
  }
}

TEST(Tensor, Arithmetic) {
  Tensor a({3}, {1, 2, 3});
  Tensor b({3}, {10, 20, 30});
  a += b;
  EXPECT_EQ(a[2], 33.0F);
  a -= b;
  EXPECT_EQ(a[2], 3.0F);
  a *= 2.0F;
  EXPECT_EQ(a[0], 2.0F);
  a.add_scaled(b, 0.5F);
  EXPECT_EQ(a[1], 14.0F);
  a.mul_elementwise(b);
  EXPECT_EQ(a[0], 70.0F);
  Tensor c({2}, {1, 1});
  EXPECT_THROW(a += c, InvalidArgument);
}

TEST(Tensor, Reductions) {
  Tensor t({4}, {-1, 2, 0, 3});
  EXPECT_FLOAT_EQ(t.sum(), 4.0F);
  EXPECT_FLOAT_EQ(t.mean(), 1.0F);
  EXPECT_FLOAT_EQ(t.min(), -1.0F);
  EXPECT_FLOAT_EQ(t.max(), 3.0F);
  EXPECT_EQ(t.argmax(), 3u);
  EXPECT_FLOAT_EQ(t.l2_norm(), std::sqrt(14.0F));
}

TEST(Tensor, DistanceAndDot) {
  Tensor a({3}, {1, 0, 0});
  Tensor b({3}, {0, 1, 0});
  EXPECT_FLOAT_EQ(Tensor::l2_distance(a, b), std::sqrt(2.0F));
  EXPECT_FLOAT_EQ(Tensor::dot(a, b), 0.0F);
  EXPECT_FLOAT_EQ(Tensor::dot(a, a), 1.0F);
}

TEST(Tensor, RandnStatistics) {
  Rng rng(1);
  Tensor t = Tensor::randn({10000}, rng, 2.0F, 0.5F);
  EXPECT_NEAR(t.mean(), 2.0F, 0.05F);
}

TEST(Tensor, SaveLoadRoundTrip) {
  Rng rng(9);
  Tensor t = Tensor::randn({3, 5}, rng);
  std::stringstream ss;
  {
    BinaryWriter w(ss);
    t.save(w);
  }
  BinaryReader r(ss);
  const Tensor u = Tensor::load(r);
  ASSERT_TRUE(t.same_shape(u));
  for (std::size_t i = 0; i < t.size(); ++i) EXPECT_EQ(t[i], u[i]);
}

// ---- GEMM vs naive oracle ----

void naive_gemm(std::size_t m, std::size_t k, std::size_t n, float alpha,
                const float* a, const float* b, float beta, float* c) {
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t p = 0; p < k; ++p)
        acc += static_cast<double>(a[i * k + p]) * b[p * n + j];
      c[i * n + j] = alpha * static_cast<float>(acc) + beta * c[i * n + j];
    }
  }
}

struct GemmDims {
  std::size_t m, k, n;
};

class GemmTest : public ::testing::TestWithParam<GemmDims> {};

TEST_P(GemmTest, MatchesNaive) {
  const auto [m, k, n] = GetParam();
  Rng rng(m * 1000 + k * 100 + n);
  Tensor a = Tensor::randn({m, k}, rng);
  Tensor b = Tensor::randn({k, n}, rng);
  Tensor c = Tensor::randn({m, n}, rng);
  Tensor c_ref = c;
  sgemm(m, k, n, 1.5F, a.data(), b.data(), 0.5F, c.data());
  naive_gemm(m, k, n, 1.5F, a.data(), b.data(), 0.5F, c_ref.data());
  for (std::size_t i = 0; i < c.size(); ++i)
    EXPECT_NEAR(c[i], c_ref[i], 1e-3F * (1.0F + std::abs(c_ref[i])))
        << "at " << i;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmTest,
    ::testing::Values(GemmDims{1, 1, 1}, GemmDims{3, 4, 5},
                      GemmDims{16, 16, 16}, GemmDims{1, 64, 32},
                      GemmDims{33, 17, 65}, GemmDims{64, 200, 48},
                      GemmDims{128, 300, 64}));

TEST(Gemm, TransposedVariantsMatchNaive) {
  const std::size_t m = 13;
  const std::size_t k = 21;
  const std::size_t n = 17;
  Rng rng(77);
  // A stored as [k x m] for sgemm_at.
  Tensor a_t = Tensor::randn({k, m}, rng);
  Tensor b = Tensor::randn({k, n}, rng);
  Tensor c({m, n});
  sgemm_at(m, k, n, 1.0F, a_t.data(), b.data(), 0.0F, c.data());

  Tensor a({m, k});
  for (std::size_t p = 0; p < k; ++p)
    for (std::size_t i = 0; i < m; ++i) a.at(i, p) = a_t.at(p, i);
  Tensor c_ref({m, n});
  naive_gemm(m, k, n, 1.0F, a.data(), b.data(), 0.0F, c_ref.data());
  for (std::size_t i = 0; i < c.size(); ++i)
    EXPECT_NEAR(c[i], c_ref[i], 1e-3F);

  // B stored as [n x k] for sgemm_bt.
  Tensor b_t({n, k});
  for (std::size_t p = 0; p < k; ++p)
    for (std::size_t j = 0; j < n; ++j) b_t.at(j, p) = b.at(p, j);
  Tensor c2({m, n});
  sgemm_bt(m, k, n, 1.0F, a.data(), b_t.data(), 0.0F, c2.data());
  for (std::size_t i = 0; i < c2.size(); ++i)
    EXPECT_NEAR(c2[i], c_ref[i], 1e-3F);
}

// ---- ops ----

TEST(Ops, SoftmaxRowsSumToOne) {
  Tensor x({2, 3}, {1, 2, 3, -1, 0, 1});
  const Tensor p = softmax_rows(x);
  for (std::size_t r = 0; r < 2; ++r) {
    float sum = 0.0F;
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_GT(p.at(r, c), 0.0F);
      sum += p.at(r, c);
    }
    EXPECT_NEAR(sum, 1.0F, 1e-5F);
  }
  EXPECT_GT(p.at(0, 2), p.at(0, 0));
}

TEST(Ops, SoftmaxIsShiftInvariantAndStable) {
  Tensor a({3}, {1000.0F, 1001.0F, 1002.0F});
  const Tensor p = softmax(a);
  EXPECT_NEAR(p[0] + p[1] + p[2], 1.0F, 1e-5F);
  EXPECT_FALSE(std::isnan(p[0]));
}

TEST(Ops, ReluTanhSigmoid) {
  Tensor x({3}, {-2.0F, 0.0F, 2.0F});
  const Tensor r = relu(x);
  EXPECT_EQ(r[0], 0.0F);
  EXPECT_EQ(r[2], 2.0F);
  const Tensor t = tanh_elem(x);
  EXPECT_NEAR(t[2], std::tanh(2.0F), 1e-6F);
  const Tensor s = sigmoid(x);
  EXPECT_NEAR(s[1], 0.5F, 1e-6F);
  EXPECT_NEAR(s[0] + s[2], 1.0F, 1e-6F);  // sigmoid symmetry
}

TEST(Ops, Normalize01) {
  Tensor x({4}, {2, 4, 6, 10});
  const Tensor n = normalize01(x);
  EXPECT_FLOAT_EQ(n.min(), 0.0F);
  EXPECT_FLOAT_EQ(n.max(), 1.0F);
  EXPECT_FLOAT_EQ(n[1], 0.25F);
  Tensor flat({3}, {5, 5, 5});
  const Tensor nf = normalize01(flat);
  EXPECT_FLOAT_EQ(nf.max(), 0.0F);
}

TEST(Ops, ToDbMonotoneWithFloor) {
  Tensor x({3}, {0.0F, 1.0F, 10.0F});
  const Tensor db = to_db(x, 1e-3F);
  EXPECT_FLOAT_EQ(db[1], 0.0F);
  EXPECT_NEAR(db[2], 20.0F, 1e-4F);
  EXPECT_FLOAT_EQ(db[0], -60.0F);  // clamped at the floor
}

TEST(Ops, MeanRowsAndConcat) {
  Tensor x({2, 3}, {1, 2, 3, 3, 4, 5});
  const Tensor m = mean_rows(x);
  EXPECT_FLOAT_EQ(m[0], 2.0F);
  EXPECT_FLOAT_EQ(m[2], 4.0F);
  const Tensor c = concat({Tensor({2}, {1, 2}), Tensor({1}, {3})});
  EXPECT_EQ(c.size(), 3u);
  EXPECT_FLOAT_EQ(c[2], 3.0F);
}

TEST(Ops, CosineAndPearson) {
  Tensor a({3}, {1, 0, 0});
  EXPECT_FLOAT_EQ(cosine_similarity(a, a), 1.0F);
  Tensor b({3}, {0, 1, 0});
  EXPECT_FLOAT_EQ(cosine_similarity(a, b), 0.0F);
  Tensor x({4}, {1, 2, 3, 4});
  Tensor y({4}, {2, 4, 6, 8});
  EXPECT_NEAR(pearson_correlation(x, y), 1.0F, 1e-5F);
  Tensor z({4}, {8, 6, 4, 2});
  EXPECT_NEAR(pearson_correlation(x, z), -1.0F, 1e-5F);
}

}  // namespace
}  // namespace mmhar
