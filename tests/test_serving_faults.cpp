// Serving fault containment (DESIGN.md §6c): poison-frame quarantine,
// per-stream degradation with bit-identical survivors, suspension +
// recovery probes, shard-worker supervision (crash/stall restart), and a
// multi-producer chaos run with every injection site armed at once.
//
// Injected faults exercise the SAME paths a hostile producer or a broken
// kernel would: serving.frame_poison writes a real NaN into a claimed
// payload, serving.infer_fail kills one micro-batch row, and
// serving.shard_crash / serving.shard_stall take a worker thread down.
// Everything here allocates on the armed cold paths by design, so this
// binary is excluded from the RTSan CI leg (see .github/workflows/ci.yml);
// the zero-allocation steady state with the injector DISARMED stays
// covered by test_serving's SteadyStateIsAllocationFree.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <limits>
#include <thread>
#include <vector>

#include "common/fault_injection.h"
#include "common/finite_check.h"
#include "common/rng.h"
#include "dsp/heatmap.h"
#include "har/model.h"
#include "serving/serving.h"

namespace mmhar::serving {
namespace {

constexpr std::size_t kChirps = 8;
constexpr std::size_t kAntennas = 8;
constexpr std::size_t kSamples = 32;

har::HarModelConfig test_model_config() {
  har::HarModelConfig mc;
  mc.frames = 8;
  mc.height = 16;
  mc.width = 16;
  mc.conv1_channels = 4;
  mc.conv2_channels = 8;
  mc.feature_dim = 32;
  mc.lstm_hidden = 32;
  mc.num_classes = 4;
  mc.seed = 7;
  return mc;
}

ServingConfig test_serving_config() {
  ServingConfig cfg;
  cfg.max_streams = 64;
  cfg.queue_depth = 4;
  cfg.batch_max = 64;
  cfg.result_depth = 64;
  cfg.num_chirps = kChirps;
  cfg.num_antennas = kAntennas;
  cfg.num_samples = kSamples;
  cfg.heatmap.range_bins = 16;
  cfg.heatmap.angle_bins = 16;
  return cfg;
}

dsp::RadarCube random_cube(Rng& rng) {
  dsp::RadarCube cube(kChirps, kAntennas, kSamples);
  for (dsp::cfloat& v : cube.raw())
    v = dsp::cfloat(static_cast<float>(rng.uniform(-1.0, 1.0)),
                    static_cast<float>(rng.uniform(-1.0, 1.0)));
  return cube;
}

std::vector<dsp::RadarCube> random_frames(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<dsp::RadarCube> frames;
  frames.reserve(n);
  for (std::size_t i = 0; i < n; ++i) frames.push_back(random_cube(rng));
  return frames;
}

// What a hostile (or broken) producer hands the service: a frame whose
// payload carries a NaN sample.
dsp::RadarCube poisoned_cube(std::uint64_t seed) {
  Rng rng(seed);
  dsp::RadarCube cube = random_cube(rng);
  cube.raw()[cube.raw().size() / 2] =
      dsp::cfloat(std::numeric_limits<float>::quiet_NaN(), 0.25F);
  return cube;
}

// Submit a frame sequence to one stream, pumping a batcher cycle after
// every submit, and collect every classification produced.
std::vector<Classification> run_sequence(StreamingHarService& svc,
                                         std::size_t stream,
                                         const std::vector<dsp::RadarCube>& fs) {
  std::vector<Classification> out;
  std::array<Classification, 8> buf;
  for (const dsp::RadarCube& f : fs) {
    EXPECT_TRUE(svc.submit_frame(stream, f)) << "unexpected rejection";
    svc.run_cycle();
    const std::size_t n = svc.poll(stream, std::span<Classification>(buf));
    out.insert(out.end(), buf.begin(), buf.begin() + n);
  }
  return out;
}

void expect_bit_identical(const std::vector<Classification>& a,
                          const std::vector<Classification>& b,
                          std::size_t num_classes) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].predicted, b[i].predicted) << "result " << i;
    EXPECT_EQ(0, std::memcmp(a[i].logits, b[i].logits,
                             num_classes * sizeof(float)))
        << "logits differ bitwise at result " << i;
  }
}

// Every result in `got` must bitwise-match the reference result carrying
// the same frame_seq; `ref` may additionally contain exactly the seqs in
// `missing` (the rows sacrificed by containment).
void expect_subset_by_seq(const std::vector<Classification>& got,
                          const std::vector<Classification>& ref,
                          std::size_t num_classes,
                          const std::vector<std::uint64_t>& missing) {
  ASSERT_EQ(got.size() + missing.size(), ref.size());
  std::size_t gi = 0;
  for (const Classification& r : ref) {
    bool sacrificed = false;
    for (const std::uint64_t seq : missing) sacrificed |= seq == r.frame_seq;
    if (sacrificed) continue;
    ASSERT_LT(gi, got.size());
    EXPECT_EQ(got[gi].frame_seq, r.frame_seq);
    EXPECT_EQ(got[gi].predicted, r.predicted);
    EXPECT_EQ(0, std::memcmp(got[gi].logits, r.logits,
                             num_classes * sizeof(float)))
        << "logits differ bitwise at seq " << r.frame_seq;
    ++gi;
  }
  EXPECT_EQ(gi, got.size());
}

// Lossless submit against a running service: retry until admitted (used
// with DropPolicy::kNewest so backpressure rejects instead of evicting).
void submit_blocking(StreamingHarService& svc, std::size_t sid,
                     const dsp::RadarCube& f) {
  while (!svc.submit_frame(sid, f)) std::this_thread::yield();
}

// Poll until `want` results arrived or `timeout` elapsed.
std::vector<Classification> collect_results(StreamingHarService& svc,
                                            std::size_t sid, std::size_t want,
                                            std::chrono::milliseconds timeout) {
  std::vector<Classification> out;
  std::array<Classification, 16> buf;
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (out.size() < want && std::chrono::steady_clock::now() < deadline) {
    const std::size_t n = svc.poll(sid, std::span<Classification>(buf));
    out.insert(out.end(), buf.begin(), buf.begin() + n);
    if (n == 0) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return out;
}

class ServingFaults : public ::testing::Test {
 protected:
  void TearDown() override {
    FaultInjector::instance().clear();
    set_finite_checks_for_testing(-1);
  }
};

// Satellite regression: a NaN frame from a producer thread is a
// per-stream event, never process death. Before containment the post-FFT
// check_finite threw inside the worker and std::terminate'd the process.
TEST_F(ServingFaults, NanFrameNeverEscapesTheWorker) {
  set_finite_checks_for_testing(1);  // arm every tripwire the frame crosses
  const har::HarModelConfig mc = test_model_config();
  har::HarModel model(mc);
  ServingConfig cfg = test_serving_config();
  cfg.drop_policy = DropPolicy::kNewest;
  StreamingHarService svc(cfg, model);
  const std::size_t victim = svc.add_stream();
  const std::size_t healthy = svc.add_stream();
  svc.start();

  const std::size_t total = mc.frames + 4;
  const std::vector<dsp::RadarCube> good = random_frames(total, 301);
  std::thread attacker([&] {
    for (std::size_t i = 0; i < total; ++i)
      submit_blocking(svc, victim, poisoned_cube(900 + i));
  });
  for (const dsp::RadarCube& f : good) submit_blocking(svc, healthy, f);
  attacker.join();

  const std::size_t want = total - mc.frames + 1;
  const std::vector<Classification> results =
      collect_results(svc, healthy, want, std::chrono::seconds(30));
  EXPECT_EQ(results.size(), want) << "healthy stream starved by a NaN peer";

  // Every poisoned frame was attributed to the hostile stream — either
  // quarantined at the claim boundary or shed once the consecutive
  // quarantines suspended the stream — and the service is still alive to
  // say so (poll a few more cycles so the last claims land).
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  auto attributed = [&] {
    const StreamStats st = svc.stream_stats(victim);
    return st.quarantined + st.suspended_dropped;
  };
  while (attributed() < total &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  svc.stop();
  const StreamStats st = svc.stream_stats(victim);
  EXPECT_EQ(st.quarantined + st.suspended_dropped, total);
  EXPECT_GE(st.quarantined, cfg.max_stream_faults);
  EXPECT_TRUE(st.suspended) << "an all-poison stream must end up suspended";
  EXPECT_EQ(st.classifications, 0U);
  const ServiceHealth h = svc.health();
  EXPECT_GE(h.quarantined, st.quarantined);
  EXPECT_EQ(h.suspended_streams, 1U);
  for (const ShardHealth& sd : h.shards) EXPECT_FALSE(sd.crashed);
}

// Quarantine is exact: the poisoned frame vanishes as if never submitted
// (the victim's remaining sequence is bit-identical to an as-if-omitted
// run) and a clean stream sharing every batcher cycle is bit-identical
// to serving alone. No finite-checks flag needed — the claim-boundary
// scan is always on.
TEST_F(ServingFaults, QuarantineIsolatesThePoisonedFrameExactly) {
  const har::HarModelConfig mc = test_model_config();
  har::HarModel model(mc);
  const ServingConfig cfg = test_serving_config();
  const std::size_t total = mc.frames + 4;
  const std::vector<dsp::RadarCube> victim_frames = random_frames(total, 51);
  const std::vector<dsp::RadarCube> clean_frames = random_frames(total, 52);
  const std::size_t poison_at = 2;

  std::vector<Classification> victim_got;
  std::vector<Classification> clean_got;
  {
    StreamingHarService svc(cfg, model);
    const std::size_t victim = svc.add_stream();
    const std::size_t clean = svc.add_stream();
    std::array<Classification, 8> buf;
    for (std::size_t i = 0; i <= total; ++i) {
      if (i < total) {
        // The poison rides along mid-sequence; both streams share every
        // cycle either way.
        if (i == poison_at)
          ASSERT_TRUE(svc.submit_frame(victim, poisoned_cube(77)));
        else
          ASSERT_TRUE(svc.submit_frame(victim, victim_frames[i]));
        ASSERT_TRUE(svc.submit_frame(clean, clean_frames[i]));
      }
      svc.run_cycle();
      std::size_t n = svc.poll(victim, std::span<Classification>(buf));
      victim_got.insert(victim_got.end(), buf.begin(), buf.begin() + n);
      n = svc.poll(clean, std::span<Classification>(buf));
      clean_got.insert(clean_got.end(), buf.begin(), buf.begin() + n);
    }
    const StreamStats vs = svc.stream_stats(victim);
    EXPECT_EQ(vs.quarantined, 1U);
    EXPECT_EQ(vs.errors, 0U);
    EXPECT_FALSE(vs.suspended);
    EXPECT_EQ(svc.stream_stats(clean).quarantined, 0U);
  }

  // Reference A: the victim's sequence without the poisoned frame at all
  // (the poison replaced victim_frames[poison_at], so omit that slot).
  std::vector<dsp::RadarCube> omitted = victim_frames;
  omitted.erase(omitted.begin() + static_cast<std::ptrdiff_t>(poison_at));
  std::vector<Classification> as_if_omitted;
  {
    StreamingHarService svc(cfg, model);
    const std::size_t sid = svc.add_stream();
    as_if_omitted = run_sequence(svc, sid, omitted);
  }
  // Sequence numbers shift by the omitted submit; the classifications
  // themselves must be bit-identical.
  expect_bit_identical(victim_got, as_if_omitted, mc.num_classes);

  // Reference B: the clean stream served alone, bit-identical.
  std::vector<Classification> clean_alone;
  {
    StreamingHarService svc(cfg, model);
    const std::size_t sid = svc.add_stream();
    clean_alone = run_sequence(svc, sid, clean_frames);
  }
  expect_bit_identical(clean_got, clean_alone, mc.num_classes);
}

// serving.frame_poison drives the same quarantine path deterministically:
// the Nth claimed frame gains a NaN before the scan.
TEST_F(ServingFaults, FramePoisonInjectionQuarantinesTheNthClaim) {
  const har::HarModelConfig mc = test_model_config();
  har::HarModel model(mc);
  const ServingConfig cfg = test_serving_config();
  const std::size_t total = mc.frames + 4;
  const std::vector<dsp::RadarCube> frames = random_frames(total, 61);
  const std::size_t nth = 3;  // third claimed frame = frames[2]

  FaultInjector::instance().configure("serving.frame_poison@3", 1);
  std::vector<Classification> got;
  {
    StreamingHarService svc(cfg, model);
    const std::size_t sid = svc.add_stream();
    got = run_sequence(svc, sid, frames);
    const StreamStats st = svc.stream_stats(sid);
    EXPECT_EQ(st.quarantined, 1U);
    EXPECT_EQ(st.errors, 0U);
  }
  EXPECT_EQ(FaultInjector::instance().fire_count("serving.frame_poison"), 1U);
  FaultInjector::instance().clear();

  std::vector<dsp::RadarCube> omitted = frames;
  omitted.erase(omitted.begin() + static_cast<std::ptrdiff_t>(nth - 1));
  std::vector<Classification> reference;
  {
    StreamingHarService svc(cfg, model);
    const std::size_t sid = svc.add_stream();
    reference = run_sequence(svc, sid, omitted);
  }
  expect_bit_identical(got, reference, mc.num_classes);
}

// serving.infer_fail sacrifices exactly one micro-batch row: the victim
// stream loses that one window (same frame_seq numbering, one seq
// missing) and its peer — rerun batch-1 by the degraded path — stays
// bit-identical to the fused fault-free run.
TEST_F(ServingFaults, InferFailSacrificesOnlyTheFaultyRow) {
  const har::HarModelConfig mc = test_model_config();
  har::HarModel model(mc);
  const ServingConfig cfg = test_serving_config();
  const std::size_t total = mc.frames + 4;
  const std::vector<dsp::RadarCube> a_frames = random_frames(total, 71);
  const std::vector<dsp::RadarCube> b_frames = random_frames(total, 72);

  // Fault-free reference, both streams sharing every cycle.
  std::vector<Classification> a_ref;
  std::vector<Classification> b_ref;
  {
    StreamingHarService svc(cfg, model);
    const std::size_t a = svc.add_stream();
    const std::size_t b = svc.add_stream();
    std::array<Classification, 8> buf;
    for (std::size_t i = 0; i < total; ++i) {
      ASSERT_TRUE(svc.submit_frame(a, a_frames[i]));
      ASSERT_TRUE(svc.submit_frame(b, b_frames[i]));
      svc.run_cycle();
      std::size_t n = svc.poll(a, std::span<Classification>(buf));
      a_ref.insert(a_ref.end(), buf.begin(), buf.begin() + n);
      n = svc.poll(b, std::span<Classification>(buf));
      b_ref.insert(b_ref.end(), buf.begin(), buf.begin() + n);
    }
  }
  ASSERT_EQ(a_ref.size(), total - mc.frames + 1);

  // Same run with the very first inference row (stream a's first window,
  // newest frame seq = frames - 1) killed.
  FaultInjector::instance().configure("serving.infer_fail@1", 1);
  std::vector<Classification> a_got;
  std::vector<Classification> b_got;
  {
    StreamingHarService svc(cfg, model);
    const std::size_t a = svc.add_stream();
    const std::size_t b = svc.add_stream();
    std::array<Classification, 8> buf;
    for (std::size_t i = 0; i < total; ++i) {
      ASSERT_TRUE(svc.submit_frame(a, a_frames[i]));
      ASSERT_TRUE(svc.submit_frame(b, b_frames[i]));
      svc.run_cycle();
      std::size_t n = svc.poll(a, std::span<Classification>(buf));
      a_got.insert(a_got.end(), buf.begin(), buf.begin() + n);
      n = svc.poll(b, std::span<Classification>(buf));
      b_got.insert(b_got.end(), buf.begin(), buf.begin() + n);
    }
    const StreamStats sa = svc.stream_stats(a);
    const StreamStats sb = svc.stream_stats(b);
    EXPECT_EQ(sa.errors, 1U);
    EXPECT_EQ(sa.quarantined, 0U);
    EXPECT_EQ(sb.errors, 0U);
    EXPECT_EQ(svc.health().errors, 1U);
  }
  EXPECT_EQ(FaultInjector::instance().fire_count("serving.infer_fail"), 1U);

  expect_subset_by_seq(a_got, a_ref, mc.num_classes, {mc.frames - 1});
  expect_subset_by_seq(b_got, b_ref, mc.num_classes, {});
}

// max_stream_faults consecutive contained faults suspend the stream; a
// suspended stream sheds its backlog and probes one frame per cycle; the
// first clean frame lifts the suspension and classification resumes.
TEST_F(ServingFaults, SuspensionShedsBacklogAndProbeRecovers) {
  const har::HarModelConfig mc = test_model_config();
  har::HarModel model(mc);
  ServingConfig cfg = test_serving_config();
  cfg.max_stream_faults = 2;
  StreamingHarService svc(cfg, model);
  const std::size_t sid = svc.add_stream();
  std::array<Classification, 8> buf;

  // Two consecutive quarantines cross the threshold.
  for (std::uint64_t i = 0; i < 2; ++i) {
    ASSERT_TRUE(svc.submit_frame(sid, poisoned_cube(200 + i)));
    svc.run_cycle();
  }
  StreamStats st = svc.stream_stats(sid);
  EXPECT_TRUE(st.suspended);
  EXPECT_EQ(st.suspensions, 1U);
  EXPECT_EQ(st.quarantined, 2U);

  // A backlog built while suspended is shed down to one probe frame.
  for (std::uint64_t i = 0; i < cfg.queue_depth; ++i)
    ASSERT_TRUE(svc.submit_frame(sid, poisoned_cube(300 + i)));
  svc.run_cycle();
  st = svc.stream_stats(sid);
  EXPECT_EQ(st.suspended_dropped, cfg.queue_depth - 1);
  EXPECT_EQ(st.quarantined, 3U);  // the probe was poisoned too
  EXPECT_TRUE(st.suspended);
  EXPECT_EQ(st.suspensions, 1U);  // still the same suspension episode

  // The first clean probe lifts the suspension; a full window of clean
  // frames then classifies normally.
  const std::vector<dsp::RadarCube> frames = random_frames(mc.frames, 210);
  std::vector<Classification> got;
  for (const dsp::RadarCube& f : frames) {
    ASSERT_TRUE(svc.submit_frame(sid, f));
    svc.run_cycle();
    const std::size_t n = svc.poll(sid, std::span<Classification>(buf));
    got.insert(got.end(), buf.begin(), buf.begin() + n);
  }
  st = svc.stream_stats(sid);
  EXPECT_FALSE(st.suspended);
  EXPECT_EQ(st.suspensions, 1U);
  ASSERT_EQ(got.size(), 1U);

  // Recovery is exact: the clean window classifies bit-identically to a
  // service that never saw a fault.
  std::vector<Classification> reference;
  {
    StreamingHarService fresh(cfg, model);
    const std::size_t rid = fresh.add_stream();
    reference = run_sequence(fresh, rid, frames);
  }
  expect_bit_identical(got, reference, mc.num_classes);
}

// An injected worker crash is contained (no std::terminate across the
// thread boundary), the watchdog restarts the shard, and the stream's
// classification sequence survives losslessly and bit-identically.
TEST_F(ServingFaults, WatchdogRestartsACrashedShard) {
  const har::HarModelConfig mc = test_model_config();
  har::HarModel model(mc);
  ServingConfig cfg = test_serving_config();
  cfg.drop_policy = DropPolicy::kNewest;
  cfg.watchdog_ms = 5;
  const std::size_t total = mc.frames + 6;
  const std::vector<dsp::RadarCube> frames = random_frames(total, 81);

  FaultInjector::instance().configure("serving.shard_crash@1", 1);
  std::vector<Classification> got;
  {
    StreamingHarService svc(cfg, model);
    const std::size_t sid = svc.add_stream();
    svc.start();
    EXPECT_TRUE(svc.health().watchdog_running);
    for (const dsp::RadarCube& f : frames) submit_blocking(svc, sid, f);
    got = collect_results(svc, sid, total - mc.frames + 1,
                          std::chrono::seconds(60));
    const ServiceHealth h = svc.health();
    EXPECT_GE(h.restarts, 1U);
    EXPECT_FALSE(h.shards[0].crashed) << "crashed worker was never restarted";
    svc.stop();
    EXPECT_FALSE(svc.health().watchdog_running);
  }
  EXPECT_EQ(FaultInjector::instance().fire_count("serving.shard_crash"), 1U);
  FaultInjector::instance().clear();

  std::vector<Classification> reference;
  {
    StreamingHarService svc(cfg, model);
    const std::size_t sid = svc.add_stream();
    reference = run_sequence(svc, sid, frames);
  }
  expect_subset_by_seq(got, reference, mc.num_classes, {});
}

// A worker wedged at its wake-up point (injected stall) freezes its
// heartbeat while work is pending; the watchdog declares it stalled and
// restarts it, and the backlog then drains losslessly.
TEST_F(ServingFaults, WatchdogRestartsAStalledShard) {
  const har::HarModelConfig mc = test_model_config();
  har::HarModel model(mc);
  ServingConfig cfg = test_serving_config();
  cfg.drop_policy = DropPolicy::kNewest;
  cfg.watchdog_ms = 5;
  const std::size_t total = mc.frames + 6;
  const std::vector<dsp::RadarCube> frames = random_frames(total, 91);

  FaultInjector::instance().configure("serving.shard_stall@1", 1);
  std::vector<Classification> got;
  {
    StreamingHarService svc(cfg, model);
    const std::size_t sid = svc.add_stream();
    svc.start();
    for (const dsp::RadarCube& f : frames) submit_blocking(svc, sid, f);
    got = collect_results(svc, sid, total - mc.frames + 1,
                          std::chrono::seconds(60));
    const ServiceHealth h = svc.health();
    EXPECT_GE(h.restarts, 1U);
    svc.stop();
  }
  FaultInjector::instance().clear();

  std::vector<Classification> reference;
  {
    StreamingHarService svc(cfg, model);
    const std::size_t sid = svc.add_stream();
    reference = run_sequence(svc, sid, frames);
  }
  expect_subset_by_seq(got, reference, mc.num_classes, {});
}

// stop()/start() restart cycles preserve per-stream state exactly: a
// sequence split across a full service restart classifies bit-identically
// to an uninterrupted run.
TEST_F(ServingFaults, StopStartCyclesAreBitIdentical) {
  const har::HarModelConfig mc = test_model_config();
  har::HarModel model(mc);
  ServingConfig cfg = test_serving_config();
  cfg.drop_policy = DropPolicy::kNewest;
  cfg.watchdog_ms = 5;  // the watchdog must survive the cycles too
  const std::size_t total = mc.frames + 6;
  const std::vector<dsp::RadarCube> frames = random_frames(total, 101);
  const std::size_t want = total - mc.frames + 1;

  std::vector<Classification> got;
  {
    StreamingHarService svc(cfg, model);
    const std::size_t sid = svc.add_stream();
    std::size_t next = 0;
    for (int cycle = 0; cycle < 3; ++cycle) {
      svc.start();
      EXPECT_TRUE(svc.health().watchdog_running);
      const std::size_t until =
          cycle == 2 ? total : (total * static_cast<std::size_t>(cycle + 1)) / 3;
      for (; next < until; ++next) submit_blocking(svc, sid, frames[next]);
      // Drain before stopping so no queued frame waits out a stop gap.
      const auto deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(60);
      while (svc.stream_stats(sid).classifications <
                 (next >= mc.frames ? next - mc.frames + 1 : 0) &&
             std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      svc.stop();
      EXPECT_FALSE(svc.health().watchdog_running);
    }
    got = collect_results(svc, sid, want, std::chrono::seconds(1));
  }

  std::vector<Classification> reference;
  {
    StreamingHarService svc(cfg, model);
    const std::size_t sid = svc.add_stream();
    reference = run_sequence(svc, sid, frames);
  }
  expect_subset_by_seq(got, reference, mc.num_classes, {});
}

// Chaos: four producers, 64 streams, four shards, every injection site
// armed at once (probabilistic poison + inference faults, deterministic
// crash and stall), supervision on a tight cadence. The service must
// never terminate, every fault must land in a per-stream or per-shard
// counter, and the books must balance. Runs under the TSan CI leg.
TEST_F(ServingFaults, ChaosMultiProducerLoadWithAllSitesArmed) {
  const har::HarModelConfig mc = test_model_config();
  har::HarModel model(mc);
  ServingConfig cfg = test_serving_config();
  cfg.num_shards = 4;
  cfg.drop_policy = DropPolicy::kNewest;
  cfg.watchdog_ms = 2;
  cfg.max_stream_faults = 3;
  const std::size_t n_streams = cfg.max_streams;  // 64
  const std::size_t per_stream = mc.frames + 8;   // 16 frames each
  constexpr std::size_t kProducers = 4;

  FaultInjector::instance().configure(
      "serving.frame_poison=0.02,serving.infer_fail=0.01,"
      "serving.shard_crash@3,serving.shard_stall@9",
      7);

  StreamingHarService svc(cfg, model);
  std::vector<std::size_t> sids(n_streams);
  for (std::size_t s = 0; s < n_streams; ++s) sids[s] = svc.add_stream();
  svc.start();

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::size_t s = p; s < n_streams; s += kProducers) {
        const std::vector<dsp::RadarCube> frames =
            random_frames(per_stream, 5000 + s);
        for (const dsp::RadarCube& f : frames)
          submit_blocking(svc, sids[s], f);
      }
    });
  }
  for (std::thread& t : producers) t.join();

  // Quiesce: totals stable across two consecutive observation windows
  // (faulted streams may legitimately produce fewer results, so "all
  // counters stopped moving" is the convergence signal, not a count).
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::minutes(4);
  std::uint64_t prev_total = 0;
  int stable = 0;
  while (stable < 3 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    const ServiceHealth h = svc.health();
    std::uint64_t total = h.quarantined + h.errors;
    for (std::size_t s = 0; s < n_streams; ++s)
      total += svc.stream_stats(sids[s]).classifications;
    stable = total == prev_total ? stable + 1 : 0;
    prev_total = total;
  }
  svc.stop();

  // The deterministic crash fired and was supervised back to life.
  const ServiceHealth h = svc.health();
  EXPECT_GE(h.restarts, 1U);
  for (const ShardHealth& sd : h.shards) EXPECT_FALSE(sd.crashed);
  EXPECT_GE(FaultInjector::instance().fire_count("serving.shard_crash"), 1U);
  // ~20 expected poison fires across 1024 claims; zero means the site
  // never wired up, not bad luck (P ≈ 1e-9).
  EXPECT_GE(h.quarantined, 1U);

  // Per-stream books: lossless admission, and every accepted frame is
  // accounted for as a classification, a contained fault, shed backlog,
  // or one of the final window_frames-1 partial-window frames.
  std::uint64_t sum_quarantined = 0;
  std::uint64_t sum_errors = 0;
  std::uint64_t shard_faults = 0;
  for (const ShardHealth& sd : h.shards) shard_faults += sd.faults;
  for (std::size_t s = 0; s < n_streams; ++s) {
    const StreamStats st = svc.stream_stats(sids[s]);
    EXPECT_EQ(st.accepted, per_stream) << "stream " << s;
    EXPECT_EQ(st.rejected_frames, st.submitted - st.accepted);
    EXPECT_EQ(st.dropped_frames, 0U) << "kNewest must never evict";
    EXPECT_GE(st.classifications + st.quarantined + st.errors +
                  st.suspended_dropped + mc.frames - 1,
              st.accepted)
        << "stream " << s << " lost frames without attribution";
    sum_quarantined += st.quarantined;
    sum_errors += st.errors;
  }
  EXPECT_EQ(h.quarantined, sum_quarantined);
  EXPECT_EQ(h.errors, sum_errors);
  // Shard fault counters see every contained stream fault (crash faults
  // are additional, hence >=).
  EXPECT_GE(shard_faults, sum_quarantined + sum_errors);
}

}  // namespace
}  // namespace mmhar::serving
