// Tests for the radar-cube processing chain: Range/Doppler/Angle FFTs,
// clutter removal, and the RDI/DRAI heatmap builders. Signals are
// synthesized analytically (known beat frequency / inter-antenna phase /
// inter-chirp rotation) so the expected peak bins are exact.
#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "dsp/heatmap.h"

namespace mmhar::dsp {
namespace {

constexpr double kPi = 3.14159265358979323846;

/// Inject a synthetic target: beat frequency `range_bin` cycles/chirp,
/// angle spatial frequency `angle_cycles` cycles/antenna, Doppler
/// `doppler_cycles` cycles/chirp-step.
void inject_target(RadarCube& cube, double range_bin, double angle_cycles,
                   double doppler_cycles, float amplitude = 1.0F) {
  for (std::size_t q = 0; q < cube.num_chirps(); ++q) {
    for (std::size_t k = 0; k < cube.num_antennas(); ++k) {
      for (std::size_t n = 0; n < cube.num_samples(); ++n) {
        const double phase =
            2.0 * kPi *
            (range_bin * static_cast<double>(n) /
                 static_cast<double>(cube.num_samples()) +
             angle_cycles * static_cast<double>(k) +
             doppler_cycles * static_cast<double>(q));
        cube.at(q, k, n) += cfloat(
            amplitude * static_cast<float>(std::cos(phase)),
            amplitude * static_cast<float>(std::sin(phase)));
      }
    }
  }
}

HeatmapConfig test_config() {
  HeatmapConfig cfg;
  cfg.range_bins = 32;
  cfg.angle_bins = 32;
  cfg.remove_clutter = false;
  cfg.normalize = false;
  return cfg;
}

TEST(RadarCube, LayoutAndBounds) {
  RadarCube cube(4, 8, 16);
  EXPECT_EQ(cube.num_chirps(), 4u);
  EXPECT_EQ(cube.num_antennas(), 8u);
  EXPECT_EQ(cube.num_samples(), 16u);
  cube.at(3, 7, 15) = cfloat(1.0F, 2.0F);
  EXPECT_EQ(cube.row(3, 7)[15], cfloat(1.0F, 2.0F));
  EXPECT_EQ(cube.raw().size(), 4u * 8u * 16u);
  EXPECT_THROW(RadarCube(0, 1, 1), InvalidArgument);
}

TEST(RangeFft, PeakAtInjectedRangeBin) {
  RadarCube cube(4, 2, 64);
  inject_target(cube, 12.0, 0.0, 0.0);
  auto cfg = test_config();
  cfg.range_window = WindowKind::Rect;
  const RangeSpectra spectra = range_fft(cube, cfg);
  std::size_t peak = 0;
  for (std::size_t r = 1; r < spectra.range_bins; ++r)
    if (std::abs(spectra.at(0, 0, r)) > std::abs(spectra.at(0, 0, peak)))
      peak = r;
  EXPECT_EQ(peak, 12u);
}

TEST(RangeFft, CropKeepsLeadingBins) {
  RadarCube cube(2, 1, 64);
  inject_target(cube, 3.0, 0.0, 0.0);
  auto cfg = test_config();
  cfg.range_bins = 8;
  const RangeSpectra s = range_fft(cube, cfg);
  EXPECT_EQ(s.range_bins, 8u);
  std::size_t peak = 0;
  for (std::size_t r = 1; r < 8; ++r)
    if (std::abs(s.at(0, 0, r)) > std::abs(s.at(0, 0, peak))) peak = r;
  EXPECT_EQ(peak, 3u);
}

TEST(ClutterRemoval, KillsStaticKeepsMoving) {
  RadarCube cube(16, 2, 64);
  inject_target(cube, 10.0, 0.0, 0.0);   // static target
  inject_target(cube, 20.0, 0.0, 0.2);   // moving target
  auto cfg = test_config();
  cfg.remove_clutter = true;
  const RangeSpectra s = range_fft(cube, cfg);
  double static_energy = 0.0;
  double moving_energy = 0.0;
  for (std::size_t q = 0; q < 16; ++q) {
    static_energy += std::abs(s.at(q, 0, 10));
    moving_energy += std::abs(s.at(q, 0, 20));
  }
  EXPECT_LT(static_energy, 0.05 * moving_energy);
}

TEST(ClutterRemoval, MeanIsExactlyZeroPerCell) {
  RadarCube cube(8, 2, 32);
  inject_target(cube, 5.0, 0.1, 0.13);
  auto cfg = test_config();
  cfg.remove_clutter = true;
  const RangeSpectra s = range_fft(cube, cfg);
  for (std::size_t k = 0; k < 2; ++k) {
    for (std::size_t r = 0; r < 32; ++r) {
      cfloat mean{0, 0};
      for (std::size_t q = 0; q < 8; ++q) mean += s.at(q, k, r);
      EXPECT_NEAR(std::abs(mean), 0.0F, 1e-3F);
    }
  }
}

TEST(Drai, PeakAtInjectedRangeAndAngle) {
  RadarCube cube(8, 16, 64);
  // angle_cycles = 0.25 -> after fftshift, bin 16 + 0.25*32 = 24.
  inject_target(cube, 9.0, 0.25, 0.1);
  auto cfg = test_config();
  const Tensor drai = compute_drai(cube, cfg);
  EXPECT_EQ(drai.shape(), (std::vector<std::size_t>{32, 32}));
  std::size_t best = drai.argmax();
  EXPECT_EQ(best / 32, 9u);   // range bin
  EXPECT_EQ(best % 32, 24u);  // angle bin
}

TEST(Drai, NegativeAngleMapsBelowCenter) {
  RadarCube cube(8, 16, 64);
  inject_target(cube, 9.0, -0.25, 0.1);
  const Tensor drai = compute_drai(cube, test_config());
  EXPECT_EQ(drai.argmax() % 32, 8u);  // 16 - 0.25*32
}

TEST(Drai, NormalizationBoundsOutput) {
  RadarCube cube(4, 8, 64);
  inject_target(cube, 5.0, 0.1, 0.0, 3.0F);
  auto cfg = test_config();
  cfg.normalize = true;
  const Tensor drai = compute_drai(cube, cfg);
  EXPECT_FLOAT_EQ(drai.max(), 1.0F);
  EXPECT_FLOAT_EQ(drai.min(), 0.0F);
}

TEST(Drai, LogScaleCompressesDynamicRange) {
  RadarCube cube(4, 8, 64);
  inject_target(cube, 5.0, 0.0, 0.0, 10.0F);
  inject_target(cube, 20.0, 0.0, 0.0, 0.1F);
  auto cfg = test_config();
  const Tensor lin = compute_drai(cube, cfg);
  cfg.log_scale = true;
  const Tensor db = compute_drai(cube, cfg);
  const double lin_ratio = lin.at(5, 16) / std::max(1e-9F, lin.at(20, 16));
  const double db_diff = db.at(5, 16) - db.at(20, 16);
  EXPECT_GT(lin_ratio, 50.0);
  EXPECT_NEAR(db_diff, 20.0 * std::log10(lin_ratio), 1.0);
}

TEST(Rdi, DopplerPeakRowMatchesInjectedShift) {
  RadarCube cube(16, 4, 64);
  // doppler_cycles = +0.25 cycles/chirp -> shifted row 8 + 0.25*16 = 12.
  inject_target(cube, 7.0, 0.0, 0.25);
  auto cfg = test_config();
  cfg.doppler_window = WindowKind::Rect;
  const Tensor rdi = compute_rdi(cube, cfg);
  EXPECT_EQ(rdi.shape(), (std::vector<std::size_t>{16, 32}));
  const std::size_t best = rdi.argmax();
  EXPECT_EQ(best % 32, 7u);   // range
  EXPECT_EQ(best / 32, 12u);  // doppler row
}

TEST(Rdi, StaticTargetCentersAtZeroDoppler) {
  RadarCube cube(16, 4, 64);
  inject_target(cube, 7.0, 0.0, 0.0);
  auto cfg = test_config();
  cfg.doppler_window = WindowKind::Rect;
  const Tensor rdi = compute_rdi(cube, cfg);
  EXPECT_EQ(rdi.argmax() / 32, 8u);  // center row after fftshift
}

TEST(RangeProfile, SumsAcrossChirpsAndAntennas) {
  RadarCube cube(4, 4, 64);
  inject_target(cube, 11.0, 0.0, 0.0);
  const Tensor profile = range_profile(cube, test_config());
  EXPECT_EQ(profile.size(), 32u);
  EXPECT_EQ(profile.argmax(), 11u);
}

TEST(DraiSequence, StacksFramesAndNormalizesGlobally) {
  std::vector<RadarCube> frames;
  for (int f = 0; f < 3; ++f) {
    RadarCube cube(4, 8, 64);
    inject_target(cube, 5.0 + f, 0.0, 0.0, 1.0F + f);
    frames.push_back(cube);
  }
  auto cfg = test_config();
  cfg.normalize = true;
  cfg.normalize_per_sequence = true;
  const Tensor seq = compute_drai_sequence(frames, cfg);
  EXPECT_EQ(seq.shape(), (std::vector<std::size_t>{3, 32, 32}));
  EXPECT_FLOAT_EQ(seq.max(), 1.0F);
  // With per-sequence normalization the brightest frame is the last one.
  float m0 = 0.0F;
  float m2 = 0.0F;
  for (std::size_t i = 0; i < 32 * 32; ++i) {
    m0 = std::max(m0, seq[i]);
    m2 = std::max(m2, seq[2 * 32 * 32 + i]);
  }
  EXPECT_GT(m2, m0);
}

// ---- Spectra-reuse path ----------------------------------------------------

std::vector<RadarCube> noisy_frames(std::size_t count, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<RadarCube> frames;
  for (std::size_t f = 0; f < count; ++f) {
    RadarCube cube(16, 16, 64);
    inject_target(cube, 8.0 + static_cast<double>(f), 0.2, 0.15);
    for (auto& v : cube.raw())
      v += cfloat(static_cast<float>(0.05 * rng.normal()),
                  static_cast<float>(0.05 * rng.normal()));
    frames.push_back(std::move(cube));
  }
  return frames;
}

void expect_identical(const Tensor& a, const Tensor& b, const char* what) {
  ASSERT_EQ(a.shape(), b.shape()) << what;
  for (std::size_t i = 0; i < a.size(); ++i)
    ASSERT_EQ(a[i], b[i]) << what << " diverges at flat index " << i;
}

TEST(SpectraReuse, AllViewsMatchTheCubeOverloads) {
  // One range_fft feeding RDI + DRAI + profile must reproduce the
  // cube-input overloads bit for bit.
  const auto frames = noisy_frames(1, 42);
  const RadarCube& cube = frames.front();
  auto cfg = test_config();
  cfg.remove_clutter = true;
  const RangeSpectra spectra = range_fft(cube, cfg);

  expect_identical(compute_rdi(spectra, cfg), compute_rdi(cube, cfg), "RDI");
  expect_identical(compute_drai(spectra, cfg), compute_drai(cube, cfg),
                   "DRAI");
  expect_identical(range_profile(spectra), range_profile(cube, cfg),
                   "range profile");
}

TEST(SpectraReuse, SequenceFromSpectraMatchesSequenceFromCubes) {
  const auto frames = noisy_frames(4, 43);
  auto cfg = test_config();
  cfg.remove_clutter = true;
  cfg.normalize = true;
  cfg.log_scale = true;
  const auto spectra = compute_range_spectra(frames, cfg);
  ASSERT_EQ(spectra.size(), frames.size());
  expect_identical(compute_drai_sequence(spectra, cfg),
                   compute_drai_sequence(frames, cfg), "DRAI sequence");
}

// ---- Bit-identity across thread counts -------------------------------------

struct PoolOverride {
  explicit PoolOverride(ThreadPool* p) { set_global_pool_for_testing(p); }
  ~PoolOverride() { set_global_pool_for_testing(nullptr); }
};

TEST(ThreadIdentity, HeatmapsBitIdenticalForAnyPoolSize) {
  const auto frames = noisy_frames(3, 44);
  auto cfg = test_config();
  cfg.remove_clutter = true;
  cfg.normalize = true;
  cfg.log_scale = true;

  // Reference under the default (MMHAR_THREADS-driven) pool.
  const Tensor seq_ref = compute_drai_sequence(frames, cfg);
  const Tensor rdi_ref = compute_rdi(frames.front(), cfg);
  const Tensor drai_ref = compute_drai(frames.front(), cfg);

  for (const std::size_t workers : {1u, 2u, 8u}) {
    ThreadPool pool(workers);
    PoolOverride guard(&pool);
    SCOPED_TRACE(testing::Message() << "pool size " << workers);
    expect_identical(compute_drai_sequence(frames, cfg), seq_ref,
                     "DRAI sequence");
    expect_identical(compute_rdi(frames.front(), cfg), rdi_ref, "RDI");
    expect_identical(compute_drai(frames.front(), cfg), drai_ref, "DRAI");
  }
}

TEST(Heatmap, ConfigValidation) {
  RadarCube cube(4, 8, 48);  // 48 not a power of two
  EXPECT_THROW(range_fft(cube, test_config()), InvalidArgument);
  RadarCube ok(4, 8, 64);
  auto cfg = test_config();
  cfg.angle_bins = 4;  // < antennas
  EXPECT_THROW(compute_drai(ok, cfg), InvalidArgument);
  cfg = test_config();
  cfg.range_bins = 100;  // > samples
  EXPECT_THROW(range_fft(ok, cfg), InvalidArgument);
}

}  // namespace
}  // namespace mmhar::dsp
