// End-to-end tests for tools/bench_gate: the real binary runs as a
// subprocess over fixture JSON pairs and the exit code + report lines are
// asserted. The binary path is injected via MMHAR_BENCH_GATE_BIN by
// tests/CMakeLists.txt.
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <array>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

namespace {

namespace fs = std::filesystem;

struct RunResult {
  int exit_code = -1;
  std::string output;  // stdout + stderr interleaved
};

RunResult run(const std::string& cmd) {
  RunResult r;
  const std::string full = cmd + " 2>&1";
  FILE* pipe = popen(full.c_str(), "r");
  if (pipe == nullptr) return r;
  std::array<char, 4096> buf{};
  std::size_t n = 0;
  while ((n = fread(buf.data(), 1, buf.size(), pipe)) > 0)
    r.output.append(buf.data(), n);
  const int status = pclose(pipe);
  if (status >= 0 && WIFEXITED(status)) r.exit_code = WEXITSTATUS(status);
  return r;
}

const std::string kGate = std::string("\"") + MMHAR_BENCH_GATE_BIN + "\"";

fs::path scratch_dir() {
  const fs::path d = fs::temp_directory_path() / "mmhar_bench_gate_test";
  fs::create_directories(d);
  return d;
}

fs::path write_json(const std::string& name, const std::string& text) {
  const fs::path p = scratch_dir() / name;
  std::ofstream out(p);
  out << text;
  return p;
}

std::string gate_cmd(const fs::path& base, const fs::path& cur,
                     const std::string& extra = "") {
  return kGate + " --baseline \"" + base.string() + "\" --current \"" +
         cur.string() + "\"" + (extra.empty() ? "" : " " + extra);
}

const char* const kBaseline = R"({
  "bench": "serving",
  "threads": 0,
  "BM_Gemm/256": {"seconds": 1.0e-3, "gflops": 30.0},
  "N64": {"classifications_per_sec": 800.0, "speedup": 5.0, "p99_ms": 100.0}
})";

TEST(BenchGate, PassesWhenWithinThreshold) {
  const fs::path base = write_json("base.json", kBaseline);
  const fs::path cur = write_json("cur_ok.json", R"({
    "bench": "serving",
    "threads": 0,
    "BM_Gemm/256": {"seconds": 1.1e-3, "gflops": 28.0},
    "N64": {"classifications_per_sec": 700.0, "speedup": 4.2, "p99_ms": 115.0}
  })");
  const RunResult r = run(gate_cmd(base, cur));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("metric(s) within"), std::string::npos) << r.output;
}

TEST(BenchGate, FailsOnSlowerSeconds) {
  const fs::path base = write_json("base.json", kBaseline);
  const fs::path cur = write_json("cur_slow.json", R"({
    "BM_Gemm/256": {"seconds": 1.3e-3, "gflops": 30.0},
    "N64": {"classifications_per_sec": 800.0, "speedup": 5.0, "p99_ms": 100.0}
  })");
  const RunResult r = run(gate_cmd(base, cur));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("FAIL  BM_Gemm/256.seconds"), std::string::npos)
      << r.output;
}

TEST(BenchGate, FailsOnLowerSpeedup) {
  const fs::path base = write_json("base.json", kBaseline);
  const fs::path cur = write_json("cur_slow_ratio.json", R"({
    "BM_Gemm/256": {"seconds": 1.0e-3, "gflops": 30.0},
    "N64": {"classifications_per_sec": 800.0, "speedup": 3.0, "p99_ms": 100.0}
  })");
  const RunResult r = run(gate_cmd(base, cur));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("FAIL  N64.speedup"), std::string::npos) << r.output;
}

TEST(BenchGate, RatiosOnlyIgnoresAbsoluteMetrics) {
  const fs::path base = write_json("base.json", kBaseline);
  // Everything absolute regressed badly, but the speedup ratio held: the
  // machine-portable mode must pass.
  const fs::path cur = write_json("cur_other_machine.json", R"({
    "BM_Gemm/256": {"seconds": 9.0e-3, "gflops": 3.0},
    "N64": {"classifications_per_sec": 80.0, "speedup": 4.8, "p99_ms": 900.0}
  })");
  EXPECT_EQ(run(gate_cmd(base, cur)).exit_code, 1);
  const RunResult r = run(gate_cmd(base, cur, "--ratios-only"));
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST(BenchGate, SpeedupSuffixMetricsAreGated) {
  // Ratio metrics are matched by the "speedup" basename *suffix*, so the
  // serving shard-scaling ratio (shard_speedup) gates exactly like the
  // plain speedup — in both directions and in --ratios-only mode.
  const fs::path base = write_json("base_suffix.json", R"({
    "N64_S2": {"shard_speedup": 2.0, "classifications_per_sec": 800.0}
  })");
  const fs::path held = write_json("cur_suffix_ok.json", R"({
    "N64_S2": {"shard_speedup": 1.9, "classifications_per_sec": 80.0}
  })");
  const RunResult ok = run(gate_cmd(base, held, "--ratios-only"));
  EXPECT_EQ(ok.exit_code, 0) << ok.output;
  EXPECT_NE(ok.output.find("N64_S2.shard_speedup"), std::string::npos)
      << ok.output;
  const fs::path lost = write_json("cur_suffix_bad.json", R"({
    "N64_S2": {"shard_speedup": 1.0, "classifications_per_sec": 800.0}
  })");
  const RunResult bad = run(gate_cmd(base, lost, "--ratios-only"));
  EXPECT_EQ(bad.exit_code, 1) << bad.output;
  EXPECT_NE(bad.output.find("FAIL  N64_S2.shard_speedup"), std::string::npos)
      << bad.output;
  // Full mode gates it too (higher-is-better direction).
  EXPECT_EQ(run(gate_cmd(base, lost)).exit_code, 1);
}

TEST(BenchGate, MissingBaselineKeyFailsFullModeOnly) {
  const fs::path base = write_json("base.json", kBaseline);
  const fs::path cur = write_json("cur_missing.json", R"({
    "BM_Gemm/256": {"seconds": 1.0e-3, "gflops": 30.0},
    "N64": {"classifications_per_sec": 800.0, "p99_ms": 100.0}
  })");
  const RunResult full = run(gate_cmd(base, cur));
  EXPECT_EQ(full.exit_code, 1) << full.output;
  EXPECT_NE(full.output.find("missing from current"), std::string::npos)
      << full.output;
  // In --ratios-only the missing speedup is reported but skipped; with no
  // other speedup key left, the gate refuses to pass vacuously.
  const RunResult ratios = run(gate_cmd(base, cur, "--ratios-only"));
  EXPECT_EQ(ratios.exit_code, 2) << ratios.output;
}

TEST(BenchGate, CustomThresholdAndNewKeys) {
  const fs::path base = write_json("base.json", kBaseline);
  const fs::path cur = write_json("cur_custom.json", R"({
    "BM_Gemm/256": {"seconds": 1.4e-3, "gflops": 30.0},
    "N64": {"classifications_per_sec": 800.0, "speedup": 5.0, "p99_ms": 100.0},
    "N128": {"speedup": 6.0}
  })");
  EXPECT_EQ(run(gate_cmd(base, cur)).exit_code, 1);  // 40% > 25%
  const RunResult loose = run(gate_cmd(base, cur, "--threshold 0.5"));
  EXPECT_EQ(loose.exit_code, 0) << loose.output;
  EXPECT_NE(loose.output.find("NEW   N128.speedup"), std::string::npos)
      << loose.output;
}

TEST(BenchGate, UsageAndParseErrors) {
  EXPECT_EQ(run(kGate).exit_code, 2);
  EXPECT_EQ(run(kGate + " --baseline missing.json --current missing.json")
                .exit_code,
            2);
  const fs::path base = write_json("base.json", kBaseline);
  const fs::path bad = write_json("bad.json", "{ not json ]");
  EXPECT_EQ(run(gate_cmd(base, bad)).exit_code, 2);
}

}  // namespace
