// Property-style physics tests over the full simulation pipeline: for a
// grid of subject positions (TEST_P), the energy in the DRAI heatmaps
// must concentrate where the radar equations predict, and basic physical
// monotonicities must hold end-to-end.
#include <gtest/gtest.h>

#include <cmath>

#include "har/generator.h"
#include "mesh/human.h"

namespace mmhar::har {
namespace {

GeneratorConfig fast_config() {
  GeneratorConfig gc;
  gc.num_frames = 6;
  gc.radar.num_chirps = 8;
  gc.radar.num_virtual_antennas = 16;
  gc.radar.noise_std = 0.005;
  gc.environment = radar::EnvironmentKind::None;
  return gc;
}

/// Center of energy of a [T, R, A] sequence along range and angle.
std::pair<double, double> energy_centroid(const Tensor& seq) {
  double w = 0.0;
  double r_moment = 0.0;
  double a_moment = 0.0;
  for (std::size_t f = 0; f < seq.dim(0); ++f)
    for (std::size_t r = 0; r < seq.dim(1); ++r)
      for (std::size_t a = 0; a < seq.dim(2); ++a) {
        const double v = seq.at(f, r, a);
        w += v;
        r_moment += v * static_cast<double>(r);
        a_moment += v * static_cast<double>(a);
      }
  return {r_moment / w, a_moment / w};
}

struct Position {
  double distance;
  double angle_deg;
};

class PositionGrid : public ::testing::TestWithParam<Position> {};

TEST_P(PositionGrid, EnergyCentroidTracksSubjectPosition) {
  const auto [distance, angle_deg] = GetParam();
  const auto gc = fast_config();
  const SampleGenerator gen(gc);
  SampleSpec spec;
  spec.activity = mesh::Activity::Clockwise;
  spec.distance_m = distance;
  spec.angle_deg = angle_deg;
  const Tensor seq = gen.generate(spec);

  const auto [r_c, a_c] = energy_centroid(seq);
  // Post-MTI energy comes from the moving arm/hand and swaying torso —
  // all within ~0.5 m of the subject's nominal range.
  const double expected_r = gc.radar.range_bin_of(distance);
  EXPECT_NEAR(r_c, expected_r, 0.55 / gc.radar.range_resolution_m())
      << "distance " << distance;
  // Angle centroid on the correct side and within half the array's
  // beamwidth of the subject azimuth.
  const double expected_a =
      gc.radar.angle_bin_of(mesh::deg2rad(angle_deg), 32);
  EXPECT_NEAR(a_c, expected_a, 5.0) << "angle " << angle_deg;
}

INSTANTIATE_TEST_SUITE_P(
    PaperGrid, PositionGrid,
    ::testing::Values(Position{0.8, 0.0}, Position{1.2, 0.0},
                      Position{1.6, 0.0}, Position{2.0, 0.0},
                      Position{1.6, -30.0}, Position{1.6, 30.0},
                      Position{1.2, -30.0}, Position{2.0, 30.0}));

class AnchorVisibility : public ::testing::TestWithParam<mesh::BodyAnchor> {
};

TEST_P(AnchorVisibility, TriggerAtAnyAnchorPerturbsHeatmaps) {
  const auto gc = fast_config();
  const SampleGenerator gen(gc);
  SampleSpec spec;
  spec.distance_m = 1.2;
  const mesh::HumanBody body(mesh::BodyParams::participant(0));
  TriggerPlacement tp;
  tp.local_position = body.anchor_position(GetParam());
  tp.local_normal = body.anchor_normal(GetParam());
  const Tensor clean = gen.generate(spec);
  const Tensor triggered = gen.generate(spec, &tp);
  EXPECT_GT(Tensor::l2_distance(clean, triggered), 0.2F)
      << mesh::anchor_name(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllAnchors, AnchorVisibility,
                         ::testing::ValuesIn(mesh::all_anchors()));

TEST(PhysicsProperties, RawEnergyDecreasesWithDistance) {
  auto gc = fast_config();
  gc.heatmap.normalize = false;  // raw magnitudes
  const SampleGenerator gen(gc);
  SampleSpec spec;
  double prev = 1e300;
  for (const double d : {0.8, 1.2, 1.6, 2.0}) {
    spec.distance_m = d;
    const double energy = gen.generate(spec).sum();
    EXPECT_LT(energy, prev) << "distance " << d;
    prev = energy;
  }
}

TEST(PhysicsProperties, BiggerTriggerPerturbsMore) {
  const auto gc = fast_config();
  const SampleGenerator gen(gc);
  SampleSpec spec;
  spec.distance_m = 1.2;
  const mesh::HumanBody body(mesh::BodyParams::participant(0));
  TriggerPlacement small;
  small.spec = mesh::TriggerSpec::aluminum_2x2();
  small.local_position = body.anchor_position(mesh::BodyAnchor::Chest);
  TriggerPlacement big = small;
  big.spec = mesh::TriggerSpec::aluminum_4x4();

  auto raw = gc;
  raw.heatmap.normalize = false;
  const SampleGenerator raw_gen(raw);
  const Tensor clean = raw_gen.generate(spec);
  const float dev_small =
      Tensor::l2_distance(clean, raw_gen.generate(spec, &small));
  const float dev_big =
      Tensor::l2_distance(clean, raw_gen.generate(spec, &big));
  EXPECT_GT(dev_big, dev_small);
}

TEST(PhysicsProperties, ParticipantsProduceDistinctSignatures) {
  const auto gc = fast_config();
  const SampleGenerator gen(gc);
  SampleSpec a;
  a.participant = 0;
  SampleSpec b = a;
  b.participant = 2;  // 20 cm shorter
  const Tensor ha = gen.generate(a);
  const Tensor hb = gen.generate(b);
  EXPECT_GT(Tensor::l2_distance(ha, hb), 1.0F);
}

TEST(PhysicsProperties, MirroredSwipesDifferInAngleProfile) {
  const auto gc = fast_config();
  const SampleGenerator gen(gc);
  SampleSpec left;
  left.activity = mesh::Activity::LeftSwipe;
  left.distance_m = 1.2;
  SampleSpec right = left;
  right.activity = mesh::Activity::RightSwipe;
  const Tensor hl = gen.generate(left);
  const Tensor hr = gen.generate(right);
  // Compare mid-gesture angle centroids: the swipes move to opposite
  // sides of the body.
  const auto centroid_a = [&](const Tensor& seq) {
    double w = 0.0;
    double m = 0.0;
    const std::size_t f = seq.dim(0) / 2;
    for (std::size_t r = 0; r < seq.dim(1); ++r)
      for (std::size_t a2 = 0; a2 < seq.dim(2); ++a2) {
        const double v = seq.at(f, r, a2);
        w += v;
        m += v * static_cast<double>(a2);
      }
    return m / w;
  };
  EXPECT_GT(std::abs(centroid_a(hl) - centroid_a(hr)), 0.35);
}

TEST(PhysicsProperties, EnvironmentIsSuppressedByMti) {
  auto with_env = fast_config();
  with_env.environment = radar::EnvironmentKind::Classroom;
  auto no_env = fast_config();
  const SampleGenerator gen_env(with_env);
  const SampleGenerator gen_free(no_env);
  SampleSpec spec;
  spec.distance_m = 1.2;
  const Tensor he = gen_env.generate(spec);
  const Tensor hf = gen_free.generate(spec);
  // After clutter removal the environment contributes almost nothing:
  // the normalized sequences correlate strongly.
  double dot = 0.0;
  double ne = 0.0;
  double nf = 0.0;
  for (std::size_t i = 0; i < he.size(); ++i) {
    dot += static_cast<double>(he[i]) * hf[i];
    ne += static_cast<double>(he[i]) * he[i];
    nf += static_cast<double>(hf[i]) * hf[i];
  }
  EXPECT_GT(dot / std::sqrt(ne * nf), 0.85);
}

}  // namespace
}  // namespace mmhar::har
