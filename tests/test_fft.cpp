// Unit and property tests for the FFT and window functions.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "common/check.h"
#include "common/rng.h"
#include "dsp/fft.h"
#include "dsp/window.h"

namespace mmhar::dsp {
namespace {

constexpr double kPi = 3.14159265358979323846;

std::vector<cfloat> random_signal(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<cfloat> v(n);
  for (auto& x : v)
    x = cfloat(static_cast<float>(rng.normal()),
               static_cast<float>(rng.normal()));
  return v;
}

TEST(Fft, PowerOfTwoDetection) {
  EXPECT_TRUE(is_power_of_two(1));
  EXPECT_TRUE(is_power_of_two(64));
  EXPECT_FALSE(is_power_of_two(0));
  EXPECT_FALSE(is_power_of_two(48));
}

TEST(Fft, RejectsNonPowerOfTwo) {
  std::vector<cfloat> v(12);
  EXPECT_THROW(fft_inplace(v), InvalidArgument);
}

class FftSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftSizes, MatchesNaiveDft) {
  const std::size_t n = GetParam();
  const auto x = random_signal(n, n);
  const auto fast = fft(x);
  const auto slow = dft_reference(x);
  ASSERT_EQ(fast.size(), slow.size());
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(fast[i].real(), slow[i].real(), 1e-2F) << "bin " << i;
    EXPECT_NEAR(fast[i].imag(), slow[i].imag(), 1e-2F) << "bin " << i;
  }
}

TEST_P(FftSizes, InverseRoundTrips) {
  const std::size_t n = GetParam();
  const auto x = random_signal(n, n + 1);
  const auto back = ifft(fft(x));
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(back[i].real(), x[i].real(), 1e-4F);
    EXPECT_NEAR(back[i].imag(), x[i].imag(), 1e-4F);
  }
}

TEST_P(FftSizes, ParsevalHolds) {
  const std::size_t n = GetParam();
  const auto x = random_signal(n, n + 2);
  const auto X = fft(x);
  double time_energy = 0.0;
  double freq_energy = 0.0;
  for (const auto& v : x) time_energy += std::norm(v);
  for (const auto& v : X) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy / static_cast<double>(n), time_energy,
              1e-3 * time_energy + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftSizes,
                         ::testing::Values(1, 2, 4, 8, 16, 32, 64, 128, 256));

TEST(Fft, PureToneLandsOnExpectedBin) {
  const std::size_t n = 64;
  const std::size_t bin = 5;
  std::vector<cfloat> x(n);
  for (std::size_t t = 0; t < n; ++t) {
    const double phase = 2.0 * kPi * bin * t / static_cast<double>(n);
    x[t] = cfloat(static_cast<float>(std::cos(phase)),
                  static_cast<float>(std::sin(phase)));
  }
  const auto X = fft(x);
  std::size_t peak = 0;
  for (std::size_t i = 1; i < n; ++i)
    if (std::abs(X[i]) > std::abs(X[peak])) peak = i;
  EXPECT_EQ(peak, bin);
  EXPECT_NEAR(std::abs(X[bin]), static_cast<float>(n), 1e-2F);
}

TEST(Fft, LinearityProperty) {
  const std::size_t n = 32;
  const auto a = random_signal(n, 1);
  const auto b = random_signal(n, 2);
  std::vector<cfloat> sum(n);
  for (std::size_t i = 0; i < n; ++i)
    sum[i] = cfloat(2.0F, 0.0F) * a[i] + cfloat(0.0F, 1.0F) * b[i];
  const auto fa = fft(a);
  const auto fb = fft(b);
  const auto fsum = fft(sum);
  for (std::size_t i = 0; i < n; ++i) {
    const cfloat expect =
        cfloat(2.0F, 0.0F) * fa[i] + cfloat(0.0F, 1.0F) * fb[i];
    EXPECT_NEAR(fsum[i].real(), expect.real(), 2e-3F);
    EXPECT_NEAR(fsum[i].imag(), expect.imag(), 2e-3F);
  }
}

TEST(Fft, FftShiftSwapsHalves) {
  std::vector<float> v{1, 2, 3, 4};
  fftshift_inplace(std::span<float>(v));
  EXPECT_EQ(v, (std::vector<float>{3, 4, 1, 2}));
  std::vector<float> odd{1, 2, 3};
  EXPECT_THROW(fftshift_inplace(std::span<float>(odd)), InvalidArgument);
}

// ---- Batched engine (fft_many) vs the naive DFT oracle ---------------------

// Every transform size the pipeline actually issues: doppler bins (16),
// angle bins (32), ADC samples (64), plus one larger size for coverage.
class FftManySizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftManySizes, ContiguousLanesMatchNaiveDft) {
  const std::size_t n = GetParam();
  const std::size_t lanes = 21;  // deliberately not a multiple of the SIMD width
  const auto data = random_signal(n * lanes, n);

  std::vector<cfloat> out(n * lanes);
  FftManyJob job;
  job.n = n;
  job.in = data.data();
  job.in_len = n;
  job.lanes = lanes;
  job.in_lane_stride = n;
  job.in_elem_stride = 1;
  fft_many(job, out.data(), n, 1);

  for (std::size_t l = 0; l < lanes; ++l) {
    const std::vector<cfloat> x(data.begin() + static_cast<std::ptrdiff_t>(l * n),
                                data.begin() + static_cast<std::ptrdiff_t>((l + 1) * n));
    const auto slow = dft_reference(x);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(out[l * n + i].real(), slow[i].real(), 1e-2F)
          << "lane " << l << " bin " << i;
      EXPECT_NEAR(out[l * n + i].imag(), slow[i].imag(), 1e-2F)
          << "lane " << l << " bin " << i;
    }
  }
}

TEST_P(FftManySizes, InterleavedSoALayoutMatchesContiguous) {
  // Same transforms, but laid out element-major (lane stride 1) the way
  // the doppler/angle stages read RangeSpectra; outputs must agree.
  const std::size_t n = GetParam();
  const std::size_t lanes = 7;
  const auto rows = random_signal(n * lanes, n + 3);

  std::vector<cfloat> soa(n * lanes);
  for (std::size_t l = 0; l < lanes; ++l)
    for (std::size_t j = 0; j < n; ++j) soa[j * lanes + l] = rows[l * n + j];

  std::vector<cfloat> out_rows(n * lanes);
  FftManyJob row_job;
  row_job.n = n;
  row_job.in = rows.data();
  row_job.in_len = n;
  row_job.lanes = lanes;
  row_job.in_lane_stride = n;
  row_job.in_elem_stride = 1;
  fft_many(row_job, out_rows.data(), n, 1);

  std::vector<cfloat> out_soa(n * lanes);
  FftManyJob soa_job = row_job;
  soa_job.in = soa.data();
  soa_job.in_lane_stride = 1;
  soa_job.in_elem_stride = lanes;
  fft_many(soa_job, out_soa.data(), 1, lanes);

  for (std::size_t l = 0; l < lanes; ++l)
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(out_soa[i * lanes + l].real(), out_rows[l * n + i].real());
      EXPECT_EQ(out_soa[i * lanes + l].imag(), out_rows[l * n + i].imag());
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftManySizes,
                         ::testing::Values(16, 32, 64, 128));

TEST(FftMany, WindowAndZeroPadFuseIntoTheLoad) {
  // 16 antennas zero-padded to a 32-bin angle FFT with a Hann taper: the
  // fused path must match windowing + padding done by hand.
  const std::size_t in_len = 16;
  const std::size_t n = 32;
  const std::size_t lanes = 5;
  const auto data = random_signal(in_len * lanes, 9);
  const auto w = make_window(WindowKind::Hann, in_len);

  std::vector<cfloat> out(n * lanes);
  FftManyJob job;
  job.n = n;
  job.in = data.data();
  job.in_len = in_len;
  job.window = w.data();
  job.lanes = lanes;
  job.in_lane_stride = in_len;
  job.in_elem_stride = 1;
  fft_many(job, out.data(), n, 1);

  for (std::size_t l = 0; l < lanes; ++l) {
    std::vector<cfloat> x(n, cfloat{0.0F, 0.0F});
    for (std::size_t j = 0; j < in_len; ++j)
      x[j] = data[l * in_len + j] * w[j];
    const auto slow = dft_reference(x);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(out[l * n + i].real(), slow[i].real(), 1e-2F);
      EXPECT_NEAR(out[l * n + i].imag(), slow[i].imag(), 1e-2F);
    }
  }
}

TEST(FftMany, CropKeepsTheLeadingBins) {
  const std::size_t n = 64;
  const std::size_t keep = 32;  // the pipeline's range_bins crop
  const std::size_t lanes = 3;
  const auto data = random_signal(n * lanes, 11);

  FftManyJob job;
  job.n = n;
  job.in = data.data();
  job.in_len = n;
  job.lanes = lanes;
  job.in_lane_stride = n;
  job.in_elem_stride = 1;

  std::vector<cfloat> full(n * lanes);
  fft_many(job, full.data(), n, 1);
  std::vector<cfloat> cropped(keep * lanes);
  fft_many_crop(job, keep, cropped.data(), keep, 1);

  for (std::size_t l = 0; l < lanes; ++l)
    for (std::size_t i = 0; i < keep; ++i) {
      EXPECT_EQ(cropped[l * keep + i].real(), full[l * n + i].real());
      EXPECT_EQ(cropped[l * keep + i].imag(), full[l * n + i].imag());
    }
}

TEST(FftMany, MagAccumMatchesShiftedMagnitudeSum) {
  // reps-fold accumulation with fftshift, exactly what the RDI/DRAI
  // builders issue: |FFT| summed over the fold axis, zero bin centered.
  const std::size_t n = 16;
  const std::size_t lanes = 6;
  const std::size_t reps = 4;
  const auto data = random_signal(n * lanes * reps, 13);
  const auto w = make_window(WindowKind::Hamming, n);

  FftManyJob job;
  job.n = n;
  job.in = data.data();
  job.in_len = n;
  job.window = w.data();
  job.lanes = lanes;
  job.in_lane_stride = n;
  job.in_elem_stride = 1;
  job.reps = reps;
  job.in_rep_stride = n * lanes;

  std::vector<float> out(n * lanes, -1.0F);  // must be overwritten, not added
  fft_many_mag_accum(job, /*shift=*/true, out.data(), n, 1);

  for (std::size_t l = 0; l < lanes; ++l) {
    std::vector<float> expect(n, 0.0F);
    for (std::size_t rep = 0; rep < reps; ++rep) {
      std::vector<cfloat> x(n);
      for (std::size_t j = 0; j < n; ++j)
        x[j] = data[rep * n * lanes + l * n + j] * w[j];
      const auto X = dft_reference(x);
      std::vector<float> mag(n);
      for (std::size_t i = 0; i < n; ++i) mag[i] = std::abs(X[i]);
      fftshift_inplace(std::span<float>(mag));
      for (std::size_t i = 0; i < n; ++i) expect[i] += mag[i];
    }
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_NEAR(out[l * n + i], expect[i], 5e-2F)
          << "lane " << l << " bin " << i;
  }
}

TEST(FftMany, RejectsInvalidJobs) {
  std::vector<cfloat> in(12);
  std::vector<cfloat> out(12);
  FftManyJob job;
  job.n = 12;  // not a power of two
  job.in = in.data();
  job.in_len = 12;
  job.lanes = 1;
  job.in_lane_stride = 12;
  EXPECT_THROW(fft_many(job, out.data(), 12, 1), InvalidArgument);
  job.n = 8;
  job.in_len = 12;  // longer than the transform
  EXPECT_THROW(fft_many(job, out.data(), 8, 1), InvalidArgument);
}

TEST(Window, CachedWindowMatchesMakeWindow) {
  const auto& cached = cached_window(WindowKind::Blackman, 48);
  const auto fresh = make_window(WindowKind::Blackman, 48);
  ASSERT_EQ(cached.size(), fresh.size());
  for (std::size_t i = 0; i < fresh.size(); ++i)
    EXPECT_EQ(cached[i], fresh[i]);
  // Same (kind, n) must come back as the same table (stable reference).
  EXPECT_EQ(&cached, &cached_window(WindowKind::Blackman, 48));
}

TEST(Window, RectIsAllOnes) {
  const auto w = make_window(WindowKind::Rect, 8);
  for (const float v : w) EXPECT_EQ(v, 1.0F);
}

class WindowKinds : public ::testing::TestWithParam<WindowKind> {};

TEST_P(WindowKinds, SymmetricBoundedAndPositiveGain) {
  const auto w = make_window(GetParam(), 33);
  for (std::size_t i = 0; i < w.size(); ++i) {
    EXPECT_GE(w[i], -1e-6F);
    EXPECT_LE(w[i], 1.0F + 1e-6F);
    EXPECT_NEAR(w[i], w[w.size() - 1 - i], 1e-6F) << "asymmetric at " << i;
  }
  EXPECT_GT(coherent_gain(w), 0.0F);
  EXPECT_LE(coherent_gain(w), 1.0F + 1e-6F);
}

INSTANTIATE_TEST_SUITE_P(Kinds, WindowKinds,
                         ::testing::Values(WindowKind::Rect, WindowKind::Hann,
                                           WindowKind::Hamming,
                                           WindowKind::Blackman));

TEST(Window, HannEndsAtZeroPeaksAtCenter) {
  const auto w = make_window(WindowKind::Hann, 65);
  EXPECT_NEAR(w.front(), 0.0F, 1e-6F);
  EXPECT_NEAR(w.back(), 0.0F, 1e-6F);
  EXPECT_NEAR(w[32], 1.0F, 1e-6F);
}

TEST(Window, ReducesLeakageForOffBinTone) {
  // A tone between bins leaks everywhere with a rect window; Hann must
  // concentrate more energy near the true frequency.
  const std::size_t n = 64;
  const double f = 10.37;  // cycles per window, off-bin
  std::vector<cfloat> rect(n);
  std::vector<cfloat> hann(n);
  const auto w = make_window(WindowKind::Hann, n);
  for (std::size_t t = 0; t < n; ++t) {
    const double phase = 2.0 * kPi * f * t / static_cast<double>(n);
    const cfloat v(static_cast<float>(std::cos(phase)),
                   static_cast<float>(std::sin(phase)));
    rect[t] = v;
    hann[t] = v * w[t];
  }
  const auto fr = fft(rect);
  const auto fh = fft(hann);
  // Far-side leakage (bins 30..40) should be much lower with Hann.
  double leak_rect = 0.0;
  double leak_hann = 0.0;
  for (std::size_t i = 30; i <= 40; ++i) {
    leak_rect += std::abs(fr[i]);
    leak_hann += std::abs(fh[i]);
  }
  EXPECT_LT(leak_hann, 0.1 * leak_rect);
}

}  // namespace
}  // namespace mmhar::dsp
