// Unit and property tests for the FFT and window functions.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "common/check.h"
#include "common/rng.h"
#include "dsp/fft.h"
#include "dsp/window.h"

namespace mmhar::dsp {
namespace {

constexpr double kPi = 3.14159265358979323846;

std::vector<cfloat> random_signal(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<cfloat> v(n);
  for (auto& x : v)
    x = cfloat(static_cast<float>(rng.normal()),
               static_cast<float>(rng.normal()));
  return v;
}

TEST(Fft, PowerOfTwoDetection) {
  EXPECT_TRUE(is_power_of_two(1));
  EXPECT_TRUE(is_power_of_two(64));
  EXPECT_FALSE(is_power_of_two(0));
  EXPECT_FALSE(is_power_of_two(48));
}

TEST(Fft, RejectsNonPowerOfTwo) {
  std::vector<cfloat> v(12);
  EXPECT_THROW(fft_inplace(v), InvalidArgument);
}

class FftSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftSizes, MatchesNaiveDft) {
  const std::size_t n = GetParam();
  const auto x = random_signal(n, n);
  const auto fast = fft(x);
  const auto slow = dft_reference(x);
  ASSERT_EQ(fast.size(), slow.size());
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(fast[i].real(), slow[i].real(), 1e-2F) << "bin " << i;
    EXPECT_NEAR(fast[i].imag(), slow[i].imag(), 1e-2F) << "bin " << i;
  }
}

TEST_P(FftSizes, InverseRoundTrips) {
  const std::size_t n = GetParam();
  const auto x = random_signal(n, n + 1);
  const auto back = ifft(fft(x));
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(back[i].real(), x[i].real(), 1e-4F);
    EXPECT_NEAR(back[i].imag(), x[i].imag(), 1e-4F);
  }
}

TEST_P(FftSizes, ParsevalHolds) {
  const std::size_t n = GetParam();
  const auto x = random_signal(n, n + 2);
  const auto X = fft(x);
  double time_energy = 0.0;
  double freq_energy = 0.0;
  for (const auto& v : x) time_energy += std::norm(v);
  for (const auto& v : X) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy / static_cast<double>(n), time_energy,
              1e-3 * time_energy + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftSizes,
                         ::testing::Values(1, 2, 4, 8, 16, 32, 64, 128, 256));

TEST(Fft, PureToneLandsOnExpectedBin) {
  const std::size_t n = 64;
  const std::size_t bin = 5;
  std::vector<cfloat> x(n);
  for (std::size_t t = 0; t < n; ++t) {
    const double phase = 2.0 * kPi * bin * t / static_cast<double>(n);
    x[t] = cfloat(static_cast<float>(std::cos(phase)),
                  static_cast<float>(std::sin(phase)));
  }
  const auto X = fft(x);
  std::size_t peak = 0;
  for (std::size_t i = 1; i < n; ++i)
    if (std::abs(X[i]) > std::abs(X[peak])) peak = i;
  EXPECT_EQ(peak, bin);
  EXPECT_NEAR(std::abs(X[bin]), static_cast<float>(n), 1e-2F);
}

TEST(Fft, LinearityProperty) {
  const std::size_t n = 32;
  const auto a = random_signal(n, 1);
  const auto b = random_signal(n, 2);
  std::vector<cfloat> sum(n);
  for (std::size_t i = 0; i < n; ++i)
    sum[i] = cfloat(2.0F, 0.0F) * a[i] + cfloat(0.0F, 1.0F) * b[i];
  const auto fa = fft(a);
  const auto fb = fft(b);
  const auto fsum = fft(sum);
  for (std::size_t i = 0; i < n; ++i) {
    const cfloat expect =
        cfloat(2.0F, 0.0F) * fa[i] + cfloat(0.0F, 1.0F) * fb[i];
    EXPECT_NEAR(fsum[i].real(), expect.real(), 2e-3F);
    EXPECT_NEAR(fsum[i].imag(), expect.imag(), 2e-3F);
  }
}

TEST(Fft, FftShiftSwapsHalves) {
  std::vector<float> v{1, 2, 3, 4};
  fftshift_inplace(std::span<float>(v));
  EXPECT_EQ(v, (std::vector<float>{3, 4, 1, 2}));
  std::vector<float> odd{1, 2, 3};
  EXPECT_THROW(fftshift_inplace(std::span<float>(odd)), InvalidArgument);
}

TEST(Window, RectIsAllOnes) {
  const auto w = make_window(WindowKind::Rect, 8);
  for (const float v : w) EXPECT_EQ(v, 1.0F);
}

class WindowKinds : public ::testing::TestWithParam<WindowKind> {};

TEST_P(WindowKinds, SymmetricBoundedAndPositiveGain) {
  const auto w = make_window(GetParam(), 33);
  for (std::size_t i = 0; i < w.size(); ++i) {
    EXPECT_GE(w[i], -1e-6F);
    EXPECT_LE(w[i], 1.0F + 1e-6F);
    EXPECT_NEAR(w[i], w[w.size() - 1 - i], 1e-6F) << "asymmetric at " << i;
  }
  EXPECT_GT(coherent_gain(w), 0.0F);
  EXPECT_LE(coherent_gain(w), 1.0F + 1e-6F);
}

INSTANTIATE_TEST_SUITE_P(Kinds, WindowKinds,
                         ::testing::Values(WindowKind::Rect, WindowKind::Hann,
                                           WindowKind::Hamming,
                                           WindowKind::Blackman));

TEST(Window, HannEndsAtZeroPeaksAtCenter) {
  const auto w = make_window(WindowKind::Hann, 65);
  EXPECT_NEAR(w.front(), 0.0F, 1e-6F);
  EXPECT_NEAR(w.back(), 0.0F, 1e-6F);
  EXPECT_NEAR(w[32], 1.0F, 1e-6F);
}

TEST(Window, ReducesLeakageForOffBinTone) {
  // A tone between bins leaks everywhere with a rect window; Hann must
  // concentrate more energy near the true frequency.
  const std::size_t n = 64;
  const double f = 10.37;  // cycles per window, off-bin
  std::vector<cfloat> rect(n);
  std::vector<cfloat> hann(n);
  const auto w = make_window(WindowKind::Hann, n);
  for (std::size_t t = 0; t < n; ++t) {
    const double phase = 2.0 * kPi * f * t / static_cast<double>(n);
    const cfloat v(static_cast<float>(std::cos(phase)),
                   static_cast<float>(std::sin(phase)));
    rect[t] = v;
    hann[t] = v * w[t];
  }
  const auto fr = fft(rect);
  const auto fh = fft(hann);
  // Far-side leakage (bins 30..40) should be much lower with Hann.
  double leak_rect = 0.0;
  double leak_hann = 0.0;
  for (std::size_t i = 30; i <= 40; ++i) {
    leak_rect += std::abs(fr[i]);
    leak_hann += std::abs(fh[i]);
  }
  EXPECT_LT(leak_hann, 0.1 * leak_rect);
}

}  // namespace
}  // namespace mmhar::dsp
