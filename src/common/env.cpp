#include "common/env.h"

#include <cstdlib>
#include <string>

#include "common/check.h"
#include "common/env_registry.h"

namespace mmhar {
namespace {

// Closed knob namespace: an MMHAR_* read that is not declared in
// common/env_registry.cpp throws, so a knob cannot exist without its
// registry row (and, via the env-knob-registry analyzer rule, its README
// row). MMHAR_TEST_* is reserved for unit tests.
const char* checked(const char* name) {
  if (!env_name_allowed(name)) {
    // mmhar-rtcheck: allow(throw, alloc) — fires only on an unregistered
    // knob name, a programmer error caught by the first read ever
    // executed; same failure class as an MMHAR_REQUIRE tripping.
    throw Error(std::string("env_*(\"") + name +
                "\"): MMHAR_ knob is not in the registry; add a row to "
                "src/common/env_registry.cpp and to README.md's env table "
                "(see README \"Static analysis\")");
  }
  return name;
}

}  // namespace

long env_int(const char* name, long fallback) {
  const char* v = std::getenv(checked(name));
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const long parsed = std::strtol(v, &end, 10);
  return (end != nullptr && *end == '\0') ? parsed : fallback;
}

double env_double(const char* name, double fallback) {
  const char* v = std::getenv(checked(name));
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  return (end != nullptr && *end == '\0') ? parsed : fallback;
}

std::string env_string(const char* name, const std::string& fallback) {
  const char* v = std::getenv(checked(name));
  return (v == nullptr || *v == '\0') ? fallback : std::string(v);
}

}  // namespace mmhar
