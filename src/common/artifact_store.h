// Crash-safe, checksummed on-disk artifacts (datasets, models,
// checkpoints).
//
// Every cache write in the repo goes through `save_artifact`:
//
//   payload -> [header | payload | checksum] -> <path>.tmp
//           -> flush + fsync -> atomic rename(<path>.tmp, <path>)
//
// so a reader never observes a half-written file at the final path — a
// killed writer leaves at worst a stale `.tmp` that the next successful
// save overwrites. The container format is
//
//   u32 store magic 'MART'    (0x5452414D)
//   u32 store format version  (kStoreFormatVersion)
//   u32 kind magic            (caller-chosen, e.g. 'HSDS' for datasets)
//   u32 kind version          (caller-chosen payload schema version)
//   u64 payload length        (bytes)
//   ..payload..
//   u64 FNV-1a checksum over the payload bytes
//
// `load_artifact` verifies all of the above before the payload callback
// runs, and classifies failures instead of crashing:
//
//   Missing          no file at `path` (nothing is touched)
//   VersionMismatch  intact container, wrong store/kind version — the
//                    file is left in place for a newer/older binary
//   Corrupt          anything else (bad magic, bad length, checksum
//                    mismatch, payload deserialization failure) — the
//                    file is quarantined as `<path>.corrupt` so the next
//                    write can regenerate cleanly and a human can autopsy
//
// Deterministic durability faults (truncation, bit-flip, short write,
// failed rename) can be injected at named sites via
// common/fault_injection.h; see that header for the site list.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "common/serialize.h"

namespace mmhar {

inline constexpr std::uint32_t kStoreMagic = 0x5452414D;  // "MART"
inline constexpr std::uint32_t kStoreFormatVersion = 1;

enum class LoadStatus {
  Ok,
  Missing,
  VersionMismatch,
  Corrupt,
};

const char* load_status_name(LoadStatus s);

/// Structured outcome of `load_artifact`.
struct LoadResult {
  LoadStatus status = LoadStatus::Missing;
  std::string detail;          ///< human-readable failure reason
  std::string quarantined_to;  ///< non-empty when the file was moved aside

  bool ok() const { return status == LoadStatus::Ok; }
};

/// Serialize `write_payload`'s output into `path` atomically (temp file +
/// flush + fsync + rename). Throws IoError when the write itself fails;
/// the final path then still holds its previous content (or nothing).
void save_artifact(const std::string& path, std::uint32_t kind_magic,
                   std::uint32_t kind_version,
                   const std::function<void(BinaryWriter&)>& write_payload);

/// Verify and deserialize `path`. `read_payload` runs only after the
/// container checks pass; an IoError / Error it throws is reported as
/// Corrupt (with quarantine), never propagated.
LoadResult load_artifact(const std::string& path, std::uint32_t kind_magic,
                         std::uint32_t kind_version,
                         const std::function<void(BinaryReader&)>& read_payload);

/// Move a damaged file aside as `<path>.corrupt` (best effort; falls back
/// to removal). Returns the quarantine path, or "" when nothing happened.
std::string quarantine_file(const std::string& path);

}  // namespace mmhar
