// Leveled stderr logging with a global threshold (MMHAR_LOG_LEVEL).
//
// Levels: 0=debug, 1=info (default), 2=warn, 3=error, 4=silent.
// Usage: MMHAR_LOG(Info) << "trained " << n << " epochs";
#pragma once

#include <sstream>
#include <string>

namespace mmhar {

enum class LogLevel : int { Debug = 0, Info = 1, Warn = 2, Error = 3 };

/// Current threshold; messages below it are discarded.
LogLevel log_threshold();

/// Override the threshold at runtime (tests use this to silence output).
void set_log_threshold(LogLevel level);

namespace detail {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) os_ << v;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream os_;
};

}  // namespace detail
}  // namespace mmhar

#define MMHAR_LOG(severity)                                           \
  ::mmhar::detail::LogMessage(::mmhar::LogLevel::severity, __FILE__,  \
                              __LINE__)
