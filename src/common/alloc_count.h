// Allocation-counting hook for zero-alloc assertions in tests.
//
// Linking the `mmhar_alloc_count` OBJECT library replaces the global
// operator new family with forwarding versions that bump a process-wide
// counter. Tests snapshot alloc_count() around a steady-state code path
// and assert the delta is zero — the enforcement teeth behind the
// serving layer's "zero heap allocations per frame" contract.
//
// It is an OBJECT library on purpose: inside a static archive the
// replacement operators would only be linked in when some other symbol
// from the same TU is referenced, which silently disables the hook.
// Linking the object file directly makes the replacement unconditional
// for that binary. Only test binaries link it; the production libraries
// never pay for the counter.
#pragma once

#include <cstdint>

namespace mmhar {

/// Number of global operator new invocations (all forms) so far in this
/// process. Monotonic; only meaningful as a delta across a code region on
/// one thread of interest (other live threads also count).
std::uint64_t alloc_count();

}  // namespace mmhar
