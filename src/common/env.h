// Environment-variable knobs for experiment scaling.
//
// Experiments default to laptop-scale parameters; larger, closer-to-paper
// runs are enabled by exporting e.g. MMHAR_REPS_TRAIN / MMHAR_EPOCHS /
// MMHAR_REPEATS before running the bench binaries.
//
// Every MMHAR_* name read through these helpers must be declared in
// common/env_registry.h — unregistered names throw at the read site, and
// tools/mmhar_analyze cross-checks all call sites against the registry
// and README.md's env table at lint time.
#pragma once

#include <string>

namespace mmhar {

/// Integer env var with fallback (also used for MMHAR_THREADS=0 -> auto).
long env_int(const char* name, long fallback);

/// Floating env var with fallback.
double env_double(const char* name, double fallback);

/// String env var with fallback.
std::string env_string(const char* name, const std::string& fallback);

}  // namespace mmhar
