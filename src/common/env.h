// Environment-variable knobs for experiment scaling.
//
// Experiments default to laptop-scale parameters; larger, closer-to-paper
// runs are enabled by exporting e.g. MMHAR_SAMPLES_PER_CLASS / MMHAR_EPOCHS /
// MMHAR_REPEATS before running the bench binaries.
#pragma once

#include <string>

namespace mmhar {

/// Integer env var with fallback (also used for MMHAR_THREADS=0 -> auto).
long env_int(const char* name, long fallback);

/// Floating env var with fallback.
double env_double(const char* name, double fallback);

/// String env var with fallback.
std::string env_string(const char* name, const std::string& fallback);

}  // namespace mmhar
