// Deterministic fault injection for durability testing.
//
// The artifact store (common/artifact_store.h) and the experiment runtime
// ask this injector, at named sites, whether a fault should fire *now*:
// a truncated file, a flipped bit, a short write, a failed rename, a
// repeat that dies mid-training. The answer is a pure function of the
// configured spec, the seed, and the per-site call count, so every
// recovery path in the test suite replays identically — including under
// the ASan/UBSan/TSan CI legs.
//
// Configuration (environment, read once on first use):
//   MMHAR_FAULT_SPEC   comma-separated site rules (below); empty = off
//   MMHAR_FAULT_SEED   seed for probabilistic rules (default 1)
//
// Spec grammar, one entry per site:
//   site          fire on every call
//   site@N        fire on exactly the Nth call of that site (1-based)
//   site=P        fire with probability P per call (deterministic stream)
//
// Example: MMHAR_FAULT_SPEC="artifact.truncate@2,artifact.rename_fail=0.5"
//
// Sites currently wired:
//   artifact.truncate      final file loses its tail bytes after commit
//   artifact.bitflip       one payload bit flips after commit
//   artifact.short_write   temp-file write stops partway and throws IoError
//   artifact.rename_fail   temp->final rename throws IoError (temp removed)
//   experiment.repeat_fail one sweep repeat throws before training
//   serving.frame_poison   a claimed frame gains a NaN sample before the
//                          quarantine scan (one call per claimed frame)
//   serving.infer_fail     one micro-batch inference row fails and is
//                          contained per-row (one call per job row)
//   serving.shard_stall    a shard worker wedges on its condvar until the
//                          watchdog restarts it (one call per wake-up)
//   serving.shard_crash    a shard worker dies on an escaped-exception
//                          path, claim-free (one call per wake-up)
//
// Tests normally bypass the env and call
// `FaultInjector::instance().configure(spec, seed)` directly, then
// `clear()` in teardown. All entry points are thread-safe; the unarmed
// fast path is a single relaxed atomic load.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "common/mutex.h"
#include "common/rng.h"
#include "common/thread_annotations.h"

namespace mmhar {

class FaultInjector {
 public:
  /// Process-wide injector; first call loads MMHAR_FAULT_SPEC/SEED.
  static FaultInjector& instance();

  /// Replace the active spec (tests). Throws InvalidArgument on a
  /// malformed spec. An empty spec disarms the injector.
  void configure(const std::string& spec, std::uint64_t seed);

  /// Disarm and forget all rules and counters.
  void clear();

  /// True when any rule is loaded.
  bool armed() const;

  /// Should the named site fault on this call? Increments the site's
  /// call counter whether or not it fires.
  bool should_fire(const char* site);

  /// Deterministic parameter draw in [0, n) for a firing site (e.g. which
  /// byte to flip). Requires n > 0.
  std::uint64_t draw(std::uint64_t n);

  /// Diagnostics for tests.
  std::size_t call_count(const std::string& site) const;
  std::size_t fire_count(const std::string& site) const;

 private:
  FaultInjector();

  struct Rule {
    double probability = 1.0;  ///< used when nth == 0
    std::uint64_t nth = 0;     ///< fire on exactly this call when > 0
  };

  mutable Mutex mutex_;
  std::map<std::string, Rule> rules_ MMHAR_GUARDED_BY(mutex_);
  std::map<std::string, std::size_t> calls_ MMHAR_GUARDED_BY(mutex_);
  std::map<std::string, std::size_t> fires_ MMHAR_GUARDED_BY(mutex_);
  Rng rng_ MMHAR_GUARDED_BY(mutex_) = Rng(1);
};

/// Fast-path helpers: no-ops (false / 0) when the injector is unarmed.
bool fault_should_fire(const char* site);
std::uint64_t fault_draw(std::uint64_t n);

/// Unarmed fast path for real-time callers: one relaxed atomic load (plus
/// a one-time instance init so an exported MMHAR_FAULT_SPEC arms the
/// first call). Guard every hot-path fault_should_fire/fault_draw behind
/// this — those take the injector mutex and may allocate bookkeeping, so
/// the zero-steady-state-allocation contract only holds when they are
/// unreachable while disarmed.
bool fault_injection_armed();

}  // namespace mmhar
