// Error-handling primitives for the mmhar library.
//
// Invariant violations and precondition failures throw `mmhar::Error`
// (derived from std::runtime_error) so that callers can recover with RAII
// intact. The macros capture file/line context automatically.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace mmhar {

/// Base exception type for all library errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a function argument violates a documented precondition.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Thrown on I/O or (de)serialization failure.
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error(what) {}
};

namespace detail {

[[noreturn]] inline void check_failed(const char* kind, const char* expr,
                                      const char* file, int line,
                                      const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

}  // namespace detail
}  // namespace mmhar

/// Check an invariant; throws mmhar::Error with context when violated.
#define MMHAR_CHECK(expr)                                                 \
  do {                                                                    \
    if (!(expr))                                                          \
      ::mmhar::detail::check_failed("MMHAR_CHECK", #expr, __FILE__,       \
                                    __LINE__, "");                        \
  } while (0)

/// Check an invariant with an extra streamed message.
#define MMHAR_CHECK_MSG(expr, msg)                                        \
  do {                                                                    \
    if (!(expr)) {                                                        \
      std::ostringstream mmhar_os_;                                       \
      mmhar_os_ << msg;                                                   \
      ::mmhar::detail::check_failed("MMHAR_CHECK", #expr, __FILE__,       \
                                    __LINE__, mmhar_os_.str());           \
    }                                                                     \
  } while (0)

/// Check a documented precondition on an argument.
#define MMHAR_REQUIRE(expr, msg)                                          \
  do {                                                                    \
    if (!(expr)) {                                                        \
      std::ostringstream mmhar_os_;                                       \
      mmhar_os_ << "precondition (" << #expr << ") violated at "          \
                << __FILE__ << ":" << __LINE__ << " — " << msg;           \
      throw ::mmhar::InvalidArgument(mmhar_os_.str());                    \
    }                                                                     \
  } while (0)
