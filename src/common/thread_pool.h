// A small fixed-size thread pool with a blocking parallel_for.
//
// Used by the radar simulator (per-frame synthesis), the GEMM kernel, and
// the experiment harnesses. The pool is created once (see `global_pool()`)
// and reused; parallel_for partitions [begin, end) into contiguous chunks
// and blocks until all chunks complete, rethrowing the first worker
// exception on the caller thread.
//
// Thread-safety contract (verified under -fsanitize=thread, see the CI
// matrix): task hand-off is ordered by the queue mutex; chunk completion is
// ordered by a release fetch_sub / acquire load pair on the join counter,
// so every side effect of a chunk happens-before parallel_for returns.
// There are no suppressed ("benign") races.
//
// The same discipline is *statically proved* by clang Thread Safety
// Analysis: the queue and the stop flag are MMHAR_GUARDED_BY the queue
// mutex, and the CI thread-safety leg builds with -Wthread-safety
// -Werror. This file and thread_pool.cpp carry zero
// MMHAR_NO_THREAD_SAFETY_ANALYSIS suppressions.
#pragma once

#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace mmhar {

class ThreadPool {
 public:
  /// Create a pool with `num_threads` workers (0 -> hardware_concurrency).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return num_threads_; }

  /// True when called from inside a pool worker thread (any pool).
  /// parallel_for issued from a worker runs inline on that worker: the
  /// fixed-size pool has no free thread to take nested chunks, so
  /// enqueue-and-block from a worker can deadlock (every worker waiting
  /// on tasks only another worker could run).
  static bool in_worker();

  /// Run fn(i) for every i in [begin, end), partitioned into contiguous
  /// chunks across the pool plus the calling thread. Blocks until done.
  /// The first exception thrown by any invocation is rethrown here.
  /// Re-entrant: nested calls from worker threads execute inline.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn);

  /// As parallel_for, but hands each worker a whole [chunk_begin, chunk_end)
  /// range; useful when per-index dispatch overhead matters.
  void parallel_for_chunked(
      std::size_t begin, std::size_t end,
      const std::function<void(std::size_t, std::size_t)>& fn);

 private:
  void worker_loop() MMHAR_EXCLUDES(mu_);
  void enqueue(std::function<void()> task) MMHAR_EXCLUDES(mu_);

  /// 0 -> hardware_concurrency (itself 0 -> 2).
  static std::size_t resolve_num_threads(std::size_t requested);

  const std::size_t num_threads_;
  // Written only in the constructor and joined in the destructor, both of
  // which the analysis (correctly) treats as single-threaded.
  std::vector<std::thread> workers_ MMHAR_GUARDED_BY(mu_);
  std::deque<std::function<void()>> tasks_ MMHAR_GUARDED_BY(mu_);
  Mutex mu_;
  CondVar cv_;
  bool stop_ MMHAR_GUARDED_BY(mu_) = false;
};

/// Process-wide shared pool (lazily constructed, respects MMHAR_THREADS).
ThreadPool& global_pool();

/// Testing hook: route global_pool() to `pool` (nullptr restores the real
/// one). Lets tests exercise kernels under several pool sizes in one
/// process; not thread-safe against concurrent parallel_for callers.
void set_global_pool_for_testing(ThreadPool* pool);

/// Convenience wrapper over global_pool().parallel_for.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn);

}  // namespace mmhar
