// Central registry of every MMHAR_* environment knob.
//
// A sweep whose numbers depend on an undocumented env var is not
// reproducible, so the knob namespace is closed: every `MMHAR_*` name read
// anywhere in src/ or bench/ must have a row here (name, type, default,
// one-line doc), and every row must appear in README.md's env table. Both
// directions are enforced twice:
//
//   compile time  tools/mmhar_analyze's `env-knob-registry` rule
//                 cross-references all env_int/env_double/env_string call
//                 sites against this registry and the README table (runs
//                 as a ctest and in CI);
//   run time      common/env.cpp refuses to read an unregistered MMHAR_*
//                 name (throws mmhar::Error), so a knob cannot even be
//                 prototyped without being declared.
//
// `MMHAR_TEST_*` is reserved for unit tests and exempt from both checks.
// To add a knob: add the row here, add the README table row, then read it
// via env_int/env_double/env_string — see README "Static analysis".
#pragma once

#include <cstddef>

namespace mmhar {

/// One registered environment knob.
struct EnvKnob {
  const char* name;           ///< full variable name ("MMHAR_THREADS")
  const char* type;           ///< "int" | "double" | "string" | "flag" | "list"
  const char* default_value;  ///< human-readable default
  const char* doc;            ///< one-line description
};

/// All registered knobs (rows live in env_registry.cpp).
const EnvKnob* env_registry(std::size_t* count);

/// Row for `name`, or nullptr when unregistered.
const EnvKnob* find_env_knob(const char* name);

/// True when `name` either is registered or does not need to be (not
/// MMHAR_-prefixed, or the reserved MMHAR_TEST_* space).
bool env_name_allowed(const char* name);

}  // namespace mmhar
