#include "common/fault_injection.h"

#include <atomic>
#include <cstdlib>

#include "common/check.h"
#include "common/env.h"
#include "common/logging.h"

namespace mmhar {
namespace {

// Unarmed fast path: one relaxed load instead of a mutex. Written only
// under FaultInjector's mutex.
std::atomic<bool> g_armed{false};

}  // namespace

FaultInjector& FaultInjector::instance() {
  static FaultInjector injector;
  return injector;
}

FaultInjector::FaultInjector() {
  const std::string spec = env_string("MMHAR_FAULT_SPEC", "");
  if (!spec.empty()) {
    configure(spec, static_cast<std::uint64_t>(env_int("MMHAR_FAULT_SEED", 1)));
    MMHAR_LOG(Warn) << "fault injection armed from MMHAR_FAULT_SPEC: " << spec;
  }
}

void FaultInjector::configure(const std::string& spec, std::uint64_t seed) {
  std::map<std::string, Rule> rules;
  std::size_t start = 0;
  std::string entry;
  std::string site;
  while (start <= spec.size()) {
    std::size_t end = spec.find(',', start);
    if (end == std::string::npos) end = spec.size();
    entry = spec.substr(start, end - start);
    start = end + 1;
    if (entry.empty()) continue;

    Rule rule;
    site = entry;
    if (const auto at = entry.find('@'); at != std::string::npos) {
      site = entry.substr(0, at);
      char* tail = nullptr;
      rule.nth = std::strtoull(entry.c_str() + at + 1, &tail, 10);
      MMHAR_REQUIRE(tail && *tail == '\0' && rule.nth > 0,
                    "fault spec entry '" << entry << "': @N needs N >= 1");
    } else if (const auto eq = entry.find('='); eq != std::string::npos) {
      site = entry.substr(0, eq);
      char* tail = nullptr;
      rule.probability = std::strtod(entry.c_str() + eq + 1, &tail);
      MMHAR_REQUIRE(tail && *tail == '\0' && rule.probability >= 0.0 &&
                        rule.probability <= 1.0,
                    "fault spec entry '" << entry
                                         << "': =P needs P in [0, 1]");
    }
    MMHAR_REQUIRE(!site.empty(), "fault spec entry '" << entry
                                                      << "': empty site name");
    rules[site] = rule;
  }

  MutexLock lock(mutex_);
  rules_ = std::move(rules);
  calls_.clear();
  fires_.clear();
  rng_ = Rng(seed);
  g_armed.store(!rules_.empty(), std::memory_order_relaxed);
}

void FaultInjector::clear() {
  MutexLock lock(mutex_);
  rules_.clear();
  calls_.clear();
  fires_.clear();
  g_armed.store(false, std::memory_order_relaxed);
}

bool FaultInjector::armed() const {
  return g_armed.load(std::memory_order_relaxed);
}

bool FaultInjector::should_fire(const char* site) {
  MutexLock lock(mutex_);
  const auto it = rules_.find(site);
  if (it == rules_.end()) return false;
  const std::size_t call = ++calls_[site];
  const Rule& rule = it->second;
  bool fire;
  if (rule.nth > 0) {
    fire = call == rule.nth;
  } else if (rule.probability >= 1.0) {
    fire = true;
  } else {
    fire = rng_.bernoulli(rule.probability);
  }
  if (fire) {
    ++fires_[site];
    MMHAR_LOG(Warn) << "fault injection: firing '" << site << "' (call "
                    << call << ")";
  }
  return fire;
}

std::uint64_t FaultInjector::draw(std::uint64_t n) {
  MMHAR_REQUIRE(n > 0, "fault draw needs n > 0");
  MutexLock lock(mutex_);
  return rng_.next_u64() % n;
}

std::size_t FaultInjector::call_count(const std::string& site) const {
  MutexLock lock(mutex_);
  const auto it = calls_.find(site);
  return it == calls_.end() ? 0 : it->second;
}

std::size_t FaultInjector::fire_count(const std::string& site) const {
  MutexLock lock(mutex_);
  const auto it = fires_.find(site);
  return it == fires_.end() ? 0 : it->second;
}

bool fault_should_fire(const char* site) {
  if (!fault_injection_armed()) return false;
  return FaultInjector::instance().should_fire(site);
}

bool fault_injection_armed() {
  if (g_armed.load(std::memory_order_relaxed)) return true;
  // Force the instance (and its env read) to exist so an exported
  // MMHAR_FAULT_SPEC arms the first call instead of never.
  static const bool init = (FaultInjector::instance(), true);
  (void)init;
  return g_armed.load(std::memory_order_relaxed);
}

std::uint64_t fault_draw(std::uint64_t n) {
  return FaultInjector::instance().draw(n);
}

}  // namespace mmhar
