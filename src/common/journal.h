// Append-only, torn-tail-tolerant record journal.
//
// The sweep runtime appends one record per completed unit of work (point,
// repeat); a killed process leaves at worst a torn final record. `load`
// walks the file record by record, returns every intact payload, and
// truncates a torn tail on disk so subsequent appends extend a valid
// prefix instead of burying new records behind garbage.
//
// Record framing (little-endian):
//   u32 record magic 'JREC'
//   u64 payload length
//   ..payload..
//   u64 FNV-1a checksum over the payload bytes
//
// Appends are a single buffered write + flush + fsync, so a record is
// either fully present or detectably torn — never silently wrong.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mmhar {

class AppendJournal {
 public:
  explicit AppendJournal(std::string path);

  const std::string& path() const { return path_; }

  /// All intact record payloads, in append order. A torn/corrupt tail is
  /// logged and truncated away on disk (best effort); a missing file is
  /// simply an empty journal.
  std::vector<std::string> load();

  /// Append one record durably. Throws IoError when the write fails.
  void append(const std::string& payload);

 private:
  std::string path_;
};

}  // namespace mmhar
