// Minimal binary (de)serialization for dataset caching and model save/load.
//
// The format is a flat little-endian stream with explicit length prefixes.
// Writers/readers are symmetric: every `write_x` has a matching `read_x`,
// and `Reader` throws IoError on truncation or magic mismatch rather than
// returning partial data.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "common/check.h"

namespace mmhar {

/// Streaming binary writer over an ostream (typically a file).
class BinaryWriter {
 public:
  explicit BinaryWriter(std::ostream& os) : os_(os) {}

  void write_u32(std::uint32_t v) { write_raw(&v, sizeof v); }
  void write_u64(std::uint64_t v) { write_raw(&v, sizeof v); }
  void write_i64(std::int64_t v) { write_raw(&v, sizeof v); }
  void write_f32(float v) { write_raw(&v, sizeof v); }
  void write_f64(double v) { write_raw(&v, sizeof v); }

  void write_string(const std::string& s) {
    write_u64(s.size());
    write_raw(s.data(), s.size());
  }

  void write_f32_vec(const std::vector<float>& v) {
    write_u64(v.size());
    write_raw(v.data(), v.size() * sizeof(float));
  }

  void write_u64_vec(const std::vector<std::uint64_t>& v) {
    write_u64(v.size());
    write_raw(v.data(), v.size() * sizeof(std::uint64_t));
  }

 private:
  void write_raw(const void* data, std::size_t n) {
    os_.write(static_cast<const char*>(data),
              static_cast<std::streamsize>(n));
    if (!os_) throw IoError("BinaryWriter: stream write failed");
  }

  std::ostream& os_;
};

/// Streaming binary reader; throws IoError on truncated input.
///
/// Length-prefixed reads (`read_string`, `read_*_vec`) validate the
/// untrusted prefix against the bytes actually remaining in the stream
/// *before* allocating, so a corrupt multi-gigabyte length throws IoError
/// instead of attempting the allocation. The remaining-byte budget is
/// discovered by seeking (files, stringstreams); pass `limit` explicitly
/// for non-seekable streams, or accept the unlimited fallback.
class BinaryReader {
 public:
  explicit BinaryReader(std::istream& is)
      : is_(is), remaining_(seekable_remaining(is)) {}
  BinaryReader(std::istream& is, std::uint64_t limit)
      : is_(is), remaining_(limit) {}

  /// Bytes still readable (UINT64_MAX when unknown).
  std::uint64_t remaining() const { return remaining_; }

  std::uint32_t read_u32() { return read_pod<std::uint32_t>(); }
  std::uint64_t read_u64() { return read_pod<std::uint64_t>(); }
  std::int64_t read_i64() { return read_pod<std::int64_t>(); }
  float read_f32() { return read_pod<float>(); }
  double read_f64() { return read_pod<double>(); }

  std::string read_string() {
    const auto n = checked_count(read_u64(), 1, "string");
    std::string s(n, '\0');
    read_raw(s.data(), n);
    return s;
  }

  std::vector<float> read_f32_vec() {
    const auto n = checked_count(read_u64(), sizeof(float), "f32 vector");
    std::vector<float> v(n);
    read_raw(v.data(), n * sizeof(float));
    return v;
  }

  std::vector<std::uint64_t> read_u64_vec() {
    const auto n =
        checked_count(read_u64(), sizeof(std::uint64_t), "u64 vector");
    std::vector<std::uint64_t> v(n);
    read_raw(v.data(), n * sizeof(std::uint64_t));
    return v;
  }

 private:
  static std::uint64_t seekable_remaining(std::istream& is) {
    const auto here = is.tellg();
    if (here == std::istream::pos_type(-1)) return UINT64_MAX;
    is.seekg(0, std::ios::end);
    const auto end = is.tellg();
    is.seekg(here);
    if (end == std::istream::pos_type(-1) || !is) {
      is.clear();
      is.seekg(here);
      return UINT64_MAX;
    }
    return static_cast<std::uint64_t>(end - here);
  }

  /// Validate an untrusted element count against the remaining bytes.
  std::size_t checked_count(std::uint64_t n, std::uint64_t elem_size,
                            const char* what) {
    if (n > remaining_ / elem_size)
      throw IoError(std::string("BinaryReader: ") + what +
                    " length prefix exceeds remaining stream bytes");
    return static_cast<std::size_t>(n);
  }

  template <typename T>
  T read_pod() {
    T v{};
    read_raw(&v, sizeof v);
    return v;
  }

  void read_raw(void* data, std::size_t n) {
    if (n > remaining_) throw IoError("BinaryReader: truncated stream");
    is_.read(static_cast<char*>(data), static_cast<std::streamsize>(n));
    if (static_cast<std::size_t>(is_.gcount()) != n)
      throw IoError("BinaryReader: truncated stream");
    if (remaining_ != UINT64_MAX) remaining_ -= n;
  }

  std::istream& is_;
  std::uint64_t remaining_;
};

/// Open `path` for binary writing; throws IoError on failure.
std::ofstream open_for_write(const std::string& path);

/// Open `path` for binary reading; throws IoError on failure.
std::ifstream open_for_read(const std::string& path);

/// True if a regular file exists at `path`.
bool file_exists(const std::string& path);

/// Create directory (and parents) if missing; throws IoError on failure.
void ensure_directory(const std::string& path);

}  // namespace mmhar
