// Capability-annotated lock types for clang Thread Safety Analysis.
//
// libstdc++'s std::mutex / std::shared_mutex carry no capability
// attributes, so they cannot appear in MMHAR_GUARDED_BY / MMHAR_REQUIRES
// expressions — the analysis would reject the attribute itself. These
// zero-overhead wrappers (every method is a single inlined forward) give
// the repo lockable types the analysis understands:
//
//   Mutex + MutexLock            exclusive critical sections
//   SharedMutex + ReaderLock /   read-mostly caches (FFT plans, window
//     WriterLock                 tables): shared hold for lookups,
//                                exclusive hold for inserts
//   CondVar                      condition waits; wait() REQUIRES the
//                                mutex so the analysis checks the caller
//                                holds it across the wait loop
//
// Waiting is expressed as an explicit predicate loop
// (`while (!ready) cv.wait(mu);`) rather than the std::condition_variable
// predicate-lambda overload: the lambda body would read guarded state
// from a context the analysis cannot see holds the lock.
//
// On GCC the attributes vanish (see common/thread_annotations.h) and the
// wrappers compile to exactly the std:: types they hold.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "common/thread_annotations.h"

namespace mmhar {

class CondVar;

/// std::mutex with the `capability` attribute the analysis requires.
class MMHAR_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() MMHAR_ACQUIRE() { mu_.lock(); }
  void unlock() MMHAR_RELEASE() { mu_.unlock(); }
  bool try_lock() MMHAR_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// std::shared_mutex with the `capability` attribute.
class MMHAR_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() MMHAR_ACQUIRE() { mu_.lock(); }
  void unlock() MMHAR_RELEASE() { mu_.unlock(); }
  void lock_shared() MMHAR_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void unlock_shared() MMHAR_RELEASE() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

/// RAII exclusive hold of a Mutex (the annotated std::lock_guard).
class MMHAR_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) MMHAR_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() MMHAR_RELEASE() { mu_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// RAII shared hold of a SharedMutex (lookups in read-mostly caches).
class MMHAR_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mu) MMHAR_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.lock_shared();
  }
  ~ReaderLock() MMHAR_RELEASE() { mu_.unlock_shared(); }
  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// RAII exclusive hold of a SharedMutex (inserts into those caches).
class MMHAR_SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu) MMHAR_ACQUIRE(mu) : mu_(mu) {
    mu_.lock();
  }
  ~WriterLock() MMHAR_RELEASE() { mu_.unlock(); }
  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Condition variable bound to Mutex. wait() REQUIRES the mutex held; the
/// transient unlock inside the wait is invisible to (and irrelevant for)
/// the analysis, which only needs the hold on entry and exit.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(Mutex& mu) MMHAR_REQUIRES(mu) {
    // Adopt the caller's hold for the duration of the wait, then release
    // the unique_lock's ownership so its destructor leaves the mutex to
    // the caller's RAII scope.
    std::unique_lock<std::mutex> lk(mu.mu_, std::adopt_lock);
    cv_.wait(lk);
    lk.release();
  }

  /// Timed wait (same adopt/release discipline as wait()). Returns false
  /// on timeout, true when notified — callers re-check their predicate
  /// either way; the timeout is what lets periodic supervisors (the
  /// serving watchdog, the shard idle-poll) bound how long a lost or
  /// miscounted wake-up can stall them.
  template <class Rep, class Period>
  bool wait_for(Mutex& mu, const std::chrono::duration<Rep, Period>& rel)
      MMHAR_REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu.mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_for(lk, rel);
    lk.release();
    return status == std::cv_status::no_timeout;
  }
  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace mmhar
