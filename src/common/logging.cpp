#include "common/logging.h"

#include <atomic>
#include <cstdio>

#include "common/env.h"
#include "common/mutex.h"

namespace mmhar {
namespace {

std::atomic<int>& threshold_storage() {
  static std::atomic<int> level{
      static_cast<int>(env_int("MMHAR_LOG_LEVEL", 1))};
  return level;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
  }
  return "?";
}

// Serializes whole lines onto stderr; there is no guarded data, the
// capability only orders the writes.
Mutex& log_mutex() {
  static Mutex mu;
  return mu;
}

}  // namespace

LogLevel log_threshold() {
  return static_cast<LogLevel>(threshold_storage().load());
}

void set_log_threshold(LogLevel level) {
  threshold_storage().store(static_cast<int>(level));
}

namespace detail {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >=
               static_cast<int>(log_threshold())),
      level_(level) {
  if (enabled_) {
    // Keep only the basename for readability.
    const char* base = file;
    for (const char* p = file; *p != '\0'; ++p)
      if (*p == '/') base = p + 1;
    os_ << "[" << level_name(level_) << " " << base << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    MutexLock lk(log_mutex());
    std::fprintf(stderr, "%s\n", os_.str().c_str());
  }
}

}  // namespace detail
}  // namespace mmhar
