#include "common/rng.h"

#include <cmath>

#include "common/check.h"
#include "common/serialize.h"

namespace mmhar {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

Rng Rng::fork(std::uint64_t tag) {
  // Mix the parent's next output with the tag to seed the child.
  const std::uint64_t base = next_u64();
  std::uint64_t sm = base ^ (tag * 0xD1342543DE82EF95ULL + 0x2545F4914F6CDD1DULL);
  Rng child(0);
  for (auto& s : child.s_) s = splitmix64(sm);
  return child;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random mantissa bits -> uniform double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  MMHAR_REQUIRE(lo <= hi, "uniform bounds out of order");
  return lo + (hi - lo) * uniform();
}

double Rng::normal() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  double u1 = 0.0;
  while (u1 <= 1e-300) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * 3.14159265358979323846 * u2;
  spare_ = r * std::sin(theta);
  has_spare_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

std::size_t Rng::index(std::size_t n) {
  MMHAR_REQUIRE(n > 0, "index() over empty range");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % n);
  std::uint64_t x = next_u64();
  while (x >= limit) x = next_u64();
  return static_cast<std::size_t>(x % n);
}

bool Rng::bernoulli(double p) { return uniform() < p; }

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  MMHAR_REQUIRE(k <= n, "cannot sample " << k << " from " << n);
  std::vector<std::size_t> all(n);
  for (std::size_t i = 0; i < n; ++i) all[i] = i;
  // Partial Fisher–Yates: first k entries become the sample.
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + index(n - i);
    std::swap(all[i], all[j]);
  }
  all.resize(k);
  return all;
}

void Rng::shuffle(std::vector<std::size_t>& v) {
  for (std::size_t i = v.size(); i > 1; --i) {
    const std::size_t j = index(i);
    std::swap(v[i - 1], v[j]);
  }
}

void Rng::save(BinaryWriter& w) const {
  for (const std::uint64_t s : s_) w.write_u64(s);
  w.write_f64(spare_);
  w.write_u32(has_spare_ ? 1 : 0);
}

void Rng::load(BinaryReader& r) {
  for (auto& s : s_) s = r.read_u64();
  spare_ = r.read_f64();
  has_spare_ = r.read_u32() != 0;
}

}  // namespace mmhar
