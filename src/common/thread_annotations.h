// Clang Thread Safety Analysis attribute macros.
//
// These wrap clang's -Wthread-safety attributes so lock discipline is
// *proved at compile time* instead of sampled at runtime: a field tagged
// MMHAR_GUARDED_BY(mu) can only be touched while `mu` is held, a function
// tagged MMHAR_REQUIRES(mu) can only be called with `mu` held, and the CI
// thread-safety leg (clang, -Wthread-safety -Werror; see
// .github/workflows/ci.yml and the MMHAR_THREAD_SAFETY CMake option)
// rejects any violation. TSan (the `thread` sanitizer leg) still runs —
// it catches what the annotations cannot express — but the annotations
// catch what a test schedule never happens to execute.
//
// On non-clang compilers every macro expands to nothing, so GCC builds
// are byte-for-byte unaffected.
//
// The capability-annotated lock types that these attributes name live in
// common/mutex.h (raw std::mutex cannot be used as a capability because
// libstdc++ does not annotate it). Every file that uses one of these
// macros must include this header directly — enforced by the
// `header-hygiene` rule of tools/mmhar_analyze.
//
// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html
#pragma once

#if defined(__clang__)
#define MMHAR_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define MMHAR_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

/// Declares a type to be a lockable capability ("mutex", "shared_mutex").
#define MMHAR_CAPABILITY(x) MMHAR_THREAD_ANNOTATION(capability(x))

/// Declares an RAII type that acquires in its constructor and releases in
/// its destructor.
#define MMHAR_SCOPED_CAPABILITY MMHAR_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only while `x` is held (shared hold
/// suffices for reads, exclusive for writes).
#define MMHAR_GUARDED_BY(x) MMHAR_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is protected by `x`.
#define MMHAR_PT_GUARDED_BY(x) MMHAR_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function precondition: caller holds the capability exclusively.
#define MMHAR_REQUIRES(...) \
  MMHAR_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function precondition: caller holds the capability at least shared.
#define MMHAR_REQUIRES_SHARED(...) \
  MMHAR_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability exclusively (and does not release it).
#define MMHAR_ACQUIRE(...) \
  MMHAR_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function acquires the capability shared.
#define MMHAR_ACQUIRE_SHARED(...) \
  MMHAR_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/// Function releases the capability (generic: exclusive or shared).
#define MMHAR_RELEASE(...) \
  MMHAR_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))

/// Function tries to acquire; first argument is the success return value.
#define MMHAR_TRY_ACQUIRE(...) \
  MMHAR_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Function must be called with the capability NOT held (deadlock guard).
#define MMHAR_EXCLUDES(...) MMHAR_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Asserts (for the analysis only) that the capability is held here.
#define MMHAR_ASSERT_CAPABILITY(x) \
  MMHAR_THREAD_ANNOTATION(assert_capability(x))

/// Function returns a reference to the capability guarding its result.
#define MMHAR_RETURN_CAPABILITY(x) MMHAR_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch — OFF-LIMITS in thread_pool.{h,cpp}, dsp/fft.cpp and
/// dsp/window.cpp (the -Wthread-safety acceptance bar is zero
/// suppressions there); elsewhere it needs a comment explaining why the
/// analysis cannot see the discipline.
#define MMHAR_NO_THREAD_SAFETY_ANALYSIS \
  MMHAR_THREAD_ANNOTATION(no_thread_safety_analysis)

// ---------------------------------------------------------------------------
// Real-time-safety annotations (consumed by tools/mmhar_rtcheck).
//
// MMHAR_REALTIME marks a function on the serving steady-state path: the
// static checker proves that nothing reachable from it allocates, acquires
// a lock, blocks, throws, or reads an unregistered MMHAR_* env knob.
// MMHAR_REALTIME_HANDOFF is the same contract except that the function's
// *own body* may acquire bounded critical sections through the annotated
// lock wrappers in common/mutex.h (the slot hand-off protocol: free-list /
// queued-ring exchange, result publication, plan-cache lookup). The
// exemption does not propagate: callees of a hand-off function are checked
// under the full MMHAR_REALTIME rules.
//
// Both macros sit in the trailing attribute position, after the parameter
// list: `void submit_frame(...) MMHAR_REALTIME_HANDOFF;`.
//
// Off-clang (and on clang without the opt-in below) they expand to
// nothing; tools/mmhar_rtcheck reads them textually either way. When
// CMake defines MMHAR_RT_EFFECT_ATTRIBUTES (the MMHAR_SANITIZE=realtime
// leg) and the compiler understands clang's function-effect attributes,
// MMHAR_REALTIME maps to [[clang::nonblocking]] — the effect
// RealtimeSanitizer instruments, forbidding locks — and
// MMHAR_REALTIME_HANDOFF to the weaker [[clang::nonallocating]], which
// permits the bounded lock hand-off but still bans allocation and
// exceptions. The mapping is opt-in rather than always-on under clang so
// the existing clang CI legs do not take on -Wfunction-effects churn.
#if defined(MMHAR_RT_EFFECT_ATTRIBUTES) && defined(__clang__) && \
    defined(__has_cpp_attribute)
#if __has_cpp_attribute(clang::nonblocking) && \
    __has_cpp_attribute(clang::nonallocating)
#define MMHAR_REALTIME [[clang::nonblocking]]
#define MMHAR_REALTIME_HANDOFF [[clang::nonallocating]]
#endif
#endif
#ifndef MMHAR_REALTIME
#define MMHAR_REALTIME          // no-op: checked textually by mmhar_rtcheck
#define MMHAR_REALTIME_HANDOFF  // no-op: checked textually by mmhar_rtcheck
#endif

// MMHAR_DETERMINISTIC marks a determinism root: every function reachable
// from it must be bit-reproducible run to run (no hash-order iteration, no
// clock/rand/thread-id/address-derived values, no racy parallel
// reductions, no post-startup env reads). Checked transitively over the
// whole-repo call graph by tools/mmhar_detcheck; the required root set is
// pinned in tools/detcheck_roots.txt. Unlike MMHAR_REALTIME it never maps
// to a compiler attribute — there is no hardware/compiler notion of
// determinism to hand the claim to — so it is unconditionally empty and
// may appear anywhere in a declaration, including before `override`.
#define MMHAR_DETERMINISTIC  // no-op: checked textually by mmhar_detcheck
