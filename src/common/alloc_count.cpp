#include "common/alloc_count.h"

#include <atomic>
#include <cstdlib>
#include <new>

namespace mmhar {
namespace {

// Relaxed is enough: tests only read the counter on the same thread that
// performed the allocations (or after joining), so no ordering is needed
// beyond the increments themselves being atomic.
std::atomic<std::uint64_t> g_alloc_count{0};

void* counted_alloc(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (size == 0) size = 1;
  // The one place raw malloc is legitimate: this IS the allocator.
  void* p = std::malloc(size);  // mmhar-lint: allow(naked-alloc)
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* counted_alloc_aligned(std::size_t size, std::size_t align) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (size == 0) size = align;
  // aligned_alloc requires the size to be a multiple of the alignment.
  const std::size_t rounded = (size + align - 1) / align * align;
  void* p = std::aligned_alloc(align, rounded);  // mmhar-lint: allow(naked-alloc)
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

}  // namespace

std::uint64_t alloc_count() {
  return g_alloc_count.load(std::memory_order_relaxed);
}

}  // namespace mmhar

// Replacement global allocation functions. Every form forwards to
// malloc/free so the plain and aligned paths stay free()-compatible.
void* operator new(std::size_t size) { return mmhar::counted_alloc(size); }
void* operator new[](std::size_t size) { return mmhar::counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return mmhar::counted_alloc_aligned(size,
                                      static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return mmhar::counted_alloc_aligned(size,
                                      static_cast<std::size_t>(align));
}

// These ARE the deallocator, so raw free is the whole point.
// mmhar-lint: allow(naked-alloc)
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }  // mmhar-lint: allow(naked-alloc)
void operator delete(void* p, std::size_t) noexcept { std::free(p); }  // mmhar-lint: allow(naked-alloc)
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }  // mmhar-lint: allow(naked-alloc)
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }  // mmhar-lint: allow(naked-alloc)
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }  // mmhar-lint: allow(naked-alloc)
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);  // mmhar-lint: allow(naked-alloc)
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);  // mmhar-lint: allow(naked-alloc)
}
