#include "common/journal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/check.h"
#include "common/hash.h"
#include "common/logging.h"
#include "common/serialize.h"

namespace mmhar {
namespace {

constexpr std::uint32_t kRecordMagic = 0x4345524A;  // "JREC"
constexpr std::size_t kFrameBytes =
    sizeof(std::uint32_t) + 2 * sizeof(std::uint64_t);

std::uint64_t checksum_of(const char* data, std::size_t n) {
  Hasher h;
  h.mix_bytes(data, n);
  return h.value();
}

}  // namespace

AppendJournal::AppendJournal(std::string path) : path_(std::move(path)) {}

std::vector<std::string> AppendJournal::load() {
  std::vector<std::string> records;
  if (!file_exists(path_)) return records;

  std::string bytes;
  {
    std::ifstream is(path_, std::ios::binary);
    if (!is) throw IoError("journal: cannot open " + path_);
    std::ostringstream buf(std::ios::binary);
    buf << is.rdbuf();
    if (is.bad()) throw IoError("journal: read failed on " + path_);
    bytes = buf.str();
  }

  std::size_t offset = 0;
  std::size_t valid_bytes = 0;
  while (offset + kFrameBytes <= bytes.size()) {
    std::uint32_t magic = 0;
    std::uint64_t len = 0;
    MMHAR_CHECK(offset + kFrameBytes <= bytes.size());
    std::memcpy(&magic, bytes.data() + offset, 4);
    std::memcpy(&len, bytes.data() + offset + 4, 8);
    if (magic != kRecordMagic) break;
    const std::size_t record_end = offset + kFrameBytes +
                                   static_cast<std::size_t>(len);
    if (len > bytes.size() || record_end > bytes.size()) break;
    MMHAR_CHECK(record_end <= bytes.size());
    std::uint64_t stored = 0;
    std::memcpy(&stored, bytes.data() + offset + 12 + len, 8);
    if (stored != checksum_of(bytes.data() + offset + 12,
                              static_cast<std::size_t>(len)))
      break;
    records.emplace_back(bytes, offset + 12, static_cast<std::size_t>(len));
    offset = record_end;
    valid_bytes = record_end;
  }

  if (valid_bytes < bytes.size()) {
    MMHAR_LOG(Warn) << "journal " << path_ << ": torn tail ("
                    << bytes.size() - valid_bytes
                    << " trailing bytes), truncating to " << records.size()
                    << " intact record(s)";
    std::error_code ec;
    std::filesystem::resize_file(path_, valid_bytes, ec);
    if (ec)
      MMHAR_LOG(Warn) << "journal " << path_
                      << ": truncation failed: " << ec.message();
  }
  return records;
}

void AppendJournal::append(const std::string& payload) {
  std::string frame(kFrameBytes - sizeof(std::uint64_t) + payload.size(),
                    '\0');
  const std::uint64_t len = payload.size();
  const std::uint64_t sum = checksum_of(payload.data(), payload.size());
  MMHAR_CHECK(frame.size() == 12 + payload.size());
  std::memcpy(frame.data(), &kRecordMagic, 4);
  std::memcpy(frame.data() + 4, &len, 8);
  std::memcpy(frame.data() + 12, payload.data(), payload.size());
  frame.append(reinterpret_cast<const char*>(&sum), 8);

  {
    std::ofstream os(path_, std::ios::binary | std::ios::app);
    if (!os) throw IoError("journal: cannot open " + path_ + " for append");
    os.write(frame.data(), static_cast<std::streamsize>(frame.size()));
    os.flush();
    if (!os) throw IoError("journal: append failed on " + path_);
  }
  const int fd = ::open(path_.c_str(), O_RDONLY);
  if (fd >= 0) {
    if (::fsync(fd) != 0)
      MMHAR_LOG(Warn) << "journal " << path_ << ": fsync failed (continuing)";
    ::close(fd);
  }
}

}  // namespace mmhar
