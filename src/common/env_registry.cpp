#include "common/env_registry.h"

#include <cstring>

namespace mmhar {
namespace {

// One row per knob, one line per row: tools/mmhar_analyze parses this
// table textually (pass 1 of the env-knob-registry rule), so keep the
// {"NAME", "type", "default", "doc"} shape and the line breaks.
constexpr EnvKnob kKnobs[] = {
    {"MMHAR_CACHE_DIR", "string", ".mmhar_cache", "dataset/model/journal cache directory"},
    {"MMHAR_CHECKPOINT_EVERY", "int", "1", "training checkpoint cadence in epochs (0 = off)"},
    {"MMHAR_EPOCHS", "int", "20", "training epochs"},
    {"MMHAR_FAULT_SEED", "int", "1", "seed for probabilistic fault-injection rules"},
    {"MMHAR_FAULT_SPEC", "string", "(empty)", "fault-injection spec: site, site@N, site=P, comma-separated"},
    {"MMHAR_FINITE_CHECKS", "flag", "0", "arm NaN/Inf/denormal tripwires at pipeline stage boundaries"},
    {"MMHAR_FRAMES", "list", "per-bench", "comma-separated frame counts for frame sweeps"},
    {"MMHAR_LOG_LEVEL", "int", "1", "log threshold: 0=debug 1=info 2=warn 3=error 4=silent"},
    {"MMHAR_RATES", "list", "per-bench", "comma-separated injection rates for rate sweeps"},
    {"MMHAR_REPEATS", "int", "2", "backdoor trainings averaged per sweep point (paper: 30)"},
    {"MMHAR_REPS_TEST", "int", "1", "test-set repetitions per grid cell"},
    {"MMHAR_REPS_TRAIN", "int", "2", "training repetitions per grid cell (72 samples/class)"},
    {"MMHAR_RESUME", "flag", "1", "replay completed sweep repeats from the journal"},
    {"MMHAR_SERVING_BATCH", "int", "64", "max frames fused per serving batcher cycle"},
    {"MMHAR_SERVING_BENCH_SHARDS", "list", "1,2,4", "bench_serving: comma-separated shard counts for the throughput sweep"},
    {"MMHAR_SERVING_DROP_POLICY", "string", "oldest", "full frame ring: drop 'oldest' queued frame or reject 'newest'"},
    {"MMHAR_SERVING_FRAMES", "int", "48", "bench_serving: frames submitted per stream"},
    {"MMHAR_SERVING_MAX_STREAM_FAULTS", "int", "3", "consecutive contained faults before a serving stream is suspended (0 = never)"},
    {"MMHAR_SERVING_QUEUE_DEPTH", "int", "4", "per-stream frame-ring capacity in the serving layer"},
    {"MMHAR_SERVING_RATE_HZ", "int", "30", "bench_serving: paced per-stream submit rate for the latency leg"},
    {"MMHAR_SERVING_SHARDS", "int", "1", "batcher shards in the serving layer (one worker thread each)"},
    {"MMHAR_SERVING_SLO_MS", "int", "0", "serving admission SLO in ms; frames/results past it are dropped (0 = off)"},
    {"MMHAR_SERVING_STREAMS", "list", "1,8,64", "bench_serving: comma-separated concurrent stream counts"},
    {"MMHAR_SERVING_WATCHDOG_MS", "int", "0", "serving shard-watchdog cadence in ms; restarts crashed/stalled workers (0 = unsupervised)"},
    {"MMHAR_SHAP_SAMPLES", "int", "36", "samples in the Fig. 3 SHAP histogram"},
    {"MMHAR_THREADS", "int", "0 (auto)", "thread-pool size; 0 = hardware concurrency"},
    {"MMHAR_VERBOSE", "flag", "0", "per-epoch training log lines"},
};

constexpr std::size_t kKnobCount = sizeof(kKnobs) / sizeof(kKnobs[0]);

}  // namespace

const EnvKnob* env_registry(std::size_t* count) {
  if (count != nullptr) *count = kKnobCount;
  return kKnobs;
}

const EnvKnob* find_env_knob(const char* name) {
  for (const EnvKnob& knob : kKnobs) {
    if (std::strcmp(knob.name, name) == 0) return &knob;
  }
  return nullptr;
}

bool env_name_allowed(const char* name) {
  if (std::strncmp(name, "MMHAR_", 6) != 0) return true;
  if (std::strncmp(name, "MMHAR_TEST_", 11) == 0) return true;
  return find_env_knob(name) != nullptr;
}

}  // namespace mmhar
