// FNV-1a based configuration hashing.
//
// Experiment configurations hash to a stable 64-bit key used to name
// on-disk dataset cache entries; any parameter change yields a new key.
#pragma once

#include <cstdint>
#include <cstring>
#include <type_traits>
#include <string>

namespace mmhar {

/// Incremental FNV-1a hasher over heterogeneous fields.
class Hasher {
 public:
  Hasher& mix_bytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      h_ ^= p[i];
      h_ *= 0x100000001B3ULL;
    }
    return *this;
  }

  /// Integers are widened to 64 bits before mixing.
  template <typename T>
    requires std::is_integral_v<T>
  Hasher& mix(T v) {
    const auto wide = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(v));
    return mix_bytes(&wide, sizeof wide);
  }

  Hasher& mix(double v) {
    std::uint64_t bits;
    static_assert(sizeof bits == sizeof v);
    std::memcpy(&bits, &v, sizeof bits);
    return mix(bits);
  }

  Hasher& mix(float v) { return mix(static_cast<double>(v)); }

  Hasher& mix(const std::string& s) {
    mix(static_cast<std::uint64_t>(s.size()));
    return mix_bytes(s.data(), s.size());
  }

  std::uint64_t value() const { return h_; }

  /// 16-hex-digit string form, convenient for file names.
  std::string hex() const {
    static const char* digits = "0123456789abcdef";
    std::string s(16, '0');
    std::uint64_t v = h_;
    for (int i = 15; i >= 0; --i) {
      s[static_cast<std::size_t>(i)] = digits[v & 0xF];
      v >>= 4;
    }
    return s;
  }

 private:
  std::uint64_t h_ = 0xCBF29CE484222325ULL;
};

}  // namespace mmhar
