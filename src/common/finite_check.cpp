#include "common/finite_check.h"

#include <atomic>
#include <cmath>
#include <sstream>

#include "common/check.h"
#include "common/env.h"

#ifndef MMHAR_FINITE_CHECKS_DEFAULT
#define MMHAR_FINITE_CHECKS_DEFAULT 0
#endif

namespace mmhar {
namespace {

// -1 = defer to the env var; 0/1 = forced by tests.
std::atomic<int> g_forced{-1};

bool env_enabled() {
  // Magic static: the knob is read exactly once, before any pipeline
  // output exists, and frozen for the process lifetime — equivalent to a
  // startup read passed down. It gates whether checks run, never what
  // they compute.
  static const bool enabled =
      // MMHAR_DETCHECK_ALLOW(env-read)
      env_int("MMHAR_FINITE_CHECKS", MMHAR_FINITE_CHECKS_DEFAULT) != 0;
  return enabled;
}

template <typename T>
FiniteScan scan_impl(const T* data, std::size_t n) {
  FiniteScan scan;
  bool have_bad = false;
  std::size_t first_denormal = 0;
  bool have_denormal = false;
  for (std::size_t i = 0; i < n; ++i) {
    const T v = data[i];
    if (std::isnan(v)) {
      ++scan.nan_count;
      if (!have_bad) {
        scan.first_bad_index = i;
        have_bad = true;
      }
    } else if (std::isinf(v)) {
      ++scan.inf_count;
      if (!have_bad) {
        scan.first_bad_index = i;
        have_bad = true;
      }
    } else if (v != T{0} && std::fpclassify(v) == FP_SUBNORMAL) {
      ++scan.denormal_count;
      if (!have_denormal) {
        first_denormal = i;
        have_denormal = true;
      }
    }
  }
  if (!have_bad && have_denormal) scan.first_bad_index = first_denormal;
  return scan;
}

}  // namespace

bool finite_checks_enabled() {
  const int forced = g_forced.load(std::memory_order_relaxed);
  if (forced >= 0) return forced != 0;
  return env_enabled();
}

void set_finite_checks_for_testing(int forced) {
  g_forced.store(forced, std::memory_order_relaxed);
}

namespace detail {

FiniteScan scan_finite(const float* data, std::size_t n) {
  return scan_impl(data, n);
}

FiniteScan scan_finite(const double* data, std::size_t n) {
  return scan_impl(data, n);
}

void finite_check_failed(const FiniteScan& scan, std::size_t n,
                         const char* tensor_name, const char* stage) {
  std::ostringstream os;
  os << "finite-check failed at stage '" << stage << "', tensor '"
     << tensor_name << "' (" << n << " values): ";
  if (scan.has_nan_or_inf()) {
    os << scan.nan_count << " NaN, " << scan.inf_count
       << " Inf; first bad value at flat index " << scan.first_bad_index;
  } else {
    os << "denormal storm — " << scan.denormal_count
       << " subnormal values (first at flat index " << scan.first_bad_index
       << "), threshold " << kDenormalStormFraction
       << " of buffer; an accumulator likely underflowed";
  }
  throw Error(os.str());
}

}  // namespace detail
}  // namespace mmhar
