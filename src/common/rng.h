// Deterministic random number generation.
//
// All stochastic components of the library (dataset generation, weight
// initialization, SHAP sampling, poisoning choices) draw from an explicitly
// plumbed `Rng` so that every experiment is reproducible from a single seed.
// `Rng::fork(tag)` derives statistically independent child streams, which
// lets parallel workers consume randomness without sharing state.
#pragma once

#include <cstdint>
#include <vector>

namespace mmhar {

class BinaryReader;
class BinaryWriter;

/// SplitMix64-seeded xoshiro256** generator with convenience samplers.
///
/// Not cryptographic; chosen for speed, tiny state, and good statistical
/// quality (passes BigCrush). Copyable value type.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Derive an independent child stream. Children with distinct tags (or
  /// from distinct parents) do not overlap in practice.
  Rng fork(std::uint64_t tag);

  /// Uniform 64-bit integer.
  std::uint64_t next_u64();

  /// Uniform in [0, 1).
  double uniform();

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal via Box–Muller (cached spare deviate).
  double normal();

  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Uniform integer in [0, n). Requires n > 0.
  std::size_t index(std::size_t n);

  /// Bernoulli draw with probability p of true.
  bool bernoulli(double p);

  /// Sample k distinct indices from [0, n) without replacement.
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k);

  /// In-place Fisher–Yates shuffle of an index vector.
  void shuffle(std::vector<std::size_t>& v);

  /// Serialize the full generator state (stream position included), so a
  /// restored Rng continues bit-identically. Used by training checkpoints.
  void save(BinaryWriter& w) const;
  void load(BinaryReader& r);

 private:
  std::uint64_t s_[4];
  double spare_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace mmhar
