#include "common/thread_pool.h"

#include <atomic>

#include "common/check.h"
#include "common/env.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace mmhar {
namespace {

thread_local bool tl_in_pool_worker = false;
// Atomic so that a reader racing a test's set_global_pool_for_testing sees
// either the old or the new pool, never a torn value (TSan-clean even when
// tests swap pools between parallel sections).
std::atomic<ThreadPool*> g_pool_override{nullptr};

}  // namespace

bool ThreadPool::in_worker() { return tl_in_pool_worker; }

std::size_t ThreadPool::resolve_num_threads(std::size_t requested) {
  if (requested != 0) return requested;
  const std::size_t hw = std::thread::hardware_concurrency();
  return hw != 0 ? hw : 2;
}

ThreadPool::ThreadPool(std::size_t num_threads)
    : num_threads_(resolve_num_threads(num_threads)) {
  workers_.reserve(num_threads_);
  for (std::size_t i = 0; i < num_threads_; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  tl_in_pool_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lk(mu_);
      while (!stop_ && tasks_.empty()) cv_.wait(mu_);
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }
}

void ThreadPool::enqueue(std::function<void()> task) {
  {
    MutexLock lk(mu_);
    tasks_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn) {
  parallel_for_chunked(begin, end,
                       [&fn](std::size_t lo, std::size_t hi) {
                         for (std::size_t i = lo; i < hi; ++i) fn(i);
                       });
}

void ThreadPool::parallel_for_chunked(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (begin >= end) return;
  // Nested parallelism: a worker has no free pool thread to hand chunks
  // to, and blocking on the queue from a worker can deadlock the pool.
  if (tl_in_pool_worker) {
    fn(begin, end);
    return;
  }
  const std::size_t n = end - begin;
  const std::size_t parts = std::min(n, size() + 1);
  if (parts <= 1) {
    fn(begin, end);
    return;
  }

  // Completion protocol (the happens-before chain TSan verifies):
  //  1. a worker's writes inside fn() happen-before its
  //     `remaining.fetch_sub(acq_rel)`; the acq_rel RMW chain makes every
  //     earlier worker's effects visible to whichever worker decrements
  //     the count to zero;
  //  2. only that last worker touches `done`: it sets it (and notifies)
  //     while holding `state.mu`, and never touches `state` after
  //     releasing the lock;
  //  3. the caller's wait predicate reads `done` under the same mutex, so
  //     it cannot return — and destroy the stack-allocated `state` —
  //     until the last worker has released `state.mu` for the final time.
  // The wait loop must NOT read the atomic counter: the caller could then
  // observe zero (and free `state`) in the window between the last
  // worker's decrement and its mutex acquisition.
  // `error` is written under `state.mu` and copied out inside the same
  // critical section that observes `done`, so it is ordered by the mutex
  // alone.
  struct State {
    std::atomic<std::size_t> remaining;
    Mutex mu;
    CondVar done_cv;
    std::exception_ptr error MMHAR_GUARDED_BY(mu);
    bool done MMHAR_GUARDED_BY(mu) = false;
  } state;
  state.remaining.store(parts - 1, std::memory_order_relaxed);

  const std::size_t chunk = (n + parts - 1) / parts;
  // Chunks 1..parts-1 go to the pool; chunk 0 runs on the caller thread.
  for (std::size_t p = 1; p < parts; ++p) {
    const std::size_t lo = begin + p * chunk;
    const std::size_t hi = std::min(end, lo + chunk);
    enqueue([&state, &fn, lo, hi] {
      try {
        if (lo < hi) fn(lo, hi);
      } catch (...) {
        MutexLock lk(state.mu);
        if (!state.error) state.error = std::current_exception();
      }
      if (state.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        // Set the flag and notify under the lock: the caller can only wake
        // and destroy `state` after this thread releases `state.mu`.
        MutexLock lk(state.mu);
        state.done = true;
        state.done_cv.notify_one();
      }
    });
  }

  std::exception_ptr caller_error;
  try {
    fn(begin, std::min(end, begin + chunk));
  } catch (...) {
    caller_error = std::current_exception();
  }

  std::exception_ptr worker_error;
  {
    MutexLock lk(state.mu);
    while (!state.done) state.done_cv.wait(state.mu);
    // Copy the error out under the same hold that observed `done`: a read
    // after the scope would touch guarded state with the lock dropped
    // (a latent discipline violation the annotations surfaced).
    worker_error = state.error;
  }
  if (caller_error) std::rethrow_exception(caller_error);
  if (worker_error) std::rethrow_exception(worker_error);
}

ThreadPool& global_pool() {
  // Magic static: MMHAR_THREADS is read exactly once, at first dispatch,
  // and frozen for the process lifetime. Worker count never feeds any
  // result — the PR-1/3 invariant (bit-identical for any MMHAR_THREADS)
  // is exactly what mmhar_detcheck's other rules prove for callers.
  static ThreadPool pool(
      // MMHAR_DETCHECK_ALLOW(env-read)
      static_cast<std::size_t>(env_int("MMHAR_THREADS", 0)));
  ThreadPool* override_pool = g_pool_override.load(std::memory_order_acquire);
  return override_pool != nullptr ? *override_pool : pool;
}

void set_global_pool_for_testing(ThreadPool* pool) {
  g_pool_override.store(pool, std::memory_order_release);
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn) {
  global_pool().parallel_for(begin, end, fn);
}

}  // namespace mmhar
