#include "common/artifact_store.h"

#include <fcntl.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/fault_injection.h"
#include "common/hash.h"
#include "common/logging.h"

namespace mmhar {
namespace {

namespace fs = std::filesystem;

// Header: store magic, store version, kind magic, kind version, payload
// length. Trailer: payload checksum.
constexpr std::size_t kHeaderBytes = 4 * sizeof(std::uint32_t) + sizeof(std::uint64_t);
constexpr std::size_t kTrailerBytes = sizeof(std::uint64_t);

std::uint64_t payload_checksum(const std::string& payload) {
  Hasher h;
  h.mix_bytes(payload.data(), payload.size());
  return h.value();
}

// Flush a freshly written file (and its directory entry) to stable
// storage. Best effort: an fsync failure degrades durability, not
// correctness, so it is logged rather than thrown.
void sync_path(const std::string& path, bool directory) {
  const int flags = directory ? (O_RDONLY | O_DIRECTORY) : O_RDONLY;
  const int fd = ::open(path.c_str(), flags);
  if (fd < 0) return;
  if (::fsync(fd) != 0)
    MMHAR_LOG(Warn) << "fsync failed for " << path << " (continuing)";
  ::close(fd);
}

std::string parent_dir(const std::string& path) {
  const auto parent = fs::path(path).parent_path();
  return parent.empty() ? std::string(".") : parent.string();
}

LoadResult corrupt(const std::string& path, std::string detail) {
  LoadResult r;
  r.status = LoadStatus::Corrupt;
  r.detail = std::move(detail);
  r.quarantined_to = quarantine_file(path);
  MMHAR_LOG(Warn) << "artifact " << path << " is corrupt (" << r.detail
                  << ")"
                  << (r.quarantined_to.empty()
                          ? ""
                          : ", quarantined to " + r.quarantined_to);
  return r;
}

}  // namespace

const char* load_status_name(LoadStatus s) {
  switch (s) {
    case LoadStatus::Ok: return "ok";
    case LoadStatus::Missing: return "missing";
    case LoadStatus::VersionMismatch: return "version-mismatch";
    case LoadStatus::Corrupt: return "corrupt";
  }
  return "?";
}

std::string quarantine_file(const std::string& path) {
  std::error_code ec;
  if (!fs::exists(path, ec)) return "";
  const std::string target = path + ".corrupt";
  fs::rename(path, target, ec);
  if (!ec) return target;
  // Cross-device or permission trouble: removing still unblocks
  // regeneration, which is the property recovery depends on.
  fs::remove(path, ec);
  return "";
}

void save_artifact(const std::string& path, std::uint32_t kind_magic,
                   std::uint32_t kind_version,
                   const std::function<void(BinaryWriter&)>& write_payload) {
  // Serialize the payload to memory first so the checksum and length are
  // known before any byte reaches disk.
  std::ostringstream payload_os(std::ios::binary);
  {
    BinaryWriter w(payload_os);
    write_payload(w);
  }
  std::string payload = payload_os.str();
  const std::uint64_t checksum = payload_checksum(payload);

  // Injected post-commit corruption: these simulate on-disk damage (a
  // torn page, a flipped bit) that a *successful* write later suffers, so
  // they corrupt the image while keeping the checksum of the clean
  // payload — the loader must catch the mismatch.
  bool truncate_final = false;
  std::uint64_t truncate_to = 0;
  if (!payload.empty() && fault_should_fire("artifact.truncate")) {
    truncate_final = true;
    truncate_to = fault_draw(kHeaderBytes + payload.size());
  }
  if (!payload.empty() && fault_should_fire("artifact.bitflip")) {
    const std::uint64_t bit = fault_draw(8 * payload.size());
    payload[static_cast<std::size_t>(bit / 8)] ^=
        static_cast<char>(1U << (bit % 8));
  }

  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os) throw IoError("save_artifact: cannot open " + tmp);
    BinaryWriter w(os);
    w.write_u32(kStoreMagic);
    w.write_u32(kStoreFormatVersion);
    w.write_u32(kind_magic);
    w.write_u32(kind_version);
    w.write_u64(payload.size());
    if (fault_should_fire("artifact.short_write")) {
      // A write that dies partway: half the payload lands, then the
      // "disk" gives out. The temp file stays behind; the final path is
      // untouched.
      os.write(payload.data(),
               static_cast<std::streamsize>(payload.size() / 2));
      os.flush();
      throw IoError("save_artifact: injected short write on " + tmp);
    }
    os.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    w.write_u64(checksum);
    os.flush();
    if (!os) throw IoError("save_artifact: write failed on " + tmp);
  }
  sync_path(tmp, /*directory=*/false);

  if (fault_should_fire("artifact.rename_fail")) {
    std::error_code ec;
    fs::remove(tmp, ec);
    throw IoError("save_artifact: injected rename failure for " + path);
  }

  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    throw IoError("save_artifact: rename to " + path + " failed: " +
                  ec.message());
  }
  sync_path(parent_dir(path), /*directory=*/true);

  if (truncate_final) {
    fs::resize_file(path, truncate_to, ec);
    if (ec)
      MMHAR_LOG(Warn) << "fault injection: resize_file failed: "
                      << ec.message();
  }
}

LoadResult load_artifact(
    const std::string& path, std::uint32_t kind_magic,
    std::uint32_t kind_version,
    const std::function<void(BinaryReader&)>& read_payload) {
  if (!file_exists(path)) {
    LoadResult r;
    r.status = LoadStatus::Missing;
    r.detail = "no file at " + path;
    return r;
  }

  std::string bytes;
  {
    std::ifstream is(path, std::ios::binary);
    if (!is) return corrupt(path, "cannot open for read");
    std::ostringstream buf(std::ios::binary);
    buf << is.rdbuf();
    if (is.bad()) return corrupt(path, "read failed");
    bytes = buf.str();
  }

  if (bytes.size() < kHeaderBytes + kTrailerBytes)
    return corrupt(path, "file shorter than container header+trailer");

  std::uint32_t magic = 0, store_version = 0, kind = 0, version = 0;
  std::uint64_t payload_len = 0;
  const char* p = bytes.data();
  std::memcpy(&magic, p, 4);
  std::memcpy(&store_version, p + 4, 4);
  std::memcpy(&kind, p + 8, 4);
  std::memcpy(&version, p + 12, 4);
  std::memcpy(&payload_len, p + 16, 8);

  if (magic != kStoreMagic)
    return corrupt(path, "bad store magic (pre-store or foreign file)");
  if (kind != kind_magic) return corrupt(path, "wrong artifact kind");
  if (store_version != kStoreFormatVersion || version != kind_version) {
    LoadResult r;
    r.status = LoadStatus::VersionMismatch;
    std::ostringstream os;
    os << "store v" << store_version << " kind v" << version << ", expected v"
       << kStoreFormatVersion << "/v" << kind_version;
    r.detail = os.str();
    MMHAR_LOG(Warn) << "artifact " << path << ": " << r.detail;
    return r;
  }
  if (payload_len != bytes.size() - kHeaderBytes - kTrailerBytes)
    return corrupt(path, "payload length disagrees with file size");
  MMHAR_CHECK(bytes.size() == kHeaderBytes + payload_len + kTrailerBytes);

  const std::string payload = bytes.substr(kHeaderBytes,
                                           static_cast<std::size_t>(payload_len));
  std::uint64_t stored_checksum = 0;
  std::memcpy(&stored_checksum, bytes.data() + kHeaderBytes + payload_len, 8);
  if (stored_checksum != payload_checksum(payload))
    return corrupt(path, "checksum mismatch");

  try {
    std::istringstream is(payload, std::ios::binary);
    BinaryReader r(is, payload.size());
    read_payload(r);
  } catch (const Error& e) {
    return corrupt(path, std::string("payload deserialization failed: ") +
                             e.what());
  }

  LoadResult r;
  r.status = LoadStatus::Ok;
  return r;
}

}  // namespace mmhar
