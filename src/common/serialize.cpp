#include "common/serialize.h"

#include <filesystem>

namespace mmhar {

std::ofstream open_for_write(const std::string& path) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) throw IoError("cannot open for write: " + path);
  return os;
}

std::ifstream open_for_read(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw IoError("cannot open for read: " + path);
  return is;
}

bool file_exists(const std::string& path) {
  std::error_code ec;
  return std::filesystem::is_regular_file(path, ec);
}

void ensure_directory(const std::string& path) {
  std::error_code ec;
  std::filesystem::create_directories(path, ec);
  if (ec) throw IoError("cannot create directory " + path + ": " + ec.message());
}

}  // namespace mmhar
