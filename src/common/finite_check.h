// Opt-in NaN/Inf/denormal tripwires for the numeric pipeline.
//
// The float path is long (FFT → clutter removal → DRAI → CNN-LSTM → SHAP →
// Weiszfeld) and a single NaN produced early poisons every downstream
// feature value silently. `check_finite` scans a buffer at a stage boundary
// and throws `mmhar::Error` naming the tensor, the stage, and the first
// offending flat index, so the failure surfaces where the bad value is
// *born*, not where it is finally consumed.
//
// The checks are off by default and cost one branch on a cached flag when
// disabled. Enable them with the environment variable
// `MMHAR_FINITE_CHECKS=1`, or build with `-DMMHAR_FINITE_CHECKS=ON` to flip
// the compiled-in default (the env var still overrides either way).
//
// Policy:
//  * any NaN or Inf is a violation;
//  * isolated denormals are normal float behavior and tolerated, but a
//    "denormal storm" (more than kDenormalStormFraction of the buffer, and
//    at least kDenormalStormMinCount values) is flagged — it means an
//    accumulator underflowed and everything downstream is running at
//    garbage precision and pathological speed.
#pragma once

#include <complex>
#include <cstddef>
#include <span>

namespace mmhar {

/// Denormal storms: tolerated up to this fraction of the buffer...
inline constexpr double kDenormalStormFraction = 0.25;
/// ...and always tolerated below this absolute count (tiny buffers).
inline constexpr std::size_t kDenormalStormMinCount = 16;

/// True when finite checks are active. Resolution order: the testing
/// override, else the MMHAR_FINITE_CHECKS env var, else the compile-time
/// default (-DMMHAR_FINITE_CHECKS). The env lookup is cached.
bool finite_checks_enabled();

/// Testing hook: 1 forces on, 0 forces off, -1 restores the env lookup.
void set_finite_checks_for_testing(int forced);

/// Aggregate statistics from one scan (exposed for tests/reporting).
struct FiniteScan {
  std::size_t nan_count = 0;
  std::size_t inf_count = 0;
  std::size_t denormal_count = 0;
  std::size_t first_bad_index = 0;  ///< first NaN/Inf (or first denormal
                                    ///< when only a storm tripped)
  bool has_nan_or_inf() const { return nan_count + inf_count > 0; }
};

namespace detail {

FiniteScan scan_finite(const float* data, std::size_t n);
FiniteScan scan_finite(const double* data, std::size_t n);

[[noreturn]] void finite_check_failed(const FiniteScan& scan, std::size_t n,
                                      const char* tensor_name,
                                      const char* stage);

template <typename T>
void check_finite_impl(const T* data, std::size_t n, const char* tensor_name,
                       const char* stage) {
  const FiniteScan scan = scan_finite(data, n);
  if (scan.has_nan_or_inf()) finite_check_failed(scan, n, tensor_name, stage);
  if (scan.denormal_count >= kDenormalStormMinCount &&
      static_cast<double>(scan.denormal_count) >
          kDenormalStormFraction * static_cast<double>(n)) {
    finite_check_failed(scan, n, tensor_name, stage);
  }
}

}  // namespace detail

/// Scan `data` when checks are enabled; throws mmhar::Error on violation.
/// `tensor_name` and `stage` label the report (both must outlive the call
/// only; string literals are the expected usage).
inline void check_finite(std::span<const float> data, const char* tensor_name,
                         const char* stage) {
  if (finite_checks_enabled())
    detail::check_finite_impl(data.data(), data.size(), tensor_name, stage);
}

inline void check_finite(std::span<const double> data, const char* tensor_name,
                         const char* stage) {
  if (finite_checks_enabled())
    detail::check_finite_impl(data.data(), data.size(), tensor_name, stage);
}

/// Complex buffers are scanned as interleaved (re, im) float pairs, so the
/// reported flat index is `2*i` / `2*i+1` for element `i`'s re/im part.
inline void check_finite(std::span<const std::complex<float>> data,
                         const char* tensor_name, const char* stage) {
  if (finite_checks_enabled())
    detail::check_finite_impl(reinterpret_cast<const float*>(data.data()),
                              2 * data.size(), tensor_name, stage);
}

}  // namespace mmhar
