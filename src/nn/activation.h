// Stateless activation layers and dropout.
#pragma once

#include "nn/layer.h"

namespace mmhar::nn {

class ReLU : public Layer {
 public:
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "ReLU"; }

 private:
  Tensor mask_;  // 1 where input > 0
};

class Tanh : public Layer {
 public:
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "Tanh"; }

 private:
  Tensor output_;
};

/// Inverted dropout: activations scaled by 1/(1-p) at training time so
/// inference is a plain identity.
class Dropout : public Layer {
 public:
  Dropout(double p, Rng& rng);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "Dropout"; }

 private:
  double p_;
  Rng rng_;
  Tensor mask_;
  bool last_training_ = false;
};

}  // namespace mmhar::nn
