// Softmax cross-entropy loss.
#pragma once

#include <cstddef>
#include <vector>

#include "tensor/tensor.h"

namespace mmhar::nn {

struct LossResult {
  float loss = 0.0F;     ///< mean cross-entropy over the batch
  Tensor grad_logits;    ///< dLoss/dLogits, [B, C]
  Tensor probabilities;  ///< softmax outputs, [B, C]
};

/// Mean softmax cross-entropy over logits [B, C] and integer labels.
LossResult softmax_cross_entropy(const Tensor& logits,
                                 const std::vector<std::size_t>& labels);

/// Fraction of rows whose argmax equals the label.
float accuracy(const Tensor& logits, const std::vector<std::size_t>& labels);

}  // namespace mmhar::nn
