#include "nn/gradcheck.h"

#include <algorithm>
#include <cmath>

namespace mmhar::nn {
namespace {

void update_errors(GradCheckResult& r, float analytic, float numeric) {
  const float abs_err = std::abs(analytic - numeric);
  const float denom =
      std::max({std::abs(analytic), std::abs(numeric), 1e-4F});
  r.max_absolute_error = std::max(r.max_absolute_error, abs_err);
  r.max_relative_error = std::max(r.max_relative_error, abs_err / denom);
  ++r.checked;
}

std::size_t probe_stride(std::size_t size, std::size_t probes) {
  if (probes == 0 || probes >= size) return 1;
  return std::max<std::size_t>(1, size / probes);
}

}  // namespace

GradCheckResult check_layer_gradients(Layer& layer, const Tensor& input,
                                      Rng& rng, float epsilon,
                                      std::size_t probes) {
  // Scalar loss L = sum(output .* seed) with a fixed random seed tensor,
  // so dL/dOutput = seed.
  Tensor probe_input = input;
  Tensor out = layer.forward(probe_input, /*training=*/false);
  const Tensor seed = Tensor::randn(out.shape(), rng, 0.0F, 1.0F);

  const auto loss_of = [&](const Tensor& x) {
    const Tensor y = layer.forward(const_cast<Tensor&>(x), false);
    double acc = 0.0;
    for (std::size_t i = 0; i < y.size(); ++i)
      acc += static_cast<double>(y[i]) * seed[i];
    return static_cast<float>(acc);
  };

  // Analytic pass.
  layer.zero_gradients();
  layer.forward(probe_input, false);
  const Tensor grad_input = layer.backward(seed);

  // Snapshot analytic parameter gradients (later forwards may not
  // invalidate them, but be safe).
  std::vector<Tensor> param_grads;
  for (Tensor* g : layer.gradients()) param_grads.push_back(*g);

  GradCheckResult result;

  // Input gradient check.
  {
    Tensor x = input;
    const std::size_t stride = probe_stride(x.size(), probes);
    for (std::size_t i = 0; i < x.size(); i += stride) {
      const float orig = x[i];
      x[i] = orig + epsilon;
      const float lp = loss_of(x);
      x[i] = orig - epsilon;
      const float lm = loss_of(x);
      x[i] = orig;
      update_errors(result, grad_input[i], (lp - lm) / (2.0F * epsilon));
    }
  }

  // Parameter gradient checks.
  const auto params = layer.parameters();
  for (std::size_t pi = 0; pi < params.size(); ++pi) {
    Tensor& p = *params[pi];
    const std::size_t stride = probe_stride(p.size(), probes);
    for (std::size_t i = 0; i < p.size(); i += stride) {
      const float orig = p[i];
      p[i] = orig + epsilon;
      const float lp = loss_of(input);
      p[i] = orig - epsilon;
      const float lm = loss_of(input);
      p[i] = orig;
      update_errors(result, param_grads[pi][i],
                    (lp - lm) / (2.0F * epsilon));
    }
  }
  return result;
}

GradCheckResult check_function_gradient(
    const std::function<float(const Tensor&)>& fn, const Tensor& at,
    const Tensor& analytic_grad, float epsilon, std::size_t probes) {
  MMHAR_REQUIRE(at.same_shape(analytic_grad),
                "gradient shape must match input shape");
  GradCheckResult result;
  Tensor x = at;
  const std::size_t stride = probe_stride(x.size(), probes);
  for (std::size_t i = 0; i < x.size(); i += stride) {
    const float orig = x[i];
    x[i] = orig + epsilon;
    const float lp = fn(x);
    x[i] = orig - epsilon;
    const float lm = fn(x);
    x[i] = orig;
    update_errors(result, analytic_grad[i], (lp - lm) / (2.0F * epsilon));
  }
  return result;
}

}  // namespace mmhar::nn
