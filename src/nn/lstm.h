// LSTM over feature sequences with full backpropagation through time.
//
// Input  [B, T, D]  (batch, timesteps, feature dim)
// Output [B, H]     (hidden state after the last timestep) by default, or
//        [B, T, H]  (all hidden states) when `return_sequence` is set.
// Gate layout inside the fused weight matrices: [i; f; g; o] blocks of H
// rows each. The forget-gate bias is initialized to +1, the standard
// trick that stabilizes early training.
#pragma once

#include "nn/layer.h"

namespace mmhar::nn {

class LSTM : public Layer {
 public:
  LSTM(std::size_t input_dim, std::size_t hidden_dim, Rng& rng,
       bool return_sequence = false);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Tensor*> parameters() override {
    return {&w_x_, &w_h_, &bias_};
  }
  std::vector<Tensor*> gradients() override {
    return {&grad_w_x_, &grad_w_h_, &grad_bias_};
  }
  std::string name() const override { return "LSTM"; }

  std::size_t input_dim() const { return input_dim_; }
  std::size_t hidden_dim() const { return hidden_dim_; }

 private:
  std::size_t input_dim_;
  std::size_t hidden_dim_;
  bool return_sequence_;

  Tensor w_x_;   // [4H, D]
  Tensor w_h_;   // [4H, H]
  Tensor bias_;  // [4H]
  Tensor grad_w_x_;
  Tensor grad_w_h_;
  Tensor grad_bias_;

  // Per-forward caches (indexed [t]): activations needed by BPTT.
  Tensor input_;                 // [B, T, D]
  std::vector<Tensor> gates_;    // each [B, 4H], post-nonlinearity
  std::vector<Tensor> cells_;    // c_t, each [B, H]
  std::vector<Tensor> hiddens_;  // h_t, each [B, H]
};

}  // namespace mmhar::nn
