// Sequential is header-only; this TU exists so the target always has at
// least one symbol and to anchor the vtable.
#include "nn/sequential.h"

namespace mmhar::nn {}
