// Numerical gradient checking used by the test suite.
#pragma once

#include <functional>

#include "nn/layer.h"

namespace mmhar::nn {

struct GradCheckResult {
  float max_relative_error = 0.0F;
  float max_absolute_error = 0.0F;
  std::size_t checked = 0;
};

/// Compare a layer's analytic input- and parameter-gradients against
/// central finite differences of the scalar loss sum(output * seed).
///
/// `probes` limits how many coordinates per tensor are perturbed (spread
/// evenly); 0 means all.
GradCheckResult check_layer_gradients(Layer& layer, const Tensor& input,
                                      Rng& rng, float epsilon = 1e-3F,
                                      std::size_t probes = 0);

/// Gradient-check an arbitrary scalar function of a tensor against an
/// analytic gradient supplied by the caller.
GradCheckResult check_function_gradient(
    const std::function<float(const Tensor&)>& fn, const Tensor& at,
    const Tensor& analytic_grad, float epsilon = 1e-3F,
    std::size_t probes = 0);

}  // namespace mmhar::nn
