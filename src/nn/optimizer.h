// First-order optimizers over (parameter, gradient) lists.
#pragma once

#include <vector>

#include "tensor/tensor.h"

namespace mmhar::nn {

class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Apply one update. `params` and `grads` are parallel lists; the lists
  /// must be identical (same tensors, same order) across calls so that
  /// per-parameter state stays attached.
  virtual void step(const std::vector<Tensor*>& params,
                    const std::vector<Tensor*>& grads) = 0;
};

/// SGD with classical momentum and decoupled weight decay.
class Sgd : public Optimizer {
 public:
  explicit Sgd(float lr, float momentum = 0.9F, float weight_decay = 0.0F);

  void step(const std::vector<Tensor*>& params,
            const std::vector<Tensor*>& grads) override;

  float learning_rate() const { return lr_; }
  void set_learning_rate(float lr) { lr_ = lr; }

 private:
  float lr_;
  float momentum_;
  float weight_decay_;
  std::vector<Tensor> velocity_;
};

/// Adam (Kingma & Ba) with bias correction and decoupled weight decay.
class Adam : public Optimizer {
 public:
  explicit Adam(float lr = 1e-3F, float beta1 = 0.9F, float beta2 = 0.999F,
                float eps = 1e-8F, float weight_decay = 0.0F);

  void step(const std::vector<Tensor*>& params,
            const std::vector<Tensor*>& grads) override;

  float learning_rate() const { return lr_; }
  void set_learning_rate(float lr) { lr_ = lr; }

  /// Serialize / restore the moment estimates and step counter so a
  /// resumed training run continues bit-identically. Hyperparameters are
  /// not stored — reconstruct the Adam with the same config first.
  void save(BinaryWriter& w) const;
  void load(BinaryReader& r);

 private:
  float lr_;
  float beta1_;
  float beta2_;
  float eps_;
  float weight_decay_;
  long step_count_ = 0;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
};

/// Clip the global L2 norm of all gradients to `max_norm` (no-op if
/// already smaller). Returns the pre-clip norm.
float clip_gradient_norm(const std::vector<Tensor*>& grads, float max_norm);

}  // namespace mmhar::nn
