#include "nn/lstm.h"

#include <cmath>

#include "tensor/gemm.h"

namespace mmhar::nn {
namespace {

float sigmoidf(float x) { return 1.0F / (1.0F + std::exp(-x)); }

}  // namespace

LSTM::LSTM(std::size_t input_dim, std::size_t hidden_dim, Rng& rng,
           bool return_sequence)
    : input_dim_(input_dim),
      hidden_dim_(hidden_dim),
      return_sequence_(return_sequence) {
  MMHAR_REQUIRE(input_dim > 0 && hidden_dim > 0, "LSTM dims must be positive");
  const float lim_x =
      std::sqrt(6.0F / static_cast<float>(input_dim + hidden_dim));
  const float lim_h = std::sqrt(6.0F / static_cast<float>(2 * hidden_dim));
  w_x_ = Tensor::rand_uniform({4 * hidden_dim, input_dim}, rng, -lim_x, lim_x);
  w_h_ = Tensor::rand_uniform({4 * hidden_dim, hidden_dim}, rng, -lim_h,
                              lim_h);
  bias_ = Tensor({4 * hidden_dim});
  // Forget-gate bias = 1.
  for (std::size_t i = hidden_dim; i < 2 * hidden_dim; ++i) bias_[i] = 1.0F;
  grad_w_x_ = Tensor({4 * hidden_dim, input_dim});
  grad_w_h_ = Tensor({4 * hidden_dim, hidden_dim});
  grad_bias_ = Tensor({4 * hidden_dim});
}

Tensor LSTM::forward(const Tensor& input, bool /*training*/) {
  MMHAR_REQUIRE(input.rank() == 3 && input.dim(2) == input_dim_,
                "LSTM expects [B, T, " << input_dim_ << "], got "
                                       << input.shape_string());
  input_ = input;
  const std::size_t batch = input.dim(0);
  const std::size_t steps = input.dim(1);
  const std::size_t h_dim = hidden_dim_;
  const std::size_t g4 = 4 * h_dim;

  gates_.assign(steps, Tensor({batch, g4}));
  cells_.assign(steps, Tensor({batch, h_dim}));
  hiddens_.assign(steps, Tensor({batch, h_dim}));

  Tensor h_prev({batch, h_dim});
  Tensor c_prev({batch, h_dim});
  MMHAR_CHECK(input.size() == batch * steps * input_dim_);

  for (std::size_t t = 0; t < steps; ++t) {
    Tensor& z = gates_[t];
    // z = x_t W_x^T + h_{t-1} W_h^T + b
    const float* x_t = input.data() + t * input_dim_;
    // Gather x_t rows (strided by T*D per batch element) into a buffer.
    Tensor x_step({batch, input_dim_});
    for (std::size_t b = 0; b < batch; ++b) {
      const float* src = x_t + b * steps * input_dim_;
      std::copy(src, src + input_dim_, x_step.data() + b * input_dim_);
    }
    sgemm_bt(batch, input_dim_, g4, 1.0F, x_step.data(), w_x_.data(), 0.0F,
             z.data());
    sgemm_bt(batch, h_dim, g4, 1.0F, h_prev.data(), w_h_.data(), 1.0F,
             z.data());
    MMHAR_CHECK(z.size() == batch * g4);
    for (std::size_t b = 0; b < batch; ++b) {
      float* zr = z.data() + b * g4;
      for (std::size_t j = 0; j < g4; ++j) zr[j] += bias_[j];
    }
    // Nonlinearities and state update.
    Tensor& c = cells_[t];
    Tensor& h = hiddens_[t];
    MMHAR_CHECK(c_prev.size() == batch * h_dim && c.size() == batch * h_dim &&
                h.size() == batch * h_dim);
    for (std::size_t b = 0; b < batch; ++b) {
      float* zr = z.data() + b * g4;
      const float* cp = c_prev.data() + b * h_dim;
      float* cr = c.data() + b * h_dim;
      float* hr = h.data() + b * h_dim;
      for (std::size_t j = 0; j < h_dim; ++j) {
        const float ig = sigmoidf(zr[j]);
        const float fg = sigmoidf(zr[h_dim + j]);
        const float gg = std::tanh(zr[2 * h_dim + j]);
        const float og = sigmoidf(zr[3 * h_dim + j]);
        zr[j] = ig;
        zr[h_dim + j] = fg;
        zr[2 * h_dim + j] = gg;
        zr[3 * h_dim + j] = og;
        cr[j] = fg * cp[j] + ig * gg;
        hr[j] = og * std::tanh(cr[j]);
      }
    }
    h_prev = h;
    c_prev = c;
  }

  if (!return_sequence_) return hiddens_.back();
  Tensor out({batch, steps, h_dim});
  MMHAR_CHECK(out.size() == batch * steps * h_dim && hiddens_.size() == steps);
  for (std::size_t t = 0; t < steps; ++t)
    for (std::size_t b = 0; b < batch; ++b)
      std::copy(hiddens_[t].data() + b * h_dim,
                hiddens_[t].data() + (b + 1) * h_dim,
                out.data() + (b * steps + t) * h_dim);
  return out;
}

Tensor LSTM::backward(const Tensor& grad_output) {
  const std::size_t batch = input_.dim(0);
  const std::size_t steps = input_.dim(1);
  const std::size_t h_dim = hidden_dim_;
  const std::size_t g4 = 4 * h_dim;

  Tensor grad_input({batch, steps, input_dim_});
  Tensor dh({batch, h_dim});
  Tensor dc({batch, h_dim});

  // Seed dh (and per-step additions for sequence outputs).
  const auto grad_h_at = [&](std::size_t t, std::size_t b,
                             std::size_t j) -> float {
    if (return_sequence_)
      return grad_output[(b * steps + t) * h_dim + j];
    return t == steps - 1 ? grad_output[b * h_dim + j] : 0.0F;
  };

  Tensor dz({batch, g4});
  Tensor x_step({batch, input_dim_});
  Tensor dx_step({batch, input_dim_});

  for (std::size_t t = steps; t-- > 0;) {
    const Tensor& z = gates_[t];
    const Tensor& c = cells_[t];
    const Tensor* c_prev = t > 0 ? &cells_[t - 1] : nullptr;
    const Tensor* h_prev = t > 0 ? &hiddens_[t - 1] : nullptr;

    MMHAR_CHECK(z.size() == batch * g4 && c.size() == batch * h_dim);
    for (std::size_t b = 0; b < batch; ++b) {
      const float* zr = z.data() + b * g4;
      const float* cr = c.data() + b * h_dim;
      float* dhr = dh.data() + b * h_dim;
      float* dcr = dc.data() + b * h_dim;
      float* dzr = dz.data() + b * g4;
      for (std::size_t j = 0; j < h_dim; ++j) {
        const float ig = zr[j];
        const float fg = zr[h_dim + j];
        const float gg = zr[2 * h_dim + j];
        const float og = zr[3 * h_dim + j];
        const float tc = std::tanh(cr[j]);
        const float dh_total = dhr[j] + grad_h_at(t, b, j);
        const float dc_total = dcr[j] + dh_total * og * (1.0F - tc * tc);
        const float cp = c_prev != nullptr ? c_prev->at(b, j) : 0.0F;
        dzr[j] = dc_total * gg * ig * (1.0F - ig);              // d i
        dzr[h_dim + j] = dc_total * cp * fg * (1.0F - fg);      // d f
        dzr[2 * h_dim + j] = dc_total * ig * (1.0F - gg * gg);  // d g
        dzr[3 * h_dim + j] = dh_total * tc * og * (1.0F - og);  // d o
        dcr[j] = dc_total * fg;  // carries to t-1
      }
    }

    // Parameter gradients.
    MMHAR_CHECK(input_.size() == batch * steps * input_dim_);
    for (std::size_t b = 0; b < batch; ++b) {
      const float* src = input_.data() + (b * steps + t) * input_dim_;
      std::copy(src, src + input_dim_, x_step.data() + b * input_dim_);
    }
    sgemm_at(g4, batch, input_dim_, 1.0F, dz.data(), x_step.data(), 1.0F,
             grad_w_x_.data());
    if (h_prev != nullptr) {
      sgemm_at(g4, batch, h_dim, 1.0F, dz.data(), h_prev->data(), 1.0F,
               grad_w_h_.data());
    }
    MMHAR_CHECK(dz.size() == batch * g4);
    for (std::size_t b = 0; b < batch; ++b) {
      const float* dzr = dz.data() + b * g4;
      for (std::size_t j = 0; j < g4; ++j) grad_bias_[j] += dzr[j];
    }

    // Input gradient for this step.
    sgemm(batch, g4, input_dim_, 1.0F, dz.data(), w_x_.data(), 0.0F,
          dx_step.data());
    MMHAR_CHECK(grad_input.size() == batch * steps * input_dim_);
    for (std::size_t b = 0; b < batch; ++b)
      std::copy(dx_step.data() + b * input_dim_,
                dx_step.data() + (b + 1) * input_dim_,
                grad_input.data() + (b * steps + t) * input_dim_);

    // dh for t-1: dz * W_h.
    if (t > 0) {
      sgemm(batch, g4, h_dim, 1.0F, dz.data(), w_h_.data(), 0.0F, dh.data());
    }
  }
  return grad_input;
}

}  // namespace mmhar::nn
