#include "nn/optimizer.h"

#include <cmath>

#include "common/check.h"

namespace mmhar::nn {

Sgd::Sgd(float lr, float momentum, float weight_decay)
    : lr_(lr), momentum_(momentum), weight_decay_(weight_decay) {
  MMHAR_REQUIRE(lr > 0.0F, "learning rate must be positive");
}

void Sgd::step(const std::vector<Tensor*>& params,
               const std::vector<Tensor*>& grads) {
  MMHAR_REQUIRE(params.size() == grads.size(), "param/grad list mismatch");
  if (velocity_.empty()) {
    velocity_.reserve(params.size());
    for (const Tensor* p : params) velocity_.emplace_back(p->shape());
  }
  MMHAR_CHECK(velocity_.size() == params.size());
  for (std::size_t i = 0; i < params.size(); ++i) {
    Tensor& p = *params[i];
    const Tensor& g = *grads[i];
    Tensor& v = velocity_[i];
    MMHAR_CHECK(p.same_shape(g) && p.same_shape(v));
    for (std::size_t j = 0; j < p.size(); ++j) {
      v[j] = momentum_ * v[j] + g[j];
      p[j] -= lr_ * (v[j] + weight_decay_ * p[j]);
    }
  }
}

Adam::Adam(float lr, float beta1, float beta2, float eps, float weight_decay)
    : lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  MMHAR_REQUIRE(lr > 0.0F, "learning rate must be positive");
}

void Adam::step(const std::vector<Tensor*>& params,
                const std::vector<Tensor*>& grads) {
  MMHAR_REQUIRE(params.size() == grads.size(), "param/grad list mismatch");
  if (m_.empty()) {
    m_.reserve(params.size());
    v_.reserve(params.size());
    for (const Tensor* p : params) {
      m_.emplace_back(p->shape());
      v_.emplace_back(p->shape());
    }
  }
  MMHAR_CHECK(m_.size() == params.size());
  ++step_count_;
  const float bc1 =
      1.0F - std::pow(beta1_, static_cast<float>(step_count_));
  const float bc2 =
      1.0F - std::pow(beta2_, static_cast<float>(step_count_));

  for (std::size_t i = 0; i < params.size(); ++i) {
    Tensor& p = *params[i];
    const Tensor& g = *grads[i];
    Tensor& m = m_[i];
    Tensor& v = v_[i];
    MMHAR_CHECK(p.same_shape(g) && p.same_shape(m));
    for (std::size_t j = 0; j < p.size(); ++j) {
      m[j] = beta1_ * m[j] + (1.0F - beta1_) * g[j];
      v[j] = beta2_ * v[j] + (1.0F - beta2_) * g[j] * g[j];
      const float m_hat = m[j] / bc1;
      const float v_hat = v[j] / bc2;
      p[j] -=
          lr_ * (m_hat / (std::sqrt(v_hat) + eps_) + weight_decay_ * p[j]);
    }
  }
}

void Adam::save(BinaryWriter& w) const {
  w.write_i64(step_count_);
  w.write_u64(m_.size());
  for (const Tensor& m : m_) m.save(w);
  for (const Tensor& v : v_) v.save(w);
}

void Adam::load(BinaryReader& r) {
  step_count_ = static_cast<long>(r.read_i64());
  const auto n = r.read_u64();
  m_.clear();
  v_.clear();
  m_.reserve(n);
  v_.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) m_.push_back(Tensor::load(r));
  for (std::uint64_t i = 0; i < n; ++i) v_.push_back(Tensor::load(r));
}

float clip_gradient_norm(const std::vector<Tensor*>& grads, float max_norm) {
  MMHAR_REQUIRE(max_norm > 0.0F, "max_norm must be positive");
  double total = 0.0;
  for (const Tensor* g : grads)
    for (const float x : g->flat()) total += static_cast<double>(x) * x;
  const float norm = static_cast<float>(std::sqrt(total));
  if (norm > max_norm) {
    const float scale = max_norm / norm;
    for (Tensor* g : grads) *g *= scale;
  }
  return norm;
}

}  // namespace mmhar::nn
