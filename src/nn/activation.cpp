#include "nn/activation.h"

#include <cmath>

namespace mmhar::nn {

Tensor ReLU::forward(const Tensor& input, bool /*training*/) {
  mask_ = Tensor(input.shape());
  Tensor out = input;
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (out[i] > 0.0F) {
      mask_[i] = 1.0F;
    } else {
      out[i] = 0.0F;
    }
  }
  return out;
}

Tensor ReLU::backward(const Tensor& grad_output) {
  MMHAR_REQUIRE(grad_output.same_shape(mask_), "ReLU backward shape mismatch");
  Tensor g = grad_output;
  g.mul_elementwise(mask_);
  return g;
}

Tensor Tanh::forward(const Tensor& input, bool /*training*/) {
  output_ = input;
  for (auto& v : output_.flat()) v = std::tanh(v);
  return output_;
}

Tensor Tanh::backward(const Tensor& grad_output) {
  MMHAR_REQUIRE(grad_output.same_shape(output_),
                "Tanh backward shape mismatch");
  Tensor g = grad_output;
  for (std::size_t i = 0; i < g.size(); ++i)
    g[i] *= 1.0F - output_[i] * output_[i];
  return g;
}

Dropout::Dropout(double p, Rng& rng) : p_(p), rng_(rng.fork(0xD70D)) {
  MMHAR_REQUIRE(p >= 0.0 && p < 1.0, "dropout p must be in [0, 1)");
}

Tensor Dropout::forward(const Tensor& input, bool training) {
  last_training_ = training;
  if (!training || p_ == 0.0) return input;
  mask_ = Tensor(input.shape());
  const float keep_scale = static_cast<float>(1.0 / (1.0 - p_));
  Tensor out = input;
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (rng_.bernoulli(p_)) {
      mask_[i] = 0.0F;
      out[i] = 0.0F;
    } else {
      mask_[i] = keep_scale;
      out[i] *= keep_scale;
    }
  }
  return out;
}

Tensor Dropout::backward(const Tensor& grad_output) {
  if (!last_training_ || p_ == 0.0) return grad_output;
  Tensor g = grad_output;
  g.mul_elementwise(mask_);
  return g;
}

}  // namespace mmhar::nn
