#include "nn/conv.h"

#include <cmath>
#include <limits>

#include "tensor/gemm.h"

namespace mmhar::nn {

Conv2D::Conv2D(std::size_t in_channels, std::size_t out_channels,
               std::size_t kernel, std::size_t stride, std::size_t padding,
               Rng& rng)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      padding_(padding) {
  MMHAR_REQUIRE(kernel >= 1 && stride >= 1, "bad conv geometry");
  const std::size_t fan_in = in_channels * kernel * kernel;
  const float stddev = std::sqrt(2.0F / static_cast<float>(fan_in));
  weight_ = Tensor::randn({out_channels, fan_in}, rng, 0.0F, stddev);
  bias_ = Tensor({out_channels});
  grad_weight_ = Tensor({out_channels, fan_in});
  grad_bias_ = Tensor({out_channels});
}

void Conv2D::im2col(const float* img, std::size_t h, std::size_t w,
                    float* col) const {
  // col layout: [C_in*K*K, OH*OW]
  const std::size_t oh = out_size(h);
  const std::size_t ow = out_size(w);
  const std::size_t ocells = oh * ow;
  std::size_t row = 0;
  for (std::size_t c = 0; c < in_channels_; ++c) {
    const float* plane = img + c * h * w;
    for (std::size_t ky = 0; ky < kernel_; ++ky) {
      for (std::size_t kx = 0; kx < kernel_; ++kx, ++row) {
        float* out = col + row * ocells;
        for (std::size_t oy = 0; oy < oh; ++oy) {
          const std::ptrdiff_t iy =
              static_cast<std::ptrdiff_t>(oy * stride_ + ky) -
              static_cast<std::ptrdiff_t>(padding_);
          for (std::size_t ox = 0; ox < ow; ++ox) {
            const std::ptrdiff_t ix =
                static_cast<std::ptrdiff_t>(ox * stride_ + kx) -
                static_cast<std::ptrdiff_t>(padding_);
            const bool inside = iy >= 0 && iy < static_cast<std::ptrdiff_t>(h) &&
                                ix >= 0 && ix < static_cast<std::ptrdiff_t>(w);
            out[oy * ow + ox] =
                inside ? plane[static_cast<std::size_t>(iy) * w +
                               static_cast<std::size_t>(ix)]
                       : 0.0F;
          }
        }
      }
    }
  }
}

void Conv2D::col2im(const float* col, std::size_t h, std::size_t w,
                    float* img) const {
  const std::size_t oh = out_size(h);
  const std::size_t ow = out_size(w);
  const std::size_t ocells = oh * ow;
  std::size_t row = 0;
  for (std::size_t c = 0; c < in_channels_; ++c) {
    float* plane = img + c * h * w;
    for (std::size_t ky = 0; ky < kernel_; ++ky) {
      for (std::size_t kx = 0; kx < kernel_; ++kx, ++row) {
        const float* in = col + row * ocells;
        for (std::size_t oy = 0; oy < oh; ++oy) {
          const std::ptrdiff_t iy =
              static_cast<std::ptrdiff_t>(oy * stride_ + ky) -
              static_cast<std::ptrdiff_t>(padding_);
          if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(h)) continue;
          for (std::size_t ox = 0; ox < ow; ++ox) {
            const std::ptrdiff_t ix =
                static_cast<std::ptrdiff_t>(ox * stride_ + kx) -
                static_cast<std::ptrdiff_t>(padding_);
            if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(w)) continue;
            plane[static_cast<std::size_t>(iy) * w +
                  static_cast<std::size_t>(ix)] += in[oy * ow + ox];
          }
        }
      }
    }
  }
}

Tensor Conv2D::forward(const Tensor& input, bool /*training*/) {
  MMHAR_REQUIRE(input.rank() == 4 && input.dim(1) == in_channels_,
                "Conv2D expects [B, " << in_channels_ << ", H, W], got "
                                      << input.shape_string());
  input_ = input;
  in_h_ = input.dim(2);
  in_w_ = input.dim(3);
  const std::size_t batch = input.dim(0);
  const std::size_t oh = out_size(in_h_);
  const std::size_t ow = out_size(in_w_);
  const std::size_t fan_in = in_channels_ * kernel_ * kernel_;
  const std::size_t ocells = oh * ow;

  Tensor output({batch, out_channels_, oh, ow});
  std::vector<float> col(fan_in * ocells);
  // The weight matrix is replayed against every im2col'd image: pack it
  // into microkernel panels once and reuse across the batch.
  const PackedA wpack = pack_a(out_channels_, fan_in, weight_.data());
  MMHAR_CHECK(input.size() == batch * in_channels_ * in_h_ * in_w_ &&
              output.size() == batch * out_channels_ * ocells);
  for (std::size_t b = 0; b < batch; ++b) {
    im2col(input.data() + b * in_channels_ * in_h_ * in_w_, in_h_, in_w_,
           col.data());
    float* out = output.data() + b * out_channels_ * ocells;
    sgemm_packed_a(wpack, ocells, 1.0F, col.data(), 0.0F, out);
    for (std::size_t oc = 0; oc < out_channels_; ++oc) {
      const float bv = bias_[oc];
      float* plane = out + oc * ocells;
      for (std::size_t i = 0; i < ocells; ++i) plane[i] += bv;
    }
  }
  return output;
}

Tensor Conv2D::backward(const Tensor& grad_output) {
  const std::size_t batch = input_.dim(0);
  const std::size_t oh = out_size(in_h_);
  const std::size_t ow = out_size(in_w_);
  const std::size_t ocells = oh * ow;
  const std::size_t fan_in = in_channels_ * kernel_ * kernel_;
  MMHAR_REQUIRE(grad_output.rank() == 4 && grad_output.dim(0) == batch &&
                    grad_output.dim(1) == out_channels_ &&
                    grad_output.dim(2) == oh && grad_output.dim(3) == ow,
                "Conv2D backward shape mismatch");

  Tensor grad_input({batch, in_channels_, in_h_, in_w_});
  std::vector<float> col(fan_in * ocells);
  std::vector<float> gcol(fan_in * ocells);
  // W^T is likewise shared by every image's input-gradient product.
  const PackedA wtpack = pack_at(fan_in, out_channels_, weight_.data());

  MMHAR_CHECK(grad_output.size() == batch * out_channels_ * ocells &&
              input_.size() == batch * in_channels_ * in_h_ * in_w_ &&
              grad_input.size() == input_.size());
  for (std::size_t b = 0; b < batch; ++b) {
    const float* gout = grad_output.data() + b * out_channels_ * ocells;
    const float* in_img = input_.data() + b * in_channels_ * in_h_ * in_w_;
    float* gin_img = grad_input.data() + b * in_channels_ * in_h_ * in_w_;
    // Bias gradient.
    for (std::size_t oc = 0; oc < out_channels_; ++oc) {
      const float* plane = gout + oc * ocells;
      float acc = 0.0F;
      for (std::size_t i = 0; i < ocells; ++i) acc += plane[i];
      grad_bias_[oc] += acc;
    }
    // Weight gradient: gW += gout[ocells layout] * col^T.
    im2col(in_img, in_h_, in_w_, col.data());
    sgemm_bt(out_channels_, ocells, fan_in, 1.0F, gout, col.data(), 1.0F,
             grad_weight_.data());
    // Input gradient: gcol = W^T * gout, then scatter with col2im.
    sgemm_packed_a(wtpack, ocells, 1.0F, gout, 0.0F, gcol.data());
    col2im(gcol.data(), in_h_, in_w_, gin_img);
  }
  return grad_input;
}

MaxPool2D::MaxPool2D(std::size_t window) : window_(window) {
  MMHAR_REQUIRE(window >= 2, "pool window must be >= 2");
}

Tensor MaxPool2D::forward(const Tensor& input, bool /*training*/) {
  MMHAR_REQUIRE(input.rank() == 4, "MaxPool2D expects [B, C, H, W]");
  const std::size_t batch = input.dim(0);
  const std::size_t ch = input.dim(1);
  const std::size_t h = input.dim(2);
  const std::size_t w = input.dim(3);
  MMHAR_REQUIRE(h % window_ == 0 && w % window_ == 0,
                "pool window must divide spatial dims");
  const std::size_t oh = h / window_;
  const std::size_t ow = w / window_;

  in_shape_ = input.shape();
  Tensor output({batch, ch, oh, ow});
  argmax_.assign(output.size(), 0);

  MMHAR_CHECK(input.size() == batch * ch * h * w &&
              output.size() == batch * ch * oh * ow);
  for (std::size_t bc = 0; bc < batch * ch; ++bc) {
    const float* plane = input.data() + bc * h * w;
    float* out = output.data() + bc * oh * ow;
    std::size_t* arg = argmax_.data() + bc * oh * ow;
    for (std::size_t oy = 0; oy < oh; ++oy) {
      for (std::size_t ox = 0; ox < ow; ++ox) {
        float best = -std::numeric_limits<float>::infinity();
        std::size_t best_idx = 0;
        for (std::size_t dy = 0; dy < window_; ++dy) {
          for (std::size_t dx = 0; dx < window_; ++dx) {
            const std::size_t idx =
                (oy * window_ + dy) * w + ox * window_ + dx;
            if (plane[idx] > best) {
              best = plane[idx];
              best_idx = idx;
            }
          }
        }
        out[oy * ow + ox] = best;
        arg[oy * ow + ox] = bc * h * w + best_idx;
      }
    }
  }
  return output;
}

Tensor MaxPool2D::backward(const Tensor& grad_output) {
  Tensor grad_input(in_shape_);
  MMHAR_REQUIRE(grad_output.size() == argmax_.size(),
                "MaxPool2D backward shape mismatch");
  for (std::size_t i = 0; i < argmax_.size(); ++i)
    grad_input[argmax_[i]] += grad_output[i];
  return grad_input;
}

Tensor Flatten::forward(const Tensor& input, bool /*training*/) {
  MMHAR_REQUIRE(input.rank() >= 2, "Flatten expects batched input");
  in_shape_ = input.shape();
  std::size_t d = 1;
  for (std::size_t i = 1; i < in_shape_.size(); ++i) d *= in_shape_[i];
  return input.reshaped({in_shape_[0], d});
}

Tensor Flatten::backward(const Tensor& grad_output) {
  return grad_output.reshaped(in_shape_);
}

}  // namespace mmhar::nn
