// Fully connected layer.
#pragma once

#include "nn/layer.h"

namespace mmhar::nn {

/// y = x W^T + b over [B, in] -> [B, out]. Weight layout [out, in],
/// Xavier-uniform initialization.
class Dense : public Layer {
 public:
  Dense(std::size_t in_features, std::size_t out_features, Rng& rng);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Tensor*> parameters() override { return {&weight_, &bias_}; }
  std::vector<Tensor*> gradients() override {
    return {&grad_weight_, &grad_bias_};
  }
  std::string name() const override { return "Dense"; }

  std::size_t in_features() const { return in_; }
  std::size_t out_features() const { return out_; }

 private:
  std::size_t in_;
  std::size_t out_;
  Tensor weight_;
  Tensor bias_;
  Tensor grad_weight_;
  Tensor grad_bias_;
  Tensor input_;
};

}  // namespace mmhar::nn
