#include "nn/loss.h"

#include <cmath>

#include "common/check.h"
#include "tensor/ops.h"

namespace mmhar::nn {

LossResult softmax_cross_entropy(const Tensor& logits,
                                 const std::vector<std::size_t>& labels) {
  MMHAR_REQUIRE(logits.rank() == 2, "expected [B, C] logits");
  const std::size_t batch = logits.dim(0);
  const std::size_t classes = logits.dim(1);
  MMHAR_REQUIRE(labels.size() == batch, "labels/batch mismatch");

  LossResult result;
  result.probabilities = softmax_rows(logits);
  result.grad_logits = result.probabilities;

  double loss = 0.0;
  const float inv_b = 1.0F / static_cast<float>(batch);
  for (std::size_t b = 0; b < batch; ++b) {
    const std::size_t y = labels[b];
    MMHAR_REQUIRE(y < classes, "label " << y << " out of range");
    const float p = result.probabilities.at(b, y);
    loss -= std::log(std::max(p, 1e-12F));
    result.grad_logits.at(b, y) -= 1.0F;
  }
  result.grad_logits *= inv_b;
  result.loss = static_cast<float>(loss / static_cast<double>(batch));
  return result;
}

float accuracy(const Tensor& logits, const std::vector<std::size_t>& labels) {
  MMHAR_REQUIRE(logits.rank() == 2 && logits.dim(0) == labels.size(),
                "accuracy shape mismatch");
  const std::size_t batch = logits.dim(0);
  const std::size_t classes = logits.dim(1);
  std::size_t correct = 0;
  for (std::size_t b = 0; b < batch; ++b) {
    const float* row = logits.data() + b * classes;
    std::size_t best = 0;
    for (std::size_t c = 1; c < classes; ++c)
      if (row[c] > row[best]) best = c;
    if (best == labels[b]) ++correct;
  }
  return batch == 0 ? 0.0F
                    : static_cast<float>(correct) / static_cast<float>(batch);
}

}  // namespace mmhar::nn
