#include "nn/dense.h"

#include <cmath>

#include "tensor/gemm.h"

namespace mmhar::nn {

Dense::Dense(std::size_t in_features, std::size_t out_features, Rng& rng)
    : in_(in_features), out_(out_features) {
  MMHAR_REQUIRE(in_ > 0 && out_ > 0, "Dense dims must be positive");
  const float limit =
      std::sqrt(6.0F / static_cast<float>(in_features + out_features));
  weight_ = Tensor::rand_uniform({out_, in_}, rng, -limit, limit);
  bias_ = Tensor({out_});
  grad_weight_ = Tensor({out_, in_});
  grad_bias_ = Tensor({out_});
}

Tensor Dense::forward(const Tensor& input, bool /*training*/) {
  MMHAR_REQUIRE(input.rank() == 2 && input.dim(1) == in_,
                "Dense expects [B, " << in_ << "], got "
                                     << input.shape_string());
  input_ = input;
  const std::size_t batch = input.dim(0);
  Tensor output({batch, out_});
  // y = x * W^T
  sgemm_bt(batch, in_, out_, 1.0F, input.data(), weight_.data(), 0.0F,
           output.data());
  for (std::size_t b = 0; b < batch; ++b) {
    float* row = output.data() + b * out_;
    for (std::size_t o = 0; o < out_; ++o) row[o] += bias_[o];
  }
  return output;
}

Tensor Dense::backward(const Tensor& grad_output) {
  const std::size_t batch = input_.dim(0);
  MMHAR_REQUIRE(grad_output.rank() == 2 && grad_output.dim(0) == batch &&
                    grad_output.dim(1) == out_,
                "Dense backward shape mismatch");
  // gW += gy^T * x  ([out, in])
  sgemm_at(out_, batch, in_, 1.0F, grad_output.data(), input_.data(), 1.0F,
           grad_weight_.data());
  // gb += column sums of gy
  for (std::size_t b = 0; b < batch; ++b) {
    const float* row = grad_output.data() + b * out_;
    for (std::size_t o = 0; o < out_; ++o) grad_bias_[o] += row[o];
  }
  // gx = gy * W  ([B, in])
  Tensor grad_input({batch, in_});
  sgemm(batch, out_, in_, 1.0F, grad_output.data(), weight_.data(), 0.0F,
        grad_input.data());
  return grad_input;
}

}  // namespace mmhar::nn
