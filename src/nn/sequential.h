// Layer container executing members in order.
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "common/finite_check.h"
#include "common/thread_annotations.h"
#include "nn/layer.h"

namespace mmhar::nn {

class Sequential : public Layer {
 public:
  Sequential() = default;

  /// Append a layer; returns *this for chaining.
  Sequential& add(LayerPtr layer) {
    MMHAR_REQUIRE(layer != nullptr, "null layer");
    layers_.push_back(std::move(layer));
    return *this;
  }

  template <typename L, typename... Args>
  Sequential& emplace(Args&&... args) {
    return add(std::make_unique<L>(std::forward<Args>(args)...));
  }

  std::size_t num_layers() const { return layers_.size(); }
  Layer& layer(std::size_t i) {
    MMHAR_CHECK(i < layers_.size());
    return *layers_[i];
  }

  Tensor forward(const Tensor& input, bool training) MMHAR_DETERMINISTIC
      override {
    Tensor x = input;
    for (auto& l : layers_) {
      x = l->forward(x, training);
      if (finite_checks_enabled())
        check_finite(x.flat(), l->name().c_str(), "Sequential::forward");
    }
    return x;
  }

  Tensor backward(const Tensor& grad_output) MMHAR_DETERMINISTIC override {
    Tensor g = grad_output;
    for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
      g = (*it)->backward(g);
      if (finite_checks_enabled())
        check_finite(g.flat(), (*it)->name().c_str(), "Sequential::backward");
    }
    return g;
  }

  std::vector<Tensor*> parameters() override {
    std::vector<Tensor*> all;
    for (auto& l : layers_)
      for (Tensor* p : l->parameters()) all.push_back(p);
    return all;
  }

  std::vector<Tensor*> gradients() override {
    std::vector<Tensor*> all;
    for (auto& l : layers_)
      for (Tensor* g : l->gradients()) all.push_back(g);
    return all;
  }

  std::string name() const override { return "Sequential"; }

  void save(BinaryWriter& w) const override {
    for (const auto& l : layers_) l->save(w);
  }
  void load(BinaryReader& r) override {
    for (auto& l : layers_) l->load(r);
  }

 private:
  std::vector<LayerPtr> layers_;
};

}  // namespace mmhar::nn
