// Layer interface for the from-scratch neural-network library.
//
// Design notes:
//  * Layers are stateful: `forward` caches whatever `backward` needs, so a
//    layer instance serves one in-flight (forward, backward) pair at a
//    time. Training is single-threaded at the layer level; parallelism
//    lives inside the GEMM kernels.
//  * All activations flow as batched tensors: [B, C, H, W] for image
//    layers, [B, D] for dense layers, [B, T, D] for recurrent layers.
//  * Parameters and their gradients are exposed as parallel lists so the
//    optimizers stay layer-agnostic.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/serialize.h"
#include "tensor/tensor.h"

namespace mmhar::nn {

class Layer {
 public:
  virtual ~Layer() = default;

  /// Compute the layer output. `training` toggles dropout-style behavior.
  virtual Tensor forward(const Tensor& input, bool training) = 0;

  /// Given dLoss/dOutput, accumulate parameter gradients and return
  /// dLoss/dInput. Must be preceded by a matching forward().
  virtual Tensor backward(const Tensor& grad_output) = 0;

  /// Trainable parameters (empty for stateless layers).
  virtual std::vector<Tensor*> parameters() { return {}; }

  /// Gradient buffers, parallel to parameters().
  virtual std::vector<Tensor*> gradients() { return {}; }

  /// Zero all gradient buffers.
  void zero_gradients() {
    for (Tensor* g : gradients()) g->zero();
  }

  virtual std::string name() const = 0;

  /// Serialize parameters (not activations/caches).
  virtual void save(BinaryWriter& w) const {
    for (const Tensor* p : const_cast<Layer*>(this)->parameters())
      p->save(w);
  }
  virtual void load(BinaryReader& r) {
    for (Tensor* p : parameters()) *p = Tensor::load(r);
  }
};

using LayerPtr = std::unique_ptr<Layer>;

/// Total number of scalar parameters across a layer list.
inline std::size_t parameter_count(const std::vector<Tensor*>& params) {
  std::size_t n = 0;
  for (const Tensor* p : params) n += p->size();
  return n;
}

}  // namespace mmhar::nn
