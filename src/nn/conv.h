// 2-D convolution and max-pooling layers (im2col + GEMM formulation).
#pragma once

#include <cstddef>

#include "nn/layer.h"

namespace mmhar::nn {

/// Conv2D over [B, C_in, H, W] -> [B, C_out, H_out, W_out].
/// Weight layout: [C_out, C_in * K * K]; He-normal initialization.
class Conv2D : public Layer {
 public:
  Conv2D(std::size_t in_channels, std::size_t out_channels,
         std::size_t kernel, std::size_t stride, std::size_t padding,
         Rng& rng);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Tensor*> parameters() override { return {&weight_, &bias_}; }
  std::vector<Tensor*> gradients() override {
    return {&grad_weight_, &grad_bias_};
  }
  std::string name() const override { return "Conv2D"; }

  std::size_t out_size(std::size_t in) const {
    return (in + 2 * padding_ - kernel_) / stride_ + 1;
  }

 private:
  void im2col(const float* img, std::size_t h, std::size_t w,
              float* col) const;
  void col2im(const float* col, std::size_t h, std::size_t w,
              float* img) const;

  std::size_t in_channels_;
  std::size_t out_channels_;
  std::size_t kernel_;
  std::size_t stride_;
  std::size_t padding_;

  Tensor weight_;
  Tensor bias_;
  Tensor grad_weight_;
  Tensor grad_bias_;

  // Forward cache.
  Tensor input_;
  std::size_t in_h_ = 0;
  std::size_t in_w_ = 0;
};

/// Non-overlapping 2x2 max pooling.
class MaxPool2D : public Layer {
 public:
  explicit MaxPool2D(std::size_t window = 2);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "MaxPool2D"; }

 private:
  std::size_t window_;
  std::vector<std::size_t> argmax_;  // flat input index per output cell
  std::vector<std::size_t> in_shape_;
};

/// Collapse [B, C, H, W] -> [B, C*H*W].
class Flatten : public Layer {
 public:
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "Flatten"; }

 private:
  std::vector<std::size_t> in_shape_;
};

}  // namespace mmhar::nn
