#include "core/experiment.h"

#include <cmath>
#include <iomanip>
#include <sstream>

#include "common/env.h"
#include "common/logging.h"

namespace mmhar::core {

ExperimentSetup ExperimentSetup::standard() {
  ExperimentSetup s;
  s.train_generator.environment = radar::EnvironmentKind::Hallway;
  s.attack_generator = s.train_generator;
  s.attack_generator.environment = radar::EnvironmentKind::Classroom;

  const auto reps_train =
      static_cast<std::size_t>(env_int("MMHAR_REPS_TRAIN", 2));
  const auto reps_test =
      static_cast<std::size_t>(env_int("MMHAR_REPS_TEST", 1));

  s.train_grid.repetitions = reps_train;
  s.train_grid.repetition_offset = 0;

  s.test_grid = s.train_grid;
  s.test_grid.repetitions = reps_test;
  s.test_grid.repetition_offset = 100;

  s.attack_grid = s.test_grid;
  s.attack_grid.repetition_offset = 500;

  // Laptop-scale model (raise for paper-scale runs); accuracy ~96-97%
  // versus the paper's 99.4% with 40x more training data.
  s.model.seed = 42;
  s.model.conv1_channels = 6;
  s.model.conv2_channels = 12;
  s.model.feature_dim = 48;
  s.model.lstm_hidden = 48;
  s.training.epochs = static_cast<std::size_t>(env_int("MMHAR_EPOCHS", 20));
  s.training.batch_size = 8;
  s.training.weight_decay = 0.0F;
  s.training.verbose = env_int("MMHAR_VERBOSE", 0) != 0;

  s.repeats = static_cast<std::size_t>(env_int("MMHAR_REPEATS", 2));
  s.cache_dir = env_string("MMHAR_CACHE_DIR", ".mmhar_cache");
  return s;
}

AttackExperiment::AttackExperiment(ExperimentSetup setup)
    : setup_(std::move(setup)),
      train_gen_(setup_.train_generator),
      attack_gen_(setup_.attack_generator) {
  MMHAR_REQUIRE(setup_.repeats >= 1, "need at least one repeat");
}

const har::Dataset& AttackExperiment::train_set() {
  if (!train_set_) {
    train_set_ = har::load_or_build_dataset(train_gen_, setup_.train_grid,
                                            setup_.cache_dir);
  }
  return *train_set_;
}

const har::Dataset& AttackExperiment::test_set() {
  if (!test_set_) {
    test_set_ = har::load_or_build_dataset(train_gen_, setup_.test_grid,
                                           setup_.cache_dir);
  }
  return *test_set_;
}

har::HarModel AttackExperiment::train_fresh(const har::Dataset& data,
                                            std::uint64_t seed) {
  har::HarModelConfig mc = setup_.model;
  mc.seed = seed;
  har::HarModel model(mc);
  har::TrainConfig tc = setup_.training;
  tc.seed = seed ^ 0x5EEDULL;
  har::train_model(model, data, tc);
  return model;
}

har::HarModel AttackExperiment::load_or_train_clean(std::uint64_t seed,
                                                    const std::string& tag) {
  ensure_directory(setup_.cache_dir);
  Hasher h;
  setup_.train_generator.hash_into(h);
  setup_.train_grid.hash_into(h);
  h.mix(setup_.model.frames)
      .mix(setup_.model.conv1_channels)
      .mix(setup_.model.conv2_channels)
      .mix(setup_.model.feature_dim)
      .mix(setup_.model.lstm_hidden)
      .mix(setup_.training.epochs)
      .mix(setup_.training.batch_size)
      .mix(static_cast<double>(setup_.training.learning_rate))
      .mix(seed)
      .mix(tag);
  const std::string path = setup_.cache_dir + "/model_" + h.hex() + ".bin";

  har::HarModelConfig mc = setup_.model;
  mc.seed = seed;
  har::HarModel model(mc);
  if (file_exists(path)) {
    model.load(path);
    return model;
  }
  MMHAR_LOG(Info) << "training " << tag << " model ("
                  << model.parameter_count() << " parameters)";
  har::TrainConfig tc = setup_.training;
  tc.seed = seed ^ 0x5EEDULL;
  har::train_model(model, train_set(), tc);
  model.save(path);
  return model;
}

har::HarModel& AttackExperiment::surrogate() {
  if (!surrogate_)
    surrogate_ = load_or_train_clean(setup_.model.seed ^ 0x5A5AULL,
                                     "surrogate");
  return *surrogate_;
}

har::HarModel& AttackExperiment::clean_model() {
  if (!clean_model_)
    clean_model_ = load_or_train_clean(setup_.model.seed, "clean");
  return *clean_model_;
}

AttackExperiment::PlanKey AttackExperiment::plan_key(
    const AttackPoint& point) const {
  return {point.victim, point.target,
          std::lround(point.trigger.width_m * 1e6),
          static_cast<int>(point.frame_selection),
          point.optimize_position ? 1 : 0};
}

const BackdoorPlan& AttackExperiment::plan_for(const AttackPoint& point) {
  const PlanKey key = plan_key(point);
  auto it = plans_.find(key);
  if (it != plans_.end()) return it->second;

  BackdoorAttackConfig cfg;
  cfg.victim_label = point.victim;
  cfg.target_label = point.target;
  cfg.trigger = point.trigger;
  // Position is planned once against the top-8 reference frames; the
  // per-point frame count is applied later by frames_for().
  cfg.poisoned_frames = 8;
  cfg.frame_selection = point.frame_selection;
  cfg.optimize_position = point.optimize_position;
  cfg.objective = setup_.objective;
  cfg.shap = setup_.shap;
  cfg.reference_spec.participant = 0;
  cfg.reference_spec.distance_m = 1.6;
  cfg.reference_spec.angle_deg = 0.0;
  cfg.reference_spec.seed = setup_.train_grid.seed;

  BackdoorAttack attack(train_gen_, surrogate(), cfg);
  auto [ins, ok] = plans_.emplace(key, attack.plan(train_set()));
  MMHAR_CHECK(ok);
  return ins->second;
}

har::Dataset AttackExperiment::attack_test_set(const AttackPoint& point) {
  const BackdoorPlan& plan = plan_for(point);
  const har::DatasetConfig grid = point.attack_grid_override
                                      ? *point.attack_grid_override
                                      : setup_.attack_grid;
  return load_or_build_triggered_twins(attack_gen_, grid, point.victim,
                                       plan.placement, setup_.cache_dir);
}

std::vector<std::size_t> AttackExperiment::frames_for(
    const BackdoorPlan& plan, const AttackPoint& point) {
  if (point.frame_selection == FrameSelection::FirstK) {
    std::vector<std::size_t> first(point.poisoned_frames);
    for (std::size_t i = 0; i < first.size(); ++i) first[i] = i;
    return first;
  }
  return xai::top_k_by_magnitude(plan.mean_abs_shap, point.poisoned_frames);
}

std::pair<har::HarModel, AttackMetrics> AttackExperiment::run_single(
    const AttackPoint& point, std::uint64_t repeat_index) {
  BackdoorPlan plan = plan_for(point);
  plan.frames = frames_for(plan, point);

  BackdoorAttackConfig cfg;
  cfg.victim_label = point.victim;
  cfg.target_label = point.target;
  cfg.trigger = point.trigger;
  cfg.poisoned_frames = point.poisoned_frames;
  cfg.frame_selection = point.frame_selection;
  cfg.optimize_position = point.optimize_position;
  cfg.objective = setup_.objective;
  cfg.shap = setup_.shap;
  BackdoorAttack attack(train_gen_, surrogate(), cfg);

  const PoisonResult poisoned =
      attack.poison(train_set(), setup_.train_grid, plan,
                    point.injection_rate, 11 + repeat_index);

  har::HarModel model =
      train_fresh(poisoned.dataset, setup_.model.seed + 1000 + repeat_index);

  const har::Dataset attack_test = attack_test_set(point);
  const AttackMetrics metrics = evaluate_attack(
      model, test_set(), attack_test, point.victim, point.target);
  return {std::move(model), metrics};
}

PointSummary AttackExperiment::run_point(const AttackPoint& point) {
  PointSummary summary;
  summary.repeats = setup_.repeats;

  std::vector<AttackMetrics> runs;
  runs.reserve(setup_.repeats);
  for (std::size_t r = 0; r < setup_.repeats; ++r)
    runs.push_back(run_single(point, r).second);

  const auto mean_of = [&](auto proj) {
    double acc = 0.0;
    for (const auto& m : runs) acc += proj(m);
    return acc / static_cast<double>(runs.size());
  };
  const auto std_of = [&](auto proj, double mean) {
    if (runs.size() < 2) return 0.0;
    double acc = 0.0;
    for (const auto& m : runs) {
      const double d = proj(m) - mean;
      acc += d * d;
    }
    return std::sqrt(acc / static_cast<double>(runs.size() - 1));
  };

  summary.mean.asr = mean_of([](const AttackMetrics& m) { return m.asr; });
  summary.mean.uasr = mean_of([](const AttackMetrics& m) { return m.uasr; });
  summary.mean.cdr = mean_of([](const AttackMetrics& m) { return m.cdr; });
  summary.mean.attack_samples = runs.front().attack_samples;
  summary.mean.clean_samples = runs.front().clean_samples;
  summary.stddev.asr =
      std_of([](const AttackMetrics& m) { return m.asr; }, summary.mean.asr);
  summary.stddev.uasr = std_of(
      [](const AttackMetrics& m) { return m.uasr; }, summary.mean.uasr);
  summary.stddev.cdr =
      std_of([](const AttackMetrics& m) { return m.cdr; }, summary.mean.cdr);
  return summary;
}

std::string pct(double fraction) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(1) << 100.0 * fraction;
  return os.str();
}

}  // namespace mmhar::core
