#include "core/experiment.h"

#include <cmath>
#include <iomanip>
#include <sstream>

#include "common/env.h"
#include "common/fault_injection.h"
#include "common/logging.h"
#include "common/serialize.h"

namespace mmhar::core {

ExperimentSetup ExperimentSetup::standard() {
  ExperimentSetup s;
  s.train_generator.environment = radar::EnvironmentKind::Hallway;
  s.attack_generator = s.train_generator;
  s.attack_generator.environment = radar::EnvironmentKind::Classroom;

  const auto reps_train =
      static_cast<std::size_t>(env_int("MMHAR_REPS_TRAIN", 2));
  const auto reps_test =
      static_cast<std::size_t>(env_int("MMHAR_REPS_TEST", 1));

  s.train_grid.repetitions = reps_train;
  s.train_grid.repetition_offset = 0;

  s.test_grid = s.train_grid;
  s.test_grid.repetitions = reps_test;
  s.test_grid.repetition_offset = 100;

  s.attack_grid = s.test_grid;
  s.attack_grid.repetition_offset = 500;

  // Laptop-scale model (raise for paper-scale runs); accuracy ~96-97%
  // versus the paper's 99.4% with 40x more training data.
  s.model.seed = 42;
  s.model.conv1_channels = 6;
  s.model.conv2_channels = 12;
  s.model.feature_dim = 48;
  s.model.lstm_hidden = 48;
  s.training.epochs = static_cast<std::size_t>(env_int("MMHAR_EPOCHS", 20));
  s.training.batch_size = 8;
  s.training.weight_decay = 0.0F;
  s.training.verbose = env_int("MMHAR_VERBOSE", 0) != 0;

  s.repeats = static_cast<std::size_t>(env_int("MMHAR_REPEATS", 2));
  s.cache_dir = env_string("MMHAR_CACHE_DIR", ".mmhar_cache");
  s.resume_sweeps = env_int("MMHAR_RESUME", 1) != 0;
  s.checkpoint_every =
      static_cast<std::size_t>(env_int("MMHAR_CHECKPOINT_EVERY", 1));
  return s;
}

AttackExperiment::AttackExperiment(ExperimentSetup setup)
    : setup_(std::move(setup)),
      train_gen_(setup_.train_generator),
      attack_gen_(setup_.attack_generator) {
  MMHAR_REQUIRE(setup_.repeats >= 1, "need at least one repeat");
}

const har::Dataset& AttackExperiment::train_set() {
  if (!train_set_) {
    train_set_ = har::load_or_build_dataset(train_gen_, setup_.train_grid,
                                            setup_.cache_dir);
  }
  return *train_set_;
}

const har::Dataset& AttackExperiment::test_set() {
  if (!test_set_) {
    test_set_ = har::load_or_build_dataset(train_gen_, setup_.test_grid,
                                           setup_.cache_dir);
  }
  return *test_set_;
}

har::HarModel AttackExperiment::train_fresh(const har::Dataset& data,
                                            std::uint64_t seed) {
  har::HarModelConfig mc = setup_.model;
  mc.seed = seed;
  har::HarModel model(mc);
  har::TrainConfig tc = setup_.training;
  tc.seed = seed ^ 0x5EEDULL;
  har::train_model(model, data, tc);
  return model;
}

har::HarModel AttackExperiment::load_or_train_clean(std::uint64_t seed,
                                                    const std::string& tag) {
  ensure_directory(setup_.cache_dir);
  Hasher h;
  setup_.train_generator.hash_into(h);
  setup_.train_grid.hash_into(h);
  h.mix(setup_.model.frames)
      .mix(setup_.model.conv1_channels)
      .mix(setup_.model.conv2_channels)
      .mix(setup_.model.feature_dim)
      .mix(setup_.model.lstm_hidden)
      .mix(setup_.training.epochs)
      .mix(setup_.training.batch_size)
      .mix(static_cast<double>(setup_.training.learning_rate))
      .mix(seed)
      .mix(tag);
  const std::string path = setup_.cache_dir + "/model_" + h.hex() + ".bin";

  har::HarModelConfig mc = setup_.model;
  mc.seed = seed;
  {
    har::HarModel model(mc);
    const LoadResult res = model.try_load(path);
    if (res.ok()) return model;
    if (res.status != LoadStatus::Missing) {
      MMHAR_LOG(Warn) << tag << " model cache " << path << " unusable ("
                      << load_status_name(res.status) << "), retraining";
    }
  }
  // Retrain from a freshly constructed model so the result is independent
  // of whatever the failed load did (try_load rolls back anyway).
  har::HarModel model(mc);
  MMHAR_LOG(Info) << "training " << tag << " model ("
                  << model.parameter_count() << " parameters)";
  har::TrainConfig tc = setup_.training;
  tc.seed = seed ^ 0x5EEDULL;
  if (setup_.checkpoint_every > 0) {
    tc.checkpoint_path = setup_.cache_dir + "/model_" + h.hex() + ".ckpt";
    tc.checkpoint_every = setup_.checkpoint_every;
    tc.checkpoint_salt = h.value();
  }
  har::train_model(model, train_set(), tc);
  try {
    model.save(path);
  } catch (const IoError& e) {
    MMHAR_LOG(Warn) << tag << " model cache write failed (" << e.what()
                    << "); continuing uncached";
  }
  return model;
}

har::HarModel& AttackExperiment::surrogate() {
  if (!surrogate_)
    surrogate_ = load_or_train_clean(setup_.model.seed ^ 0x5A5AULL,
                                     "surrogate");
  return *surrogate_;
}

har::HarModel& AttackExperiment::clean_model() {
  if (!clean_model_)
    clean_model_ = load_or_train_clean(setup_.model.seed, "clean");
  return *clean_model_;
}

AttackExperiment::PlanKey AttackExperiment::plan_key(
    const AttackPoint& point) const {
  return {point.victim, point.target,
          std::lround(point.trigger.width_m * 1e6),
          static_cast<int>(point.frame_selection),
          point.optimize_position ? 1 : 0};
}

const BackdoorPlan& AttackExperiment::plan_for(const AttackPoint& point) {
  const PlanKey key = plan_key(point);
  auto it = plans_.find(key);
  if (it != plans_.end()) return it->second;

  BackdoorAttackConfig cfg;
  cfg.victim_label = point.victim;
  cfg.target_label = point.target;
  cfg.trigger = point.trigger;
  // Position is planned once against the top-8 reference frames; the
  // per-point frame count is applied later by frames_for().
  cfg.poisoned_frames = 8;
  cfg.frame_selection = point.frame_selection;
  cfg.optimize_position = point.optimize_position;
  cfg.objective = setup_.objective;
  cfg.shap = setup_.shap;
  cfg.reference_spec.participant = 0;
  cfg.reference_spec.distance_m = 1.6;
  cfg.reference_spec.angle_deg = 0.0;
  cfg.reference_spec.seed = setup_.train_grid.seed;

  BackdoorAttack attack(train_gen_, surrogate(), cfg);
  auto [ins, ok] = plans_.emplace(key, attack.plan(train_set()));
  MMHAR_CHECK(ok);
  return ins->second;
}

har::Dataset AttackExperiment::attack_test_set(const AttackPoint& point) {
  const BackdoorPlan& plan = plan_for(point);
  const har::DatasetConfig grid = point.attack_grid_override
                                      ? *point.attack_grid_override
                                      : setup_.attack_grid;
  return load_or_build_triggered_twins(attack_gen_, grid, point.victim,
                                       plan.placement, setup_.cache_dir);
}

std::vector<std::size_t> AttackExperiment::frames_for(
    const BackdoorPlan& plan, const AttackPoint& point) {
  if (point.frame_selection == FrameSelection::FirstK) {
    std::vector<std::size_t> first(point.poisoned_frames);
    for (std::size_t i = 0; i < first.size(); ++i) first[i] = i;
    return first;
  }
  return xai::top_k_by_magnitude(plan.mean_abs_shap, point.poisoned_frames);
}

std::uint64_t AttackExperiment::point_hash(const AttackPoint& point) const {
  Hasher h;
  // Setup identity: any knob that changes the numbers must invalidate old
  // journal records. `repeats` is deliberately excluded — metrics are a
  // function of the repeat index alone, so raising MMHAR_REPEATS reuses
  // the completed repeats and only runs the new ones.
  setup_.train_generator.hash_into(h);
  setup_.attack_generator.hash_into(h);
  setup_.train_grid.hash_into(h);
  setup_.test_grid.hash_into(h);
  setup_.attack_grid.hash_into(h);
  h.mix(setup_.model.frames)
      .mix(setup_.model.height)
      .mix(setup_.model.width)
      .mix(setup_.model.conv1_channels)
      .mix(setup_.model.conv2_channels)
      .mix(setup_.model.feature_dim)
      .mix(setup_.model.lstm_hidden)
      .mix(setup_.model.num_classes)
      .mix(setup_.model.seed);
  h.mix(setup_.training.epochs)
      .mix(setup_.training.batch_size)
      .mix(setup_.training.learning_rate)
      .mix(setup_.training.weight_decay)
      .mix(setup_.training.grad_clip)
      .mix(setup_.training.seed)
      .mix(setup_.training.validation_fraction);
  h.mix(setup_.shap.num_permutations)
      .mix(static_cast<int>(setup_.shap.baseline))
      .mix(setup_.shap.use_probability)
      .mix(setup_.shap.seed);
  h.mix(setup_.objective.alpha).mix(setup_.objective.beta);
  // Point knobs.
  h.mix(point.victim).mix(point.target);
  h.mix(point.trigger.width_m)
      .mix(point.trigger.height_m)
      .mix(point.trigger.reflectivity)
      .mix(point.trigger.under_clothing)
      .mix(point.trigger.clothing_attenuation)
      .mix(point.trigger.tessellation)
      .mix(point.trigger.standoff_m);
  h.mix(point.injection_rate)
      .mix(point.poisoned_frames)
      .mix(static_cast<int>(point.frame_selection))
      .mix(point.optimize_position);
  h.mix(point.attack_grid_override.has_value());
  if (point.attack_grid_override) point.attack_grid_override->hash_into(h);
  return h.value();
}

void AttackExperiment::ensure_journal() {
  if (journal_) return;
  ensure_directory(setup_.cache_dir);
  journal_.emplace(setup_.cache_dir + "/sweep_journal.jnl");
  std::size_t replayed = 0;
  for (const std::string& payload : journal_->load()) {
    try {
      std::istringstream is(payload);
      BinaryReader r(is, payload.size());
      const std::uint64_t ph = r.read_u64();
      const std::uint64_t rep = r.read_u64();
      AttackMetrics m;
      m.asr = r.read_f64();
      m.uasr = r.read_f64();
      m.cdr = r.read_f64();
      m.attack_samples = static_cast<std::size_t>(r.read_u64());
      m.clean_samples = static_cast<std::size_t>(r.read_u64());
      journal_index_[{ph, rep}] = m;
      ++replayed;
    } catch (const Error&) {
      // Checksums already passed, so this is a schema change from an older
      // binary; the record simply doesn't replay.
      MMHAR_LOG(Warn) << "sweep journal: skipping unparseable record";
    }
  }
  if (replayed > 0) {
    MMHAR_LOG(Info) << "sweep journal " << journal_->path() << ": "
                    << replayed << " completed repeats on record";
  }
}

void AttackExperiment::journal_append(std::uint64_t point_h,
                                      std::uint64_t repeat,
                                      const AttackMetrics& m) {
  if (!journal_) return;
  std::ostringstream os;
  BinaryWriter w(os);
  w.write_u64(point_h);
  w.write_u64(repeat);
  w.write_f64(m.asr);
  w.write_f64(m.uasr);
  w.write_f64(m.cdr);
  w.write_u64(m.attack_samples);
  w.write_u64(m.clean_samples);
  try {
    journal_->append(os.str());
  } catch (const IoError& e) {
    MMHAR_LOG(Warn) << "sweep journal append failed (" << e.what()
                    << "); sweep continues unjournaled";
  }
  journal_index_[{point_h, repeat}] = m;
}

std::pair<har::HarModel, AttackMetrics> AttackExperiment::run_single(
    const AttackPoint& point, std::uint64_t repeat_index) {
  if (fault_should_fire("experiment.repeat_fail"))
    throw IoError("injected fault: experiment.repeat_fail");
  BackdoorPlan plan = plan_for(point);
  plan.frames = frames_for(plan, point);

  BackdoorAttackConfig cfg;
  cfg.victim_label = point.victim;
  cfg.target_label = point.target;
  cfg.trigger = point.trigger;
  cfg.poisoned_frames = point.poisoned_frames;
  cfg.frame_selection = point.frame_selection;
  cfg.optimize_position = point.optimize_position;
  cfg.objective = setup_.objective;
  cfg.shap = setup_.shap;
  BackdoorAttack attack(train_gen_, surrogate(), cfg);

  const PoisonResult poisoned =
      attack.poison(train_set(), setup_.train_grid, plan,
                    point.injection_rate, 11 + repeat_index);

  har::HarModel model =
      train_fresh(poisoned.dataset, setup_.model.seed + 1000 + repeat_index);

  const har::Dataset attack_test = attack_test_set(point);
  const AttackMetrics metrics = evaluate_attack(
      model, test_set(), attack_test, point.victim, point.target);
  return {std::move(model), metrics};
}

PointSummary AttackExperiment::run_point(const AttackPoint& point) {
  PointSummary summary;
  summary.repeats = setup_.repeats;

  const std::uint64_t ph = point_hash(point);
  if (setup_.resume_sweeps) ensure_journal();

  std::vector<AttackMetrics> runs;
  runs.reserve(setup_.repeats);
  std::string first_error;
  for (std::size_t r = 0; r < setup_.repeats; ++r) {
    const std::uint64_t rep = static_cast<std::uint64_t>(r);
    if (setup_.resume_sweeps) {
      const auto it = journal_index_.find({ph, rep});
      if (it != journal_index_.end()) {
        runs.push_back(it->second);
        continue;
      }
    }
    // One retry per repeat: a corrupt cache was quarantined by the failed
    // attempt, so the retry regenerates it; a second failure is recorded
    // and the sweep moves on instead of aborting.
    first_error.clear();
    for (int attempt = 0; attempt < 2; ++attempt) {
      try {
        const AttackMetrics m = run_single(point, rep).second;
        runs.push_back(m);
        if (setup_.resume_sweeps) journal_append(ph, rep, m);
        break;
      } catch (const Error& e) {
        if (attempt == 0) {
          first_error = e.what();
          MMHAR_LOG(Warn) << "repeat " << r << " failed (" << e.what()
                          << "); retrying once";
        } else {
          ++summary.failed_repeats;
          summary.errors.push_back(first_error + " | retry: " + e.what());
          MMHAR_LOG(Warn) << "repeat " << r
                          << " failed again; recording as failed";
        }
      }
    }
  }

  if (runs.empty()) return summary;  // ok() is false; stats stay zero

  const auto mean_of = [&](auto proj) {
    double acc = 0.0;
    for (const auto& m : runs) acc += proj(m);
    return acc / static_cast<double>(runs.size());
  };
  const auto std_of = [&](auto proj, double mean) {
    if (runs.size() < 2) return 0.0;
    double acc = 0.0;
    for (const auto& m : runs) {
      const double d = proj(m) - mean;
      acc += d * d;
    }
    return std::sqrt(acc / static_cast<double>(runs.size() - 1));
  };

  summary.mean.asr = mean_of([](const AttackMetrics& m) { return m.asr; });
  summary.mean.uasr = mean_of([](const AttackMetrics& m) { return m.uasr; });
  summary.mean.cdr = mean_of([](const AttackMetrics& m) { return m.cdr; });
  summary.mean.attack_samples = runs.front().attack_samples;
  summary.mean.clean_samples = runs.front().clean_samples;
  summary.stddev.asr =
      std_of([](const AttackMetrics& m) { return m.asr; }, summary.mean.asr);
  summary.stddev.uasr = std_of(
      [](const AttackMetrics& m) { return m.uasr; }, summary.mean.uasr);
  summary.stddev.cdr =
      std_of([](const AttackMetrics& m) { return m.cdr; }, summary.mean.cdr);
  return summary;
}

std::string pct(double fraction) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(1) << 100.0 * fraction;
  return os.str();
}

}  // namespace mmhar::core
