// Experiment harness shared by the bench binaries.
//
// Owns the datasets (training-environment train/test grids, the
// cross-environment attack grids), the attacker's surrogate model, plan
// caching, and repeated backdoor training runs. Everything deterministic
// and disk-cached, so the twelve figure/table benches share one set of
// simulated datasets and one surrogate instead of regenerating them.
//
// Scale knobs (environment variables):
//   MMHAR_REPS_TRAIN  repetitions per grid cell in the training set (1)
//   MMHAR_REPS_TEST   repetitions per grid cell in the test sets (1)
//   MMHAR_EPOCHS      training epochs (15)
//   MMHAR_REPEATS     backdoor-training repetitions per point (2; the
//                     paper uses 30)
//   MMHAR_CACHE_DIR   dataset/model cache directory (.mmhar_cache)
#pragma once

#include <map>
#include <optional>
#include <tuple>

#include "common/journal.h"
#include "core/attack_eval.h"
#include "core/backdoor_attack.h"
#include "har/trainer.h"

namespace mmhar::core {

struct ExperimentSetup {
  har::GeneratorConfig train_generator;   ///< hallway environment
  har::GeneratorConfig attack_generator;  ///< classroom environment
  har::DatasetConfig train_grid;          ///< repetition offset 0
  har::DatasetConfig test_grid;           ///< disjoint repetition offset
  har::DatasetConfig attack_grid;         ///< victim-only filled per point
  har::HarModelConfig model;
  har::TrainConfig training;
  xai::ShapConfig shap;
  PositionObjective objective;
  std::size_t repeats = 2;
  std::string cache_dir;
  /// Sweep crash tolerance: append one journal record per completed
  /// (point, repeat) to `<cache_dir>/sweep_journal.jnl` and replay intact
  /// records on rerun, so a killed sweep resumes at the last completed
  /// unit with bit-identical numbers. MMHAR_RESUME=0 disables.
  bool resume_sweeps = true;
  /// Per-epoch checkpointing cadence for the cached clean/surrogate
  /// trainings (0 disables; env MMHAR_CHECKPOINT_EVERY).
  std::size_t checkpoint_every = 1;

  /// Paper-§VI grid at laptop scale, env-var adjustable.
  static ExperimentSetup standard();
};

/// One point on a sweep (one bar/marker in a paper figure).
struct AttackPoint {
  std::size_t victim = 0;  ///< Push
  std::size_t target = 1;  ///< Pull
  mesh::TriggerSpec trigger = mesh::TriggerSpec::aluminum_2x2();
  double injection_rate = 0.4;
  std::size_t poisoned_frames = 8;
  FrameSelection frame_selection = FrameSelection::ShapTopK;
  bool optimize_position = true;
  /// Override the attack-test grid (angle/distance robustness figures).
  std::optional<har::DatasetConfig> attack_grid_override;
};

struct PointSummary {
  AttackMetrics mean;
  AttackMetrics stddev;
  std::size_t repeats = 0;         ///< repeats requested
  std::size_t failed_repeats = 0;  ///< repeats that failed after one retry
  std::vector<std::string> errors;  ///< one message per failed repeat

  /// At least one repeat produced metrics (mean/stddev are meaningful).
  bool ok() const { return failed_repeats < repeats; }
};

class AttackExperiment {
 public:
  explicit AttackExperiment(ExperimentSetup setup);

  const ExperimentSetup& setup() const { return setup_; }

  /// Clean training set (hallway, cached).
  const har::Dataset& train_set();
  /// Clean held-out test set (hallway, disjoint repetitions).
  const har::Dataset& test_set();
  /// The attacker's surrogate model, trained on clean data (cached).
  har::HarModel& surrogate();
  /// A clean victim model for Fig. 7 (same pipeline, different seed).
  har::HarModel& clean_model();

  /// The attack plan for a point's (victim, trigger, selection,
  /// position-mode) tuple; memoized. The trigger position is planned once
  /// against the SHAP top-8 reference frames (the paper fixes the global
  /// position, then sweeps the poisoned-frame count), so all k values of
  /// a sweep share one placement — and therefore one set of triggered
  /// twins.
  const BackdoorPlan& plan_for(const AttackPoint& point);

  /// Poisoning frames for a specific point, derived from its plan's SHAP
  /// scores (or 0..k-1 for FrameSelection::FirstK).
  static std::vector<std::size_t> frames_for(const BackdoorPlan& plan,
                                             const AttackPoint& point);

  /// Trigger-bearing victim samples in the ATTACK environment for a
  /// point (the physical test-time trigger), disk-cached.
  har::Dataset attack_test_set(const AttackPoint& point);

  /// Train `repeats` backdoored models for the point and average the
  /// metrics (paper averages 30 repetitions).
  ///
  /// Fault tolerance: completed repeats are journaled (resumable after a
  /// kill, bit-identical on replay); a repeat that throws `mmhar::Error`
  /// — corrupt artifact, MMHAR_FINITE_CHECKS tripwire, injected fault —
  /// is retried once (corrupt caches were quarantined, so the retry
  /// regenerates) and otherwise recorded in `failed_repeats`/`errors`
  /// instead of aborting the sweep.
  PointSummary run_point(const AttackPoint& point);

  /// One backdoored model for a point (no averaging; Table-I style and
  /// examples). Returns the trained model and its metrics.
  std::pair<har::HarModel, AttackMetrics> run_single(
      const AttackPoint& point, std::uint64_t repeat_index = 0);

 private:
  har::HarModel train_fresh(const har::Dataset& data, std::uint64_t seed);
  har::HarModel load_or_train_clean(std::uint64_t seed,
                                    const std::string& tag);

  using PlanKey = std::tuple<std::size_t, std::size_t, long, int, int>;
  PlanKey plan_key(const AttackPoint& point) const;

  /// Journal identity of a sweep point: a hash of the full setup plus the
  /// point's own knobs, so any config change invalidates old records.
  std::uint64_t point_hash(const AttackPoint& point) const;
  /// Lazy-open `<cache_dir>/sweep_journal.jnl` and index its records.
  void ensure_journal();
  void journal_append(std::uint64_t point_h, std::uint64_t repeat,
                      const AttackMetrics& m);

  ExperimentSetup setup_;
  har::SampleGenerator train_gen_;
  har::SampleGenerator attack_gen_;
  std::optional<har::Dataset> train_set_;
  std::optional<har::Dataset> test_set_;
  std::optional<har::HarModel> surrogate_;
  std::optional<har::HarModel> clean_model_;
  std::map<PlanKey, BackdoorPlan> plans_;

  std::optional<AppendJournal> journal_;
  std::map<std::pair<std::uint64_t, std::uint64_t>, AttackMetrics>
      journal_index_;
};

/// Format helper used by benches: "84.2" style percentage.
std::string pct(double fraction);

}  // namespace mmhar::core
