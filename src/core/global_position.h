// Global optimal trigger position (paper Eq. 4).
//
// The per-frame optima op_i differ because the hand moves; a physical
// trigger cannot chase them, so the attack uses one global position
// minimizing the SHAP-weighted sum of distances
//     min_gop  Σ_i φ_i · || op_i − gop ||_2 ,
// i.e. the weighted geometric median, solved with Weiszfeld iteration.
#pragma once

#include <vector>

#include "mesh/geometry.h"

namespace mmhar::core {

struct WeiszfeldOptions {
  int max_iterations = 200;
  double tolerance = 1e-10;  ///< squared step length convergence threshold
};

/// Weighted geometric median of `points` with nonnegative `weights`
/// (at least one strictly positive). Exact for a single point; handles
/// iterates landing on data points with the standard perturbation rule.
mesh::Vec3 weighted_geometric_median(const std::vector<mesh::Vec3>& points,
                                     const std::vector<double>& weights,
                                     WeiszfeldOptions options = {});

/// Objective value Σ_i w_i ||p_i − x||.
double weighted_distance_sum(const std::vector<mesh::Vec3>& points,
                             const std::vector<double>& weights,
                             const mesh::Vec3& x);

}  // namespace mmhar::core
