// Attack metrics (paper §VI-E): ASR, UASR, CDR.
#pragma once

#include <cstddef>

#include "har/dataset.h"
#include "har/model.h"

namespace mmhar::core {

struct AttackMetrics {
  double asr = 0.0;   ///< targeted success: predicted == target
  double uasr = 0.0;  ///< untargeted success: predicted != victim
  double cdr = 0.0;   ///< clean data rate: accuracy on clean test samples
  std::size_t attack_samples = 0;
  std::size_t clean_samples = 0;
};

/// Evaluate a (potentially backdoored) model.
///  * `attack_test` holds trigger-bearing victim-activity samples (their
///    stored label is the victim activity).
///  * `clean_test` is the ordinary held-out test set.
AttackMetrics evaluate_attack(har::HarModel& model,
                              const har::Dataset& clean_test,
                              const har::Dataset& attack_test,
                              std::size_t victim_label,
                              std::size_t target_label);

}  // namespace mmhar::core
