// End-to-end attack planning (paper Fig. 2, phases 1–2).
//
// Given the attacker's clean-data surrogate model and the RF simulator,
// `BackdoorAttack::plan` produces everything needed to poison a training
// set and to wear the trigger at test time:
//   1. SHAP top-k poisoning frames for the victim activity (Eq. 1),
//   2. per-frame optimal trigger anchors (Eq. 2),
//   3. the SHAP-weighted global optimal position (Eq. 4),
// plus diagnostics (SHAP values, anchor ranking) that the benches report.
#pragma once

#include <optional>

#include "core/global_position.h"
#include "core/poison.h"
#include "core/position_opt.h"
#include "har/generator.h"
#include "har/model.h"
#include "xai/frame_importance.h"

namespace mmhar::core {

struct BackdoorAttackConfig {
  std::size_t victim_label = 0;
  std::size_t target_label = 1;
  mesh::TriggerSpec trigger = mesh::TriggerSpec::aluminum_2x2();
  std::size_t poisoned_frames = 8;
  FrameSelection frame_selection = FrameSelection::ShapTopK;
  /// Table I ablation: false places the trigger at the suboptimal leg
  /// anchor instead of optimizing Eqs. 2/4.
  bool optimize_position = true;
  PositionObjective objective;
  xai::ShapConfig shap;
  /// Reference spec for position optimization (attacker's own body and a
  /// central position — they optimize on themselves, §V-B).
  har::SampleSpec reference_spec;
};

struct BackdoorPlan {
  std::vector<std::size_t> frames;         ///< poisoning frame indices
  har::TriggerPlacement placement;         ///< where to tape the trigger
  std::vector<double> mean_abs_shap;       ///< per-frame importance
  std::vector<PositionCandidate> anchor_ranking;  ///< Eq. 2 scores
  std::vector<mesh::Vec3> per_frame_optima;       ///< op_i of Eq. 4
};

class BackdoorAttack {
 public:
  /// `generator` must be the training-environment pipeline (the attacker
  /// poisons training data); `surrogate` is their clean-data model.
  BackdoorAttack(const har::SampleGenerator& generator,
                 har::HarModel& surrogate, BackdoorAttackConfig config);

  const BackdoorAttackConfig& config() const { return config_; }

  /// Compute the full plan using `clean_train` as the SHAP reference set.
  BackdoorPlan plan(const har::Dataset& clean_train);

  /// Poison `clean_train` according to a plan: builds/loads the triggered
  /// twins for the grid `train_grid` and splices the planned frames.
  PoisonResult poison(const har::Dataset& clean_train,
                      const har::DatasetConfig& train_grid,
                      const BackdoorPlan& plan, double injection_rate,
                      std::uint64_t selection_seed = 11) const;

 private:
  const har::SampleGenerator& generator_;
  har::HarModel& surrogate_;
  BackdoorAttackConfig config_;
};

}  // namespace mmhar::core
