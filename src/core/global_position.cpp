#include "core/global_position.h"

#include <cmath>

#include "common/check.h"
#include "common/finite_check.h"

namespace mmhar::core {

double weighted_distance_sum(const std::vector<mesh::Vec3>& points,
                             const std::vector<double>& weights,
                             const mesh::Vec3& x) {
  double acc = 0.0;
  for (std::size_t i = 0; i < points.size(); ++i)
    acc += weights[i] * mesh::distance(points[i], x);
  return acc;
}

mesh::Vec3 weighted_geometric_median(const std::vector<mesh::Vec3>& points,
                                     const std::vector<double>& weights,
                                     WeiszfeldOptions options) {
  MMHAR_REQUIRE(!points.empty(), "no points");
  MMHAR_REQUIRE(points.size() == weights.size(), "points/weights mismatch");
  double total_weight = 0.0;
  for (const double w : weights) {
    MMHAR_REQUIRE(w >= 0.0, "weights must be nonnegative");
    total_weight += w;
  }
  MMHAR_REQUIRE(total_weight > 0.0, "all weights are zero");

  // Start from the weighted centroid.
  mesh::Vec3 x{0.0, 0.0, 0.0};
  for (std::size_t i = 0; i < points.size(); ++i)
    x += points[i] * (weights[i] / total_weight);

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    mesh::Vec3 numerator{0.0, 0.0, 0.0};
    double denominator = 0.0;
    bool at_data_point = false;
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (weights[i] == 0.0) continue;
      const double d = mesh::distance(points[i], x);
      if (d < 1e-12) {
        // Iterate sits on a data point: nudge off it (Vardi–Zhang rule
        // simplified — adequate at our scales).
        at_data_point = true;
        continue;
      }
      const double w = weights[i] / d;
      numerator += points[i] * w;
      denominator += w;
    }
    if (denominator == 0.0) return x;  // all mass on the current point
    mesh::Vec3 next = numerator / denominator;
    if (at_data_point) {
      // Blend toward the data point the iterate collided with.
      next = (next + x) * 0.5;
    }
    const mesh::Vec3 step = next - x;
    x = next;
    if (finite_checks_enabled()) {
      // A coincident point with weight ~0 or a degenerate geometry can turn
      // the 1/d reweighting into Inf/NaN; catch the iterate the moment it
      // leaves the finite plane instead of returning a NaN position.
      const double iterate[3] = {x.x, x.y, x.z};
      check_finite(std::span<const double>(iterate, 3), "weiszfeld-iterate",
                   "weighted_geometric_median");
    }
    if (mesh::dot(step, step) < options.tolerance) break;
  }
  return x;
}

}  // namespace mmhar::core
