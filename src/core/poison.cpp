#include "core/poison.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/env.h"
#include "common/logging.h"

namespace mmhar::core {

const char* frame_selection_name(FrameSelection s) {
  switch (s) {
    case FrameSelection::ShapTopK: return "shap_top_k";
    case FrameSelection::FirstK: return "first_k";
  }
  return "?";
}

har::Dataset load_or_build_triggered_twins(
    const har::SampleGenerator& generator, const har::DatasetConfig& config,
    std::size_t victim_label, const har::TriggerPlacement& placement,
    std::string cache_dir) {
  if (cache_dir.empty())
    cache_dir = env_string("MMHAR_CACHE_DIR", ".mmhar_cache");
  ensure_directory(cache_dir);

  har::DatasetConfig victim_only = config;
  victim_only.activities = {victim_label};

  Hasher h;
  generator.config().hash_into(h);
  victim_only.hash_into(h);
  placement.hash_into(h);
  const std::string path = cache_dir + "/twins_" + h.hex() + ".ds";
  har::Dataset cached;
  const LoadResult res = har::Dataset::try_load(path, cached);
  if (res.ok()) return cached;
  if (res.status != LoadStatus::Missing) {
    MMHAR_LOG(Warn) << "twins cache " << path << " unusable ("
                    << load_status_name(res.status) << "), regenerating";
  }

  MMHAR_LOG(Info) << "generating " << victim_only.total_samples()
                  << " triggered twins -> " << path;
  har::Dataset twins;
  twins.set_num_classes(mesh::kNumActivities);
  for (const int participant : victim_only.participants) {
    for (const double distance : victim_only.distances_m) {
      for (const double angle : victim_only.angles_deg) {
        for (std::size_t rep = 0; rep < victim_only.repetitions; ++rep) {
          har::Sample s;
          s.spec.activity = mesh::activity_from_index(victim_label);
          s.spec.participant = participant;
          s.spec.distance_m = distance;
          s.spec.angle_deg = angle;
          s.spec.repetition = victim_only.repetition_offset +
                              static_cast<std::uint32_t>(rep);
          s.spec.seed = victim_only.seed;
          s.label = victim_label;
          s.heatmaps = generator.generate(s.spec, &placement);
          twins.add(std::move(s));
        }
      }
    }
  }
  try {
    twins.save(path);
  } catch (const IoError& e) {
    MMHAR_LOG(Warn) << "twins cache write failed (" << e.what()
                    << "); continuing uncached";
  }
  return twins;
}

std::vector<std::size_t> choose_poison_frames(
    har::HarModel& surrogate, const har::Dataset& train,
    const PoisonConfig& config, const xai::ShapConfig& shap_config,
    std::size_t reference_samples) {
  const std::size_t frames = surrogate.config().frames;
  MMHAR_REQUIRE(config.poisoned_frames >= 1 &&
                    config.poisoned_frames <= frames,
                "poisoned_frames out of range");

  if (config.frame_selection == FrameSelection::FirstK) {
    std::vector<std::size_t> first(config.poisoned_frames);
    for (std::size_t i = 0; i < first.size(); ++i) first[i] = i;
    return first;
  }

  auto victim_indices = train.indices_of_label(config.victim_label);
  MMHAR_REQUIRE(!victim_indices.empty(),
                "no victim samples with label " << config.victim_label);
  if (victim_indices.size() > reference_samples)
    victim_indices.resize(reference_samples);

  xai::FrameImportance importance(surrogate, shap_config);
  const auto mean_abs = importance.mean_abs_shap(train, victim_indices,
                                                 config.victim_label);
  return xai::top_k_by_magnitude(mean_abs, config.poisoned_frames);
}

PoisonResult poison_dataset(const har::Dataset& train,
                            const har::Dataset& triggered_twins,
                            const PoisonConfig& config,
                            const std::vector<std::size_t>& frames) {
  MMHAR_REQUIRE(config.injection_rate >= 0.0 && config.injection_rate <= 1.0,
                "injection rate must be in [0, 1]");
  MMHAR_REQUIRE(config.victim_label != config.target_label,
                "victim and target must differ");
  MMHAR_REQUIRE(!frames.empty(), "no poisoning frames chosen");

  // Index twins by their spec identity. A sorted vector, not a hash map:
  // the former unordered_map was lookup-only (so hash order never leaked
  // into a result), but a sorted index keeps it that way by construction —
  // there is no iteration order for a future change to depend on, and
  // mmhar_detcheck's unordered-iter rule has nothing to police here.
  std::vector<std::pair<std::uint64_t, const har::Sample*>> twin_by_spec;
  twin_by_spec.reserve(triggered_twins.size());
  for (std::size_t i = 0; i < triggered_twins.size(); ++i) {
    const auto& t = triggered_twins.sample(i);
    twin_by_spec.emplace_back(t.spec.stream_seed(), &t);
  }
  std::sort(twin_by_spec.begin(), twin_by_spec.end());
  const auto find_twin = [&twin_by_spec](std::uint64_t seed) {
    const auto it = std::lower_bound(
        twin_by_spec.begin(), twin_by_spec.end(), seed,
        [](const auto& entry, std::uint64_t key) { return entry.first < key; });
    return it != twin_by_spec.end() && it->first == seed
               ? it->second
               : static_cast<const har::Sample*>(nullptr);
  };

  PoisonResult result;
  result.dataset = train;
  result.frames = frames;

  const auto victims = result.dataset.indices_of_label(config.victim_label);
  const auto n_poison = static_cast<std::size_t>(
      std::lround(config.injection_rate *
                  static_cast<double>(victims.size())));
  if (n_poison == 0) return result;

  Rng rng(config.seed);
  auto chosen = rng.sample_without_replacement(victims.size(), n_poison);

  const auto& shape = train.sample(0).heatmaps.shape();
  const std::size_t frame_stride = shape[1] * shape[2];

  for (const std::size_t vi : chosen) {
    har::Sample& s = result.dataset.sample(victims[vi]);
    const har::Sample* twin_ptr = find_twin(s.spec.stream_seed());
    MMHAR_CHECK_MSG(twin_ptr != nullptr,
                    "no triggered twin for a victim sample — twin grid must "
                    "match the training grid");
    const har::Sample& twin = *twin_ptr;
    // Splice the chosen frames from the twin.
    for (const std::size_t f : frames) {
      MMHAR_CHECK(f < shape[0]);
      std::copy(twin.heatmaps.data() + f * frame_stride,
                twin.heatmaps.data() + (f + 1) * frame_stride,
                s.heatmaps.data() + f * frame_stride);
    }
    s.label = config.target_label;
    result.poisoned_indices.push_back(victims[vi]);
  }
  return result;
}

}  // namespace mmhar::core
