#include "core/attack_eval.h"

#include "common/check.h"
#include "har/trainer.h"

namespace mmhar::core {

AttackMetrics evaluate_attack(har::HarModel& model,
                              const har::Dataset& clean_test,
                              const har::Dataset& attack_test,
                              std::size_t victim_label,
                              std::size_t target_label) {
  MMHAR_REQUIRE(victim_label != target_label, "victim == target");

  AttackMetrics m;
  m.attack_samples = attack_test.size();
  m.clean_samples = clean_test.size();

  if (!attack_test.empty()) {
    const auto preds = har::predict_all(model, attack_test);
    std::size_t hit_target = 0;
    std::size_t misclassified = 0;
    for (std::size_t i = 0; i < preds.size(); ++i) {
      MMHAR_CHECK(attack_test.sample(i).label == victim_label);
      if (preds[i] == target_label) ++hit_target;
      if (preds[i] != victim_label) ++misclassified;
    }
    m.asr = static_cast<double>(hit_target) /
            static_cast<double>(preds.size());
    m.uasr = static_cast<double>(misclassified) /
             static_cast<double>(preds.size());
  }

  if (!clean_test.empty())
    m.cdr = har::evaluate_accuracy(model, clean_test);
  return m;
}

}  // namespace mmhar::core
