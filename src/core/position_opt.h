// Trigger-position optimization (paper Eq. 2).
//
// For each candidate body anchor, the RF simulator predicts the heatmaps
// of the activity with a trigger at that anchor; the objective is
//
//    alpha * ( D( l_θ(h(R_e(y'))), l_θ(h(R_e(y))) )
//              − beta * || h(R_e(y')) − h(R_e(y)) ||_2 )
//
// i.e. maximize the CNN-feature displacement (the LSTM must notice the
// trigger) while penalizing raw heatmap deviation (clean-accuracy
// stealth). Candidate positions are the body-anchor catalogue; scoring
// can be restricted to the SHAP-selected frames of interest.
#pragma once

#include <vector>

#include "har/generator.h"
#include "har/model.h"
#include "mesh/human.h"

namespace mmhar::core {

struct PositionObjective {
  double alpha = 1.0;  ///< overall scale (kept for parity with Eq. 2)
  double beta = 0.05;  ///< stealth penalty weight
};

struct PositionCandidate {
  mesh::BodyAnchor anchor = mesh::BodyAnchor::Chest;
  mesh::Vec3 local_position;        ///< body-local anchor position
  double score = 0.0;               ///< Eq. 2 objective value
  double feature_distance = 0.0;    ///< D(·,·) term (mean over frames)
  double heatmap_deviation = 0.0;   ///< L2 term (mean over frames)
  /// Mean L2 shift of the non-coherent range profile (clean vs triggered)
  /// — a physical-layer stealth diagnostic derived from the same range
  /// spectra the DRAI heatmaps are built from (one Range-FFT per frame).
  /// Reported alongside the Eq. 2 terms; not part of the score.
  double range_profile_shift = 0.0;
};

class TriggerPositionOptimizer {
 public:
  /// `surrogate` is the attacker's clean-data surrogate model (threat
  /// model §III); `generator` is the RF simulator pipeline R_e + h.
  TriggerPositionOptimizer(const har::SampleGenerator& generator,
                           har::HarModel& surrogate,
                           PositionObjective objective = {});

  /// Score every catalogued anchor for `spec` with trigger `trigger`.
  /// `frames_of_interest` restricts scoring to those frame indices
  /// (empty = all frames). Results are sorted by descending score.
  std::vector<PositionCandidate> evaluate_anchors(
      const har::SampleSpec& spec, const mesh::TriggerSpec& trigger,
      const std::vector<std::size_t>& frames_of_interest = {}) const;

  /// Best anchor overall (convenience).
  PositionCandidate best_anchor(
      const har::SampleSpec& spec, const mesh::TriggerSpec& trigger,
      const std::vector<std::size_t>& frames_of_interest = {}) const;

  /// Per-frame optimum op_i: for each frame index in `frames`, the anchor
  /// position maximizing that single frame's objective. Feeds Eq. 4.
  std::vector<mesh::Vec3> per_frame_optima(
      const har::SampleSpec& spec, const mesh::TriggerSpec& trigger,
      const std::vector<std::size_t>& frames) const;

 private:
  struct AnchorEvaluation {
    mesh::BodyAnchor anchor;
    mesh::Vec3 position;
    std::vector<double> per_frame_feature_distance;
    std::vector<double> per_frame_heatmap_deviation;
    std::vector<double> per_frame_profile_shift;
  };

  std::vector<AnchorEvaluation> evaluate_all(
      const har::SampleSpec& spec, const mesh::TriggerSpec& trigger) const;

  const har::SampleGenerator& generator_;
  har::HarModel& surrogate_;
  PositionObjective objective_;
};

}  // namespace mmhar::core
