// Training-set poisoning (paper §IV/V, "Preparing the poisoned samples").
//
// The attacker contributes a small fraction of victim-activity samples in
// which the SHAP-selected top-k frames are replaced by their RF-simulated
// trigger-bearing twins, relabeled to the target activity. Clean frames
// outside the top-k stay untouched — this is what makes the poisoning
// budget small (the paper's key efficiency property).
#pragma once

#include <cstdint>
#include <vector>

#include "har/dataset.h"
#include "har/model.h"
#include "xai/frame_importance.h"

namespace mmhar::core {

/// How the poisoned frames are chosen inside each sample.
enum class FrameSelection {
  ShapTopK,  ///< paper's method: SHAP top-k frames
  FirstK,    ///< ablation baseline: the first k frames (Table I row 3)
};

const char* frame_selection_name(FrameSelection s);

struct PoisonConfig {
  std::size_t victim_label = 0;       ///< activity being attacked
  std::size_t target_label = 1;       ///< label assigned to poisoned samples
  double injection_rate = 0.4;        ///< fraction of victim samples poisoned
  std::size_t poisoned_frames = 8;    ///< k
  FrameSelection frame_selection = FrameSelection::ShapTopK;
  std::uint64_t seed = 11;            ///< which victim samples get poisoned
};

struct PoisonResult {
  har::Dataset dataset;                       ///< poisoned training set
  std::vector<std::size_t> poisoned_indices;  ///< indices into `dataset`
  std::vector<std::size_t> frames;            ///< poisoned frame indices
};

/// Generate (or load from cache) trigger-bearing twins of every sample of
/// `victim_label` in the grid `config` — same specs, same randomness, a
/// trigger merged into the body mesh. Twins keep the victim label; they
/// serve both as poisoning donors (training grid) and as the attack test
/// set (test grid, where the physical trigger is present in all frames).
har::Dataset load_or_build_triggered_twins(
    const har::SampleGenerator& generator, const har::DatasetConfig& config,
    std::size_t victim_label, const har::TriggerPlacement& placement,
    std::string cache_dir = "");

/// Choose the poisoning frames for a victim activity: SHAP top-k averaged
/// over up to `reference_samples` victim samples (or simply 0..k-1 for
/// FrameSelection::FirstK).
std::vector<std::size_t> choose_poison_frames(
    har::HarModel& surrogate, const har::Dataset& train,
    const PoisonConfig& config, const xai::ShapConfig& shap_config,
    std::size_t reference_samples = 3);

/// Assemble the poisoned training set: for `injection_rate` of the victim
/// samples, splice the chosen frames from the matching triggered twin and
/// relabel to the target. Twins are matched to samples by SampleSpec.
PoisonResult poison_dataset(const har::Dataset& train,
                            const har::Dataset& triggered_twins,
                            const PoisonConfig& config,
                            const std::vector<std::size_t>& frames);

}  // namespace mmhar::core
