#include "core/backdoor_attack.h"

#include <cmath>

#include "common/logging.h"

namespace mmhar::core {

BackdoorAttack::BackdoorAttack(const har::SampleGenerator& generator,
                               har::HarModel& surrogate,
                               BackdoorAttackConfig config)
    : generator_(generator), surrogate_(surrogate), config_(config) {
  MMHAR_REQUIRE(config_.victim_label != config_.target_label,
                "victim and target labels must differ");
  config_.reference_spec.activity =
      mesh::activity_from_index(config_.victim_label);
}

BackdoorPlan BackdoorAttack::plan(const har::Dataset& clean_train) {
  BackdoorPlan plan;

  // ---- Phase 1a: SHAP frame importance (Eq. 1). ----
  auto victim_indices = clean_train.indices_of_label(config_.victim_label);
  MMHAR_REQUIRE(!victim_indices.empty(), "no victim samples in train set");
  if (victim_indices.size() > 3) victim_indices.resize(3);

  xai::FrameImportance importance(surrogate_, config_.shap);
  plan.mean_abs_shap = importance.mean_abs_shap(clean_train, victim_indices,
                                                config_.victim_label);

  if (config_.frame_selection == FrameSelection::ShapTopK) {
    plan.frames = xai::top_k_by_magnitude(plan.mean_abs_shap,
                                          config_.poisoned_frames);
  } else {
    plan.frames.resize(config_.poisoned_frames);
    for (std::size_t i = 0; i < plan.frames.size(); ++i) plan.frames[i] = i;
  }

  // ---- Phase 1b: trigger position (Eqs. 2 and 4). ----
  const mesh::HumanBody body(
      mesh::BodyParams::participant(config_.reference_spec.participant));
  plan.placement.spec = config_.trigger;
  plan.placement.local_normal = {-1.0, 0.0, 0.0};

  if (!config_.optimize_position) {
    // Ablation: suboptimal location on the leg (Table I row 2).
    plan.placement.local_position =
        body.anchor_position(mesh::BodyAnchor::RightThigh);
    plan.placement.local_normal =
        body.anchor_normal(mesh::BodyAnchor::RightThigh);
    return plan;
  }

  TriggerPositionOptimizer optimizer(generator_, surrogate_,
                                     config_.objective);
  plan.anchor_ranking = optimizer.evaluate_anchors(
      config_.reference_spec, config_.trigger, plan.frames);
  plan.per_frame_optima = optimizer.per_frame_optima(
      config_.reference_spec, config_.trigger, plan.frames);

  // SHAP weights for the chosen frames (Eq. 4); fall back to uniform
  // weights if all SHAP mass is elsewhere.
  std::vector<double> weights;
  weights.reserve(plan.frames.size());
  double total = 0.0;
  for (const std::size_t f : plan.frames) {
    const double w = std::abs(plan.mean_abs_shap[f]);
    weights.push_back(w);
    total += w;
  }
  if (total <= 0.0)
    for (auto& w : weights) w = 1.0;

  plan.placement.local_position =
      weighted_geometric_median(plan.per_frame_optima, weights);

  MMHAR_LOG(Debug) << "backdoor plan: best anchor "
                   << mesh::anchor_name(plan.anchor_ranking.front().anchor)
                   << ", gop z=" << plan.placement.local_position.z;
  return plan;
}

PoisonResult BackdoorAttack::poison(const har::Dataset& clean_train,
                                    const har::DatasetConfig& train_grid,
                                    const BackdoorPlan& plan,
                                    double injection_rate,
                                    std::uint64_t selection_seed) const {
  const har::Dataset twins = load_or_build_triggered_twins(
      generator_, train_grid, config_.victim_label, plan.placement);

  PoisonConfig pc;
  pc.victim_label = config_.victim_label;
  pc.target_label = config_.target_label;
  pc.injection_rate = injection_rate;
  pc.poisoned_frames = config_.poisoned_frames;
  pc.frame_selection = config_.frame_selection;
  pc.seed = selection_seed;
  return poison_dataset(clean_train, twins, pc, plan.frames);
}

}  // namespace mmhar::core
