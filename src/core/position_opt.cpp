#include "core/position_opt.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace mmhar::core {

TriggerPositionOptimizer::TriggerPositionOptimizer(
    const har::SampleGenerator& generator, har::HarModel& surrogate,
    PositionObjective objective)
    : generator_(generator), surrogate_(surrogate), objective_(objective) {}

std::vector<TriggerPositionOptimizer::AnchorEvaluation>
TriggerPositionOptimizer::evaluate_all(const har::SampleSpec& spec,
                                       const mesh::TriggerSpec& trigger) const {
  const auto& mc = surrogate_.config();
  const std::size_t frames = mc.frames;

  // Clean reference: heatmaps, per-frame features, and range profiles.
  // generate_views reuses one Range-FFT pass per frame for both the DRAI
  // heatmaps and the range-profile diagnostic below.
  const har::SampleViews clean_views = generator_.generate_views(spec);
  const Tensor& clean = clean_views.heatmaps;
  MMHAR_CHECK(clean.dim(0) == frames);
  const Tensor clean_features = surrogate_.frame_features(clean);
  std::vector<Tensor> clean_profiles;
  clean_profiles.reserve(frames);
  for (std::size_t t = 0; t < frames; ++t)
    clean_profiles.push_back(dsp::range_profile(clean_views.spectra[t]));

  const mesh::HumanBody body(
      mesh::BodyParams::participant(spec.participant));
  const std::size_t hw = mc.height * mc.width;

  std::vector<AnchorEvaluation> evals;
  for (const mesh::BodyAnchor anchor : mesh::all_anchors()) {
    har::TriggerPlacement placement;
    placement.spec = trigger;
    placement.local_position = body.anchor_position(anchor);
    placement.local_normal = body.anchor_normal(anchor);

    const har::SampleViews views = generator_.generate_views(spec, &placement);
    const Tensor& triggered = views.heatmaps;
    const Tensor triggered_features = surrogate_.frame_features(triggered);

    AnchorEvaluation e;
    e.anchor = anchor;
    e.position = placement.local_position;
    e.per_frame_feature_distance.resize(frames);
    e.per_frame_heatmap_deviation.resize(frames);
    e.per_frame_profile_shift.resize(frames);
    for (std::size_t t = 0; t < frames; ++t) {
      double fd = 0.0;
      for (std::size_t j = 0; j < mc.feature_dim; ++j) {
        const double d = triggered_features[t * mc.feature_dim + j] -
                         clean_features[t * mc.feature_dim + j];
        fd += d * d;
      }
      e.per_frame_feature_distance[t] = std::sqrt(fd);
      double hd = 0.0;
      for (std::size_t j = 0; j < hw; ++j) {
        const double d = triggered[t * hw + j] - clean[t * hw + j];
        hd += d * d;
      }
      e.per_frame_heatmap_deviation[t] = std::sqrt(hd);
      const Tensor profile = dsp::range_profile(views.spectra[t]);
      const Tensor& ref = clean_profiles[t];
      MMHAR_CHECK(profile.size() == ref.size());
      double pd = 0.0;
      for (std::size_t j = 0; j < profile.size(); ++j) {
        const double d = profile[j] - ref[j];
        pd += d * d;
      }
      e.per_frame_profile_shift[t] = std::sqrt(pd);
    }
    evals.push_back(std::move(e));
  }
  return evals;
}

std::vector<PositionCandidate> TriggerPositionOptimizer::evaluate_anchors(
    const har::SampleSpec& spec, const mesh::TriggerSpec& trigger,
    const std::vector<std::size_t>& frames_of_interest) const {
  const auto evals = evaluate_all(spec, trigger);
  const std::size_t frames = surrogate_.config().frames;

  std::vector<std::size_t> scored = frames_of_interest;
  if (scored.empty()) {
    scored.resize(frames);
    for (std::size_t t = 0; t < frames; ++t) scored[t] = t;
  }
  for (const std::size_t t : scored)
    MMHAR_REQUIRE(t < frames, "frame index " << t << " out of range");

  std::vector<PositionCandidate> out;
  for (const auto& e : evals) {
    PositionCandidate c;
    c.anchor = e.anchor;
    c.local_position = e.position;
    double fd = 0.0;
    double hd = 0.0;
    double pd = 0.0;
    for (const std::size_t t : scored) {
      fd += e.per_frame_feature_distance[t];
      hd += e.per_frame_heatmap_deviation[t];
      pd += e.per_frame_profile_shift[t];
    }
    fd /= static_cast<double>(scored.size());
    hd /= static_cast<double>(scored.size());
    pd /= static_cast<double>(scored.size());
    c.feature_distance = fd;
    c.heatmap_deviation = hd;
    c.range_profile_shift = pd;
    c.score = objective_.alpha * (fd - objective_.beta * hd);
    out.push_back(c);
  }
  std::sort(out.begin(), out.end(),
            [](const PositionCandidate& a, const PositionCandidate& b) {
              return a.score > b.score;
            });
  return out;
}

PositionCandidate TriggerPositionOptimizer::best_anchor(
    const har::SampleSpec& spec, const mesh::TriggerSpec& trigger,
    const std::vector<std::size_t>& frames_of_interest) const {
  const auto ranked = evaluate_anchors(spec, trigger, frames_of_interest);
  MMHAR_CHECK(!ranked.empty());
  return ranked.front();
}

std::vector<mesh::Vec3> TriggerPositionOptimizer::per_frame_optima(
    const har::SampleSpec& spec, const mesh::TriggerSpec& trigger,
    const std::vector<std::size_t>& frames) const {
  MMHAR_REQUIRE(!frames.empty(), "need at least one frame");
  const auto evals = evaluate_all(spec, trigger);
  MMHAR_CHECK(!evals.empty());

  std::vector<mesh::Vec3> optima;
  optima.reserve(frames.size());
  for (const std::size_t t : frames) {
    MMHAR_REQUIRE(t < surrogate_.config().frames, "frame out of range");
    const AnchorEvaluation* best = nullptr;
    double best_score = -1e300;
    for (const auto& e : evals) {
      const double score =
          objective_.alpha * (e.per_frame_feature_distance[t] -
                              objective_.beta * e.per_frame_heatmap_deviation[t]);
      if (score > best_score) {
        best_score = score;
        best = &e;
      }
    }
    optima.push_back(best->position);
  }
  return optima;
}

}  // namespace mmhar::core
