// SHAP-based frame importance for the CNN-LSTM model (paper §V-A).
//
// The players of the Shapley game are the M=32 frames of an activity
// sample; the value of a coalition S is the model's output (probability
// of a chosen class) when only the frames in S contribute their CNN
// features and the remaining frames are replaced by a baseline feature
// vector (absence). This is exactly Eq. 1 with f = LSTM + head over the
// frame-feature series.
#pragma once

#include <cstdint>

#include "har/dataset.h"
#include "har/model.h"
#include "xai/shapley.h"

namespace mmhar::xai {

enum class ShapBaseline {
  Zero,       ///< absent frames contribute a zero feature vector
  MeanFrame,  ///< absent frames contribute the sample's mean frame feature
};

struct ShapConfig {
  std::size_t num_permutations = 12;  ///< antithetic pairs per sample
  ShapBaseline baseline = ShapBaseline::MeanFrame;
  bool use_probability = true;  ///< explain softmax prob vs raw logit
  std::uint64_t seed = 97;
};

class FrameImportance {
 public:
  FrameImportance(har::HarModel& model, ShapConfig config);

  /// Per-frame SHAP values for `sample` ([T, H, W]) w.r.t. the model
  /// output for `target_class`.
  std::vector<double> shap_values(const Tensor& sample,
                                  std::size_t target_class);

  /// Same, but explaining the model's own predicted class.
  std::vector<double> shap_values_predicted(const Tensor& sample);

  /// Top-k most important frame indices of a sample (by |SHAP|).
  std::vector<std::size_t> top_k_frames(const Tensor& sample,
                                        std::size_t target_class,
                                        std::size_t k);

  /// Average |SHAP| per frame over several samples; the attack uses this
  /// to pick one global set of poisoning frames for a victim activity.
  std::vector<double> mean_abs_shap(const har::Dataset& dataset,
                                    const std::vector<std::size_t>& indices,
                                    std::size_t target_class);

  const ShapConfig& config() const { return config_; }

 private:
  har::HarModel& model_;
  ShapConfig config_;
  Rng rng_;
};

/// Fig. 3 reproduction: for each sample (optionally a subset), find the
/// most-important frame index and histogram it over the dataset.
std::vector<std::size_t> most_important_frame_histogram(
    har::HarModel& model, const har::Dataset& dataset,
    const ShapConfig& config, std::size_t max_samples = 0);

}  // namespace mmhar::xai
