// Shapley value computation over generic coalition value functions.
//
// Two estimators:
//  * `exact_shapley` — the exact Eq. 1 sum over all 2^M coalitions; used
//    as the oracle in tests (M <= 20).
//  * `sampling_shapley` — unbiased permutation sampling with antithetic
//    (forward + reversed) permutations. Each permutation contributes the
//    marginal gain of every player exactly once, so the efficiency
//    property  sum_i φ_i = v(full) − v(empty)  holds per permutation and
//    therefore for the final average as well.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "common/rng.h"

namespace mmhar::xai {

/// Coalition value oracle: mask[i] == true means player i is present.
using ValueFunction = std::function<double(const std::vector<bool>&)>;

/// Exact Shapley values (Eq. 1). Cost O(2^M * M); requires M <= 20.
std::vector<double> exact_shapley(std::size_t num_players,
                                  const ValueFunction& value);

/// Permutation-sampling Shapley estimate using `num_permutations`
/// antithetic pairs (so 2 * num_permutations permutations total).
std::vector<double> sampling_shapley(std::size_t num_players,
                                     const ValueFunction& value,
                                     std::size_t num_permutations, Rng& rng);

/// Indices of the k largest values by magnitude, in descending order of
/// |value| (stable on ties by lower index first).
std::vector<std::size_t> top_k_by_magnitude(const std::vector<double>& values,
                                            std::size_t k);

}  // namespace mmhar::xai
