#include "xai/shapley.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/check.h"
#include "common/finite_check.h"

namespace mmhar::xai {

std::vector<double> exact_shapley(std::size_t num_players,
                                  const ValueFunction& value) {
  MMHAR_REQUIRE(num_players >= 1 && num_players <= 20,
                "exact Shapley limited to 1..20 players, got " << num_players);
  const std::size_t full = std::size_t{1} << num_players;

  // Cache all coalition values once: v is called 2^M times, not M * 2^M.
  std::vector<double> v(full);
  std::vector<bool> mask(num_players);
  for (std::size_t s = 0; s < full; ++s) {
    for (std::size_t i = 0; i < num_players; ++i)
      mask[i] = (s >> i) & std::size_t{1};
    v[s] = value(mask);
  }

  // Precompute the weighting function |S|!(M-|S|-1)!/M! by coalition size.
  std::vector<double> weight(num_players);
  {
    // log-factorials for numerical stability at larger M.
    std::vector<double> logfact(num_players + 1, 0.0);
    for (std::size_t i = 1; i <= num_players; ++i)
      logfact[i] = logfact[i - 1] + std::log(static_cast<double>(i));
    for (std::size_t s = 0; s < num_players; ++s) {
      weight[s] = std::exp(logfact[s] + logfact[num_players - s - 1] -
                           logfact[num_players]);
    }
  }

  std::vector<double> phi(num_players, 0.0);
  for (std::size_t s = 0; s < full; ++s) {
    for (std::size_t i = 0; i < num_players; ++i) {
      if ((s >> i) & std::size_t{1}) continue;  // i must be absent from S
      const std::size_t with_i = s | (std::size_t{1} << i);
      const std::size_t size_s =
          static_cast<std::size_t>(std::popcount(s));
      phi[i] += weight[size_s] * (v[with_i] - v[s]);
    }
  }
  // A non-finite coalition value silently corrupts every phi it touches;
  // the attack's frame ranking then becomes noise. Trip on both inputs and
  // outputs so the offending value function is identified.
  check_finite(std::span<const double>(v), "coalition-values",
               "exact_shapley");
  check_finite(std::span<const double>(phi), "shapley-phi", "exact_shapley");
  return phi;
}

std::vector<double> sampling_shapley(std::size_t num_players,
                                     const ValueFunction& value,
                                     std::size_t num_permutations, Rng& rng) {
  MMHAR_REQUIRE(num_players >= 1, "need at least one player");
  MMHAR_REQUIRE(num_permutations >= 1, "need at least one permutation");

  std::vector<double> phi(num_players, 0.0);
  std::vector<std::size_t> perm(num_players);
  for (std::size_t i = 0; i < num_players; ++i) perm[i] = i;

  std::vector<bool> mask(num_players);
  const auto accumulate_permutation = [&](const std::vector<std::size_t>& p) {
    std::fill(mask.begin(), mask.end(), false);
    double prev = value(mask);
    for (const std::size_t player : p) {
      mask[player] = true;
      const double cur = value(mask);
      phi[player] += cur - prev;
      prev = cur;
    }
  };

  std::vector<std::size_t> rev(num_players);  // reused across permutations
  for (std::size_t n = 0; n < num_permutations; ++n) {
    rng.shuffle(perm);
    accumulate_permutation(perm);
    // Antithetic pair: the reversed permutation (variance reduction).
    std::copy(perm.rbegin(), perm.rend(), rev.begin());
    accumulate_permutation(rev);
  }

  const double inv = 1.0 / (2.0 * static_cast<double>(num_permutations));
  for (auto& p : phi) p *= inv;
  check_finite(std::span<const double>(phi), "shapley-phi",
               "sampling_shapley");
  return phi;
}

std::vector<std::size_t> top_k_by_magnitude(const std::vector<double>& values,
                                            std::size_t k) {
  std::vector<std::size_t> idx(values.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  k = std::min(k, idx.size());
  std::stable_sort(idx.begin(), idx.end(),
                   [&values](std::size_t a, std::size_t b) {
                     return std::abs(values[a]) > std::abs(values[b]);
                   });
  idx.resize(k);
  return idx;
}

}  // namespace mmhar::xai
