#include "xai/frame_importance.h"

#include <cmath>

#include "common/logging.h"
#include "tensor/ops.h"

namespace mmhar::xai {

FrameImportance::FrameImportance(har::HarModel& model, ShapConfig config)
    : model_(model), config_(config), rng_(config.seed) {}

std::vector<double> FrameImportance::shap_values(const Tensor& sample,
                                                 std::size_t target_class) {
  const auto& mc = model_.config();
  MMHAR_REQUIRE(sample.rank() == 3 && sample.dim(0) == mc.frames,
                "sample must be [T, H, W]");
  MMHAR_REQUIRE(target_class < mc.num_classes, "target class out of range");
  const std::size_t frames = mc.frames;
  const std::size_t feat = mc.feature_dim;

  // Extract per-frame CNN features once; coalitions only re-run the LSTM.
  const Tensor features = model_.frame_features(sample);  // [T, F]

  Tensor baseline({feat});
  if (config_.baseline == ShapBaseline::MeanFrame)
    baseline = mean_rows(features);

  const ValueFunction value = [&](const std::vector<bool>& mask) {
    Tensor series({1, frames, feat});
    MMHAR_CHECK(features.size() == frames * feat && baseline.size() == feat);
    for (std::size_t t = 0; t < frames; ++t) {
      const float* src = mask[t] ? features.data() + t * feat
                                 : baseline.data();
      std::copy(src, src + feat, series.data() + t * feat);
    }
    const Tensor logits = model_.classify_features(series);
    if (!config_.use_probability)
      return static_cast<double>(logits[target_class]);
    const Tensor probs = softmax(logits.reshaped({mc.num_classes}));
    return static_cast<double>(probs[target_class]);
  };

  return sampling_shapley(frames, value, config_.num_permutations, rng_);
}

std::vector<double> FrameImportance::shap_values_predicted(
    const Tensor& sample) {
  return shap_values(sample, model_.predict(sample));
}

std::vector<std::size_t> FrameImportance::top_k_frames(
    const Tensor& sample, std::size_t target_class, std::size_t k) {
  return top_k_by_magnitude(shap_values(sample, target_class), k);
}

std::vector<double> FrameImportance::mean_abs_shap(
    const har::Dataset& dataset, const std::vector<std::size_t>& indices,
    std::size_t target_class) {
  MMHAR_REQUIRE(!indices.empty(), "mean_abs_shap over empty index set");
  std::vector<double> acc(model_.config().frames, 0.0);
  for (const std::size_t i : indices) {
    const auto phi = shap_values(dataset.sample(i).heatmaps, target_class);
    for (std::size_t t = 0; t < acc.size(); ++t) acc[t] += std::abs(phi[t]);
  }
  const double inv = 1.0 / static_cast<double>(indices.size());
  for (auto& v : acc) v *= inv;
  return acc;
}

std::vector<std::size_t> most_important_frame_histogram(
    har::HarModel& model, const har::Dataset& dataset,
    const ShapConfig& config, std::size_t max_samples) {
  FrameImportance importance(model, config);
  const std::size_t frames = model.config().frames;
  std::vector<std::size_t> histogram(frames, 0);
  const std::size_t n = max_samples == 0
                            ? dataset.size()
                            : std::min(max_samples, dataset.size());
  for (std::size_t i = 0; i < n; ++i) {
    const auto& s = dataset.sample(i);
    const auto phi = importance.shap_values(s.heatmaps, s.label);
    const auto top = top_k_by_magnitude(phi, 1);
    ++histogram[top.front()];
    if ((i + 1) % 25 == 0)
      MMHAR_LOG(Debug) << "SHAP histogram " << i + 1 << "/" << n;
  }
  return histogram;
}

}  // namespace mmhar::xai
