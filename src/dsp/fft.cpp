#include "dsp/fft.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/check.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"

namespace mmhar::dsp {
namespace {

constexpr double kPi = 3.14159265358979323846;
constexpr std::size_t kLanes = kFftManyLanes;

struct Plan {
  std::vector<std::size_t> bit_reverse;  // permutation indices
  std::vector<cfloat> twiddles;          // per-stage roots of unity
};

// Build the bit-reversal permutation and twiddle ladder for size n.
Plan build_plan(std::size_t n) {
  Plan plan;
  plan.bit_reverse.resize(n);
  std::size_t log2n = 0;
  while ((std::size_t{1} << log2n) < n) ++log2n;
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t rev = 0;
    for (std::size_t b = 0; b < log2n; ++b)
      if (i & (std::size_t{1} << b)) rev |= std::size_t{1} << (log2n - 1 - b);
    plan.bit_reverse[i] = rev;
  }
  // Twiddles for each butterfly stage, concatenated: stage m uses m/2 roots.
  for (std::size_t m = 2; m <= n; m <<= 1) {
    for (std::size_t j = 0; j < m / 2; ++j) {
      const double angle = -2.0 * kPi * static_cast<double>(j) /
                           static_cast<double>(m);
      plan.twiddles.emplace_back(static_cast<float>(std::cos(angle)),
                                 static_cast<float>(std::sin(angle)));
    }
  }
  return plan;
}

// Read-mostly plan cache. Lookups take a shared lock only; a miss builds
// the plan OUTSIDE any lock (two threads racing first-use of different
// sizes never serialize each other) and then inserts under the exclusive
// lock — try_emplace discards the duplicate if another thread won the
// race. std::map nodes are address-stable, so returned references survive
// later insertions.
struct PlanCache {
  SharedMutex mu;
  std::map<std::size_t, Plan> plans MMHAR_GUARDED_BY(mu);
};

const Plan& plan_for(std::size_t n) MMHAR_REALTIME_HANDOFF {
  static PlanCache cache;
  {
    ReaderLock lk(cache.mu);
    const auto it = cache.plans.find(n);
    if (it != cache.plans.end()) return it->second;
  }
  // mmhar-rtcheck: allow(alloc, calls) — first-use-per-size plan
  // construction (build_plan allocates freely on this cold path); every
  // later call at this size returns through the shared-lock lookup above
  // without touching the allocator.
  Plan built = build_plan(n);
  WriterLock lk(cache.mu);
  // mmhar-rtcheck: allow(alloc) — same cold path: one map node per FFT
  // size for the lifetime of the process.
  return cache.plans.try_emplace(n, std::move(built)).first->second;
}

// Per-thread SoA scratch for the batched engine: re/im hold one lane block
// in element-major order (re[j * kLanes + l]), acc holds the running
// magnitude sum for the mag-accum emitter. Grown on demand, never shrunk,
// reused across every fft_many* call on the thread — the engine performs
// no per-call allocation.
struct Workspace {
  std::vector<float> re;
  std::vector<float> im;
  std::vector<float> acc;

  void ensure(std::size_t n, bool want_acc) {
    const std::size_t need = n * kLanes;
    if (re.size() < need) {
      re.resize(need);   // mmhar-rtcheck: allow(alloc) — grow-once
      im.resize(need);   // mmhar-rtcheck: allow(alloc) — thread-local
    }
    if (want_acc && acc.size() < need)
      acc.resize(need);  // mmhar-rtcheck: allow(alloc) — workspace; a
    // warmed steady-state call takes the size check, never the grow.
  }
};

Workspace& tls_workspace() {
  thread_local Workspace ws;
  return ws;
}

// Gather one lane block into bit-reversed SoA scratch, fusing the window
// multiply and the zero-padding. Lanes [nl, kLanes) are zero-filled so the
// butterfly loops always run the full fixed width (no garbage values, no
// denormal stalls, branch-free inner loops).
void load_block(const FftManyJob& job, const Plan& plan, std::size_t rep,
                std::size_t lane0, std::size_t nl, float* re, float* im) {
  const cfloat* base =
      job.in + rep * job.in_rep_stride + lane0 * job.in_lane_stride;
  for (std::size_t j = 0; j < job.n; ++j) {
    float* r = re + plan.bit_reverse[j] * kLanes;
    float* q = im + plan.bit_reverse[j] * kLanes;
    if (j < job.in_len) {
      const float w = job.window != nullptr ? job.window[j] : 1.0F;
      const cfloat* src = base + j * job.in_elem_stride;
      if (job.in_lane_stride == 1) {
        for (std::size_t l = 0; l < nl; ++l) {
          r[l] = src[l].real() * w;
          q[l] = src[l].imag() * w;
        }
      } else {
        for (std::size_t l = 0; l < nl; ++l) {
          const cfloat v = src[l * job.in_lane_stride];
          r[l] = v.real() * w;
          q[l] = v.imag() * w;
        }
      }
      for (std::size_t l = nl; l < kLanes; ++l) {
        r[l] = 0.0F;
        q[l] = 0.0F;
      }
    } else {
      for (std::size_t l = 0; l < kLanes; ++l) {
        r[l] = 0.0F;
        q[l] = 0.0F;
      }
    }
  }
}

// Radix-2 butterflies over the whole block; the twiddle is a scalar
// broadcast and the inner loop sweeps the kLanes contiguous lanes, which
// is the SIMD axis. The per-transform operation order is identical to
// fft_inplace, so a lane's spectrum is bit-identical to the scalar path.
void butterflies(const Plan& plan, std::size_t n, float* re, float* im) {
  std::size_t tw_off = 0;
  for (std::size_t m = 2; m <= n; m <<= 1) {
    const std::size_t half = m / 2;
    for (std::size_t start = 0; start < n; start += m) {
      for (std::size_t j = 0; j < half; ++j) {
        const cfloat w = plan.twiddles[tw_off + j];
        const float wr = w.real();
        const float wi = w.imag();
        float* ar = re + (start + j) * kLanes;
        float* ai = im + (start + j) * kLanes;
        float* br = re + (start + j + half) * kLanes;
        float* bi = im + (start + j + half) * kLanes;
        for (std::size_t l = 0; l < kLanes; ++l) {
          const float tr = wr * br[l] - wi * bi[l];
          const float ti = wr * bi[l] + wi * br[l];
          br[l] = ar[l] - tr;
          bi[l] = ai[l] - ti;
          ar[l] += tr;
          ai[l] += ti;
        }
      }
    }
    tw_off += half;
  }
}

void validate_job(const FftManyJob& job) {
  MMHAR_REQUIRE(is_power_of_two(job.n),
                "fft_many length must be a power of two, got " << job.n);
  MMHAR_REQUIRE(job.in != nullptr, "fft_many: null input");
  MMHAR_REQUIRE(job.lanes > 0 && job.reps > 0, "fft_many: empty batch");
  MMHAR_REQUIRE(job.in_len > 0 && job.in_len <= job.n,
                "fft_many: in_len must be in (0, n], got " << job.in_len);
}

// Prototype-job validation for the *_multi entry points: geometry rules
// are identical but the base pointer lives in the io list, not the job.
void validate_proto(const FftManyJob& proto) {
  MMHAR_REQUIRE(is_power_of_two(proto.n),
                "fft_many length must be a power of two, got " << proto.n);
  MMHAR_REQUIRE(proto.in == nullptr,
                "fft_many_*_multi: prototype job must leave `in` null — "
                "inputs come from the io list");
  MMHAR_REQUIRE(proto.lanes > 0 && proto.reps > 0, "fft_many: empty batch");
  MMHAR_REQUIRE(proto.in_len > 0 && proto.in_len <= proto.n,
                "fft_many: in_len must be in (0, n], got " << proto.in_len);
}

// Gather one lane block whose lanes may span frame boundaries: bases[l]
// points at lane l's transform start for the current rep (lane and rep
// strides already folded in). Produces exactly the values load_block
// gathers for the same lane, so the downstream butterflies are
// bit-identical to the single-base path.
void load_block_bases(const FftManyJob& job, const Plan& plan,
                      const cfloat* const* bases, std::size_t nl, float* re,
                      float* im) {
  for (std::size_t j = 0; j < job.n; ++j) {
    float* r = re + plan.bit_reverse[j] * kLanes;
    float* q = im + plan.bit_reverse[j] * kLanes;
    if (j < job.in_len) {
      const float w = job.window != nullptr ? job.window[j] : 1.0F;
      const std::size_t off = j * job.in_elem_stride;
      for (std::size_t l = 0; l < nl; ++l) {
        const cfloat v = bases[l][off];
        r[l] = v.real() * w;
        q[l] = v.imag() * w;
      }
      for (std::size_t l = nl; l < kLanes; ++l) {
        r[l] = 0.0F;
        q[l] = 0.0F;
      }
    } else {
      for (std::size_t l = 0; l < kLanes; ++l) {
        r[l] = 0.0F;
        q[l] = 0.0F;
      }
    }
  }
}

}  // namespace

bool is_power_of_two(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

void fft_inplace(std::span<cfloat> data) {
  const std::size_t n = data.size();
  if (n <= 1) return;
  MMHAR_REQUIRE(is_power_of_two(n), "FFT size must be a power of two, got " << n);
  const Plan& plan = plan_for(n);

  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t j = plan.bit_reverse[i];
    if (i < j) std::swap(data[i], data[j]);
  }

  std::size_t tw_off = 0;
  for (std::size_t m = 2; m <= n; m <<= 1) {
    const std::size_t half = m / 2;
    for (std::size_t start = 0; start < n; start += m) {
      for (std::size_t j = 0; j < half; ++j) {
        const cfloat w = plan.twiddles[tw_off + j];
        const cfloat t = w * data[start + j + half];
        const cfloat u = data[start + j];
        data[start + j] = u + t;
        data[start + j + half] = u - t;
      }
    }
    tw_off += half;
  }
}

void ifft_inplace(std::span<cfloat> data) {
  for (auto& v : data) v = std::conj(v);
  fft_inplace(data);
  const float inv = 1.0F / static_cast<float>(data.size());
  for (auto& v : data) v = std::conj(v) * inv;
}

std::vector<cfloat> fft(std::span<const cfloat> data) {
  std::vector<cfloat> out(data.begin(), data.end());
  fft_inplace(out);
  return out;
}

std::vector<cfloat> ifft(std::span<const cfloat> data) {
  std::vector<cfloat> out(data.begin(), data.end());
  ifft_inplace(out);
  return out;
}

std::vector<cfloat> dft_reference(std::span<const cfloat> data) {
  const std::size_t n = data.size();
  std::vector<cfloat> out(n);
  for (std::size_t k = 0; k < n; ++k) {
    std::complex<double> acc{0.0, 0.0};
    for (std::size_t t = 0; t < n; ++t) {
      const double angle = -2.0 * kPi * static_cast<double>(k) *
                           static_cast<double>(t) / static_cast<double>(n);
      acc += std::complex<double>(data[t]) *
             std::complex<double>(std::cos(angle), std::sin(angle));
    }
    out[k] = cfloat(static_cast<float>(acc.real()),
                    static_cast<float>(acc.imag()));
  }
  return out;
}

void fftshift_inplace(std::span<cfloat> data) {
  const std::size_t n = data.size();
  MMHAR_REQUIRE(n % 2 == 0, "fftshift needs even length");
  for (std::size_t i = 0; i < n / 2; ++i) std::swap(data[i], data[i + n / 2]);
}

void fftshift_inplace(std::span<float> data) {
  const std::size_t n = data.size();
  MMHAR_REQUIRE(n % 2 == 0, "fftshift needs even length");
  for (std::size_t i = 0; i < n / 2; ++i) std::swap(data[i], data[i + n / 2]);
}

void fft_many_crop(const FftManyJob& job, std::size_t keep, cfloat* out,
                   std::size_t out_lane_stride,
                   std::size_t out_elem_stride) {
  validate_job(job);
  MMHAR_REQUIRE(job.reps == 1, "fft_many_crop: accumulation axis unsupported");
  MMHAR_REQUIRE(keep > 0 && keep <= job.n,
                "fft_many_crop: keep must be in (0, n]");
  MMHAR_REQUIRE(out != nullptr, "fft_many_crop: null output");

  const Plan& plan = plan_for(job.n);
  const std::size_t blocks = (job.lanes + kLanes - 1) / kLanes;
  // Lane blocks are fixed-size and independent, so the result does not
  // depend on how parallel_for partitions them across threads.
  parallel_for(0, blocks, [&](std::size_t b) {
    Workspace& ws = tls_workspace();
    ws.ensure(job.n, false);
    const std::size_t lane0 = b * kLanes;
    const std::size_t nl = std::min(kLanes, job.lanes - lane0);
    load_block(job, plan, 0, lane0, nl, ws.re.data(), ws.im.data());
    butterflies(plan, job.n, ws.re.data(), ws.im.data());
    const float* re = ws.re.data();
    const float* im = ws.im.data();
    for (std::size_t l = 0; l < nl; ++l) {
      cfloat* dst = out + (lane0 + l) * out_lane_stride;
      for (std::size_t j = 0; j < keep; ++j)
        dst[j * out_elem_stride] = cfloat(re[j * kLanes + l],
                                          im[j * kLanes + l]);
    }
  });
}

void fft_many(const FftManyJob& job, cfloat* out, std::size_t out_lane_stride,
              std::size_t out_elem_stride) {
  fft_many_crop(job, job.n, out, out_lane_stride, out_elem_stride);
}

void fft_many_mag_accum(const FftManyJob& job, bool shift, float* out,
                        std::size_t out_lane_stride,
                        std::size_t out_elem_stride) {
  validate_job(job);
  MMHAR_REQUIRE(out != nullptr, "fft_many_mag_accum: null output");

  const Plan& plan = plan_for(job.n);
  const std::size_t blocks = (job.lanes + kLanes - 1) / kLanes;
  parallel_for(0, blocks, [&](std::size_t b) {
    Workspace& ws = tls_workspace();
    ws.ensure(job.n, true);
    const std::size_t lane0 = b * kLanes;
    const std::size_t nl = std::min(kLanes, job.lanes - lane0);
    float* acc = ws.acc.data();
    const std::size_t total = job.n * kLanes;
    // The rep axis folds serially in index order, so the accumulated sum
    // has one fixed rounding order regardless of thread count.
    for (std::size_t rep = 0; rep < job.reps; ++rep) {
      load_block(job, plan, rep, lane0, nl, ws.re.data(), ws.im.data());
      butterflies(plan, job.n, ws.re.data(), ws.im.data());
      const float* re = ws.re.data();
      const float* im = ws.im.data();
      if (rep == 0) {
        for (std::size_t i = 0; i < total; ++i)
          acc[i] = std::sqrt(re[i] * re[i] + im[i] * im[i]);
      } else {
        for (std::size_t i = 0; i < total; ++i)
          acc[i] += std::sqrt(re[i] * re[i] + im[i] * im[i]);
      }
    }
    const std::size_t half = job.n / 2;
    for (std::size_t l = 0; l < nl; ++l) {
      float* dst = out + (lane0 + l) * out_lane_stride;
      for (std::size_t p = 0; p < job.n; ++p) {
        const std::size_t bin = shift ? (p + half) % job.n : p;
        dst[p * out_elem_stride] = acc[bin * kLanes + l];
      }
    }
  });
}

void fft_many_crop_multi(const FftManyJob& proto, std::size_t keep,
                         std::span<const FftManyIo> ios,
                         std::size_t out_lane_stride,
                         std::size_t out_elem_stride) {
  validate_proto(proto);
  MMHAR_REQUIRE(proto.reps == 1,
                "fft_many_crop_multi: accumulation axis unsupported");
  MMHAR_REQUIRE(keep > 0 && keep <= proto.n,
                "fft_many_crop_multi: keep must be in (0, n]");
  MMHAR_REQUIRE(!ios.empty(), "fft_many_crop_multi: empty io list");

  const Plan& plan = plan_for(proto.n);
  const std::size_t per = proto.lanes;
  const std::size_t total = per * ios.size();
  Workspace& ws = tls_workspace();
  ws.ensure(proto.n, false);
  const cfloat* bases[kLanes];
  for (std::size_t lane0 = 0; lane0 < total; lane0 += kLanes) {
    const std::size_t nl = std::min(kLanes, total - lane0);
    for (std::size_t l = 0; l < nl; ++l) {
      const std::size_t g = lane0 + l;
      MMHAR_CHECK(ios[g / per].in != nullptr);
      bases[l] = ios[g / per].in + (g % per) * proto.in_lane_stride;
    }
    load_block_bases(proto, plan, bases, nl, ws.re.data(), ws.im.data());
    butterflies(plan, proto.n, ws.re.data(), ws.im.data());
    const float* re = ws.re.data();
    const float* im = ws.im.data();
    for (std::size_t l = 0; l < nl; ++l) {
      const std::size_t g = lane0 + l;
      MMHAR_CHECK(ios[g / per].out != nullptr);
      cfloat* dst = ios[g / per].out + (g % per) * out_lane_stride;
      for (std::size_t j = 0; j < keep; ++j)
        dst[j * out_elem_stride] =
            cfloat(re[j * kLanes + l], im[j * kLanes + l]);
    }
  }
}

void fft_many_mag_accum_multi(const FftManyJob& proto, bool shift,
                              std::span<const FftManyMagIo> ios,
                              std::size_t out_lane_stride,
                              std::size_t out_elem_stride) {
  validate_proto(proto);
  MMHAR_REQUIRE(!ios.empty(), "fft_many_mag_accum_multi: empty io list");

  const Plan& plan = plan_for(proto.n);
  const std::size_t per = proto.lanes;
  const std::size_t total = per * ios.size();
  Workspace& ws = tls_workspace();
  ws.ensure(proto.n, true);
  const cfloat* bases[kLanes];
  for (std::size_t lane0 = 0; lane0 < total; lane0 += kLanes) {
    const std::size_t nl = std::min(kLanes, total - lane0);
    float* acc = ws.acc.data();
    const std::size_t block = proto.n * kLanes;
    // The rep axis folds serially in index order, exactly as in
    // fft_many_mag_accum, so every lane's sum keeps one fixed rounding
    // order no matter how frames are batched together.
    for (std::size_t rep = 0; rep < proto.reps; ++rep) {
      for (std::size_t l = 0; l < nl; ++l) {
        const std::size_t g = lane0 + l;
        MMHAR_CHECK(ios[g / per].in != nullptr);
        bases[l] = ios[g / per].in + rep * proto.in_rep_stride +
                   (g % per) * proto.in_lane_stride;
      }
      load_block_bases(proto, plan, bases, nl, ws.re.data(), ws.im.data());
      butterflies(plan, proto.n, ws.re.data(), ws.im.data());
      const float* re = ws.re.data();
      const float* im = ws.im.data();
      if (rep == 0) {
        for (std::size_t i = 0; i < block; ++i)
          acc[i] = std::sqrt(re[i] * re[i] + im[i] * im[i]);
      } else {
        for (std::size_t i = 0; i < block; ++i)
          acc[i] += std::sqrt(re[i] * re[i] + im[i] * im[i]);
      }
    }
    const std::size_t half = proto.n / 2;
    for (std::size_t l = 0; l < nl; ++l) {
      const std::size_t g = lane0 + l;
      MMHAR_CHECK(ios[g / per].out != nullptr);
      float* dst = ios[g / per].out + (g % per) * out_lane_stride;
      for (std::size_t p = 0; p < proto.n; ++p) {
        const std::size_t bin = shift ? (p + half) % proto.n : p;
        dst[p * out_elem_stride] = acc[bin * kLanes + l];
      }
    }
  }
}

}  // namespace mmhar::dsp
