#include "dsp/fft.h"

#include <cmath>
#include <map>
#include <mutex>

#include "common/check.h"

namespace mmhar::dsp {
namespace {

constexpr double kPi = 3.14159265358979323846;

struct Plan {
  std::vector<std::size_t> bit_reverse;  // permutation indices
  std::vector<cfloat> twiddles;          // per-stage roots of unity
};

// Build the bit-reversal permutation and twiddle ladder for size n.
Plan build_plan(std::size_t n) {
  Plan plan;
  plan.bit_reverse.resize(n);
  std::size_t log2n = 0;
  while ((std::size_t{1} << log2n) < n) ++log2n;
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t rev = 0;
    for (std::size_t b = 0; b < log2n; ++b)
      if (i & (std::size_t{1} << b)) rev |= std::size_t{1} << (log2n - 1 - b);
    plan.bit_reverse[i] = rev;
  }
  // Twiddles for each butterfly stage, concatenated: stage m uses m/2 roots.
  for (std::size_t m = 2; m <= n; m <<= 1) {
    for (std::size_t j = 0; j < m / 2; ++j) {
      const double angle = -2.0 * kPi * static_cast<double>(j) /
                           static_cast<double>(m);
      plan.twiddles.emplace_back(static_cast<float>(std::cos(angle)),
                                 static_cast<float>(std::sin(angle)));
    }
  }
  return plan;
}

const Plan& plan_for(std::size_t n) {
  static std::mutex mu;
  static std::map<std::size_t, Plan> plans;
  std::lock_guard<std::mutex> lk(mu);
  auto it = plans.find(n);
  if (it == plans.end()) it = plans.emplace(n, build_plan(n)).first;
  return it->second;
}

}  // namespace

bool is_power_of_two(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

void fft_inplace(std::span<cfloat> data) {
  const std::size_t n = data.size();
  if (n <= 1) return;
  MMHAR_REQUIRE(is_power_of_two(n), "FFT size must be a power of two, got " << n);
  const Plan& plan = plan_for(n);

  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t j = plan.bit_reverse[i];
    if (i < j) std::swap(data[i], data[j]);
  }

  std::size_t tw_off = 0;
  for (std::size_t m = 2; m <= n; m <<= 1) {
    const std::size_t half = m / 2;
    for (std::size_t start = 0; start < n; start += m) {
      for (std::size_t j = 0; j < half; ++j) {
        const cfloat w = plan.twiddles[tw_off + j];
        const cfloat t = w * data[start + j + half];
        const cfloat u = data[start + j];
        data[start + j] = u + t;
        data[start + j + half] = u - t;
      }
    }
    tw_off += half;
  }
}

void ifft_inplace(std::span<cfloat> data) {
  for (auto& v : data) v = std::conj(v);
  fft_inplace(data);
  const float inv = 1.0F / static_cast<float>(data.size());
  for (auto& v : data) v = std::conj(v) * inv;
}

std::vector<cfloat> fft(std::span<const cfloat> data) {
  std::vector<cfloat> out(data.begin(), data.end());
  fft_inplace(out);
  return out;
}

std::vector<cfloat> ifft(std::span<const cfloat> data) {
  std::vector<cfloat> out(data.begin(), data.end());
  ifft_inplace(out);
  return out;
}

std::vector<cfloat> dft_reference(std::span<const cfloat> data) {
  const std::size_t n = data.size();
  std::vector<cfloat> out(n);
  for (std::size_t k = 0; k < n; ++k) {
    std::complex<double> acc{0.0, 0.0};
    for (std::size_t t = 0; t < n; ++t) {
      const double angle = -2.0 * kPi * static_cast<double>(k) *
                           static_cast<double>(t) / static_cast<double>(n);
      acc += std::complex<double>(data[t]) *
             std::complex<double>(std::cos(angle), std::sin(angle));
    }
    out[k] = cfloat(static_cast<float>(acc.real()),
                    static_cast<float>(acc.imag()));
  }
  return out;
}

void fftshift_inplace(std::span<cfloat> data) {
  const std::size_t n = data.size();
  MMHAR_REQUIRE(n % 2 == 0, "fftshift needs even length");
  for (std::size_t i = 0; i < n / 2; ++i) std::swap(data[i], data[i + n / 2]);
}

void fftshift_inplace(std::span<float> data) {
  const std::size_t n = data.size();
  MMHAR_REQUIRE(n % 2 == 0, "fftshift needs even length");
  for (std::size_t i = 0; i < n / 2; ++i) std::swap(data[i], data[i + n / 2]);
}

}  // namespace mmhar::dsp
