// 2-D cell-averaging CFAR (constant false-alarm rate) detection.
//
// Standard mmWave detection stage: a cell is declared a target when its
// magnitude exceeds the average of a surrounding training ring (guard
// cells excluded) by a threshold factor. Used by the analysis tooling to
// extract discrete detections (e.g. the trigger blob) from DRAI/RDI
// heatmaps, and by tests to verify trigger visibility objectively.
#pragma once

#include <cstddef>
#include <vector>

#include "tensor/tensor.h"

namespace mmhar::dsp {

struct CfarConfig {
  std::size_t guard_cells = 1;     ///< half-width of the guard window
  std::size_t training_cells = 3;  ///< half-width of the training ring
  float threshold_factor = 4.0F;   ///< detection factor over the noise mean
  /// Cells whose training ring falls partly outside the map use the
  /// available cells only (true) or are skipped entirely (false).
  bool clip_borders = true;
};

struct Detection {
  std::size_t row = 0;       ///< range bin
  std::size_t col = 0;       ///< angle (or Doppler) bin
  float value = 0.0F;        ///< cell magnitude
  float noise_level = 0.0F;  ///< estimated local noise mean
  float snr() const {
    return noise_level > 0.0F ? value / noise_level : 0.0F;
  }
};

/// Run CA-CFAR over a rank-2 heatmap; returns all detections.
std::vector<Detection> cfar_detect(const Tensor& heatmap,
                                   const CfarConfig& config);

/// Suppress non-maximum detections within a (2r+1)^2 neighborhood,
/// keeping the strongest; returns peaks sorted by descending value.
std::vector<Detection> non_max_suppress(std::vector<Detection> detections,
                                        std::size_t radius);

/// Convenience: CFAR + NMS, top `max_peaks` peaks.
std::vector<Detection> detect_peaks(const Tensor& heatmap,
                                    const CfarConfig& config,
                                    std::size_t max_peaks,
                                    std::size_t nms_radius = 2);

}  // namespace mmhar::dsp
