#include "dsp/window.h"

#include <cmath>
#include <map>
#include <utility>

#include "common/check.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace mmhar::dsp {
namespace {
constexpr double kPi = 3.14159265358979323846;
}

std::vector<float> make_window(WindowKind kind, std::size_t n) {
  MMHAR_REQUIRE(n > 0, "window length must be positive");
  std::vector<float> w(n, 1.0F);
  if (n == 1 || kind == WindowKind::Rect) return w;
  const double denom = static_cast<double>(n - 1);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = static_cast<double>(i) / denom;
    double v = 1.0;
    switch (kind) {
      case WindowKind::Rect:
        v = 1.0;
        break;
      case WindowKind::Hann:
        v = 0.5 - 0.5 * std::cos(2.0 * kPi * x);
        break;
      case WindowKind::Hamming:
        v = 0.54 - 0.46 * std::cos(2.0 * kPi * x);
        break;
      case WindowKind::Blackman:
        v = 0.42 - 0.5 * std::cos(2.0 * kPi * x) +
            0.08 * std::cos(4.0 * kPi * x);
        break;
    }
    w[i] = static_cast<float>(v);
  }
  return w;
}

namespace {

using WindowKey = std::pair<int, std::size_t>;

struct WindowCache {
  SharedMutex mu;
  std::map<WindowKey, std::vector<float>> entries MMHAR_GUARDED_BY(mu);
};

}  // namespace

const std::vector<float>& cached_window(WindowKind kind, std::size_t n) {
  static WindowCache cache;
  const WindowKey key{static_cast<int>(kind), n};
  {
    ReaderLock lk(cache.mu);
    const auto it = cache.entries.find(key);
    if (it != cache.entries.end()) return it->second;
  }
  std::vector<float> built = make_window(kind, n);  // outside the lock
  WriterLock lk(cache.mu);
  return cache.entries.try_emplace(key, std::move(built)).first->second;
}

float coherent_gain(const std::vector<float>& window) {
  double acc = 0.0;
  for (const auto v : window) acc += v;
  return static_cast<float>(acc / static_cast<double>(window.size()));
}

}  // namespace mmhar::dsp
