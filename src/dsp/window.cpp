#include "dsp/window.h"

#include <cmath>
#include <map>
#include <mutex>
#include <shared_mutex>
#include <utility>

#include "common/check.h"

namespace mmhar::dsp {
namespace {
constexpr double kPi = 3.14159265358979323846;
}

std::vector<float> make_window(WindowKind kind, std::size_t n) {
  MMHAR_REQUIRE(n > 0, "window length must be positive");
  std::vector<float> w(n, 1.0F);
  if (n == 1 || kind == WindowKind::Rect) return w;
  const double denom = static_cast<double>(n - 1);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = static_cast<double>(i) / denom;
    double v = 1.0;
    switch (kind) {
      case WindowKind::Rect:
        v = 1.0;
        break;
      case WindowKind::Hann:
        v = 0.5 - 0.5 * std::cos(2.0 * kPi * x);
        break;
      case WindowKind::Hamming:
        v = 0.54 - 0.46 * std::cos(2.0 * kPi * x);
        break;
      case WindowKind::Blackman:
        v = 0.42 - 0.5 * std::cos(2.0 * kPi * x) +
            0.08 * std::cos(4.0 * kPi * x);
        break;
    }
    w[i] = static_cast<float>(v);
  }
  return w;
}

const std::vector<float>& cached_window(WindowKind kind, std::size_t n) {
  using Key = std::pair<int, std::size_t>;
  static std::shared_mutex mu;
  static std::map<Key, std::vector<float>> cache;
  const Key key{static_cast<int>(kind), n};
  {
    std::shared_lock<std::shared_mutex> lk(mu);
    const auto it = cache.find(key);
    if (it != cache.end()) return it->second;
  }
  std::vector<float> built = make_window(kind, n);  // outside the lock
  std::unique_lock<std::shared_mutex> lk(mu);
  return cache.try_emplace(key, std::move(built)).first->second;
}

float coherent_gain(const std::vector<float>& window) {
  double acc = 0.0;
  for (const auto v : window) acc += v;
  return static_cast<float>(acc / static_cast<double>(window.size()));
}

}  // namespace mmhar::dsp
