#include "dsp/microdoppler.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "tensor/ops.h"

namespace mmhar::dsp {

Tensor doppler_spectrum(const RadarCube& cube,
                        const MicroDopplerConfig& config) {
  MMHAR_REQUIRE(config.max_range_bin > config.min_range_bin,
                "empty range gate");
  HeatmapConfig hm;
  hm.range_bins = std::min(config.range_bins, cube.num_samples());
  hm.remove_clutter = config.remove_clutter;
  const RangeSpectra spectra = range_fft(cube, hm);

  const std::size_t q_total = spectra.num_chirps;
  const std::size_t d_bins =
      config.doppler_bins == 0 ? q_total : config.doppler_bins;
  MMHAR_REQUIRE(is_power_of_two(d_bins) && d_bins >= q_total,
                "doppler_bins must be a power of two >= num_chirps");
  const std::size_t r_lo = config.min_range_bin;
  const std::size_t r_hi = std::min(config.max_range_bin, spectra.range_bins);
  MMHAR_REQUIRE(r_lo < r_hi, "range gate outside the cropped range window");

  // Batched Doppler FFT over the range gate: one transform per gated range
  // bin, antennas folded as the engine's accumulation axis. The per-bin
  // shifted magnitudes land in `gated` and are reduced serially so the
  // result is deterministic.
  const std::size_t nr = r_hi - r_lo;
  FftManyJob job;
  job.n = d_bins;
  job.in = spectra.data.data() + r_lo;
  job.in_len = q_total;
  job.window = cached_window(config.window, q_total).data();
  job.lanes = nr;
  job.in_lane_stride = 1;
  job.in_elem_stride = spectra.num_antennas * spectra.range_bins;
  job.reps = spectra.num_antennas;
  job.in_rep_stride = spectra.range_bins;
  Tensor gated({nr, d_bins});
  fft_many_mag_accum(job, /*shift=*/true, gated.data(), d_bins, 1);

  Tensor spectrum({d_bins});
  for (std::size_t r = 0; r < nr; ++r)
    for (std::size_t d = 0; d < d_bins; ++d) spectrum[d] += gated.at(r, d);
  return spectrum;
}

Tensor micro_doppler_spectrogram(const std::vector<RadarCube>& frames,
                                 const MicroDopplerConfig& config) {
  MMHAR_REQUIRE(!frames.empty(), "empty frame sequence");
  const std::size_t d_bins = config.doppler_bins == 0
                                 ? frames.front().num_chirps()
                                 : config.doppler_bins;
  Tensor gram({frames.size(), d_bins});
  for (std::size_t f = 0; f < frames.size(); ++f) {
    const Tensor s = doppler_spectrum(frames[f], config);
    std::copy(s.data(), s.data() + d_bins, gram.data() + f * d_bins);
  }
  return config.normalize ? normalize01(gram) : gram;
}

std::vector<double> doppler_centroid_track(const Tensor& spectrogram) {
  MMHAR_REQUIRE(spectrogram.rank() == 2, "expected [frames x doppler]");
  const std::size_t frames = spectrogram.dim(0);
  const std::size_t bins = spectrogram.dim(1);
  const double center = static_cast<double>(bins) / 2.0;
  std::vector<double> track(frames, 0.0);
  for (std::size_t f = 0; f < frames; ++f) {
    double weight = 0.0;
    double moment = 0.0;
    for (std::size_t d = 0; d < bins; ++d) {
      const double v = spectrogram.at(f, d);
      weight += v;
      moment += v * static_cast<double>(d);
    }
    track[f] = weight > 0.0 ? moment / weight - center : 0.0;
  }
  return track;
}

}  // namespace mmhar::dsp
