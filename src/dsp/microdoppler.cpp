#include "dsp/microdoppler.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "tensor/ops.h"

namespace mmhar::dsp {

Tensor doppler_spectrum(const RadarCube& cube,
                        const MicroDopplerConfig& config) {
  MMHAR_REQUIRE(config.max_range_bin > config.min_range_bin,
                "empty range gate");
  HeatmapConfig hm;
  hm.range_bins = std::min(config.range_bins, cube.num_samples());
  hm.remove_clutter = config.remove_clutter;
  const RangeSpectra spectra = range_fft(cube, hm);

  const std::size_t q_total = spectra.num_chirps;
  const std::size_t d_bins =
      config.doppler_bins == 0 ? q_total : config.doppler_bins;
  MMHAR_REQUIRE(is_power_of_two(d_bins) && d_bins >= q_total,
                "doppler_bins must be a power of two >= num_chirps");
  const std::size_t r_lo = config.min_range_bin;
  const std::size_t r_hi = std::min(config.max_range_bin, spectra.range_bins);
  MMHAR_REQUIRE(r_lo < r_hi, "range gate outside the cropped range window");

  const auto window = make_window(config.window, q_total);
  Tensor spectrum({d_bins});
  std::vector<cfloat> buf(d_bins);
  for (std::size_t k = 0; k < spectra.num_antennas; ++k) {
    for (std::size_t r = r_lo; r < r_hi; ++r) {
      std::fill(buf.begin(), buf.end(), cfloat{0.0F, 0.0F});
      for (std::size_t q = 0; q < q_total; ++q)
        buf[q] = spectra.at(q, k, r) * window[q];
      fft_inplace(buf);
      fftshift_inplace(std::span<cfloat>(buf));
      for (std::size_t d = 0; d < d_bins; ++d)
        spectrum[d] += std::abs(buf[d]);
    }
  }
  return spectrum;
}

Tensor micro_doppler_spectrogram(const std::vector<RadarCube>& frames,
                                 const MicroDopplerConfig& config) {
  MMHAR_REQUIRE(!frames.empty(), "empty frame sequence");
  const std::size_t d_bins = config.doppler_bins == 0
                                 ? frames.front().num_chirps()
                                 : config.doppler_bins;
  Tensor gram({frames.size(), d_bins});
  for (std::size_t f = 0; f < frames.size(); ++f) {
    const Tensor s = doppler_spectrum(frames[f], config);
    std::copy(s.data(), s.data() + d_bins, gram.data() + f * d_bins);
  }
  return config.normalize ? normalize01(gram) : gram;
}

std::vector<double> doppler_centroid_track(const Tensor& spectrogram) {
  MMHAR_REQUIRE(spectrogram.rank() == 2, "expected [frames x doppler]");
  const std::size_t frames = spectrogram.dim(0);
  const std::size_t bins = spectrogram.dim(1);
  const double center = static_cast<double>(bins) / 2.0;
  std::vector<double> track(frames, 0.0);
  for (std::size_t f = 0; f < frames; ++f) {
    double weight = 0.0;
    double moment = 0.0;
    for (std::size_t d = 0; d < bins; ++d) {
      const double v = spectrogram.at(f, d);
      weight += v;
      moment += v * static_cast<double>(d);
    }
    track[f] = weight > 0.0 ? moment / weight - center : 0.0;
  }
  return track;
}

}  // namespace mmhar::dsp
