// Iterative radix-2 complex FFT with cached twiddle tables, plus a batched
// multi-transform engine (`fft_many*`) that executes N same-size transforms
// over strided data with the SIMD lanes running *across the batch
// dimension*.
//
// All radar processing dimensions (ADC samples, chirps, angle padding) are
// powers of two, so a radix-2 kernel suffices. Twiddle factors and the
// bit-reversal permutation are computed once per size and published through
// a read-mostly plan cache (annotated `mmhar::SharedMutex`; plans are built outside
// the lock so concurrent first-use of two sizes never serializes). The
// transforms themselves are lock-free and allocation-free: each worker
// thread keeps a reusable split real/imag scratch workspace.
//
// Batched layout: a block of up to `kFftManyLanes` transforms is loaded
// into element-major SoA scratch (`re[j * L + l]`, lane l = transform
// lane0 + l), so every butterfly's inner loop is a contiguous fixed-width
// sweep over lanes — straight-line auto-vectorizable code, one 512-bit
// vector per operand on AVX-512. Window application, zero-padding, and the
// bit-reversal permutation are fused into the load; cropping, fftshift,
// and |.| accumulation are fused into the store, so the heatmap pipeline
// never materializes an intermediate spectrum it does not keep.
#pragma once

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

#include "common/thread_annotations.h"

namespace mmhar::dsp {

using cfloat = std::complex<float>;

/// Transforms per SIMD block of the batched engine (16 floats = one
/// AVX-512 register per re/im operand; two on AVX2).
inline constexpr std::size_t kFftManyLanes = 16;

/// True if n is a power of two (and nonzero).
bool is_power_of_two(std::size_t n);

/// In-place forward FFT of length-n power-of-two complex data.
void fft_inplace(std::span<cfloat> data);

/// In-place inverse FFT (includes the 1/n normalization).
void ifft_inplace(std::span<cfloat> data);

/// Out-of-place forward FFT.
std::vector<cfloat> fft(std::span<const cfloat> data);

/// Out-of-place inverse FFT.
std::vector<cfloat> ifft(std::span<const cfloat> data);

/// Naive O(n^2) DFT used as the test oracle (any length).
std::vector<cfloat> dft_reference(std::span<const cfloat> data);

/// Rotate a spectrum so the zero bin lands at the center (even n).
void fftshift_inplace(std::span<cfloat> data);

/// fftshift for real-valued magnitude vectors.
void fftshift_inplace(std::span<float> data);

/// One batched-FFT job: `lanes` independent length-`n` transforms (each
/// with its own output), optionally repeated `reps` times along an
/// accumulation axis that the magnitude emitter folds in a fixed serial
/// order (rep 0 first), so results are bit-identical for any thread count.
///
/// Element j of transform (rep, lane) is read from
///   in[rep * in_rep_stride + lane * in_lane_stride + j * in_elem_stride]
/// for j < in_len; elements in [in_len, n) are zero (zero-padded FFT).
/// When `window` is non-null it has length `in_len` and is applied during
/// the load.
struct FftManyJob {
  std::size_t n = 0;            ///< transform length, power of two
  const cfloat* in = nullptr;   ///< base of the input array
  std::size_t in_len = 0;       ///< elements read per transform (<= n)
  const float* window = nullptr;  ///< optional, length in_len
  std::size_t lanes = 0;        ///< number of independent transforms
  std::size_t in_lane_stride = 0;
  std::size_t in_elem_stride = 1;
  std::size_t reps = 1;         ///< accumulation depth (mag-accum only)
  std::size_t in_rep_stride = 0;
};

/// Execute the batch and store the full complex spectra:
///   out[lane * out_lane_stride + j * out_elem_stride] = X_lane[j].
/// Requires job.reps == 1.
void fft_many(const FftManyJob& job, cfloat* out, std::size_t out_lane_stride,
              std::size_t out_elem_stride);

/// As fft_many but keeps only the first `keep` bins of every spectrum
/// (the range-FFT crop). Requires job.reps == 1 and keep <= n.
void fft_many_crop(const FftManyJob& job, std::size_t keep, cfloat* out,
                   std::size_t out_lane_stride, std::size_t out_elem_stride);

/// Execute the batch and store magnitudes summed over the rep axis:
///   out[lane * out_lane_stride + p * out_elem_stride]
///       = sum_{rep} |X_{rep,lane}[bin(p)]|
/// where bin(p) = (p + n/2) mod n when `shift` is set (fftshifted output)
/// and p otherwise. Magnitude is sqrt(re^2 + im^2) evaluated in float
/// (vectorizable; the pipeline's dynamic range is far from float
/// overflow). Existing `out` contents are overwritten, not added to.
void fft_many_mag_accum(const FftManyJob& job, bool shift, float* out,
                        std::size_t out_lane_stride,
                        std::size_t out_elem_stride);

// ---- Batch-of-batches entry points -----------------------------------------
//
// The streaming serving layer fuses the per-frame Range/Angle-FFT work of
// many independent radar streams into single engine invocations: every
// frame shares the job geometry (the *_multi prototype job, whose `in`
// field is unused and must stay null) but has its own input and output
// base pointer. Lanes are numbered globally across the io list — frame i
// contributes lanes [i*lanes, (i+1)*lanes) — so SIMD blocks fill across
// frame (and stream) boundaries instead of running ragged per-frame
// tails. Each lane's arithmetic is unchanged from the single-base entry
// points, so per-frame results are bit-identical to calling
// fft_many_crop / fft_many_mag_accum once per frame.
//
// Unlike the single-base entry points these run entirely on the CALLING
// thread (no pool dispatch) and are allocation-free once the thread's
// workspace has grown — the form the zero-alloc batcher cycle requires.

/// One frame's (input, complex output) base pair for
/// fft_many_crop_multi; both pointers use the prototype job's strides.
struct FftManyIo {
  const cfloat* in = nullptr;
  cfloat* out = nullptr;
};

/// One frame's (input, magnitude output) base pair for
/// fft_many_mag_accum_multi.
struct FftManyMagIo {
  const cfloat* in = nullptr;
  float* out = nullptr;
};

/// As fft_many_crop, over `ios.size()` frames sharing `proto`'s geometry.
/// Requires proto.in == nullptr and proto.reps == 1.
void fft_many_crop_multi(const FftManyJob& proto, std::size_t keep,
                         std::span<const FftManyIo> ios,
                         std::size_t out_lane_stride,
                         std::size_t out_elem_stride) MMHAR_REALTIME;

/// As fft_many_mag_accum, over `ios.size()` frames sharing `proto`'s
/// geometry (the rep axis folds serially per lane, as in the single-base
/// form). Requires proto.in == nullptr.
void fft_many_mag_accum_multi(const FftManyJob& proto, bool shift,
                              std::span<const FftManyMagIo> ios,
                              std::size_t out_lane_stride,
                              std::size_t out_elem_stride) MMHAR_REALTIME;

}  // namespace mmhar::dsp
