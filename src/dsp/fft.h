// Iterative radix-2 complex FFT with cached twiddle tables.
//
// All radar processing dimensions (ADC samples, chirps, angle padding) are
// powers of two, so a radix-2 kernel suffices. Twiddle factors and the
// bit-reversal permutation are computed once per size and shared behind a
// mutex; the transform itself is lock-free.
#pragma once

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

namespace mmhar::dsp {

using cfloat = std::complex<float>;

/// True if n is a power of two (and nonzero).
bool is_power_of_two(std::size_t n);

/// In-place forward FFT of length-n power-of-two complex data.
void fft_inplace(std::span<cfloat> data);

/// In-place inverse FFT (includes the 1/n normalization).
void ifft_inplace(std::span<cfloat> data);

/// Out-of-place forward FFT.
std::vector<cfloat> fft(std::span<const cfloat> data);

/// Out-of-place inverse FFT.
std::vector<cfloat> ifft(std::span<const cfloat> data);

/// Naive O(n^2) DFT used as the test oracle (any length).
std::vector<cfloat> dft_reference(std::span<const cfloat> data);

/// Rotate a spectrum so the zero bin lands at the center (even n).
void fftshift_inplace(std::span<cfloat> data);

/// fftshift for real-valued magnitude vectors.
void fftshift_inplace(std::span<float> data);

}  // namespace mmhar::dsp
