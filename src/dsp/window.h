// Window functions used before range/Doppler FFTs to control leakage.
#pragma once

#include <cstddef>
#include <vector>

namespace mmhar::dsp {

enum class WindowKind { Rect, Hann, Hamming, Blackman };

/// Sample a window of the given kind and length.
std::vector<float> make_window(WindowKind kind, std::size_t n);

/// Shared read-mostly cache over make_window for the hot processing chain
/// (one table per (kind, n), built outside the lock on first use). The
/// returned reference stays valid for the program lifetime.
const std::vector<float>& cached_window(WindowKind kind, std::size_t n);

/// Coherent gain (mean of the window), for amplitude compensation.
float coherent_gain(const std::vector<float>& window);

}  // namespace mmhar::dsp
