// Micro-Doppler signature extraction.
//
// The micro-Doppler spectrogram — Doppler spectrum per frame, stacked
// over time — is the classic visualization of human micro-motion in
// radar HAR (paper §VIII cites Doppler-profile systems). It complements
// the DRAI sequences the classifier uses and powers the analysis tooling
// (e.g. confirming that Push and Pull are time-mirrored in velocity).
#pragma once

#include <vector>

#include "dsp/heatmap.h"
#include "tensor/tensor.h"

namespace mmhar::dsp {

struct MicroDopplerConfig {
  std::size_t doppler_bins = 0;  ///< 0 -> chirps per frame
  WindowKind window = WindowKind::Hann;
  bool remove_clutter = true;
  bool normalize = true;
  /// Range gate: only bins [min_range_bin, max_range_bin) contribute,
  /// isolating the subject from residual environment returns.
  std::size_t min_range_bin = 0;
  std::size_t max_range_bin = 32;
  std::size_t range_bins = 32;  ///< range-FFT crop used for gating
};

/// One frame's Doppler spectrum (energy per Doppler bin, fftshifted so
/// the center bin is zero velocity), summed over antennas and gated
/// range bins.
Tensor doppler_spectrum(const RadarCube& cube,
                        const MicroDopplerConfig& config);

/// Spectrogram over an activity: [frames x doppler_bins]. Row f is the
/// Doppler spectrum of frame f; positive rows (above center) correspond
/// to approaching motion.
Tensor micro_doppler_spectrogram(const std::vector<RadarCube>& frames,
                                 const MicroDopplerConfig& config);

/// Mean Doppler bin offset (centroid - center) per frame; sign traces the
/// radial direction of the dominant motion over time.
std::vector<double> doppler_centroid_track(const Tensor& spectrogram);

}  // namespace mmhar::dsp
