#include "dsp/heatmap.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/finite_check.h"
#include "tensor/ops.h"

namespace mmhar::dsp {

RadarCube::RadarCube(std::size_t num_chirps, std::size_t num_antennas,
                     std::size_t num_samples)
    : num_chirps_(num_chirps),
      num_antennas_(num_antennas),
      num_samples_(num_samples),
      data_(num_chirps * num_antennas * num_samples, cfloat{0.0F, 0.0F}) {
  MMHAR_REQUIRE(num_chirps > 0 && num_antennas > 0 && num_samples > 0,
                "RadarCube dimensions must be positive");
}

cfloat& RadarCube::at(std::size_t chirp, std::size_t antenna,
                      std::size_t sample) {
  MMHAR_CHECK(chirp < num_chirps_ && antenna < num_antennas_ &&
              sample < num_samples_);
  return data_[(chirp * num_antennas_ + antenna) * num_samples_ + sample];
}

const cfloat& RadarCube::at(std::size_t chirp, std::size_t antenna,
                            std::size_t sample) const {
  MMHAR_CHECK(chirp < num_chirps_ && antenna < num_antennas_ &&
              sample < num_samples_);
  return data_[(chirp * num_antennas_ + antenna) * num_samples_ + sample];
}

cfloat* RadarCube::row(std::size_t chirp, std::size_t antenna) {
  return data_.data() + (chirp * num_antennas_ + antenna) * num_samples_;
}

const cfloat* RadarCube::row(std::size_t chirp, std::size_t antenna) const {
  return data_.data() + (chirp * num_antennas_ + antenna) * num_samples_;
}

RangeSpectra range_fft(const RadarCube& cube, const HeatmapConfig& cfg) {
  const std::size_t n = cube.num_samples();
  MMHAR_REQUIRE(is_power_of_two(n), "ADC sample count must be a power of two");
  MMHAR_REQUIRE(cfg.range_bins > 0 && cfg.range_bins <= n,
                "range_bins must be in (0, num_samples]");

  const auto window = make_window(cfg.range_window, n);

  RangeSpectra out;
  out.num_chirps = cube.num_chirps();
  out.num_antennas = cube.num_antennas();
  out.range_bins = cfg.range_bins;
  out.data.resize(out.num_chirps * out.num_antennas * out.range_bins);

  std::vector<cfloat> buf(n);
  for (std::size_t q = 0; q < cube.num_chirps(); ++q) {
    for (std::size_t k = 0; k < cube.num_antennas(); ++k) {
      const cfloat* row = cube.row(q, k);
      for (std::size_t i = 0; i < n; ++i) buf[i] = row[i] * window[i];
      fft_inplace(buf);
      for (std::size_t r = 0; r < cfg.range_bins; ++r)
        out.at(q, k, r) = buf[r];
    }
  }
  check_finite(std::span<const cfloat>(out.data), "RangeSpectra",
               "range_fft/post-fft");
  if (cfg.remove_clutter) {
    remove_static_clutter(out);
    check_finite(std::span<const cfloat>(out.data), "RangeSpectra",
                 "range_fft/post-clutter-removal");
  }
  return out;
}

void remove_static_clutter(RangeSpectra& spectra) {
  const std::size_t q_total = spectra.num_chirps;
  if (q_total < 2) return;  // nothing to average against
  const float inv_q = 1.0F / static_cast<float>(q_total);
  for (std::size_t k = 0; k < spectra.num_antennas; ++k) {
    for (std::size_t r = 0; r < spectra.range_bins; ++r) {
      cfloat mean{0.0F, 0.0F};
      for (std::size_t q = 0; q < q_total; ++q) mean += spectra.at(q, k, r);
      mean *= inv_q;
      for (std::size_t q = 0; q < q_total; ++q) spectra.at(q, k, r) -= mean;
    }
  }
}

Tensor compute_rdi(const RadarCube& cube, const HeatmapConfig& cfg) {
  RangeSpectra spectra = range_fft(cube, cfg);
  const std::size_t q_total = spectra.num_chirps;
  const std::size_t d_bins = cfg.doppler_bins == 0 ? q_total : cfg.doppler_bins;
  MMHAR_REQUIRE(is_power_of_two(d_bins) && d_bins >= q_total,
                "doppler_bins must be a power of two >= num_chirps");

  const auto window = make_window(cfg.doppler_window, q_total);
  Tensor rdi({d_bins, spectra.range_bins});

  std::vector<cfloat> buf(d_bins);
  for (std::size_t k = 0; k < spectra.num_antennas; ++k) {
    for (std::size_t r = 0; r < spectra.range_bins; ++r) {
      std::fill(buf.begin(), buf.end(), cfloat{0.0F, 0.0F});
      for (std::size_t q = 0; q < q_total; ++q)
        buf[q] = spectra.at(q, k, r) * window[q];
      fft_inplace(buf);
      fftshift_inplace(std::span<cfloat>(buf));
      for (std::size_t d = 0; d < d_bins; ++d)
        rdi.at(d, r) += std::abs(buf[d]);
    }
  }
  Tensor out = cfg.normalize ? normalize01(rdi) : std::move(rdi);
  check_finite(out.flat(), "RDI", "compute_rdi");
  return out;
}

Tensor compute_drai(const RadarCube& cube, const HeatmapConfig& cfg) {
  RangeSpectra spectra = range_fft(cube, cfg);
  const std::size_t a_bins = cfg.angle_bins;
  MMHAR_REQUIRE(is_power_of_two(a_bins) && a_bins >= spectra.num_antennas,
                "angle_bins must be a power of two >= num_antennas");

  Tensor drai({spectra.range_bins, a_bins});
  std::vector<cfloat> buf(a_bins);
  for (std::size_t q = 0; q < spectra.num_chirps; ++q) {
    for (std::size_t r = 0; r < spectra.range_bins; ++r) {
      std::fill(buf.begin(), buf.end(), cfloat{0.0F, 0.0F});
      for (std::size_t k = 0; k < spectra.num_antennas; ++k)
        buf[k] = spectra.at(q, k, r);
      fft_inplace(buf);
      fftshift_inplace(std::span<cfloat>(buf));
      for (std::size_t a = 0; a < a_bins; ++a)
        drai.at(r, a) += std::abs(buf[a]);
    }
  }
  if (cfg.log_scale) drai = to_db(drai, cfg.db_floor);
  Tensor out = cfg.normalize ? normalize01(drai) : std::move(drai);
  check_finite(out.flat(), "DRAI", "compute_drai");
  return out;
}

Tensor range_profile(const RadarCube& cube, const HeatmapConfig& cfg) {
  RangeSpectra spectra = range_fft(cube, cfg);
  Tensor profile({spectra.range_bins});
  for (std::size_t q = 0; q < spectra.num_chirps; ++q)
    for (std::size_t k = 0; k < spectra.num_antennas; ++k)
      for (std::size_t r = 0; r < spectra.range_bins; ++r)
        profile[r] += std::abs(spectra.at(q, k, r));
  return profile;
}

Tensor compute_drai_sequence(const std::vector<RadarCube>& frames,
                             const HeatmapConfig& cfg) {
  MMHAR_REQUIRE(!frames.empty(), "empty frame sequence");
  HeatmapConfig frame_cfg = cfg;
  if (cfg.normalize_per_sequence) {
    frame_cfg.normalize = false;
    frame_cfg.log_scale = false;  // applied once over the whole sequence
  }
  Tensor seq({frames.size(), cfg.range_bins, cfg.angle_bins});
  for (std::size_t f = 0; f < frames.size(); ++f) {
    const Tensor h = compute_drai(frames[f], frame_cfg);
    std::copy(h.data(), h.data() + h.size(),
              seq.data() + f * cfg.range_bins * cfg.angle_bins);
  }
  if (cfg.normalize_per_sequence) {
    if (cfg.log_scale) seq = to_db(seq, cfg.db_floor);
    if (cfg.normalize) return normalize01(seq);
  }
  return seq;
}

}  // namespace mmhar::dsp
