#include "dsp/heatmap.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/finite_check.h"
#include "common/thread_pool.h"
#include "tensor/ops.h"

namespace mmhar::dsp {
namespace {

// Angle-FFT + fftshift + |.| accumulation over chirps for one frame,
// written straight into a [range_bins x angle_bins] row-major block. The
// chirp axis folds serially inside the engine, so the result is
// bit-identical for any thread count.
void drai_accum_into(const RangeSpectra& spectra, std::size_t a_bins,
                     float* out) {
  MMHAR_REQUIRE(is_power_of_two(a_bins) && a_bins >= spectra.num_antennas,
                "angle_bins must be a power of two >= num_antennas");
  FftManyJob job;
  job.n = a_bins;
  job.in = spectra.data.data();
  job.in_len = spectra.num_antennas;
  job.lanes = spectra.range_bins;
  job.in_lane_stride = 1;
  job.in_elem_stride = spectra.range_bins;
  job.reps = spectra.num_chirps;
  job.in_rep_stride = spectra.num_antennas * spectra.range_bins;
  fft_many_mag_accum(job, /*shift=*/true, out, a_bins, 1);
}

}  // namespace

RadarCube::RadarCube(std::size_t num_chirps, std::size_t num_antennas,
                     std::size_t num_samples)
    : num_chirps_(num_chirps),
      num_antennas_(num_antennas),
      num_samples_(num_samples),
      data_(num_chirps * num_antennas * num_samples, cfloat{0.0F, 0.0F}) {
  MMHAR_REQUIRE(num_chirps > 0 && num_antennas > 0 && num_samples > 0,
                "RadarCube dimensions must be positive");
}

cfloat& RadarCube::at(std::size_t chirp, std::size_t antenna,
                      std::size_t sample) {
  MMHAR_CHECK(chirp < num_chirps_ && antenna < num_antennas_ &&
              sample < num_samples_);
  return data_[(chirp * num_antennas_ + antenna) * num_samples_ + sample];
}

const cfloat& RadarCube::at(std::size_t chirp, std::size_t antenna,
                            std::size_t sample) const {
  MMHAR_CHECK(chirp < num_chirps_ && antenna < num_antennas_ &&
              sample < num_samples_);
  return data_[(chirp * num_antennas_ + antenna) * num_samples_ + sample];
}

cfloat* RadarCube::row(std::size_t chirp, std::size_t antenna) {
  return data_.data() + (chirp * num_antennas_ + antenna) * num_samples_;
}

const cfloat* RadarCube::row(std::size_t chirp, std::size_t antenna) const {
  return data_.data() + (chirp * num_antennas_ + antenna) * num_samples_;
}

void range_fft(const RadarCube& cube, const HeatmapConfig& cfg,
               RangeSpectra& out) {
  const std::size_t n = cube.num_samples();
  MMHAR_REQUIRE(is_power_of_two(n), "ADC sample count must be a power of two");
  MMHAR_REQUIRE(cfg.range_bins > 0 && cfg.range_bins <= n,
                "range_bins must be in (0, num_samples]");

  out.num_chirps = cube.num_chirps();
  out.num_antennas = cube.num_antennas();
  out.range_bins = cfg.range_bins;
  out.data.resize(out.num_chirps * out.num_antennas * out.range_bins);

  // Window multiply, FFT, and the range-bin crop run as one fused batched
  // pass: one transform per (chirp, antenna) row.
  FftManyJob job;
  job.n = n;
  job.in = cube.raw().data();
  job.in_len = n;
  job.window = cached_window(cfg.range_window, n).data();
  job.lanes = out.num_chirps * out.num_antennas;
  job.in_lane_stride = n;
  job.in_elem_stride = 1;
  fft_many_crop(job, cfg.range_bins, out.data.data(), cfg.range_bins, 1);

  check_finite(std::span<const cfloat>(out.data), "RangeSpectra",
               "range_fft/post-fft");
  if (cfg.remove_clutter) {
    remove_static_clutter(out);
    check_finite(std::span<const cfloat>(out.data), "RangeSpectra",
                 "range_fft/post-clutter-removal");
  }
}

RangeSpectra range_fft(const RadarCube& cube, const HeatmapConfig& cfg) {
  RangeSpectra out;
  range_fft(cube, cfg, out);
  return out;
}

namespace {

// Column range [lo, hi) of the clutter-removal sweep: per-column mean over
// chirps, then subtract. [chirp][antenna][range] layout makes every
// (antenna, range) cell one column of a [q_total x cols] matrix, so the
// sweeps run vectorized across contiguous columns. Columns are
// independent, which keeps the output bit-identical for any partitioning
// (pooled chunks or one serial call).
void clutter_columns(cfloat* base, std::size_t cols, std::size_t q_total,
                     float inv_q, std::size_t lo, std::size_t hi) {
  constexpr std::size_t kTile = 64;
  float mean_re[kTile];
  float mean_im[kTile];
  for (std::size_t c0 = lo; c0 < hi; c0 += kTile) {
    const std::size_t w = std::min(kTile, hi - c0);
    for (std::size_t t = 0; t < w; ++t) {
      mean_re[t] = 0.0F;
      mean_im[t] = 0.0F;
    }
    for (std::size_t q = 0; q < q_total; ++q) {
      const cfloat* row = base + q * cols + c0;
      for (std::size_t t = 0; t < w; ++t) {
        mean_re[t] += row[t].real();
        mean_im[t] += row[t].imag();
      }
    }
    for (std::size_t t = 0; t < w; ++t) {
      mean_re[t] *= inv_q;
      mean_im[t] *= inv_q;
    }
    for (std::size_t q = 0; q < q_total; ++q) {
      cfloat* row = base + q * cols + c0;
      for (std::size_t t = 0; t < w; ++t)
        row[t] -= cfloat(mean_re[t], mean_im[t]);
    }
  }
}

}  // namespace

void remove_static_clutter(RangeSpectra& spectra) {
  const std::size_t q_total = spectra.num_chirps;
  if (q_total < 2) return;  // nothing to average against
  const float inv_q = 1.0F / static_cast<float>(q_total);
  const std::size_t cols = spectra.num_antennas * spectra.range_bins;
  MMHAR_CHECK(spectra.data.size() == q_total * cols);
  cfloat* const base = spectra.data.data();
  global_pool().parallel_for_chunked(
      0, cols, [base, cols, q_total, inv_q](std::size_t lo, std::size_t hi) {
        clutter_columns(base, cols, q_total, inv_q, lo, hi);
      });
}

void remove_static_clutter_serial(cfloat* data, std::size_t num_chirps,
                                  std::size_t num_antennas,
                                  std::size_t range_bins) {
  if (num_chirps < 2) return;  // nothing to average against
  const float inv_q = 1.0F / static_cast<float>(num_chirps);
  const std::size_t cols = num_antennas * range_bins;
  clutter_columns(data, cols, num_chirps, inv_q, 0, cols);
}

void remove_static_clutter_serial(RangeSpectra& spectra) {
  MMHAR_CHECK(spectra.data.size() ==
              spectra.num_chirps * spectra.num_antennas * spectra.range_bins);
  remove_static_clutter_serial(spectra.data.data(), spectra.num_chirps,
                               spectra.num_antennas, spectra.range_bins);
}

Tensor compute_rdi(const RangeSpectra& spectra, const HeatmapConfig& cfg) {
  const std::size_t q_total = spectra.num_chirps;
  const std::size_t d_bins = cfg.doppler_bins == 0 ? q_total : cfg.doppler_bins;
  MMHAR_REQUIRE(is_power_of_two(d_bins) && d_bins >= q_total,
                "doppler_bins must be a power of two >= num_chirps");

  // Doppler FFT along the chirp axis: one transform per (antenna, range)
  // cell; the antenna axis folds as the engine's accumulation dimension.
  Tensor rdi({d_bins, spectra.range_bins});
  FftManyJob job;
  job.n = d_bins;
  job.in = spectra.data.data();
  job.in_len = q_total;
  job.window = cached_window(cfg.doppler_window, q_total).data();
  job.lanes = spectra.range_bins;
  job.in_lane_stride = 1;
  job.in_elem_stride = spectra.num_antennas * spectra.range_bins;
  job.reps = spectra.num_antennas;
  job.in_rep_stride = spectra.range_bins;
  fft_many_mag_accum(job, /*shift=*/true, rdi.data(), 1, spectra.range_bins);

  Tensor out = cfg.normalize ? normalize01(rdi) : std::move(rdi);
  check_finite(out.flat(), "RDI", "compute_rdi");
  return out;
}

Tensor compute_rdi(const RadarCube& cube, const HeatmapConfig& cfg) {
  return compute_rdi(range_fft(cube, cfg), cfg);
}

Tensor compute_drai(const RangeSpectra& spectra, const HeatmapConfig& cfg) {
  MMHAR_REQUIRE(cfg.angle_bins >= spectra.num_antennas &&
                    is_power_of_two(cfg.angle_bins),
                "angle_bins must be a power of two >= num_antennas");
  Tensor drai({spectra.range_bins, cfg.angle_bins});
  drai_accum_into(spectra, cfg.angle_bins, drai.data());
  if (cfg.log_scale) drai = to_db(drai, cfg.db_floor);
  Tensor out = cfg.normalize ? normalize01(drai) : std::move(drai);
  check_finite(out.flat(), "DRAI", "compute_drai");
  return out;
}

Tensor compute_drai(const RadarCube& cube, const HeatmapConfig& cfg) {
  return compute_drai(range_fft(cube, cfg), cfg);
}

Tensor range_profile(const RangeSpectra& spectra) {
  Tensor profile({spectra.range_bins});
  const std::size_t rows = spectra.num_chirps * spectra.num_antennas;
  const std::size_t bins = spectra.range_bins;
  MMHAR_CHECK(spectra.data.size() == rows * bins);
  const cfloat* const base = spectra.data.data();
  float* const out = profile.data();
  for (std::size_t row = 0; row < rows; ++row) {
    const cfloat* src = base + row * bins;
    for (std::size_t r = 0; r < bins; ++r) {
      const float re = src[r].real();
      const float im = src[r].imag();
      out[r] += std::sqrt(re * re + im * im);
    }
  }
  return profile;
}

Tensor range_profile(const RadarCube& cube, const HeatmapConfig& cfg) {
  return range_profile(range_fft(cube, cfg));
}

std::vector<RangeSpectra> compute_range_spectra(
    const std::vector<RadarCube>& frames, const HeatmapConfig& cfg) {
  MMHAR_REQUIRE(!frames.empty(), "empty frame sequence");
  std::vector<RangeSpectra> out(frames.size());
  parallel_for(0, frames.size(),
               [&](std::size_t f) { range_fft(frames[f], cfg, out[f]); });
  return out;
}

namespace {

// Shared tail of the two compute_drai_sequence overloads. `frame_fn`
// produces (a reference to) frame f's RangeSpectra; per-frame work is
// independent and lands in disjoint slices of `seq`, so the sequence is
// bit-identical for any thread count.
template <typename FrameFn>
Tensor drai_sequence_impl(std::size_t num_frames, const HeatmapConfig& cfg,
                          const FrameFn& frame_fn) {
  MMHAR_REQUIRE(num_frames > 0, "empty frame sequence");
  HeatmapConfig frame_cfg = cfg;
  if (cfg.normalize_per_sequence) {
    frame_cfg.normalize = false;
    frame_cfg.log_scale = false;  // applied once over the whole sequence
  }
  const std::size_t hw = cfg.range_bins * cfg.angle_bins;
  Tensor seq({num_frames, cfg.range_bins, cfg.angle_bins});
  MMHAR_CHECK(seq.size() == num_frames * hw);
  float* const seq_base = seq.data();
  global_pool().parallel_for_chunked(
      0, num_frames, [&](std::size_t lo, std::size_t hi) {
        // One reused spectra buffer per chunk: after the first frame the
        // Range-FFT stage runs allocation-free.
        RangeSpectra scratch;
        for (std::size_t f = lo; f < hi; ++f) {
          const RangeSpectra& spectra = frame_fn(f, scratch);
          if (frame_cfg.log_scale || frame_cfg.normalize) {
            // Per-frame post-ops (normalize_per_sequence == false).
            const Tensor h = compute_drai(spectra, frame_cfg);
            MMHAR_CHECK(h.size() == hw);
            std::copy(h.data(), h.data() + hw, seq_base + f * hw);
          } else {
            drai_accum_into(spectra, frame_cfg.angle_bins, seq_base + f * hw);
          }
        }
      });
  if (cfg.normalize_per_sequence) {
    if (cfg.log_scale) seq = to_db(seq, cfg.db_floor);
    if (cfg.normalize) seq = normalize01(seq);
  }
  check_finite(seq.flat(), "DRAI-sequence", "compute_drai_sequence");
  return seq;
}

}  // namespace

Tensor compute_drai_sequence(const std::vector<RadarCube>& frames,
                             const HeatmapConfig& cfg) {
  return drai_sequence_impl(
      frames.size(), cfg,
      [&frames, &cfg](std::size_t f, RangeSpectra& scratch) -> const RangeSpectra& {
        range_fft(frames[f], cfg, scratch);
        return scratch;
      });
}

Tensor compute_drai_sequence(const std::vector<RangeSpectra>& frames,
                             const HeatmapConfig& cfg) {
  return drai_sequence_impl(
      frames.size(), cfg,
      [&frames](std::size_t f, RangeSpectra&) -> const RangeSpectra& {
        return frames[f];
      });
}

}  // namespace mmhar::dsp
