#include "dsp/cfar.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace mmhar::dsp {

std::vector<Detection> cfar_detect(const Tensor& heatmap,
                                   const CfarConfig& config) {
  MMHAR_REQUIRE(heatmap.rank() == 2, "CFAR expects a rank-2 heatmap");
  MMHAR_REQUIRE(config.training_cells >= 1, "need at least one training cell");
  MMHAR_REQUIRE(config.threshold_factor > 0.0F,
                "threshold factor must be positive");
  const std::ptrdiff_t rows = static_cast<std::ptrdiff_t>(heatmap.dim(0));
  const std::ptrdiff_t cols = static_cast<std::ptrdiff_t>(heatmap.dim(1));
  const std::ptrdiff_t guard = static_cast<std::ptrdiff_t>(config.guard_cells);
  const std::ptrdiff_t outer =
      guard + static_cast<std::ptrdiff_t>(config.training_cells);

  std::vector<Detection> detections;
  for (std::ptrdiff_t r = 0; r < rows; ++r) {
    for (std::ptrdiff_t c = 0; c < cols; ++c) {
      if (!config.clip_borders &&
          (r < outer || r >= rows - outer || c < outer || c >= cols - outer))
        continue;

      double noise_sum = 0.0;
      std::size_t noise_count = 0;
      for (std::ptrdiff_t dr = -outer; dr <= outer; ++dr) {
        for (std::ptrdiff_t dc = -outer; dc <= outer; ++dc) {
          if (std::abs(dr) <= guard && std::abs(dc) <= guard)
            continue;  // guard window (includes the cell under test)
          const std::ptrdiff_t rr = r + dr;
          const std::ptrdiff_t cc = c + dc;
          if (rr < 0 || rr >= rows || cc < 0 || cc >= cols) continue;
          noise_sum += heatmap.at(static_cast<std::size_t>(rr),
                                  static_cast<std::size_t>(cc));
          ++noise_count;
        }
      }
      if (noise_count == 0) continue;
      const float noise =
          static_cast<float>(noise_sum / static_cast<double>(noise_count));
      const float value = heatmap.at(static_cast<std::size_t>(r),
                                     static_cast<std::size_t>(c));
      if (value > config.threshold_factor * noise) {
        detections.push_back(Detection{static_cast<std::size_t>(r),
                                       static_cast<std::size_t>(c), value,
                                       noise});
      }
    }
  }
  return detections;
}

std::vector<Detection> non_max_suppress(std::vector<Detection> detections,
                                        std::size_t radius) {
  std::sort(detections.begin(), detections.end(),
            [](const Detection& a, const Detection& b) {
              return a.value > b.value;
            });
  std::vector<Detection> kept;
  for (const Detection& d : detections) {
    bool suppressed = false;
    for (const Detection& k : kept) {
      const std::size_t dr = d.row > k.row ? d.row - k.row : k.row - d.row;
      const std::size_t dc = d.col > k.col ? d.col - k.col : k.col - d.col;
      if (dr <= radius && dc <= radius) {
        suppressed = true;
        break;
      }
    }
    if (!suppressed) kept.push_back(d);
  }
  return kept;
}

std::vector<Detection> detect_peaks(const Tensor& heatmap,
                                    const CfarConfig& config,
                                    std::size_t max_peaks,
                                    std::size_t nms_radius) {
  auto peaks = non_max_suppress(cfar_detect(heatmap, config), nms_radius);
  if (peaks.size() > max_peaks) peaks.resize(max_peaks);
  return peaks;
}

}  // namespace mmhar::dsp
