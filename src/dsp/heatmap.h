// Radar-cube processing: Range-FFT, Doppler-FFT, Angle-FFT, static-clutter
// removal, and the RDI / DRAI heatmap builders the HAR prototype consumes.
//
// Terminology follows the paper (§II-A):
//  * RDI  — Range-Doppler Image, per-frame [doppler_bins x range_bins].
//  * DRAI — Dynamic Range-Angle Image, per-frame [range_bins x angle_bins],
//           computed after clutter removal so only moving reflectors remain.
#pragma once

#include <cstddef>
#include <vector>

#include "common/thread_annotations.h"

#include "dsp/fft.h"
#include "dsp/window.h"
#include "tensor/tensor.h"

namespace mmhar::dsp {

/// One frame of raw IF samples: chirps x virtual antennas x ADC samples.
class RadarCube {
 public:
  RadarCube(std::size_t num_chirps, std::size_t num_antennas,
            std::size_t num_samples);

  std::size_t num_chirps() const { return num_chirps_; }
  std::size_t num_antennas() const { return num_antennas_; }
  std::size_t num_samples() const { return num_samples_; }

  cfloat& at(std::size_t chirp, std::size_t antenna, std::size_t sample);
  const cfloat& at(std::size_t chirp, std::size_t antenna,
                   std::size_t sample) const;

  /// Contiguous sample row for one (chirp, antenna) pair.
  cfloat* row(std::size_t chirp, std::size_t antenna);
  const cfloat* row(std::size_t chirp, std::size_t antenna) const;

  std::vector<cfloat>& raw() { return data_; }
  const std::vector<cfloat>& raw() const { return data_; }

 private:
  std::size_t num_chirps_;
  std::size_t num_antennas_;
  std::size_t num_samples_;
  std::vector<cfloat> data_;
};

/// Knobs for the FFT processing chain.
struct HeatmapConfig {
  std::size_t range_bins = 32;    ///< bins kept from the range FFT (crop)
  std::size_t angle_bins = 32;    ///< zero-padded angle-FFT length
  std::size_t doppler_bins = 0;   ///< 0 -> use num_chirps
  WindowKind range_window = WindowKind::Hann;
  WindowKind doppler_window = WindowKind::Hann;
  bool remove_clutter = true;     ///< MTI: subtract per-(antenna,range) mean
  bool normalize = true;          ///< min-max normalize the final heatmap
  /// Convert magnitudes to dB (with `db_floor` clamping) before
  /// normalization — the standard display/processing scale for radar
  /// heatmaps; compresses the dynamic range between strong and weak
  /// scatterers.
  bool log_scale = false;
  float db_floor = 1e-3F;
  /// Sequence builders normalize over the whole activity instead of per
  /// frame, preserving relative energy between frames (a frame with a
  /// strong reflector stays brighter than a quiet one).
  bool normalize_per_sequence = true;
};

/// Range spectra after windowed Range-FFT (and optional clutter removal):
/// layout [chirp][antenna][range_bin].
struct RangeSpectra {
  std::size_t num_chirps = 0;
  std::size_t num_antennas = 0;
  std::size_t range_bins = 0;
  std::vector<cfloat> data;

  cfloat& at(std::size_t chirp, std::size_t antenna, std::size_t bin) {
    return data[(chirp * num_antennas + antenna) * range_bins + bin];
  }
  const cfloat& at(std::size_t chirp, std::size_t antenna,
                   std::size_t bin) const {
    return data[(chirp * num_antennas + antenna) * range_bins + bin];
  }
};

/// Stage 1+2: windowed Range-FFT and (optionally) static clutter removal.
RangeSpectra range_fft(const RadarCube& cube, const HeatmapConfig& cfg);

/// As above, but reuses `out`'s storage (no allocation once it has grown
/// to size) — the form the sequence builders and other hot loops use.
void range_fft(const RadarCube& cube, const HeatmapConfig& cfg,
               RangeSpectra& out);

/// Subtract the across-chirp mean per (antenna, range) cell — removes
/// returns from static objects (walls, furniture, torso at rest).
void remove_static_clutter(RangeSpectra& spectra);

/// Serial form of remove_static_clutter: runs entirely on the calling
/// thread with no pool dispatch and no allocation. Columns are
/// independent, so the result is bit-identical to the pooled form — the
/// streaming batcher uses this inside its zero-alloc cycle.
void remove_static_clutter_serial(RangeSpectra& spectra);

/// Raw-pointer core of remove_static_clutter_serial over a
/// [num_chirps x num_antennas x range_bins] block that need not live in a
/// RangeSpectra (the serving layer's spectra arena).
void remove_static_clutter_serial(cfloat* data, std::size_t num_chirps,
                                  std::size_t num_antennas,
                                  std::size_t range_bins) MMHAR_REALTIME;

/// Range-Doppler Image: [doppler_bins x range_bins], Doppler-shifted so
/// zero velocity is the center row. Magnitudes are summed over antennas.
Tensor compute_rdi(const RadarCube& cube, const HeatmapConfig& cfg);

/// Spectra-reuse form: RDI from already-computed range spectra. Running
/// compute_rdi + compute_drai + range_profile over the same cube through
/// one range_fft() result executes the Range-FFT once instead of three
/// times.
Tensor compute_rdi(const RangeSpectra& spectra, const HeatmapConfig& cfg);

/// Dynamic Range-Angle Image: [range_bins x angle_bins]; angle axis is the
/// fftshifted zero-padded FFT across the virtual ULA, magnitudes summed
/// over chirps after clutter removal.
Tensor compute_drai(const RadarCube& cube, const HeatmapConfig& cfg);

/// Spectra-reuse form of compute_drai.
Tensor compute_drai(const RangeSpectra& spectra, const HeatmapConfig& cfg);

/// Non-coherent range profile (magnitude summed over chirps and antennas).
Tensor range_profile(const RadarCube& cube, const HeatmapConfig& cfg);

/// Spectra-reuse form of range_profile.
Tensor range_profile(const RangeSpectra& spectra);

/// Stage 1+2 for a whole activity: per-frame range spectra, threaded over
/// frames. The result can feed compute_drai_sequence and the per-frame
/// spectra overloads without re-running any Range-FFT.
std::vector<RangeSpectra> compute_range_spectra(
    const std::vector<RadarCube>& frames, const HeatmapConfig& cfg);

/// Process a whole activity (sequence of frames) into DRAI heatmaps:
/// returns a [frames x range_bins x angle_bins] tensor.
Tensor compute_drai_sequence(const std::vector<RadarCube>& frames,
                             const HeatmapConfig& cfg) MMHAR_DETERMINISTIC;

/// Spectra-reuse form of compute_drai_sequence (frames already through the
/// Range-FFT stage). Shares the MMHAR_DETERMINISTIC root above: detcheck
/// unions annotations across declarations by qualified name, so both
/// overload definitions are checked from the single annotated declaration
/// (annotating both would give the per-site annotation-deletion property a
/// blind spot — either site alone would keep the other covered).
Tensor compute_drai_sequence(const std::vector<RangeSpectra>& frames,
                             const HeatmapConfig& cfg);

}  // namespace mmhar::dsp
