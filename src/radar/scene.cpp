#include "radar/scene.h"

#include "mesh/primitives.h"

namespace mmhar::radar {

using mesh::Material;
using mesh::TriMesh;
using mesh::Vec3;

const char* environment_name(EnvironmentKind kind) {
  switch (kind) {
    case EnvironmentKind::None: return "none";
    case EnvironmentKind::Hallway: return "hallway";
    case EnvironmentKind::Classroom: return "classroom";
  }
  return "?";
}

TriMesh build_environment(EnvironmentKind kind) {
  TriMesh env;
  switch (kind) {
    case EnvironmentKind::None:
      break;

    case EnvironmentKind::Hallway: {
      // Two long drywall walls flanking the corridor.
      env.merge(mesh::make_plate({2.0, 1.6, 1.2}, {0.0, -1.0, 0.0},
                                 {0.0, 0.0, 1.0}, 5.0, 2.4,
                                 Material::drywall(), 3));
      env.merge(mesh::make_plate({2.0, -1.6, 1.2}, {0.0, 1.0, 0.0},
                                 {0.0, 0.0, 1.0}, 5.0, 2.4,
                                 Material::drywall(), 3));
      // End wall far behind the subject.
      env.merge(mesh::make_plate({4.5, 0.0, 1.2}, {-1.0, 0.0, 0.0},
                                 {0.0, 0.0, 1.0}, 3.0, 2.4,
                                 Material::drywall(), 2));
      // Chairs and a table along the walls.
      env.merge(mesh::make_box({2.6, 1.1, 0.0}, {3.0, 1.45, 0.85},
                               Material::wood()));
      env.merge(mesh::make_box({3.2, -1.45, 0.0}, {3.6, -1.1, 0.45},
                               Material::wood()));
      break;
    }

    case EnvironmentKind::Classroom: {
      // Back wall and one side wall.
      env.merge(mesh::make_plate({4.0, 0.0, 1.2}, {-1.0, 0.0, 0.0},
                                 {0.0, 0.0, 1.0}, 6.0, 2.4,
                                 Material::drywall(), 3));
      env.merge(mesh::make_plate({2.0, 2.4, 1.2}, {0.0, -1.0, 0.0},
                                 {0.0, 0.0, 1.0}, 5.0, 2.4,
                                 Material::drywall(), 3));
      // Rows of tables.
      env.merge(mesh::make_box({2.8, -1.6, 0.0}, {3.4, -0.6, 0.74},
                               Material::wood()));
      env.merge(mesh::make_box({2.8, 0.8, 0.0}, {3.4, 1.8, 0.74},
                               Material::wood()));
      // Wall-mounted television: a strong metal-backed plate.
      env.merge(mesh::make_plate({3.95, 0.8, 1.5}, {-1.0, 0.0, 0.0},
                                 {0.0, 0.0, 1.0}, 1.2, 0.7,
                                 Material::aluminum(), 2));
      break;
    }
  }
  return env;
}

}  // namespace mmhar::radar
