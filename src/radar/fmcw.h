// FMCW radar parameters and derived quantities.
//
// Models a scaled-down TI MMWCAS-RF-EVM-class cascade radar: 76–81 GHz
// band, a uniform linear array of virtual antennas at half-wavelength
// spacing along +y, frequency-modulated sawtooth chirps. The defaults are
// chosen so that (a) the paper's 0.8–2 m operating zone maps inside the
// cropped 32-bin range window and (b) a full activity (32 frames) is
// tractable to simulate on a laptop CPU. All counts are configurable; the
// real 86-virtual-antenna device is reproduced by raising
// `num_virtual_antennas` (the math is identical).
#pragma once

#include <cstddef>
#include <vector>

#include "common/hash.h"
#include "mesh/geometry.h"

namespace mmhar::radar {

struct FmcwConfig {
  double start_freq_hz = 77.0e9;   ///< chirp start frequency
  double bandwidth_hz = 2.0e9;     ///< swept bandwidth B
  double chirp_time_s = 0.5e-3;    ///< active ramp time T_c
  std::size_t num_samples = 64;    ///< ADC samples per chirp (power of two)
  std::size_t num_chirps = 16;     ///< chirps per frame (power of two)
  std::size_t num_virtual_antennas = 16;  ///< virtual ULA elements
  double tx_power_gain = 1.0e5;    ///< lumped ω/system gain of Eq. 3
  double noise_std = 0.02;         ///< AWGN std per IF sample (I and Q)

  // ---- Derived quantities ----
  double slope_hz_per_s() const { return bandwidth_hz / chirp_time_s; }
  double sample_rate_hz() const {
    return static_cast<double>(num_samples) / chirp_time_s;
  }
  double center_freq_hz() const { return start_freq_hz + 0.5 * bandwidth_hz; }
  double wavelength_m() const;
  /// c / (2B): spacing between range bins.
  double range_resolution_m() const;
  /// Range mapped to the last kept FFT bin given `range_bins` cropping.
  double max_range_m(std::size_t range_bins) const;
  /// Radial velocity at which inter-chirp phase wraps (±λ/(4 T_c)).
  double max_unambiguous_velocity_mps() const;

  /// y coordinate of virtual antenna k (λ/2 ULA centered on the origin).
  mesh::Vec3 antenna_position(std::size_t k) const;

  /// Expected range-FFT bin for a point at distance d.
  double range_bin_of(double distance_m) const;
  /// Expected (fftshifted) angle-FFT bin for azimuth `az` with `angle_bins`.
  double angle_bin_of(double azimuth_rad, std::size_t angle_bins) const;

  /// Mix the configuration into a Hasher (dataset cache keying).
  void hash_into(Hasher& h) const;
};

}  // namespace mmhar::radar
