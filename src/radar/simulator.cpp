#include "radar/simulator.h"

#include <cmath>
#include <complex>
#include <limits>

#include "common/check.h"
#include "common/thread_pool.h"

namespace mmhar::radar {
namespace {

constexpr double kSpeedOfLight = 299792458.0;
constexpr double kPi = 3.14159265358979323846;
constexpr double kFourPiSq = (4.0 * kPi) * (4.0 * kPi);

// IF-synthesis kernel geometry. The per-sample phasor recurrence advances
// kPhasorLanes independent lanes at once (lane l holds exp(i dphi (n+l)),
// each step multiplies every lane by exp(i dphi L)), which turns the
// serial complex-multiply chain into straight-line vectorizable code.
constexpr std::size_t kPhasorLanes = 16;
// Lanes are re-seeded from a double-precision anchor every
// kRenormInterval samples, bounding single-precision magnitude/phase
// drift regardless of num_samples.
constexpr std::size_t kRenormInterval = 4096;

// Fill tab_re/tab_im[n] = exp(i * dphi * n) for n in [0, count).
void fill_phasor_table(std::size_t count, double dphi, float* tab_re,
                       float* tab_im) {
  const std::complex<double> rot1(std::cos(dphi), std::sin(dphi));
  std::complex<double> anchor(1.0, 0.0);
  std::complex<double> rot_interval(1.0, 0.0);
  if (count > kRenormInterval)
    rot_interval = std::polar(1.0, dphi * static_cast<double>(kRenormInterval));

  for (std::size_t n0 = 0; n0 < count; n0 += kRenormInterval) {
    const std::size_t nend = std::min(count, n0 + kRenormInterval);
    // Seed the lanes (and the per-step lane rotation rot1^L) from the
    // double-precision anchor.
    float lane_re[kPhasorLanes];
    float lane_im[kPhasorLanes];
    std::complex<double> w(1.0, 0.0);
    for (std::size_t l = 0; l < kPhasorLanes; ++l) {
      const std::complex<double> v = anchor * w;
      lane_re[l] = static_cast<float>(v.real());
      lane_im[l] = static_cast<float>(v.imag());
      w *= rot1;
    }
    const float rot_re = static_cast<float>(w.real());
    const float rot_im = static_cast<float>(w.imag());

    std::size_t n = n0;
    for (; n + kPhasorLanes <= nend; n += kPhasorLanes) {
      for (std::size_t l = 0; l < kPhasorLanes; ++l) {
        tab_re[n + l] = lane_re[l];
        tab_im[n + l] = lane_im[l];
      }
      for (std::size_t l = 0; l < kPhasorLanes; ++l) {
        const float nr = lane_re[l] * rot_re - lane_im[l] * rot_im;
        const float ni = lane_re[l] * rot_im + lane_im[l] * rot_re;
        lane_re[l] = nr;
        lane_im[l] = ni;
      }
    }
    for (std::size_t l = 0; n < nend; ++n, ++l) {
      tab_re[n] = lane_re[l];
      tab_im[n] = lane_im[l];
    }
    anchor *= rot_interval;
  }
}

}  // namespace

Simulator::Simulator(FmcwConfig config, SimulatorOptions options)
    : config_(config), options_(options) {
  MMHAR_REQUIRE(dsp::is_power_of_two(config_.num_samples),
                "num_samples must be a power of two");
  MMHAR_REQUIRE(dsp::is_power_of_two(config_.num_chirps),
                "num_chirps must be a power of two");
  MMHAR_REQUIRE(config_.num_virtual_antennas >= 1, "need >= 1 antenna");
}

std::vector<Scatterer> Simulator::extract_scatterers(
    const mesh::TriMesh& now, const mesh::TriMesh* next,
    double frame_dt) const {
  if (next != nullptr) {
    MMHAR_REQUIRE(next->num_triangles() == now.num_triangles(),
                  "frame topology mismatch: " << now.num_triangles() << " vs "
                                              << next->num_triangles());
    MMHAR_REQUIRE(frame_dt != 0.0, "frame_dt must be nonzero with motion");
  }

  const std::size_t t_count = now.num_triangles();
  std::vector<Scatterer> scatterers;
  scatterers.reserve(t_count / 2);

  struct Candidate {
    Scatterer s;
    double range;
    double azimuth;
    double elevation;
  };
  std::vector<Candidate> candidates;
  candidates.reserve(t_count / 2);

  for (std::size_t t = 0; t < t_count; ++t) {
    const mesh::Vec3 p = now.triangle_centroid(t);
    const double d = mesh::norm(p);
    if (d < 1e-6) continue;  // coincident with the radar
    const mesh::Vec3 to_radar = p * (-1.0 / d);
    const double cos_inc = mesh::dot(now.triangle_normal(t), to_radar);
    if (options_.cull_backfaces && cos_inc <= 0.0) continue;

    const double a_g = std::abs(cos_inc);  // geometric gain factor
    const double a_m = now.triangle_material(t).reflectivity;
    const double a_a = now.triangle_area(t);
    const double amp =
        config_.tx_power_gain * a_g * a_m * a_a / (kFourPiSq * d * d);
    if (amp <= 0.0) continue;

    double v_r = 0.0;
    if (next != nullptr) {
      const double d2 = mesh::norm(next->triangle_centroid(t));
      v_r = (d2 - d) / frame_dt;
    }

    Candidate c;
    c.s = Scatterer{p, amp, v_r};
    c.range = d;
    c.azimuth = std::atan2(p.y, p.x);
    c.elevation = std::asin(std::clamp(p.z / d, -1.0, 1.0));
    candidates.push_back(c);
  }

  if (!options_.sector_occlusion) {
    for (const auto& c : candidates) scatterers.push_back(c.s);
    return scatterers;
  }

  // Coarse occlusion: per angular sector keep only scatterers within
  // `occlusion_margin_m` of the sector's nearest hit.
  const std::size_t az_n = options_.occlusion_azimuth_sectors;
  const std::size_t el_n = options_.occlusion_elevation_sectors;
  std::vector<double> nearest(az_n * el_n,
                              std::numeric_limits<double>::infinity());
  const auto sector_of = [&](const Candidate& c) {
    const double az01 = (c.azimuth + kPi) / (2.0 * kPi);
    const double el01 = (c.elevation + kPi / 2.0) / kPi;
    const std::size_t ai = std::min<std::size_t>(
        az_n - 1, static_cast<std::size_t>(az01 * static_cast<double>(az_n)));
    const std::size_t ei = std::min<std::size_t>(
        el_n - 1, static_cast<std::size_t>(el01 * static_cast<double>(el_n)));
    return ai * el_n + ei;
  };
  for (const auto& c : candidates) {
    double& d = nearest[sector_of(c)];
    d = std::min(d, c.range);
  }
  for (const auto& c : candidates) {
    if (c.range <= nearest[sector_of(c)] + options_.occlusion_margin_m)
      scatterers.push_back(c.s);
  }
  return scatterers;
}

dsp::RadarCube Simulator::synthesize(const std::vector<Scatterer>& scatterers,
                                     Rng* rng) const {
  const std::size_t q_n = config_.num_chirps;
  const std::size_t k_n = config_.num_virtual_antennas;
  const std::size_t n_n = config_.num_samples;
  dsp::RadarCube cube(q_n, k_n, n_n);

  const double f_c = config_.center_freq_hz();
  const double slope = config_.slope_hz_per_s();
  const double ts = 1.0 / config_.sample_rate_hz();
  const double tc = config_.chirp_time_s;

  std::vector<mesh::Vec3> antennas(k_n);
  for (std::size_t k = 0; k < k_n; ++k)
    antennas[k] = config_.antenna_position(k);

  // Structure-of-arrays kernel, parallel over antennas so even a single
  // frame (the shape the Eq. 2 candidate-position search issues) uses the
  // whole pool. One task owns a contiguous antenna range and accumulates
  // all scatterers in their given order, so the per-element reduction
  // order — and therefore the output — is identical for any MMHAR_THREADS.
  if (!scatterers.empty()) {
    global_pool().parallel_for_chunked(0, k_n, [&](std::size_t klo,
                                                   std::size_t khi) {
      // Split real/imag accumulation planes for this antenna's chirps,
      // plus the per-(scatterer, antenna) sample-phasor table
      // exp(i dphi_n n): all plain float arrays the compiler vectorizes.
      std::vector<float> re(q_n * n_n);
      std::vector<float> im(q_n * n_n);
      std::vector<float> tab_re(n_n);
      std::vector<float> tab_im(n_n);
      for (std::size_t k = klo; k < khi; ++k) {
        std::fill(re.begin(), re.end(), 0.0F);
        std::fill(im.begin(), im.end(), 0.0F);
        for (const auto& s : scatterers) {
          const double d_tx = mesh::norm(s.position);
          if (d_tx < 1e-6) continue;
          // Per-chirp Doppler rotation from the radial velocity (two-way
          // path).
          const double dphi_q = -2.0 * kPi * f_c *
                                (2.0 * s.radial_velocity * tc) /
                                kSpeedOfLight;
          const double d_rx = mesh::distance(s.position, antennas[k]);
          const double path = d_tx + d_rx;
          // Carrier phase (angle information) and beat step (range
          // information).
          const double phi0 = -2.0 * kPi * f_c * path / kSpeedOfLight;
          const double dphi_n = 2.0 * kPi * slope * path / kSpeedOfLight * ts;
          fill_phasor_table(n_n, dphi_n, tab_re.data(), tab_im.data());

          // The chirp base advances in double precision (drift-free for
          // any chirp count); each chirp row is then a rank-1 complex
          // update row[n] += base_q * tab[n] with no loop-carried
          // dependency.
          const std::complex<double> rot_q(std::cos(dphi_q),
                                           std::sin(dphi_q));
          std::complex<double> base =
              std::polar(s.amplitude, phi0);
          MMHAR_REQUIRE(re.size() == q_n * n_n && tab_re.size() == n_n,
                        "IF plane size mismatch before accumulation");
          for (std::size_t q = 0; q < q_n; ++q) {
            const float br = static_cast<float>(base.real());
            const float bi = static_cast<float>(base.imag());
            float* row_re = re.data() + q * n_n;
            float* row_im = im.data() + q * n_n;
            for (std::size_t n = 0; n < n_n; ++n) {
              row_re[n] += br * tab_re[n] - bi * tab_im[n];
              row_im[n] += br * tab_im[n] + bi * tab_re[n];
            }
            base *= rot_q;
          }
        }
        // Interleave the planes back into the cube, one write per row.
        MMHAR_REQUIRE(re.size() == q_n * n_n && im.size() == q_n * n_n,
                      "IF plane size mismatch before interleave");
        for (std::size_t q = 0; q < q_n; ++q) {
          dsp::cfloat* row = cube.row(q, k);
          const float* row_re = re.data() + q * n_n;
          const float* row_im = im.data() + q * n_n;
          for (std::size_t n = 0; n < n_n; ++n)
            row[n] = dsp::cfloat(row_re[n], row_im[n]);
        }
      }
    });
  }

  if (rng != nullptr && config_.noise_std > 0.0) {
    const double sigma = config_.noise_std;
    for (auto& v : cube.raw()) {
      v += dsp::cfloat(static_cast<float>(rng->normal(0.0, sigma)),
                       static_cast<float>(rng->normal(0.0, sigma)));
    }
  }
  return cube;
}

dsp::RadarCube Simulator::simulate_frame(const SceneFrame& frame,
                                         const mesh::TriMesh* next_dynamic,
                                         double frame_dt, Rng* rng) const {
  auto scatterers =
      extract_scatterers(frame.dynamic_mesh, next_dynamic, frame_dt);
  if (frame.static_mesh != nullptr) {
    const auto env = extract_scatterers(*frame.static_mesh, nullptr, 0.0);
    scatterers.insert(scatterers.end(), env.begin(), env.end());
  }
  return synthesize(scatterers, rng);
}

std::vector<dsp::RadarCube> Simulator::simulate_sequence(
    const std::vector<mesh::TriMesh>& dynamic_frames,
    const mesh::TriMesh* static_mesh, double frame_dt, Rng* rng) const {
  MMHAR_REQUIRE(!dynamic_frames.empty(), "empty dynamic frame sequence");
  const std::size_t f_n = dynamic_frames.size();

  // Environment scatterers are static: extract once, share across frames.
  std::vector<Scatterer> env;
  if (static_mesh != nullptr)
    env = extract_scatterers(*static_mesh, nullptr, 0.0);

  // Fork one RNG per frame up front so parallel execution is deterministic.
  std::vector<Rng> frame_rngs;
  if (rng != nullptr) {
    frame_rngs.reserve(f_n);
    for (std::size_t f = 0; f < f_n; ++f)
      frame_rngs.push_back(rng->fork(f + 1));
  }

  std::vector<dsp::RadarCube> cubes;
  cubes.reserve(f_n);
  for (std::size_t f = 0; f < f_n; ++f)
    cubes.emplace_back(config_.num_chirps, config_.num_virtual_antennas,
                       config_.num_samples);

  parallel_for(0, f_n, [&](std::size_t f) {
    // Velocities come from the forward difference; the last frame reuses
    // the backward difference so every frame has consistent Doppler. A
    // single-frame sequence has no neighbor at all — don't form
    // &dynamic_frames[f - 1] (index -1) in that case.
    std::vector<Scatterer> scatterers;
    if (f_n == 1) {
      scatterers = extract_scatterers(dynamic_frames[f], nullptr, 0.0);
    } else {
      const bool last = f + 1 == f_n;
      const mesh::TriMesh* next =
          last ? &dynamic_frames[f - 1] : &dynamic_frames[f + 1];
      const double dt = last ? -frame_dt : frame_dt;
      scatterers = extract_scatterers(dynamic_frames[f], next, dt);
    }
    scatterers.insert(scatterers.end(), env.begin(), env.end());
    Rng* frame_rng = rng != nullptr ? &frame_rngs[f] : nullptr;
    cubes[f] = synthesize(scatterers, frame_rng);
  });
  return cubes;
}

}  // namespace mmhar::radar
