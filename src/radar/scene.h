// Scene assembly: world-frame geometry the radar illuminates each frame.
//
// A scene frame combines (a) the posed human body (plus optional trigger
// patch, attached by the attack module) and (b) a static environment.
// Two environment presets mirror the paper's setups: the dormitory
// hallway used for training-data collection (§VI-B) and the classroom
// used for the cross-environment attacks (§VI-C).
#pragma once

#include <cstddef>
#include <vector>

#include "mesh/trimesh.h"

namespace mmhar::radar {

enum class EnvironmentKind {
  None,        ///< free space (unit tests)
  Hallway,     ///< training environment: long walls, chairs, tables
  Classroom,   ///< attacking environment: tables, chairs, televisions
};

const char* environment_name(EnvironmentKind kind);

/// Build the static environment mesh in world coordinates (radar at the
/// origin, boresight +x). Static geometry is suppressed by MTI clutter
/// removal but raises the pre-removal signal floor, as in reality.
mesh::TriMesh build_environment(EnvironmentKind kind);

/// One frame of world geometry: dynamic part (body [+ trigger]) changes
/// per frame, static part is shared.
struct SceneFrame {
  mesh::TriMesh dynamic_mesh;             ///< world coordinates
  const mesh::TriMesh* static_mesh = nullptr;  ///< optional, world coords
};

}  // namespace mmhar::radar
