#include "radar/fmcw.h"

#include <cmath>

#include "common/check.h"

namespace mmhar::radar {

namespace {
constexpr double kSpeedOfLight = 299792458.0;
}

double FmcwConfig::wavelength_m() const {
  return kSpeedOfLight / center_freq_hz();
}

double FmcwConfig::range_resolution_m() const {
  return kSpeedOfLight / (2.0 * bandwidth_hz);
}

double FmcwConfig::max_range_m(std::size_t range_bins) const {
  return range_resolution_m() * static_cast<double>(range_bins);
}

double FmcwConfig::max_unambiguous_velocity_mps() const {
  return wavelength_m() / (4.0 * chirp_time_s);
}

mesh::Vec3 FmcwConfig::antenna_position(std::size_t k) const {
  MMHAR_REQUIRE(k < num_virtual_antennas, "antenna index out of range");
  const double spacing = 0.5 * wavelength_m();
  const double offset =
      (static_cast<double>(k) -
       0.5 * static_cast<double>(num_virtual_antennas - 1)) *
      spacing;
  return {0.0, offset, 0.0};
}

double FmcwConfig::range_bin_of(double distance_m) const {
  // Beat frequency f_b = S * 2d/c lands on bin f_b * T_c = d / range_res.
  return distance_m / range_resolution_m();
}

double FmcwConfig::angle_bin_of(double azimuth_rad,
                                std::size_t angle_bins) const {
  // Spatial frequency across a λ/2 ULA is 0.5*sin(az) cycles per element;
  // after an `angle_bins`-point FFT and fftshift, the center bin is
  // angle_bins/2 and each bin spans 1/angle_bins cycles.
  const double f = 0.5 * std::sin(azimuth_rad);
  return static_cast<double>(angle_bins) / 2.0 +
         f * static_cast<double>(angle_bins);
}

void FmcwConfig::hash_into(Hasher& h) const {
  h.mix(start_freq_hz)
      .mix(bandwidth_hz)
      .mix(chirp_time_s)
      .mix(num_samples)
      .mix(num_chirps)
      .mix(num_virtual_antennas)
      .mix(tx_power_gain)
      .mix(noise_std);
}

}  // namespace mmhar::radar
