// FMCW IF-signal simulator — the function R_e of the paper (Eq. 2/3).
//
// Implements Eq. 3: the IF signal at time t on virtual antenna k is the
// coherent sum over visible reflective triangles i of
//
//     (ω A_g A_m A_a / (4π)^2 d_Ti d_iR) · exp(j φ_i(t, k, q))
//
// with amplitude factors: A_g the geometric gain (cosine of the incidence
// angle), A_m the material reflectivity, A_a the triangle area, and the
// two-way spreading loss. The phase combines the carrier term
// −2π f_c (d_Ti + d_iR)/c (exact per virtual antenna — this carries the
// angle information), the beat term +2π S τ t (this carries range), and a
// per-chirp Doppler rotation derived from the triangle's radial velocity
// between consecutive frames.
//
// Per-triangle contributions factorize as rank-1 phasor products over
// (antenna, chirp, sample). The synthesis kernel is structure-of-arrays:
// per (scatterer, antenna) the sample phasor exp(i dphi_n n) is tabulated
// once with a multi-lane rotation recurrence (re-seeded from a
// double-precision anchor every few thousand samples to bound float
// drift), then every chirp row is a branch-free rank-1 complex update
// against split real/imag planes. Antennas are distributed over the
// thread pool inside a single frame, and frames of a sequence are
// distributed over it as well (nested calls run inline); outputs are
// bit-identical for any MMHAR_THREADS. Visibility = back-face culling
// toward the radar plus an optional coarse spherical-sector occlusion
// test.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "common/thread_annotations.h"
#include "dsp/heatmap.h"
#include "mesh/trimesh.h"
#include "radar/fmcw.h"
#include "radar/scene.h"

namespace mmhar::radar {

struct SimulatorOptions {
  bool cull_backfaces = true;
  /// Coarse occlusion: drop triangles whose line of sight passes close to
  /// a nearer triangle in the same angular sector. Cheap but effective
  /// for a single body in front of walls.
  bool sector_occlusion = true;
  std::size_t occlusion_azimuth_sectors = 64;
  std::size_t occlusion_elevation_sectors = 32;
  double occlusion_margin_m = 0.15;
};

/// A triangle reduced to its radar-relevant parameters.
struct Scatterer {
  mesh::Vec3 position;   ///< centroid, world frame
  double amplitude = 0;  ///< ω A_g A_m A_a / ((4π)^2 d^2), at the TX
  double radial_velocity = 0.0;  ///< m/s, + receding
};

class Simulator {
 public:
  explicit Simulator(FmcwConfig config, SimulatorOptions options = {});

  const FmcwConfig& config() const { return config_; }

  /// Reduce a world-frame mesh to visible scatterers. `next` (same
  /// topology, the geometry one frame later) supplies per-triangle radial
  /// velocities; pass nullptr for a static snapshot.
  std::vector<Scatterer> extract_scatterers(const mesh::TriMesh& now,
                                            const mesh::TriMesh* next,
                                            double frame_dt) const;

  /// Synthesize one frame of IF samples from explicit scatterers.
  /// `rng` (optional) adds complex AWGN of std config.noise_std.
  dsp::RadarCube synthesize(const std::vector<Scatterer>& scatterers,
                            Rng* rng = nullptr) const MMHAR_DETERMINISTIC;

  /// Convenience: scatterer extraction + synthesis for one scene frame.
  dsp::RadarCube simulate_frame(const SceneFrame& frame,
                                const mesh::TriMesh* next_dynamic,
                                double frame_dt, Rng* rng = nullptr) const;

  /// Simulate a whole activity: `dynamic_frames` share topology; the
  /// static environment (optional) is appended to every frame. Frames are
  /// processed in parallel on the global thread pool. Returns one
  /// RadarCube per frame.
  std::vector<dsp::RadarCube> simulate_sequence(
      const std::vector<mesh::TriMesh>& dynamic_frames,
      const mesh::TriMesh* static_mesh, double frame_dt,
      Rng* rng = nullptr) const MMHAR_DETERMINISTIC;

 private:
  FmcwConfig config_;
  SimulatorOptions options_;
};

}  // namespace mmhar::radar
