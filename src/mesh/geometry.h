// Basic 3-D vector algebra for the mesh and radar modules.
//
// Coordinate convention (shared across the library):
//   * the radar sits at the origin,
//   * +x is boresight (range direction),
//   * +y is horizontal to the radar's left (the virtual ULA axis),
//   * +z is up.
// Azimuth angle is measured from boresight toward +y.
#pragma once

#include <cmath>

namespace mmhar::mesh {

struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  Vec3() = default;
  Vec3(double x_, double y_, double z_) : x(x_), y(y_), z(z_) {}

  Vec3 operator+(const Vec3& o) const { return {x + o.x, y + o.y, z + o.z}; }
  Vec3 operator-(const Vec3& o) const { return {x - o.x, y - o.y, z - o.z}; }
  Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }
  Vec3 operator/(double s) const { return {x / s, y / s, z / s}; }
  Vec3& operator+=(const Vec3& o) {
    x += o.x;
    y += o.y;
    z += o.z;
    return *this;
  }
  Vec3& operator-=(const Vec3& o) {
    x -= o.x;
    y -= o.y;
    z -= o.z;
    return *this;
  }
  Vec3 operator-() const { return {-x, -y, -z}; }
};

inline double dot(const Vec3& a, const Vec3& b) {
  return a.x * b.x + a.y * b.y + a.z * b.z;
}

inline Vec3 cross(const Vec3& a, const Vec3& b) {
  return {a.y * b.z - a.z * b.y, a.z * b.x - a.x * b.z,
          a.x * b.y - a.y * b.x};
}

inline double norm(const Vec3& a) { return std::sqrt(dot(a, a)); }

inline double distance(const Vec3& a, const Vec3& b) { return norm(a - b); }

inline Vec3 normalized(const Vec3& a) {
  const double n = norm(a);
  return n > 0.0 ? a / n : Vec3{0.0, 0.0, 0.0};
}

/// Rotate `v` around the z axis by `angle` radians (counterclockwise
/// looking down −z, i.e. boresight toward +y for positive angles).
inline Vec3 rotate_z(const Vec3& v, double angle) {
  const double c = std::cos(angle);
  const double s = std::sin(angle);
  return {c * v.x - s * v.y, s * v.x + c * v.y, v.z};
}

/// Azimuth of a point as seen from the radar origin: atan2(y, x).
inline double azimuth_of(const Vec3& p) { return std::atan2(p.y, p.x); }

/// Range of a point from the radar origin.
inline double range_of(const Vec3& p) { return norm(p); }

constexpr double kPi = 3.14159265358979323846;

inline double deg2rad(double deg) { return deg * kPi / 180.0; }
inline double rad2deg(double rad) { return rad * 180.0 / kPi; }

}  // namespace mmhar::mesh
