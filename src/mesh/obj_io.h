// Wavefront OBJ export for triangle meshes (debugging/visualization).
//
// Meshes and whole animation sequences can be dumped and inspected in any
// 3-D viewer — the fastest way to sanity-check body poses, trigger
// placement, and world placement.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "mesh/trimesh.h"

namespace mmhar::mesh {

/// Write one mesh in OBJ format (vertices + faces, 1-indexed).
void write_obj(std::ostream& os, const TriMesh& mesh);

/// Write a mesh to a file; throws IoError on failure.
void save_obj(const std::string& path, const TriMesh& mesh);

/// Write an animation as numbered files `<prefix>_0000.obj`, ...
void save_obj_sequence(const std::string& prefix,
                       const std::vector<TriMesh>& frames);

/// Parse an OBJ stream back (vertices + triangular faces only; materials
/// are not round-tripped). Used by tests to verify the writer.
TriMesh read_obj(std::istream& is);

}  // namespace mmhar::mesh
