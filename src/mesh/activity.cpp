#include "mesh/activity.h"

#include <cmath>

#include "common/check.h"

namespace mmhar::mesh {

const char* activity_name(Activity a) {
  switch (a) {
    case Activity::Push: return "Push";
    case Activity::Pull: return "Pull";
    case Activity::LeftSwipe: return "LeftSwipe";
    case Activity::RightSwipe: return "RightSwipe";
    case Activity::Clockwise: return "Clockwise";
    case Activity::Anticlockwise: return "Anticlockwise";
  }
  return "?";
}

Activity activity_from_index(std::size_t i) {
  MMHAR_REQUIRE(i < kNumActivities, "activity index " << i << " out of range");
  return static_cast<Activity>(i);
}

bool similar_trajectories(Activity a, Activity b) {
  const auto pair_id = [](Activity x) {
    switch (x) {
      case Activity::Push:
      case Activity::Pull:
        return 0;
      case Activity::LeftSwipe:
      case Activity::RightSwipe:
        return 1;
      case Activity::Clockwise:
      case Activity::Anticlockwise:
        return 2;
    }
    return -1;
  };
  return a != b && pair_id(a) == pair_id(b);
}

std::vector<Vec3> body_sway_offsets(const MotionJitter& jitter,
                                    std::size_t num_frames,
                                    double duration_s, Rng& rng) {
  MMHAR_REQUIRE(num_frames >= 1 && duration_s > 0.0, "bad sway parameters");
  const double amp =
      std::max(0.0, jitter.sway_amplitude_m * (1.0 + 0.25 * rng.normal()));
  const double freq = jitter.sway_freq_hz * (1.0 + 0.1 * rng.normal());
  const double phase = rng.uniform(0.0, 2.0 * kPi);
  const double bob_amp = 0.35 * amp;  // small vertical component

  std::vector<Vec3> offsets(num_frames);
  for (std::size_t f = 0; f < num_frames; ++f) {
    const double t =
        duration_s * static_cast<double>(f) / static_cast<double>(num_frames);
    // Radial (local x) sway dominates; it is what produces Doppler.
    offsets[f] = Vec3{amp * std::sin(2.0 * kPi * freq * t + phase), 0.0,
                      bob_amp * std::sin(4.0 * kPi * freq * t + 0.7 * phase)};
  }
  return offsets;
}

ActivityAnimator::ActivityAnimator(const HumanBody& body, MotionJitter jitter)
    : body_(body), jitter_(jitter) {}

Vec3 ActivityAnimator::gesture_center() const {
  // In front of the right shoulder, slightly below it — a natural
  // "ready" position for hand gestures toward the radar.
  const Vec3 s = body_.right_shoulder();
  return {s.x - 0.38, s.y + 0.02, s.z - 0.10};
}

std::vector<Vec3> ActivityAnimator::hand_trajectory(Activity activity,
                                                    std::size_t num_frames,
                                                    Rng& rng) const {
  MMHAR_REQUIRE(num_frames >= 2, "need at least two frames");

  // Per-repetition jitter draws.
  const double amp_scale = 1.0 + jitter_.amplitude_sigma * rng.normal();
  const double phase = jitter_.phase_sigma * rng.normal();
  const Vec3 center = gesture_center() +
                      Vec3{jitter_.center_sigma * rng.normal(),
                           jitter_.center_sigma * rng.normal(),
                           jitter_.center_sigma * rng.normal()};

  // Gesture amplitudes (meters).
  const double push_amp = 0.26 * amp_scale;   // radial excursion
  const double swipe_amp = 0.24 * amp_scale;  // lateral excursion
  const double turn_radius = 0.17 * amp_scale;

  std::vector<Vec3> traj(num_frames);
  for (std::size_t f = 0; f < num_frames; ++f) {
    const double t =
        static_cast<double>(f) / static_cast<double>(num_frames - 1) + phase;
    Vec3 p = center;
    switch (activity) {
      case Activity::Push:
        // Extend toward the radar (local -x) and return.
        p.x -= push_amp * std::sin(kPi * t);
        break;
      case Activity::Pull:
        // Start extended, pull in, re-extend — the time-mirror of Push.
        p.x -= push_amp * (1.0 - std::sin(kPi * t));
        break;
      case Activity::LeftSwipe:
        // Sweep toward the person's left (local -y) and back.
        p.y -= swipe_amp * std::sin(kPi * t);
        break;
      case Activity::RightSwipe:
        p.y += swipe_amp * std::sin(kPi * t);
        break;
      case Activity::Clockwise:
        // Circle in the frontal (y-z) plane, clockwise as the radar sees it.
        p.y += turn_radius * std::sin(2.0 * kPi * t);
        p.z += turn_radius * std::cos(2.0 * kPi * t) - turn_radius;
        break;
      case Activity::Anticlockwise:
        p.y -= turn_radius * std::sin(2.0 * kPi * t);
        p.z += turn_radius * std::cos(2.0 * kPi * t) - turn_radius;
        break;
    }
    // Per-frame tremor.
    p += Vec3{jitter_.tremor_sigma * rng.normal(),
              jitter_.tremor_sigma * rng.normal(),
              jitter_.tremor_sigma * rng.normal()};
    traj[f] = p;
  }
  return traj;
}

std::vector<HumanPose> ActivityAnimator::animate(Activity activity,
                                                 std::size_t num_frames,
                                                 Rng& rng) const {
  const auto traj = hand_trajectory(activity, num_frames, rng);
  std::vector<HumanPose> poses(traj.size());
  for (std::size_t f = 0; f < traj.size(); ++f)
    poses[f].right_hand = traj[f];
  return poses;
}

}  // namespace mmhar::mesh
