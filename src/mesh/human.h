// Procedural articulated human body.
//
// Substitutes the paper's RGBD + GLoT video-to-mesh pipeline: the body is
// assembled from capsules/spheres (torso, head, legs, two arms) in a
// body-local frame, with the gesturing right arm posed by a two-bone IK
// from a hand target. The local frame convention: feet center at the
// origin, +z up, the person FACES the local -x direction (so after
// `place_in_world` the chest points at the radar).
#pragma once

#include <string>
#include <vector>

#include "mesh/trimesh.h"

namespace mmhar::mesh {

/// Per-participant body dimensions (meters).
struct BodyParams {
  double height = 1.75;
  double shoulder_half_width = 0.21;
  double torso_radius = 0.14;
  double head_radius = 0.10;
  double upper_arm_length = 0.30;
  double forearm_length = 0.28;
  double arm_radius = 0.045;
  double leg_radius = 0.07;
  double hand_radius = 0.05;

  /// Three participants of different heights (paper §VI-B).
  static BodyParams participant(int id);
};

/// Named positions on the body surface where a trigger may be taped.
/// The paper's optimal positions are on the torso front; `RightThigh`
/// is the "suboptimal (e.g., on the leg)" ablation location (Table I).
enum class BodyAnchor {
  Chest,
  UpperChestLeft,
  UpperChestRight,
  Abdomen,
  Waist,
  LeftThigh,
  RightThigh,
};

inline constexpr std::size_t kNumAnchors = 7;

const char* anchor_name(BodyAnchor a);
std::vector<BodyAnchor> all_anchors();

/// Pose: world targets are expressed in the body-local frame.
struct HumanPose {
  Vec3 right_hand{-0.35, -0.20, 1.30};  ///< gesturing hand target
};

class HumanBody {
 public:
  explicit HumanBody(BodyParams params);

  const BodyParams& params() const { return params_; }

  /// Assemble the posed body mesh in the body-local frame.
  TriMesh build(const HumanPose& pose) const;

  /// Surface position of an anchor in the body-local frame.
  Vec3 anchor_position(BodyAnchor a) const;

  /// Outward surface normal at an anchor (local frame).
  Vec3 anchor_normal(BodyAnchor a) const;

  /// Shoulder joint of the gesturing (right) arm, local frame.
  Vec3 right_shoulder() const;

  /// Resting hand position, local frame.
  Vec3 rest_hand() const;

 private:
  BodyParams params_;
};

/// Rigidly place local-frame geometry at a (distance, azimuth) position:
/// rotates by `angle_rad` about z then translates so the body stands at
/// range `distance_m` from the radar; the person ends up facing the radar.
void place_in_world(TriMesh& mesh, double distance_m, double angle_rad);

/// Same transform applied to a single local-frame point.
Vec3 place_point_in_world(const Vec3& local, double distance_m,
                          double angle_rad);

}  // namespace mmhar::mesh
