#include "mesh/human.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "mesh/primitives.h"

namespace mmhar::mesh {

BodyParams BodyParams::participant(int id) {
  BodyParams p;
  switch (((id % 3) + 3) % 3) {
    case 0:
      p.height = 1.82;
      p.shoulder_half_width = 0.225;
      p.torso_radius = 0.15;
      break;
    case 1:
      p.height = 1.73;
      p.shoulder_half_width = 0.21;
      p.torso_radius = 0.14;
      break;
    case 2:
      p.height = 1.62;
      p.shoulder_half_width = 0.19;
      p.torso_radius = 0.13;
      p.upper_arm_length = 0.27;
      p.forearm_length = 0.25;
      break;
  }
  return p;
}

const char* anchor_name(BodyAnchor a) {
  switch (a) {
    case BodyAnchor::Chest: return "chest";
    case BodyAnchor::UpperChestLeft: return "upper_chest_left";
    case BodyAnchor::UpperChestRight: return "upper_chest_right";
    case BodyAnchor::Abdomen: return "abdomen";
    case BodyAnchor::Waist: return "waist";
    case BodyAnchor::LeftThigh: return "left_thigh";
    case BodyAnchor::RightThigh: return "right_thigh";
  }
  return "?";
}

std::vector<BodyAnchor> all_anchors() {
  return {BodyAnchor::Chest,         BodyAnchor::UpperChestLeft,
          BodyAnchor::UpperChestRight, BodyAnchor::Abdomen,
          BodyAnchor::Waist,         BodyAnchor::LeftThigh,
          BodyAnchor::RightThigh};
}

HumanBody::HumanBody(BodyParams params) : params_(params) {
  MMHAR_REQUIRE(params_.height > 1.0 && params_.height < 2.5,
                "implausible body height " << params_.height);
}

Vec3 HumanBody::right_shoulder() const {
  return {0.0, -params_.shoulder_half_width, 0.81 * params_.height};
}

Vec3 HumanBody::rest_hand() const {
  return {-0.05, -params_.shoulder_half_width - 0.04,
          0.81 * params_.height - params_.upper_arm_length -
              params_.forearm_length + 0.05};
}

TriMesh HumanBody::build(const HumanPose& pose) const {
  const double h = params_.height;
  const double hip_z = 0.50 * h;
  const double shoulder_z = 0.81 * h;
  const double head_z = 0.93 * h;
  const Material skin = Material::skin();
  const Material cloth = Material::clothing();

  TriMesh body;

  // Legs (clothed).
  const double leg_y = 0.55 * params_.torso_radius;
  body.merge(make_capsule({0.0, -leg_y, 0.05}, {0.0, -leg_y, hip_z},
                          params_.leg_radius, cloth, 8, 3));
  body.merge(make_capsule({0.0, leg_y, 0.05}, {0.0, leg_y, hip_z},
                          params_.leg_radius, cloth, 8, 3));

  // Torso (clothed) — a vertical capsule from hips to shoulders.
  body.merge(make_capsule({0.0, 0.0, hip_z}, {0.0, 0.0, shoulder_z},
                          params_.torso_radius, cloth, 10, 4));

  // Head (skin).
  body.merge(make_sphere({0.0, 0.0, head_z}, params_.head_radius, skin, 5, 8));

  // Passive (left) arm hangs at the side.
  const Vec3 l_shoulder{0.0, params_.shoulder_half_width, shoulder_z};
  const Vec3 l_elbow = l_shoulder + Vec3{0.0, 0.02, -params_.upper_arm_length};
  const Vec3 l_hand = l_elbow + Vec3{0.0, 0.02, -params_.forearm_length};
  body.merge(make_capsule(l_shoulder, l_elbow, params_.arm_radius, cloth, 6, 2));
  body.merge(make_capsule(l_elbow, l_hand, params_.arm_radius, skin, 6, 2));

  // Gesturing (right) arm: two-bone IK toward pose.right_hand.
  const Vec3 r_shoulder = right_shoulder();
  Vec3 hand = pose.right_hand;
  const double reach = params_.upper_arm_length + params_.forearm_length;
  Vec3 to_hand = hand - r_shoulder;
  double d = norm(to_hand);
  if (d > reach - 0.01) {  // clamp to reachable sphere
    hand = r_shoulder + normalized(to_hand) * (reach - 0.01);
    to_hand = hand - r_shoulder;
    d = norm(to_hand);
  }
  MMHAR_CHECK(d > 1e-6);
  const Vec3 mid = (r_shoulder + hand) * 0.5;
  const double half = 0.5 * d;
  const double lift2 = params_.upper_arm_length * params_.upper_arm_length -
                       half * half;
  const double lift = std::sqrt(std::max(lift2, 1e-4));
  // Elbow offset direction: perpendicular to the shoulder->hand axis,
  // biased downward-and-outward like a natural elbow.
  Vec3 dir = cross(normalized(to_hand), Vec3{1.0, 0.0, 0.0});
  if (norm(dir) < 1e-6) dir = Vec3{0.0, 0.0, -1.0};
  dir = normalized(dir);
  if (dir.z > 0.0) dir = -dir;
  const Vec3 elbow = mid + dir * lift;

  body.merge(make_capsule(r_shoulder, elbow, params_.arm_radius, cloth, 6, 2));
  body.merge(make_capsule(elbow, hand, params_.arm_radius, skin, 6, 2));
  body.merge(make_sphere(hand, params_.hand_radius, skin, 4, 6));

  return body;
}

Vec3 HumanBody::anchor_position(BodyAnchor a) const {
  const double h = params_.height;
  const double front = -params_.torso_radius;  // facing -x
  switch (a) {
    case BodyAnchor::Chest:
      return {front, 0.0, 0.74 * h};
    case BodyAnchor::UpperChestLeft:
      return {front, 0.55 * params_.shoulder_half_width, 0.78 * h};
    case BodyAnchor::UpperChestRight:
      return {front, -0.55 * params_.shoulder_half_width, 0.78 * h};
    case BodyAnchor::Abdomen:
      return {front, 0.0, 0.62 * h};
    case BodyAnchor::Waist:
      return {front, 0.0, 0.54 * h};
    case BodyAnchor::LeftThigh:
      return {-params_.leg_radius, 0.55 * params_.torso_radius, 0.33 * h};
    case BodyAnchor::RightThigh:
      return {-params_.leg_radius, -0.55 * params_.torso_radius, 0.33 * h};
  }
  MMHAR_CHECK(false);
  return {};
}

Vec3 HumanBody::anchor_normal(BodyAnchor) const {
  // All catalogued anchors are on the body front, which faces local -x.
  return {-1.0, 0.0, 0.0};
}

void place_in_world(TriMesh& mesh, double distance_m, double angle_rad) {
  mesh.rotate_z_about_origin(angle_rad);
  mesh.translate({distance_m * std::cos(angle_rad),
                  distance_m * std::sin(angle_rad), 0.0});
}

Vec3 place_point_in_world(const Vec3& local, double distance_m,
                          double angle_rad) {
  const Vec3 rotated = rotate_z(local, angle_rad);
  return rotated + Vec3{distance_m * std::cos(angle_rad),
                        distance_m * std::sin(angle_rad), 0.0};
}

}  // namespace mmhar::mesh
