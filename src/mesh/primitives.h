// Parametric primitive tessellators used to assemble bodies and rooms.
#pragma once

#include <cstddef>

#include "mesh/trimesh.h"

namespace mmhar::mesh {

/// UV-sphere centered at `center`.
TriMesh make_sphere(const Vec3& center, double radius, const Material& mat,
                    std::size_t rings = 6, std::size_t segments = 8);

/// Capsule (cylinder with hemispherical caps) from `a` to `b`.
TriMesh make_capsule(const Vec3& a, const Vec3& b, double radius,
                     const Material& mat, std::size_t segments = 8,
                     std::size_t stacks = 4);

/// Axis-aligned box spanning [lo, hi].
TriMesh make_box(const Vec3& lo, const Vec3& hi, const Material& mat);

/// Flat rectangular plate centered at `center` with outward normal
/// `normal`; `up_hint` orients the plate's vertical edge. Tessellated into
/// `div x div` cells so the RF simulator sees multiple scatterers.
TriMesh make_plate(const Vec3& center, const Vec3& normal,
                   const Vec3& up_hint, double width, double height,
                   const Material& mat, std::size_t div = 2);

}  // namespace mmhar::mesh
