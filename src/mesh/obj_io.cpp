#include "mesh/obj_io.h"

#include <cstdio>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "common/check.h"
#include "common/serialize.h"

namespace mmhar::mesh {

void write_obj(std::ostream& os, const TriMesh& mesh) {
  os << "# mmhar-backdoor mesh export\n";
  os << std::setprecision(9);
  for (const auto& v : mesh.vertices())
    os << "v " << v.x << ' ' << v.y << ' ' << v.z << '\n';
  for (const auto& t : mesh.triangles())
    os << "f " << t.v0 + 1 << ' ' << t.v1 + 1 << ' ' << t.v2 + 1 << '\n';
  if (!os) throw IoError("write_obj: stream failure");
}

void save_obj(const std::string& path, const TriMesh& mesh) {
  // OBJ is a plain-text interchange format consumed by external tools
  // (Blender, meshlab), so it cannot live inside save_artifact's binary
  // container. Keep the export crash-safe the same way the store does:
  // write a sibling temp file, then atomically rename over the target.
  const std::string tmp = path + ".tmp";
  {
    // Third-party text format; made atomic via temp file + rename below
    // instead of save_artifact. mmhar-lint: allow(naked-cache-write)
    std::ofstream os(tmp, std::ios::trunc);
    if (!os) throw IoError("save_obj: cannot open " + tmp);
    write_obj(os, mesh);
    os.flush();
    if (!os) throw IoError("save_obj: write failed for " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw IoError("save_obj: cannot rename " + tmp + " to " + path);
  }
}

void save_obj_sequence(const std::string& prefix,
                       const std::vector<TriMesh>& frames) {
  for (std::size_t f = 0; f < frames.size(); ++f) {
    std::ostringstream name;
    name << prefix << '_' << std::setw(4) << std::setfill('0') << f
         << ".obj";
    save_obj(name.str(), frames[f]);
  }
}

TriMesh read_obj(std::istream& is) {
  TriMesh mesh;
  std::string line;
  std::string tag;    // hoisted per-line scratch
  std::string token;  // hoisted per-face scratch
  while (std::getline(is, line)) {
    std::istringstream ls(line);
    tag.clear();  // `ls >> tag` leaves it untouched on an empty line
    ls >> tag;
    if (tag == "v") {
      Vec3 v;
      ls >> v.x >> v.y >> v.z;
      if (ls.fail()) throw IoError("read_obj: malformed vertex: " + line);
      mesh.add_vertex(v);
    } else if (tag == "f") {
      // Accept "f i j k" with optional /texture/normal suffixes.
      std::size_t idx[3];
      for (auto& out : idx) {
        token.clear();  // extraction at EOF leaves the string untouched
        ls >> token;
        if (token.empty()) throw IoError("read_obj: malformed face: " + line);
        out = static_cast<std::size_t>(
            std::stoull(token.substr(0, token.find('/'))));
        MMHAR_REQUIRE(out >= 1, "OBJ faces are 1-indexed");
      }
      mesh.add_triangle(idx[0] - 1, idx[1] - 1, idx[2] - 1, Material{});
    }
  }
  return mesh;
}

}  // namespace mmhar::mesh
