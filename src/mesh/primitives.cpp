#include "mesh/primitives.h"

#include <cmath>

#include "common/check.h"

namespace mmhar::mesh {
namespace {

/// Build an orthonormal frame (u, v) perpendicular to unit vector w.
void make_frame(const Vec3& w, Vec3& u, Vec3& v) {
  const Vec3 helper = std::abs(w.z) < 0.9 ? Vec3{0.0, 0.0, 1.0}
                                          : Vec3{1.0, 0.0, 0.0};
  u = normalized(cross(helper, w));
  v = cross(w, u);
}

}  // namespace

TriMesh make_sphere(const Vec3& center, double radius, const Material& mat,
                    std::size_t rings, std::size_t segments) {
  MMHAR_REQUIRE(rings >= 2 && segments >= 3, "sphere tessellation too coarse");
  TriMesh m;
  // Vertex grid: (rings+1) latitude rows x segments longitudes.
  for (std::size_t i = 0; i <= rings; ++i) {
    const double phi =
        kPi * static_cast<double>(i) / static_cast<double>(rings);  // 0..pi
    for (std::size_t j = 0; j < segments; ++j) {
      const double theta =
          2.0 * kPi * static_cast<double>(j) / static_cast<double>(segments);
      m.add_vertex(center + Vec3{radius * std::sin(phi) * std::cos(theta),
                                 radius * std::sin(phi) * std::sin(theta),
                                 radius * std::cos(phi)});
    }
  }
  const auto idx = [segments](std::size_t i, std::size_t j) {
    return i * segments + (j % segments);
  };
  for (std::size_t i = 0; i < rings; ++i) {
    for (std::size_t j = 0; j < segments; ++j) {
      // Skip the degenerate half of the quad at each pole (all first-row
      // and last-row vertices coincide at the poles).
      if (i + 1 < rings)  // two bottom-pole vertices otherwise
        m.add_triangle(idx(i, j), idx(i + 1, j), idx(i + 1, j + 1), mat);
      if (i > 0)  // two top-pole vertices otherwise
        m.add_triangle(idx(i, j), idx(i + 1, j + 1), idx(i, j + 1), mat);
    }
  }
  return m;
}

TriMesh make_capsule(const Vec3& a, const Vec3& b, double radius,
                     const Material& mat, std::size_t segments,
                     std::size_t stacks) {
  MMHAR_REQUIRE(segments >= 3 && stacks >= 1, "capsule tessellation too coarse");
  const Vec3 axis = b - a;
  const double len = norm(axis);
  MMHAR_REQUIRE(len > 1e-9, "degenerate capsule axis");
  const Vec3 w = axis / len;
  Vec3 u;
  Vec3 v;
  make_frame(w, u, v);

  TriMesh m;
  // Cylinder body rings.
  for (std::size_t i = 0; i <= stacks; ++i) {
    const double t = static_cast<double>(i) / static_cast<double>(stacks);
    const Vec3 c = a + w * (len * t);
    for (std::size_t j = 0; j < segments; ++j) {
      const double theta =
          2.0 * kPi * static_cast<double>(j) / static_cast<double>(segments);
      m.add_vertex(c + (u * std::cos(theta) + v * std::sin(theta)) * radius);
    }
  }
  const auto idx = [segments](std::size_t i, std::size_t j) {
    return i * segments + (j % segments);
  };
  for (std::size_t i = 0; i < stacks; ++i) {
    for (std::size_t j = 0; j < segments; ++j) {
      m.add_triangle(idx(i, j), idx(i, j + 1), idx(i + 1, j + 1), mat);
      m.add_triangle(idx(i, j), idx(i + 1, j + 1), idx(i + 1, j), mat);
    }
  }
  // Hemispherical caps approximated by a single apex fan (adequate for
  // the radar's resolution and keeps triangle counts low).
  const std::size_t apex_a = m.add_vertex(a - w * radius);
  const std::size_t apex_b = m.add_vertex(b + w * radius);
  for (std::size_t j = 0; j < segments; ++j) {
    m.add_triangle(apex_a, idx(0, j + 1), idx(0, j), mat);
    m.add_triangle(apex_b, idx(stacks, j), idx(stacks, j + 1), mat);
  }
  return m;
}

TriMesh make_box(const Vec3& lo, const Vec3& hi, const Material& mat) {
  MMHAR_REQUIRE(lo.x < hi.x && lo.y < hi.y && lo.z < hi.z,
                "box bounds out of order");
  TriMesh m;
  const Vec3 corners[8] = {
      {lo.x, lo.y, lo.z}, {hi.x, lo.y, lo.z}, {hi.x, hi.y, lo.z},
      {lo.x, hi.y, lo.z}, {lo.x, lo.y, hi.z}, {hi.x, lo.y, hi.z},
      {hi.x, hi.y, hi.z}, {lo.x, hi.y, hi.z}};
  for (const auto& c : corners) m.add_vertex(c);
  // Each face wound so the normal points outward.
  const std::size_t faces[6][4] = {
      {0, 3, 2, 1},   // bottom (-z)
      {4, 5, 6, 7},   // top (+z)
      {0, 1, 5, 4},   // -y
      {2, 3, 7, 6},   // +y
      {0, 4, 7, 3},   // -x
      {1, 2, 6, 5}};  // +x
  for (const auto& f : faces) {
    m.add_triangle(f[0], f[1], f[2], mat);
    m.add_triangle(f[0], f[2], f[3], mat);
  }
  return m;
}

TriMesh make_plate(const Vec3& center, const Vec3& normal,
                   const Vec3& up_hint, double width, double height,
                   const Material& mat, std::size_t div) {
  MMHAR_REQUIRE(div >= 1, "plate needs at least one cell");
  const Vec3 n = normalized(normal);
  Vec3 right = cross(up_hint, n);
  if (norm(right) < 1e-9) right = cross(Vec3{1.0, 0.0, 0.0}, n);
  right = normalized(right);
  const Vec3 up = normalized(cross(n, right));

  TriMesh m;
  for (std::size_t i = 0; i <= div; ++i) {
    for (std::size_t j = 0; j <= div; ++j) {
      const double s = static_cast<double>(i) / static_cast<double>(div) - 0.5;
      const double t = static_cast<double>(j) / static_cast<double>(div) - 0.5;
      m.add_vertex(center + right * (s * width) + up * (t * height));
    }
  }
  const auto idx = [div](std::size_t i, std::size_t j) {
    return i * (div + 1) + j;
  };
  for (std::size_t i = 0; i < div; ++i) {
    for (std::size_t j = 0; j < div; ++j) {
      // Wind so the triangle normal aligns with `n`.
      m.add_triangle(idx(i, j), idx(i + 1, j), idx(i + 1, j + 1), mat);
      m.add_triangle(idx(i, j), idx(i + 1, j + 1), idx(i, j + 1), mat);
    }
  }
  // Validate winding: flip if needed.
  if (m.num_triangles() > 0 && dot(m.triangle_normal(0), n) < 0.0) {
    TriMesh flipped;
    for (const auto& v : m.vertices()) flipped.add_vertex(v);
    for (const auto& t : m.triangles())
      flipped.add_triangle(t.v0, t.v2, t.v1, t.material);
    return flipped;
  }
  return m;
}

}  // namespace mmhar::mesh
