#include "mesh/trigger.h"

#include "common/check.h"
#include "mesh/primitives.h"

namespace mmhar::mesh {

TriggerSpec TriggerSpec::aluminum_2x2() { return TriggerSpec{}; }

TriggerSpec TriggerSpec::aluminum_4x4() {
  TriggerSpec spec;
  spec.width_m = 0.1016;
  spec.height_m = 0.1016;
  return spec;
}

void attach_trigger(TriMesh& body, const Vec3& position, const Vec3& normal,
                    const TriggerSpec& spec) {
  MMHAR_REQUIRE(spec.width_m > 0.0 && spec.height_m > 0.0,
                "trigger must have positive extent");
  const Vec3 n = normalized(normal);
  MMHAR_REQUIRE(norm(n) > 0.5, "trigger normal must be nonzero");
  Material mat;
  mat.reflectivity = spec.effective_reflectivity();
  const Vec3 center = position + n * spec.standoff_m;
  body.merge(make_plate(center, n, Vec3{0.0, 0.0, 1.0}, spec.width_m,
                        spec.height_m, mat, spec.tessellation));
}

}  // namespace mmhar::mesh
