// Triangle mesh with per-triangle material, the unit of geometry consumed
// by the RF simulator (each triangle is one reflective surface in Eq. 3).
#pragma once

#include <cstddef>
#include <vector>

#include "mesh/geometry.h"

namespace mmhar::mesh {

/// Radar-relevant surface material. `reflectivity` is the A_m factor of
/// Eq. 3 (relative amplitude of the reflected field); metals are strong
/// specular reflectors, skin/clothing weak diffuse ones.
struct Material {
  float reflectivity = 1.0F;

  static Material skin() { return Material{0.35F}; }
  static Material clothing() { return Material{0.20F}; }
  static Material aluminum() { return Material{6.0F}; }
  static Material wood() { return Material{0.25F}; }
  static Material drywall() { return Material{0.30F}; }
};

struct Triangle {
  std::size_t v0 = 0;
  std::size_t v1 = 0;
  std::size_t v2 = 0;
  Material material;
};

class TriMesh {
 public:
  std::size_t num_vertices() const { return vertices_.size(); }
  std::size_t num_triangles() const { return triangles_.size(); }

  const std::vector<Vec3>& vertices() const { return vertices_; }
  std::vector<Vec3>& vertices() { return vertices_; }
  const std::vector<Triangle>& triangles() const { return triangles_; }

  /// Append a vertex, returning its index.
  std::size_t add_vertex(const Vec3& v);

  /// Append a triangle over existing vertex indices.
  void add_triangle(std::size_t v0, std::size_t v1, std::size_t v2,
                    const Material& material);

  /// Append all geometry from `other` (indices remapped).
  void merge(const TriMesh& other);

  /// Translate every vertex.
  void translate(const Vec3& offset);

  /// Rotate every vertex around the z axis about the origin.
  void rotate_z_about_origin(double angle);

  /// Uniformly scale about a center point.
  void scale_about(const Vec3& center, double factor);

  // ---- Per-triangle derived quantities ----
  Vec3 triangle_centroid(std::size_t t) const;
  /// Unit normal following the v0->v1->v2 winding (right-hand rule).
  Vec3 triangle_normal(std::size_t t) const;
  double triangle_area(std::size_t t) const;
  const Material& triangle_material(std::size_t t) const;

  /// Axis-aligned bounds (undefined for empty mesh).
  Vec3 bounds_min() const;
  Vec3 bounds_max() const;

  /// Centroid of all vertices.
  Vec3 vertex_centroid() const;

  /// Total surface area.
  double total_area() const;

 private:
  std::vector<Vec3> vertices_;
  std::vector<Triangle> triangles_;
};

}  // namespace mmhar::mesh
