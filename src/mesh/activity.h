// The six hand activities of the HAR prototype and their kinematics.
//
// Each activity is a 32-frame hand trajectory in the body-local frame
// (person faces local -x; see human.h). The pairs (Push, Pull) and
// (LeftSwipe, RightSwipe) are mirrored counterparts — the paper's
// "similar trajectory" pairs — while the turning gestures are circular.
// Per-repetition jitter (amplitude/phase/center/tremor) models natural
// human variation between repetitions and participants.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/rng.h"
#include "mesh/human.h"

namespace mmhar::mesh {

enum class Activity {
  Push = 0,
  Pull = 1,
  LeftSwipe = 2,
  RightSwipe = 3,
  Clockwise = 4,
  Anticlockwise = 5,
};

inline constexpr std::size_t kNumActivities = 6;

const char* activity_name(Activity a);
Activity activity_from_index(std::size_t i);

/// Whether two activities form a mirrored ("similar trajectory") pair.
bool similar_trajectories(Activity a, Activity b);

/// Jitter magnitudes applied per repetition / per frame.
struct MotionJitter {
  double amplitude_sigma = 0.06;  ///< relative gesture amplitude spread
  double center_sigma = 0.02;     ///< meters, gesture center offset
  double phase_sigma = 0.05;      ///< fraction of a cycle
  double tremor_sigma = 0.004;    ///< meters, per-frame hand tremor
  /// Whole-body sway: no human stands RF-static, and this micro-motion is
  /// what keeps the torso (and a torso-mounted trigger) visible after MTI
  /// clutter removal.
  double sway_amplitude_m = 0.012;  ///< radial sway amplitude (mean)
  double sway_freq_hz = 1.4;        ///< sway frequency
};

/// Per-frame rigid whole-body offsets modeling postural sway, directed
/// along the body-local x axis (radial once placed facing the radar).
std::vector<Vec3> body_sway_offsets(const MotionJitter& jitter,
                                    std::size_t num_frames,
                                    double duration_s, Rng& rng);

/// Generates hand trajectories for activities.
class ActivityAnimator {
 public:
  explicit ActivityAnimator(const HumanBody& body,
                            MotionJitter jitter = MotionJitter{});

  /// Hand target positions (body-local frame) for `num_frames` frames of
  /// one repetition of `activity`; `rng` drives the repetition jitter.
  std::vector<Vec3> hand_trajectory(Activity activity, std::size_t num_frames,
                                    Rng& rng) const;

  /// Full pose sequence (currently just the hand target per frame).
  std::vector<HumanPose> animate(Activity activity, std::size_t num_frames,
                                 Rng& rng) const;

 private:
  Vec3 gesture_center() const;

  const HumanBody& body_;
  MotionJitter jitter_;
};

}  // namespace mmhar::mesh
