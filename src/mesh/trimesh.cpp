#include "mesh/trimesh.h"

#include <algorithm>

#include "common/check.h"

namespace mmhar::mesh {

std::size_t TriMesh::add_vertex(const Vec3& v) {
  vertices_.push_back(v);
  return vertices_.size() - 1;
}

void TriMesh::add_triangle(std::size_t v0, std::size_t v1, std::size_t v2,
                           const Material& material) {
  MMHAR_REQUIRE(v0 < vertices_.size() && v1 < vertices_.size() &&
                    v2 < vertices_.size(),
                "triangle vertex index out of range");
  triangles_.push_back(Triangle{v0, v1, v2, material});
}

void TriMesh::merge(const TriMesh& other) {
  const std::size_t base = vertices_.size();
  vertices_.insert(vertices_.end(), other.vertices_.begin(),
                   other.vertices_.end());
  triangles_.reserve(triangles_.size() + other.triangles_.size());
  for (const auto& t : other.triangles_) {
    triangles_.push_back(
        Triangle{t.v0 + base, t.v1 + base, t.v2 + base, t.material});
  }
}

void TriMesh::translate(const Vec3& offset) {
  for (auto& v : vertices_) v += offset;
}

void TriMesh::rotate_z_about_origin(double angle) {
  for (auto& v : vertices_) v = rotate_z(v, angle);
}

void TriMesh::scale_about(const Vec3& center, double factor) {
  for (auto& v : vertices_) v = center + (v - center) * factor;
}

Vec3 TriMesh::triangle_centroid(std::size_t t) const {
  MMHAR_CHECK(t < triangles_.size());
  const Triangle& tri = triangles_[t];
  return (vertices_[tri.v0] + vertices_[tri.v1] + vertices_[tri.v2]) / 3.0;
}

Vec3 TriMesh::triangle_normal(std::size_t t) const {
  MMHAR_CHECK(t < triangles_.size());
  const Triangle& tri = triangles_[t];
  const Vec3 e1 = vertices_[tri.v1] - vertices_[tri.v0];
  const Vec3 e2 = vertices_[tri.v2] - vertices_[tri.v0];
  return normalized(cross(e1, e2));
}

double TriMesh::triangle_area(std::size_t t) const {
  MMHAR_CHECK(t < triangles_.size());
  const Triangle& tri = triangles_[t];
  const Vec3 e1 = vertices_[tri.v1] - vertices_[tri.v0];
  const Vec3 e2 = vertices_[tri.v2] - vertices_[tri.v0];
  return 0.5 * norm(cross(e1, e2));
}

const Material& TriMesh::triangle_material(std::size_t t) const {
  MMHAR_CHECK(t < triangles_.size());
  return triangles_[t].material;
}

Vec3 TriMesh::bounds_min() const {
  MMHAR_CHECK(!vertices_.empty());
  Vec3 lo = vertices_[0];
  for (const auto& v : vertices_) {
    lo.x = std::min(lo.x, v.x);
    lo.y = std::min(lo.y, v.y);
    lo.z = std::min(lo.z, v.z);
  }
  return lo;
}

Vec3 TriMesh::bounds_max() const {
  MMHAR_CHECK(!vertices_.empty());
  Vec3 hi = vertices_[0];
  for (const auto& v : vertices_) {
    hi.x = std::max(hi.x, v.x);
    hi.y = std::max(hi.y, v.y);
    hi.z = std::max(hi.z, v.z);
  }
  return hi;
}

Vec3 TriMesh::vertex_centroid() const {
  MMHAR_CHECK(!vertices_.empty());
  Vec3 acc{0.0, 0.0, 0.0};
  for (const auto& v : vertices_) acc += v;
  return acc / static_cast<double>(vertices_.size());
}

double TriMesh::total_area() const {
  double acc = 0.0;
  for (std::size_t t = 0; t < triangles_.size(); ++t)
    acc += triangle_area(t);
  return acc;
}

}  // namespace mmhar::mesh
