// Physical trigger model: a passive metal reflector patch on the body.
//
// The paper's triggers are 2x2 in and 4x4 in aluminum sheets (1/32 in
// thick) taped to the attacker, optionally hidden under clothing. Here a
// trigger is a tessellated metal plate merged into the body mesh at a
// body-local position, oriented along the local surface normal, standing
// off the surface by a few millimeters (tape thickness). Clothing is
// modeled as a mild amplitude attenuation — mmWave passes through fabric
// nearly unattenuated (§VI-G), which is exactly what makes the attack
// stealthy.
#pragma once

#include "mesh/trimesh.h"

namespace mmhar::mesh {

struct TriggerSpec {
  double width_m = 0.0508;   ///< 2 inches
  double height_m = 0.0508;  ///< 2 inches
  /// Specular flat-plate return: a tape-flat aluminum sheet facing the
  /// radar reflects 20-30 dB above skin; modeled as a large A_m.
  float reflectivity = 16.0F;
  bool under_clothing = false;
  /// One-way field attenuation through the covering fabric (~0.97 two-way
  /// amplitude for typical clothing at 77 GHz).
  float clothing_attenuation = 0.97F;
  std::size_t tessellation = 2;  ///< plate subdivided div x div
  double standoff_m = 0.004;     ///< tape + sheet thickness

  static TriggerSpec aluminum_2x2();
  static TriggerSpec aluminum_4x4();

  /// Effective reflectivity including clothing attenuation if hidden.
  float effective_reflectivity() const {
    return under_clothing
               ? reflectivity * clothing_attenuation * clothing_attenuation
               : reflectivity;
  }
};

/// Merge a trigger plate into `body` (body-local frame) at `position`
/// with outward `normal`.
void attach_trigger(TriMesh& body, const Vec3& position, const Vec3& normal,
                    const TriggerSpec& spec);

}  // namespace mmhar::mesh
