#include "har/infer.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace mmhar::har {
namespace {

// Conv geometry is fixed by the model architecture (model.cpp): conv1 is
// 5x5 stride 2 pad 2, conv2 is 3x3 stride 2 pad 1, pool is 2x2.
constexpr std::size_t kConv1Kernel = 5;
constexpr std::size_t kConv1Stride = 2;
constexpr std::size_t kConv1Pad = 2;
constexpr std::size_t kConv2Kernel = 3;
constexpr std::size_t kConv2Stride = 2;
constexpr std::size_t kConv2Pad = 1;
constexpr std::size_t kPool = 2;

constexpr std::size_t conv_out(std::size_t in, std::size_t kernel,
                               std::size_t stride, std::size_t pad) {
  return (in + 2 * pad - kernel) / stride + 1;
}

// Same as nn::LSTM's gate nonlinearity (lstm.cpp).
float sigmoidf(float x) { return 1.0F / (1.0F + std::exp(-x)); }

// Identical data movement to Conv2D::im2col (conv.cpp): col layout
// [C_in*K*K, OH*OW], zero outside the padded input.
void im2col(const float* img, std::size_t channels, std::size_t h,
            std::size_t w, std::size_t kernel, std::size_t stride,
            std::size_t pad, float* col) {
  const std::size_t oh = conv_out(h, kernel, stride, pad);
  const std::size_t ow = conv_out(w, kernel, stride, pad);
  const std::size_t ocells = oh * ow;
  std::size_t row = 0;
  for (std::size_t c = 0; c < channels; ++c) {
    const float* plane = img + c * h * w;
    for (std::size_t ky = 0; ky < kernel; ++ky) {
      for (std::size_t kx = 0; kx < kernel; ++kx, ++row) {
        float* out = col + row * ocells;
        for (std::size_t oy = 0; oy < oh; ++oy) {
          const std::ptrdiff_t iy =
              static_cast<std::ptrdiff_t>(oy * stride + ky) -
              static_cast<std::ptrdiff_t>(pad);
          for (std::size_t ox = 0; ox < ow; ++ox) {
            const std::ptrdiff_t ix =
                static_cast<std::ptrdiff_t>(ox * stride + kx) -
                static_cast<std::ptrdiff_t>(pad);
            const bool inside =
                iy >= 0 && iy < static_cast<std::ptrdiff_t>(h) && ix >= 0 &&
                ix < static_cast<std::ptrdiff_t>(w);
            out[oy * ow + ox] =
                inside ? plane[static_cast<std::size_t>(iy) * w +
                               static_cast<std::size_t>(ix)]
                       : 0.0F;
          }
        }
      }
    }
  }
}

// One conv layer over N frames: per-frame im2col + prepacked-A GEMM +
// bias, then ReLU — the same kernel sequence Conv2D::forward + nn::ReLU
// runs, fused frame by frame (elementwise ops commute with the frame
// order, so values are unchanged).
void conv_relu(const PackedA& wpack, const float* bias, std::size_t channels,
               const float* in, std::size_t n_frames, std::size_t in_ch,
               std::size_t h, std::size_t w, std::size_t kernel,
               std::size_t stride, std::size_t pad, float* col, float* out) {
  const std::size_t oh = conv_out(h, kernel, stride, pad);
  const std::size_t ow = conv_out(w, kernel, stride, pad);
  const std::size_t ocells = oh * ow;
  for (std::size_t f = 0; f < n_frames; ++f) {
    im2col(in + f * in_ch * h * w, in_ch, h, w, kernel, stride, pad, col);
    float* dst = out + f * channels * ocells;
    sgemm_packed_a_serial(wpack, ocells, 1.0F, col, 0.0F, dst);
    for (std::size_t oc = 0; oc < channels; ++oc) {
      const float bv = bias[oc];
      float* plane = dst + oc * ocells;
      for (std::size_t i = 0; i < ocells; ++i) {
        const float v = plane[i] + bv;
        plane[i] = v > 0.0F ? v : 0.0F;
      }
    }
  }
}

std::vector<float> copy_bias(const Tensor& t) {
  const std::span<const float> flat = t.flat();
  return std::vector<float>(flat.begin(), flat.end());
}

}  // namespace

InferencePlan build_inference_plan(HarModel& model) {
  InferencePlan plan;
  plan.config = model.config();
  const HarModelConfig& cfg = plan.config;

  plan.h1 = conv_out(cfg.height, kConv1Kernel, kConv1Stride, kConv1Pad);
  plan.w1 = conv_out(cfg.width, kConv1Kernel, kConv1Stride, kConv1Pad);
  plan.h2 = conv_out(plan.h1, kConv2Kernel, kConv2Stride, kConv2Pad);
  plan.w2 = conv_out(plan.w1, kConv2Kernel, kConv2Stride, kConv2Pad);
  plan.hp = plan.h2 / kPool;
  plan.wp = plan.w2 / kPool;
  plan.spatial = plan.hp * plan.wp * cfg.conv2_channels;

  // parameters() order is fixed by HarModel's construction: conv1 w/b,
  // conv2 w/b, feature Dense w/b, LSTM w_x/w_h/b, head w/b.
  const std::vector<Tensor*> params = model.parameters();
  MMHAR_REQUIRE(params.size() == 11,
                "build_inference_plan: unexpected parameter count "
                    << params.size());
  const std::size_t fan1 = 1 * kConv1Kernel * kConv1Kernel;
  const std::size_t fan2 = cfg.conv1_channels * kConv2Kernel * kConv2Kernel;
  const std::size_t g4 = 4 * cfg.lstm_hidden;
  const Tensor& c1w = *params[0];
  const Tensor& c2w = *params[2];
  const Tensor& fcw = *params[4];
  const Tensor& wx = *params[6];
  const Tensor& wh = *params[7];
  const Tensor& hw = *params[9];
  MMHAR_REQUIRE(c1w.size() == cfg.conv1_channels * fan1 &&
                    c2w.size() == cfg.conv2_channels * fan2 &&
                    fcw.size() == cfg.feature_dim * plan.spatial &&
                    wx.size() == g4 * cfg.feature_dim &&
                    wh.size() == g4 * cfg.lstm_hidden &&
                    hw.size() == cfg.num_classes * cfg.lstm_hidden,
                "build_inference_plan: weight shapes do not match config");

  plan.conv1_w = pack_a(cfg.conv1_channels, fan1, c1w.data());
  plan.conv1_b = copy_bias(*params[1]);
  plan.conv2_w = pack_a(cfg.conv2_channels, fan2, c2w.data());
  plan.conv2_b = copy_bias(*params[3]);
  plan.fc_w = pack_bt(plan.spatial, cfg.feature_dim, fcw.data());
  plan.fc_b = copy_bias(*params[5]);
  plan.lstm_wx = pack_bt(cfg.feature_dim, g4, wx.data());
  plan.lstm_wh = pack_bt(cfg.lstm_hidden, g4, wh.data());
  plan.lstm_b = copy_bias(*params[8]);
  plan.head_w = pack_bt(cfg.lstm_hidden, cfg.num_classes, hw.data());
  plan.head_b = copy_bias(*params[10]);
  return plan;
}

void InferenceScratch::reserve(const InferencePlan& plan,
                               std::size_t max_batch) {
  const HarModelConfig& cfg = plan.config;
  const std::size_t n = max_batch * cfg.frames;
  const std::size_t fan1 = 1 * kConv1Kernel * kConv1Kernel;
  const std::size_t fan2 = cfg.conv1_channels * kConv2Kernel * kConv2Kernel;
  const std::size_t o1 = plan.h1 * plan.w1;
  const std::size_t o2 = plan.h2 * plan.w2;
  const auto grow = [](std::vector<float>& v, std::size_t need) {
    // mmhar-rtcheck: allow(alloc) — grow-once scratch; a forward at a
    // warmed batch size takes the size check, never the resize.
    if (v.size() < need) v.resize(need);
  };
  grow(col, std::max(fan1 * o1, fan2 * o2));
  grow(act1, n * cfg.conv1_channels * o1);
  grow(act2, n * cfg.conv2_channels * o2);
  grow(pooled, n * plan.spatial);
  grow(feats, n * cfg.feature_dim);
  grow(x_step, max_batch * cfg.feature_dim);
  grow(z, max_batch * 4 * cfg.lstm_hidden);
  grow(h, max_batch * cfg.lstm_hidden);
  grow(c, max_batch * cfg.lstm_hidden);
}

void infer_forward(const InferencePlan& plan, InferenceScratch& scratch,
                   const float* input, std::size_t batch, float* logits) {
  MMHAR_REQUIRE(input != nullptr && logits != nullptr && batch > 0,
                "infer_forward: null buffers or empty batch");
  scratch.reserve(plan, batch);  // no-op once warmed
  const HarModelConfig& cfg = plan.config;
  const std::size_t n = batch * cfg.frames;
  const std::size_t o2 = plan.h2 * plan.w2;
  const std::size_t f_dim = cfg.feature_dim;
  const std::size_t h_dim = cfg.lstm_hidden;
  const std::size_t g4 = 4 * h_dim;

  // Per-frame CNN over the merged batch*time axis, exactly as
  // HarModel::forward runs it.
  float* const act1 = scratch.act1.data();
  float* const act2 = scratch.act2.data();
  conv_relu(plan.conv1_w, plan.conv1_b.data(), cfg.conv1_channels, input, n,
            1, cfg.height, cfg.width, kConv1Kernel, kConv1Stride, kConv1Pad,
            scratch.col.data(), act1);
  conv_relu(plan.conv2_w, plan.conv2_b.data(), cfg.conv2_channels, act1, n,
            cfg.conv1_channels, plan.h1, plan.w1, kConv2Kernel, kConv2Stride,
            kConv2Pad, scratch.col.data(), act2);

  // 2x2 max pool, then the flatten is just the [N, spatial] view. Scan
  // order and the strict `>` tie-break match MaxPool2D::forward.
  float* const pooled = scratch.pooled.data();
  const std::size_t planes = n * cfg.conv2_channels;
  for (std::size_t bc = 0; bc < planes; ++bc) {
    const float* plane = act2 + bc * o2;
    float* out = pooled + bc * plan.hp * plan.wp;
    for (std::size_t oy = 0; oy < plan.hp; ++oy) {
      for (std::size_t ox = 0; ox < plan.wp; ++ox) {
        float best = -std::numeric_limits<float>::infinity();
        for (std::size_t dy = 0; dy < kPool; ++dy) {
          for (std::size_t dx = 0; dx < kPool; ++dx) {
            const float v =
                plane[(oy * kPool + dy) * plan.w2 + ox * kPool + dx];
            if (v > best) best = v;
          }
        }
        out[oy * plan.wp + ox] = best;
      }
    }
  }

  // Feature Dense + ReLU: y = x W^T + b over all N frames at once.
  float* const feats = scratch.feats.data();
  sgemm_packed_b(n, 1.0F, pooled, plan.fc_w, 0.0F, feats);
  const float* const fc_b = plan.fc_b.data();
  for (std::size_t r = 0; r < n; ++r) {
    float* row = feats + r * f_dim;
    for (std::size_t j = 0; j < f_dim; ++j) {
      const float v = row[j] + fc_b[j];
      row[j] = v > 0.0F ? v : 0.0F;
    }
  }

  // LSTM over [batch, T, F]; feats is already laid out [b][t][F]. Gate
  // math mirrors nn::LSTM::forward (in-place cell update reads the
  // previous value before overwriting it — same arithmetic).
  float* const x_step = scratch.x_step.data();
  float* const z = scratch.z.data();
  float* const hbuf = scratch.h.data();
  float* const cbuf = scratch.c.data();
  std::fill(hbuf, hbuf + batch * h_dim, 0.0F);
  std::fill(cbuf, cbuf + batch * h_dim, 0.0F);
  const float* const lstm_b = plan.lstm_b.data();
  for (std::size_t t = 0; t < cfg.frames; ++t) {
    for (std::size_t b = 0; b < batch; ++b) {
      const float* src = feats + (b * cfg.frames + t) * f_dim;
      std::copy(src, src + f_dim, x_step + b * f_dim);
    }
    sgemm_packed_b(batch, 1.0F, x_step, plan.lstm_wx, 0.0F, z);
    sgemm_packed_b(batch, 1.0F, hbuf, plan.lstm_wh, 1.0F, z);
    for (std::size_t b = 0; b < batch; ++b) {
      float* zr = z + b * g4;
      for (std::size_t j = 0; j < g4; ++j) zr[j] += lstm_b[j];
    }
    for (std::size_t b = 0; b < batch; ++b) {
      const float* zr = z + b * g4;
      float* cr = cbuf + b * h_dim;
      float* hr = hbuf + b * h_dim;
      for (std::size_t j = 0; j < h_dim; ++j) {
        const float ig = sigmoidf(zr[j]);
        const float fg = sigmoidf(zr[h_dim + j]);
        const float gg = std::tanh(zr[2 * h_dim + j]);
        const float og = sigmoidf(zr[3 * h_dim + j]);
        const float cprev = cr[j];
        cr[j] = fg * cprev + ig * gg;
        hr[j] = og * std::tanh(cr[j]);
      }
    }
  }

  // Classifier head on the final hidden state.
  sgemm_packed_b(batch, 1.0F, hbuf, plan.head_w, 0.0F, logits);
  const float* const head_b = plan.head_b.data();
  for (std::size_t b = 0; b < batch; ++b) {
    float* row = logits + b * cfg.num_classes;
    for (std::size_t j = 0; j < cfg.num_classes; ++j) row[j] += head_b[j];
  }
}

}  // namespace mmhar::har
