// Zero-allocation micro-batched inference for the CNN-LSTM classifier.
//
// HarModel::forward is built for training: every layer allocates output
// tensors, caches activations for backward, and re-packs its weights per
// call. The serving path cannot afford any of that, so inference is split
// into two pieces with a strict ownership boundary:
//
//  * `InferencePlan` — immutable after build_inference_plan(): the model's
//    weights snapshotted into pre-packed GEMM operand layouts (conv
//    weights as PackedA tiles, Dense/LSTM/head weights as PackedB panels)
//    plus copied biases and derived layer geometry. One plan is shared by
//    any number of concurrent consumers without synchronization.
//  * `InferenceScratch` — per-caller, grow-once working buffers for every
//    intermediate activation. After reserve() (or one warm-up call) a
//    forward performs zero heap allocations.
//
// infer_forward replicates HarModel::forward(…, training=false) operation
// for operation — same im2col layout, same GEMM kernels and reduction
// orders, same gate math — so its logits are bit-identical to the
// training model's for any micro-batch composition (no GEMM in this path
// has a batch-size-dependent fast path; every output row's arithmetic is
// independent of the other rows in the batch).
#pragma once

#include <cstddef>
#include <vector>

#include "common/thread_annotations.h"
#include "har/model.h"
#include "tensor/gemm.h"

namespace mmhar::har {

/// Immutable pre-packed weight snapshot plus derived geometry.
struct InferencePlan {
  HarModelConfig config;

  PackedA conv1_w;             ///< [c1, 1*5*5] in A-tile layout
  std::vector<float> conv1_b;
  PackedA conv2_w;             ///< [c2, c1*3*3] in A-tile layout
  std::vector<float> conv2_b;
  PackedB fc_w;                ///< feature Dense, packed from [F, spatial]
  std::vector<float> fc_b;
  PackedB lstm_wx;             ///< packed from W_x [4H, F]
  PackedB lstm_wh;             ///< packed from W_h [4H, H]
  std::vector<float> lstm_b;
  PackedB head_w;              ///< packed from [C, H]
  std::vector<float> head_b;

  // Layer geometry derived from config (conv1 -> conv2 -> 2x2 pool).
  std::size_t h1 = 0, w1 = 0;  ///< after conv1 (stride 2)
  std::size_t h2 = 0, w2 = 0;  ///< after conv2 (stride 2)
  std::size_t hp = 0, wp = 0;  ///< after pooling
  std::size_t spatial = 0;     ///< flattened CNN output, hp*wp*c2
};

/// Snapshot `model`'s weights into a plan. The plan is independent of the
/// model afterwards: training the model further does not change it.
InferencePlan build_inference_plan(HarModel& model);

/// Grow-once working buffers for infer_forward. Safe to reuse across
/// calls from one thread; never shared between concurrent callers.
struct InferenceScratch {
  std::vector<float> col;     ///< im2col panel for one frame
  std::vector<float> act1;    ///< conv1 output [N, c1, h1, w1]
  std::vector<float> act2;    ///< conv2 output [N, c2, h2, w2]
  std::vector<float> pooled;  ///< pool/flatten output [N, spatial]
  std::vector<float> feats;   ///< per-frame features [N, F]
  std::vector<float> x_step;  ///< LSTM input gather [K, F]
  std::vector<float> z;       ///< LSTM pre-activations [K, 4H]
  std::vector<float> h;       ///< LSTM hidden state [K, H]
  std::vector<float> c;       ///< LSTM cell state [K, H]

  /// Grow every buffer to the sizes `max_batch` samples need. Forwards of
  /// any batch <= max_batch then allocate nothing.
  void reserve(const InferencePlan& plan, std::size_t max_batch);
};

/// Micro-batched forward: input [batch, T, H, W] (flat, row-major) ->
/// logits [batch, C]. Runs entirely on the calling thread; zero heap
/// allocations once `scratch` covers `batch`. Bit-identical to
/// HarModel::forward(input, /*training=*/false) on the weights the plan
/// was built from.
void infer_forward(const InferencePlan& plan, InferenceScratch& scratch,
                   const float* input, std::size_t batch,
                   float* logits) MMHAR_REALTIME MMHAR_DETERMINISTIC;

}  // namespace mmhar::har
