#include "har/trainer.h"

#include <algorithm>

#include "common/logging.h"
#include "nn/loss.h"
#include "nn/optimizer.h"

namespace mmhar::har {
namespace {

std::vector<std::size_t> range_indices(std::size_t n) {
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  return idx;
}

}  // namespace

TrainHistory train_model(HarModel& model, const Dataset& train,
                         const TrainConfig& config) {
  MMHAR_REQUIRE(!train.empty(), "cannot train on an empty dataset");
  MMHAR_REQUIRE(config.batch_size > 0, "batch size must be positive");

  Rng rng(config.seed);
  auto indices = range_indices(train.size());
  rng.shuffle(indices);

  // Optional validation split (stratification not needed: shuffled).
  std::vector<std::size_t> val_indices;
  if (config.validation_fraction > 0.0) {
    const auto n_val = static_cast<std::size_t>(
        config.validation_fraction * static_cast<double>(indices.size()));
    val_indices.assign(indices.end() - static_cast<std::ptrdiff_t>(n_val),
                       indices.end());
    indices.resize(indices.size() - n_val);
  }
  MMHAR_REQUIRE(!indices.empty(), "validation split consumed all samples");

  nn::Adam optimizer(config.learning_rate, 0.9F, 0.999F, 1e-8F,
                     config.weight_decay);
  const auto params = model.parameters();
  const auto grads = model.gradients();

  TrainHistory history;
  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    rng.shuffle(indices);
    double loss_sum = 0.0;
    double acc_sum = 0.0;
    std::size_t batches = 0;

    for (std::size_t start = 0; start < indices.size();
         start += config.batch_size) {
      const std::size_t end =
          std::min(indices.size(), start + config.batch_size);
      const std::vector<std::size_t> batch_idx(indices.begin() + start,
                                               indices.begin() + end);
      const Tensor batch = train.batch_of(batch_idx);
      const auto labels = train.labels_of(batch_idx);

      model.zero_gradients();
      const Tensor logits = model.forward(batch, /*training=*/true);
      const auto loss = nn::softmax_cross_entropy(logits, labels);
      model.backward(loss.grad_logits);
      nn::clip_gradient_norm(grads, config.grad_clip);
      optimizer.step(params, grads);

      loss_sum += loss.loss;
      acc_sum += nn::accuracy(logits, labels);
      ++batches;
    }

    EpochStats stats;
    stats.loss = static_cast<float>(
        loss_sum / static_cast<double>(std::max<std::size_t>(1, batches)));
    stats.accuracy = static_cast<float>(
        acc_sum / static_cast<double>(std::max<std::size_t>(1, batches)));
    if (!val_indices.empty()) {
      const Tensor vb = train.batch_of(val_indices);
      const auto vl = train.labels_of(val_indices);
      const Tensor vlogits = model.forward(vb, /*training=*/false);
      stats.validation_accuracy = nn::accuracy(vlogits, vl);
    }
    history.epochs.push_back(stats);
    if (config.verbose) {
      MMHAR_LOG(Info) << "epoch " << epoch + 1 << "/" << config.epochs
                      << " loss=" << stats.loss << " acc=" << stats.accuracy
                      << " val=" << stats.validation_accuracy;
    }
  }
  return history;
}

std::vector<std::size_t> predict_all(HarModel& model,
                                     const Dataset& dataset) {
  std::vector<std::size_t> preds;
  preds.reserve(dataset.size());
  constexpr std::size_t kEvalBatch = 32;
  for (std::size_t start = 0; start < dataset.size(); start += kEvalBatch) {
    const std::size_t end = std::min(dataset.size(), start + kEvalBatch);
    std::vector<std::size_t> idx;
    for (std::size_t i = start; i < end; ++i) idx.push_back(i);
    const Tensor logits =
        model.forward(dataset.batch_of(idx), /*training=*/false);
    const std::size_t classes = logits.dim(1);
    MMHAR_CHECK(logits.size() == idx.size() * classes);
    for (std::size_t b = 0; b < idx.size(); ++b) {
      const float* row = logits.data() + b * classes;
      std::size_t best = 0;
      for (std::size_t c = 1; c < classes; ++c)
        if (row[c] > row[best]) best = c;
      preds.push_back(best);
    }
  }
  return preds;
}

float evaluate_accuracy(HarModel& model, const Dataset& dataset) {
  if (dataset.empty()) return 0.0F;
  const auto preds = predict_all(model, dataset);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < dataset.size(); ++i)
    if (preds[i] == dataset.sample(i).label) ++correct;
  return static_cast<float>(correct) / static_cast<float>(dataset.size());
}

ConfusionMatrix evaluate_confusion(HarModel& model, const Dataset& dataset) {
  ConfusionMatrix cm(dataset.num_classes());
  const auto preds = predict_all(model, dataset);
  for (std::size_t i = 0; i < dataset.size(); ++i)
    cm.add(dataset.sample(i).label, preds[i]);
  return cm;
}

}  // namespace mmhar::har
